// Figure 2: 4KB page access latency distributions through the DEFAULT data
// path for Disk, Disaggregated VMM, and Disaggregated VFS, under Sequential
// and Stride-10 access.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/cdf.h"

namespace leap {
namespace {

void RunPattern(bench::MicroPattern pattern, const char* label,
                size_t accesses) {
  auto disk = bench::RunMicro(
      DiskSwapConfig(Medium::kHdd, PrefetchKind::kReadAhead,
                     bench::kMicroFrames, 11),
      pattern, accesses);
  auto dvmm = bench::RunMicro(
      DefaultVmmConfig(PrefetchKind::kReadAhead, bench::kMicroFrames, 11),
      pattern, accesses);

  // D-VFS: 1GB-write-then-read scaled down; the VFS machine reads file
  // pages through its cache at 50% of the file size.
  MachineConfig vfs_config =
      DefaultVfsConfig(PrefetchKind::kReadAhead, bench::kMicroFrames,
                       bench::kMicroFootprintPages / 2, 11);
  Machine vfs(vfs_config);
  const Pid pid = vfs.CreateProcess(0);
  SimTimeNs now = 0;
  for (Vpn v = 0; v < bench::kMicroFootprintPages; ++v) {
    now += 150;
    now += vfs.Access(pid, v, /*write=*/true, now).latency;
  }
  RunConfig run;
  run.total_accesses = accesses;
  run.start_time_ns = now + 10 * kNsPerMs;
  RunResult vfs_result;
  if (pattern == bench::MicroPattern::kSequential) {
    SequentialStream stream(bench::kMicroFootprintPages, 750);
    vfs_result = RunApp(vfs, pid, stream, run);
  } else {
    StrideStream stream(bench::kMicroFootprintPages, 10, 750);
    vfs_result = RunApp(vfs, pid, stream, run);
  }

  std::printf("--- %s ---\n", label);
  std::printf("%s\n",
              RenderLatencyQuantileTable(
                  {{"disk (default path)", &disk.run.remote_access_latency},
                   {"D-VMM (default path)", &dvmm.run.remote_access_latency},
                   {"D-VFS (default path)", &vfs_result.remote_access_latency}})
                  .c_str());
}

}  // namespace
}  // namespace leap

int main() {
  leap::bench::PrintHeader(
      "Figure 2 - default-path 4KB access latency CDFs",
      "sequential: ~80% cache hits on all three; stride-10: all miss; "
      "disaggregation floors ~1us; disk miss ~125us vs D-VMM ~38us");
  leap::RunPattern(leap::bench::MicroPattern::kSequential, "Sequential",
                   120000);
  leap::RunPattern(leap::bench::MicroPattern::kStride10, "Stride-10", 60000);
  return 0;
}
