// Figure 16 (extension): gray failure and failover tails in a
// disaggregated cluster. The paper evaluates Leap on a healthy testbed;
// this bench asks what production asks - what happens to demand-read p99
// when a memory node goes gray (answers everything, an order of magnitude
// slow), and how fast does detection + mitigation claw it back?
//
// Three variants over the same 16-host/4-node cluster and the same fault
// timeline:
//   baseline          no faults, mitigation off - the healthy reference
//   gray_unmitigated  node 1 goes gray mid-run (downlink serialization
//                     stretched), mitigation off; the health monitor runs
//                     in observe-only mode so the detection window is
//                     still measured
//   gray_mitigated    same fault, full mitigation on: gray avoidance
//                     reroutes demand reads to healthy replicas, hedged
//                     reads race the stragglers, deadline retries cap the
//                     worst case
//
// Headline: unmitigated gray p99 collapses (>= 3x over mitigated is the
// acceptance bar); mitigated p99 lands back near baseline, with the
// monitor's detection delay reported. A correlated-failure sweep rides
// along: crash a 1-node then a 2-node failure domain (replicas = 2, so
// the 2-node domain takes out whole replica sets - those slabs are
// remapped with NO surviving source, so the signature is slab repairs
// that produce no page copies: the data is gone until rewritten).
//
// Usage: fig16_failover [--smoke] [--trace[=path]] [--timeseries[=path]]
//                       [output.json]
//   --smoke       tiny configuration for CI (4 hosts, small footprints)
//   --trace       flight-record the gray_mitigated variant and export a
//                 chrome://tracing JSON (default BENCH_failover.trace.json):
//                 the gray node's health track makes the detection window
//                 visible as the gap between the gray_set instant and the
//                 start of the monitor's "gray" span
//   --timeseries  sample node health/EWMAs/windowed demand p99 on the
//                 gray_mitigated run to JSONL
//   output        JSON (default BENCH_failover.json)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/fault_injector.h"
#include "src/runtime/cluster.h"
#include "src/stats/table.h"
#include "src/workload/cluster_mix.h"

namespace leap {
namespace {

struct BenchGeometry {
  size_t hosts = 16;
  size_t nodes = 4;
  size_t footprint_pages = 4096;
  size_t accesses_per_host = 20000;
  size_t slab_pages = 256;
  double gray_stretch = 16.0;
  // Resilience knobs scale with cluster load: the deadline must clear the
  // healthy-but-loaded tail by a wide margin, or the retries meant to cut
  // the gray tail become a self-inflicted retry storm (each timeout adds
  // load to the surviving nodes, pushing more reads past the deadline).
  SimTimeNs read_deadline_ns = 50 * kNsPerUs;
  SimTimeNs hedge_floor_ns = 10 * kNsPerUs;
  SimTimeNs retry_backoff_ns = 5 * kNsPerUs;
  uint32_t max_read_retries = 3;
  // Health-monitor pacing: smoke's demand misses are sparse, so it judges
  // off fewer samples with a heavier newest-sample weight; the full config
  // has 10x the sample flow and keeps the calmer library defaults (a
  // twitchy EWMA at 16 hosts false-positives healthy-but-loaded nodes).
  uint64_t health_min_samples = 32;
  double health_ewma_alpha = 0.125;
};

// A 128x serialization stretch is squarely in gray-failure territory (a
// NIC negotiated down, a flaky cable retransmitting): deep enough that
// the gray node's demand lane saturates and its queue grows for the rest
// of the run - the paper-style "limping, not dead" node. The 16-host
// config runs ~10x the smoke load, so its healthy tail sits higher and
// the deadline/hedge thresholds scale up with it.
BenchGeometry FullGeometry() {
  return {16,  8,   4096, 20000, 256, 128.0, 250 * kNsPerUs, 50 * kNsPerUs,
          25 * kNsPerUs, 2, 32, 0.125};
}

// Smoke keeps 4 nodes: outlier detection is relative (EWMA vs median of
// EWMAs), and with fewer than 3 peers a single slow node cannot score
// past the suspect threshold.
BenchGeometry SmokeGeometry() {
  return {4, 4, 1024, 4000, 64, 128.0, 50 * kNsPerUs, 10 * kNsPerUs,
          5 * kNsPerUs, 3, 16, 0.25};
}

ClusterConfig MakeConfig(const BenchGeometry& geo, bool mitigation,
                         bool monitor) {
  ClusterConfig config;
  config.hosts = geo.hosts;
  config.nodes = geo.nodes;
  config.node_capacity_slabs = 4096;
  config.host = LeapVmmConfig(geo.footprint_pages, /*seed=*/42);
  config.host.host_agent.slab_pages = geo.slab_pages;
  config.placement = PlacementPolicy::kPowerOfTwo;
  config.seed = 91;
  // Demand-priority link scheduling (fig15's QoS work) is the table
  // stakes here: under FIFO a saturated gray downlink drags every host's
  // uplink horizon (head-of-line coupling), so ALL reads slow down and no
  // replica choice can dodge the damage. The QoS lane contains the blast
  // radius to ops actually targeting the gray node; health-driven
  // rerouting + hedging then cut the remaining demand tail.
  config.fabric.sched.kind = LinkSchedulerKind::kDemandPriority;
  config.health_monitor_enabled = monitor;
  config.resilience.enabled = mitigation;
  // Geometry-scaled (see BenchGeometry): the deadline and hedge floor sit
  // comfortably above that configuration's healthy p99 while still
  // cutting the gray tail hard.
  config.resilience.read_deadline_ns = geo.read_deadline_ns;
  config.resilience.max_read_retries = geo.max_read_retries;
  config.resilience.retry_backoff_ns = geo.retry_backoff_ns;
  config.resilience.hedge_floor_ns = geo.hedge_floor_ns;
  config.health.min_samples = geo.health_min_samples;
  config.health.ewma_alpha = geo.health_ewma_alpha;
  return config;
}

constexpr uint32_t kGrayNode = 1;

struct VariantResult {
  std::string name;
  uint64_t p50_remote_ns = 0;
  uint64_t p99_remote_ns = 0;
  SimTimeNs run_start_ns = 0;
  SimTimeNs max_completion_ns = 0;
  SimTimeNs detection_delay_ns = 0;  // 0 = no gray detected / no monitor
  uint64_t hedge_ops = 0;            // kHedge class ops on the fabric
  uint64_t tags_written = 0;         // durability probe (correlated sweep)
  uint64_t tags_lost = 0;            // probe tags unreadable after the run
  Counters totals;
};

// Per-variant observability: all off by default; the headline variant gets
// whatever the command line asked for. Strictly additive - enabling any of
// these changes no measured number (pinned by obs_trace_test).
struct ObsOptions {
  std::string trace_path;       // non-empty = flight-record + export
  std::string timeseries_path;  // non-empty = sample + write JSONL
  bool dump = false;            // human-readable stats dump to stdout
};

// tag_slots > 0 plants a durability probe: host 0 writes a content tag
// per slot before the run, and every tag is read back after it. A tag is
// lost only when every replica holding it died before repair could copy
// it - the direct measure of correlated-failure data loss.
VariantResult RunVariant(const BenchGeometry& geo, const std::string& name,
                         const FaultPlan& plan, bool mitigation, bool monitor,
                         SimTimeNs gray_inject_ns, size_t tag_slots = 0,
                         const ObsOptions& obs = {}) {
  ClusterConfig config = MakeConfig(geo, mitigation, monitor);
  if (!obs.trace_path.empty()) {
    config.trace.enabled = true;
    // Big enough that the smoke run keeps every event from before the
    // injection to the end (the gray_set instant must survive in the ring
    // for the detection window to be visible in the export).
    config.trace.capacity = size_t{1} << 18;
  }
  config.sampler.enabled = !obs.timeseries_path.empty();
  Cluster cluster(config);
  FaultInjector::Arm(cluster, plan);

  std::vector<std::unique_ptr<AccessStream>> streams;
  std::vector<ClusterAppSpec> specs;
  std::vector<Pid> pids;
  SimTimeNs warm_end = 0;
  for (size_t h = 0; h < geo.hosts; ++h) {
    const Pid pid = cluster.host(h).CreateProcess(geo.footprint_pages / 2);
    pids.push_back(pid);
    warm_end = WarmUp(cluster.host(h), pid, geo.footprint_pages, warm_end);
    streams.push_back(MakeClusterMixStream(h, geo.footprint_pages));
  }
  VariantResult out;
  out.name = name;
  out.run_start_ns = warm_end + 10 * kNsPerMs;
  const auto probe_tag = [](SwapSlot slot) { return slot * 2654435761u + 1; };
  if (tag_slots > 0) {
    HostAgent* agent = cluster.host(0).host_agent();
    Rng tag_rng(7);
    for (SwapSlot slot = 0; slot < tag_slots; ++slot) {
      agent->WriteTag(slot, probe_tag(slot), warm_end, tag_rng);
    }
    out.tags_written = tag_slots;
  }
  for (size_t h = 0; h < geo.hosts; ++h) {
    RunConfig run;
    run.total_accesses = geo.accesses_per_host;
    run.start_time_ns = out.run_start_ns;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  const auto results = cluster.Run(std::move(specs));

  // Headline series: demand-miss latency (a faulting process blocked on
  // the read) - the metric mitigation targets. The all-remote-access
  // histogram would dilute it with hits on prefetched pages.
  Histogram merged;
  for (size_t h = 0; h < geo.hosts; ++h) {
    merged.Merge(results[h].miss_latency);
    out.max_completion_ns =
        std::max(out.max_completion_ns, results[h].completion_ns);
  }
  out.p50_remote_ns = merged.Percentile(0.5);
  out.p99_remote_ns = merged.Percentile(0.99);
  const ClusterStats stats = cluster.Stats();
  out.totals = stats.totals;
  out.hedge_ops = stats.ClassOps(IoClass::kHedge);
  if (tag_slots > 0) {
    HostAgent* agent = cluster.host(0).host_agent();
    for (SwapSlot slot = 0; slot < tag_slots; ++slot) {
      if (agent->ReadTag(slot) != std::optional<uint64_t>(probe_tag(slot))) {
        ++out.tags_lost;
      }
    }
  }
  if (cluster.health_monitor() != nullptr && gray_inject_ns > 0) {
    // First gray mark AT OR AFTER injection: a transient false positive
    // earlier in the run must not read as instant detection.
    const SimTimeNs first_gray =
        cluster.health_monitor()->FirstGrayAtOrAfterNs(kGrayNode,
                                                       gray_inject_ns);
    if (first_gray >= gray_inject_ns && first_gray > 0) {
      out.detection_delay_ns = first_gray - gray_inject_ns;
    }
  }
  if (!obs.trace_path.empty() && cluster.trace() != nullptr) {
    std::ofstream tf(obs.trace_path);
    cluster.trace()->ExportChromeTrace(tf);
    std::printf("wrote %s (%zu events buffered, %llu dropped)\n",
                obs.trace_path.c_str(), cluster.trace()->size(),
                static_cast<unsigned long long>(cluster.trace()->dropped()));
  }
  if (!obs.timeseries_path.empty() && cluster.sampler() != nullptr) {
    std::ofstream ts(obs.timeseries_path);
    cluster.sampler()->WriteJsonl(ts);
    std::printf("wrote %s (%zu samples)\n", obs.timeseries_path.c_str(),
                cluster.sampler()->samples().size());
  }
  if (obs.dump) {
    cluster.DumpStats(std::cout);
  }
  return out;
}

struct CorrelatedResult {
  std::vector<uint32_t> group;
  uint64_t reads_lost = 0;
  uint64_t slab_repairs = 0;
  uint64_t repair_copies = 0;
  uint64_t failovers = 0;
  uint64_t tags_written = 0;
  uint64_t tags_lost = 0;
  uint64_t p99_remote_ns = 0;
};

CorrelatedResult RunCorrelated(const BenchGeometry& geo,
                               std::vector<uint32_t> group, SimTimeNs crash_at,
                               SimTimeNs recover_at) {
  FaultPlan plan;
  plan.CrashGroup(group, crash_at);
  for (const uint32_t node : group) {
    plan.Recover(node, recover_at);
  }
  // Probe 16 slabs' worth of tags so a meaningful number of replica sets
  // land fully inside the 2-node failure domain.
  const size_t tag_slots = 16 * geo.slab_pages;
  const VariantResult v =
      RunVariant(geo, "correlated", plan, /*mitigation=*/true,
                 /*monitor=*/true, /*gray_inject_ns=*/0, tag_slots);
  CorrelatedResult out;
  out.group = std::move(group);
  out.reads_lost = v.totals.Get(counter::kRemoteReadsLost);
  out.slab_repairs = v.totals.Get(counter::kSlabRepairs);
  out.repair_copies = v.totals.Get(counter::kRepairPageCopies);
  out.failovers = v.totals.Get(counter::kRemoteFailovers);
  out.tags_written = v.tags_written;
  out.tags_lost = v.tags_lost;
  out.p99_remote_ns = v.p99_remote_ns;
  return out;
}

void WriteResilienceJson(FILE* f, const Counters& totals) {
  std::fprintf(
      f,
      "{\"read_retries\": %llu, \"deadline_misses\": %llu, "
      "\"hedged_reads\": %llu, \"hedge_wins\": %llu, "
      "\"reads_rerouted\": %llu, \"gray_transitions\": %llu, "
      "\"gray_fault_events\": %llu, \"delay_spike_events\": %llu}",
      static_cast<unsigned long long>(totals.Get(counter::kReadRetries)),
      static_cast<unsigned long long>(
          totals.Get(counter::kReadDeadlineMisses)),
      static_cast<unsigned long long>(totals.Get(counter::kHedgedReads)),
      static_cast<unsigned long long>(totals.Get(counter::kHedgeWins)),
      static_cast<unsigned long long>(totals.Get(counter::kReadsRerouted)),
      static_cast<unsigned long long>(totals.Get(counter::kGrayTransitions)),
      static_cast<unsigned long long>(totals.Get(counter::kGrayFaultEvents)),
      static_cast<unsigned long long>(
          totals.Get(counter::kDelaySpikeEvents)));
}

void WriteJson(const char* path, const BenchGeometry& geo,
               const std::vector<VariantResult>& variants,
               SimTimeNs gray_inject_ns, double improvement,
               const std::vector<CorrelatedResult>& correlated, bool smoke) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  bench::WriteSchemaPreamble(
      f, {"fig16_failover", /*seed=*/91, geo.hosts, geo.nodes,
          "demand_priority",
          PlacementPolicyName(PlacementPolicy::kPowerOfTwo)});
  std::fprintf(f,
               "  \"geometry\": {\"hosts\": %zu, \"nodes\": %zu, "
               "\"footprint_pages\": %zu, \"accesses_per_host\": %zu, "
               "\"slab_pages\": %zu},\n",
               geo.hosts, geo.nodes, geo.footprint_pages,
               geo.accesses_per_host, geo.slab_pages);
  std::fprintf(f,
               "  \"gray_fault\": {\"node\": %u, \"stretch\": %.1f, "
               "\"inject_ns\": %llu},\n",
               kGrayNode, geo.gray_stretch,
               static_cast<unsigned long long>(gray_inject_ns));
  std::fprintf(f, "  \"variants\": [\n");
  for (size_t i = 0; i < variants.size(); ++i) {
    const VariantResult& v = variants[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"p50_remote_ns\": %llu, "
        "\"p99_remote_ns\": %llu, \"detection_delay_ns\": %llu, "
        "\"hedge_fabric_ops\": %llu, \"max_completion_ns\": %llu, "
        "\"resilience\": ",
        v.name.c_str(), static_cast<unsigned long long>(v.p50_remote_ns),
        static_cast<unsigned long long>(v.p99_remote_ns),
        static_cast<unsigned long long>(v.detection_delay_ns),
        static_cast<unsigned long long>(v.hedge_ops),
        static_cast<unsigned long long>(v.max_completion_ns));
    WriteResilienceJson(f, v.totals);
    std::fprintf(f, "}%s\n", i + 1 < variants.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"p99_improvement\": %.2f,\n", improvement);
  std::fprintf(f, "  \"correlated_failures\": [\n");
  for (size_t i = 0; i < correlated.size(); ++i) {
    const CorrelatedResult& c = correlated[i];
    std::fprintf(f, "    {\"group\": [");
    for (size_t n = 0; n < c.group.size(); ++n) {
      std::fprintf(f, "%u%s", c.group[n], n + 1 < c.group.size() ? ", " : "");
    }
    std::fprintf(f,
                 "], \"reads_lost\": %llu, \"slab_repairs\": %llu, "
                 "\"repair_page_copies\": %llu, \"read_failovers\": %llu, "
                 "\"probe_tags_written\": %llu, \"probe_tags_lost\": %llu, "
                 "\"p99_remote_ns\": %llu}%s\n",
                 static_cast<unsigned long long>(c.reads_lost),
                 static_cast<unsigned long long>(c.slab_repairs),
                 static_cast<unsigned long long>(c.repair_copies),
                 static_cast<unsigned long long>(c.failovers),
                 static_cast<unsigned long long>(c.tags_written),
                 static_cast<unsigned long long>(c.tags_lost),
                 static_cast<unsigned long long>(c.p99_remote_ns),
                 i + 1 < correlated.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run(const bench::BenchArgs& args) {
  const bool smoke = args.smoke;
  const BenchGeometry geo = smoke ? SmokeGeometry() : FullGeometry();
  bench::PrintHeader(
      "Figure 16 (extension): gray failure + failover tails",
      "the paper's testbed is healthy; production is not - a gray memory "
      "node (answers everything, slowly) collapses demand-read p99 unless "
      "detection + hedged/retried reads steer around it");

  // Baseline first: its span fixes the injection time for both gray
  // variants (20% into the measured run, so ~80% of samples see the
  // fault).
  const FaultPlan no_faults;
  const VariantResult baseline =
      RunVariant(geo, "baseline", no_faults, /*mitigation=*/false,
                 /*monitor=*/false, /*gray_inject_ns=*/0);
  // completion_ns is elapsed time from the run start, so the healthy
  // span IS the max completion; faults are placed at fractions of it.
  const SimTimeNs span = baseline.max_completion_ns;
  const SimTimeNs inject = baseline.run_start_ns + span / 5;

  FaultPlan gray_plan;
  gray_plan.Gray(kGrayNode, geo.gray_stretch, inject, /*until=*/0);

  const VariantResult unmitigated =
      RunVariant(geo, "gray_unmitigated", gray_plan, /*mitigation=*/false,
                 /*monitor=*/true, inject);
  // The mitigated variant is the one worth watching: its trace shows the
  // gray_set instant, the monitor's suspect->gray track, and the reroute/
  // hedge/retry instants clawing the tail back.
  ObsOptions obs;
  if (args.trace) {
    obs.trace_path = args.trace_path;
  }
  if (args.timeseries) {
    obs.timeseries_path = args.timeseries_path;
  }
  obs.dump = true;
  const VariantResult mitigated =
      RunVariant(geo, "gray_mitigated", gray_plan, /*mitigation=*/true,
                 /*monitor=*/true, inject, /*tag_slots=*/0, obs);

  TextTable table;
  table.SetHeader({"variant", "p50 remote(us)", "p99 remote(us)",
                   "detect delay(ms)", "rerouted", "hedges", "retries"});
  const std::vector<const VariantResult*> rows = {&baseline, &unmitigated,
                                                 &mitigated};
  for (const VariantResult* v : rows) {
    char p50[32], p99[32], det[32], rer[32], hed[32], ret[32];
    std::snprintf(p50, sizeof(p50), "%.2f", ToUs(v->p50_remote_ns));
    std::snprintf(p99, sizeof(p99), "%.2f", ToUs(v->p99_remote_ns));
    std::snprintf(det, sizeof(det), "%.3f",
                  static_cast<double>(v->detection_delay_ns) / kNsPerMs);
    std::snprintf(rer, sizeof(rer), "%llu",
                  static_cast<unsigned long long>(
                      v->totals.Get(counter::kReadsRerouted)));
    std::snprintf(hed, sizeof(hed), "%llu",
                  static_cast<unsigned long long>(
                      v->totals.Get(counter::kHedgedReads)));
    std::snprintf(ret, sizeof(ret), "%llu",
                  static_cast<unsigned long long>(
                      v->totals.Get(counter::kReadRetries)));
    table.AddRow({v->name, p50, p99, det, rer, hed, ret});
  }
  std::printf("%s\n", table.Render().c_str());

  const double improvement =
      mitigated.p99_remote_ns == 0
          ? 0.0
          : static_cast<double>(unmitigated.p99_remote_ns) /
                static_cast<double>(mitigated.p99_remote_ns);
  std::printf("gray-node demand p99: unmitigated %.2f us vs mitigated "
              "%.2f us -> %.2fx improvement (acceptance bar: >= 3x)\n",
              ToUs(unmitigated.p99_remote_ns), ToUs(mitigated.p99_remote_ns),
              improvement);
  std::printf("detection window: gray marked %.3f ms after injection\n\n",
              static_cast<double>(mitigated.detection_delay_ns) / kNsPerMs);

  // Correlated-failure sweep: a 1-node domain loses nothing (repair
  // re-replicates every slab from its survivor); a 2-node domain with
  // replicas=2 takes out whole replica sets - those slabs are remapped
  // with no source, so repair_page_copies falls short of what the repair
  // count implies (the missing copies ARE the lost data).
  const SimTimeNs crash_at = baseline.run_start_ns + span / 3;
  const SimTimeNs recover_at = baseline.run_start_ns + 2 * span / 3;
  std::vector<CorrelatedResult> correlated;
  correlated.push_back(RunCorrelated(geo, {1}, crash_at, recover_at));
  correlated.push_back(RunCorrelated(geo, {1, 2}, crash_at, recover_at));
  for (const CorrelatedResult& c : correlated) {
    std::printf("correlated crash of %zu node(s): slab_repairs %llu, "
                "repair_copies %llu, probe tags lost %llu/%llu, "
                "reads_lost %llu, p99 %.2f us\n",
                c.group.size(),
                static_cast<unsigned long long>(c.slab_repairs),
                static_cast<unsigned long long>(c.repair_copies),
                static_cast<unsigned long long>(c.tags_lost),
                static_cast<unsigned long long>(c.tags_written),
                static_cast<unsigned long long>(c.reads_lost),
                ToUs(c.p99_remote_ns));
  }
  std::printf("\n");

  WriteJson(args.json_path.c_str(), geo, {baseline, unmitigated, mitigated},
            inject, improvement, correlated, smoke);
}

}  // namespace
}  // namespace leap

int main(int argc, char** argv) {
  leap::Run(leap::bench::ParseBenchArgs(argc, argv, "BENCH_failover.json"));
  return 0;
}
