// Figure 1: average time spent in each stage of the remote-page data path,
// default (block-layer) path vs Leap's lean path, plus device averages.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/blocklayer/request_queue.h"
#include "src/rdma/host_agent.h"
#include "src/stats/table.h"

namespace leap {
namespace {

// Measures the mean of a sampling function over n draws.
template <typename Fn>
double MeanUs(Fn&& fn, int n = 20000) {
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += fn();
  }
  return sum / n / 1000.0;
}

void Run() {
  bench::PrintHeader(
      "Figure 1 - data path stage latencies (averages, us)",
      "cache hit 0.27 | bio prep 10.04 | request queue 21.88 | dispatch 2.1 "
      "| HDD 91.48 | SSD 20 | RDMA 4.3");

  Rng rng(1);

  const BlockLayerConfig block;
  const auto prep = LatencyModel::LogNormal(block.prep_median_ns,
                                            block.prep_sigma,
                                            block.prep_min_ns);
  const auto queue = LatencyModel::LogNormal(block.queue_median_ns,
                                             block.queue_sigma,
                                             block.queue_min_ns);
  const auto dispatch = LatencyModel::Normal(block.dispatch_mean_ns,
                                             block.dispatch_stddev_ns,
                                             block.dispatch_min_ns);

  Hdd hdd;
  Ssd ssd;
  RemoteAgent node(0, 4096);
  HostAgent remote(HostAgentConfig{}, {&node}, 7);

  auto device_mean = [&rng](BackingStore& store) {
    double sum = 0;
    SimTimeNs now = 0;
    const int n = 4000;
    Rng addr_rng(99);
    for (int i = 0; i < n; ++i) {
      const IoRequest req = DemandRead(addr_rng.NextU64(1 << 22));
      SimTimeNs ready = 0;
      store.ReadPages({&req, 1}, now, rng, {&ready, 1});
      sum += static_cast<double>(ready - now);
      now = ready + 300000;
    }
    return sum / n / 1000.0;
  };

  const DefaultPathConfig vmm_hit;
  const LeapPathConfig leap_cfg;

  TextTable table;
  table.SetHeader({"stage", "paper(us)", "measured(us)"});
  table.AddRow({"page cache hit (optimized/Leap)", "0.27",
                std::to_string(leap_cfg.hit_cost_ns / 1000.0)});
  table.AddRow({"D-VMM cache hit floor (default)", "~1.0",
                std::to_string(vmm_hit.hit_cost_ns / 1000.0)});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f",
                MeanUs([&] { return static_cast<double>(prep.Sample(rng)); }));
  table.AddRow({"bio preparation / block-layer entry", "10.04", buf});
  std::snprintf(buf, sizeof(buf), "%.2f",
                MeanUs([&] { return static_cast<double>(queue.Sample(rng)); }));
  table.AddRow({"request queue: insert/merge/sort/stage", "21.88", buf});
  std::snprintf(
      buf, sizeof(buf), "%.2f",
      MeanUs([&] { return static_cast<double>(dispatch.Sample(rng)); }));
  table.AddRow({"dispatch queue handoff", "2.1", buf});
  std::snprintf(buf, sizeof(buf), "%.2f", leap_cfg.entry_mean_ns / 1000.0);
  table.AddRow({"Leap lean entry (replaces all three)", "~2.1", buf});
  std::snprintf(buf, sizeof(buf), "%.2f", device_mean(hdd));
  table.AddRow({"HDD 4KB read", "91.48", buf});
  std::snprintf(buf, sizeof(buf), "%.2f", device_mean(ssd));
  table.AddRow({"SSD 4KB read", "20", buf});
  std::snprintf(buf, sizeof(buf), "%.2f", device_mean(remote));
  table.AddRow({"RDMA 4KB read", "4.3", buf});
  std::printf("%s\n", table.Render().c_str());

  // End-to-end check: stride-10 misses through both full paths.
  auto default_micro =
      bench::RunMicro(DefaultVmmConfig(PrefetchKind::kReadAhead,
                                       bench::kMicroFrames, 42),
                      bench::MicroPattern::kStride10, 60000);
  auto leap_micro = bench::RunMicro(
      LeapVmmConfig(bench::kMicroFrames, 42), bench::MicroPattern::kStride10,
      60000);
  std::printf("end-to-end miss average: default %.1f us (paper ~38.3), "
              "leap %.1f us (paper ~6.4)\n",
              default_micro.run.miss_latency.Mean() / 1000.0,
              leap_micro.run.miss_latency.Mean() / 1000.0);
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
