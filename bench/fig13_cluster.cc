// Figure 13, scaled out: many hosts sharing a disaggregated memory pool
// over one fabric. The paper shows Leap surviving four concurrent apps on
// one host; this bench grows that to a cluster - hosts 1 -> 32 running
// mixed workloads (zipf / sequential / trace) against a fixed donor pool -
// and measures what no single-host run can: remote tail latency as a
// function of cluster load (per-link bandwidth fixed, so p99 rises with
// host count) and slab-placement imbalance across policies.
//
// Usage: fig13_cluster [--smoke] [--hosts N] [output.json]
//   --smoke   tiny configuration for CI (3 scales, small footprints)
//   --hosts N probe a single host-count scale instead of the built-in
//             sweep (placement comparison is skipped; N must be > 0)
//   output    trajectory JSON (default BENCH_cluster.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/cluster.h"
#include "src/stats/table.h"
#include "src/workload/cluster_mix.h"

namespace leap {
namespace {

struct BenchGeometry {
  std::vector<size_t> host_scales;
  size_t nodes = 4;
  size_t footprint_pages = 4096;
  size_t accesses_per_host = 20000;
  size_t slab_pages = 256;
};

BenchGeometry FullGeometry() {
  return {{1, 2, 4, 8, 16, 32}, 4, 4096, 20000, 256};
}

BenchGeometry SmokeGeometry() {
  return {{1, 2, 4}, 2, 1024, 4000, 64};
}

ClusterConfig MakeConfig(const BenchGeometry& geo, size_t hosts,
                         PlacementPolicy placement) {
  ClusterConfig config;
  config.hosts = hosts;
  config.nodes = geo.nodes;
  config.node_capacity_slabs = 4096;
  config.host = LeapVmmConfig(geo.footprint_pages, /*seed=*/42);
  config.host.host_agent.slab_pages = geo.slab_pages;
  config.placement = placement;
  config.seed = 91;
  return config;
}

struct ScaleResult {
  size_t hosts = 0;
  uint64_t p50_remote_ns = 0;
  uint64_t p99_remote_ns = 0;
  double fabric_queue_delay_mean_ns = 0.0;
  uint64_t fabric_ops = 0;
  size_t slab_imbalance = 0;
  uint64_t capacity_exhausted = 0;
  double agg_accesses_per_sim_sec = 0.0;
  uint64_t total_remote_reads = 0;  // determinism fingerprint
  SimTimeNs max_completion_ns = 0;
  // Resilience counters: all zero in this fault-free bench (the invariant
  // the determinism tests pin down), nonzero only if mitigation ever fires.
  uint64_t read_retries = 0;
  uint64_t deadline_misses = 0;
  uint64_t hedged_reads = 0;
  uint64_t hedge_wins = 0;
  uint64_t reads_rerouted = 0;
  uint64_t gray_transitions = 0;
};

ScaleResult RunScale(const BenchGeometry& geo, size_t hosts,
                     PlacementPolicy placement, std::ostream* dump = nullptr) {
  Cluster cluster(MakeConfig(geo, hosts, placement));
  std::vector<std::unique_ptr<AccessStream>> streams;
  std::vector<ClusterAppSpec> specs;
  std::vector<Pid> pids;
  SimTimeNs warm_end = 0;
  for (size_t h = 0; h < hosts; ++h) {
    const Pid pid =
        cluster.host(h).CreateProcess(geo.footprint_pages / 2);
    pids.push_back(pid);
    warm_end = WarmUp(cluster.host(h), pid, geo.footprint_pages, warm_end);
    streams.push_back(MakeClusterMixStream(h, geo.footprint_pages));
  }
  for (size_t h = 0; h < hosts; ++h) {
    RunConfig run;
    run.total_accesses = geo.accesses_per_host;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  const auto results = cluster.Run(std::move(specs));

  ScaleResult out;
  out.hosts = hosts;
  Histogram merged;
  uint64_t total_accesses = 0;
  for (size_t h = 0; h < hosts; ++h) {
    merged.Merge(cluster.host_remote_latency(h));
    total_accesses += results[h].accesses;
    out.max_completion_ns =
        std::max(out.max_completion_ns, results[h].completion_ns);
  }
  out.p50_remote_ns = merged.Percentile(0.5);
  out.p99_remote_ns = merged.Percentile(0.99);
  out.fabric_queue_delay_mean_ns = cluster.fabric().queue_delay_hist().Mean();
  const ClusterStats stats = cluster.Stats();
  out.fabric_ops = stats.fabric_ops;
  out.slab_imbalance = stats.SlabImbalance();
  out.capacity_exhausted =
      stats.totals.Get(counter::kRemoteCapacityExhausted);
  out.total_remote_reads = stats.totals.Get(counter::kRemoteReads);
  out.read_retries = stats.totals.Get(counter::kReadRetries);
  out.deadline_misses = stats.totals.Get(counter::kReadDeadlineMisses);
  out.hedged_reads = stats.totals.Get(counter::kHedgedReads);
  out.hedge_wins = stats.totals.Get(counter::kHedgeWins);
  out.reads_rerouted = stats.totals.Get(counter::kReadsRerouted);
  out.gray_transitions = stats.totals.Get(counter::kGrayTransitions);
  out.agg_accesses_per_sim_sec =
      out.max_completion_ns == 0
          ? 0.0
          : static_cast<double>(total_accesses) / ToSec(out.max_completion_ns);
  if (dump != nullptr) {
    cluster.DumpStats(*dump);
  }
  return out;
}

size_t ImbalanceWith(const BenchGeometry& geo, size_t hosts,
                     PlacementPolicy placement) {
  return RunScale(geo, hosts, placement).slab_imbalance;
}

void WriteJson(const char* path, const BenchGeometry& geo,
               const std::vector<ScaleResult>& scales, size_t ff_imbalance,
               size_t po2_imbalance, size_t striped_imbalance, bool smoke,
               bool include_placement) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  bench::WriteSchemaPreamble(
      f, {"fig13_cluster", /*seed=*/91, geo.host_scales.back(), geo.nodes,
          "fifo", PlacementPolicyName(PlacementPolicy::kPowerOfTwo)});
  std::fprintf(f,
               "  \"geometry\": {\"nodes\": %zu, \"footprint_pages\": %zu, "
               "\"accesses_per_host\": %zu, \"slab_pages\": %zu},\n",
               geo.nodes, geo.footprint_pages, geo.accesses_per_host,
               geo.slab_pages);
  std::fprintf(f, "  \"workload_mix\": [\"zipf-0.99\", \"sequential\", "
                  "\"trace(stride-8)\"],\n");
  std::fprintf(f, "  \"scales\": [\n");
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleResult& s = scales[i];
    std::fprintf(
        f,
        "    {\"hosts\": %zu, \"p50_remote_ns\": %llu, \"p99_remote_ns\": "
        "%llu, \"fabric_queue_delay_mean_ns\": %.1f, \"fabric_ops\": %llu, "
        "\"slab_imbalance\": %zu, \"capacity_exhausted\": %llu, "
        "\"agg_accesses_per_sim_sec\": %.0f, \"remote_reads\": %llu, "
        "\"max_completion_ns\": %llu, "
        "\"resilience\": {\"read_retries\": %llu, \"deadline_misses\": %llu, "
        "\"hedged_reads\": %llu, \"hedge_wins\": %llu, "
        "\"reads_rerouted\": %llu, \"gray_transitions\": %llu}}%s\n",
        s.hosts, static_cast<unsigned long long>(s.p50_remote_ns),
        static_cast<unsigned long long>(s.p99_remote_ns),
        s.fabric_queue_delay_mean_ns,
        static_cast<unsigned long long>(s.fabric_ops), s.slab_imbalance,
        static_cast<unsigned long long>(s.capacity_exhausted),
        s.agg_accesses_per_sim_sec,
        static_cast<unsigned long long>(s.total_remote_reads),
        static_cast<unsigned long long>(s.max_completion_ns),
        static_cast<unsigned long long>(s.read_retries),
        static_cast<unsigned long long>(s.deadline_misses),
        static_cast<unsigned long long>(s.hedged_reads),
        static_cast<unsigned long long>(s.hedge_wins),
        static_cast<unsigned long long>(s.reads_rerouted),
        static_cast<unsigned long long>(s.gray_transitions),
        i + 1 < scales.size() ? "," : "");
  }
  if (include_placement) {
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"placement_imbalance_at_4_hosts\": {\"first_fit\": %zu, "
                 "\"power_of_two\": %zu, \"striped\": %zu}\n",
                 ff_imbalance, po2_imbalance, striped_imbalance);
  } else {
    std::fprintf(f, "  ]\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run(bool smoke, size_t hosts_override, const char* json_path) {
  BenchGeometry geo = smoke ? SmokeGeometry() : FullGeometry();
  if (hosts_override > 0) {
    // Single-point probe: one scale, no placement-policy comparison.
    geo.host_scales = {hosts_override};
  }
  bench::PrintHeader(
      "Figure 13 (cluster): hosts 1 -> 32 sharing a fixed donor pool",
      "single-host concurrency (paper: 1.1-2.4x across four apps) scaled "
      "out - fixed per-link bandwidth, so remote p99 rises with host "
      "count; power-of-two-choices keeps slab placement balanced");

  std::vector<ScaleResult> scales;
  TextTable table;
  table.SetHeader({"hosts", "p50 remote(us)", "p99 remote(us)",
                   "fabric qdelay mean(us)", "agg acc/sim-s",
                   "slab imbalance"});
  for (size_t hosts : geo.host_scales) {
    // Full per-class/per-node dump for the largest scale only (the one
    // whose contention story the figure is about).
    std::ostream* dump =
        hosts == geo.host_scales.back() ? &std::cout : nullptr;
    scales.push_back(RunScale(geo, hosts, PlacementPolicy::kPowerOfTwo, dump));
    const ScaleResult& s = scales.back();
    char p50[32], p99[32], qd[32], thr[32], imb[32], hs[32];
    std::snprintf(hs, sizeof(hs), "%zu", s.hosts);
    std::snprintf(p50, sizeof(p50), "%.2f", ToUs(s.p50_remote_ns));
    std::snprintf(p99, sizeof(p99), "%.2f", ToUs(s.p99_remote_ns));
    std::snprintf(qd, sizeof(qd), "%.2f",
                  s.fabric_queue_delay_mean_ns / 1000.0);
    std::snprintf(thr, sizeof(thr), "%.0f", s.agg_accesses_per_sim_sec);
    std::snprintf(imb, sizeof(imb), "%zu", s.slab_imbalance);
    table.AddRow({hs, p50, p99, qd, thr, imb});
  }
  std::printf("%s\n", table.Render().c_str());

  // Placement-policy comparison at the 4-host scale (acceptance: two
  // choices beats first-fit on imbalance). The power-of-two number is
  // already in the sweep above; only the other policies need a run.
  // Skipped under --hosts: a single-point probe has no 4-host anchor.
  size_t ff = 0, po2 = 0, striped = 0;
  const bool include_placement = hosts_override == 0;
  if (include_placement) {
    const size_t compare_hosts = 4;
    for (const ScaleResult& s : scales) {
      if (s.hosts == compare_hosts) {
        po2 = s.slab_imbalance;
      }
    }
    ff = ImbalanceWith(geo, compare_hosts, PlacementPolicy::kFirstFit);
    striped = ImbalanceWith(geo, compare_hosts, PlacementPolicy::kStriped);
    std::printf("slab imbalance @ %zu hosts: first-fit %zu, "
                "power-of-two-choices %zu, striped %zu\n\n",
                compare_hosts, ff, po2, striped);
  }

  WriteJson(json_path, geo, scales, ff, po2, striped, smoke,
            include_placement);
}

}  // namespace
}  // namespace leap

int main(int argc, char** argv) {
  bool smoke = false;
  size_t hosts_override = 0;
  const char* json_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      hosts_override = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (hosts_override == 0) {
        std::fprintf(stderr, "--hosts requires a positive integer\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--hosts=", 8) == 0) {
      hosts_override =
          static_cast<size_t>(std::strtoul(argv[i] + 8, nullptr, 10));
      if (hosts_override == 0) {
        std::fprintf(stderr, "--hosts requires a positive integer\n");
        return 1;
      }
    } else {
      json_path = argv[i];
    }
  }
  leap::Run(smoke, hosts_override, json_path);
  return 0;
}
