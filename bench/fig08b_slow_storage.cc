// Figure 8b: the Leap prefetcher plugged into the DEFAULT data path while
// paging to slow storage (HDD / SSD), vs Linux Read-Ahead. The prefetching
// algorithm alone - no lean path - still shortens completion time.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/table.h"

namespace leap {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 8b - Leap prefetcher on slow storage, PowerGraph at 50% "
      "memory",
      "completion time: HDD 424.47s read-ahead -> 263.9s leap (1.61x); "
      "SSD 257.55s -> 206.65s (1.25x)");

  constexpr size_t kAccesses = 250000;
  struct Cell {
    const char* label;
    Medium medium;
    PrefetchKind prefetcher;
  };
  const Cell cells[] = {
      {"HDD + Read-Ahead", Medium::kHdd, PrefetchKind::kReadAhead},
      {"HDD + Leap prefetcher", Medium::kHdd, PrefetchKind::kLeap},
      {"SSD + Read-Ahead", Medium::kSsd, PrefetchKind::kReadAhead},
      {"SSD + Leap prefetcher", Medium::kSsd, PrefetchKind::kLeap},
  };

  TextTable table;
  table.SetHeader({"config", "completion(s)", "miss mean(us)", "coverage(%)"});
  double hdd_times[2] = {0, 0};
  double ssd_times[2] = {0, 0};
  for (const Cell& cell : cells) {
    MachineConfig config = DiskSwapConfig(cell.medium, cell.prefetcher,
                                          bench::kMicroFrames, 41);
    auto result = bench::RunAppModel(config, /*PowerGraph*/ 0, 50, kAccesses);
    const double coverage =
        100.0 * result.machine->counters().Ratio(counter::kPrefetchHits,
                                                 counter::kPageFaults);
    char miss[32];
    char cov[32];
    std::snprintf(miss, sizeof(miss), "%.1f",
                  result.run.miss_latency.Mean() / 1000.0);
    std::snprintf(cov, sizeof(cov), "%.1f", coverage);
    table.AddRow({cell.label, bench::FormatCompletion(result.run), miss, cov});
    const double secs = ToSec(result.run.completion_ns);
    if (cell.medium == Medium::kHdd) {
      hdd_times[cell.prefetcher == PrefetchKind::kLeap ? 1 : 0] = secs;
    } else {
      ssd_times[cell.prefetcher == PrefetchKind::kLeap ? 1 : 0] = secs;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("speedup from Leap prefetcher: HDD %.2fx (paper 1.61x), "
              "SSD %.2fx (paper 1.25x)\n",
              hdd_times[0] / hdd_times[1], ssd_times[0] / ssd_times[1]);
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
