// Figure 17 (this repo's extension): tiered far memory - DRAM ⇄ CXL-like
// fast tier ⇄ fabric remote ⇄ SSD - with a background hot/cold migrator.
//
// The paper's premise is that remote memory is usable when the data path
// hides its latency; a natural follow-on is a *tiered* backing store where
// a small, fast, CXL-like pool absorbs the hot part of the swapped set and
// the fabric only sees the cold tail. This bench measures that: an 8-host
// cluster funnels into a single donor node (deliberate incast on its
// downlink), every host runs two scrambled-zipf processes with a short
// think time (hot pages scattered across the vpn range, so first-touch
// placement is heat-agnostic; the think time keeps the loop approximately
// open, so shed load shows up as shorter queues rather than compressing
// the schedule back to saturation), and we sweep the CXL capacity ratio x
// migrator on/off. With the migrator off, the fast-tier hit ratio is
// pinned near capacity/slots (placement is random w.r.t. heat); with it
// on, the kswapd-style migrator concentrates the zipf head in CXL, the
// fast-tier hit ratio climbs, the fabric sheds demand misses, and the
// demand p99 drops. Migration traffic itself rides IoClass::kMigration
// under a per-link token-bucket bandwidth cap, so the demand-class
// queue-delay EWMA stays flat.
//
// Usage: fig17_tiering [--smoke] [--trace[=path]] [--timeseries[=path]]
//                      [output.json]
//   --smoke       smaller footprints/accesses for CI (still 8 hosts)
//   --trace       flight-record the headline variant (1/4-ratio, migrator
//                 on) and export chrome://tracing JSON
//   --timeseries  sample per-tier occupancy / migration counters to JSONL
//   output        results JSON (default BENCH_tier.json)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/cluster.h"
#include "src/stats/table.h"

namespace leap {
namespace {

struct BenchGeometry {
  size_t hosts = 8;
  size_t nodes = 1;
  size_t footprint_pages = 4096;
  size_t accesses_per_host = 20000;
  size_t slab_pages = 256;
};

BenchGeometry FullGeometry() { return {8, 1, 4096, 20000, 256}; }
BenchGeometry SmokeGeometry() { return {8, 1, 1024, 4000, 64}; }

// CXL capacity as a fraction of each host's footprint: 1/denominator.
constexpr size_t kRatioDenoms[] = {8, 4, 2};

// Migration rides the links at no more than a quarter of a link's
// bandwidth (the repair-style pacing cap, generalized to kMigration).
constexpr double kMigrationFraction = 0.25;

struct TierVariant {
  bool tiered = false;
  size_t ratio_denom = 0;  // cxl = footprint / ratio_denom
  bool migrator = false;
};

struct TierResult {
  TierVariant variant;
  size_t cxl_capacity_pages = 0;
  double fast_hit_ratio = 0.0;  // CXL share of demand reads hitting the store
  uint64_t demand_p50_ns = 0;
  uint64_t demand_p99_ns = 0;
  double demand_qdelay_mean_ns = 0.0;
  uint64_t downlink_demand_ops = 0;
  uint64_t downlink_migration_ops = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t spills = 0;
  std::vector<size_t> tier_pages;
  uint64_t total_remote_reads = 0;  // determinism fingerprint
  SimTimeNs max_completion_ns = 0;
};

const char* VariantKey(const TierVariant& v, char* buf, size_t n) {
  if (!v.tiered) {
    std::snprintf(buf, n, "untiered");
  } else {
    std::snprintf(buf, n, "cxl_1_%zu_migrator_%s", v.ratio_denom,
                  v.migrator ? "on" : "off");
  }
  return buf;
}

TierResult RunOnce(const BenchGeometry& geo, const TierVariant& variant,
                   const std::string& trace_path = "",
                   const std::string& timeseries_path = "",
                   std::ostream* dump = nullptr) {
  ClusterConfig config;
  config.hosts = geo.hosts;
  config.nodes = geo.nodes;
  config.node_capacity_slabs = 4096;
  config.host = LeapVmmConfig(geo.footprint_pages, /*seed=*/42);
  config.host.host_agent.slab_pages = geo.slab_pages;
  // Migration protection is belt and suspenders: the per-link bandwidth
  // cap bounds how much wire time migration can consume, and the
  // demand-priority scheduler keeps what remains behind demand fetches
  // (a paced burst must not FIFO-block a faulting process).
  config.fabric.sched.kind = LinkSchedulerKind::kDemandPriority;
  config.fabric.sched.migration_bandwidth_fraction = kMigrationFraction;
  if (variant.tiered) {
    config.host.tier.enabled = true;
    config.host.tier.cxl_capacity_pages =
        geo.footprint_pages / variant.ratio_denom;
    config.host.tier.migrator_enabled = variant.migrator;
    // Heat accrues one count per fault-in (a resident page's slot is not
    // re-read), so qualify a page on its first re-fault and age gently -
    // the default cadence (threshold 3, halve every 8 ticks) decays faster
    // than a paging workload can accrue.
    config.host.tier.promote_threshold = 2;
    config.host.tier.decay_every_ticks = 128;
    // The copies are staggered across the tick, but all hosts' migration
    // funnels into the shared donor downlink: keep the worst-case
    // aggregate (hosts/nodes x 2*batch per period) under the 25%-cap
    // pacing stride (~2.4 us/op), or the paced ops' far-future wire slots
    // ratchet the in-flight ledger and the congestion term charges every
    // class. batch 24 -> <= 48 copies/tick/host -> ~2.6 us downlink
    // inter-arrival at 8 hosts on 1 node: at the budget's edge.
    config.host.tier.migrate_batch = 24;
  }
  config.seed = 91;
  config.trace.enabled = !trace_path.empty();
  config.sampler.enabled = !timeseries_path.empty();
  Cluster cluster(config);

  // Two faulting processes per host: a single zero-think stream carries at
  // most one outstanding fault, which can never congest the donor's
  // downlink; two per host across 8 hosts put 16 concurrent demand
  // streams on one link - the incast regime where shedding misses to the
  // fast tier visibly shortens the demand queue.
  constexpr size_t kProcsPerHost = 2;
  std::vector<std::unique_ptr<AccessStream>> streams;
  std::vector<ClusterAppSpec> specs;
  std::vector<Pid> pids;
  SimTimeNs warm_end = 0;
  for (size_t h = 0; h < geo.hosts; ++h) {
    for (size_t p = 0; p < kProcsPerHost; ++p) {
      // DRAM at 1/8 of each footprint: far-memory-heavy on purpose. With
      // ample DRAM the LRU-resident set absorbs the zipf head and the
      // fault stream degenerates to the distribution's near-uniform tail,
      // which no placement can beat; at 1/8 the swapped set spans ranks
      // with ~8x weight spread, a real hot band for the fast tier to
      // capture.
      const Pid pid = cluster.host(h).CreateProcess(geo.footprint_pages / 8);
      pids.push_back(pid);
      warm_end = WarmUp(cluster.host(h), pid, geo.footprint_pages, warm_end);
      // Scrambled zipf: popularity is zipf-0.99 but the hot ranks are
      // scattered over the vpn range, so the sequential warm-up's eviction
      // order (and therefore first-touch tier placement) carries no heat
      // signal - whatever ends up in CXL is a random sample. Any fast-tier
      // concentration beyond capacity/slots is the migrator's doing.
      streams.push_back(std::make_unique<ScrambledZipfStream>(
          geo.footprint_pages, 0.99, /*think_ns=*/2000));
    }
  }
  for (size_t h = 0; h < geo.hosts; ++h) {
    for (size_t p = 0; p < kProcsPerHost; ++p) {
      const size_t i = h * kProcsPerHost + p;
      RunConfig run;
      run.total_accesses = geo.accesses_per_host;
      run.start_time_ns = warm_end + 10 * kNsPerMs;
      run.seed = 100 + 100 * p + h;
      specs.push_back({h, pids[i], streams[i].get(), run});
    }
  }
  const auto results = cluster.Run(std::move(specs));

  TierResult out;
  out.variant = variant;
  out.cxl_capacity_pages =
      variant.tiered ? geo.footprint_pages / variant.ratio_denom : 0;
  Histogram demand;
  for (const RunResult& r : results) {
    demand.Merge(r.miss_latency);
    out.max_completion_ns = std::max(out.max_completion_ns, r.completion_ns);
  }
  out.demand_p50_ns = demand.Percentile(0.5);
  out.demand_p99_ns = demand.Percentile(0.99);
  const ClusterStats stats = cluster.Stats();
  const uint64_t fast = stats.totals.Get(counter::kTierFastHits);
  const uint64_t slow = stats.totals.Get(counter::kTierSlowHits);
  out.fast_hit_ratio =
      fast + slow == 0 ? 0.0
                       : static_cast<double>(fast) /
                             static_cast<double>(fast + slow);
  out.demand_qdelay_mean_ns =
      stats.class_queue_delay_mean_ns[static_cast<size_t>(
          IoClass::kDemandRead)];
  out.downlink_demand_ops = stats.ClassOps(IoClass::kDemandRead);
  out.downlink_migration_ops = stats.ClassOps(IoClass::kMigration);
  out.promotions = stats.totals.Get(counter::kTierPromotions);
  out.demotions = stats.totals.Get(counter::kTierDemotions);
  out.spills = stats.totals.Get(counter::kTierSpills);
  out.tier_pages = stats.tier_pages;
  out.total_remote_reads = stats.totals.Get(counter::kRemoteReads);
  if (!trace_path.empty() && cluster.trace() != nullptr) {
    std::ofstream tf(trace_path);
    cluster.trace()->ExportChromeTrace(tf);
    std::printf("wrote %s (%zu events)\n", trace_path.c_str(),
                cluster.trace()->size());
  }
  if (!timeseries_path.empty() && cluster.sampler() != nullptr) {
    std::ofstream ts(timeseries_path);
    cluster.sampler()->WriteJsonl(ts);
    std::printf("wrote %s (%zu samples)\n", timeseries_path.c_str(),
                cluster.sampler()->samples().size());
  }
  if (dump != nullptr) {
    cluster.DumpStats(*dump);
  }
  return out;
}

void PrintRow(TextTable& table, const TierResult& r) {
  char cxl[32], hit[32], p50[32], p99[32], dq[32], mig[32];
  if (r.variant.tiered) {
    std::snprintf(cxl, sizeof(cxl), "1/%zu", r.variant.ratio_denom);
  } else {
    std::snprintf(cxl, sizeof(cxl), "-");
  }
  std::snprintf(hit, sizeof(hit), "%.3f", r.fast_hit_ratio);
  std::snprintf(p50, sizeof(p50), "%.2f", ToUs(r.demand_p50_ns));
  std::snprintf(p99, sizeof(p99), "%.2f", ToUs(r.demand_p99_ns));
  std::snprintf(dq, sizeof(dq), "%.2f", r.demand_qdelay_mean_ns / 1000.0);
  std::snprintf(mig, sizeof(mig), "%llu",
                static_cast<unsigned long long>(r.promotions + r.demotions));
  table.AddRow({cxl,
                !r.variant.tiered ? "-" : r.variant.migrator ? "on" : "off",
                hit, p50, p99, dq, mig});
}

void EmitResult(FILE* f, const TierResult& r, const char* trailing) {
  char key[64];
  VariantKey(r.variant, key, sizeof(key));
  std::fprintf(
      f,
      "  \"%s\": {\"tiered\": %s, \"cxl_capacity_pages\": %zu, "
      "\"migrator\": \"%s\", \"fast_tier_hit_ratio\": %.4f, "
      "\"demand_p50_ns\": %llu, \"demand_p99_ns\": %llu, "
      "\"demand_qdelay_mean_ns\": %.1f, \"downlink_demand_ops\": %llu, "
      "\"downlink_migration_ops\": %llu, \"tier_promotions\": %llu, "
      "\"tier_demotions\": %llu, \"tier_spills\": %llu, "
      "\"remote_reads\": %llu, \"max_completion_ns\": %llu}%s\n",
      key, r.variant.tiered ? "true" : "false", r.cxl_capacity_pages,
      !r.variant.tiered ? "n/a" : r.variant.migrator ? "on" : "off",
      r.fast_hit_ratio, static_cast<unsigned long long>(r.demand_p50_ns),
      static_cast<unsigned long long>(r.demand_p99_ns),
      r.demand_qdelay_mean_ns,
      static_cast<unsigned long long>(r.downlink_demand_ops),
      static_cast<unsigned long long>(r.downlink_migration_ops),
      static_cast<unsigned long long>(r.promotions),
      static_cast<unsigned long long>(r.demotions),
      static_cast<unsigned long long>(r.spills),
      static_cast<unsigned long long>(r.total_remote_reads),
      static_cast<unsigned long long>(r.max_completion_ns), trailing);
}

const TierResult* Find(const std::vector<TierResult>& rows, size_t denom,
                       bool migrator) {
  for (const TierResult& r : rows) {
    if (r.variant.tiered && r.variant.ratio_denom == denom &&
        r.variant.migrator == migrator) {
      return &r;
    }
  }
  return nullptr;
}

void WriteJson(const char* path, const BenchGeometry& geo,
               const std::vector<TierResult>& rows, bool smoke) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  bench::WriteSchemaPreamble(
      f, {"fig17_tiering", /*seed=*/91, geo.hosts, geo.nodes,
          LinkSchedulerKindName(LinkSchedulerKind::kDemandPriority),
          PlacementPolicyName(PlacementPolicy::kPowerOfTwo)});
  std::fprintf(f,
               "  \"geometry\": {\"hosts\": %zu, \"nodes\": %zu, "
               "\"footprint_pages\": %zu, \"accesses_per_host\": %zu, "
               "\"slab_pages\": %zu},\n",
               geo.hosts, geo.nodes, geo.footprint_pages,
               geo.accesses_per_host, geo.slab_pages);
  std::fprintf(f,
               "  \"tiering\": {\"cxl_ratios\": [\"1/8\", \"1/4\", "
               "\"1/2\"], \"migration_bandwidth_fraction\": %.2f, "
               "\"workload\": \"scrambled-zipf-0.99, zero think\"},\n",
               kMigrationFraction);
  for (const TierResult& r : rows) {
    EmitResult(f, r, ",");
  }
  // Headline: per-ratio migrator effect - fast-tier hit ratio gained and
  // demand p99 speedup of migrator-on over migrator-off.
  std::fprintf(f, "  \"improvement\": {");
  bool first = true;
  for (const size_t denom : kRatioDenoms) {
    const TierResult* off = Find(rows, denom, false);
    const TierResult* on = Find(rows, denom, true);
    if (off == nullptr || on == nullptr) {
      continue;
    }
    const double speedup =
        on->demand_p99_ns == 0
            ? 0.0
            : static_cast<double>(off->demand_p99_ns) /
                  static_cast<double>(on->demand_p99_ns);
    std::fprintf(f,
                 "%s\"cxl_1_%zu_hit_ratio_gain\": %.4f, "
                 "\"cxl_1_%zu_demand_p99_speedup\": %.3f",
                 first ? "" : ", ", denom,
                 on->fast_hit_ratio - off->fast_hit_ratio, denom, speedup);
    first = false;
  }
  std::fprintf(f, "}\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run(const bench::BenchArgs& args) {
  const BenchGeometry geo = args.smoke ? SmokeGeometry() : FullGeometry();
  bench::PrintHeader(
      "Figure 17 (extension): tiered far memory with a hot/cold migrator",
      "4 hosts, scrambled-zipf-0.99 storms; DRAM / CXL-like tier / fabric "
      "remote / SSD, sweeping CXL:footprint ratio x background migrator "
      "on/off (migration bandwidth-capped at 25% per link)");

  std::vector<TierResult> rows;
  rows.push_back(RunOnce(geo, {/*tiered=*/false, 0, false}));
  for (const size_t denom : kRatioDenoms) {
    for (const bool migrator : {false, true}) {
      // The 1/4-ratio migrator-on run is the headline variant: it carries
      // the optional trace/timeseries and the human-readable stats dump.
      const bool headline = denom == 4 && migrator;
      rows.push_back(RunOnce(
          geo, {/*tiered=*/true, denom, migrator},
          headline && args.trace ? args.trace_path : "",
          headline && args.timeseries ? args.timeseries_path : "",
          headline ? &std::cout : nullptr));
    }
  }

  TextTable table;
  table.SetHeader({"cxl ratio", "migrator", "fast-hit ratio", "p50(us)",
                   "p99(us)", "demand qdelay(us)", "migrations"});
  for (const TierResult& r : rows) {
    PrintRow(table, r);
  }
  std::printf("%s\n", table.Render().c_str());
  const TierResult* off = Find(rows, 4, false);
  const TierResult* on = Find(rows, 4, true);
  if (off != nullptr && on != nullptr) {
    std::printf(
        "cxl=1/4 footprint: fast-tier hit ratio %.3f -> %.3f, demand p99 "
        "%.2f us -> %.2f us with the migrator on\n\n",
        off->fast_hit_ratio, on->fast_hit_ratio, ToUs(off->demand_p99_ns),
        ToUs(on->demand_p99_ns));
  }

  WriteJson(args.json_path.c_str(), geo, rows, args.smoke);
}

}  // namespace
}  // namespace leap

int main(int argc, char** argv) {
  leap::Run(leap::bench::ParseBenchArgs(argc, argv, "BENCH_tier.json"));
  return 0;
}
