// Figure 15 (this repo's extension): per-link fabric QoS under an
// antagonist tenant - the link-layer half of the paper's demand-first
// data-path claim.
//
// Section 4 of the paper argues the win from prefetching comes from a lean,
// prioritized path where prefetches never delay demand fetches; PR 3's
// budget governor enforced that at the *source* (per-tenant windows), and
// this bench measures the other half: scheduling on the fabric links
// themselves. An 8-host cluster shares a 2-node donor pool. Host 0 is the
// antagonist (zipf-0.99 storm behind aggressive next-8-line prefetching:
// nearly pure pollution), hosts 1..7 are sequential victims. The same
// cluster runs under FIFO links (baseline), strict demand-priority links,
// and per-tenant DRR links - each with the budget governor off and on
// (stacked source + link QoS). Victim demand-read p99 is the headline:
// both schedulers must beat FIFO under the storm.
//
// Usage: fig15_qos [--smoke] [--timeseries[=path]] [output.json]
//   --smoke       smaller footprints/accesses for CI (still 8 hosts)
//   --timeseries  sample the demand-priority+governed run's EWMAs/budgets/
//                 windowed p99 to JSONL (default BENCH_qos.timeseries.jsonl)
//   output        results JSON (default BENCH_qos.json)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/cluster.h"
#include "src/stats/table.h"

namespace leap {
namespace {

struct BenchGeometry {
  size_t hosts = 8;
  size_t nodes = 2;
  size_t footprint_pages = 4096;
  size_t accesses_per_host = 20000;
  size_t slab_pages = 256;
};

BenchGeometry FullGeometry() { return {8, 2, 4096, 20000, 256}; }
BenchGeometry SmokeGeometry() { return {8, 2, 1024, 4000, 64}; }

PrefetchBudgetConfig GovernorConfig() {
  PrefetchBudgetConfig budget;
  budget.enabled = true;
  budget.min_budget = 1;
  budget.max_budget = 8;
  budget.queue_delay_threshold_ns = 5'000.0;
  budget.decrease_factor = 0.5;
  budget.increase_step = 0.5;
  budget.adjust_period_ns = 500 * kNsPerUs;
  budget.accuracy_keep_threshold = 0.5;
  return budget;
}

struct QosResult {
  LinkSchedulerKind sched = LinkSchedulerKind::kFifo;
  bool governed = false;
  uint64_t victim_demand_p50_ns = 0;
  uint64_t victim_demand_p99_ns = 0;
  uint64_t antagonist_demand_p99_ns = 0;
  double wasted_ratio = 0.0;
  double demand_qdelay_mean_ns = 0.0;
  double prefetch_qdelay_mean_ns = 0.0;
  uint64_t downlink_demand_ops = 0;
  uint64_t downlink_prefetch_ops = 0;
  uint64_t total_remote_reads = 0;  // determinism fingerprint
  SimTimeNs max_completion_ns = 0;
};

// `timeseries_path` non-empty enables the StatsSampler on this run (pure
// observation; measured numbers are bit-identical either way) and `dump`
// non-null gets the human-readable cluster stats dump.
QosResult RunOnce(const BenchGeometry& geo, LinkSchedulerKind sched,
                  bool governed, const std::string& timeseries_path = "",
                  std::ostream* dump = nullptr) {
  ClusterConfig config;
  config.hosts = geo.hosts;
  config.nodes = geo.nodes;
  config.node_capacity_slabs = 4096;
  config.host = LeapVmmConfig(geo.footprint_pages, /*seed=*/42);
  config.host.prefetcher = PrefetchKind::kNextNLine;
  config.host.host_agent.slab_pages = geo.slab_pages;
  config.fabric.sched.kind = sched;
  if (governed) {
    config.host.budget = GovernorConfig();
  }
  config.seed = 91;
  config.sampler.enabled = !timeseries_path.empty();
  Cluster cluster(config);

  std::vector<std::unique_ptr<AccessStream>> streams;
  std::vector<ClusterAppSpec> specs;
  std::vector<Pid> pids;
  SimTimeNs warm_end = 0;
  for (size_t h = 0; h < geo.hosts; ++h) {
    const Pid pid = cluster.host(h).CreateProcess(geo.footprint_pages / 2);
    pids.push_back(pid);
    if (h == 0) {
      // Antagonist: a zipf storm over 4x the victims' footprint at zero
      // think time - every fault lands on the scattered cold tail, where
      // next-8-line prefetches neighbors that are almost never
      // re-referenced: maximum pollution per fault.
      const size_t storm_footprint = 4 * geo.footprint_pages;
      warm_end = WarmUp(cluster.host(h), pid, storm_footprint, warm_end);
      streams.push_back(std::make_unique<ZipfStream>(storm_footprint, 0.99,
                                                     /*think_ns=*/0));
    } else {
      warm_end = WarmUp(cluster.host(h), pid, geo.footprint_pages, warm_end);
      streams.push_back(std::make_unique<SequentialStream>(
          geo.footprint_pages, /*think_ns=*/300));
    }
  }
  for (size_t h = 0; h < geo.hosts; ++h) {
    RunConfig run;
    run.total_accesses = geo.accesses_per_host;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  const auto results = cluster.Run(std::move(specs));

  QosResult out;
  out.sched = sched;
  out.governed = governed;
  Histogram victims;
  for (size_t h = 1; h < geo.hosts; ++h) {
    victims.Merge(results[h].miss_latency);
  }
  out.victim_demand_p50_ns = victims.Percentile(0.5);
  out.victim_demand_p99_ns = victims.Percentile(0.99);
  out.antagonist_demand_p99_ns = results[0].miss_latency.Percentile(0.99);
  const ClusterStats stats = cluster.Stats();
  out.wasted_ratio =
      stats.totals.Ratio(counter::kPrefetchUnused, counter::kPrefetchIssued);
  out.demand_qdelay_mean_ns =
      stats.class_queue_delay_mean_ns[static_cast<size_t>(
          IoClass::kDemandRead)];
  out.prefetch_qdelay_mean_ns =
      stats.class_queue_delay_mean_ns[static_cast<size_t>(
          IoClass::kPrefetch)];
  out.downlink_demand_ops = stats.ClassOps(IoClass::kDemandRead);
  out.downlink_prefetch_ops = stats.ClassOps(IoClass::kPrefetch);
  out.total_remote_reads = stats.totals.Get(counter::kRemoteReads);
  for (const RunResult& r : results) {
    out.max_completion_ns = std::max(out.max_completion_ns, r.completion_ns);
  }
  if (!timeseries_path.empty() && cluster.sampler() != nullptr) {
    std::ofstream ts(timeseries_path);
    cluster.sampler()->WriteJsonl(ts);
    std::printf("wrote %s (%zu samples)\n", timeseries_path.c_str(),
                cluster.sampler()->samples().size());
  }
  if (dump != nullptr) {
    cluster.DumpStats(*dump);
  }
  return out;
}

void PrintRow(TextTable& table, const QosResult& r) {
  char p50[32], p99[32], ap99[32], waste[32], dq[32], pq[32];
  std::snprintf(p50, sizeof(p50), "%.2f", ToUs(r.victim_demand_p50_ns));
  std::snprintf(p99, sizeof(p99), "%.2f", ToUs(r.victim_demand_p99_ns));
  std::snprintf(ap99, sizeof(ap99), "%.2f",
                ToUs(r.antagonist_demand_p99_ns));
  std::snprintf(waste, sizeof(waste), "%.3f", r.wasted_ratio);
  std::snprintf(dq, sizeof(dq), "%.2f", r.demand_qdelay_mean_ns / 1000.0);
  std::snprintf(pq, sizeof(pq), "%.2f", r.prefetch_qdelay_mean_ns / 1000.0);
  table.AddRow({LinkSchedulerKindName(r.sched), r.governed ? "on" : "off",
                p50, p99, ap99, waste, dq, pq});
}

void EmitResult(FILE* f, const char* key, const QosResult& r,
                const char* trailing) {
  std::fprintf(
      f,
      "  \"%s\": {\"scheduler\": \"%s\", \"governor\": \"%s\", "
      "\"victim_demand_p50_ns\": %llu, \"victim_demand_p99_ns\": %llu, "
      "\"antagonist_demand_p99_ns\": %llu, \"wasted_prefetch_ratio\": %.4f, "
      "\"demand_qdelay_mean_ns\": %.1f, \"prefetch_qdelay_mean_ns\": %.1f, "
      "\"downlink_demand_ops\": %llu, \"downlink_prefetch_ops\": %llu, "
      "\"remote_reads\": %llu, \"max_completion_ns\": %llu}%s\n",
      key, LinkSchedulerKindName(r.sched), r.governed ? "on" : "off",
      static_cast<unsigned long long>(r.victim_demand_p50_ns),
      static_cast<unsigned long long>(r.victim_demand_p99_ns),
      static_cast<unsigned long long>(r.antagonist_demand_p99_ns),
      r.wasted_ratio, r.demand_qdelay_mean_ns, r.prefetch_qdelay_mean_ns,
      static_cast<unsigned long long>(r.downlink_demand_ops),
      static_cast<unsigned long long>(r.downlink_prefetch_ops),
      static_cast<unsigned long long>(r.total_remote_reads),
      static_cast<unsigned long long>(r.max_completion_ns), trailing);
}

void WriteJson(const char* path, const BenchGeometry& geo,
               const std::vector<QosResult>& rows, bool smoke) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  bench::WriteSchemaPreamble(
      f, {"fig15_qos", /*seed=*/91, geo.hosts, geo.nodes,
          "fifo|demand_priority|drr",
          PlacementPolicyName(PlacementPolicy::kPowerOfTwo)});
  std::fprintf(f,
               "  \"geometry\": {\"hosts\": %zu, \"nodes\": %zu, "
               "\"footprint_pages\": %zu, \"accesses_per_host\": %zu, "
               "\"slab_pages\": %zu},\n",
               geo.hosts, geo.nodes, geo.footprint_pages,
               geo.accesses_per_host, geo.slab_pages);
  std::fprintf(f,
               "  \"workloads\": {\"antagonist\": \"zipf-0.99 storm "
               "(host 0)\", \"victims\": \"sequential (hosts 1..%zu)\", "
               "\"policy\": \"next-8-line\"},\n",
               geo.hosts - 1);
  char key[64];
  for (const QosResult& r : rows) {
    std::snprintf(key, sizeof(key), "%s_governor_%s",
                  LinkSchedulerKindName(r.sched),
                  r.governed ? "on" : "off");
    EmitResult(f, key, r, ",");
  }
  // Headline: victim p99 speedup of each scheduler vs FIFO, governor off
  // (pure link-QoS effect) and on (stacked).
  auto find = [&rows](LinkSchedulerKind sched, bool gov) -> const QosResult& {
    for (const QosResult& r : rows) {
      if (r.sched == sched && r.governed == gov) {
        return r;
      }
    }
    return rows.front();
  };
  auto speedup = [](const QosResult& base, const QosResult& r) {
    return r.victim_demand_p99_ns == 0
               ? 0.0
               : static_cast<double>(base.victim_demand_p99_ns) /
                     static_cast<double>(r.victim_demand_p99_ns);
  };
  const QosResult& fifo_off = find(LinkSchedulerKind::kFifo, false);
  const QosResult& fifo_on = find(LinkSchedulerKind::kFifo, true);
  std::fprintf(
      f,
      "  \"improvement\": {\"priority_victim_p99_speedup_vs_fifo\": %.3f, "
      "\"drr_victim_p99_speedup_vs_fifo\": %.3f, "
      "\"priority_gov_victim_p99_speedup_vs_fifo_gov\": %.3f, "
      "\"drr_gov_victim_p99_speedup_vs_fifo_gov\": %.3f}\n",
      speedup(fifo_off, find(LinkSchedulerKind::kDemandPriority, false)),
      speedup(fifo_off, find(LinkSchedulerKind::kDrr, false)),
      speedup(fifo_on, find(LinkSchedulerKind::kDemandPriority, true)),
      speedup(fifo_on, find(LinkSchedulerKind::kDrr, true)));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run(const bench::BenchArgs& args) {
  const BenchGeometry geo = args.smoke ? SmokeGeometry() : FullGeometry();
  bench::PrintHeader(
      "Figure 15 (extension): per-link fabric QoS vs an antagonist storm",
      "8 hosts, one zipf-0.99 storm behind next-8-line; FIFO links vs "
      "strict demand-priority vs per-tenant DRR, each with the PR 3 budget "
      "governor off/on (the paper's demand-first data path, at the link "
      "layer)");

  std::vector<QosResult> rows;
  for (const LinkSchedulerKind sched :
       {LinkSchedulerKind::kFifo, LinkSchedulerKind::kDemandPriority,
        LinkSchedulerKind::kDrr}) {
    for (const bool governed : {false, true}) {
      // Demand-priority + governor is the headline combination (stacked
      // source + link QoS): it carries the time series and stats dump.
      const bool headline =
          sched == LinkSchedulerKind::kDemandPriority && governed;
      rows.push_back(RunOnce(
          geo, sched, governed,
          headline && args.timeseries ? args.timeseries_path : "",
          headline ? &std::cout : nullptr));
    }
  }

  TextTable table;
  table.SetHeader({"scheduler", "governor", "victim p50(us)",
                   "victim p99(us)", "antag p99(us)", "wasted ratio",
                   "demand qdelay(us)", "prefetch qdelay(us)"});
  for (const QosResult& r : rows) {
    PrintRow(table, r);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "victim demand-read p99 (governor off): fifo %.2f us, "
      "demand-priority %.2f us, drr %.2f us\n\n",
      ToUs(rows[0].victim_demand_p99_ns), ToUs(rows[2].victim_demand_p99_ns),
      ToUs(rows[4].victim_demand_p99_ns));

  WriteJson(args.json_path.c_str(), geo, rows, args.smoke);
}

}  // namespace
}  // namespace leap

int main(int argc, char** argv) {
  leap::Run(leap::bench::ParseBenchArgs(argc, argv, "BENCH_qos.json"));
  return 0;
}
