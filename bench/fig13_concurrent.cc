// Figure 13: all four applications at 50% memory running concurrently on
// one host, contending for DRAM and the RDMA fabric. Leap's per-process
// isolation keeps each stream's trend intact, improving every app.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/table.h"

namespace leap {
namespace {

std::vector<RunResult> RunAllFour(const MachineConfig& config) {
  Machine machine(config);
  std::vector<Pid> pids;
  std::vector<std::unique_ptr<PhaseMixStream>> streams;
  SimTimeNs warm_end = 0;
  for (size_t app = 0; app < 4; ++app) {
    const AppSpec& spec = kApps[app];
    const Pid pid = machine.CreateProcess(spec.footprint_pages / 2);
    pids.push_back(pid);
    streams.push_back(spec.make(spec.footprint_pages, 900 + app));
    warm_end = WarmUp(machine, pid, spec.footprint_pages, warm_end);
  }
  std::vector<MultiAppSpec> specs;
  for (size_t app = 0; app < 4; ++app) {
    RunConfig run;
    run.total_accesses = 150000;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    run.seed = 17 + app;
    specs.push_back({pids[app], streams[app].get(), run});
  }
  return RunAppsConcurrently(machine, std::move(specs));
}

void Run() {
  bench::PrintHeader(
      "Figure 13 - four applications sharing one host, 50% memory each",
      "Leap improves completion 1.1-2.4x across all four when running "
      "concurrently (isolation keeps per-process trends intact)");

  const auto dvmm = RunAllFour(
      DefaultVmmConfig(PrefetchKind::kReadAhead, 4 * bench::kMicroFrames,
                       91));
  const auto leap = RunAllFour(LeapVmmConfig(4 * bench::kMicroFrames, 91));

  TextTable table;
  table.SetHeader({"app", "D-VMM completion(s)", "D-VMM+Leap completion(s)",
                   "improvement"});
  for (size_t app = 0; app < 4; ++app) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  ToSec(dvmm[app].completion_ns) /
                      ToSec(leap[app].completion_ns));
    table.AddRow({kApps[app].name, bench::FormatCompletion(dvmm[app]),
                  bench::FormatCompletion(leap[app]), ratio});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
