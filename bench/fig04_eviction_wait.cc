// Figure 4: with Linux's lazy cache eviction, consumed page-cache entries
// wait a long time before kswapd frees them, wasting cache and scan time.
// The bench reports the wait-time (first hit -> freed) distribution under
// the lazy policy and contrasts it with Leap's eager policy.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/cdf.h"

namespace leap {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 4 - cache eviction wait time (lazy vs eager)",
      "lazy: consumed cache entries linger for seconds-to-tens-of-seconds; "
      "eager frees at hit time (wait ~ 0)");

  auto run_policy = [](EvictionKind eviction) {
    MachineConfig config = LeapVmmConfig(bench::kMicroFrames, 13);
    config.eviction = eviction;
    // kswapd parameters matching a lightly-pressured host: long period,
    // modest batch, like the paper's measurement scenario.
    config.kswapd_period_ns = 40 * kNsPerMs;
    config.kswapd_scan_batch = 64;
    auto micro = bench::RunMicro(config, bench::MicroPattern::kSequential,
                                 250000);
    return std::move(micro.machine);
  };

  auto lazy = run_policy(EvictionKind::kLazyLru);
  auto eager = run_policy(EvictionKind::kEagerLeap);

  std::printf("lazy policy: %llu entries retired by kswapd\n",
              static_cast<unsigned long long>(
                  lazy->eviction_wait_hist().count()));
  std::printf("%s\n", RenderLatencyQuantileTable(
                          {{"lazy eviction wait", &lazy->eviction_wait_hist()},
                           {"eager eviction wait",
                            &eager->eviction_wait_hist()}})
                          .c_str());
  std::printf("eager frees at hit time: %llu entries freed eagerly, "
              "%llu left for kswapd\n",
              static_cast<unsigned long long>(
                  eager->counters().Get(counter::kEagerFrees)),
              static_cast<unsigned long long>(
                  eager->eviction_wait_hist().count()));
  std::printf("mean page allocation cost: lazy %.0f ns vs eager %.0f ns "
              "(paper: eager saves ~750 ns, 36%%)\n",
              lazy->alloc_hist().Mean(), eager->alloc_hist().Mean());
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
