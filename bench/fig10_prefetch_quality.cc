// Figure 10: prefetcher correctness metrics - accuracy & coverage (10a)
// and timeliness CDF (10b) - for the four prefetching algorithms on
// PowerGraph at 50% memory.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/cdf.h"
#include "src/stats/table.h"

namespace leap {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 10 - prefetch accuracy, coverage, timeliness; PowerGraph on "
      "disk at 50% memory",
      "accuracy (%): next-n 55 | stride 46 | read-ahead 45 | leap 44; "
      "coverage (%): 71 | 52 | 87 | 90; leap timeliness ~12x better than "
      "read-ahead at the median");

  constexpr size_t kAccesses = 250000;
  const struct {
    const char* label;
    PrefetchKind kind;
  } prefetchers[] = {
      {"Next-N-Line", PrefetchKind::kNextNLine},
      {"Stride", PrefetchKind::kStride},
      {"Read-Ahead", PrefetchKind::kReadAhead},
      {"Leap", PrefetchKind::kLeap},
  };

  TextTable table;
  table.SetHeader({"prefetcher", "accuracy(%)", "coverage(%)",
                   "timeliness p50(ms)", "timeliness p99(ms)"});
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<QuantileRow> timeliness_rows;
  for (const auto& p : prefetchers) {
    MachineConfig config =
        DiskSwapConfig(Medium::kHdd, p.kind, bench::kMicroFrames, 61);
    auto result = bench::RunAppModel(config, /*PowerGraph*/ 0, 50, kAccesses);
    const Counters& c = result.machine->counters();
    // Accuracy: prefetched-page hits / prefetched pages brought in.
    const double accuracy =
        100.0 * c.Ratio(counter::kPrefetchHits, counter::kPrefetchIssued);
    // Coverage: prefetched-page hits / total remote page requests.
    const double coverage =
        100.0 * c.Ratio(counter::kPrefetchHits, counter::kPageFaults);
    char acc[32];
    char cov[32];
    char t50[32];
    char t99[32];
    std::snprintf(acc, sizeof(acc), "%.1f", accuracy);
    std::snprintf(cov, sizeof(cov), "%.1f", coverage);
    std::snprintf(t50, sizeof(t50), "%.3f",
                  ToMs(result.machine->timeliness_hist().Percentile(0.5)));
    std::snprintf(t99, sizeof(t99), "%.3f",
                  ToMs(result.machine->timeliness_hist().Percentile(0.99)));
    table.AddRow({p.label, acc, cov, t50, t99});
    machines.push_back(std::move(result.machine));
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("--- timeliness distribution (prefetch insert -> first hit) "
              "---\n");
  for (size_t i = 0; i < machines.size(); ++i) {
    timeliness_rows.push_back(
        {prefetchers[i].label, &machines[i]->timeliness_hist()});
  }
  std::printf("%s\n", RenderLatencyQuantileTable(timeliness_rows).c_str());
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
