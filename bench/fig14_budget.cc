// Figure 14 (this repo's extension): adaptive per-tenant prefetch budgets
// under an antagonist tenant.
//
// Section 5.3.3 of the paper argues Leap's window throttles itself on
// low-accuracy streams; this bench measures the cluster-level version of
// that claim for policies with no such self-throttle. An 8-host cluster
// shares a 2-node donor pool over one fabric. Host 0 is the antagonist: a
// zipf-0.99 storm behind an aggressive next-8-line policy, so nearly every
// prefetch it issues is pollution that still burns fabric bandwidth. Hosts
// 1..7 are sequential victims whose next-8-line prefetches are almost all
// hits. The same cluster runs with the BudgetGovernor off and on; the
// governor should collapse the antagonist's budget (AIMD on fabric
// queue-delay EWMA + per-tenant accuracy) while leaving the victims'
// windows intact - improving victim demand-read p99 and cutting the
// wasted-prefetch ratio.
//
// Usage: fig14_budget [--smoke] [--timeseries[=path]] [output.json]
//   --smoke       smaller footprints/accesses for CI (still 8 hosts)
//   --timeseries  sample the governed run's budgets/EWMAs/windowed p99 to
//                 JSONL (default BENCH_budget.timeseries.jsonl)
//   output        results JSON (default BENCH_budget.json)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/cluster.h"
#include "src/stats/table.h"

namespace leap {
namespace {

struct BenchGeometry {
  size_t hosts = 8;
  size_t nodes = 2;
  size_t footprint_pages = 4096;
  size_t accesses_per_host = 20000;
  size_t slab_pages = 256;
};

BenchGeometry FullGeometry() { return {8, 2, 4096, 20000, 256}; }
BenchGeometry SmokeGeometry() { return {8, 2, 1024, 4000, 64}; }

PrefetchBudgetConfig GovernorConfig() {
  PrefetchBudgetConfig budget;
  budget.enabled = true;
  budget.min_budget = 1;
  budget.max_budget = 8;  // = the next-8-line window: starts unclamped
  budget.queue_delay_threshold_ns = 5'000.0;
  budget.decrease_factor = 0.5;
  budget.increase_step = 0.5;
  budget.adjust_period_ns = 500 * kNsPerUs;
  budget.accuracy_keep_threshold = 0.5;
  return budget;
}

struct GovernedResult {
  bool governed = false;
  uint64_t victim_demand_p50_ns = 0;
  uint64_t victim_demand_p99_ns = 0;
  uint64_t antagonist_demand_p99_ns = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_unused = 0;
  uint64_t prefetch_hits = 0;
  double wasted_ratio = 0.0;
  double fabric_qdelay_mean_ns = 0.0;
  // Time-averaged effective window: prefetches issued per cache miss
  // (the AIMD sawtooth makes end-of-run budget snapshots uninformative).
  double antagonist_pf_per_miss = 0.0;
  double victim_pf_per_miss = 0.0;
  uint64_t shrink_events = 0;
  uint64_t total_remote_reads = 0;  // determinism fingerprint
  SimTimeNs max_completion_ns = 0;
};

// `timeseries_path` non-empty enables the StatsSampler on this run and
// writes its JSONL there; `dump` non-null gets the human-readable stats
// dump. Both are pure observation - the measured numbers are bit-identical
// either way (pinned by obs_trace_test).
GovernedResult RunOnce(const BenchGeometry& geo, bool governed,
                       const std::string& timeseries_path = "",
                       std::ostream* dump = nullptr) {
  ClusterConfig config;
  config.hosts = geo.hosts;
  config.nodes = geo.nodes;
  config.node_capacity_slabs = 4096;
  config.host = LeapVmmConfig(geo.footprint_pages, /*seed=*/42);
  config.host.prefetcher = PrefetchKind::kNextNLine;
  config.host.host_agent.slab_pages = geo.slab_pages;
  if (governed) {
    config.host.budget = GovernorConfig();
  }
  config.seed = 91;
  config.sampler.enabled = !timeseries_path.empty();
  Cluster cluster(config);

  std::vector<std::unique_ptr<AccessStream>> streams;
  std::vector<ClusterAppSpec> specs;
  std::vector<Pid> pids;
  SimTimeNs warm_end = 0;
  for (size_t h = 0; h < geo.hosts; ++h) {
    const Pid pid = cluster.host(h).CreateProcess(geo.footprint_pages / 2);
    pids.push_back(pid);
    if (h == 0) {
      // Antagonist: a zipf storm over 4x the victims' footprint at zero
      // think time. The hot head stays resident, so its faults land on the
      // scattered cold tail - where next-8-line prefetches neighbors that
      // are almost never re-referenced: maximum pollution per fault.
      const size_t storm_footprint = 4 * geo.footprint_pages;
      warm_end = WarmUp(cluster.host(h), pid, storm_footprint, warm_end);
      streams.push_back(std::make_unique<ZipfStream>(storm_footprint, 0.99,
                                                     /*think_ns=*/0));
    } else {
      warm_end = WarmUp(cluster.host(h), pid, geo.footprint_pages, warm_end);
      streams.push_back(std::make_unique<SequentialStream>(
          geo.footprint_pages, /*think_ns=*/300));
    }
  }
  for (size_t h = 0; h < geo.hosts; ++h) {
    RunConfig run;
    run.total_accesses = geo.accesses_per_host;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  const auto results = cluster.Run(std::move(specs));

  GovernedResult out;
  out.governed = governed;
  Histogram victims;
  for (size_t h = 1; h < geo.hosts; ++h) {
    victims.Merge(results[h].miss_latency);
  }
  out.victim_demand_p50_ns = victims.Percentile(0.5);
  out.victim_demand_p99_ns = victims.Percentile(0.99);
  out.antagonist_demand_p99_ns = results[0].miss_latency.Percentile(0.99);
  const ClusterStats stats = cluster.Stats();
  out.prefetch_issued = stats.totals.Get(counter::kPrefetchIssued);
  out.prefetch_unused = stats.totals.Get(counter::kPrefetchUnused);
  out.prefetch_hits = stats.totals.Get(counter::kPrefetchHits);
  out.wasted_ratio =
      stats.totals.Ratio(counter::kPrefetchUnused, counter::kPrefetchIssued);
  out.fabric_qdelay_mean_ns = cluster.fabric().queue_delay_hist().Mean();
  out.total_remote_reads = stats.totals.Get(counter::kRemoteReads);
  out.antagonist_pf_per_miss = cluster.host(0).counters().Ratio(
      counter::kPrefetchIssued, counter::kCacheMisses);
  out.victim_pf_per_miss = cluster.host(1).counters().Ratio(
      counter::kPrefetchIssued, counter::kCacheMisses);
  if (governed) {
    for (size_t h = 0; h < geo.hosts; ++h) {
      out.shrink_events += cluster.host(h).governor()->shrink_events();
    }
  }
  for (const RunResult& r : results) {
    out.max_completion_ns = std::max(out.max_completion_ns, r.completion_ns);
  }
  if (!timeseries_path.empty() && cluster.sampler() != nullptr) {
    std::ofstream ts(timeseries_path);
    cluster.sampler()->WriteJsonl(ts);
    std::printf("wrote %s (%zu samples)\n", timeseries_path.c_str(),
                cluster.sampler()->samples().size());
  }
  if (dump != nullptr) {
    cluster.DumpStats(*dump);
  }
  return out;
}

void PrintRow(TextTable& table, const GovernedResult& r) {
  char p50[32], p99[32], ap99[32], waste[32], qd[32], ab[32], vb[32];
  std::snprintf(p50, sizeof(p50), "%.2f", ToUs(r.victim_demand_p50_ns));
  std::snprintf(p99, sizeof(p99), "%.2f", ToUs(r.victim_demand_p99_ns));
  std::snprintf(ap99, sizeof(ap99), "%.2f",
                ToUs(r.antagonist_demand_p99_ns));
  std::snprintf(waste, sizeof(waste), "%.3f", r.wasted_ratio);
  std::snprintf(qd, sizeof(qd), "%.2f", r.fabric_qdelay_mean_ns / 1000.0);
  std::snprintf(ab, sizeof(ab), "%.2f", r.antagonist_pf_per_miss);
  std::snprintf(vb, sizeof(vb), "%.2f", r.victim_pf_per_miss);
  table.AddRow({r.governed ? "on" : "off", p50, p99, ap99, waste, qd, ab,
                vb});
}

void WriteJson(const char* path, const BenchGeometry& geo,
               const GovernedResult& off, const GovernedResult& on,
               bool smoke) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  auto emit = [f](const char* key, const GovernedResult& r,
                  const char* trailing) {
    std::fprintf(
        f,
        "  \"%s\": {\"victim_demand_p50_ns\": %llu, "
        "\"victim_demand_p99_ns\": %llu, \"antagonist_demand_p99_ns\": "
        "%llu, \"prefetch_issued\": %llu, \"prefetch_unused\": %llu, "
        "\"prefetch_hits\": %llu, \"wasted_prefetch_ratio\": %.4f, "
        "\"fabric_qdelay_mean_ns\": %.1f, \"antagonist_pf_per_miss\": %.2f, "
        "\"victim_pf_per_miss\": %.2f, \"governor_shrink_events\": %llu, "
        "\"remote_reads\": %llu, \"max_completion_ns\": %llu}%s\n",
        key, static_cast<unsigned long long>(r.victim_demand_p50_ns),
        static_cast<unsigned long long>(r.victim_demand_p99_ns),
        static_cast<unsigned long long>(r.antagonist_demand_p99_ns),
        static_cast<unsigned long long>(r.prefetch_issued),
        static_cast<unsigned long long>(r.prefetch_unused),
        static_cast<unsigned long long>(r.prefetch_hits), r.wasted_ratio,
        r.fabric_qdelay_mean_ns, r.antagonist_pf_per_miss,
        r.victim_pf_per_miss,
        static_cast<unsigned long long>(r.shrink_events),
        static_cast<unsigned long long>(r.total_remote_reads),
        static_cast<unsigned long long>(r.max_completion_ns), trailing);
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  bench::WriteSchemaPreamble(
      f, {"fig14_budget", /*seed=*/91, geo.hosts, geo.nodes, "fifo",
          PlacementPolicyName(PlacementPolicy::kPowerOfTwo)});
  std::fprintf(f,
               "  \"geometry\": {\"hosts\": %zu, \"nodes\": %zu, "
               "\"footprint_pages\": %zu, \"accesses_per_host\": %zu, "
               "\"slab_pages\": %zu},\n",
               geo.hosts, geo.nodes, geo.footprint_pages,
               geo.accesses_per_host, geo.slab_pages);
  std::fprintf(f, "  \"workloads\": {\"antagonist\": \"zipf-0.99 storm "
                  "(host 0)\", \"victims\": \"sequential (hosts 1..%zu)\", "
                  "\"policy\": \"next-8-line\"},\n",
               geo.hosts - 1);
  emit("governor_off", off, ",");
  emit("governor_on", on, ",");
  std::fprintf(
      f,
      "  \"improvement\": {\"victim_p99_speedup\": %.3f, "
      "\"wasted_ratio_off\": %.4f, \"wasted_ratio_on\": %.4f}\n",
      on.victim_demand_p99_ns == 0
          ? 0.0
          : static_cast<double>(off.victim_demand_p99_ns) /
                static_cast<double>(on.victim_demand_p99_ns),
      off.wasted_ratio, on.wasted_ratio);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run(const bench::BenchArgs& args) {
  const BenchGeometry geo = args.smoke ? SmokeGeometry() : FullGeometry();
  bench::PrintHeader(
      "Figure 14 (extension): per-tenant prefetch budgets vs an antagonist",
      "8 hosts, one zipf-0.99 storm behind next-8-line; the AIMD governor "
      "collapses the storm's budget on fabric congestion while sequential "
      "victims keep their windows (section 5.3.3 throttling, cluster-wide)");

  const GovernedResult off = RunOnce(geo, /*governed=*/false);
  // The governed run is the headline: it carries the time series (the AIMD
  // sawtooth per tenant is the thing worth plotting) and the stats dump.
  const GovernedResult on =
      RunOnce(geo, /*governed=*/true,
              args.timeseries ? args.timeseries_path : "", &std::cout);

  TextTable table;
  table.SetHeader({"governor", "victim p50(us)", "victim p99(us)",
                   "antag p99(us)", "wasted ratio", "fabric qdelay(us)",
                   "antag pf/miss", "victim pf/miss"});
  PrintRow(table, off);
  PrintRow(table, on);
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "victim demand-read p99: %.2f us -> %.2f us; wasted-prefetch ratio: "
      "%.3f -> %.3f\n\n",
      ToUs(off.victim_demand_p99_ns), ToUs(on.victim_demand_p99_ns),
      off.wasted_ratio, on.wasted_ratio);

  WriteJson(args.json_path.c_str(), geo, off, on, args.smoke);
}

}  // namespace
}  // namespace leap

int main(int argc, char** argv) {
  leap::Run(leap::bench::ParseBenchArgs(argc, argv, "BENCH_budget.json"));
  return 0;
}
