// Figure 18 (engine scaling): the fig13 workload mix pushed to cluster
// sizes the single-queue engine cannot sustain, single-queue vs the
// sharded parallel engine at equal host count.
//
// Two stories in one sweep:
//  - simulator throughput (wall-clock accesses/s): the single-queue
//    engine's per-access cost grows with host count (an O(hosts) ready-app
//    scan plus one ever-growing event heap), so its throughput decays as
//    the cluster grows; the sharded engine keeps per-shard work constant
//    and holds throughput roughly flat. The speedup at equal host count is
//    the tentpole acceptance number (>= 3x at the top scales).
//  - determinism: every simulation-derived number in the JSON is a pure
//    function of (seed, shard count). Wall-clock keys are all prefixed
//    "wall" and placed on their own lines so CI's byte-identical rerun
//    guard can strip them (grep -v '"wall') and cmp the rest.
//
// The smoke mode also cross-checks the engines: shards=1 must reproduce
// the single-queue Cluster's results exactly (remote reads, fabric ops,
// tail latency) - the bench aborts nonzero if they diverge.
//
// Usage: fig18_scale [--smoke] [output.json]
//   --smoke   tiny configuration for CI (4/8 hosts, equivalence check)
//   output    results JSON (default BENCH_scale.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/cluster.h"
#include "src/runtime/sharded_cluster.h"
#include "src/stats/table.h"
#include "src/workload/cluster_mix.h"

namespace leap {
namespace {

struct BenchGeometry {
  std::vector<size_t> host_scales;
  // Largest scale that also runs the single-queue baseline (the baseline
  // is the slow engine; the sharded sweep goes further).
  size_t baseline_max_hosts = 0;
  size_t hosts_per_node = 4;
  size_t footprint_pages = 2048;
  size_t total_frames = 2048;
  size_t accesses_per_host = 2000;
  size_t slab_pages = 64;
  size_t hosts_per_shard = 64;
  size_t window_mult = 32;   // window = lookahead * mult (fewer barriers)
  size_t mirror_every = 16;  // cross-shard replica cadence
};

BenchGeometry FullGeometry() {
  BenchGeometry geo;
  geo.host_scales = {32, 64, 128, 256, 512, 1024, 2048, 4096};
  geo.baseline_max_hosts = 4096;
  return geo;
}

BenchGeometry SmokeGeometry() {
  BenchGeometry geo;
  geo.host_scales = {4, 8};
  geo.baseline_max_hosts = 8;
  geo.footprint_pages = 512;
  geo.total_frames = 512;
  geo.accesses_per_host = 1500;
  geo.slab_pages = 32;
  geo.hosts_per_shard = 4;
  geo.window_mult = 4;
  geo.mirror_every = 8;
  return geo;
}

ClusterConfig MakeBase(const BenchGeometry& geo, size_t hosts) {
  ClusterConfig config;
  config.hosts = hosts;
  config.nodes = std::max<size_t>(1, hosts / geo.hosts_per_node);
  config.node_capacity_slabs = 4096;
  config.host = LeapVmmConfig(geo.total_frames, /*seed=*/42);
  config.host.host_agent.slab_pages = geo.slab_pages;
  config.placement = PlacementPolicy::kPowerOfTwo;
  config.seed = 91;
  return config;
}

size_t ShardsFor(const BenchGeometry& geo, size_t hosts) {
  return std::max<size_t>(2, hosts / geo.hosts_per_shard);
}

// Deterministic per-engine results plus the (non-deterministic) wall time.
struct EngineResult {
  uint64_t remote_reads = 0;
  uint64_t fabric_ops = 0;
  uint64_t p50_remote_ns = 0;
  uint64_t p99_remote_ns = 0;
  double agg_accesses_per_sim_sec = 0.0;
  SimTimeNs max_completion_ns = 0;
  uint64_t cross_shard_sent = 0;
  uint64_t cross_shard_applied = 0;
  uint64_t mailbox_overflows = 0;
  uint64_t windows_run = 0;
  double wall_ms = 0.0;
};

// Warm + run the fig13 workload mix (zipf / sequential / trace per host)
// on either engine; both see byte-identical specs.
template <typename Engine>
EngineResult RunWorkload(Engine& cluster, const BenchGeometry& geo) {
  const size_t hosts = cluster.num_hosts();
  std::vector<std::unique_ptr<AccessStream>> streams;
  std::vector<ClusterAppSpec> specs;
  std::vector<Pid> pids;
  SimTimeNs warm_end = 0;
  for (size_t h = 0; h < hosts; ++h) {
    const Pid pid = cluster.host(h).CreateProcess(geo.footprint_pages / 2);
    pids.push_back(pid);
    warm_end = WarmUp(cluster.host(h), pid, geo.footprint_pages, warm_end);
    streams.push_back(MakeClusterMixStream(h, geo.footprint_pages));
  }
  for (size_t h = 0; h < hosts; ++h) {
    RunConfig run;
    run.total_accesses = geo.accesses_per_host;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const auto results = cluster.Run(std::move(specs));
  const auto wall_end = std::chrono::steady_clock::now();

  EngineResult out;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  Histogram merged;
  uint64_t total_accesses = 0;
  for (size_t h = 0; h < hosts; ++h) {
    merged.Merge(cluster.host_remote_latency(h));
    total_accesses += results[h].accesses;
    out.max_completion_ns =
        std::max(out.max_completion_ns, results[h].completion_ns);
  }
  out.p50_remote_ns = merged.Percentile(0.5);
  out.p99_remote_ns = merged.Percentile(0.99);
  const ClusterStats stats = cluster.Stats();
  out.remote_reads = stats.totals.Get(counter::kRemoteReads);
  out.fabric_ops = stats.fabric_ops;
  out.cross_shard_sent = stats.totals.Get(counter::kCrossShardSent);
  out.cross_shard_applied = stats.totals.Get(counter::kCrossShardApplied);
  out.agg_accesses_per_sim_sec =
      out.max_completion_ns == 0
          ? 0.0
          : static_cast<double>(total_accesses) / ToSec(out.max_completion_ns);
  return out;
}

EngineResult RunSingleQueue(const BenchGeometry& geo, size_t hosts) {
  Cluster cluster(MakeBase(geo, hosts));
  return RunWorkload(cluster, geo);
}

EngineResult RunSharded(const BenchGeometry& geo, size_t hosts) {
  ShardedClusterConfig config;
  config.base = MakeBase(geo, hosts);
  config.shards = ShardsFor(geo, hosts);
  config.window_ns =
      FabricLookaheadNs(config.base.fabric) * geo.window_mult;
  config.mirror_every = geo.mirror_every;
  ShardedCluster cluster(config);
  EngineResult out = RunWorkload(cluster, geo);
  out.windows_run = cluster.windows_run();
  out.mailbox_overflows = cluster.mailbox_overflows();
  return out;
}

// shards=1 must be indistinguishable from the single-queue engine; run
// both at a small scale and compare the simulation-derived fingerprint.
bool SingleShardMatchesCluster(const BenchGeometry& geo) {
  const size_t hosts = geo.host_scales.front();
  const EngineResult reference = RunSingleQueue(geo, hosts);
  ShardedClusterConfig config;
  config.base = MakeBase(geo, hosts);
  config.shards = 1;
  ShardedCluster cluster(config);
  const EngineResult sharded = RunWorkload(cluster, geo);
  const bool ok = reference.remote_reads == sharded.remote_reads &&
                  reference.fabric_ops == sharded.fabric_ops &&
                  reference.p50_remote_ns == sharded.p50_remote_ns &&
                  reference.p99_remote_ns == sharded.p99_remote_ns &&
                  reference.max_completion_ns == sharded.max_completion_ns;
  if (!ok) {
    std::fprintf(stderr,
                 "ENGINE MISMATCH at %zu hosts: shards=1 diverged from the "
                 "single-queue Cluster\n  remote_reads %llu vs %llu, "
                 "fabric_ops %llu vs %llu, p99 %llu vs %llu\n",
                 hosts,
                 static_cast<unsigned long long>(reference.remote_reads),
                 static_cast<unsigned long long>(sharded.remote_reads),
                 static_cast<unsigned long long>(reference.fabric_ops),
                 static_cast<unsigned long long>(sharded.fabric_ops),
                 static_cast<unsigned long long>(reference.p99_remote_ns),
                 static_cast<unsigned long long>(sharded.p99_remote_ns));
  }
  return ok;
}

struct ScaleRow {
  size_t hosts = 0;
  size_t shards = 0;
  bool has_baseline = false;
  EngineResult sharded;
  EngineResult single_queue;
};

void WriteEngineJson(FILE* f, const char* indent, const EngineResult& r,
                     bool sharded) {
  std::fprintf(
      f,
      "%s\"remote_reads\": %llu, \"fabric_ops\": %llu, "
      "\"p50_remote_ns\": %llu, \"p99_remote_ns\": %llu, "
      "\"agg_accesses_per_sim_sec\": %.0f, \"max_completion_ns\": %llu",
      indent, static_cast<unsigned long long>(r.remote_reads),
      static_cast<unsigned long long>(r.fabric_ops),
      static_cast<unsigned long long>(r.p50_remote_ns),
      static_cast<unsigned long long>(r.p99_remote_ns),
      r.agg_accesses_per_sim_sec,
      static_cast<unsigned long long>(r.max_completion_ns));
  if (sharded) {
    std::fprintf(
        f,
        ", \"cross_shard_sent\": %llu, \"cross_shard_applied\": %llu, "
        "\"mailbox_overflows\": %llu, \"windows_run\": %llu",
        static_cast<unsigned long long>(r.cross_shard_sent),
        static_cast<unsigned long long>(r.cross_shard_applied),
        static_cast<unsigned long long>(r.mailbox_overflows),
        static_cast<unsigned long long>(r.windows_run));
  }
}

void WriteJson(const char* path, const BenchGeometry& geo,
               const std::vector<ScaleRow>& rows, bool engines_match,
               bool smoke) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  bench::WriteSchemaPreamble(
      f, {"fig18_scale", /*seed=*/91, geo.host_scales.back(),
          geo.host_scales.back() / geo.hosts_per_node, "fifo",
          PlacementPolicyName(PlacementPolicy::kPowerOfTwo)});
  std::fprintf(f,
               "  \"geometry\": {\"hosts_per_node\": %zu, "
               "\"footprint_pages\": %zu, \"accesses_per_host\": %zu, "
               "\"slab_pages\": %zu, \"hosts_per_shard\": %zu, "
               "\"window_mult\": %zu, \"mirror_every\": %zu},\n",
               geo.hosts_per_node, geo.footprint_pages, geo.accesses_per_host,
               geo.slab_pages, geo.hosts_per_shard, geo.window_mult,
               geo.mirror_every);
  std::fprintf(f, "  \"workload_mix\": [\"zipf-0.99\", \"sequential\", "
                  "\"trace(stride-8)\"],\n");
  std::fprintf(f, "  \"single_shard_matches_cluster\": %s,\n",
               engines_match ? "true" : "false");
  std::fprintf(f, "  \"scales\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& row = rows[i];
    std::fprintf(f, "    {\"hosts\": %zu, \"shards\": %zu,\n", row.hosts,
                 row.shards);
    std::fprintf(f, "     \"sharded\": {");
    WriteEngineJson(f, "", row.sharded, /*sharded=*/true);
    std::fprintf(f, "},\n");
    if (row.has_baseline) {
      std::fprintf(f, "     \"single_queue\": {");
      WriteEngineJson(f, "", row.single_queue, /*sharded=*/false);
      std::fprintf(f, "},\n");
    } else {
      std::fprintf(f, "     \"single_queue\": null,\n");
    }
    // Wall-clock keys live on their own lines, all prefixed "wall": CI's
    // byte-identical rerun guard strips them with grep -v '"wall' before
    // cmp, so everything above must be seed-deterministic.
    std::fprintf(f, "     \"wall_ms_sharded\": %.1f,\n",
                 row.sharded.wall_ms);
    if (row.has_baseline) {
      std::fprintf(f, "     \"wall_ms_single_queue\": %.1f,\n",
                   row.single_queue.wall_ms);
      std::fprintf(f, "     \"wall_speedup\": %.2f,\n",
                   row.sharded.wall_ms <= 0.0
                       ? 0.0
                       : row.single_queue.wall_ms / row.sharded.wall_ms);
    }
    std::fprintf(f, "     \"end\": true}%s\n",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run(bool smoke, const char* json_path) {
  const BenchGeometry geo = smoke ? SmokeGeometry() : FullGeometry();
  bench::PrintHeader(
      "Figure 18 (engine scaling): single-queue vs sharded at 32 -> 4096 "
      "hosts",
      "the single-queue engine's per-access cost grows with host count "
      "(O(hosts) ready scan + one global event heap); the sharded engine "
      "keeps per-shard work constant, so simulator throughput holds as "
      "the cluster grows");

  const bool engines_match = SingleShardMatchesCluster(geo);
  std::printf("shards=1 vs single-queue Cluster: %s\n\n",
              engines_match ? "bit-identical" : "DIVERGED");

  std::vector<ScaleRow> rows;
  TextTable table;
  table.SetHeader({"hosts", "shards", "1q wall(s)", "sharded wall(s)",
                   "speedup", "1q Macc/wall-s", "sharded Macc/wall-s"});
  for (size_t hosts : geo.host_scales) {
    ScaleRow row;
    row.hosts = hosts;
    row.shards = ShardsFor(geo, hosts);
    row.sharded = RunSharded(geo, hosts);
    row.has_baseline = hosts <= geo.baseline_max_hosts;
    if (row.has_baseline) {
      row.single_queue = RunSingleQueue(geo, hosts);
    }
    const double total_acc =
        static_cast<double>(hosts * geo.accesses_per_host);
    char hs[32], sh[32], oneq[32], shard[32], speed[32], thr1[32], thr2[32];
    std::snprintf(hs, sizeof(hs), "%zu", hosts);
    std::snprintf(sh, sizeof(sh), "%zu", row.shards);
    if (row.has_baseline) {
      std::snprintf(oneq, sizeof(oneq), "%.1f",
                    row.single_queue.wall_ms / 1000.0);
      std::snprintf(speed, sizeof(speed), "%.2fx",
                    row.single_queue.wall_ms / row.sharded.wall_ms);
      std::snprintf(thr1, sizeof(thr1), "%.2f",
                    total_acc / row.single_queue.wall_ms / 1000.0);
    } else {
      std::snprintf(oneq, sizeof(oneq), "-");
      std::snprintf(speed, sizeof(speed), "-");
      std::snprintf(thr1, sizeof(thr1), "-");
    }
    std::snprintf(shard, sizeof(shard), "%.1f", row.sharded.wall_ms / 1000.0);
    std::snprintf(thr2, sizeof(thr2), "%.2f",
                  total_acc / row.sharded.wall_ms / 1000.0);
    table.AddRow({hs, sh, oneq, shard, speed, thr1, thr2});
    rows.push_back(row);
  }
  std::printf("%s\n", table.Render().c_str());

  WriteJson(json_path, geo, rows, engines_match, smoke);
  if (!engines_match) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace leap

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  leap::Run(smoke, json_path);
  return 0;
}
