// Figure 3: fractions of sequential / stride / other patterns in page-fault
// sequences of length X (Window-X), strict matching for X in {2,4,8} plus
// majority matching for X = 8, for the four application workloads at 50%
// memory.
//
// Here the classified stream is the actual *fault* stream observed by the
// machine (not the raw access stream), like the paper's measurement.
#include <cstdio>
#include <deque>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/majority.h"
#include "src/stats/table.h"

namespace leap {
namespace {

struct Fractions {
  double sequential = 0;
  double stride = 0;
  double other = 0;
};

// Strict Window-X classification over a fault-address sequence.
Fractions ClassifyStrict(const std::vector<SwapSlot>& faults, size_t window) {
  size_t seq = 0;
  size_t stride = 0;
  size_t other = 0;
  for (size_t i = 0; i + window < faults.size(); ++i) {
    bool all_seq = true;
    bool all_stride = true;
    const PageDelta first = static_cast<PageDelta>(faults[i + 1]) -
                            static_cast<PageDelta>(faults[i]);
    for (size_t k = 1; k < window; ++k) {
      const PageDelta d = static_cast<PageDelta>(faults[i + k]) -
                          static_cast<PageDelta>(faults[i + k - 1]);
      all_seq = all_seq && d == 1;
      all_stride = all_stride && d == first;
    }
    if (all_seq) {
      ++seq;
    } else if (all_stride && first != 0) {
      ++stride;
    } else {
      ++other;
    }
  }
  const double total = static_cast<double>(seq + stride + other);
  if (total == 0) {
    return {};
  }
  return {seq / total, stride / total, other / total};
}

// Majority Window-X: a window counts as sequential/stride when a majority
// of its deltas agree (Boyer-Moore), tolerating transient interruptions.
Fractions ClassifyMajority(const std::vector<SwapSlot>& faults,
                           size_t window) {
  size_t seq = 0;
  size_t stride = 0;
  size_t other = 0;
  std::vector<PageDelta> deltas;
  for (size_t i = 0; i + window < faults.size(); ++i) {
    deltas.clear();
    for (size_t k = 1; k < window; ++k) {
      deltas.push_back(static_cast<PageDelta>(faults[i + k]) -
                       static_cast<PageDelta>(faults[i + k - 1]));
    }
    const auto maj = BoyerMooreMajority(deltas);
    if (maj.has_value() && *maj == 1) {
      ++seq;
    } else if (maj.has_value() && *maj != 0) {
      ++stride;
    } else {
      ++other;
    }
  }
  const double total = static_cast<double>(seq + stride + other);
  if (total == 0) {
    return {};
  }
  return {seq / total, stride / total, other / total};
}

// Collects the fault-slot stream of one app at 50% memory.
std::vector<SwapSlot> CollectFaults(size_t app_index, size_t accesses) {
  const AppSpec& spec = kApps[app_index];
  MachineConfig config =
      DefaultVmmConfig(PrefetchKind::kNone, bench::kMicroFrames, 77);
  Machine machine(config);
  const Pid pid = machine.CreateProcess(spec.footprint_pages / 2);
  SimTimeNs now = WarmUp(machine, pid, spec.footprint_pages);

  auto stream = spec.make(spec.footprint_pages, 555);
  Rng rng(555);
  std::vector<SwapSlot> faults;
  faults.reserve(accesses / 2);
  for (size_t i = 0; i < accesses; ++i) {
    const MemOp op = stream->Next(rng);
    now += op.think_ns;
    const bool was_resident = machine.IsResident(pid, op.vpn);
    const AccessResult r = machine.Access(pid, op.vpn, op.write, now);
    now += r.latency;
    if (!was_resident && r.type != AccessType::kMinorFault) {
      const auto slot = machine.swap().FindSlot(pid, op.vpn);
      if (slot.has_value()) {
        faults.push_back(*slot);
      }
    }
  }
  return faults;
}

std::string Pct(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f", v * 100.0);
  return buf;
}

void Run() {
  bench::PrintHeader(
      "Figure 3 - pattern fractions in fault windows (percent)",
      "strict fractions collapse from window-2 to window-8; majority-8 "
      "detects 11.3-29.7% more sequential than strict-8; Memcached ~96% "
      "irregular");

  TextTable table;
  table.SetHeader({"app", "class", "strict-2", "strict-4", "strict-8",
                   "majority-8"});
  for (size_t app = 0; app < 4; ++app) {
    const auto faults = CollectFaults(app, 400000);
    const Fractions s2 = ClassifyStrict(faults, 2);
    const Fractions s4 = ClassifyStrict(faults, 4);
    const Fractions s8 = ClassifyStrict(faults, 8);
    const Fractions m8 = ClassifyMajority(faults, 8);
    table.AddRow({kApps[app].name, "sequential", Pct(s2.sequential),
                  Pct(s4.sequential), Pct(s8.sequential),
                  Pct(m8.sequential)});
    table.AddRow({"", "stride", Pct(s2.stride), Pct(s4.stride),
                  Pct(s8.stride), Pct(m8.stride)});
    table.AddRow({"", "other", Pct(s2.other), Pct(s4.other), Pct(s8.other),
                  Pct(m8.other)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
