// Figure 9: cache add / cache miss volume (9a) and application completion
// time (9b) for Next-N-Line, Stride, Read-Ahead, and Leap's prefetcher,
// running PowerGraph on disk at 50% memory with the default data path
// (isolating the prefetching algorithm, as in the paper).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/table.h"

namespace leap {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 9 - prefetcher cache behavior + completion, PowerGraph on "
      "disk at 50% memory",
      "cache adds (M): next-n 4.9 | stride 3.9 | read-ahead 3.9 | leap 3.0; "
      "cache misses (M): 1.1 | 1.6 | 0.3 | 0.2; completion (s): 683.9 | "
      "885.9 | 462.5 | 263.9");

  constexpr size_t kAccesses = 250000;
  const struct {
    const char* label;
    PrefetchKind kind;
  } prefetchers[] = {
      {"Next-N-Line", PrefetchKind::kNextNLine},
      {"Stride", PrefetchKind::kStride},
      {"Read-Ahead", PrefetchKind::kReadAhead},
      {"Leap", PrefetchKind::kLeap},
  };

  TextTable table;
  table.SetHeader({"prefetcher", "cache adds", "cache misses",
                   "prefetch issued", "unused prefetches", "completion(s)"});
  double leap_completion = 0;
  double readahead_completion = 0;
  for (const auto& p : prefetchers) {
    MachineConfig config =
        DiskSwapConfig(Medium::kHdd, p.kind, bench::kMicroFrames, 51);
    auto result = bench::RunAppModel(config, /*PowerGraph*/ 0, 50, kAccesses);
    const Counters& c = result.machine->counters();
    table.AddRow({p.label, std::to_string(c.Get(counter::kCacheAdds)),
                  std::to_string(c.Get(counter::kCacheMisses)),
                  std::to_string(c.Get(counter::kPrefetchIssued)),
                  std::to_string(c.Get(counter::kPrefetchUnused)),
                  bench::FormatCompletion(result.run)});
    if (p.kind == PrefetchKind::kLeap) {
      leap_completion = ToSec(result.run.completion_ns);
    }
    if (p.kind == PrefetchKind::kReadAhead) {
      readahead_completion = ToSec(result.run.completion_ns);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("completion ratio read-ahead/leap: %.2fx (paper 1.75x)\n",
              readahead_completion / leap_completion);
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
