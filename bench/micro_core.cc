// google-benchmark microbenchmarks of the Leap core: Boyer-Moore majority,
// FindTrend across history sizes, prefetch-window sizing, and the full
// OnAccess decision - the costs the paper argues are negligible (section
// 3.3: O(Hsize) time, O(1) space).
#include <benchmark/benchmark.h>

#include "src/core/leap.h"
#include "src/sim/rng.h"

namespace leap {
namespace {

void BM_BoyerMooreMajority(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  std::vector<PageDelta> window(n);
  for (auto& d : window) {
    d = rng.NextInt(-4, 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoyerMooreMajority(window));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_BoyerMooreMajority)->RangeMultiplier(2)->Range(8, 512)
    ->Complexity(benchmark::oN);

void BM_FindTrend_Regular(benchmark::State& state) {
  const size_t hsize = static_cast<size_t>(state.range(0));
  AccessHistory history(hsize);
  for (size_t i = 0; i < hsize; ++i) {
    history.Push(1);  // clean sequential trend: found in the small window
  }
  TrendDetector detector(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.FindTrend(history));
  }
}
BENCHMARK(BM_FindTrend_Regular)->RangeMultiplier(2)->Range(8, 512);

void BM_FindTrend_Random(benchmark::State& state) {
  // Worst case: no majority anywhere, every doubling window is scanned.
  const size_t hsize = static_cast<size_t>(state.range(0));
  AccessHistory history(hsize);
  Rng rng(43);
  for (size_t i = 0; i < hsize; ++i) {
    history.Push(rng.NextInt(-1'000'000, 1'000'000));
  }
  TrendDetector detector(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.FindTrend(history));
  }
  state.SetComplexityN(static_cast<int64_t>(hsize));
}
BENCHMARK(BM_FindTrend_Random)->RangeMultiplier(2)->Range(8, 512)
    ->Complexity(benchmark::oN);

void BM_PrefetchWindowCompute(benchmark::State& state) {
  PrefetchWindow window(8);
  bool flip = false;
  for (auto _ : state) {
    window.OnPrefetchHit();
    benchmark::DoNotOptimize(window.ComputeSize(flip));
    flip = !flip;
  }
}
BENCHMARK(BM_PrefetchWindowCompute);

void BM_LeapOnAccess_Sequential(benchmark::State& state) {
  LeapParams params;
  params.history_size = static_cast<size_t>(state.range(0));
  LeapPrefetcher prefetcher(params);
  SwapSlot addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prefetcher.OnMiss(addr++));
    prefetcher.OnPrefetchHit(addr);
  }
}
BENCHMARK(BM_LeapOnAccess_Sequential)->Arg(32)->Arg(128)->Arg(512);

void BM_LeapOnAccess_Random(benchmark::State& state) {
  LeapParams params;
  params.history_size = static_cast<size_t>(state.range(0));
  LeapPrefetcher prefetcher(params);
  Rng rng(44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prefetcher.OnMiss(rng.NextU64(1 << 24)));
  }
}
BENCHMARK(BM_LeapOnAccess_Random)->Arg(32)->Arg(128)->Arg(512);

void BM_ProcessTrackerFault(benchmark::State& state) {
  // Multi-process dispatch cost on top of the core decision.
  ProcessPageTracker tracker{LeapParams{}};
  Rng rng(45);
  SwapSlot addr = 0;
  for (auto _ : state) {
    const Pid pid = 1 + static_cast<Pid>(addr % 8);
    benchmark::DoNotOptimize(tracker.OnFault(pid, addr++));
  }
}
BENCHMARK(BM_ProcessTrackerFault);

void BM_EagerFifoListOps(benchmark::State& state) {
  PrefetchFifoLruList list;
  SwapSlot next = 0;
  for (auto _ : state) {
    list.OnPrefetched(next);
    if (next % 2 == 0) {
      list.OnConsumed(next / 2);
    }
    if (list.size() > 1024) {
      list.PopOldest();
    }
    ++next;
  }
}
BENCHMARK(BM_EagerFifoListOps);

}  // namespace
}  // namespace leap

BENCHMARK_MAIN();
