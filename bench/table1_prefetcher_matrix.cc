// Table 1: qualitative comparison of prefetching techniques, augmented
// with this implementation's *measured* per-access computational overhead
// and memory footprint for the realtime candidates.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/prefetch/ghb.h"
#include "src/prefetch/leap_adapter.h"
#include "src/prefetch/next_n_line.h"
#include "src/prefetch/readahead.h"
#include "src/prefetch/stride.h"
#include "src/stats/table.h"

namespace leap {
namespace {

// Wall-clock cost of one OnFault decision, averaged over a mixed stream.
double MeasureNsPerDecision(PrefetchPolicy& policy) {
  Rng rng(7);
  // Mixed access stream: sequential, strided, and random segments.
  std::vector<SwapSlot> stream;
  SwapSlot cursor = 0;
  for (int seg = 0; seg < 3000; ++seg) {
    const int kind = seg % 3;
    const size_t len = 4 + rng.NextU64(12);
    for (size_t i = 0; i < len; ++i) {
      if (kind == 0) {
        ++cursor;
      } else if (kind == 1) {
        cursor += 7;
      } else {
        cursor = rng.NextU64(1 << 22);
      }
      stream.push_back(cursor);
    }
  }
  const auto start = std::chrono::steady_clock::now();
  size_t sink = 0;
  for (SwapSlot slot : stream) {
    sink += policy.OnFault({1, slot}).size();
  }
  const auto end = std::chrono::steady_clock::now();
  // Keep the optimizer honest.
  if (sink == 0xFFFFFFFF) {
    std::printf("!");
  }
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(stream.size());
}

void Run() {
  bench::PrintHeader(
      "Table 1 - prefetching technique comparison",
      "Leap: low compute, low memory, unmodified apps, HW/SW independent, "
      "temporal+spatial locality, high utilization - the only row with "
      "every property");

  TextTable props;
  props.SetHeader({"technique", "low-compute", "low-mem", "unmod-app",
                   "hw/sw-indep", "temporal", "spatial", "high-util"});
  props.AddRow({"Next-N-Line", "yes", "yes", "yes", "yes", "no", "yes",
                "no"});
  props.AddRow({"Stride", "yes", "yes", "yes", "yes", "no", "yes", "no"});
  props.AddRow({"GHB PC", "no", "no", "yes", "no", "yes", "yes", "yes"});
  props.AddRow({"Instruction prefetch", "no", "no", "no", "no", "yes", "yes",
                "yes"});
  props.AddRow({"Linux Read-Ahead", "yes", "yes", "yes", "yes", "yes", "yes",
                "no"});
  props.AddRow({"Leap", "yes", "yes", "yes", "yes", "yes", "yes", "yes"});
  std::printf("%s\n", props.Render().c_str());

  std::printf("--- measured per-decision overhead (this implementation) "
              "---\n");
  TextTable cost;
  cost.SetHeader({"technique", "ns/decision", "state bytes/process"});
  NextNLinePrefetcher next_n(8);
  StridePrefetcher stride(8);
  ReadAheadPrefetcher readahead(2, 8);
  GhbPrefetcher ghb;
  LeapAdapter leap_prefetcher;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", MeasureNsPerDecision(next_n));
  cost.AddRow({"Next-N-Line", buf, "0"});
  std::snprintf(buf, sizeof(buf), "%.0f", MeasureNsPerDecision(stride));
  cost.AddRow({"Stride", buf, std::to_string(sizeof(SwapSlot) * 2 + 24)});
  std::snprintf(buf, sizeof(buf), "%.0f", MeasureNsPerDecision(readahead));
  cost.AddRow({"Read-Ahead", buf, std::to_string(sizeof(SwapSlot) + 24)});
  const GhbConfig ghb_config;
  std::snprintf(buf, sizeof(buf), "%.0f", MeasureNsPerDecision(ghb));
  cost.AddRow({"GHB (global, shared)", buf,
               std::to_string(ghb_config.buffer_size * 16 + 1024) + "+index"});
  std::snprintf(buf, sizeof(buf), "%.0f",
                MeasureNsPerDecision(leap_prefetcher));
  const LeapParams params;
  cost.AddRow({"Leap", buf,
               std::to_string(params.history_size * sizeof(PageDelta) + 64)});
  std::printf("%s\n", cost.Render().c_str());
  std::printf("Leap state = Hsize(%zu) deltas x 8B + O(1) window state: "
              "O(1) memory per process, O(Hsize) worst-case time.\n",
              params.history_size);
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
