// Table 1: qualitative comparison of prefetching techniques, augmented
// with this implementation's *measured* per-access computational overhead
// and memory footprint for the realtime candidates.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/prefetch/policy_registry.h"
#include "src/stats/table.h"

namespace leap {
namespace {

// Wall-clock cost of one OnFault decision, averaged over a mixed stream.
double MeasureNsPerDecision(PrefetchPolicy& policy) {
  Rng rng(7);
  // Mixed access stream: sequential, strided, and random segments.
  std::vector<SwapSlot> stream;
  SwapSlot cursor = 0;
  for (int seg = 0; seg < 3000; ++seg) {
    const int kind = seg % 3;
    const size_t len = 4 + rng.NextU64(12);
    for (size_t i = 0; i < len; ++i) {
      if (kind == 0) {
        ++cursor;
      } else if (kind == 1) {
        cursor += 7;
      } else {
        cursor = rng.NextU64(1 << 22);
      }
      stream.push_back(cursor);
    }
  }
  const auto start = std::chrono::steady_clock::now();
  size_t sink = 0;
  for (SwapSlot slot : stream) {
    sink += policy.OnFault({1, slot}).size();
  }
  const auto end = std::chrono::steady_clock::now();
  // Keep the optimizer honest.
  if (sink == 0xFFFFFFFF) {
    std::printf("!");
  }
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(stream.size());
}

void Run() {
  bench::PrintHeader(
      "Table 1 - prefetching technique comparison",
      "Leap: low compute, low memory, unmodified apps, HW/SW independent, "
      "temporal+spatial locality, high utilization - the only row with "
      "every property");

  TextTable props;
  props.SetHeader({"technique", "low-compute", "low-mem", "unmod-app",
                   "hw/sw-indep", "temporal", "spatial", "high-util"});
  props.AddRow({"Next-N-Line", "yes", "yes", "yes", "yes", "no", "yes",
                "no"});
  props.AddRow({"Stride", "yes", "yes", "yes", "yes", "no", "yes", "no"});
  props.AddRow({"GHB PC", "no", "no", "yes", "no", "yes", "yes", "yes"});
  props.AddRow({"Instruction prefetch", "no", "no", "no", "no", "yes", "yes",
                "yes"});
  props.AddRow({"Linux Read-Ahead", "yes", "yes", "yes", "yes", "yes", "yes",
                "no"});
  props.AddRow({"Leap", "yes", "yes", "yes", "yes", "yes", "yes", "yes"});
  props.AddRow({"Online-delta (learned)", "yes", "no", "yes", "yes", "yes",
                "yes", "yes"});
  props.AddRow({"Profile-guided", "yes", "yes", "yes", "yes", "no", "yes",
                "yes"});
  std::printf("%s\n", props.Render().c_str());

  std::printf("--- measured per-decision overhead (this implementation) "
              "---\n");
  // Every registered kind goes through the same harness; adding a policy
  // to the registry adds its row here with no bench edits.
  TextTable cost;
  cost.SetHeader({"technique", "ns/decision", "state bytes/process"});
  const GhbConfig ghb_config;
  const LeapParams params;
  const OnlineDeltaConfig od_config;
  for (PrefetchKind kind : kAllPrefetchKinds) {
    auto policy = MakePrefetchPolicy(kind);
    std::string state;
    switch (kind) {
      case PrefetchKind::kNone:
      case PrefetchKind::kNextNLine:
        state = "0";
        break;
      case PrefetchKind::kStride:
        state = std::to_string(sizeof(SwapSlot) * 2 + 24);
        break;
      case PrefetchKind::kReadAhead:
        state = std::to_string(sizeof(SwapSlot) + 24);
        break;
      case PrefetchKind::kGhb:
        state = std::to_string(ghb_config.buffer_size * 16 + 1024) + "+index";
        break;
      case PrefetchKind::kLeap:
        state =
            std::to_string(params.history_size * sizeof(PageDelta) + 64);
        break;
      case PrefetchKind::kOnlineDelta:
        state = "<=" + std::to_string(od_config.max_entries * 48) + " shared";
        break;
      case PrefetchKind::kProfileGuided:
        state = "profile (offline) + 16/region";
        break;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", MeasureNsPerDecision(*policy));
    cost.AddRow({std::string(PrefetchKindName(kind)), buf, state});
  }
  std::printf("%s\n", cost.Render().c_str());
  std::printf("Leap state = Hsize(%zu) deltas x 8B + O(1) window state: "
              "O(1) memory per process, O(Hsize) worst-case time.\n",
              params.history_size);
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
