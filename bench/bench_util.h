// Shared setup for the figure/table reproduction benches.
//
// Every binary prints (a) the paper's reported numbers for the experiment
// and (b) the numbers this simulation regenerates, in the same units, so
// EXPERIMENTS.md can be audited against raw bench output.
#ifndef LEAP_BENCH_BENCH_UTIL_H_
#define LEAP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/runtime/app_runner.h"
#include "src/runtime/machine.h"
#include "src/runtime/presets.h"
#include "src/workload/app_models.h"
#include "src/workload/patterns.h"

namespace leap {
namespace bench {

// Standard microbenchmark geometry (scaled-down from the paper's 2 GB
// working set / 1 GB memory): 16k-page (64 MB) footprint at 50% memory.
inline constexpr size_t kMicroFootprintPages = 16 * 1024;
inline constexpr size_t kMicroFrames = 1 << 16;

struct MicroResult {
  RunResult run;
  std::unique_ptr<Machine> machine;
};

enum class MicroPattern { kSequential, kStride10 };

// Populates the working set sequentially (paper setup), then measures
// `accesses` of the given pattern at 50% memory.
inline MicroResult RunMicro(const MachineConfig& config, MicroPattern pattern,
                            size_t accesses, size_t footprint_pages =
                                                  kMicroFootprintPages) {
  MicroResult out;
  out.machine = std::make_unique<Machine>(config);
  const Pid pid = out.machine->CreateProcess(footprint_pages / 2);
  const SimTimeNs warm_end = WarmUp(*out.machine, pid, footprint_pages);
  RunConfig run;
  run.total_accesses = accesses;
  run.start_time_ns = warm_end + 10 * kNsPerMs;
  if (pattern == MicroPattern::kSequential) {
    SequentialStream stream(footprint_pages, 750);
    out.run = RunApp(*out.machine, pid, stream, run);
  } else {
    StrideStream stream(footprint_pages, 10, 750);
    out.run = RunApp(*out.machine, pid, stream, run);
  }
  return out;
}

// Runs one of the four application models at `memory_pct` of its footprint
// with a sequential warm-up pass, returning the result and the machine for
// counter inspection.
struct AppResult {
  RunResult run;
  std::unique_ptr<Machine> machine;
};

inline AppResult RunAppModel(const MachineConfig& config, size_t app_index,
                             size_t memory_pct, size_t accesses,
                             SimTimeNs time_cap_ns = 0,
                             uint64_t workload_seed = 1234) {
  AppResult out;
  out.machine = std::make_unique<Machine>(config);
  const AppSpec& spec = kApps[app_index];
  const size_t limit = spec.footprint_pages * memory_pct / 100;
  const Pid pid = out.machine->CreateProcess(limit);
  auto stream = spec.make(spec.footprint_pages, workload_seed);
  const SimTimeNs warm_end = WarmUp(*out.machine, pid, spec.footprint_pages);
  RunConfig run;
  run.total_accesses = accesses;
  run.start_time_ns = warm_end + 10 * kNsPerMs;
  run.time_cap_ns = time_cap_ns;
  out.run = RunApp(*out.machine, pid, *stream, run);
  return out;
}

// --- BENCH_*.json schema -------------------------------------------------
// Version of the JSON layout shared by every bench emitter. Bumped when a
// key is renamed/removed (additions are compatible); consumers that parse
// BENCH_*.json key off this instead of sniffing for fields.
//   v1: pre-PR-7 (implicit, no version key)
//   v2: schema_version + run_config preamble, --trace / --timeseries
inline constexpr int kBenchSchemaVersion = 2;

// Run-config echo: enough to reproduce the run that produced a JSON (the
// numbers are seed-deterministic, so this IS the provenance).
struct BenchRunInfo {
  const char* bench = "";      // binary name
  uint64_t seed = 0;           // cluster/machine master seed
  size_t hosts = 0;
  size_t nodes = 0;
  const char* scheduler = "";  // link scheduler kind; "" = n/a
  const char* placer = "";     // slab-placer kind; "" = n/a (single host)
};

// Standard preamble, emitted right after the opening "mode" key.
inline void WriteSchemaPreamble(FILE* f, const BenchRunInfo& info) {
  std::fprintf(f, "  \"schema_version\": %d,\n", kBenchSchemaVersion);
  std::fprintf(f, "  \"bench\": \"%s\",\n", info.bench);
  std::fprintf(f,
               "  \"run_config\": {\"seed\": %llu, \"hosts\": %zu, "
               "\"nodes\": %zu, \"scheduler\": \"%s\", \"placer\": \"%s\"},\n",
               static_cast<unsigned long long>(info.seed), info.hosts,
               info.nodes, info.scheduler, info.placer);
}

// --- command line --------------------------------------------------------
// Shared flag vocabulary for the cluster benches:
//   --smoke               tiny CI configuration
//   --trace[=path]        flight-record the headline variant and export
//                         chrome://tracing JSON (default <out>.trace.json)
//   --timeseries[=path]   periodic stats sampling on the headline variant,
//                         written as JSONL (default <out>.timeseries.jsonl)
//   <positional>          output JSON path
struct BenchArgs {
  bool smoke = false;
  bool trace = false;
  bool timeseries = false;
  std::string json_path;
  std::string trace_path;
  std::string timeseries_path;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv,
                                const char* default_json) {
  BenchArgs args;
  args.json_path = default_json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--trace") {
      args.trace = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      args.trace = true;
      args.trace_path = arg.substr(8);
    } else if (arg == "--timeseries") {
      args.timeseries = true;
    } else if (arg.rfind("--timeseries=", 0) == 0) {
      args.timeseries = true;
      args.timeseries_path = arg.substr(13);
    } else {
      args.json_path = arg;
    }
  }
  std::string stem = args.json_path;
  if (stem.size() > 5 && stem.rfind(".json") == stem.size() - 5) {
    stem.resize(stem.size() - 5);
  }
  if (args.trace && args.trace_path.empty()) {
    args.trace_path = stem + ".trace.json";
  }
  if (args.timeseries && args.timeseries_path.empty()) {
    args.timeseries_path = stem + ".timeseries.jsonl";
  }
  return args;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_summary) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf("==============================================================\n");
}

inline std::string FormatCompletion(const RunResult& r) {
  if (!r.finished) {
    return "DNF";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ToSec(r.completion_ns));
  return buf;
}

}  // namespace bench
}  // namespace leap

#endif  // LEAP_BENCH_BENCH_UTIL_H_
