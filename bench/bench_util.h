// Shared setup for the figure/table reproduction benches.
//
// Every binary prints (a) the paper's reported numbers for the experiment
// and (b) the numbers this simulation regenerates, in the same units, so
// EXPERIMENTS.md can be audited against raw bench output.
#ifndef LEAP_BENCH_BENCH_UTIL_H_
#define LEAP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/runtime/app_runner.h"
#include "src/runtime/machine.h"
#include "src/runtime/presets.h"
#include "src/workload/app_models.h"
#include "src/workload/patterns.h"

namespace leap {
namespace bench {

// Standard microbenchmark geometry (scaled-down from the paper's 2 GB
// working set / 1 GB memory): 16k-page (64 MB) footprint at 50% memory.
inline constexpr size_t kMicroFootprintPages = 16 * 1024;
inline constexpr size_t kMicroFrames = 1 << 16;

struct MicroResult {
  RunResult run;
  std::unique_ptr<Machine> machine;
};

enum class MicroPattern { kSequential, kStride10 };

// Populates the working set sequentially (paper setup), then measures
// `accesses` of the given pattern at 50% memory.
inline MicroResult RunMicro(const MachineConfig& config, MicroPattern pattern,
                            size_t accesses, size_t footprint_pages =
                                                  kMicroFootprintPages) {
  MicroResult out;
  out.machine = std::make_unique<Machine>(config);
  const Pid pid = out.machine->CreateProcess(footprint_pages / 2);
  const SimTimeNs warm_end = WarmUp(*out.machine, pid, footprint_pages);
  RunConfig run;
  run.total_accesses = accesses;
  run.start_time_ns = warm_end + 10 * kNsPerMs;
  if (pattern == MicroPattern::kSequential) {
    SequentialStream stream(footprint_pages, 750);
    out.run = RunApp(*out.machine, pid, stream, run);
  } else {
    StrideStream stream(footprint_pages, 10, 750);
    out.run = RunApp(*out.machine, pid, stream, run);
  }
  return out;
}

// Runs one of the four application models at `memory_pct` of its footprint
// with a sequential warm-up pass, returning the result and the machine for
// counter inspection.
struct AppResult {
  RunResult run;
  std::unique_ptr<Machine> machine;
};

inline AppResult RunAppModel(const MachineConfig& config, size_t app_index,
                             size_t memory_pct, size_t accesses,
                             SimTimeNs time_cap_ns = 0,
                             uint64_t workload_seed = 1234) {
  AppResult out;
  out.machine = std::make_unique<Machine>(config);
  const AppSpec& spec = kApps[app_index];
  const size_t limit = spec.footprint_pages * memory_pct / 100;
  const Pid pid = out.machine->CreateProcess(limit);
  auto stream = spec.make(spec.footprint_pages, workload_seed);
  const SimTimeNs warm_end = WarmUp(*out.machine, pid, spec.footprint_pages);
  RunConfig run;
  run.total_accesses = accesses;
  run.start_time_ns = warm_end + 10 * kNsPerMs;
  run.time_cap_ns = time_cap_ns;
  out.run = RunApp(*out.machine, pid, *stream, run);
  return out;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_summary) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf("==============================================================\n");
}

inline std::string FormatCompletion(const RunResult& r) {
  if (!r.finished) {
    return "DNF";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ToSec(r.completion_ns));
  return buf;
}

}  // namespace bench
}  // namespace leap

#endif  // LEAP_BENCH_BENCH_UTIL_H_
