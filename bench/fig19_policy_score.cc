// Figure 19 (this repo's extension): policy scoring on the paper's own
// axes - accuracy (prefetch hits / issued, Figure 10a), coverage
// (prefetch hits / page faults), timeliness (insert -> first hit,
// Figure 10b), and wasted-prefetch ratio (unused evictions / issued) -
// for every policy in the registry, across four canonical patterns:
//   sequential        the paper's best case
//   strided           Stride-10 (section 5.1)
//   scrambled-zipf    hot set scattered across the address space - the
//                     irregular pattern where the learned policy's
//                     confidence gating should beat blind lookahead
//   interleaved       two tenants (sequential + scrambled-zipf) on one
//                     machine, faults interleaved in global time order
//
// ProfileGuidedPolicy is trained per pattern: a recording run (no
// prefetching) captures the fault trace through Machine::SetFaultTraceSink,
// BuildProfile turns it into per-region stride/distance hints, and the
// scored run replays those hints - the 3PO profile->replay loop end to end.
//
// The JSON carries a "criteria" block with the two headline comparisons
// (learned vs next-n-line accuracy on scrambled-zipf; profile-guided vs
// Leap coverage on strided). All values are functions of counters and
// simulated time only - no wall clock - so reruns are byte-identical.
//
// Usage: fig19_policy_score [--smoke] [output.json]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/prefetch/profile_pass.h"
#include "src/stats/table.h"

namespace leap {
namespace {

constexpr uint64_t kSeed = 61;

struct BenchGeometry {
  size_t footprint_pages = 16 * 1024;
  size_t accesses = 100'000;
  size_t total_frames = bench::kMicroFrames;
};

BenchGeometry FullGeometry() { return {}; }
BenchGeometry SmokeGeometry() { return {2048, 12'000, bench::kMicroFrames}; }

enum class Pattern { kSequential, kStrided, kScrambledZipf, kInterleaved };

constexpr Pattern kPatterns[] = {Pattern::kSequential, Pattern::kStrided,
                                 Pattern::kScrambledZipf,
                                 Pattern::kInterleaved};

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kSequential:
      return "sequential";
    case Pattern::kStrided:
      return "strided";
    case Pattern::kScrambledZipf:
      return "scrambled-zipf";
    case Pattern::kInterleaved:
      return "interleaved";
  }
  return "?";
}

std::unique_ptr<AccessStream> MakeStream(Pattern p, size_t footprint) {
  switch (p) {
    case Pattern::kSequential:
      return std::make_unique<SequentialStream>(footprint, 750);
    case Pattern::kStrided:
      return std::make_unique<StrideStream>(footprint, 10, 750);
    case Pattern::kScrambledZipf:
    case Pattern::kInterleaved:  // the zipf leg; sequential leg added below
      return std::make_unique<ScrambledZipfStream>(footprint, 0.99, 750);
  }
  return nullptr;
}

struct PolicyScore {
  std::string policy;
  double accuracy_pct = 0.0;
  double coverage_pct = 0.0;
  SimTimeNs timeliness_p50_ns = 0;
  SimTimeNs timeliness_p99_ns = 0;
  double wasted_ratio = 0.0;
  uint64_t issued = 0;
  uint64_t hits = 0;
  uint64_t faults = 0;
};

struct PatternScores {
  std::string pattern;
  std::vector<PolicyScore> policies;

  const PolicyScore* Find(std::string_view policy) const {
    for (const PolicyScore& s : policies) {
      if (s.policy == policy) return &s;
    }
    return nullptr;
  }
};

// Runs `pattern` on one machine with `config`, optionally recording the
// fault trace. Interleaved runs two tenants concurrently.
void RunPattern(Machine& machine, Pattern pattern, const BenchGeometry& geo) {
  if (pattern == Pattern::kInterleaved) {
    const Pid seq_pid = machine.CreateProcess(geo.footprint_pages / 2);
    const Pid zipf_pid = machine.CreateProcess(geo.footprint_pages / 2);
    const SimTimeNs warm1 = WarmUp(machine, seq_pid, geo.footprint_pages);
    const SimTimeNs warm2 =
        WarmUp(machine, zipf_pid, geo.footprint_pages, warm1);
    SequentialStream seq(geo.footprint_pages, 750);
    ScrambledZipfStream zipf(geo.footprint_pages, 0.99, 750);
    RunConfig run;
    run.total_accesses = geo.accesses;
    run.start_time_ns = warm2 + 10 * kNsPerMs;
    RunConfig run2 = run;
    run2.seed = 8;
    RunAppsConcurrently(machine,
                        {{seq_pid, &seq, run}, {zipf_pid, &zipf, run2}});
    return;
  }
  const Pid pid = machine.CreateProcess(geo.footprint_pages / 2);
  const SimTimeNs warm_end = WarmUp(machine, pid, geo.footprint_pages);
  auto stream = MakeStream(pattern, geo.footprint_pages);
  RunConfig run;
  run.total_accesses = geo.accesses;
  run.start_time_ns = warm_end + 10 * kNsPerMs;
  RunApp(machine, pid, *stream, run);
}

// Recording pass: the default machine (read-ahead prefetcher - profile
// the deployed configuration, as a real profile-guided pass would) with
// the fault trace captured. Recording under an active prefetcher matters:
// prefetch hits are policy-visible events, so the trace approximates the
// full cold-access stream in slot space instead of the miss residue.
PrefetchProfile TrainProfile(Pattern pattern, const BenchGeometry& geo) {
  MachineConfig config =
      DefaultVmmConfig(PrefetchKind::kReadAhead, geo.total_frames, kSeed);
  Machine machine(config);
  FaultTrace trace;
  machine.SetFaultTraceSink(&trace);
  RunPattern(machine, pattern, geo);
  machine.SetFaultTraceSink(nullptr);
  return BuildProfile(trace);
}

PolicyScore ScoreOne(Pattern pattern, PrefetchKind kind,
                     const PrefetchProfile& profile,
                     const BenchGeometry& geo) {
  MachineConfig config = DefaultVmmConfig(kind, geo.total_frames, kSeed);
  if (kind == PrefetchKind::kProfileGuided) {
    config.profile_guided.profile = profile;
  }
  Machine machine(config);
  RunPattern(machine, pattern, geo);

  const Counters& c = machine.counters();
  PolicyScore s;
  s.policy = PrefetchKindName(kind);
  s.accuracy_pct =
      100.0 * c.Ratio(counter::kPrefetchHits, counter::kPrefetchIssued);
  s.coverage_pct =
      100.0 * c.Ratio(counter::kPrefetchHits, counter::kPageFaults);
  s.timeliness_p50_ns = machine.timeliness_hist().Percentile(0.5);
  s.timeliness_p99_ns = machine.timeliness_hist().Percentile(0.99);
  s.wasted_ratio = c.Ratio(counter::kPrefetchUnused, counter::kPrefetchIssued);
  s.issued = c.Get(counter::kPrefetchIssued);
  s.hits = c.Get(counter::kPrefetchHits);
  s.faults = c.Get(counter::kPageFaults);
  return s;
}

struct Criteria {
  double online_delta_accuracy = 0.0;
  double next_n_line_accuracy = 0.0;
  bool online_delta_beats_next_n_line = false;
  double profile_guided_coverage = 0.0;
  double leap_coverage = 0.0;
  bool profile_guided_approaches_leap = false;
};

Criteria EvaluateCriteria(const std::vector<PatternScores>& all) {
  Criteria crit;
  for (const PatternScores& ps : all) {
    if (ps.pattern == "scrambled-zipf") {
      const PolicyScore* od = ps.Find("online-delta");
      const PolicyScore* nn = ps.Find("next-n-line");
      if (od != nullptr && nn != nullptr) {
        crit.online_delta_accuracy = od->accuracy_pct;
        crit.next_n_line_accuracy = nn->accuracy_pct;
        crit.online_delta_beats_next_n_line =
            od->accuracy_pct > nn->accuracy_pct;
      }
    } else if (ps.pattern == "strided") {
      const PolicyScore* pg = ps.Find("profile-guided");
      const PolicyScore* lp = ps.Find("leap");
      if (pg != nullptr && lp != nullptr) {
        crit.profile_guided_coverage = pg->coverage_pct;
        crit.leap_coverage = lp->coverage_pct;
        crit.profile_guided_approaches_leap =
            pg->coverage_pct >= 0.9 * lp->coverage_pct;
      }
    }
  }
  return crit;
}

void WriteJson(const char* path, const std::vector<PatternScores>& all,
               const Criteria& crit, const BenchGeometry& geo, bool smoke) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  bench::BenchRunInfo info;
  info.bench = "fig19_policy_score";
  info.seed = kSeed;
  info.hosts = 1;
  info.nodes = 2;
  bench::WriteSchemaPreamble(f, info);
  std::fprintf(f,
               "  \"geometry\": {\"footprint_pages\": %zu, \"accesses\": "
               "%zu, \"total_frames\": %zu},\n",
               geo.footprint_pages, geo.accesses, geo.total_frames);
  std::fprintf(f, "  \"patterns\": {\n");
  for (size_t i = 0; i < all.size(); ++i) {
    const PatternScores& ps = all[i];
    std::fprintf(f, "    \"%s\": {\n", ps.pattern.c_str());
    for (size_t j = 0; j < ps.policies.size(); ++j) {
      const PolicyScore& s = ps.policies[j];
      std::fprintf(
          f,
          "      \"%s\": {\"accuracy_pct\": %.4f, \"coverage_pct\": %.4f, "
          "\"timeliness_p50_ns\": %llu, \"timeliness_p99_ns\": %llu, "
          "\"wasted_ratio\": %.4f, \"issued\": %llu, \"hits\": %llu, "
          "\"faults\": %llu}%s\n",
          s.policy.c_str(), s.accuracy_pct, s.coverage_pct,
          static_cast<unsigned long long>(s.timeliness_p50_ns),
          static_cast<unsigned long long>(s.timeliness_p99_ns),
          s.wasted_ratio, static_cast<unsigned long long>(s.issued),
          static_cast<unsigned long long>(s.hits),
          static_cast<unsigned long long>(s.faults),
          j + 1 < ps.policies.size() ? "," : "");
    }
    std::fprintf(f, "    }%s\n", i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(
      f,
      "  \"criteria\": {\n"
      "    \"online_delta_accuracy_scrambled_zipf\": %.4f,\n"
      "    \"next_n_line_accuracy_scrambled_zipf\": %.4f,\n"
      "    \"online_delta_beats_next_n_line\": %s,\n"
      "    \"profile_guided_coverage_strided\": %.4f,\n"
      "    \"leap_coverage_strided\": %.4f,\n"
      "    \"profile_guided_ge_0.9x_leap\": %s\n"
      "  }\n",
      crit.online_delta_accuracy, crit.next_n_line_accuracy,
      crit.online_delta_beats_next_n_line ? "true" : "false",
      crit.profile_guided_coverage, crit.leap_coverage,
      crit.profile_guided_approaches_leap ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run(const bench::BenchArgs& args) {
  const BenchGeometry geo = args.smoke ? SmokeGeometry() : FullGeometry();
  bench::PrintHeader(
      "Figure 19 - per-policy accuracy / coverage / timeliness / waste "
      "across sequential, strided, scrambled-zipf, interleaved",
      "section 5 metrics: accuracy = hits/issued (fig 10a), coverage = "
      "hits/faults, timeliness = insert->first-hit (fig 10b)");

  std::vector<PatternScores> all;
  for (Pattern pattern : kPatterns) {
    PatternScores ps;
    ps.pattern = PatternName(pattern);
    // Offline profile for this pattern (3PO loop: record -> profile ->
    // replay). The recording run shares the scored runs' geometry + seed.
    const PrefetchProfile profile = TrainProfile(pattern, geo);
    std::printf("\n--- pattern %s (profile: %zu region hints) ---\n",
                ps.pattern.c_str(), profile.hints.size());

    TextTable table;
    table.SetHeader({"policy", "accuracy(%)", "coverage(%)", "p50 t(us)",
                     "p99 t(us)", "wasted", "issued"});
    for (PrefetchKind kind : kAllPrefetchKinds) {
      PolicyScore s = ScoreOne(pattern, kind, profile, geo);
      char acc[32], cov[32], t50[32], t99[32], waste[32], issued[32];
      std::snprintf(acc, sizeof(acc), "%.1f", s.accuracy_pct);
      std::snprintf(cov, sizeof(cov), "%.1f", s.coverage_pct);
      std::snprintf(t50, sizeof(t50), "%.1f", ToUs(s.timeliness_p50_ns));
      std::snprintf(t99, sizeof(t99), "%.1f", ToUs(s.timeliness_p99_ns));
      std::snprintf(waste, sizeof(waste), "%.3f", s.wasted_ratio);
      std::snprintf(issued, sizeof(issued), "%llu",
                    static_cast<unsigned long long>(s.issued));
      table.AddRow({s.policy, acc, cov, t50, t99, waste, issued});
      ps.policies.push_back(std::move(s));
    }
    std::printf("%s\n", table.Render().c_str());
    all.push_back(std::move(ps));
  }

  const Criteria crit = EvaluateCriteria(all);
  std::printf(
      "\ncriteria: online-delta accuracy %.1f%% vs next-n-line %.1f%% on "
      "scrambled-zipf -> %s; profile-guided coverage %.1f%% vs leap %.1f%% "
      "on strided -> %s\n",
      crit.online_delta_accuracy, crit.next_n_line_accuracy,
      crit.online_delta_beats_next_n_line ? "PASS" : "FAIL",
      crit.profile_guided_coverage, crit.leap_coverage,
      crit.profile_guided_approaches_leap ? "PASS" : "FAIL");

  WriteJson(args.json_path.c_str(), all, crit, geo, args.smoke);
}

}  // namespace
}  // namespace leap

int main(int argc, char** argv) {
  const leap::bench::BenchArgs args =
      leap::bench::ParseBenchArgs(argc, argv, "BENCH_policy.json");
  leap::Run(args);
  return 0;
}
