// Ablations over Leap's design parameters (the knobs DESIGN.md calls out):
//   - AccessHistory size (Hsize): trend visibility vs staleness
//   - Max prefetch window (PWsize_max): aggressiveness vs pollution
//   - Nsplit: initial detection window granularity
//   - Eviction policy: eager vs lazy under identical prefetching
// Each runs PowerGraph at 50% memory on the full Leap stack.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/table.h"

namespace leap {
namespace {

struct Row {
  std::string label;
  double completion_s;
  double coverage_pct;
  double p99_us;
  double prefetch_issued;
};

Row RunConfigured(const std::string& label, const MachineConfig& config) {
  auto result = bench::RunAppModel(config, /*PowerGraph*/ 0, 50, 200000);
  const Counters& c = result.machine->counters();
  return Row{label, ToSec(result.run.completion_ns),
             100.0 * c.Ratio(counter::kPrefetchHits, counter::kPageFaults),
             ToUs(result.run.remote_access_latency.Percentile(0.99)),
             static_cast<double>(c.Get(counter::kPrefetchIssued))};
}

void Print(const char* title, const std::vector<Row>& rows) {
  std::printf("--- %s ---\n", title);
  TextTable table;
  table.SetHeader({"config", "completion(s)", "coverage(%)", "p99(us)",
                   "prefetches"});
  for (const Row& row : rows) {
    char comp[32];
    char cov[32];
    char p99[32];
    std::snprintf(comp, sizeof(comp), "%.2f", row.completion_s);
    std::snprintf(cov, sizeof(cov), "%.1f", row.coverage_pct);
    std::snprintf(p99, sizeof(p99), "%.2f", row.p99_us);
    table.AddRow({row.label, comp, cov, p99,
                  std::to_string(static_cast<uint64_t>(row.prefetch_issued))});
  }
  std::printf("%s\n", table.Render().c_str());
}

void Run() {
  bench::PrintHeader(
      "Ablations - Hsize, PWsize_max, Nsplit, eviction policy",
      "paper defaults: Hsize=32, PWsize_max=8, Nsplit=2, eager eviction; "
      "section 3.3: even Hsize=32 gives most of the benefit");

  {
    std::vector<Row> rows;
    for (size_t hsize : {8, 16, 32, 64, 128}) {
      MachineConfig config = LeapVmmConfig(bench::kMicroFrames, 101);
      config.leap.history_size = hsize;
      rows.push_back(RunConfigured("Hsize=" + std::to_string(hsize), config));
    }
    Print("AccessHistory size (Hsize)", rows);
  }
  {
    std::vector<Row> rows;
    for (size_t pw : {1, 2, 4, 8, 16, 32}) {
      MachineConfig config = LeapVmmConfig(bench::kMicroFrames, 102);
      config.leap.max_prefetch_window = pw;
      rows.push_back(RunConfigured("PWmax=" + std::to_string(pw), config));
    }
    Print("Max prefetch window (PWsize_max)", rows);
  }
  {
    std::vector<Row> rows;
    for (size_t nsplit : {1, 2, 4, 8}) {
      MachineConfig config = LeapVmmConfig(bench::kMicroFrames, 103);
      config.leap.nsplit = nsplit;
      rows.push_back(RunConfigured("Nsplit=" + std::to_string(nsplit),
                                   config));
    }
    Print("Initial window divisor (Nsplit)", rows);
  }
  {
    std::vector<Row> rows;
    MachineConfig lazy = LeapVmmConfig(bench::kMicroFrames, 104);
    lazy.eviction = EvictionKind::kLazyLru;
    rows.push_back(RunConfigured("lazy LRU", lazy));
    rows.push_back(RunConfigured(
        "eager (Leap)", LeapVmmConfig(bench::kMicroFrames, 104)));
    Print("Prefetch cache eviction policy", rows);
  }
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
