// Figure 7: 4KB page access latency with and without Leap, for both
// disaggregated VMM and disaggregated VFS, under Sequential and Stride-10.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/cdf.h"

namespace leap {
namespace {

RunResult RunVfs(const MachineConfig& config, bench::MicroPattern pattern,
                 size_t accesses) {
  Machine vfs(config);
  const Pid pid = vfs.CreateProcess(0);
  SimTimeNs now = 0;
  for (Vpn v = 0; v < bench::kMicroFootprintPages; ++v) {
    now += 150;
    now += vfs.Access(pid, v, /*write=*/true, now).latency;
  }
  RunConfig run;
  run.total_accesses = accesses;
  run.start_time_ns = now + 10 * kNsPerMs;
  if (pattern == bench::MicroPattern::kSequential) {
    SequentialStream stream(bench::kMicroFootprintPages, 750);
    return RunApp(vfs, pid, stream, run);
  }
  StrideStream stream(bench::kMicroFootprintPages, 10, 750);
  return RunApp(vfs, pid, stream, run);
}

void RunPattern(bench::MicroPattern pattern, const char* label,
                size_t accesses) {
  auto dvmm = bench::RunMicro(
      DefaultVmmConfig(PrefetchKind::kReadAhead, bench::kMicroFrames, 21),
      pattern, accesses);
  auto dvmm_leap = bench::RunMicro(LeapVmmConfig(bench::kMicroFrames, 21),
                                   pattern, accesses);
  const RunResult vfs = RunVfs(
      DefaultVfsConfig(PrefetchKind::kReadAhead, bench::kMicroFrames,
                       bench::kMicroFootprintPages / 2, 21),
      pattern, accesses);
  const RunResult vfs_leap =
      RunVfs(LeapVfsConfig(bench::kMicroFrames,
                           bench::kMicroFootprintPages / 2, 21),
             pattern, accesses);

  std::printf("--- %s ---\n", label);
  std::printf(
      "%s\n",
      RenderLatencyQuantileTable(
          {{"D-VMM", &dvmm.run.remote_access_latency},
           {"D-VMM+Leap", &dvmm_leap.run.remote_access_latency},
           {"D-VFS", &vfs.remote_access_latency},
           {"D-VFS+Leap", &vfs_leap.remote_access_latency}})
          .c_str());

  const double vmm_p50 = ToUs(dvmm.run.remote_access_latency.Percentile(0.5));
  const double vmm_leap_p50 =
      ToUs(dvmm_leap.run.remote_access_latency.Percentile(0.5));
  const double vmm_p99 =
      ToUs(dvmm.run.remote_access_latency.Percentile(0.99));
  const double vmm_leap_p99 =
      ToUs(dvmm_leap.run.remote_access_latency.Percentile(0.99));
  const double vfs_p50 = ToUs(vfs.remote_access_latency.Percentile(0.5));
  const double vfs_leap_p50 =
      ToUs(vfs_leap.remote_access_latency.Percentile(0.5));
  const double vfs_p99 = ToUs(vfs.remote_access_latency.Percentile(0.99));
  const double vfs_leap_p99 =
      ToUs(vfs_leap.remote_access_latency.Percentile(0.99));
  std::printf("improvement D-VMM: median %.2fx, p99 %.2fx\n",
              vmm_p50 / vmm_leap_p50, vmm_p99 / vmm_leap_p99);
  std::printf("improvement D-VFS: median %.2fx, p99 %.2fx\n\n",
              vfs_p50 / vfs_leap_p50, vfs_p99 / vfs_leap_p99);
}

}  // namespace
}  // namespace leap

int main() {
  leap::bench::PrintHeader(
      "Figure 7 - 4KB access latency with Leap",
      "sequential: D-VMM median 4.07x / p99 5.48x, D-VFS median 1.99x / "
      "p99 3.42x; stride-10: D-VMM median 104.04x / p99 22.06x, D-VFS "
      "median 24.96x / p99 17.32x");
  leap::RunPattern(leap::bench::MicroPattern::kSequential, "Sequential",
                   120000);
  leap::RunPattern(leap::bench::MicroPattern::kStride10, "Stride-10", 60000);
  return 0;
}
