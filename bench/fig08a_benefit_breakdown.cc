// Figure 8a: latency CCDF of PowerGraph at 50% memory, decomposing Leap's
// benefit into (1) the lean data path, (2) + the majority prefetcher,
// (3) + eager eviction.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/cdf.h"

namespace leap {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 8a - benefit breakdown, PowerGraph at 50% memory (CCDF)",
      "data path alone: single-digit us to p95; +prefetcher: sub-us to p85, "
      "p99 11.4% better; +eager eviction: another 22.2% at the tail");

  constexpr size_t kAccesses = 300000;

  // (1) Lean data path only: Leap path, Linux-style readahead, lazy LRU.
  MachineConfig path_only = LeapVmmConfig(bench::kMicroFrames, 31);
  path_only.prefetcher = PrefetchKind::kReadAhead;
  path_only.eviction = EvictionKind::kLazyLru;
  auto r1 = bench::RunAppModel(path_only, /*PowerGraph*/ 0, 50, kAccesses);

  // (2) + Leap prefetcher.
  MachineConfig with_prefetcher = LeapVmmConfig(bench::kMicroFrames, 31);
  with_prefetcher.eviction = EvictionKind::kLazyLru;
  auto r2 =
      bench::RunAppModel(with_prefetcher, 0, 50, kAccesses);

  // (3) + eager eviction (full Leap).
  auto r3 = bench::RunAppModel(LeapVmmConfig(bench::kMicroFrames, 31), 0, 50,
                               kAccesses);

  const std::vector<double> thresholds = {0.5, 1, 2, 4, 8, 16, 32, 64};
  std::printf(
      "%s\n",
      RenderCcdfTable({{"data path only", &r1.run.remote_access_latency},
                       {"+ prefetcher", &r2.run.remote_access_latency},
                       {"+ eager eviction", &r3.run.remote_access_latency}},
                      thresholds)
          .c_str());

  std::printf("p99 (us): path %.2f | +prefetcher %.2f | +eviction %.2f\n",
              ToUs(r1.run.remote_access_latency.Percentile(0.99)),
              ToUs(r2.run.remote_access_latency.Percentile(0.99)),
              ToUs(r3.run.remote_access_latency.Percentile(0.99)));
  std::printf("mean alloc (ns): lazy %.0f -> eager %.0f\n",
              r2.machine->alloc_hist().Mean(),
              r3.machine->alloc_hist().Mean());
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
