// Steady-state hot-path throughput: wall-clock simulated accesses/sec.
//
// Drives Machine::Access directly (no result histograms) on the two micro
// workloads — Sequential and Zipf(0.99) — over the standard micro geometry,
// on the full Leap stack. Emits BENCH_hotpath.json recording the measured
// numbers next to the pre-refactor baseline, so the repo's perf trajectory
// is auditable (see EXPERIMENTS.md).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/zipf.h"

namespace leap {
namespace {

// Accesses/sec measured on this machine at the pre-refactor seed commit
// (std::unordered_map containers, std::list LRU, std::function event heap,
// per-miss vector allocation), using this same bench (pre-generated access
// sequences). Re-baseline when the hardware changes.
constexpr double kBaselineSequentialAps = 1680876.0;
constexpr double kBaselineZipfAps = 5113747.0;

constexpr size_t kWarmAccesses = 200'000;
constexpr size_t kMeasuredAccesses = 2'000'000;

struct HotpathResult {
  double accesses_per_sec = 0.0;
  // Determinism fingerprint: final simulated time plus hot counters.
  SimTimeNs end_sim_time = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t prefetch_hits = 0;
};

// Times `accesses` calls to Machine::Access after `warm` untimed ones.
// The access sequence is pre-generated so the timed region contains ONLY
// Machine::Access - workload generation (e.g. the Zipf sampler's pow())
// is not part of what this bench tracks.
HotpathResult Measure(Machine& machine, Pid pid, SimTimeNs start,
                      const std::vector<Vpn>& vpns, size_t warm) {
  SimTimeNs now = start;
  for (size_t i = 0; i < warm; ++i) {
    now += 750;
    now += machine.Access(pid, vpns[i], /*write=*/false, now).latency;
  }
  const size_t accesses = vpns.size() - warm;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = warm; i < vpns.size(); ++i) {
    now += 750;
    now += machine.Access(pid, vpns[i], /*write=*/false, now).latency;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  HotpathResult out;
  out.accesses_per_sec = static_cast<double>(accesses) / secs;
  out.end_sim_time = now;
  out.cache_hits = machine.counters().Get(counter::kCacheHits);
  out.cache_misses = machine.counters().Get(counter::kCacheMisses);
  out.prefetch_hits = machine.counters().Get(counter::kPrefetchHits);
  return out;
}

HotpathResult RunSequential() {
  Machine machine(LeapVmmConfig(bench::kMicroFrames, 42));
  const Pid pid = machine.CreateProcess(bench::kMicroFootprintPages / 2);
  const SimTimeNs warm_end = WarmUp(machine, pid, bench::kMicroFootprintPages);
  std::vector<Vpn> vpns(kWarmAccesses + kMeasuredAccesses);
  for (size_t i = 0; i < vpns.size(); ++i) {
    vpns[i] = i % bench::kMicroFootprintPages;
  }
  return Measure(machine, pid, warm_end + 10 * kNsPerMs, vpns, kWarmAccesses);
}

HotpathResult RunZipf() {
  Machine machine(LeapVmmConfig(bench::kMicroFrames, 42));
  const Pid pid = machine.CreateProcess(bench::kMicroFootprintPages / 2);
  const SimTimeNs warm_end = WarmUp(machine, pid, bench::kMicroFootprintPages);
  ZipfSampler zipf(bench::kMicroFootprintPages, 0.99);
  Rng rng(7);
  std::vector<Vpn> vpns(kWarmAccesses + kMeasuredAccesses);
  for (Vpn& v : vpns) {
    v = static_cast<Vpn>(zipf.Sample(rng));
  }
  return Measure(machine, pid, warm_end + 10 * kNsPerMs, vpns, kWarmAccesses);
}

void PrintResult(const char* name, const HotpathResult& r, double baseline) {
  std::printf("%-12s %12.0f accesses/sec", name, r.accesses_per_sec);
  if (baseline > 0.0) {
    std::printf("  (%.2fx vs baseline %.0f)", r.accesses_per_sec / baseline,
                baseline);
  }
  std::printf("\n  fingerprint: sim_end=%llu hits=%llu misses=%llu "
              "prefetch_hits=%llu\n",
              static_cast<unsigned long long>(r.end_sim_time),
              static_cast<unsigned long long>(r.cache_hits),
              static_cast<unsigned long long>(r.cache_misses),
              static_cast<unsigned long long>(r.prefetch_hits));
}

void WriteJson(const std::string& path, const HotpathResult& seq,
               const HotpathResult& zipf) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  bench::WriteSchemaPreamble(
      f, {"micro_hotpath", /*seed=*/42, /*hosts=*/1, /*nodes=*/2, ""});
  std::fprintf(f, "  \"workloads\": [\"sequential\", \"zipf-0.99\"],\n");
  std::fprintf(f, "  \"measured_accesses\": %zu,\n", kMeasuredAccesses);
  std::fprintf(f, "  \"baseline\": {\n");
  std::fprintf(f, "    \"note\": \"pre-refactor seed (unordered_map + "
                  "std::list + std::function + per-miss vectors)\",\n");
  std::fprintf(f, "    \"sequential_accesses_per_sec\": %.0f,\n",
               kBaselineSequentialAps);
  std::fprintf(f, "    \"zipf_accesses_per_sec\": %.0f\n", kBaselineZipfAps);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"current\": {\n");
  std::fprintf(f, "    \"sequential_accesses_per_sec\": %.0f,\n",
               seq.accesses_per_sec);
  std::fprintf(f, "    \"zipf_accesses_per_sec\": %.0f\n",
               zipf.accesses_per_sec);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup\": {\n");
  std::fprintf(f, "    \"sequential\": %.3f,\n",
               kBaselineSequentialAps > 0.0
                   ? seq.accesses_per_sec / kBaselineSequentialAps
                   : 0.0);
  std::fprintf(f, "    \"zipf\": %.3f\n",
               kBaselineZipfAps > 0.0
                   ? zipf.accesses_per_sec / kBaselineZipfAps
                   : 0.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fingerprint\": {\n");
  std::fprintf(f, "    \"sequential\": {\"sim_end\": %llu, \"hits\": %llu, "
                  "\"misses\": %llu, \"prefetch_hits\": %llu},\n",
               static_cast<unsigned long long>(seq.end_sim_time),
               static_cast<unsigned long long>(seq.cache_hits),
               static_cast<unsigned long long>(seq.cache_misses),
               static_cast<unsigned long long>(seq.prefetch_hits));
  std::fprintf(f, "    \"zipf\": {\"sim_end\": %llu, \"hits\": %llu, "
                  "\"misses\": %llu, \"prefetch_hits\": %llu}\n",
               static_cast<unsigned long long>(zipf.end_sim_time),
               static_cast<unsigned long long>(zipf.cache_hits),
               static_cast<unsigned long long>(zipf.cache_misses),
               static_cast<unsigned long long>(zipf.prefetch_hits));
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void Run(const std::string& json_path) {
  bench::PrintHeader(
      "Hot-path throughput - wall-clock simulated accesses/sec",
      "Leap's data-path work is O(1) per fault; the simulator's access path "
      "must be allocation-free to measure at scale");
  const HotpathResult seq = RunSequential();
  PrintResult("sequential", seq, kBaselineSequentialAps);
  const HotpathResult zipf = RunZipf();
  PrintResult("zipf-0.99", zipf, kBaselineZipfAps);
  WriteJson(json_path, seq, zipf);
}

}  // namespace
}  // namespace leap

int main(int argc, char** argv) {
  leap::Run(argc > 1 ? argv[1] : "BENCH_hotpath.json");
  return 0;
}
