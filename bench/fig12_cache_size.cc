// Figure 12: Leap's performance under constrained prefetch-cache sizes.
// With its timely prefetcher + eager eviction, even an O(1) MB cache loses
// little performance relative to an unlimited cache.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/table.h"

namespace leap {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 12 - Leap under constrained prefetch cache size, 50% memory",
      "paper: O(1) MB cache costs only ~12-13% vs unlimited for the "
      "completion-time apps; Memcached unaffected (random)");

  // Cache limits in pages: unlimited, 320MB->scaled, 32MB->scaled,
  // 3.2MB->scaled. Scaled by the same ~1/100 factor as the footprints:
  // {0 (no limit), 800, 80, 8} pages.
  const struct {
    const char* label;
    size_t pages;
  } limits[] = {{"No Limit", 0}, {"~320MB(scaled)", 800},
                {"~32MB(scaled)", 80}, {"~3.2MB(scaled)", 8}};
  constexpr size_t kAccesses = 200000;

  TextTable table;
  table.SetHeader({"app", "metric", "No Limit", "320MB~", "32MB~", "3.2MB~",
                   "drop@3.2MB(%)"});
  for (size_t app = 0; app < 4; ++app) {
    const bool throughput_app = app >= 2;
    std::vector<std::string> row = {kApps[app].name,
                                    throughput_app ? "kops/s" : "secs"};
    double unlimited = 0;
    double smallest = 0;
    for (const auto& limit : limits) {
      MachineConfig config = LeapVmmConfig(bench::kMicroFrames, 81);
      config.prefetch_cache_limit_pages = limit.pages;
      auto result = bench::RunAppModel(config, app, 50, kAccesses);
      const double metric = throughput_app
                                ? result.run.ops_per_sec / 1000.0
                                : ToSec(result.run.completion_ns);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", metric);
      row.push_back(buf);
      if (limit.pages == 0) {
        unlimited = metric;
      }
      smallest = metric;
    }
    char drop[32];
    const double pct = throughput_app
                           ? 100.0 * (unlimited - smallest) / unlimited
                           : 100.0 * (smallest - unlimited) / unlimited;
    std::snprintf(drop, sizeof(drop), "%.1f", pct);
    row.push_back(drop);
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
