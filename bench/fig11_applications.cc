// Figure 11: end-to-end application metrics across memory limits
// {100%, 50%, 25%} for Disk (default path), disaggregated VMM (default
// path), and D-VMM + Leap:
//   11a PowerGraph completion time      11b NumPy completion time
//   11c VoltDB throughput (TPS)         11d Memcached throughput (OPS)
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/table.h"

namespace leap {
namespace {

struct Medium3 {
  const char* label;
  MachineConfig (*make)(uint64_t seed);
};

MachineConfig MakeDisk(uint64_t seed) {
  return DiskSwapConfig(Medium::kHdd, PrefetchKind::kReadAhead,
                        bench::kMicroFrames, seed);
}
MachineConfig MakeDvmm(uint64_t seed) {
  return DefaultVmmConfig(PrefetchKind::kReadAhead, bench::kMicroFrames,
                          seed);
}
MachineConfig MakeLeap(uint64_t seed) {
  return LeapVmmConfig(bench::kMicroFrames, seed);
}

void Run() {
  bench::PrintHeader(
      "Figure 11 - application completion time / throughput",
      "Leap improves Infiniswap completion 1.56-2.38x (PowerGraph), "
      "1.27-1.4x (NumPy); throughput 2.76-10.16x (VoltDB), 1.11-1.21x "
      "(Memcached); disk at 25% often never finishes");

  const Medium3 mediums[] = {
      {"Disk", MakeDisk}, {"D-VMM", MakeDvmm}, {"D-VMM+Leap", MakeLeap}};
  const size_t limits[] = {100, 50, 25};
  constexpr size_t kAccesses = 220000;
  // "Never finishes" cap: generous multiple of the unconstrained runtime.
  constexpr SimTimeNs kTimeCap = 120 * kNsPerSec;

  for (size_t app = 0; app < 4; ++app) {
    const bool throughput_app = app >= 2;  // VoltDB, Memcached
    std::printf("--- Figure 11%c: %s (%s) ---\n",
                static_cast<char>('a' + app), kApps[app].name,
                throughput_app ? "thousand ops/s, higher is better"
                               : "completion seconds, lower is better");
    TextTable table;
    table.SetHeader({"memory", "Disk", "D-VMM", "D-VMM+Leap",
                     "Leap vs D-VMM"});
    for (size_t limit : limits) {
      std::vector<std::string> row = {std::to_string(limit) + "%"};
      double dvmm_metric = 0;
      double leap_metric = 0;
      for (const Medium3& medium : mediums) {
        auto result = bench::RunAppModel(medium.make(71), app, limit,
                                         kAccesses, kTimeCap);
        std::string cell;
        if (!result.run.finished) {
          cell = "DNF";
        } else if (throughput_app) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.1f",
                        result.run.ops_per_sec / 1000.0);
          cell = buf;
        } else {
          cell = bench::FormatCompletion(result.run);
        }
        row.push_back(cell);
        const double metric = throughput_app
                                  ? result.run.ops_per_sec
                                  : ToSec(result.run.completion_ns);
        if (std::string(medium.label) == "D-VMM" && result.run.finished) {
          dvmm_metric = metric;
        }
        if (std::string(medium.label) == "D-VMM+Leap" &&
            result.run.finished) {
          leap_metric = metric;
        }
      }
      char ratio[32] = "-";
      if (dvmm_metric > 0 && leap_metric > 0) {
        std::snprintf(ratio, sizeof(ratio), "%.2fx",
                      throughput_app ? leap_metric / dvmm_metric
                                     : dvmm_metric / leap_metric);
      }
      row.push_back(ratio);
      table.AddRow(row);
    }
    std::printf("%s\n", table.Render().c_str());
  }
}

}  // namespace
}  // namespace leap

int main() {
  leap::Run();
  return 0;
}
