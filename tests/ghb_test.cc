#include "src/prefetch/ghb.h"

#include <gtest/gtest.h>

#include "src/sim/rng.h"

namespace leap {
namespace {

TEST(Ghb, ColdStartPredictsNothing) {
  GhbPrefetcher p;
  EXPECT_TRUE(p.OnFault({1, 100}).empty());
  EXPECT_TRUE(p.OnFault({1, 101}).empty());
  // Third fault has a delta pair but no history of it yet... the pair
  // (1,1) was just inserted, so correlation may fire on itself; either
  // way nothing crashes and candidates are sane.
  for (SwapSlot s : p.OnFault({1, 102})) {
    EXPECT_NE(s, 102u);
  }
}

TEST(Ghb, LearnsRepeatingDeltaSequence) {
  GhbPrefetcher p;
  // Repeating pattern +1 +2 +4, twice to train, then probe.
  SwapSlot addr = 1000;
  const PageDelta pattern[] = {1, 2, 4};
  p.OnFault({1, addr});
  for (int rep = 0; rep < 3; ++rep) {
    for (PageDelta d : pattern) {
      addr += d;
      p.OnFault({1, addr});
    }
  }
  // Continue the pattern: after deltas (4,1) history says next come +2 +4.
  addr += pattern[0];
  const auto candidates = p.OnFault({1, addr});
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0], addr + 2);
  if (candidates.size() > 1) {
    EXPECT_EQ(candidates[1], addr + 2 + 4);
  }
}

TEST(Ghb, SequentialStreamPredictsForward) {
  GhbPrefetcher p;
  CandidateVec candidates;
  for (Vpn a = 0; a < 32; ++a) {
    candidates = p.OnFault({1, a});
  }
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0], 32u);
}

TEST(Ghb, RandomStreamRarelyPredicts) {
  GhbPrefetcher p;
  Rng rng(3);
  size_t total_candidates = 0;
  for (int i = 0; i < 400; ++i) {
    total_candidates += p.OnFault({1, rng.NextU64(1 << 24)}).size();
  }
  // Random deltas repeat signatures almost never.
  EXPECT_LT(total_candidates, 40u);
}

TEST(Ghb, BufferBoundedBySize) {
  GhbConfig config;
  config.buffer_size = 64;
  GhbPrefetcher p(config);
  for (Vpn a = 0; a < 1000; ++a) {
    p.OnFault({1, a * 3});
  }
  EXPECT_LE(p.buffer_entries(), 64u);
}

TEST(Ghb, PerProcessAddressStreamsButGlobalHistory) {
  GhbPrefetcher p;
  // Train with process 1.
  for (Vpn a = 0; a < 32; ++a) {
    p.OnFault({1, a});
  }
  // Process 2 starts a sequential run; the global buffer already knows the
  // (1,1) signature, so prediction kicks in quickly.
  p.OnFault({2, 5000});
  p.OnFault({2, 5001});
  const auto candidates = p.OnFault({2, 5002});
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0], 5003u);
}

}  // namespace
}  // namespace leap
