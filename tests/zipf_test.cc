#include "src/sim/zipf.h"

#include <vector>

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(Zipf, SamplesStayInRange) {
  Rng rng(31);
  ZipfSampler z(1000, 0.99);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_LT(z.Sample(rng), 1000u);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(32);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[z.Sample(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 80);
  }
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  Rng rng(33);
  ZipfSampler z(100000, 0.99);
  const int n = 100000;
  int top10 = 0;
  for (int i = 0; i < n; ++i) {
    if (z.Sample(rng) < 10) {
      ++top10;
    }
  }
  // With theta ~1 over 1e5 items, the top-10 ranks draw a large share.
  EXPECT_GT(top10, n / 5);
}

TEST(Zipf, HigherThetaIsMoreSkewed) {
  Rng rng_a(34);
  Rng rng_b(34);
  ZipfSampler mild(10000, 0.5);
  ZipfSampler heavy(10000, 0.99);
  const int n = 50000;
  int mild_top = 0;
  int heavy_top = 0;
  for (int i = 0; i < n; ++i) {
    mild_top += mild.Sample(rng_a) < 100 ? 1 : 0;
    heavy_top += heavy.Sample(rng_b) < 100 ? 1 : 0;
  }
  EXPECT_GT(heavy_top, mild_top);
}

TEST(Zipf, RankZeroIsMostPopular) {
  Rng rng(35);
  ZipfSampler z(1000, 0.9);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[z.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, SingleItemDomain) {
  Rng rng(36);
  ZipfSampler z(1, 0.99);
  EXPECT_EQ(z.Sample(rng), 0u);
  ZipfSampler z0(0, 0.99);  // clamped to 1
  EXPECT_EQ(z0.Sample(rng), 0u);
}

}  // namespace
}  // namespace leap
