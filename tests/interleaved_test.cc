// Multi-threaded interleaving: the section 3.2.2 scenarios, from the
// stream level down through the full machine.
#include "src/workload/interleaved.h"

#include <gtest/gtest.h>

#include "src/runtime/app_runner.h"
#include "src/runtime/presets.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

// Shifts a child stream into its own address region - each "thread" works
// a distinct part of the address space, like the paper's interleaved-
// threads scenario.
class OffsetStream : public AccessStream {
 public:
  OffsetStream(std::unique_ptr<AccessStream> child, Vpn base)
      : child_(std::move(child)), base_(base) {}
  MemOp Next(Rng& rng) override {
    MemOp op = child_->Next(rng);
    op.vpn += base_;
    return op;
  }
  size_t footprint_pages() const override {
    return base_ + child_->footprint_pages();
  }
  std::string name() const override { return child_->name(); }

 private:
  std::unique_ptr<AccessStream> child_;
  Vpn base_;
};

std::unique_ptr<InterleavedStream> TwoStrides(InterleavedStream::Mode mode,
                                              size_t burst = 16) {
  std::vector<std::unique_ptr<AccessStream>> threads;
  threads.push_back(std::make_unique<OffsetStream>(
      std::make_unique<StrideStream>(4096, 3, 750), 0));
  threads.push_back(std::make_unique<OffsetStream>(
      std::make_unique<StrideStream>(4096, 11, 750), 4096));
  return std::make_unique<InterleavedStream>(std::move(threads), mode, burst);
}

TEST(InterleavedStream, RoundRobinAlternates) {
  std::vector<std::unique_ptr<AccessStream>> threads;
  threads.push_back(std::make_unique<SequentialStream>(100));
  threads.push_back(std::make_unique<SequentialStream>(100));
  InterleavedStream stream(std::move(threads),
                           InterleavedStream::Mode::kRoundRobin);
  Rng rng(1);
  // Both child cursors advance in lockstep: 0,0,1,1,2,2...
  EXPECT_EQ(stream.Next(rng).vpn, 0u);
  EXPECT_EQ(stream.Next(rng).vpn, 0u);
  EXPECT_EQ(stream.Next(rng).vpn, 1u);
  EXPECT_EQ(stream.Next(rng).vpn, 1u);
}

TEST(InterleavedStream, BurstyRunsEachThreadForBurstLen) {
  std::vector<std::unique_ptr<AccessStream>> threads;
  threads.push_back(std::make_unique<SequentialStream>(100));
  threads.push_back(std::make_unique<SequentialStream>(100));
  InterleavedStream stream(std::move(threads),
                           InterleavedStream::Mode::kBursty, 3);
  Rng rng(1);
  std::vector<Vpn> seen;
  for (int i = 0; i < 6; ++i) {
    seen.push_back(stream.Next(rng).vpn);
  }
  EXPECT_EQ(seen, (std::vector<Vpn>{0, 1, 2, 0, 1, 2}));
}

TEST(InterleavedStream, FootprintIsMaxOfChildren) {
  std::vector<std::unique_ptr<AccessStream>> threads;
  threads.push_back(std::make_unique<SequentialStream>(100));
  threads.push_back(std::make_unique<SequentialStream>(500));
  InterleavedStream stream(std::move(threads),
                           InterleavedStream::Mode::kRoundRobin);
  EXPECT_EQ(stream.footprint_pages(), 500u);
}

// At moderate memory pressure the *fault* stream is not perfectly
// interleaved even when the access stream is: one thread's hot pages stay
// resident while the other's fault, so faults cluster per thread and the
// majority vote legitimately recovers each thread's stride. Leap must get
// useful coverage in both interleaving modes.
TEST(InterleavedMachine, FaultStreamLocalityGivesCoverageInBothModes) {
  auto run = [](InterleavedStream::Mode mode) {
    Machine machine(LeapVmmConfig(1 << 15, 77));
    const Pid pid = machine.CreateProcess(4096);
    const SimTimeNs warm = WarmUp(machine, pid, 8192);
    auto stream = TwoStrides(mode);
    RunConfig run_config;
    run_config.total_accesses = 60000;
    run_config.start_time_ns = warm + 10 * kNsPerMs;
    RunApp(machine, pid, *stream, run_config);
    return machine.counters().Ratio(counter::kPrefetchHits,
                                    counter::kPageFaults);
  };
  EXPECT_GT(run(InterleavedStream::Mode::kRoundRobin), 0.3);
  EXPECT_GT(run(InterleavedStream::Mode::kBursty), 0.3);
}

TEST(InterleavedMachine, TrulyInterleavedFaultStreamThrottlesWindow) {
  // Section 3.2.2's literal scenario needs the FAULT stream itself to be
  // perfectly interleaved - force it with a memory limit so small that
  // every access misses. "FindTrend will consider it as random": the
  // window must stay small, and coverage near zero.
  Machine machine(LeapVmmConfig(1 << 15, 78));
  const Pid pid = machine.CreateProcess(64);  // ~0.8% of the footprint
  const SimTimeNs warm = WarmUp(machine, pid, 8192);
  auto stream = TwoStrides(InterleavedStream::Mode::kRoundRobin);
  RunConfig run_config;
  run_config.total_accesses = 40000;
  run_config.start_time_ns = warm + 10 * kNsPerMs;
  RunApp(machine, pid, *stream, run_config);
  const double issue_per_miss = machine.counters().Ratio(
      counter::kPrefetchIssued, counter::kCacheMisses);
  const double coverage = machine.counters().Ratio(
      counter::kPrefetchHits, counter::kPageFaults);
  EXPECT_LT(issue_per_miss, 1.0);
  EXPECT_LT(coverage, 0.1);
}

}  // namespace
}  // namespace leap
