// Unit tests for the shared cluster fabric: per-link serialization and
// queuing, incast congestion as a function of in-flight bytes, host join,
// and bit-determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/cluster/fabric.h"

namespace leap {
namespace {

// Deterministic base latency: stddev 0 collapses the Normal sample onto
// its mean, so completion times are exact functions of the op sequence.

// Builds a demand-read op from `host` (tests drive the fabric directly, so
// they stamp the uplink id themselves; the NIC does this in production).
IoRequest Op(uint32_t host, IoClass cls = IoClass::kDemandRead) {
  IoRequest req = DemandRead(0);
  req.host = host;
  req.cls = cls;
  return req;
}
FabricConfig FlatConfig() {
  FabricConfig config;
  config.base_mean_ns = 1000;
  config.base_stddev_ns = 0;
  config.base_min_ns = 0;
  // Disable congestion unless a test opts in.
  config.congestion_free_bytes = 1ULL << 40;
  return config;
}

TEST(Fabric, SharedDownlinkSerializesContendingHosts) {
  Fabric fabric(FlatConfig(), /*num_hosts=*/2, /*num_nodes=*/1);
  Rng rng(1);
  const SimTimeNs first = fabric.SubmitPageOp(Op(0), 0, 0, rng);
  const SimTimeNs second = fabric.SubmitPageOp(Op(1), 0, 0, rng);
  // Distinct uplinks, same downlink: the second op queues one
  // serialization slot behind the first.
  EXPECT_EQ(second - first, fabric.serialization_ns());
  EXPECT_EQ(first, fabric.serialization_ns() + 1000);
}

TEST(Fabric, IndependentDownlinksDoNotQueueOnEachOther) {
  Fabric fabric(FlatConfig(), 2, 2);
  Rng rng(1);
  const SimTimeNs a = fabric.SubmitPageOp(Op(0), 0, 0, rng);
  const SimTimeNs b = fabric.SubmitPageOp(Op(1), 1, 0, rng);
  EXPECT_EQ(a, b);
}

TEST(Fabric, UplinkSerializesOneHostsOps) {
  Fabric fabric(FlatConfig(), 1, 2);
  Rng rng(1);
  const SimTimeNs a = fabric.SubmitPageOp(Op(0), 0, 0, rng);
  const SimTimeNs b = fabric.SubmitPageOp(Op(0), 1, 0, rng);
  // Different nodes, same host: the uplink paces them.
  EXPECT_EQ(b - a, fabric.serialization_ns());
}

TEST(Fabric, CongestionGrowsWithInflightBytes) {
  FabricConfig config = FlatConfig();
  config.congestion_free_bytes = 8 * 1024;  // ~2 ops of allowance
  config.congestion_ns_per_kb = 50.0;
  Fabric fabric(config, 4, 1);
  Rng rng(1);

  // Blast 32 ops at t=0 from four hosts at one node: later ops must pay
  // more than pure serialization queuing.
  SimTimeNs prev = 0;
  SimTimeNs max_gap = 0;
  for (int i = 0; i < 32; ++i) {
    const SimTimeNs done =
        fabric.SubmitPageOp(Op(static_cast<uint32_t>(i % 4)), 0, 0, rng);
    if (i > 0) {
      max_gap = std::max(max_gap, done - prev);
    }
    prev = done;
  }
  // Without congestion, consecutive completions are exactly one
  // serialization slot apart; the growing in-flight backlog must stretch
  // at least one gap beyond that.
  EXPECT_GT(max_gap, fabric.serialization_ns());
  EXPECT_GT(fabric.queue_delay_hist().Max(),
            31 * fabric.serialization_ns());
}

TEST(Fabric, IdleLinkDrainsInflightAndCongestion) {
  FabricConfig config = FlatConfig();
  config.congestion_free_bytes = 0;
  config.congestion_ns_per_kb = 50.0;
  Fabric fabric(config, 1, 1);
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    fabric.SubmitPageOp(Op(0), 0, 0, rng);
  }
  // Far in the future every in-flight byte has landed: an op sees an
  // uncontended link again.
  const SimTimeNs later = 1 * kNsPerSec;
  const SimTimeNs done = fabric.SubmitPageOp(Op(0), 0, later, rng);
  EXPECT_EQ(done - later, fabric.serialization_ns() + 1000);
}

TEST(Fabric, AddHostGrowsUplinkSet) {
  Fabric fabric(FlatConfig(), 1, 1);
  EXPECT_EQ(fabric.num_hosts(), 1u);
  const uint32_t id = fabric.AddHost();
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(fabric.num_hosts(), 2u);
  Rng rng(1);
  const SimTimeNs a = fabric.SubmitPageOp(Op(0), 0, 0, rng);
  const SimTimeNs b = fabric.SubmitPageOp(Op(1), 0, 0, rng);
  EXPECT_EQ(b - a, fabric.serialization_ns());  // shares the downlink
}

TEST(Fabric, PerLinkAccountingSumsToTotals) {
  Fabric fabric(FlatConfig(), 2, 2);
  Rng rng(3);
  fabric.SubmitPageOp(Op(0), 0, 0, rng);
  fabric.SubmitPageOp(Op(0), 1, 0, rng);
  fabric.SubmitPageOp(Op(1), 1, 0, rng);
  EXPECT_EQ(fabric.ops(), 3u);
  EXPECT_EQ(fabric.host_ops(0), 2u);
  EXPECT_EQ(fabric.host_ops(1), 1u);
  EXPECT_EQ(fabric.node_ops(0), 1u);
  EXPECT_EQ(fabric.node_ops(1), 2u);
  EXPECT_EQ(fabric.queue_delay_hist().count(), 3u);
}

TEST(Fabric, SameSeedBitIdentical) {
  FabricConfig config;  // defaults: sampled base latency, real congestion
  std::vector<SimTimeNs> first;
  std::vector<SimTimeNs> second;
  for (std::vector<SimTimeNs>* out : {&first, &second}) {
    Fabric fabric(config, 4, 2);
    Rng rng(99);
    SimTimeNs now = 0;
    for (int i = 0; i < 500; ++i) {
      out->push_back(fabric.SubmitPageOp(Op(static_cast<uint32_t>(i % 4)),
                                         static_cast<uint32_t>(i % 2), now,
                                         rng));
      now += 100;
    }
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace leap
