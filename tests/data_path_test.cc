// Default vs Leap data paths: relative latency structure.
#include "src/paging/data_path.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/rdma/host_agent.h"
#include "src/rdma/remote_agent.h"
#include "src/sim/rng.h"

namespace leap {
namespace {

class DataPathTest : public ::testing::Test {
 protected:
  DataPathTest() {
    // Each data path gets its own host (NIC + remote pool): they model two
    // separate machines under comparison, not one shared fabric.
    node_a_ = std::make_unique<RemoteAgent>(0, 4096);
    node_b_ = std::make_unique<RemoteAgent>(0, 4096);
    agent_ = std::make_unique<HostAgent>(
        HostAgentConfig{}, std::vector<RemoteAgent*>{node_a_.get()}, 3);
    agent_b_ = std::make_unique<HostAgent>(
        HostAgentConfig{}, std::vector<RemoteAgent*>{node_b_.get()}, 3);
  }

  std::unique_ptr<RemoteAgent> node_a_;
  std::unique_ptr<RemoteAgent> node_b_;
  std::unique_ptr<HostAgent> agent_;
  std::unique_ptr<HostAgent> agent_b_;
  Rng rng_{23};
};

TEST_F(DataPathTest, LeapMissFarFasterThanDefaultMiss) {
  DefaultDataPath default_path(DefaultPathConfig{}, agent_.get());
  LeapDataPath leap_path(LeapPathConfig{}, agent_b_.get());

  double default_sum = 0;
  double leap_sum = 0;
  const int n = 2000;
  SimTimeNs now = 0;
  for (int i = 0; i < n; ++i) {
    const IoRequest req = DemandRead(static_cast<SwapSlot>(i) * 131);
    SimTimeNs ready = 0;
    default_sum += static_cast<double>(
        default_path.ReadPages({&req, 1}, now, rng_, {&ready, 1}) - now);
    leap_sum += static_cast<double>(
        leap_path.ReadPages({&req, 1}, now, rng_, {&ready, 1}) - now);
    now += 500000;
  }
  const double default_mean_us = default_sum / n / 1000.0;
  const double leap_mean_us = leap_sum / n / 1000.0;
  // Section 2.2: ~38.3 us default vs ~6.4 us lean path.
  EXPECT_GT(default_mean_us, 30.0);
  EXPECT_LT(default_mean_us, 48.0);
  EXPECT_GT(leap_mean_us, 4.5);
  EXPECT_LT(leap_mean_us, 9.0);
  EXPECT_GT(default_mean_us / leap_mean_us, 4.0);
}

TEST_F(DataPathTest, LeapDemandDoesNotWaitForPrefetchPages) {
  LeapDataPath leap_path(LeapPathConfig{}, agent_.get());
  std::vector<IoRequest> batch = {DemandRead(10)};
  for (SwapSlot s = 11; s <= 17; ++s) {
    batch.push_back(PrefetchRead(s));
  }
  std::vector<SimTimeNs> ready(batch.size(), 0);
  const SimTimeNs demand_ready =
      leap_path.ReadPages(batch, 0, rng_, ready);
  EXPECT_EQ(demand_ready, ready[0]);
  // At least some trailing prefetch page completes after the demand page
  // (asynchronous trickle), instead of the default path's all-at-once.
  const SimTimeNs max_ready = *std::max_element(ready.begin(), ready.end());
  EXPECT_GT(max_ready, demand_ready);
}

TEST_F(DataPathTest, DefaultDemandPaysStagesAndElevatorOrder) {
  DefaultDataPath default_path(DefaultPathConfig{}, agent_.get());
  // Demand page 14 arrives sorted behind 10..13 in the merged request; it
  // is identified by its tag, not its batch position.
  std::vector<IoRequest> batch = {DemandRead(14)};
  for (SwapSlot s : {10, 11, 12, 13, 15, 16, 17}) {
    batch.push_back(PrefetchRead(s));
  }
  std::vector<SimTimeNs> ready(batch.size(), 0);
  const SimTimeNs demand_ready =
      default_path.ReadPages(batch, 0, rng_, ready);
  EXPECT_EQ(demand_ready, ready[0]);
  // Lower-addressed prefetch pages hit the wire first; the demand page
  // cannot complete before the earliest of them started (remote completion
  // order itself can cross due to per-op latency variance).
  EXPECT_GT(demand_ready, *std::min_element(ready.begin(), ready.end()) -
                              RdmaNicConfig().base_stddev_ns * 6);
  // The batch paid the block-layer stages before any page completed.
  const BlockLayerConfig block;
  EXPECT_GE(*std::min_element(ready.begin(), ready.end()),
            block.prep_min_ns + block.queue_min_ns + block.dispatch_min_ns);
}

TEST_F(DataPathTest, HitCostsMatchPresets) {
  DefaultPathConfig vmm;
  vmm.hit_cost_ns = 1050;
  vmm.hit_jitter_ns = 0;
  DefaultDataPath default_path(vmm, agent_.get());
  LeapPathConfig lp;
  lp.hit_cost_ns = 270;
  lp.hit_jitter_ns = 0;
  LeapDataPath leap_path(lp, agent_.get());
  EXPECT_EQ(default_path.CacheHitCost(rng_), 1050u);
  EXPECT_EQ(leap_path.CacheHitCost(rng_), 270u);
}

TEST_F(DataPathTest, Names) {
  DefaultDataPath default_path(DefaultPathConfig{}, agent_.get());
  LeapDataPath leap_path(LeapPathConfig{}, agent_.get());
  EXPECT_EQ(default_path.name(), "default");
  EXPECT_EQ(leap_path.name(), "leap");
}

}  // namespace
}  // namespace leap
