// Memory substrate: frame pool, page table, LRU list, page cache, cgroup.
#include <gtest/gtest.h>

#include "src/mem/cgroup.h"
#include "src/mem/frame_pool.h"
#include "src/mem/lru_list.h"
#include "src/mem/page_cache.h"
#include "src/mem/page_table.h"

namespace leap {
namespace {

// --- FramePool -------------------------------------------------------------

TEST(FramePool, AllocatesUpToCapacity) {
  FramePool pool(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(pool.Allocate().has_value());
  }
  EXPECT_FALSE(pool.Allocate().has_value());
  EXPECT_EQ(pool.used_count(), 4u);
}

TEST(FramePool, FreeMakesFrameReusable) {
  FramePool pool(2);
  const Pfn a = *pool.Allocate();
  pool.Allocate();
  EXPECT_FALSE(pool.Allocate().has_value());
  pool.Free(a);
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_TRUE(pool.Allocate().has_value());
}

TEST(FramePool, DoubleFreeIgnored) {
  FramePool pool(2);
  const Pfn a = *pool.Allocate();
  pool.Free(a);
  pool.Free(a);  // must not corrupt the free list
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_TRUE(pool.Allocate().has_value());
  EXPECT_TRUE(pool.Allocate().has_value());
  EXPECT_FALSE(pool.Allocate().has_value());
}

TEST(FramePool, IsAllocatedTracksState) {
  FramePool pool(3);
  const Pfn a = *pool.Allocate();
  EXPECT_TRUE(pool.IsAllocated(a));
  pool.Free(a);
  EXPECT_FALSE(pool.IsAllocated(a));
  EXPECT_FALSE(pool.IsAllocated(999));
}

// --- PageTable ---------------------------------------------------------------

TEST(PageTable, MapFindUnmap) {
  PageTable table;
  EXPECT_FALSE(table.IsPresent(10));
  table.Map(10, 3);
  ASSERT_TRUE(table.IsPresent(10));
  EXPECT_EQ(table.Find(10)->pfn, 3u);
  const auto removed = table.Unmap(10);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->pfn, 3u);
  EXPECT_FALSE(table.IsPresent(10));
}

TEST(PageTable, UnmapMissingReturnsNullopt) {
  PageTable table;
  EXPECT_FALSE(table.Unmap(5).has_value());
}

TEST(PageTable, DirtyBitRoundTrips) {
  PageTable table;
  table.Map(1, 1);
  table.Find(1)->dirty = true;
  EXPECT_TRUE(table.Find(1)->dirty);
  table.Map(1, 2);  // remap resets
  EXPECT_FALSE(table.Find(1)->dirty);
}

TEST(PageTable, ResidentCount) {
  PageTable table;
  for (Vpn v = 0; v < 10; ++v) {
    table.Map(v, static_cast<Pfn>(v));
  }
  EXPECT_EQ(table.resident_pages(), 10u);
  table.Unmap(3);
  EXPECT_EQ(table.resident_pages(), 9u);
}

// --- LruList ---------------------------------------------------------------

TEST(LruList, ColdestIsLeastRecentlyTouched) {
  LruList<int> lru;
  lru.Touch(1);
  lru.Touch(2);
  lru.Touch(3);
  EXPECT_EQ(lru.Coldest(), 1);
  lru.Touch(1);  // re-touch warms it
  EXPECT_EQ(lru.Coldest(), 2);
}

TEST(LruList, PopColdestRemoves) {
  LruList<int> lru;
  lru.Touch(1);
  lru.Touch(2);
  EXPECT_EQ(lru.PopColdest(), 1);
  EXPECT_EQ(lru.PopColdest(), 2);
  EXPECT_FALSE(lru.PopColdest().has_value());
}

TEST(LruList, RemoveSpecificKey) {
  LruList<int> lru;
  lru.Touch(1);
  lru.Touch(2);
  lru.Touch(3);
  EXPECT_TRUE(lru.Remove(2));
  EXPECT_FALSE(lru.Remove(2));
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_FALSE(lru.Contains(2));
}

TEST(LruList, ColdestNOrder) {
  LruList<int> lru;
  for (int i = 0; i < 5; ++i) {
    lru.Touch(i);
  }
  const auto coldest = lru.ColdestN(3);
  EXPECT_EQ(coldest, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(lru.size(), 5u);  // non-destructive
}

TEST(LruList, AccessCountsTrackTouches) {
  LruList<int> lru;
  EXPECT_EQ(lru.AccessCount(1), 0u);  // unknown key
  lru.Touch(1);
  EXPECT_EQ(lru.AccessCount(1), 1u);  // insert seeds at 1
  lru.Touch(1);
  lru.Touch(1);
  EXPECT_EQ(lru.AccessCount(1), 3u);
}

TEST(LruList, DecayHalvesEveryCount) {
  LruList<int> lru;
  for (int t = 0; t < 5; ++t) {
    lru.Touch(1);
  }
  lru.Touch(2);
  lru.DecayCounts();
  EXPECT_EQ(lru.AccessCount(1), 2u);  // 5 >> 1
  EXPECT_EQ(lru.AccessCount(2), 0u);  // 1 >> 1: fully cold
  lru.DecayCounts();
  EXPECT_EQ(lru.AccessCount(1), 1u);
}

TEST(LruList, RecycledNodesDoNotInheritHeat) {
  LruList<int> lru;
  for (int t = 0; t < 10; ++t) {
    lru.Touch(1);
  }
  lru.Remove(1);
  lru.Touch(2);  // reuses node slot 0
  EXPECT_EQ(lru.AccessCount(2), 1u);
  lru.Touch(1);  // the old key back as a fresh insert
  EXPECT_EQ(lru.AccessCount(1), 1u);
}

TEST(LruList, HottestNIsRecencyOrderNonDestructive) {
  LruList<int> lru;
  for (int i = 0; i < 5; ++i) {
    lru.Touch(i);
  }
  lru.Touch(1);  // 1 becomes most recent
  const auto hottest = lru.HottestN(3);
  EXPECT_EQ(hottest, (std::vector<int>{1, 4, 3}));
  EXPECT_EQ(lru.size(), 5u);
}

TEST(LruList, ColdestSelectionIsDeterministic) {
  // Two lists built by the same operation sequence agree exactly on the
  // hot/cold boundary - the property the tier migrator's page selection
  // rests on.
  LruList<int> a;
  LruList<int> b;
  for (const int key : {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}) {
    a.Touch(key);
    b.Touch(key);
  }
  a.DecayCounts();
  b.DecayCounts();
  EXPECT_EQ(a.ColdestN(4), b.ColdestN(4));
  EXPECT_EQ(a.HottestN(4), b.HottestN(4));
  EXPECT_EQ(a.Coldest(), b.Coldest());
  EXPECT_EQ(a.AccessCount(5), b.AccessCount(5));
  EXPECT_EQ(a.AccessCount(5), 1u);  // 3 touches >> 1
}

TEST(LruList, AccessCountSaturatesAtCap) {
  LruList<int> lru;
  for (int t = 0; t < 70000; ++t) {
    lru.Touch(1);
  }
  EXPECT_EQ(lru.AccessCount(1), 0xFFFFu);
}

TEST(LruList, PidVpnKeysWork) {
  LruList<PidVpn, PidVpnHash> lru;
  lru.Touch({1, 100});
  lru.Touch({2, 100});
  EXPECT_TRUE(lru.Contains(PidVpn{1, 100}));
  EXPECT_TRUE(lru.Contains(PidVpn{2, 100}));
  EXPECT_EQ(lru.size(), 2u);
  lru.Remove({1, 100});
  EXPECT_FALSE(lru.Contains(PidVpn{1, 100}));
}

// --- PageCache ---------------------------------------------------------------

TEST(PageCache, InsertLookupRemove) {
  PageCache cache;
  CacheEntry entry;
  entry.pfn = 7;
  entry.ready_at = 1234;
  EXPECT_TRUE(cache.Insert(100, entry));
  EXPECT_FALSE(cache.Insert(100, entry));  // duplicate
  ASSERT_NE(cache.Lookup(100), nullptr);
  EXPECT_EQ(cache.Lookup(100)->pfn, 7u);
  const auto removed = cache.Remove(100);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->pfn, 7u);
  EXPECT_EQ(cache.Lookup(100), nullptr);
}

TEST(PageCache, LruEvictionOrder) {
  PageCache cache;
  for (SwapSlot s = 0; s < 4; ++s) {
    cache.Insert(s, CacheEntry{});
  }
  cache.TouchLru(0);  // 0 becomes hottest
  EXPECT_EQ(cache.ColdestSlot(), 1u);
}

TEST(PageCache, ForEachVisitsAll) {
  PageCache cache;
  for (SwapSlot s = 0; s < 10; ++s) {
    cache.Insert(s, CacheEntry{});
  }
  size_t visited = 0;
  cache.ForEach([&](SwapSlot, const CacheEntry&) { ++visited; });
  EXPECT_EQ(visited, 10u);
}

// --- Cgroup ------------------------------------------------------------------

TEST(Cgroup, UnlimitedNeverOverLimit) {
  Cgroup cg(0);
  cg.Charge(1000000);
  EXPECT_FALSE(cg.OverLimit());
  EXPECT_EQ(cg.ExcessPages(), 0u);
}

TEST(Cgroup, OverLimitAndExcess) {
  Cgroup cg(10);
  cg.Charge(10);
  EXPECT_FALSE(cg.OverLimit());
  cg.Charge();
  EXPECT_TRUE(cg.OverLimit());
  EXPECT_EQ(cg.ExcessPages(), 1u);
  cg.Uncharge();
  EXPECT_FALSE(cg.OverLimit());
}

TEST(Cgroup, UnchargeClampsAtZero) {
  Cgroup cg(5);
  cg.Charge(2);
  cg.Uncharge(10);
  EXPECT_EQ(cg.resident_pages(), 0u);
}

}  // namespace
}  // namespace leap
