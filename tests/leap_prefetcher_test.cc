// DoPrefetch (Algorithm 2) end-to-end behavior on the LeapPrefetcher.
#include "src/core/leap_prefetcher.h"

#include <gtest/gtest.h>

#include "src/sim/rng.h"

namespace leap {
namespace {

LeapParams DefaultParams() {
  LeapParams p;
  p.history_size = 32;
  p.nsplit = 2;
  p.max_prefetch_window = 8;
  return p;
}

TEST(LeapPrefetcher, FirstAccessReadsOnlyDemandPage) {
  LeapPrefetcher p(DefaultParams());
  const PrefetchDecision d = p.OnMiss(100);
  EXPECT_EQ(d.window_size, 0u);
  EXPECT_TRUE(d.pages.empty());
}

TEST(LeapPrefetcher, SequentialStreamPrefetchesAlongTrend) {
  LeapPrefetcher p(DefaultParams());
  PrefetchDecision d;
  for (Vpn a = 0; a < 20; ++a) {
    d = p.OnMiss(a);
    // Feed hits back as if prefetched pages were consumed.
    for (size_t h = 0; h < d.pages.size() && h < 2; ++h) {
      p.OnPrefetchHit(d.pages[h]);
    }
  }
  ASSERT_TRUE(d.trend_found);
  EXPECT_EQ(d.delta_used, 1);
  ASSERT_FALSE(d.pages.empty());
  // Candidates continue the stream: 20, 21, ...
  EXPECT_EQ(d.pages[0], 20u);
  if (d.pages.size() > 1) {
    EXPECT_EQ(d.pages[1], 21u);
  }
}

TEST(LeapPrefetcher, StrideStreamPrefetchesWithStride) {
  LeapPrefetcher p(DefaultParams());
  PrefetchDecision d;
  for (Vpn a = 0; a < 300; a += 10) {
    d = p.OnMiss(a);
    for (size_t h = 0; h < d.pages.size() && h < 3; ++h) {
      p.OnPrefetchHit(d.pages[h]);
    }
  }
  ASSERT_TRUE(d.trend_found);
  EXPECT_EQ(d.delta_used, 10);
  ASSERT_GE(d.pages.size(), 2u);
  EXPECT_EQ(d.pages[0], 300u);
  EXPECT_EQ(d.pages[1], 310u);
}

TEST(LeapPrefetcher, WindowGrowsWithConsumption) {
  LeapPrefetcher p(DefaultParams());
  size_t max_window = 0;
  for (Vpn a = 0; a < 64; ++a) {
    const PrefetchDecision d = p.OnMiss(a);
    max_window = std::max(max_window, d.window_size);
    for (size_t h = 0; h < d.pages.size(); ++h) {
      p.OnPrefetchHit(d.pages[h]);  // everything prefetched gets used
    }
  }
  EXPECT_EQ(max_window, DefaultParams().max_prefetch_window);
}

TEST(LeapPrefetcher, RandomAccessesEventuallySuspendPrefetching) {
  LeapPrefetcher p(DefaultParams());
  Rng rng(7);
  PrefetchDecision d;
  // No hits ever reported: the window must decay to 0.
  for (int i = 0; i < 100; ++i) {
    d = p.OnMiss(rng.NextU64(1 << 22));
  }
  EXPECT_EQ(d.window_size, 0u);
  EXPECT_TRUE(d.pages.empty());
}

TEST(LeapPrefetcher, SpeculativePrefetchUsesStaleTrendDuringGap) {
  LeapPrefetcher p(DefaultParams());
  // Establish a +1 trend with consumption.
  PrefetchDecision d;
  for (Vpn a = 0; a < 16; ++a) {
    d = p.OnMiss(a);
    for (size_t h = 0; h < d.pages.size(); ++h) {
      p.OnPrefetchHit(d.pages[h]);
    }
  }
  // Inject alternating noise that destroys the majority but keeps the
  // window non-zero (hits still flowing).
  Vpn base = 100000;
  d = p.OnMiss(base);
  p.OnPrefetchHit(d.pages.empty() ? base : d.pages[0]);
  d = p.OnMiss(base + 5000);
  // The history has no majority now; with window > 0 the prefetcher must
  // speculate with the last known trend (+1) rather than give up.
  if (!d.trend_found && d.window_size > 0) {
    EXPECT_TRUE(d.speculative);
    EXPECT_EQ(d.delta_used, 1);
    ASSERT_FALSE(d.pages.empty());
    EXPECT_EQ(d.pages[0], base + 5000 + 1);
  }
}

TEST(LeapPrefetcher, CandidatesNeverUnderflowAddressSpace) {
  LeapPrefetcher p(DefaultParams());
  PrefetchDecision d;
  // Descending stream near zero.
  for (int a = 20; a >= 0; a -= 2) {
    d = p.OnMiss(static_cast<SwapSlot>(a));
    for (size_t h = 0; h < d.pages.size(); ++h) {
      p.OnPrefetchHit(d.pages[h]);
    }
  }
  for (SwapSlot page : d.pages) {
    EXPECT_LT(page, 1u << 20);  // no wrapped-around huge offsets
  }
}

TEST(LeapPrefetcher, ZeroDeltaMajorityYieldsNoCandidates) {
  LeapPrefetcher p(DefaultParams());
  PrefetchDecision d;
  for (int i = 0; i < 20; ++i) {
    d = p.OnMiss(55);  // same page over and over
    p.OnPrefetchHit(55);   // keep the window open
  }
  EXPECT_TRUE(d.pages.empty());
}

TEST(LeapPrefetcher, WindowSizeBoundsCandidateCount) {
  LeapPrefetcher p(DefaultParams());
  for (Vpn a = 0; a < 200; ++a) {
    const PrefetchDecision d = p.OnMiss(a);
    EXPECT_LE(d.pages.size(), d.window_size);
    for (size_t h = 0; h < d.pages.size(); ++h) {
      p.OnPrefetchHit(d.pages[h]);
    }
  }
}

TEST(LeapPrefetcher, TrendShiftAdaptsWithinWindow) {
  // Mirrors Figure 5: a -3 trend flips to +2; the prefetcher must follow.
  LeapPrefetcher p(DefaultParams());
  PrefetchDecision d;
  for (int i = 0; i < 12; ++i) {
    d = p.OnMiss(static_cast<SwapSlot>(2000 - 3 * i));
    for (size_t h = 0; h < d.pages.size(); ++h) {
      p.OnPrefetchHit(d.pages[h]);
    }
  }
  ASSERT_TRUE(d.trend_found);
  EXPECT_EQ(d.delta_used, -3);
  for (int i = 0; i < 40; ++i) {
    d = p.OnMiss(static_cast<SwapSlot>(100 + 2 * i));
    for (size_t h = 0; h < d.pages.size(); ++h) {
      p.OnPrefetchHit(d.pages[h]);
    }
  }
  ASSERT_TRUE(d.trend_found);
  EXPECT_EQ(d.delta_used, 2);
}

}  // namespace
}  // namespace leap
