// The calibrated machine presets must keep the relationships the paper's
// configuration table implies.
#include "src/runtime/presets.h"

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(Presets, DiskSwapHasNoDisaggregationFloor) {
  const MachineConfig config =
      DiskSwapConfig(Medium::kHdd, PrefetchKind::kReadAhead, 1024, 1);
  EXPECT_EQ(config.medium, Medium::kHdd);
  EXPECT_EQ(config.path, PathKind::kDefault);
  // Plain swap-cache hit, not the ~1us framework floor.
  EXPECT_LT(config.default_path.hit_cost_ns, 500u);
}

TEST(Presets, DefaultVmmHasTheOneMicrosecondFloor) {
  const MachineConfig config =
      DefaultVmmConfig(PrefetchKind::kReadAhead, 1024, 1);
  EXPECT_EQ(config.medium, Medium::kRemote);
  EXPECT_GT(config.default_path.hit_cost_ns, 900u);
  EXPECT_LT(config.default_path.hit_cost_ns, 1300u);
  EXPECT_EQ(config.eviction, EvictionKind::kLazyLru);
}

TEST(Presets, LeapVmmEnablesAllThreeComponents) {
  const MachineConfig config = LeapVmmConfig(1024, 1);
  EXPECT_EQ(config.path, PathKind::kLeap);
  EXPECT_EQ(config.prefetcher, PrefetchKind::kLeap);
  EXPECT_EQ(config.eviction, EvictionKind::kEagerLeap);
  EXPECT_EQ(config.leap_path.hit_cost_ns, 270u);
}

TEST(Presets, VfsConfigsSetVfsModeAndLighterStack) {
  const MachineConfig vfs =
      DefaultVfsConfig(PrefetchKind::kReadAhead, 1024, 256, 1);
  EXPECT_TRUE(vfs.vfs_mode);
  EXPECT_EQ(vfs.vfs_cache_limit_pages, 256u);
  // Remote Regions' stack is markedly lighter than the block-layer VMM
  // path (Figure 2).
  const MachineConfig vmm = DefaultVmmConfig(PrefetchKind::kReadAhead, 1024, 1);
  EXPECT_LT(vfs.default_path.block.queue_median_ns,
            vmm.default_path.block.queue_median_ns);
  EXPECT_LT(vfs.default_path.hit_cost_ns, vmm.default_path.hit_cost_ns);

  const MachineConfig leap_vfs = LeapVfsConfig(1024, 256, 1);
  EXPECT_TRUE(leap_vfs.vfs_mode);
  EXPECT_EQ(leap_vfs.prefetcher, PrefetchKind::kLeap);
}

TEST(Presets, PaperDefaultsForLeapParams) {
  const MachineConfig config = LeapVmmConfig(1024, 1);
  EXPECT_EQ(config.leap.history_size, 32u);
  EXPECT_EQ(config.leap.nsplit, 2u);
  EXPECT_EQ(config.leap.max_prefetch_window, 8u);
}

TEST(Presets, SeedPropagates) {
  const MachineConfig a = LeapVmmConfig(1024, 42);
  const MachineConfig b = LeapVmmConfig(1024, 43);
  EXPECT_EQ(a.seed, 42u);
  EXPECT_EQ(b.seed, 43u);
}

}  // namespace
}  // namespace leap
