#include "src/core/access_history.h"

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(AccessHistory, StartsEmpty) {
  AccessHistory h(8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.capacity(), 8u);
}

TEST(AccessHistory, ZeroCapacityClampedToOne) {
  AccessHistory h(0);
  EXPECT_EQ(h.capacity(), 1u);
  h.Push(5);
  EXPECT_EQ(h.FromHead(0), 5);
}

TEST(AccessHistory, HeadIsNewestEntry) {
  AccessHistory h(4);
  h.Push(1);
  h.Push(2);
  h.Push(3);
  EXPECT_EQ(h.FromHead(0), 3);
  EXPECT_EQ(h.FromHead(1), 2);
  EXPECT_EQ(h.FromHead(2), 1);
}

TEST(AccessHistory, WrapsAroundOverwritingOldest) {
  AccessHistory h(3);
  for (PageDelta d = 1; d <= 5; ++d) {
    h.Push(d);
  }
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.FromHead(0), 5);
  EXPECT_EQ(h.FromHead(1), 4);
  EXPECT_EQ(h.FromHead(2), 3);
}

TEST(AccessHistory, SizeSaturatesAtCapacity) {
  AccessHistory h(4);
  for (int i = 0; i < 100; ++i) {
    h.Push(i);
  }
  EXPECT_EQ(h.size(), 4u);
}

TEST(AccessHistory, NegativeDeltasStored) {
  AccessHistory h(4);
  h.Push(-3);
  h.Push(72);
  EXPECT_EQ(h.FromHead(1), -3);
  EXPECT_EQ(h.FromHead(0), 72);
}

TEST(AccessHistory, ClearResets) {
  AccessHistory h(4);
  h.Push(1);
  h.Push(2);
  h.Clear();
  EXPECT_TRUE(h.empty());
  h.Push(9);
  EXPECT_EQ(h.FromHead(0), 9);
  EXPECT_EQ(h.size(), 1u);
}

TEST(AccessHistory, PaperDeltaEncodingExample) {
  // Section 4.1: faults at 0x2, 0x5, 0x4, 0x6, 0x1, 0x9 store deltas
  // 0(+3)(-1)(+2)(-5)(+8); the first access has no predecessor, so we
  // store the five deltas produced by consecutive pairs.
  AccessHistory h(8);
  const Vpn faults[] = {0x2, 0x5, 0x4, 0x6, 0x1, 0x9};
  for (size_t i = 1; i < std::size(faults); ++i) {
    h.Push(static_cast<PageDelta>(faults[i]) -
           static_cast<PageDelta>(faults[i - 1]));
  }
  EXPECT_EQ(h.size(), 5u);
  EXPECT_EQ(h.FromHead(4), 3);
  EXPECT_EQ(h.FromHead(3), -1);
  EXPECT_EQ(h.FromHead(2), 2);
  EXPECT_EQ(h.FromHead(1), -5);
  EXPECT_EQ(h.FromHead(0), 8);
}

}  // namespace
}  // namespace leap
