// Backing store models: HDD seek behavior, SSD channels, busy chaining.
#include <gtest/gtest.h>

#include "src/sim/rng.h"
#include "src/storage/hdd.h"
#include "src/storage/ssd.h"

namespace leap {
namespace {

TEST(Hdd, RandomReadsAverageNearCalibration) {
  Hdd hdd;
  Rng rng(5);
  double sum = 0;
  const int n = 3000;
  SimTimeNs now = 0;
  for (int i = 0; i < n; ++i) {
    const IoRequest req = DemandRead(rng.NextU64(1 << 24));
    SimTimeNs ready = 0;
    hdd.ReadPages({&req, 1}, now, rng, {&ready, 1});
    sum += static_cast<double>(ready - now);
    now = ready + 1000;  // idle gap so requests do not queue
  }
  const double mean_us = sum / n / 1000.0;
  // Paper Figure 1: ~91.5 us average 4KB HDD access.
  EXPECT_GT(mean_us, 70.0);
  EXPECT_LT(mean_us, 115.0);
}

TEST(Hdd, SequentialReadsSkipSeek) {
  Hdd hdd;
  Rng rng(6);
  SimTimeNs now = 0;
  // Position the head.
  IoRequest req = DemandRead(1000);
  SimTimeNs ready = 0;
  hdd.ReadPages({&req, 1}, now, rng, {&ready, 1});
  now = ready;
  // Next sequential page: transfer-only.
  req = DemandRead(1001);
  hdd.ReadPages({&req, 1}, now, rng, {&ready, 1});
  EXPECT_EQ(ready - now, HddConfig().transfer_ns);
}

TEST(Hdd, BatchOfSequentialPagesAmortizesSeek) {
  Hdd hdd;
  Rng rng(7);
  std::vector<IoRequest> batch(8);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i] = i == 0 ? DemandRead(5000) : PrefetchRead(5000 + i);
  }
  std::vector<SimTimeNs> ready(8, 0);
  hdd.ReadPages(batch, 0, rng, ready);
  // One seek + 8 transfers, far below 8 seeks.
  EXPECT_LT(ready.back(), 8 * HddConfig().seek_median_ns);
  // Completion times are monotone along the batch.
  for (size_t i = 1; i < ready.size(); ++i) {
    EXPECT_GT(ready[i], ready[i - 1]);
  }
}

TEST(Hdd, RequestsSerializeBehindBusyDevice) {
  Hdd hdd;
  Rng rng(8);
  const IoRequest a = DemandRead(1);
  const IoRequest b = DemandRead(100000);
  SimTimeNs ready_a = 0;
  SimTimeNs ready_b = 0;
  hdd.ReadPages({&a, 1}, 0, rng, {&ready_a, 1});
  // Issued at time 0 as well, but the head is busy with `a`.
  hdd.ReadPages({&b, 1}, 0, rng, {&ready_b, 1});
  EXPECT_GT(ready_b, ready_a);
}

TEST(Hdd, WritesOccupyTheHead) {
  Hdd hdd;
  Rng rng(9);
  const SimTimeNs w = hdd.WritePage(EvictionWrite(42), 0, rng);
  EXPECT_GT(w, 0u);
  const IoRequest req = DemandRead(43);
  SimTimeNs ready = 0;
  hdd.ReadPages({&req, 1}, 0, rng, {&ready, 1});
  EXPECT_GE(ready, w);  // read waited for the write
}

TEST(Ssd, ReadsAverageNearCalibration) {
  Ssd ssd;
  Rng rng(10);
  double sum = 0;
  const int n = 5000;
  SimTimeNs now = 0;
  for (int i = 0; i < n; ++i) {
    const IoRequest req = DemandRead(rng.NextU64(1 << 24));
    SimTimeNs ready = 0;
    ssd.ReadPages({&req, 1}, now, rng, {&ready, 1});
    sum += static_cast<double>(ready - now);
    now = ready + 5000;
  }
  const double mean_us = sum / n / 1000.0;
  // Paper Figure 1: ~20 us average 4KB SSD access.
  EXPECT_GT(mean_us, 15.0);
  EXPECT_LT(mean_us, 25.0);
}

TEST(Ssd, ChannelsServeDisjointSlotsInParallel) {
  SsdConfig config;
  config.channels = 4;
  Ssd ssd(config);
  Rng rng(11);
  // Four slots mapping to four distinct channels, issued together.
  const std::vector<IoRequest> batch = {DemandRead(0), PrefetchRead(1),
                                        PrefetchRead(2), PrefetchRead(3)};
  std::vector<SimTimeNs> ready(4, 0);
  ssd.ReadPages(batch, 0, rng, ready);
  // Parallel channels: the batch finishes in ~1 read, not 4.
  const SimTimeNs max_ready = *std::max_element(ready.begin(), ready.end());
  EXPECT_LT(max_ready, 2 * (config.read_mean_ns + 3 * config.read_stddev_ns));
}

TEST(Ssd, SameChannelSerializes) {
  SsdConfig config;
  config.channels = 4;
  Ssd ssd(config);
  Rng rng(12);
  // Slots 0 and 4 share channel 0.
  const std::vector<IoRequest> batch = {DemandRead(0), PrefetchRead(4)};
  std::vector<SimTimeNs> ready(2, 0);
  ssd.ReadPages(batch, 0, rng, ready);
  EXPECT_GT(ready[1], ready[0]);
  EXPECT_GE(ready[1], 2 * config.read_min_ns);
}

TEST(Ssd, WritesSlowerThanReads) {
  Ssd ssd;
  EXPECT_GT(SsdConfig().write_mean_ns, SsdConfig().read_mean_ns);
  Rng rng(13);
  const SimTimeNs done = ssd.WritePage(EvictionWrite(9), 0, rng);
  EXPECT_GE(done, SsdConfig().write_min_ns);
}

TEST(Stores, NamesAndMeans) {
  Hdd hdd;
  Ssd ssd;
  EXPECT_EQ(hdd.name(), "hdd");
  EXPECT_EQ(ssd.name(), "ssd");
  EXPECT_GT(hdd.MeanReadLatencyNs(), ssd.MeanReadLatencyNs());
}

}  // namespace
}  // namespace leap
