// Merge semantics for the two accumulator types (Counters, Histogram).
//
// The sharded-engine plan (ROADMAP) merges per-shard stats at barriers, in
// whatever order shards finish; that only reports stable numbers if Merge
// is associative and commutative and the merged result equals the
// single-accumulator result. These tests pin that contract.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/rng.h"
#include "src/stats/counters.h"
#include "src/stats/histogram.h"

namespace leap {
namespace {

void ExpectCountersEq(const Counters& a, const Counters& b) {
  for (size_t i = 0; i < kCounterCount; ++i) {
    const CounterId id = static_cast<CounterId>(i);
    EXPECT_EQ(a.Get(id), b.Get(id)) << CounterName(id);
  }
}

TEST(CountersMergeTest, MergeAddsElementwise) {
  Counters a;
  a.Add(counter::kPageFaults, 3);
  a.Add(counter::kCacheHits, 7);
  Counters b;
  b.Add(counter::kPageFaults, 5);
  b.Add(counter::kRemoteReads, 11);

  a.Merge(b);
  EXPECT_EQ(a.Get(counter::kPageFaults), 8u);
  EXPECT_EQ(a.Get(counter::kCacheHits), 7u);
  EXPECT_EQ(a.Get(counter::kRemoteReads), 11u);
  // b untouched.
  EXPECT_EQ(b.Get(counter::kPageFaults), 5u);
}

TEST(CountersMergeTest, MergeWithEmptyIsIdentity) {
  Counters a;
  a.Add(counter::kEvictions, 42);
  Counters before = a;
  a.Merge(Counters{});
  ExpectCountersEq(a, before);
}

TEST(CountersMergeTest, MergeIsAssociativeAndCommutative) {
  // Three "shards" with overlapping and disjoint counters.
  Counters a, b, c;
  a.Add(counter::kPageFaults, 1);
  a.Add(counter::kDemandReads, 10);
  b.Add(counter::kPageFaults, 2);
  b.Add(counter::kWritebacks, 20);
  c.Add(counter::kPageFaults, 4);
  c.Add(counter::kDemandReads, 40);

  Counters left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  Counters bc = b;     // a + (b + c)
  bc.Merge(c);
  Counters right = a;
  right.Merge(bc);
  ExpectCountersEq(left, right);

  Counters swapped = c;  // c + b + a
  swapped.Merge(b);
  swapped.Merge(a);
  ExpectCountersEq(left, swapped);

  EXPECT_EQ(left.Get(counter::kPageFaults), 7u);
  EXPECT_EQ(left.Get(counter::kDemandReads), 50u);
  EXPECT_EQ(left.Get(counter::kWritebacks), 20u);
}

void ExpectHistogramEq(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.Sum(), b.Sum());
  EXPECT_EQ(a.Min(), b.Min());
  EXPECT_EQ(a.Max(), b.Max());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.Percentile(q), b.Percentile(q)) << "q=" << q;
  }
}

TEST(HistogramMergeTest, MergeEqualsSingleAccumulator) {
  // Shard the same sample stream three ways; any merge order must equal
  // recording everything into one histogram.
  Rng rng(99);
  Histogram all;
  Histogram shard[3];
  for (int i = 0; i < 30000; ++i) {
    const uint64_t v = 100 + rng.NextU64() % 1'000'000;
    all.Record(v);
    shard[i % 3].Record(v);
  }

  Histogram left = shard[0];  // (s0 + s1) + s2
  left.Merge(shard[1]);
  left.Merge(shard[2]);
  ExpectHistogramEq(left, all);

  Histogram s12 = shard[1];   // s0 + (s1 + s2)
  s12.Merge(shard[2]);
  Histogram right = shard[0];
  right.Merge(s12);
  ExpectHistogramEq(right, all);

  Histogram swapped = shard[2];  // reversed order
  swapped.Merge(shard[0]);
  swapped.Merge(shard[1]);
  ExpectHistogramEq(swapped, all);
}

TEST(HistogramMergeTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.Record(5000);
  a.Record(123456);
  Histogram before = a;
  a.Merge(Histogram{});
  ExpectHistogramEq(a, before);

  Histogram empty;
  empty.Merge(before);
  ExpectHistogramEq(empty, before);
}

}  // namespace
}  // namespace leap
