// Cross-policy conformance suite: the PrefetchPolicy v2 contract, checked
// for every kind in the registry (parameterized, so a policy added to
// kAllPrefetchKinds is covered with no test edits):
//
//  1. Feedback balance: every OnPrefetchIssued is eventually matched by
//     exactly one OnPrefetchHit or OnPrefetchDropped (the unresolved
//     remainder must equal the cache's unconsumed-prefetch count at the
//     end of the run), Complete fires once per Issued, and a Hit/Dropped
//     never arrives for a slot with no outstanding issue.
//  2. OnFault never returns the demand slot itself.
//  3. name() matches the registry name and views static storage (repeated
//     calls return the same pointer and never allocate).
//  4. A default-constructed FaultContext (kInvalidSlot, zeroed congestion
//     signals) and feedback for never-issued slots must not crash.
//  5. Same seed => bit-identical candidate streams across two full runs.
//  6. Steady-state OnFault is allocation-free for the non-learned kinds
//     (checked with the same global operator-new hook determinism_test
//     uses; the learned kinds may grow their tables).
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/prefetch/policy_registry.h"
#include "src/runtime/app_runner.h"
#include "src/runtime/machine.h"
#include "src/runtime/presets.h"
#include "src/workload/patterns.h"

// --- global allocation hook -------------------------------------------------

namespace {
size_t g_alloc_count = 0;
}  // namespace

void* operator new(size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace leap {
namespace {

constexpr size_t kFootprint = 4096;
constexpr size_t kFrames = 1 << 14;
constexpr size_t kAccesses = 20000;

// Registry params that make every kind actually emit: profile-guided gets
// a synthetic stride-1 profile covering the whole footprint's regions.
PolicyParams ActiveParams() {
  PolicyParams params;
  PrefetchProfile profile;
  profile.region_shift = 8;
  for (uint64_t region = 0; region < (kFrames >> 8); ++region) {
    profile.hints.push_back(ProfileHint{region, /*stride=*/1, /*depth=*/4,
                                        /*share_pct=*/90});
  }
  params.profile_guided.profile = profile;
  return params;
}

// Forwarding wrapper that audits the feedback contract around any policy.
class AuditPolicy : public PrefetchPolicy {
 public:
  explicit AuditPolicy(PrefetchPolicy* inner) : inner_(inner) {}

  CandidateVec OnFault(const FaultContext& ctx) override {
    CandidateVec out = inner_->OnFault(ctx);
    for (SwapSlot slot : out) {
      if (slot == ctx.slot) {
        ++demand_slot_emissions;
      }
      candidate_stream.push_back(slot);
    }
    // Batch separator so two runs can't equalize by re-chunking.
    candidate_stream.push_back(kInvalidSlot);
    return out;
  }
  void OnCacheAccess(Pid pid, SwapSlot slot) override {
    inner_->OnCacheAccess(pid, slot);
  }
  void OnPrefetchIssued(Pid pid, SwapSlot slot, SimTimeNs now) override {
    ++balance[slot];
    ++issued;
    inner_->OnPrefetchIssued(pid, slot, now);
  }
  void OnPrefetchComplete(Pid pid, SwapSlot slot, SimTimeNs latency) override {
    ++completes;
    inner_->OnPrefetchComplete(pid, slot, latency);
  }
  void OnPrefetchHit(Pid pid, SwapSlot slot, SimTimeNs timeliness) override {
    Resolve(slot);
    ++hits;
    inner_->OnPrefetchHit(pid, slot, timeliness);
  }
  void OnPrefetchDropped(Pid pid, SwapSlot slot) override {
    Resolve(slot);
    ++drops;
    inner_->OnPrefetchDropped(pid, slot);
  }
  std::string_view name() const override { return inner_->name(); }

  uint64_t issued = 0;
  uint64_t completes = 0;
  uint64_t hits = 0;
  uint64_t drops = 0;
  uint64_t demand_slot_emissions = 0;
  uint64_t resolutions_without_issue = 0;
  std::map<SwapSlot, int64_t> balance;  // issued minus resolved, per slot
  std::vector<SwapSlot> candidate_stream;

 private:
  void Resolve(SwapSlot slot) {
    auto it = balance.find(slot);
    if (it == balance.end() || it->second <= 0) {
      ++resolutions_without_issue;
      return;
    }
    --it->second;
  }

  PrefetchPolicy* inner_;
};

struct AuditedRun {
  AuditPolicy audit{nullptr};
  size_t unconsumed_at_end = 0;
  uint64_t faults = 0;
};

// One full machine run (warm-up, strided phase, scrambled phase) with the
// kind's policy wrapped in an audit shim via the policy_override seam.
void RunAudited(PrefetchKind kind, uint64_t seed, AuditedRun& out) {
  auto inner = MakePrefetchPolicy(kind, ActiveParams());
  out.audit = AuditPolicy(inner.get());

  MachineConfig config = DefaultVmmConfig(kind, kFrames, seed);
  config.policy_override = &out.audit;
  Machine machine(config);
  const Pid pid = machine.CreateProcess(kFootprint / 2);
  const SimTimeNs warm_end = WarmUp(machine, pid, kFootprint);

  RunConfig rc;
  rc.total_accesses = kAccesses;
  rc.start_time_ns = warm_end + 10 * kNsPerMs;
  StrideStream strided(kFootprint, 10, 750);
  RunResult rr = RunApp(machine, pid, strided, rc);

  rc.start_time_ns = rr.completion_ns + kNsPerMs;
  ScrambledZipfStream scrambled(kFootprint, 0.99, 750);
  RunApp(machine, pid, scrambled, rc);

  out.unconsumed_at_end = machine.unconsumed_prefetched();
  out.faults = machine.counters().Get(counter::kPageFaults);
}

class PolicyConformance : public ::testing::TestWithParam<PrefetchKind> {};

TEST_P(PolicyConformance, FeedbackBalanced) {
  AuditedRun run;
  RunAudited(GetParam(), /*seed=*/42, run);
  const AuditPolicy& a = run.audit;

  EXPECT_GT(run.faults, 0u);
  EXPECT_EQ(a.demand_slot_emissions, 0u)
      << "OnFault returned the demand slot itself";
  EXPECT_EQ(a.resolutions_without_issue, 0u)
      << "Hit/Dropped arrived for a slot with no outstanding issue";
  EXPECT_EQ(a.completes, a.issued)
      << "Complete must fire exactly once per Issued";
  // Exactly-one rule: everything issued is resolved except what is still
  // sitting unconsumed in the cache when the run ends.
  EXPECT_EQ(a.issued - a.hits - a.drops, run.unconsumed_at_end);
  for (const auto& [slot, bal] : a.balance) {
    EXPECT_GE(bal, 0) << "slot " << slot << " over-resolved";
  }
}

TEST_P(PolicyConformance, NameMatchesRegistryAndIsHeapFree) {
  auto policy = MakePrefetchPolicy(GetParam(), ActiveParams());
  EXPECT_EQ(policy->name(), PrefetchKindName(GetParam()));

  const char* first = policy->name().data();
  const size_t before = g_alloc_count;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy->name().data(), first)
        << "name() must view static storage";
  }
  EXPECT_EQ(g_alloc_count, before) << "name() allocated";
}

TEST_P(PolicyConformance, NullContextAndStrayFeedbackAreSafe) {
  auto policy = MakePrefetchPolicy(GetParam(), ActiveParams());
  // Default context: kInvalidSlot demand, zeroed congestion signals.
  CandidateVec out = policy->OnFault(FaultContext{});
  for (SwapSlot slot : out) {
    EXPECT_NE(slot, kInvalidSlot);
  }
  // Feedback for slots this policy never emitted must be ignored, not
  // crash (the machine never does this, but the contract is defensive).
  policy->OnPrefetchIssued(1, 999, 0);
  policy->OnPrefetchComplete(1, 999, 5000);
  policy->OnPrefetchHit(1, 999, 100);
  policy->OnPrefetchDropped(1, 998);
  policy->OnCacheAccess(1, 7);
  (void)policy->OnFault(FaultContext{1, 5});
}

TEST_P(PolicyConformance, SameSeedBitIdenticalCandidateStream) {
  AuditedRun first;
  AuditedRun second;
  RunAudited(GetParam(), /*seed=*/42, first);
  RunAudited(GetParam(), /*seed=*/42, second);
  ASSERT_EQ(first.audit.candidate_stream.size(),
            second.audit.candidate_stream.size());
  EXPECT_EQ(first.audit.candidate_stream, second.audit.candidate_stream);
  EXPECT_EQ(first.audit.issued, second.audit.issued);
  EXPECT_EQ(first.audit.hits, second.audit.hits);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PolicyConformance, ::testing::ValuesIn(kAllPrefetchKinds),
    [](const ::testing::TestParamInfo<PrefetchKind>& info) {
      std::string name(PrefetchKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- zero-allocation steady state (non-learned kinds) -----------------------

TEST(PolicyZeroAlloc, NonLearnedOnFaultIsAllocationFree) {
  for (PrefetchKind kind :
       {PrefetchKind::kNone, PrefetchKind::kNextNLine, PrefetchKind::kStride,
        PrefetchKind::kReadAhead, PrefetchKind::kGhb, PrefetchKind::kLeap}) {
    auto policy = MakePrefetchPolicy(kind);
    // Warm phase: a monotone cursor with a periodic delta pattern, so the
    // delta-signature space (what GHB indexes) is finite and fully seen
    // before the measured phase, while still mixing stride lengths.
    static constexpr SwapSlot kDeltas[16] = {1, 3, 1, 7, 2, 1, 5, 1,
                                             3, 1, 9, 2, 1, 4, 1, 6};
    SwapSlot cursor = 0;
    size_t tick = 0;
    auto next_slot = [&]() -> SwapSlot {
      cursor += kDeltas[tick++ & 15];
      return cursor;
    };
    for (size_t i = 0; i < 4 * kFootprint; ++i) {
      (void)policy->OnFault(FaultContext{1, next_slot()});
    }
    size_t allocs = 0;
    for (size_t i = 0; i < kFootprint; ++i) {
      const FaultContext ctx{1, next_slot()};
      const size_t before = g_alloc_count;
      (void)policy->OnFault(ctx);
      allocs += g_alloc_count - before;
    }
    EXPECT_EQ(allocs, 0u) << PrefetchKindName(kind)
                          << ": steady-state OnFault allocated";
  }
}

}  // namespace
}  // namespace leap
