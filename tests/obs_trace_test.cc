// Flight recorder + stats sampler contracts:
//
//  1. Ring semantics: fixed capacity, oldest-first iteration, dropped
//     counter once full; a disabled recorder stores nothing.
//  2. Per-op stage telescoping: for every recorded fabric op,
//     software + queue + wire + stall + service == dur exactly (the
//     decomposition is a partition of the op's sojourn, not an estimate).
//  3. Aggregate identity: the StageBreakdown demand mean equals the
//     fabric's end-to-end demand sojourn mean.
//  4. Pure observation: the same seeded cluster run produces bit-identical
//     counters/histograms with tracing+sampling on and off.
//  5. The Chrome trace export is syntactically valid JSON and carries the
//     tracks the fig16 walkthrough relies on.
//  6. Sampler cadence and contents are deterministic across same-seed runs.
#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/stats_sampler.h"
#include "src/obs/trace_recorder.h"
#include "src/runtime/app_runner.h"
#include "src/runtime/cluster.h"
#include "src/runtime/presets.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

// --- 1. ring semantics ------------------------------------------------------

TraceEvent Ev(SimTimeNs ts, TraceEventKind kind = TraceEventKind::kFabricOp) {
  TraceEvent e;
  e.ts = ts;
  e.kind = kind;
  return e;
}

TEST(TraceRecorderTest, RingWrapsOldestFirstAndCountsDrops) {
  TraceRecorder rec({/*enabled=*/true, /*capacity=*/4});
  EXPECT_EQ(rec.capacity(), 4u);
  for (SimTimeNs ts = 1; ts <= 6; ++ts) {
    rec.Record(Ev(ts));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_EQ(rec.recorded(), 6u);
  // Oldest-first: events 1 and 2 were overwritten.
  for (size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.At(i).ts, static_cast<SimTimeNs>(3 + i));
  }
}

TEST(TraceRecorderTest, DisabledRecorderStoresNothing) {
  TraceRecorder rec({/*enabled=*/false, /*capacity=*/1024});
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.capacity(), 0u);  // no ring allocated at all
  rec.Record(Ev(1));
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(TraceRecorderTest, CountKind) {
  TraceRecorder rec({/*enabled=*/true, /*capacity=*/16});
  rec.Record(Ev(1, TraceEventKind::kFabricOp));
  rec.Record(Ev(2, TraceEventKind::kHedgeIssued));
  rec.Record(Ev(3, TraceEventKind::kHedgeIssued));
  EXPECT_EQ(rec.CountKind(TraceEventKind::kFabricOp), 1u);
  EXPECT_EQ(rec.CountKind(TraceEventKind::kHedgeIssued), 2u);
  EXPECT_EQ(rec.CountKind(TraceEventKind::kReadRetry), 0u);
}

// --- shared cluster fixture -------------------------------------------------

constexpr size_t kFootprint = 512;
constexpr size_t kAccesses = 3000;
constexpr uint32_t kGrayNode = 1;

ClusterConfig SmallConfig(bool trace_on, bool sampler_on) {
  ClusterConfig config;
  config.hosts = 2;
  config.nodes = 4;
  config.node_capacity_slabs = 1024;
  config.host = LeapVmmConfig(kFootprint, /*seed=*/42);
  config.host.host_agent.slab_pages = 64;
  config.seed = 7;
  // Mitigation + monitor on so hedges/reroutes/health transitions have a
  // chance to fire and land in the trace (smoke-style knobs).
  config.resilience.enabled = true;
  config.resilience.read_deadline_ns = 50 * kNsPerUs;
  config.resilience.hedge_floor_ns = 10 * kNsPerUs;
  config.resilience.retry_backoff_ns = 5 * kNsPerUs;
  config.resilience.max_read_retries = 3;
  config.health_monitor_enabled = true;
  config.health.min_samples = 16;
  config.health.ewma_alpha = 0.25;
  // The fixture is small (3000 accesses/host), so make the outlier
  // thresholds easy to cross: a 16x gray stretch must be detected well
  // before the run drains or the gray-track walkthrough has nothing to
  // point at.
  config.health.suspect_factor = 1.5;
  config.health.gray_factor = 2.5;
  config.health.clear_factor = 1.2;
  config.trace.enabled = trace_on;
  config.sampler.enabled = sampler_on;
  return config;
}

struct ClusterOutcome {
  std::map<std::string, uint64_t> counters;
  std::vector<SimTimeNs> completion;
  uint64_t miss_p50 = 0;
  uint64_t miss_p99 = 0;
  uint64_t miss_count = 0;
  double miss_sum = 0.0;

  bool operator==(const ClusterOutcome&) const = default;
};

// One deterministic 2-host run with a mid-run gray fault; returns the
// fingerprint and (optionally) the cluster for trace/sampler inspection.
ClusterOutcome RunSmall(const ClusterConfig& config,
                        std::unique_ptr<Cluster>* keep = nullptr) {
  auto cluster = std::make_unique<Cluster>(config);
  std::vector<std::unique_ptr<AccessStream>> streams;
  std::vector<ClusterAppSpec> specs;
  std::vector<Pid> pids;
  SimTimeNs warm_end = 0;
  for (size_t h = 0; h < config.hosts; ++h) {
    const Pid pid = cluster->host(h).CreateProcess(kFootprint / 2);
    pids.push_back(pid);
    warm_end = WarmUp(cluster->host(h), pid, kFootprint, warm_end);
    streams.push_back(
        std::make_unique<SequentialStream>(kFootprint, /*think_ns=*/300));
  }
  const SimTimeNs start = warm_end + kNsPerMs;
  cluster->ScheduleNodeGray(kGrayNode, 16.0, start + 2 * kNsPerMs);
  cluster->ScheduleNodeDelaySpike(0, 20 * kNsPerUs, start + 3 * kNsPerMs,
                                  start + 4 * kNsPerMs);
  for (size_t h = 0; h < config.hosts; ++h) {
    RunConfig run;
    run.total_accesses = kAccesses;
    run.start_time_ns = start;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  const auto results = cluster->Run(std::move(specs));

  ClusterOutcome out;
  Histogram merged;
  for (const RunResult& r : results) {
    out.completion.push_back(r.completion_ns);
    merged.Merge(r.miss_latency);
  }
  out.counters = cluster->Stats().totals.values();
  out.miss_p50 = merged.Percentile(0.5);
  out.miss_p99 = merged.Percentile(0.99);
  out.miss_count = merged.count();
  out.miss_sum = merged.Sum();
  if (keep != nullptr) {
    *keep = std::move(cluster);
  }
  return out;
}

// --- 2 + 3. stage attribution ----------------------------------------------

TEST(StageBreakdownTest, PerOpStagesTelescopeToDuration) {
  std::unique_ptr<Cluster> cluster;
  RunSmall(SmallConfig(/*trace_on=*/true, /*sampler_on=*/false), &cluster);
  const TraceRecorder* rec = cluster->trace();
  ASSERT_NE(rec, nullptr);
  ASSERT_GT(rec->CountKind(TraceEventKind::kFabricOp), 100u);
  for (size_t i = 0; i < rec->size(); ++i) {
    const TraceEvent& e = rec->At(i);
    if (e.kind != TraceEventKind::kFabricOp) {
      continue;
    }
    const uint64_t stage_sum = uint64_t{e.stage_software_ns} +
                               e.stage_queue_ns + e.stage_wire_ns +
                               e.stage_stall_ns + e.stage_service_ns;
    EXPECT_EQ(stage_sum, e.dur_ns)
        << "op " << i << " (" << IoClassName(e.cls) << ")";
  }
}

TEST(StageBreakdownTest, DemandStageMeanEqualsSojournMean) {
  std::unique_ptr<Cluster> cluster;
  RunSmall(SmallConfig(/*trace_on=*/false, /*sampler_on=*/false), &cluster);
  const ClusterStats stats = cluster->Stats();
  const size_t demand = static_cast<size_t>(IoClass::kDemandRead);
  const StageBreakdown::Stage& s = stats.stages.cls[demand];
  ASSERT_GT(s.ops, 0u);
  // The stage sums partition exactly the same ops the sojourn accounting
  // covers, so the means agree to double-rounding exactness.
  const double stage_mean =
      static_cast<double>(s.TotalNs()) / static_cast<double>(s.ops);
  EXPECT_NEAR(stage_mean, stats.class_sojourn_mean_ns[demand], 1e-6);
  // p99 attribution is populated for demand reads.
  EXPECT_GT(stats.stages.demand_p99_total_ns, 0u);
  EXPECT_GE(stats.stages.demand_p99_total_ns,
            stats.stages.demand_p99_service_ns);
}

// --- 4. pure observation ----------------------------------------------------

TEST(TraceRecorderTest, TracingAndSamplingDoNotPerturbTheRun) {
  const ClusterOutcome off =
      RunSmall(SmallConfig(/*trace_on=*/false, /*sampler_on=*/false));
  const ClusterOutcome on =
      RunSmall(SmallConfig(/*trace_on=*/true, /*sampler_on=*/true));
  EXPECT_EQ(off, on);
}

// --- 5. Chrome trace export -------------------------------------------------

// Minimal recursive-descent JSON syntax checker: enough to guarantee a
// JSON parser will accept the export (CI additionally runs it through
// python3 -m json.tool).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool Valid() {
    i_ = 0;
    SkipWs();
    const bool ok = Value();
    SkipWs();
    return ok && i_ == s_.size();
  }

 private:
  void SkipWs() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(i_, n, lit) != 0) {
      return false;
    }
    i_ += n;
    return true;
  }
  bool String() {
    if (s_[i_] != '"') {
      return false;
    }
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      i_ += s_[i_] == '\\' ? 2 : 1;
    }
    if (i_ >= s_.size()) {
      return false;
    }
    ++i_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t begin = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
    }
    return i_ > begin;
  }
  bool Object() {
    ++i_;  // '{'
    SkipWs();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    while (i_ < s_.size()) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (i_ >= s_.size() || s_[i_] != ':') {
        return false;
      }
      ++i_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != '}') {
      return false;
    }
    ++i_;
    return true;
  }
  bool Array() {
    ++i_;  // '['
    SkipWs();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    while (i_ < s_.size()) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != ']') {
      return false;
    }
    ++i_;
    return true;
  }
  bool Value() {
    if (i_ >= s_.size()) {
      return false;
    }
    switch (s_[i_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const std::string& s_;
  size_t i_ = 0;
};

TEST(ChromeTraceExportTest, ExportsValidJsonWithExpectedTracks) {
  std::unique_ptr<Cluster> cluster;
  RunSmall(SmallConfig(/*trace_on=*/true, /*sampler_on=*/false), &cluster);
  ASSERT_NE(cluster->trace(), nullptr);
  std::ostringstream out;
  cluster->trace()->ExportChromeTrace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  // Track metadata and the fault/health story the walkthrough relies on.
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"gray_set\""), std::string::npos);
  EXPECT_NE(json.find("\"delay_spike\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"fabric\""), std::string::npos);
}

TEST(ChromeTraceExportTest, EmptyRecorderExportsValidJson) {
  TraceRecorder rec({/*enabled=*/true, /*capacity=*/16});
  std::ostringstream out;
  rec.ExportChromeTrace(out);
  EXPECT_TRUE(JsonChecker(out.str()).Valid()) << out.str();
}

// --- 6. sampler determinism -------------------------------------------------

TEST(StatsSamplerTest, CadenceAndContentsAreDeterministic) {
  std::unique_ptr<Cluster> c1;
  std::unique_ptr<Cluster> c2;
  RunSmall(SmallConfig(/*trace_on=*/false, /*sampler_on=*/true), &c1);
  RunSmall(SmallConfig(/*trace_on=*/false, /*sampler_on=*/true), &c2);
  ASSERT_NE(c1->sampler(), nullptr);
  ASSERT_NE(c2->sampler(), nullptr);
  const auto& s1 = c1->sampler()->samples();
  const auto& s2 = c2->sampler()->samples();
  ASSERT_GT(s1.size(), 10u);
  ASSERT_EQ(s1.size(), s2.size());
  const SimTimeNs period = c1->sampler()->config().period_ns;
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].ts, (i + 1) * period);  // exact cadence, no drift
    EXPECT_EQ(s1[i].ts, s2[i].ts);
    EXPECT_EQ(s1[i].window_demand_ops, s2[i].window_demand_ops);
    EXPECT_EQ(s1[i].window_demand_p99_ns, s2[i].window_demand_p99_ns);
    EXPECT_EQ(s1[i].node_state, s2[i].node_state);
    EXPECT_EQ(s1[i].host_free_frames, s2[i].host_free_frames);
    EXPECT_EQ(s1[i].host_cache_pages, s2[i].host_cache_pages);
    EXPECT_DOUBLE_EQ(s1[i].demand_queue_delay_ewma_ns,
                     s2[i].demand_queue_delay_ewma_ns);
  }
  // The JSONL writer emits one parseable object per line.
  std::ostringstream jsonl;
  c1->sampler()->WriteJsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    ++n;
  }
  EXPECT_EQ(n, s1.size());
}

// The gray fault must actually have been detected in this fixture -
// otherwise the "gray_set -> gray span" walkthrough asserts on nothing.
TEST(StatsSamplerTest, GrayNodeShowsUpInTheTimeSeries) {
  std::unique_ptr<Cluster> cluster;
  RunSmall(SmallConfig(/*trace_on=*/false, /*sampler_on=*/true), &cluster);
  bool saw_gray = false;
  for (const StatsSample& s : cluster->sampler()->samples()) {
    if (s.node_state.size() > kGrayNode && s.node_state[kGrayNode] == 2) {
      saw_gray = true;
      break;
    }
  }
  EXPECT_TRUE(saw_gray);
}

}  // namespace
}  // namespace leap
