// Baseline prefetchers: Next-N-Line, Stride, Linux Read-Ahead.
#include <gtest/gtest.h>

#include "src/prefetch/leap_adapter.h"
#include "src/prefetch/next_n_line.h"
#include "src/prefetch/readahead.h"
#include "src/prefetch/stride.h"

namespace leap {
namespace {

// --- Next-N-Line -------------------------------------------------------------

TEST(NextNLine, AlwaysFetchesNextN) {
  NextNLinePrefetcher p(4);
  const auto pages = p.OnFault({1, 100});
  EXPECT_EQ(pages, (std::vector<SwapSlot>{101, 102, 103, 104}));
}

TEST(NextNLine, IgnoresPatternEntirely) {
  NextNLinePrefetcher p(2);
  p.OnFault({1, 100});
  const auto pages = p.OnFault({1, 5000});  // wild jump: still next-2
  EXPECT_EQ(pages, (std::vector<SwapSlot>{5001, 5002}));
}

// --- Stride ------------------------------------------------------------------

TEST(Stride, NeedsTwoMatchingDeltasToConfirm) {
  StridePrefetcher p(8);
  EXPECT_TRUE(p.OnFault({1, 100}).empty());   // first access
  EXPECT_TRUE(p.OnFault({1, 110}).empty());   // stride 10 seen once
  const auto pages = p.OnFault({1, 120});     // stride 10 repeated
  ASSERT_FALSE(pages.empty());
  EXPECT_EQ(pages[0], 130u);
}

TEST(Stride, BrokenStrideResetsStream) {
  StridePrefetcher p(8);
  p.OnFault({1, 100});
  p.OnFault({1, 110});
  p.OnFault({1, 120});
  EXPECT_TRUE(p.OnFault({1, 7777}).empty());  // break
  EXPECT_TRUE(p.OnFault({1, 7779}).empty());  // new stride 2, once
  EXPECT_FALSE(p.OnFault({1, 7781}).empty()); // confirmed again
}

TEST(Stride, DepthGrowsWithAccuracy) {
  StridePrefetcher p(8);
  p.OnFault({1, 0});
  p.OnFault({1, 10});
  size_t last_depth = 0;
  for (int i = 2; i < 12; ++i) {
    const auto pages = p.OnFault({1, static_cast<SwapSlot>(10 * i)});
    for (SwapSlot s : pages) {
      p.OnPrefetchHit(1, s, 0);  // everything useful
    }
    last_depth = pages.size();
  }
  EXPECT_EQ(last_depth, 8u);  // grew to max depth
}

TEST(Stride, DepthShrinksWithoutHits) {
  StridePrefetcher p(8);
  p.OnFault({1, 0});
  p.OnFault({1, 10});
  // Grow first.
  for (int i = 2; i < 8; ++i) {
    for (SwapSlot s : p.OnFault({1, static_cast<SwapSlot>(10 * i)})) {
      p.OnPrefetchHit(1, s, 0);
    }
  }
  // Now never report hits: depth must halve each confirmation.
  size_t prev = 8;
  for (int i = 8; i < 14; ++i) {
    const auto pages = p.OnFault({1, static_cast<SwapSlot>(10 * i)});
    EXPECT_LE(pages.size(), prev);
    prev = pages.size();
  }
  EXPECT_LE(prev, 1u);
}

TEST(Stride, PerProcessStreams) {
  StridePrefetcher p(8);
  p.OnFault({1, 0});
  p.OnFault({1, 10});
  p.OnFault({2, 1000});
  p.OnFault({2, 1003});
  const auto pages1 = p.OnFault({1, 20});
  const auto pages2 = p.OnFault({2, 1006});
  ASSERT_FALSE(pages1.empty());
  ASSERT_FALSE(pages2.empty());
  EXPECT_EQ(pages1[0], 30u);
  EXPECT_EQ(pages2[0], 1009u);
}

// --- Read-Ahead --------------------------------------------------------------

TEST(ReadAhead, FirstFaultReadsMinimumCluster) {
  ReadAheadPrefetcher p(2, 8);
  const auto pages = p.OnFault({1, 100});
  // Aligned 2-cluster containing 100 = {100, 101}; demand excluded.
  EXPECT_EQ(pages, (std::vector<SwapSlot>{101}));
}

TEST(ReadAhead, ConsecutiveFaultsGrowWindow) {
  ReadAheadPrefetcher p(2, 8);
  p.OnFault({1, 100});
  const auto second = p.OnFault({1, 101});  // consecutive
  EXPECT_GE(second.size() + 1, 4u);       // window grew
}

TEST(ReadAhead, HitsAccelerateGrowthToMax) {
  ReadAheadPrefetcher p(2, 8);
  SwapSlot addr = 0;
  size_t max_window = 0;
  for (int i = 0; i < 20; ++i, ++addr) {
    const auto pages = p.OnFault({1, addr});
    max_window = std::max(max_window, pages.size() + 1);
    for (SwapSlot s : pages) {
      p.OnPrefetchHit(1, s, 0);
    }
  }
  EXPECT_EQ(max_window, 8u);
}

TEST(ReadAhead, NonConsecutiveFaultShrinksWindow) {
  ReadAheadPrefetcher p(2, 8);
  // Grow first.
  for (SwapSlot a = 0; a < 10; ++a) {
    for (SwapSlot s : p.OnFault({1, a})) {
      p.OnPrefetchHit(1, s, 0);
    }
  }
  const auto after_jump = p.OnFault({1, 100000});
  EXPECT_LT(after_jump.size() + 1, 8u);
}

TEST(ReadAhead, StrideAccessStillPollutes) {
  // Section 2.2: under Stride-10 the Linux prefetcher keeps bringing
  // useless aligned neighbors - pollution without hits.
  ReadAheadPrefetcher p(2, 8);
  size_t brought = 0;
  for (int i = 0; i < 50; ++i) {
    brought += p.OnFault({1, static_cast<SwapSlot>(10 * i)}).size();
  }
  EXPECT_GT(brought, 25u);  // keeps polluting
}

TEST(ReadAhead, WindowIsAlignedBlockContainingFault) {
  ReadAheadPrefetcher p(4, 8);
  const auto pages = p.OnFault({1, 6});
  // Aligned 4-block containing 6 is {4,5,6,7}.
  for (SwapSlot s : pages) {
    EXPECT_GE(s, 4u);
    EXPECT_LE(s, 7u);
    EXPECT_NE(s, 6u);
  }
}

// --- LeapAdapter ---------------------------------------------------------------

TEST(LeapAdapter, ForwardsToCoreAndExposesDecision) {
  LeapAdapter adapter;
  for (Vpn a = 0; a < 16; ++a) {
    const auto pages = adapter.OnFault({1, a});
    for (SwapSlot s : pages) {
      adapter.OnPrefetchHit(1, s, 0);
    }
  }
  EXPECT_TRUE(adapter.last_decision().trend_found);
  EXPECT_EQ(adapter.name(), "leap");
}

TEST(NoPrefetcher, NeverPrefetches) {
  NoPrefetcher p;
  EXPECT_TRUE(p.OnFault({1, 42}).empty());
}

}  // namespace
}  // namespace leap
