// Sharded parallel engine tests: the determinism contract (shards=1 is
// bit-identical to the single-queue Cluster; same seed + same shard count
// is bit-identical across runs and across mailbox capacities), the shard
// planner and lookahead derivation, the SPSC mailbox's FIFO/overflow
// behavior, and the protocol edge cases the window design calls out -
// scenario events landing exactly on a window boundary, donor-only
// shards, and apps whose every access is a zero-latency local hit.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/runtime/cluster.h"
#include "src/runtime/presets.h"
#include "src/runtime/shard_plan.h"
#include "src/runtime/sharded_cluster.h"
#include "src/sim/shard_sync.h"
#include "src/workload/cluster_mix.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

constexpr size_t kFootprint = 2048;

ClusterConfig SmallCluster(size_t hosts, size_t nodes) {
  ClusterConfig config;
  config.hosts = hosts;
  config.nodes = nodes;
  config.node_capacity_slabs = 4096;
  config.host = LeapVmmConfig(/*total_frames=*/4096, /*seed=*/42);
  config.host.host_agent.slab_pages = 64;
  config.seed = 42;
  return config;
}

// Warm every host back-to-back, then one mixed-pattern app per host -
// the exact sequence cluster_test drives, templated so the single-queue
// and sharded engines see byte-identical inputs.
template <typename Engine>
std::vector<RunResult> RunMixed(Engine& cluster, size_t accesses_per_host,
                                std::vector<std::unique_ptr<AccessStream>>& streams,
                                SimTimeNs* warm_end_out = nullptr) {
  std::vector<ClusterAppSpec> specs;
  SimTimeNs warm_end = 0;
  std::vector<Pid> pids;
  for (size_t h = 0; h < cluster.num_hosts(); ++h) {
    const Pid pid = cluster.host(h).CreateProcess(kFootprint / 2);
    pids.push_back(pid);
    warm_end = WarmUp(cluster.host(h), pid, kFootprint, warm_end);
    streams.push_back(MakeClusterMixStream(h, kFootprint));
  }
  for (size_t h = 0; h < cluster.num_hosts(); ++h) {
    RunConfig run;
    run.total_accesses = accesses_per_host;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  if (warm_end_out != nullptr) {
    *warm_end_out = warm_end;
  }
  return cluster.Run(std::move(specs));
}

// Probe one failure-free run to find a simulated time guaranteed to fall
// inside the measured phase (failures scheduled after the last access
// never fire - same rule as the single-queue engine).
SimTimeNs MidRunTime(const ShardedClusterConfig& config) {
  ShardedCluster probe(config);
  std::vector<std::unique_ptr<AccessStream>> streams;
  SimTimeNs warm_end = 0;
  const std::vector<RunResult> results =
      RunMixed(probe, 6000, streams, &warm_end);
  // completion_ns is a duration from the app's start; every app starts at
  // warm_end + 10ms, so the shortest-lived app ends the measured phase.
  SimTimeNs shortest = ~SimTimeNs{0};
  for (const RunResult& result : results) {
    shortest = std::min(shortest, result.completion_ns);
  }
  EXPECT_GT(shortest, 0u);
  const SimTimeNs start = warm_end + 10 * kNsPerMs;
  return start + shortest / 2;
}

// Field-by-field ClusterStats equality, doubles compared exactly: the
// engine's contract is bit-identity, not tolerance.
void ExpectStatsEqual(const ClusterStats& a, const ClusterStats& b) {
  EXPECT_EQ(a.totals.values(), b.totals.values());
  EXPECT_EQ(a.node_slabs, b.node_slabs);
  EXPECT_EQ(a.node_reads, b.node_reads);
  EXPECT_EQ(a.node_writes, b.node_writes);
  EXPECT_EQ(a.fabric_ops, b.fabric_ops);
  EXPECT_EQ(a.fabric_bytes, b.fabric_bytes);
  ASSERT_EQ(a.host_uplink_classes.size(), b.host_uplink_classes.size());
  for (size_t h = 0; h < a.host_uplink_classes.size(); ++h) {
    EXPECT_EQ(a.host_uplink_classes[h].ops, b.host_uplink_classes[h].ops);
    EXPECT_EQ(a.host_uplink_classes[h].bytes, b.host_uplink_classes[h].bytes);
  }
  ASSERT_EQ(a.node_downlink_classes.size(), b.node_downlink_classes.size());
  for (size_t n = 0; n < a.node_downlink_classes.size(); ++n) {
    EXPECT_EQ(a.node_downlink_classes[n].ops, b.node_downlink_classes[n].ops);
    EXPECT_EQ(a.node_downlink_classes[n].bytes,
              b.node_downlink_classes[n].bytes);
  }
  for (size_t c = 0; c < kIoClassCount; ++c) {
    EXPECT_EQ(a.class_queue_delay_ewma_ns[c], b.class_queue_delay_ewma_ns[c])
        << "class " << c;
    EXPECT_EQ(a.class_queue_delay_mean_ns[c], b.class_queue_delay_mean_ns[c])
        << "class " << c;
    EXPECT_EQ(a.class_sojourn_mean_ns[c], b.class_sojourn_mean_ns[c])
        << "class " << c;
    EXPECT_EQ(a.stages.cls[c].software_ns, b.stages.cls[c].software_ns);
    EXPECT_EQ(a.stages.cls[c].queue_ns, b.stages.cls[c].queue_ns);
    EXPECT_EQ(a.stages.cls[c].wire_ns, b.stages.cls[c].wire_ns);
    EXPECT_EQ(a.stages.cls[c].stall_ns, b.stages.cls[c].stall_ns);
    EXPECT_EQ(a.stages.cls[c].service_ns, b.stages.cls[c].service_ns);
    EXPECT_EQ(a.stages.cls[c].ops, b.stages.cls[c].ops);
  }
  EXPECT_EQ(a.stages.demand_p99_software_ns, b.stages.demand_p99_software_ns);
  EXPECT_EQ(a.stages.demand_p99_queue_ns, b.stages.demand_p99_queue_ns);
  EXPECT_EQ(a.stages.demand_p99_wire_ns, b.stages.demand_p99_wire_ns);
  EXPECT_EQ(a.stages.demand_p99_stall_ns, b.stages.demand_p99_stall_ns);
  EXPECT_EQ(a.stages.demand_p99_service_ns, b.stages.demand_p99_service_ns);
  EXPECT_EQ(a.stages.demand_p99_total_ns, b.stages.demand_p99_total_ns);
  EXPECT_EQ(a.node_health_ewma_ns, b.node_health_ewma_ns);
  EXPECT_EQ(a.node_health_state, b.node_health_state);
  EXPECT_EQ(a.tier_pages, b.tier_pages);
}

void ExpectResultsEqual(const std::vector<RunResult>& a,
                        const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].finished, b[i].finished) << "app " << i;
    EXPECT_EQ(a[i].completion_ns, b[i].completion_ns) << "app " << i;
    EXPECT_EQ(a[i].accesses, b[i].accesses) << "app " << i;
    EXPECT_EQ(a[i].app_ops, b[i].app_ops) << "app " << i;
    EXPECT_EQ(a[i].ops_per_sec, b[i].ops_per_sec) << "app " << i;
    EXPECT_EQ(a[i].remote_access_latency.count(),
              b[i].remote_access_latency.count());
    EXPECT_EQ(a[i].remote_access_latency.Sum(),
              b[i].remote_access_latency.Sum());
    EXPECT_EQ(a[i].miss_latency.count(), b[i].miss_latency.count());
    EXPECT_EQ(a[i].miss_latency.Percentile(0.99),
              b[i].miss_latency.Percentile(0.99));
  }
}

// --- shard planner -----------------------------------------------------------

TEST(ShardPlan, HostsContiguousNodesRoundRobin) {
  const ShardPlan plan = BuildShardPlan(/*hosts=*/10, /*nodes=*/5,
                                        /*shards=*/4);
  ASSERT_EQ(plan.shards, 4u);
  // 10 hosts over 4 shards: blocks of 3,3,2,2, contiguous ids.
  EXPECT_EQ(plan.shard_hosts[0], (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(plan.shard_hosts[1], (std::vector<uint32_t>{3, 4, 5}));
  EXPECT_EQ(plan.shard_hosts[2], (std::vector<uint32_t>{6, 7}));
  EXPECT_EQ(plan.shard_hosts[3], (std::vector<uint32_t>{8, 9}));
  // 5 nodes round-robin: 0,4 -> s0; 1 -> s1; 2 -> s2; 3 -> s3.
  EXPECT_EQ(plan.shard_nodes[0], (std::vector<uint32_t>{0, 4}));
  EXPECT_EQ(plan.shard_nodes[1], (std::vector<uint32_t>{1}));
  for (size_t h = 0; h < 10; ++h) {
    EXPECT_EQ(plan.host_shard[h], h < 3 ? 0u : (h < 6 ? 1u : (h < 8 ? 2u : 3u)));
  }
  for (size_t n = 0; n < 5; ++n) {
    EXPECT_EQ(plan.node_shard[n], n % 4);
  }
}

TEST(ShardPlan, ClampsShardCount) {
  EXPECT_EQ(BuildShardPlan(4, 2, 0).shards, 1u);
  EXPECT_EQ(BuildShardPlan(4, 2, 100).shards, 4u);
  EXPECT_EQ(BuildShardPlan(2, 8, 100).shards, 8u);
  EXPECT_EQ(BuildShardPlan(0, 0, 3).shards, 1u);
}

TEST(ShardPlan, DonorOnlyShardIsLegal) {
  // 2 hosts / 4 nodes / 3 shards: shard 2 gets node 2 and no hosts.
  const ShardPlan plan = BuildShardPlan(2, 4, 3);
  EXPECT_TRUE(plan.shard_hosts[2].empty());
  EXPECT_EQ(plan.shard_nodes[2], (std::vector<uint32_t>{2}));
}

TEST(ShardPlan, FabricLookaheadIsBaseMinPlusWireTime) {
  FabricConfig fabric;
  fabric.base_min_ns = 2500;
  fabric.op_bytes = 4160;
  fabric.link_gbps = 56.0;
  // 4160 bytes * 8 / 56 gbps = 594.28... ns -> truncates to 594.
  EXPECT_EQ(FabricLookaheadNs(fabric), 2500u + 594u);

  FabricConfig degenerate;
  degenerate.base_min_ns = 0;
  degenerate.link_gbps = 0.0;
  EXPECT_EQ(FabricLookaheadNs(degenerate), 1u) << "window must stay nonzero";
}

// --- mailbox -----------------------------------------------------------------

TEST(SpscMailbox, DrainsInFifoOrderAcrossOverflow) {
  SpscMailbox mailbox(/*capacity_pow2=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    CrossShardOp op;
    op.seq = i;
    op.effect_ts = 1000 + i;
    mailbox.Push(op);
  }
  // Ring held 4; the rest spilled, and delivery is unaffected.
  EXPECT_EQ(mailbox.overflowed(), 6u);
  std::vector<CrossShardOp> out;
  mailbox.DrainTo(out);
  ASSERT_EQ(out.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].seq, i) << "per-sender FIFO must survive the spill";
  }
  EXPECT_TRUE(mailbox.Empty());
  // Once drained, the ring is usable again (no sticky overflow).
  CrossShardOp op;
  op.seq = 42;
  mailbox.Push(op);
  EXPECT_EQ(mailbox.overflowed(), 6u);
  out.clear();
  mailbox.DrainTo(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 42u);
}

TEST(SpscMailbox, CrossShardOpOrderBreaksTiesBySenderThenSeq) {
  CrossShardOp a, b;
  a.effect_ts = b.effect_ts = 5000;
  a.sender = 0;
  b.sender = 1;
  EXPECT_TRUE(CrossShardOpBefore(a, b));
  EXPECT_FALSE(CrossShardOpBefore(b, a));
  b.sender = 0;
  a.seq = 3;
  b.seq = 7;
  EXPECT_TRUE(CrossShardOpBefore(a, b));
  b.effect_ts = 4999;
  EXPECT_TRUE(CrossShardOpBefore(b, a)) << "time dominates sender/seq";
}

// --- shards=1 equivalence ----------------------------------------------------

// Acceptance criterion: shards=1 produces output byte-identical to the
// single-queue engine - same construction order, same seed draws, same
// stepping sequence.
TEST(ShardedCluster, SingleShardMatchesClusterBitExactly) {
  const ClusterConfig config = SmallCluster(3, 2);

  Cluster reference(config);
  std::vector<std::unique_ptr<AccessStream>> ref_streams;
  const std::vector<RunResult> ref_results =
      RunMixed(reference, 6000, ref_streams);

  ShardedClusterConfig sharded_config;
  sharded_config.base = config;
  sharded_config.shards = 1;
  ShardedCluster sharded(sharded_config);
  ASSERT_EQ(sharded.num_shards(), 1u);
  std::vector<std::unique_ptr<AccessStream>> sh_streams;
  const std::vector<RunResult> sh_results = RunMixed(sharded, 6000, sh_streams);

  ExpectResultsEqual(ref_results, sh_results);
  ExpectStatsEqual(reference.Stats(), sharded.Stats());
  for (size_t h = 0; h < reference.num_hosts(); ++h) {
    EXPECT_EQ(reference.host(h).counters().values(),
              sharded.host(h).counters().values())
        << "host " << h;
    EXPECT_EQ(reference.host_remote_latency(h).count(),
              sharded.host_remote_latency(h).count());
    EXPECT_EQ(reference.host_remote_latency(h).Sum(),
              sharded.host_remote_latency(h).Sum());
    EXPECT_EQ(reference.host_remote_latency(h).Percentile(0.99),
              sharded.host_remote_latency(h).Percentile(0.99));
  }
  // Vacuous-equality guard: the run must have done real remote work.
  EXPECT_GT(sharded.Stats().fabric_ops, 0u);
  // No mirrors at shards=1: the cross-shard path must not exist.
  EXPECT_EQ(sharded.Stats().totals.Get(counter::kCrossShardSent), 0u);
}

// --- shards>1 determinism ----------------------------------------------------

struct ShardedFingerprint {
  std::vector<std::map<std::string, uint64_t>> host_counters;
  std::vector<SimTimeNs> completions;
  std::vector<uint64_t> p99s;
  std::map<std::string, uint64_t> totals;
  std::vector<uint64_t> node_reads;
  std::vector<uint64_t> node_writes;
  uint64_t fabric_ops = 0;
  uint64_t windows_run = 0;

  bool operator==(const ShardedFingerprint&) const = default;
};

ShardedFingerprint FingerprintSharded(const ShardedClusterConfig& config,
                                      ClusterStats* stats_out = nullptr,
                                      SimTimeNs fail_at = 0,
                                      uint32_t fail_node = 0) {
  ShardedCluster cluster(config);
  if (fail_at != 0) {
    cluster.ScheduleNodeFailure(fail_node, fail_at);
  }
  std::vector<std::unique_ptr<AccessStream>> streams;
  const std::vector<RunResult> results = RunMixed(cluster, 6000, streams);
  ShardedFingerprint fp;
  for (size_t h = 0; h < cluster.num_hosts(); ++h) {
    fp.host_counters.push_back(cluster.host(h).counters().values());
    fp.completions.push_back(results[h].completion_ns);
    fp.p99s.push_back(cluster.host_remote_latency(h).Percentile(0.99));
  }
  const ClusterStats stats = cluster.Stats();
  fp.totals = stats.totals.values();
  fp.node_reads = stats.node_reads;
  fp.node_writes = stats.node_writes;
  fp.fabric_ops = stats.fabric_ops;
  fp.windows_run = cluster.windows_run();
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
  return fp;
}

// Acceptance criterion: same seed + same shard count => bit-identical
// ClusterStats across two runs, with real cross-shard traffic in flight.
TEST(ShardedCluster, SameSeedBitIdenticalAcrossRunsWithMirrors) {
  ShardedClusterConfig config;
  config.base = SmallCluster(4, 4);
  config.shards = 2;
  config.mirror_every = 3;

  ClusterStats first_stats, second_stats;
  const ShardedFingerprint first = FingerprintSharded(config, &first_stats);
  const ShardedFingerprint second = FingerprintSharded(config, &second_stats);
  EXPECT_TRUE(first == second) << "shards=2 run diverged between executions";
  ExpectStatsEqual(first_stats, second_stats);
  // The run must actually have crossed shards, or the test is vacuous.
  EXPECT_GT(first_stats.totals.Get(counter::kCrossShardSent), 0u);
  EXPECT_GT(first_stats.totals.Get(counter::kCrossShardApplied), 0u);
  EXPECT_LE(first_stats.totals.Get(counter::kCrossShardApplied),
            first_stats.totals.Get(counter::kCrossShardSent));
  EXPECT_GT(first.windows_run, 0u);
}

// Mailbox overflow changes telemetry, never results: a 1-slot ring (all
// spill) must produce the same stats as an ample ring.
TEST(ShardedCluster, OverflowPathIsResultInvariant) {
  ShardedClusterConfig ample;
  ample.base = SmallCluster(4, 4);
  ample.shards = 2;
  ample.mirror_every = 2;
  ample.mailbox_capacity = 4096;

  ShardedClusterConfig tiny = ample;
  tiny.mailbox_capacity = 1;

  ClusterStats ample_stats, tiny_stats;
  const ShardedFingerprint a = FingerprintSharded(ample, &ample_stats);
  const ShardedFingerprint b = FingerprintSharded(tiny, &tiny_stats);
  EXPECT_TRUE(a == b) << "ring capacity leaked into simulation results";
  ExpectStatsEqual(ample_stats, tiny_stats);
  // With a 1-slot ring and mirrors every 2nd miss, spills must occur
  // (checked indirectly: the identical stats prove delivery happened).
  EXPECT_GT(tiny_stats.totals.Get(counter::kCrossShardApplied), 0u);
}

// Satellite edge case: a failure event scheduled exactly on a window
// boundary (a multiple of window_ns) must fire deterministically and
// identically across runs.
TEST(ShardedCluster, EventExactlyOnWindowBoundaryIsDeterministic) {
  ShardedClusterConfig config;
  // 6 nodes / 2 shards = 3 donors per shard: with 2-way slab replication
  // a failure still leaves a repair replacement inside the shard.
  config.base = SmallCluster(4, 6);
  config.shards = 2;
  config.mirror_every = 4;

  // Probe the derived window and the run's span, then aim a failure
  // exactly at a window boundary in the middle of the measured phase.
  const SimTimeNs window = FabricLookaheadNs(config.base.fabric);
  const SimTimeNs boundary = (MidRunTime(config) / window) * window;
  ASSERT_EQ(boundary % window, 0u);
  ASSERT_GT(boundary, 0u);

  ClusterStats first_stats, second_stats;
  const ShardedFingerprint first =
      FingerprintSharded(config, &first_stats, boundary, /*fail_node=*/1);
  const ShardedFingerprint second =
      FingerprintSharded(config, &second_stats, boundary, /*fail_node=*/1);
  EXPECT_TRUE(first == second) << "boundary-timed failure diverged";
  ExpectStatsEqual(first_stats, second_stats);
  EXPECT_EQ(first_stats.totals.Get(counter::kNodeFailures), 1u);
  EXPECT_GT(first_stats.totals.Get(counter::kSlabRepairs), 0u);
}

// Satellite edge case: a shard with donor nodes but no hosts still runs
// its scenario events (via the post-barrier catch-up drain) and the whole
// cluster stays deterministic.
TEST(ShardedCluster, DonorOnlyShardFiresScenarioEvents) {
  ShardedClusterConfig config;
  config.base = SmallCluster(2, 4);
  config.shards = 3;  // plan: shard 2 owns node 2, no hosts
  config.mirror_every = 2;

  ShardedCluster probe(config);
  ASSERT_EQ(probe.num_shards(), 3u);
  ASSERT_TRUE(probe.plan().shard_hosts[2].empty());
  ASSERT_EQ(probe.plan().shard_nodes[2], (std::vector<uint32_t>{2}));

  // Fail the donor-only shard's node mid-run: no repairs (no home-shard
  // hosts hold slabs there), but the failure itself must land - via the
  // hostless shard's post-barrier catch-up drain.
  const SimTimeNs fail_at = MidRunTime(config);
  ClusterStats first_stats, second_stats;
  const ShardedFingerprint first =
      FingerprintSharded(config, &first_stats, fail_at, /*fail_node=*/2);
  const ShardedFingerprint second =
      FingerprintSharded(config, &second_stats, fail_at, /*fail_node=*/2);
  EXPECT_TRUE(first == second);
  ExpectStatsEqual(first_stats, second_stats);
  EXPECT_EQ(first_stats.totals.Get(counter::kNodeFailures), 1u);
  EXPECT_EQ(first_stats.totals.Get(counter::kSlabRepairs), 0u)
      << "nobody maps slabs on a donor-only shard's node";
}

// Satellite edge case: an app whose accesses are all zero-latency local
// hits (footprint fits in frames, no remote traffic) must terminate and
// stay deterministic - the window fast-forward may not wedge on
// same-timestamp steps.
TEST(ShardedCluster, ZeroLatencyLocalOnlyAppsTerminate) {
  ShardedClusterConfig config;
  config.base = SmallCluster(2, 2);
  config.shards = 2;

  auto run_once = [&config] {
    ShardedCluster cluster(config);
    std::vector<std::unique_ptr<AccessStream>> streams;
    std::vector<ClusterAppSpec> specs;
    std::vector<Pid> pids;
    for (size_t h = 0; h < cluster.num_hosts(); ++h) {
      // Tiny resident set: after the first touches, every access is a
      // local hit with zero added latency.
      const Pid pid = cluster.host(h).CreateProcess(64);
      pids.push_back(pid);
      streams.push_back(
          std::make_unique<SequentialStream>(64, /*think_ns=*/0));
      RunConfig run;
      run.total_accesses = 5000;
      run.start_time_ns = 0;  // no warm-up: start at t=0, window index 0
      run.seed = 9 + h;
      specs.push_back({h, pids[h], streams[h].get(), run});
    }
    std::vector<RunResult> results = cluster.Run(std::move(specs));
    return std::pair<std::vector<RunResult>, uint64_t>(std::move(results),
                                                       cluster.windows_run());
  };
  auto [first, first_windows] = run_once();
  auto [second, second_windows] = run_once();
  ASSERT_EQ(first.size(), 2u);
  for (const RunResult& result : first) {
    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.accesses, 5000u);
  }
  ExpectResultsEqual(first, second);
  EXPECT_EQ(first_windows, second_windows);
}

// --- guard rails -------------------------------------------------------------

TEST(ShardedCluster, RejectsTraceRecording) {
  ShardedClusterConfig config;
  config.base = SmallCluster(2, 2);
  config.base.trace.enabled = true;
  EXPECT_THROW(ShardedCluster{config}, std::invalid_argument);
}

TEST(ShardedCluster, RunIsOneShot) {
  ShardedClusterConfig config;
  config.base = SmallCluster(1, 1);
  ShardedCluster cluster(config);
  std::vector<std::unique_ptr<AccessStream>> streams;
  RunMixed(cluster, 500, streams);
  EXPECT_THROW(cluster.Run({}), std::logic_error);
}

}  // namespace
}  // namespace leap
