#include "src/core/eager_eviction.h"

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(PrefetchFifoLruList, StartsEmpty) {
  PrefetchFifoLruList list;
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.PopOldest().has_value());
}

TEST(PrefetchFifoLruList, FifoOrderUnderPressure) {
  PrefetchFifoLruList list;
  list.OnPrefetched(10);
  list.OnPrefetched(20);
  list.OnPrefetched(30);
  EXPECT_EQ(list.PopOldest(), 10u);
  EXPECT_EQ(list.PopOldest(), 20u);
  EXPECT_EQ(list.PopOldest(), 30u);
  EXPECT_FALSE(list.PopOldest().has_value());
}

TEST(PrefetchFifoLruList, ConsumedPagesLeaveTheList) {
  PrefetchFifoLruList list;
  list.OnPrefetched(1);
  list.OnPrefetched(2);
  list.OnPrefetched(3);
  EXPECT_TRUE(list.OnConsumed(2));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(list.Contains(2));
  EXPECT_EQ(list.PopOldest(), 1u);
  EXPECT_EQ(list.PopOldest(), 3u);
}

TEST(PrefetchFifoLruList, ConsumeUnknownSlotIsFalse) {
  PrefetchFifoLruList list;
  list.OnPrefetched(5);
  EXPECT_FALSE(list.OnConsumed(99));
  EXPECT_EQ(list.size(), 1u);
}

TEST(PrefetchFifoLruList, DuplicateInsertKeepsOriginalPosition) {
  PrefetchFifoLruList list;
  list.OnPrefetched(7);
  list.OnPrefetched(8);
  list.OnPrefetched(7);  // duplicate: no reordering
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopOldest(), 7u);
}

TEST(PrefetchFifoLruList, ClearEmptiesEverything) {
  PrefetchFifoLruList list;
  for (SwapSlot s = 0; s < 100; ++s) {
    list.OnPrefetched(s);
  }
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.Contains(50));
}

TEST(PrefetchFifoLruList, InterleavedOperationsStayConsistent) {
  PrefetchFifoLruList list;
  for (SwapSlot s = 0; s < 1000; ++s) {
    list.OnPrefetched(s);
    if (s % 3 == 0) {
      list.OnConsumed(s / 2);
    }
    if (s % 7 == 0) {
      list.PopOldest();
    }
  }
  // Drain and check strictly increasing order (FIFO of survivors).
  SwapSlot prev = 0;
  bool first = true;
  while (auto slot = list.PopOldest()) {
    if (!first) {
      EXPECT_GT(*slot, prev);
    }
    prev = *slot;
    first = false;
  }
}

}  // namespace
}  // namespace leap
