// End-to-end runs on small configurations: completion, throughput, and
// multi-app interleaving.
#include "src/runtime/app_runner.h"

#include <gtest/gtest.h>

#include "src/runtime/presets.h"
#include "src/workload/app_models.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

TEST(AppRunner, CompletesRequestedAccesses) {
  Machine machine(LeapVmmConfig(2048, 1));
  const Pid pid = machine.CreateProcess(512);
  SequentialStream stream(4096, 200);
  RunConfig config;
  config.total_accesses = 20000;
  const RunResult result = RunApp(machine, pid, stream, config);
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.accesses, 20000u);
  EXPECT_GT(result.completion_ns, 0u);
  EXPECT_EQ(result.access_latency.count(), 20000u);
}

TEST(AppRunner, TimeCapMarksUnfinished) {
  Machine machine(DiskSwapConfig(Medium::kHdd, PrefetchKind::kReadAhead,
                                 1024, 2));
  const Pid pid = machine.CreateProcess(256);
  RandomStream stream(8192, 100);
  RunConfig config;
  config.total_accesses = 10'000'000;  // far more than the cap allows
  config.time_cap_ns = 50 * kNsPerMs;
  const RunResult result = RunApp(machine, pid, stream, config);
  EXPECT_FALSE(result.finished);
  EXPECT_LT(result.accesses, config.total_accesses);
}

TEST(AppRunner, OpsPerSecondComputed) {
  Machine machine(LeapVmmConfig(2048, 3));
  const Pid pid = machine.CreateProcess(0);
  SequentialStream stream(1024, 1000);
  RunConfig config;
  config.total_accesses = 5000;
  const RunResult result = RunApp(machine, pid, stream, config);
  EXPECT_GT(result.ops_per_sec, 0.0);
  EXPECT_EQ(result.app_ops, 5000u);
}

TEST(AppRunner, RemoteLatencyOnlyCountsNonResidentAccesses) {
  Machine machine(LeapVmmConfig(8192, 4));
  const Pid pid = machine.CreateProcess(0);  // everything fits
  SequentialStream stream(1024, 100);
  RunConfig config;
  config.total_accesses = 5000;
  const RunResult result = RunApp(machine, pid, stream, config);
  // No memory pressure: no remote accesses at all.
  EXPECT_EQ(result.remote_access_latency.count(), 0u);
}

TEST(AppRunner, ConcurrentAppsInterleaveOnSharedMachine) {
  Machine machine(LeapVmmConfig(4096, 5));
  const Pid a = machine.CreateProcess(256);
  const Pid b = machine.CreateProcess(256);
  auto wl_a = MakePowerGraph(2048, 10);
  auto wl_b = MakeMemcached(2048, 11);
  RunConfig config;
  config.total_accesses = 30000;
  std::vector<MultiAppSpec> specs = {{a, wl_a.get(), config},
                                     {b, wl_b.get(), config}};
  const auto results = RunAppsConcurrently(machine, std::move(specs));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].finished);
  EXPECT_TRUE(results[1].finished);
  EXPECT_EQ(results[0].accesses, 30000u);
  EXPECT_EQ(results[1].accesses, 30000u);
}

TEST(AppRunner, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine machine(LeapVmmConfig(2048, 7));
    const Pid pid = machine.CreateProcess(512);
    auto stream = MakeVoltDb(4096, 13);
    RunConfig config;
    config.total_accesses = 20000;
    config.seed = 21;
    return RunApp(machine, pid, *stream, config).completion_ns;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace leap
