#include "src/stats/histogram.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/rng.h"

namespace leap {
namespace {

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(4300);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 4300.0);
  // Bucketed value must be within the sub-bucket relative error (~1.6%).
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 4300.0, 4300.0 * 0.02);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 64; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 63u);
  const uint64_t p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 30u);
  EXPECT_LE(p50, 33u);
}

TEST(Histogram, MeanIsExactRegardlessOfBucketing) {
  Histogram h;
  h.Record(1000000);
  h.Record(3000000);
  EXPECT_DOUBLE_EQ(h.Mean(), 2000000.0);
}

TEST(Histogram, PercentilesMatchSortedDataWithinError) {
  Rng rng(77);
  Histogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = 100 + rng.NextU64(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double exact = static_cast<double>(
        values[static_cast<size_t>(q * (values.size() - 1))]);
    const double approx = static_cast<double>(h.Percentile(q));
    EXPECT_NEAR(approx, exact, exact * 0.03 + 2) << "q=" << q;
  }
}

TEST(Histogram, RecordNWeightsProperly) {
  Histogram h;
  h.RecordN(10, 99);
  h.RecordN(1000000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LT(h.Percentile(0.5), 20u);
  EXPECT_GT(h.Percentile(0.999), 900000u);
}

TEST(Histogram, FractionAtOrBelow) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v * 1000);
  }
  EXPECT_NEAR(h.FractionAtOrBelow(50 * 1000), 0.5, 0.03);
  EXPECT_DOUBLE_EQ(h.FractionAtOrBelow(200 * 1000), 1.0);
  EXPECT_NEAR(h.FractionAtOrBelow(1), 0.0, 0.01);
}

TEST(Histogram, MergeCombinesPopulations) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 1000; ++i) {
    a.Record(100);
    b.Record(10000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_NEAR(a.Mean(), (100.0 + 10000.0) / 2.0, 1.0);
  EXPECT_LT(a.Percentile(0.25), 200u);
  EXPECT_GT(a.Percentile(0.75), 9000u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(Histogram, HugeValuesDoNotOverflow) {
  Histogram h;
  h.Record(~0ULL >> 1);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.Percentile(1.0), 1ULL << 60);
}

TEST(Histogram, MonotonePercentiles) {
  Rng rng(88);
  Histogram h;
  for (int i = 0; i < 10000; ++i) {
    h.Record(rng.NextU64(1 << 30));
  }
  uint64_t prev = 0;
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const uint64_t v = h.Percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace leap
