// FaultPlan / FaultInjector tests: builder validation (value errors throw
// at the call site), build-time expansion of GrayRamp and Flap into the
// five primitive kinds, target-id validation against a concrete cluster,
// and the two determinism contracts the injector promises - same seed +
// same plan is bit-identical, and an empty plan is byte-identical to no
// plan at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/fault_injector.h"
#include "src/runtime/cluster.h"
#include "src/runtime/presets.h"
#include "src/workload/cluster_mix.h"

namespace leap {
namespace {

constexpr size_t kFootprint = 2048;

ClusterConfig SmallCluster(size_t hosts, size_t nodes) {
  ClusterConfig config;
  config.hosts = hosts;
  config.nodes = nodes;
  config.node_capacity_slabs = 4096;
  config.host = LeapVmmConfig(/*total_frames=*/4096, /*seed=*/42);
  config.host.host_agent.slab_pages = 64;
  config.seed = 42;
  return config;
}

struct MixedRun {
  std::vector<RunResult> results;
  std::vector<std::unique_ptr<AccessStream>> streams;
  SimTimeNs run_start = 0;  // absolute; completions are elapsed from here
};

MixedRun RunMixed(Cluster& cluster, size_t accesses_per_host) {
  MixedRun out;
  std::vector<ClusterAppSpec> specs;
  SimTimeNs warm_end = 0;
  std::vector<Pid> pids;
  for (size_t h = 0; h < cluster.num_hosts(); ++h) {
    const Pid pid = cluster.host(h).CreateProcess(kFootprint / 2);
    pids.push_back(pid);
    warm_end = WarmUp(cluster.host(h), pid, kFootprint, warm_end);
    out.streams.push_back(MakeClusterMixStream(h, kFootprint));
  }
  out.run_start = warm_end + 10 * kNsPerMs;
  for (size_t h = 0; h < cluster.num_hosts(); ++h) {
    RunConfig run;
    run.total_accesses = accesses_per_host;
    run.start_time_ns = out.run_start;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], out.streams[h].get(), run});
  }
  out.results = cluster.Run(std::move(specs));
  return out;
}

// --- builder validation ------------------------------------------------------

TEST(FaultPlan, BuildersRejectValueErrorsEagerly) {
  FaultPlan plan;
  EXPECT_THROW(plan.CrashGroup({}, kNsPerMs), std::invalid_argument);
  EXPECT_THROW(plan.Gray(0, /*stretch=*/0.0, kNsPerMs),
               std::invalid_argument);
  EXPECT_THROW(plan.Gray(0, /*stretch=*/-2.0, kNsPerMs),
               std::invalid_argument);
  EXPECT_THROW(plan.Gray(0, 8.0, /*at=*/kNsPerMs, /*until=*/kNsPerMs),
               std::invalid_argument);
  EXPECT_THROW(plan.GrayRamp(0, 0.0, 8.0, kNsPerMs, 2 * kNsPerMs),
               std::invalid_argument);
  EXPECT_THROW(plan.GrayRamp(0, 2.0, 8.0, 2 * kNsPerMs, kNsPerMs),
               std::invalid_argument);
  EXPECT_THROW(plan.GrayRamp(0, 2.0, 8.0, kNsPerMs, 2 * kNsPerMs,
                             /*steps=*/0),
               std::invalid_argument);
  EXPECT_THROW(plan.DelaySpike(0, /*extra_ns=*/0, kNsPerMs),
               std::invalid_argument);
  EXPECT_THROW(plan.DelaySpike(0, kNsPerUs, /*at=*/2 * kNsPerMs,
                               /*until=*/kNsPerMs),
               std::invalid_argument);
  EXPECT_THROW(plan.Flap(0, /*cycles=*/0, kNsPerMs, kNsPerMs, kNsPerMs),
               std::invalid_argument);
  EXPECT_THROW(plan.Flap(0, 2, kNsPerMs, /*down_ns=*/0, kNsPerMs),
               std::invalid_argument);
  EXPECT_THROW(plan.Flap(0, 2, kNsPerMs, kNsPerMs, /*up_ns=*/0),
               std::invalid_argument);
  // Every rejected call must have left the plan untouched.
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, ValidateRejectsUnknownNodeIds) {
  FaultPlan plan;
  plan.Crash(7, kNsPerMs);
  EXPECT_THROW(plan.Validate(/*node_count=*/2), std::out_of_range);
  plan = FaultPlan{};
  plan.CrashGroup({0, 1, 5}, kNsPerMs);
  EXPECT_THROW(plan.Validate(/*node_count=*/4), std::out_of_range);
  plan.Validate(/*node_count=*/6);  // all ids in range: no throw
}

TEST(FaultInjector, ArmRevalidatesAgainstTheConcreteCluster) {
  Cluster cluster(SmallCluster(1, 2));
  FaultPlan plan;
  plan.Gray(3, 8.0, kNsPerMs);  // node 3 of a 2-node cluster
  EXPECT_THROW(FaultInjector::Arm(cluster, plan), std::out_of_range);
}

// --- build-time expansion ----------------------------------------------------

TEST(FaultPlan, GrayRampExpandsIntoStepsPlusRestore) {
  FaultPlan plan;
  const SimTimeNs at = 10 * kNsPerMs;
  const SimTimeNs until = 50 * kNsPerMs;
  plan.GrayRamp(1, /*from=*/2.0, /*to=*/16.0, at, until, /*steps=*/4);
  ASSERT_EQ(plan.size(), 5u);  // 4 steps + the restore event
  const auto& events = plan.events();
  for (const FaultEvent& ev : events) {
    EXPECT_EQ(ev.kind, FaultKind::kGray);
    ASSERT_EQ(ev.nodes.size(), 1u);
    EXPECT_EQ(ev.nodes[0], 1u);
  }
  EXPECT_EQ(events.front().at, at);
  EXPECT_DOUBLE_EQ(events.front().stretch, 2.0);
  EXPECT_DOUBLE_EQ(events[3].stretch, 16.0);  // last step hits `to`
  // The restore event clears the stretch exactly at `until`.
  EXPECT_EQ(events.back().at, until);
  EXPECT_DOUBLE_EQ(events.back().stretch, 1.0);
  // Steps ascend in both time and stretch (a ramp, not a shuffle).
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_GT(events[i].at, events[i - 1].at);
    EXPECT_GT(events[i].stretch, events[i - 1].stretch);
  }
}

TEST(FaultPlan, FlapExpandsIntoCrashRecoverPairs) {
  FaultPlan plan;
  const SimTimeNs at = 5 * kNsPerMs;
  const SimTimeNs down = 2 * kNsPerMs;
  const SimTimeNs up = 3 * kNsPerMs;
  plan.Flap(2, /*cycles=*/3, at, down, up);
  ASSERT_EQ(plan.size(), 6u);
  const auto& events = plan.events();
  for (size_t cycle = 0; cycle < 3; ++cycle) {
    const FaultEvent& crash = events[cycle * 2];
    const FaultEvent& recover = events[cycle * 2 + 1];
    EXPECT_EQ(crash.kind, FaultKind::kCrash);
    EXPECT_EQ(recover.kind, FaultKind::kRecover);
    EXPECT_EQ(crash.nodes[0], 2u);
    EXPECT_EQ(recover.nodes[0], 2u);
    EXPECT_EQ(crash.at, at + cycle * (down + up));
    EXPECT_EQ(recover.at, crash.at + down);
  }
}

// --- determinism under injected faults --------------------------------------

struct ClusterFingerprint {
  std::vector<std::map<std::string, uint64_t>> host_counters;
  std::vector<SimTimeNs> completions;
  std::vector<uint64_t> p99s;
  uint64_t fabric_ops = 0;
  std::vector<uint64_t> node_reads;
  std::vector<size_t> node_slabs;
  std::vector<NodeHealth> health;
  std::map<std::string, uint64_t> totals;  // includes scenario counters
  uint64_t node_failures = 0;
  uint64_t gray_events = 0;

  bool operator==(const ClusterFingerprint&) const = default;
};

ClusterFingerprint FingerprintWithPlan(const ClusterConfig& config,
                                       const FaultPlan* plan,
                                       size_t accesses) {
  Cluster cluster(config);
  if (plan != nullptr) {
    FaultInjector::Arm(cluster, *plan);
  }
  const MixedRun run = RunMixed(cluster, accesses);
  ClusterFingerprint fp;
  for (size_t h = 0; h < cluster.num_hosts(); ++h) {
    fp.host_counters.push_back(cluster.host(h).counters().values());
    fp.completions.push_back(run.results[h].completion_ns);
    fp.p99s.push_back(cluster.host_remote_latency(h).Percentile(0.99));
  }
  const ClusterStats stats = cluster.Stats();
  fp.fabric_ops = stats.fabric_ops;
  fp.node_reads = stats.node_reads;
  fp.node_slabs = stats.node_slabs;
  fp.health = stats.node_health_state;
  fp.totals = stats.totals.values();
  fp.node_failures = stats.totals.Get(counter::kNodeFailures);
  fp.gray_events = stats.totals.Get(counter::kGrayFaultEvents);
  return fp;
}

// Same seed + same active plan (crash, gray, flap, spike all firing, with
// the full mitigation stack enabled) must be bit-identical: mitigation
// decisions are driven off deterministic state only.
TEST(FaultInjector, SameSeedSamePlanBitIdentical) {
  ClusterConfig config = SmallCluster(3, 4);
  config.resilience.enabled = true;
  config.health_monitor_enabled = true;
  config.health.min_samples = 16;
  // Calibrate the injection window off an unfaulted run (fault times are
  // absolute; the workload's span depends on config and scale).
  SimTimeNs run_start = 0;
  SimTimeNs span = 0;
  {
    Cluster calib(config);
    const MixedRun c = RunMixed(calib, /*accesses_per_host=*/8000);
    run_start = c.run_start;
    for (const RunResult& r : c.results) {
      span = std::max(span, r.completion_ns);
    }
  }
  ASSERT_GT(span, 0u);
  FaultPlan plan;
  plan.Gray(1, 16.0, run_start + span / 5)
      .Crash(3, run_start + span / 3)
      .Flap(2, /*cycles=*/2, run_start + span / 2, span / 20, span / 20)
      .DelaySpike(0, 100 * kNsPerUs, run_start + span / 4,
                  run_start + span / 3);
  const ClusterFingerprint first =
      FingerprintWithPlan(config, &plan, /*accesses=*/8000);
  const ClusterFingerprint second =
      FingerprintWithPlan(config, &plan, /*accesses=*/8000);
  EXPECT_EQ(first.host_counters, second.host_counters);
  EXPECT_TRUE(first == second) << "fault-injected cluster state diverged";
  // Vacuous-run guards: the workload ran and the plan actually fired.
  for (const auto& counters : first.host_counters) {
    EXPECT_GT(counters.at("remote_reads"), 0u);
  }
  EXPECT_GE(first.node_failures, 3u);  // the crash + 2 flap cycles
  EXPECT_GE(first.gray_events, 1u);
}

// An armed-but-empty plan must change nothing: byte-identical stats to a
// run with no injector involvement at all.
TEST(FaultInjector, EmptyPlanIsIdenticalToNoPlan) {
  const ClusterConfig config = SmallCluster(2, 2);
  const FaultPlan empty;
  const ClusterFingerprint with_empty =
      FingerprintWithPlan(config, &empty, /*accesses=*/6000);
  const ClusterFingerprint without =
      FingerprintWithPlan(config, nullptr, /*accesses=*/6000);
  EXPECT_TRUE(with_empty == without)
      << "arming an empty FaultPlan perturbed the run";
}

// A correlated crash of a whole replica domain loses data; the surviving
// probe-tag count quantifies it. A single-node crash must lose nothing:
// the second replica is the repair source.
TEST(FaultInjector, CorrelatedCrashLosesDataSingleCrashDoesNot) {
  auto tags_lost_with_group = [](std::vector<uint32_t> group) {
    // Replicas=2 across 4 nodes: a single crash always leaves a repair
    // source, while a two-node correlated domain strands every slab whose
    // replica set was exactly that pair (2048 slots = 32 slabs, plenty of
    // pairs land on {1, 2} under the deterministic placement).
    ClusterConfig config = SmallCluster(1, 4);
    config.host.host_agent.replicas = 2;
    Cluster cluster(config);
    FaultPlan plan;
    if (group.size() == 1) {
      plan.Crash(group[0], kNsPerMs);
    } else {
      plan.CrashGroup(std::move(group), kNsPerMs);
    }
    FaultInjector::Arm(cluster, plan);

    HostAgent* agent = cluster.host(0).host_agent();
    Rng tag_rng(7);
    const SwapSlot probe_slots = 2048;
    const auto probe_tag = [](SwapSlot slot) {
      return slot * 2654435761u + 1;
    };
    for (SwapSlot slot = 0; slot < probe_slots; ++slot) {
      agent->WriteTag(slot, probe_tag(slot), /*now=*/0, tag_rng);
    }
    cluster.events().RunUntil(2 * kNsPerMs);  // crash + repair fire
    size_t lost = 0;
    for (SwapSlot slot = 0; slot < probe_slots; ++slot) {
      if (agent->ReadTag(slot) != std::optional<uint64_t>(probe_tag(slot))) {
        ++lost;
      }
    }
    return lost;
  };
  EXPECT_EQ(tags_lost_with_group({1}), 0u);
  EXPECT_GT(tags_lost_with_group({1, 2}), 0u);
}

}  // namespace
}  // namespace leap
