// Workload generators: primitive patterns, phase mixing, app models
// (validated against the paper's Figure 3 characterization), trace replay.
#include <gtest/gtest.h>

#include <map>

#include "src/workload/app_models.h"
#include "src/workload/patterns.h"
#include "src/workload/phase_mix.h"
#include "src/workload/trace.h"

namespace leap {
namespace {

// Classifies delta windows like the paper's Figure 3: a window is
// "sequential" when all deltas are +1, "stride" when all deltas equal the
// first (non-1) delta, else "other".
struct PatternFractions {
  double sequential = 0;
  double stride = 0;
  double other = 0;
};

PatternFractions ClassifyWindows(AccessStream& stream, size_t window,
                                 size_t samples, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vpn> addrs;
  addrs.reserve(samples + window);
  for (size_t i = 0; i < samples + window; ++i) {
    addrs.push_back(stream.Next(rng).vpn);
  }
  size_t seq = 0;
  size_t stride = 0;
  size_t other = 0;
  for (size_t i = 0; i + window < addrs.size(); ++i) {
    bool all_seq = true;
    bool all_stride = true;
    const PageDelta first = static_cast<PageDelta>(addrs[i + 1]) -
                            static_cast<PageDelta>(addrs[i]);
    for (size_t k = 1; k < window; ++k) {
      const PageDelta d = static_cast<PageDelta>(addrs[i + k]) -
                          static_cast<PageDelta>(addrs[i + k - 1]);
      all_seq = all_seq && d == 1;
      all_stride = all_stride && d == first;
    }
    if (all_seq) {
      ++seq;
    } else if (all_stride && first != 0) {
      ++stride;
    } else {
      ++other;
    }
  }
  const double total = static_cast<double>(seq + stride + other);
  return {seq / total, stride / total, other / total};
}

TEST(SequentialStream, WrapsAroundFootprint) {
  SequentialStream s(4);
  Rng rng(1);
  EXPECT_EQ(s.Next(rng).vpn, 0u);
  EXPECT_EQ(s.Next(rng).vpn, 1u);
  EXPECT_EQ(s.Next(rng).vpn, 2u);
  EXPECT_EQ(s.Next(rng).vpn, 3u);
  EXPECT_EQ(s.Next(rng).vpn, 0u);
}

TEST(StrideStream, StridesAndRotatesLane) {
  StrideStream s(100, 10);
  Rng rng(1);
  EXPECT_EQ(s.Next(rng).vpn, 0u);
  EXPECT_EQ(s.Next(rng).vpn, 10u);
  for (int i = 0; i < 7; ++i) {
    s.Next(rng);
  }
  // After covering one lane, it moves to the next residue class.
  const Vpn next = s.Next(rng).vpn;
  EXPECT_LT(next, 100u);
}

TEST(RandomStream, StaysInFootprint) {
  RandomStream s(64);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(s.Next(rng).vpn, 64u);
  }
}

TEST(PhaseMix, RespectesFootprint) {
  PhaseMixConfig config;
  config.footprint_pages = 128;
  config.phases.push_back(
      PhaseSpec{PhaseSpec::Kind::kSequential, 1.0, 8, 32, 0, 0, 0.1, 0.2});
  config.phases.push_back(
      PhaseSpec{PhaseSpec::Kind::kRandom, 1.0, 4, 16, 0, 0, 0.0, 0.0});
  PhaseMixStream stream(config, 3);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(stream.Next(rng).vpn, 128u);
  }
}

TEST(PhaseMix, OpBoundariesHonorCadence) {
  PhaseMixConfig config;
  config.footprint_pages = 128;
  config.accesses_per_op = 5;
  config.phases.push_back(
      PhaseSpec{PhaseSpec::Kind::kRandom, 1.0, 8, 16, 0, 0, 0.0, 0.0});
  PhaseMixStream stream(config, 4);
  Rng rng(4);
  int ops = 0;
  for (int i = 0; i < 500; ++i) {
    ops += stream.Next(rng).op_end ? 1 : 0;
  }
  EXPECT_EQ(ops, 100);
}

TEST(PhaseMix, ThinkTimeWithinBounds) {
  PhaseMixConfig config;
  config.footprint_pages = 64;
  config.think_min_ns = 100;
  config.think_max_ns = 200;
  config.phases.push_back(
      PhaseSpec{PhaseSpec::Kind::kSequential, 1.0, 8, 16, 0, 0, 0.0, 0.0});
  PhaseMixStream stream(config, 5);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const MemOp op = stream.Next(rng);
    EXPECT_GE(op.think_ns, 100u);
    EXPECT_LE(op.think_ns, 200u);
  }
}

// --- Figure 3 shape checks ---------------------------------------------------

TEST(AppModels, MemcachedIsOverwhelminglyIrregular) {
  auto stream = MakeMemcached(kMemcachedPages, 42);
  const auto f = ClassifyWindows(*stream, 8, 50000, 1);
  // Paper: ~96% irregular for Memcached.
  EXPECT_GT(f.other, 0.85);
}

TEST(AppModels, NumPyIsMostlySequentialOrStride) {
  auto stream = MakeNumPy(kNumPyPages, 42);
  const auto f = ClassifyWindows(*stream, 2, 50000, 2);
  EXPECT_GT(f.sequential + f.stride, 0.6);
}

TEST(AppModels, VoltDbIsMajorityIrregular) {
  auto stream = MakeVoltDb(kVoltDbPages, 42);
  const auto f = ClassifyWindows(*stream, 4, 50000, 3);
  // Paper section 5.3.3: ~69% irregular.
  EXPECT_GT(f.other, 0.5);
  EXPECT_LT(f.other, 0.9);
}

TEST(AppModels, WindowTwoHasNoOtherCategoryByConstruction) {
  // Paper section 2.3: with X = 2 every non-sequential delta counts as a
  // stride, so "other" is structurally empty at window 2.
  auto stream = MakePowerGraph(kPowerGraphPages, 42);
  const auto f = ClassifyWindows(*stream, 2, 50000, 4);
  EXPECT_LT(f.other, 0.01);
}

TEST(AppModels, PowerGraphHasAllThreePatternKinds) {
  auto stream = MakePowerGraph(kPowerGraphPages, 42);
  const auto f = ClassifyWindows(*stream, 4, 50000, 4);
  EXPECT_GT(f.sequential, 0.2);
  EXPECT_GT(f.other, 0.1);
  EXPECT_GT(f.stride, 0.02);
}

TEST(AppModels, StrictWindowsDecayFasterThanMajorityWindows) {
  // The paper's core observation: strict pattern fractions collapse as the
  // window grows from 2 to 8 because transient interruptions break them.
  auto stream = MakePowerGraph(kPowerGraphPages, 42);
  const auto w2 = ClassifyWindows(*stream, 2, 50000, 5);
  auto stream2 = MakePowerGraph(kPowerGraphPages, 42);
  const auto w8 = ClassifyWindows(*stream2, 8, 50000, 5);
  EXPECT_LT(w8.sequential, w2.sequential);
}

TEST(AppModels, FootprintsMatchSpec) {
  for (const auto& app : kApps) {
    auto stream = app.make(app.footprint_pages, 7);
    EXPECT_EQ(stream->footprint_pages(), app.footprint_pages);
    EXPECT_EQ(stream->name(), app.name);
  }
}

// --- Trace record/replay -----------------------------------------------------

TEST(Trace, CaptureAndReplayIdentical) {
  auto stream = MakePowerGraph(1024, 9);
  Rng rng(9);
  const Trace trace = Trace::Capture(*stream, 1000, rng);
  ASSERT_EQ(trace.size(), 1000u);
  TraceReplayStream replay(trace);
  Rng unused(0);
  for (size_t i = 0; i < 1000; ++i) {
    const MemOp& expected = trace.ops()[i];
    const MemOp actual = replay.Next(unused);
    ASSERT_EQ(actual.vpn, expected.vpn);
    ASSERT_EQ(actual.write, expected.write);
    ASSERT_EQ(actual.think_ns, expected.think_ns);
  }
}

TEST(Trace, ReplayWrapsAround) {
  Trace trace;
  trace.Append(MemOp{1, false, 10, true});
  trace.Append(MemOp{2, false, 10, true});
  TraceReplayStream replay(trace);
  Rng unused(0);
  EXPECT_EQ(replay.Next(unused).vpn, 1u);
  EXPECT_EQ(replay.Next(unused).vpn, 2u);
  EXPECT_EQ(replay.Next(unused).vpn, 1u);
  EXPECT_EQ(replay.footprint_pages(), 3u);
}

TEST(Trace, FileRoundTrip) {
  Trace trace;
  trace.Append(MemOp{100, true, 250, false});
  trace.Append(MemOp{200, false, 0, true});
  const std::string path = ::testing::TempDir() + "/leap_trace_test.txt";
  ASSERT_TRUE(trace.SaveTo(path));
  const auto loaded = Trace::LoadFrom(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->ops()[0].vpn, 100u);
  EXPECT_TRUE(loaded->ops()[0].write);
  EXPECT_EQ(loaded->ops()[0].think_ns, 250u);
  EXPECT_FALSE(loaded->ops()[0].op_end);
  EXPECT_TRUE(loaded->ops()[1].op_end);
}

TEST(Trace, LoadMissingFileFails) {
  EXPECT_FALSE(Trace::LoadFrom("/nonexistent/path/foo.txt").has_value());
}

}  // namespace
}  // namespace leap
