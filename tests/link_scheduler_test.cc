// Pluggable per-link fabric schedulers: FIFO parity, strict demand
// priority, DRR weighted fairness and work conservation, the per-link
// repair-bandwidth cap, and same-seed determinism of scheduler decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/cluster/fabric.h"
#include "src/cluster/link_scheduler.h"

namespace leap {
namespace {

// Deterministic base latency: stddev 0 collapses the Normal sample onto
// its mean, so completion times are exact functions of the op sequence.
// Congestion is disabled unless a test opts in.
FabricConfig FlatConfig(LinkSchedulerKind kind) {
  FabricConfig config;
  config.base_mean_ns = 1000;
  config.base_stddev_ns = 0;
  config.base_min_ns = 0;
  config.congestion_free_bytes = 1ULL << 40;
  config.sched.kind = kind;
  return config;
}

IoRequest Op(uint32_t host, IoClass cls, Pid tenant = 1) {
  IoRequest req;
  req.slot = 0;
  req.host = host;
  req.tenant = tenant;
  req.cls = cls;
  return req;
}

// ---- FIFO parity -----------------------------------------------------------

TEST(LinkScheduler, FifoParityBitIdenticalAcrossClassMix) {
  // The explicit FifoScheduler and the default config must schedule a
  // mixed-class op sequence identically - the class tags are carried but
  // ignored, which is what makes FIFO the refactor's parity baseline.
  FabricConfig default_config;  // defaults: sampled latency, congestion on
  FabricConfig fifo_config;
  fifo_config.sched.kind = LinkSchedulerKind::kFifo;
  const IoClass classes[] = {IoClass::kDemandRead, IoClass::kPrefetch,
                             IoClass::kWriteback, IoClass::kEviction,
                             IoClass::kRepair};
  std::vector<SimTimeNs> base;
  std::vector<SimTimeNs> tagged;
  for (auto* out : {&base, &tagged}) {
    Fabric fabric(out == &base ? default_config : fifo_config, 4, 2);
    Rng rng(99);
    SimTimeNs now = 0;
    for (int i = 0; i < 500; ++i) {
      out->push_back(fabric.SubmitPageOp(
          Op(static_cast<uint32_t>(i % 4), classes[i % 5]),
          static_cast<uint32_t>(i % 2), now, rng));
      now += 100;
    }
  }
  EXPECT_EQ(base, tagged);
}

TEST(LinkScheduler, FifoDemandWaitsBehindQueuedPrefetch) {
  // The baseline's defect, pinned as a test so the priority scheduler's
  // contract below is meaningful: under FIFO a demand read queues behind
  // every previously enqueued prefetch on the link.
  Fabric fabric(FlatConfig(LinkSchedulerKind::kFifo), 2, 1);
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    fabric.SubmitPageOp(Op(0, IoClass::kPrefetch), 0, 0, rng);
  }
  const SimTimeNs demand =
      fabric.SubmitPageOp(Op(1, IoClass::kDemandRead), 0, 0, rng);
  EXPECT_EQ(demand, 9 * fabric.serialization_ns() + 1000);
}

// ---- strict demand priority ------------------------------------------------

TEST(LinkScheduler, NoDemandReadWaitsBehindQueuedPrefetch) {
  // Same op sequence as the FIFO test above: with the priority scheduler
  // the demand read's completion is independent of the prefetch backlog.
  Fabric fabric(FlatConfig(LinkSchedulerKind::kDemandPriority), 2, 1);
  Rng rng(1);
  for (int i = 0; i < 8; ++i) {
    fabric.SubmitPageOp(Op(0, IoClass::kPrefetch), 0, 0, rng);
  }
  const SimTimeNs demand =
      fabric.SubmitPageOp(Op(1, IoClass::kDemandRead), 0, 0, rng);
  // One serialization + base: as if the link were idle.
  EXPECT_EQ(demand, fabric.serialization_ns() + 1000);
}

TEST(LinkScheduler, DemandStillQueuesBehindDemand) {
  Fabric fabric(FlatConfig(LinkSchedulerKind::kDemandPriority), 2, 1);
  Rng rng(1);
  const SimTimeNs first =
      fabric.SubmitPageOp(Op(0, IoClass::kDemandRead), 0, 0, rng);
  const SimTimeNs second =
      fabric.SubmitPageOp(Op(1, IoClass::kDemandRead), 0, 0, rng);
  EXPECT_EQ(second - first, fabric.serialization_ns());
}

TEST(LinkScheduler, BackgroundPushedBehindDemandClaims) {
  // A prefetch enqueued after a burst of demand reads pays for the wire
  // the demand ops claimed (the displacement cost lands on background).
  Fabric fabric(FlatConfig(LinkSchedulerKind::kDemandPriority), 2, 1);
  Rng rng(1);
  for (int i = 0; i < 4; ++i) {
    fabric.SubmitPageOp(Op(0, IoClass::kDemandRead), 0, 0, rng);
  }
  const SimTimeNs prefetch =
      fabric.SubmitPageOp(Op(1, IoClass::kPrefetch), 0, 0, rng);
  EXPECT_EQ(prefetch, 5 * fabric.serialization_ns() + 1000);
}

// ---- DRR fairness ----------------------------------------------------------

// Saturates one downlink from `hosts` flows submitting `per_flow` ops each
// in round-robin arrival order at t=0, then returns per-host ops granted
// by the time the earliest-finishing flow is done (byte shares over the
// contended window).
std::vector<size_t> SaturatedShares(Fabric& fabric, size_t hosts,
                                    size_t per_flow) {
  Rng rng(7);
  std::vector<std::vector<SimTimeNs>> done(hosts);
  for (size_t i = 0; i < hosts * per_flow; ++i) {
    const auto host = static_cast<uint32_t>(i % hosts);
    done[host].push_back(
        fabric.SubmitPageOp(Op(host, IoClass::kDemandRead), 0, 0, rng));
  }
  SimTimeNs horizon = ~SimTimeNs{0};
  for (auto& d : done) {
    horizon = std::min(horizon, d.back());
  }
  std::vector<size_t> granted(hosts, 0);
  for (size_t h = 0; h < hosts; ++h) {
    granted[h] = static_cast<size_t>(
        std::count_if(done[h].begin(), done[h].end(),
                      [&](SimTimeNs t) { return t <= horizon; }));
  }
  return granted;
}

TEST(LinkScheduler, DrrEqualWeightsSplitSaturatedLinkEvenly) {
  Fabric fabric(FlatConfig(LinkSchedulerKind::kDrr), 4, 1);
  const auto granted = SaturatedShares(fabric, 4, 400);
  const double total = static_cast<double>(
      granted[0] + granted[1] + granted[2] + granted[3]);
  for (size_t h = 0; h < 4; ++h) {
    const double share = static_cast<double>(granted[h]) / total;
    EXPECT_NEAR(share, 0.25, 0.0125);  // within 5% of the fair share
  }
}

TEST(LinkScheduler, DrrWeightedSharesTrackConfiguredWeights) {
  FabricConfig config = FlatConfig(LinkSchedulerKind::kDrr);
  config.sched.host_weights = {2.0, 1.0, 1.0};
  Fabric fabric(config, 3, 1);
  const auto granted = SaturatedShares(fabric, 3, 400);
  const double total =
      static_cast<double>(granted[0] + granted[1] + granted[2]);
  EXPECT_NEAR(static_cast<double>(granted[0]) / total, 0.5, 0.025);
  EXPECT_NEAR(static_cast<double>(granted[1]) / total, 0.25, 0.0125);
  EXPECT_NEAR(static_cast<double>(granted[2]) / total, 0.25, 0.0125);
}

TEST(LinkScheduler, DrrWorkConservingWhenAlone) {
  // A flow alone on the link runs at full link rate regardless of its
  // weight: DRR shares contention, it does not tax solitude.
  FabricConfig config = FlatConfig(LinkSchedulerKind::kDrr);
  config.sched.host_weights = {0.25};
  Fabric fabric(config, 1, 1);
  Rng rng(3);
  SimTimeNs last = 0;
  for (int i = 0; i < 32; ++i) {
    last = fabric.SubmitPageOp(Op(0, IoClass::kDemandRead), 0, 0, rng);
  }
  EXPECT_EQ(last, 32 * fabric.serialization_ns() + 1000);
}

TEST(LinkScheduler, DrrRecoversFullRateWhenCompetitorGoesIdle) {
  Fabric fabric(FlatConfig(LinkSchedulerKind::kDrr), 2, 1);
  Rng rng(4);
  // Two flows contend: host 0's ops are paced at half rate.
  SimTimeNs contended_last = 0;
  for (int i = 0; i < 16; ++i) {
    contended_last =
        fabric.SubmitPageOp(Op(0, IoClass::kDemandRead), 0, 0, rng);
    fabric.SubmitPageOp(Op(1, IoClass::kDemandRead), 0, 0, rng);
  }
  // Long after both backlogs drain, host 0 is alone again: full rate.
  const SimTimeNs later = contended_last + kNsPerSec;
  const SimTimeNs a =
      fabric.SubmitPageOp(Op(0, IoClass::kDemandRead), 0, later, rng);
  const SimTimeNs b =
      fabric.SubmitPageOp(Op(0, IoClass::kDemandRead), 0, later, rng);
  EXPECT_EQ(a - later, fabric.serialization_ns() + 1000);
  EXPECT_EQ(b - a, fabric.serialization_ns());
}

// ---- repair-bandwidth cap --------------------------------------------------

TEST(LinkScheduler, RepairCapPacesRepairTraffic) {
  FabricConfig config = FlatConfig(LinkSchedulerKind::kFifo);
  config.sched.repair_bandwidth_fraction = 0.25;
  Fabric fabric(config, 1, 1);
  Rng rng(5);
  SimTimeNs last = 0;
  const int n = 16;
  for (int i = 0; i < n; ++i) {
    last = fabric.SubmitPageOp(Op(0, IoClass::kRepair), 0, 0, rng);
  }
  // 25% of the link: consecutive repair slots at least 4 serializations
  // apart, so the storm takes ~4x the uncapped time.
  EXPECT_GE(last, (n - 1) * 4 * fabric.serialization_ns());
}

TEST(LinkScheduler, RepairCapLeavesDemandAlone) {
  FabricConfig config = FlatConfig(LinkSchedulerKind::kDemandPriority);
  config.sched.repair_bandwidth_fraction = 0.25;
  Fabric fabric(config, 2, 1);
  Rng rng(6);
  for (int i = 0; i < 8; ++i) {
    fabric.SubmitPageOp(Op(0, IoClass::kRepair), 0, 0, rng);
  }
  // Demand rides over the paced repair backlog untouched.
  const SimTimeNs demand =
      fabric.SubmitPageOp(Op(1, IoClass::kDemandRead), 0, 0, rng);
  EXPECT_EQ(demand, fabric.serialization_ns() + 1000);
}

TEST(LinkScheduler, UncappedRepairMatchesFifoParity) {
  // repair_bandwidth_fraction = 1.0 (default) must change nothing: repair
  // ops schedule exactly like any other FIFO op.
  Fabric capped(FlatConfig(LinkSchedulerKind::kFifo), 1, 1);
  Rng rng_a(8);
  Rng rng_b(8);
  Fabric plain(FlatConfig(LinkSchedulerKind::kFifo), 1, 1);
  for (int i = 0; i < 20; ++i) {
    const SimTimeNs a =
        capped.SubmitPageOp(Op(0, IoClass::kRepair), 0, 0, rng_a);
    const SimTimeNs b =
        plain.SubmitPageOp(Op(0, IoClass::kDemandRead), 0, 0, rng_b);
    EXPECT_EQ(a, b);
  }
}

// ---- per-class accounting --------------------------------------------------

TEST(LinkScheduler, PerClassLinkCountersTrackTraffic) {
  Fabric fabric(FlatConfig(LinkSchedulerKind::kDemandPriority), 2, 2);
  Rng rng(9);
  fabric.SubmitPageOp(Op(0, IoClass::kDemandRead), 0, 0, rng);
  fabric.SubmitPageOp(Op(0, IoClass::kPrefetch), 0, 0, rng);
  fabric.SubmitPageOp(Op(0, IoClass::kPrefetch), 1, 0, rng);
  fabric.SubmitPageOp(Op(1, IoClass::kRepair), 1, 0, rng);
  EXPECT_EQ(fabric.host_class_ops(0, IoClass::kDemandRead), 1u);
  EXPECT_EQ(fabric.host_class_ops(0, IoClass::kPrefetch), 2u);
  EXPECT_EQ(fabric.host_class_ops(1, IoClass::kRepair), 1u);
  EXPECT_EQ(fabric.node_class_ops(0, IoClass::kPrefetch), 1u);
  EXPECT_EQ(fabric.node_class_ops(1, IoClass::kPrefetch), 1u);
  EXPECT_EQ(fabric.node_class_ops(1, IoClass::kRepair), 1u);
  const FabricConfig config;
  EXPECT_EQ(fabric.node_classes(0).bytes[0], config.op_bytes);
  // Class EWMAs advance independently: only the demand class saw delay 0
  // at an idle link; the repair op queued behind three earlier ops.
  EXPECT_GT(fabric.QueueDelayEwmaNs(IoClass::kRepair), 0.0);
}

TEST(LinkScheduler, DescriptorBytesDriveSerializationAndAccounting) {
  Fabric fabric(FlatConfig(LinkSchedulerKind::kFifo), 1, 1);
  Rng rng(10);
  // A default page op takes the precomputed slot...
  const SimTimeNs page = fabric.SubmitPageOp(Op(0, IoClass::kDemandRead),
                                             0, 0, rng);
  EXPECT_EQ(page, fabric.serialization_ns() + 1000);
  // ...while a half-size op serializes in about half the time and the
  // per-class byte ledger records its true wire footprint.
  IoRequest small = Op(0, IoClass::kPrefetch);
  small.bytes = kPageSize / 2;
  const uint64_t bytes_before = fabric.bytes();
  const SimTimeNs small_done = fabric.SubmitPageOp(small, 0, 0, rng);
  EXPECT_LT(small_done - page, fabric.serialization_ns());
  const FabricConfig config;
  const uint64_t header = config.op_bytes - kPageSize;
  EXPECT_EQ(fabric.bytes() - bytes_before, kPageSize / 2 + header);
}

TEST(LinkScheduler, EnqueueStampFeedsSojournTelemetry) {
  Fabric fabric(FlatConfig(LinkSchedulerKind::kFifo), 1, 1);
  Rng rng(11);
  // Stamped 500 ns before submission: the op spent that long in the
  // software path above the fabric, and the sojourn mean includes it.
  IoRequest req = Op(0, IoClass::kDemandRead);
  req.enqueue_ts = 1000;
  const SimTimeNs done = fabric.SubmitPageOp(req, 0, 1500, rng);
  EXPECT_DOUBLE_EQ(fabric.MeanSojournNs(IoClass::kDemandRead),
                   static_cast<double>(done - 1000));
  // Unstamped ops (enqueue_ts = 0) stay out of the ledger.
  fabric.SubmitPageOp(Op(0, IoClass::kPrefetch), 0, 1500, rng);
  EXPECT_DOUBLE_EQ(fabric.MeanSojournNs(IoClass::kPrefetch), 0.0);
}

// ---- determinism -----------------------------------------------------------

TEST(LinkScheduler, SameSeedSchedulingDecisionsBitIdentical) {
  for (const LinkSchedulerKind kind :
       {LinkSchedulerKind::kFifo, LinkSchedulerKind::kDemandPriority,
        LinkSchedulerKind::kDrr}) {
    FabricConfig config;  // sampled base latency, congestion enabled
    config.sched.kind = kind;
    config.sched.repair_bandwidth_fraction = 0.5;
    const IoClass classes[] = {IoClass::kDemandRead, IoClass::kPrefetch,
                               IoClass::kWriteback, IoClass::kRepair};
    std::vector<SimTimeNs> first;
    std::vector<SimTimeNs> second;
    for (auto* out : {&first, &second}) {
      Fabric fabric(config, 4, 2);
      Rng rng(123);
      SimTimeNs now = 0;
      for (int i = 0; i < 400; ++i) {
        out->push_back(fabric.SubmitPageOp(
            Op(static_cast<uint32_t>(i % 4), classes[i % 4],
               static_cast<Pid>(1 + i % 3)),
            static_cast<uint32_t>(i % 2), now, rng));
        now += 137;
      }
    }
    EXPECT_EQ(first, second) << LinkSchedulerKindName(kind);
  }
}

}  // namespace
}  // namespace leap
