// Allocation discipline for the observability layer:
//
//  1. TraceRecorder::Record never allocates - not on the fill path, not on
//     wraparound - because the ring is pre-sized at construction.
//  2. A disabled recorder's Record is free of both storage and allocation.
//  3. The instrumented hot path stays allocation-free END TO END with an
//     enabled recorder attached: steady-state Machine::Access through the
//     block layer's kBlockAdmit spans and the prefetch lifecycle instants
//     performs zero heap allocations, same as the un-instrumented machine
//     (pinned by determinism_test). Observability must not reintroduce
//     what PR 1 removed from the hot path.
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "src/obs/trace_recorder.h"
#include "src/runtime/app_runner.h"
#include "src/runtime/machine.h"
#include "src/runtime/presets.h"
#include "src/workload/patterns.h"

// --- global allocation hook -------------------------------------------------
// Same pattern as determinism_test: each test binary gets its own override,
// so the two hooks never collide. Not atomic - the simulator is
// single-threaded and gtest does not allocate concurrently with the body.
namespace {
size_t g_alloc_count = 0;
}  // namespace

void* operator new(size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace leap {
namespace {

constexpr size_t kFrames = 1024;
constexpr size_t kFootprint = 3 * kFrames;  // force steady-state misses

TraceEvent Ev(SimTimeNs ts) {
  TraceEvent e;
  e.ts = ts;
  e.kind = TraceEventKind::kFabricOp;
  return e;
}

TEST(TraceAllocTest, EnabledRecordNeverAllocates) {
  TraceRecorder rec({/*enabled=*/true, /*capacity=*/256});
  const size_t before = g_alloc_count;
  // 4x capacity: covers both the fill phase and wraparound overwrites.
  for (SimTimeNs ts = 1; ts <= 1024; ++ts) {
    rec.Record(Ev(ts));
  }
  EXPECT_EQ(g_alloc_count - before, 0u);
  EXPECT_EQ(rec.size(), 256u);
  EXPECT_EQ(rec.dropped(), 1024u - 256u);
}

TEST(TraceAllocTest, DisabledRecordNeverAllocatesAndStoresNothing) {
  TraceRecorder rec({/*enabled=*/false, /*capacity=*/256});
  const size_t before = g_alloc_count;
  for (SimTimeNs ts = 1; ts <= 1024; ++ts) {
    rec.Record(Ev(ts));
  }
  EXPECT_EQ(g_alloc_count - before, 0u);
  EXPECT_EQ(rec.size(), 0u);
}

// Steady-state faults through an instrumented machine with tracing ON.
TEST(TraceAllocTest, SteadyStateAccessWithTraceAttachedDoesNotAllocate) {
  TraceRecorder rec({/*enabled=*/true, /*capacity=*/size_t{1} << 14});
  MachineEnv env;
  env.trace = &rec;
  Machine machine(LeapVmmConfig(kFrames, 42), env);
  const Pid pid = machine.CreateProcess(kFootprint / 2);
  SimTimeNs now = WarmUp(machine, pid, kFootprint) + 10 * kNsPerMs;

  // Reach steady state: several sweeps so every simulator container has
  // grown to working capacity (same recipe as determinism_test).
  SequentialStream stream(kFootprint, 750);
  Rng rng(7);
  for (size_t i = 0; i < 4 * kFootprint; ++i) {
    const MemOp op = stream.Next(rng);
    now += op.think_ns;
    now += machine.Access(pid, op.vpn, op.write, now).latency;
  }

  size_t allocs = 0;
  size_t misses = 0;
  for (size_t i = 0; i < 2 * kFootprint; ++i) {
    const MemOp op = stream.Next(rng);
    now += op.think_ns;
    const size_t before = g_alloc_count;
    const AccessResult result = machine.Access(pid, op.vpn, op.write, now);
    allocs += g_alloc_count - before;
    now += result.latency;
    misses += result.type == AccessType::kMiss ? 1 : 0;
  }

  ASSERT_GT(misses, 0u);           // the slow path actually ran
  ASSERT_GT(rec.recorded(), 0u);   // ...and it really recorded events
  EXPECT_EQ(allocs, 0u) << "tracing reintroduced hot-path allocation";
}

}  // namespace
}  // namespace leap
