// Algorithm 1 (FindTrend) tests, including the paper's Figure 5 worked
// example and the irregularity-tolerance property from section 3.2.2.
#include "src/core/trend_detector.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/sim/rng.h"

namespace leap {
namespace {

// Drives a detector with a sequence of page addresses, pushing deltas like
// the page access tracker does, and returns the trend after each access.
class AddressFeeder {
 public:
  AddressFeeder(size_t hsize, size_t nsplit)
      : history_(hsize), detector_(nsplit) {}

  std::optional<PageDelta> Feed(Vpn addr) {
    if (has_last_) {
      history_.Push(static_cast<PageDelta>(addr) -
                    static_cast<PageDelta>(last_));
    }
    last_ = addr;
    has_last_ = true;
    return detector_.FindTrend(history_);
  }

  AccessHistory& history() { return history_; }

 private:
  AccessHistory history_;
  TrendDetector detector_;
  Vpn last_ = 0;
  bool has_last_ = false;
};

TEST(TrendDetector, EmptyHistoryHasNoTrend) {
  AccessHistory h(32);
  TrendDetector d(2);
  EXPECT_FALSE(d.FindTrend(h).has_value());
}

TEST(TrendDetector, PureSequentialTrend) {
  AddressFeeder feeder(32, 2);
  std::optional<PageDelta> trend;
  for (Vpn a = 100; a < 140; ++a) {
    trend = feeder.Feed(a);
  }
  ASSERT_TRUE(trend.has_value());
  EXPECT_EQ(*trend, 1);
}

TEST(TrendDetector, PureStrideTrend) {
  AddressFeeder feeder(32, 2);
  std::optional<PageDelta> trend;
  for (Vpn a = 0; a < 400; a += 10) {
    trend = feeder.Feed(a);
  }
  ASSERT_TRUE(trend.has_value());
  EXPECT_EQ(*trend, 10);
}

TEST(TrendDetector, DescendingStrideTrend) {
  AddressFeeder feeder(16, 2);
  std::optional<PageDelta> trend;
  for (Vpn a = 1000; a > 900; a -= 3) {
    trend = feeder.Feed(a);
  }
  ASSERT_TRUE(trend.has_value());
  EXPECT_EQ(*trend, -3);
}

TEST(TrendDetector, RandomAccessesHaveNoTrend) {
  AddressFeeder feeder(32, 2);
  Rng rng(4242);
  std::optional<PageDelta> trend;
  for (int i = 0; i < 64; ++i) {
    trend = feeder.Feed(rng.NextU64(1 << 20));
  }
  EXPECT_FALSE(trend.has_value());
}

// ---------------------------------------------------------------------------
// The Figure 5 walkthrough: Hsize = 8, Nsplit = 2, requests
// 0x48 0x45 0x42 0x3F 0x3C 0x02 0x04 0x06 0x08 0x0A 0x0C 0x10 0x39 0x12
// 0x14 0x16 at times t0..t15.

class Figure5Test : public ::testing::Test {
 protected:
  AddressFeeder feeder_{8, 2};
  const std::vector<Vpn> requests_ = {0x48, 0x45, 0x42, 0x3F, 0x3C, 0x02,
                                      0x04, 0x06, 0x08, 0x0A, 0x0C, 0x10,
                                      0x39, 0x12, 0x14, 0x16};

  std::optional<PageDelta> FeedThrough(size_t t) {
    // Figure 5 shows a +72 delta already stored at t0, i.e. the request
    // before t0 was 0x48 - 72 = 0x00.
    feeder_.Feed(0x00);
    std::optional<PageDelta> trend;
    for (size_t i = 0; i <= t; ++i) {
      trend = feeder_.Feed(requests_[i]);
    }
    return trend;
  }
};

TEST_F(Figure5Test, AtT3TrendIsMinus3) {
  // t0-t3 window holds deltas {-3,-3,-3}; majority -3 found in the small
  // window already.
  const auto trend = FeedThrough(3);
  ASSERT_TRUE(trend.has_value());
  EXPECT_EQ(*trend, -3);
}

TEST_F(Figure5Test, AtT7NoMajorityEvenInFullWindow) {
  // Deltas so far: -3,-3,-3,-3,-58,+2,+2. The newest 4 {+2,+2,-58,-3} have
  // no majority; doubling to 8 sees three +2/-58 against four -3 - still
  // no strict majority.
  const auto trend = FeedThrough(7);
  EXPECT_FALSE(trend.has_value());
}

TEST_F(Figure5Test, AtT8NewTrendPlus2Emerges) {
  // t5-t8 contribute deltas {+2,+2,+2} within the newest window.
  const auto trend = FeedThrough(8);
  ASSERT_TRUE(trend.has_value());
  EXPECT_EQ(*trend, 2);
}

TEST_F(Figure5Test, AtT15ShortTermVariationsIgnored) {
  // t12 (0x39) and t13 (0x12) inject +41/-39 noise, but the t8-t15 window
  // still holds a +2 majority.
  const auto trend = FeedThrough(15);
  ASSERT_TRUE(trend.has_value());
  EXPECT_EQ(*trend, 2);
}

// ---------------------------------------------------------------------------
// Property (section 3.2.2): a window of size w tolerates up to
// floor(w/2) - 1 irregularities.

class IrregularityToleranceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IrregularityToleranceTest, MajoritySurvivesBoundedNoise) {
  const size_t hsize = GetParam();
  Rng rng(hsize * 31 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    AccessHistory history(hsize);
    const size_t irregular = hsize / 2 - 1;
    const size_t regular = hsize - irregular;
    // Fill: `regular` copies of stride 4, `irregular` random other values,
    // shuffled.
    std::vector<PageDelta> deltas(regular, 4);
    for (size_t i = 0; i < irregular; ++i) {
      deltas.push_back(5 + rng.NextInt(0, 1000));
    }
    for (size_t i = deltas.size(); i > 1; --i) {
      std::swap(deltas[i - 1], deltas[rng.NextU64(i)]);
    }
    for (PageDelta d : deltas) {
      history.Push(d);
    }
    TrendDetector detector(2);
    const auto trend = detector.FindTrend(history);
    ASSERT_TRUE(trend.has_value()) << "hsize " << hsize;
    EXPECT_EQ(*trend, 4);
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, IrregularityToleranceTest,
                         ::testing::Values(8, 16, 32, 64, 128));

TEST(TrendDetector, SmallerNsplitStartsWithBiggerWindow) {
  // With Nsplit = 1 the first window is the whole history, so a trend
  // diluted below majority in the recent half is still found if it holds
  // the full-window majority.
  AccessHistory h(8);
  for (PageDelta d : {7, 7, 7, 7, 7, 1, 2, 7}) {
    h.Push(d);
  }
  EXPECT_EQ(TrendDetector(1).FindTrend(h), 7);
  // Nsplit = 2: newest 4 = {7,2,1,7}, no majority; doubles to 8 and finds 7.
  EXPECT_EQ(TrendDetector(2).FindTrend(h), 7);
}

TEST(TrendDetector, PartialHistorySmallerThanFirstWindow) {
  AccessHistory h(32);
  h.Push(6);
  h.Push(6);
  EXPECT_EQ(TrendDetector(2).FindTrend(h), 6);
}

TEST(TrendDetector, InterleavedStridesProduceNoMajority) {
  // Two perfectly interleaved streams with different strides (section
  // 3.2.2): deltas alternate a, b, a, b with a != b - no majority.
  AccessHistory h(16);
  for (int i = 0; i < 16; ++i) {
    h.Push(i % 2 == 0 ? 3 : 11);
  }
  EXPECT_FALSE(TrendDetector(2).FindTrend(h).has_value());
}

}  // namespace
}  // namespace leap
