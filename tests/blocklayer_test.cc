// Block layer: elevator merge/sort, batching semantics, stage overheads,
// and the tagged-batch contract (the demand page is identified by its
// IoClass tag, not by its position).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/blocklayer/request_queue.h"
#include "src/storage/hdd.h"
#include "src/storage/ssd.h"

namespace leap {
namespace {

// Read batch builder: first slot demand, the rest prefetches - the shape
// the fault path produces.
std::vector<IoRequest> ReadBatch(const std::vector<SwapSlot>& slots) {
  std::vector<IoRequest> reqs;
  reqs.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    reqs.push_back(i == 0 ? DemandRead(slots[i]) : PrefetchRead(slots[i]));
  }
  return reqs;
}

TEST(Bio, MergePredicate) {
  const Bio a{100, 4, false, 0};
  EXPECT_EQ(a.end(), 104u);
  EXPECT_TRUE(a.CanMergeWith(Bio{104, 2, false, 0}));  // back merge
  EXPECT_TRUE(a.CanMergeWith(Bio{98, 2, false, 0}));   // front merge
  EXPECT_FALSE(a.CanMergeWith(Bio{105, 2, false, 0}));
  EXPECT_FALSE(a.CanMergeWith(Bio{104, 2, true, 0}));  // rw mismatch
}

TEST(RequestQueue, MergeAndSortCollapsesContiguousRuns) {
  const auto reqs = ReadBatch({7, 5, 6, 100, 101, 3});
  const auto requests = RequestQueue::MergeAndSort(reqs, 0);
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0].start, 3u);
  EXPECT_EQ(requests[0].npages, 1u);
  EXPECT_EQ(requests[1].start, 5u);
  EXPECT_EQ(requests[1].npages, 3u);
  EXPECT_EQ(requests[2].start, 100u);
  EXPECT_EQ(requests[2].npages, 2u);
}

TEST(RequestQueue, MergeAndSortDeduplicates) {
  const auto reqs = ReadBatch({4, 4, 5, 5});
  const auto requests = RequestQueue::MergeAndSort(reqs, 0);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].npages, 2u);
}

TEST(RequestQueue, DuplicateSlotKeepsDemandIdentity) {
  // A prefetch that collides with the demand slot dedups away; the merged
  // request set is identical whichever entry came first in the batch.
  const std::vector<IoRequest> demand_first = {DemandRead(4),
                                               PrefetchRead(4),
                                               PrefetchRead(5)};
  const std::vector<IoRequest> prefetch_first = {PrefetchRead(4),
                                                 DemandRead(4),
                                                 PrefetchRead(5)};
  const auto a = RequestQueue::MergeAndSort(demand_first, 0);
  const auto b = RequestQueue::MergeAndSort(prefetch_first, 0);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].start, b[0].start);
  EXPECT_EQ(a[0].npages, 2u);
  EXPECT_EQ(b[0].npages, 2u);
}

class RequestQueueTest : public ::testing::Test {
 protected:
  RequestQueueTest() : store_(SsdConfig{}), queue_(BlockLayerConfig{}, &store_) {}

  Ssd store_;
  RequestQueue queue_;
  Rng rng_{17};
};

TEST_F(RequestQueueTest, SingleReadPaysAllStages) {
  const IoRequest req = DemandRead(9);
  SimTimeNs ready = 0;
  queue_.SubmitBatch({&req, 1}, 0, rng_, {&ready, 1});
  // Minimum possible: stage floors + device floor.
  const BlockLayerConfig config;
  EXPECT_GE(ready, config.prep_min_ns + config.queue_min_ns +
                       config.dispatch_min_ns + SsdConfig().read_min_ns);
}

TEST_F(RequestQueueTest, StageOverheadAveragesNearFigure1) {
  // Mean software overhead should approximate 10.04 + 21.88 + 2.1 ~ 34 us.
  double sum = 0;
  const int n = 3000;
  SimTimeNs now = 0;
  for (int i = 0; i < n; ++i) {
    const IoRequest req = DemandRead(static_cast<SwapSlot>(i) * 1000);
    SimTimeNs ready = 0;
    queue_.SubmitBatch({&req, 1}, now, rng_, {&ready, 1});
    sum += static_cast<double>(ready - now);
    now = ready + 200000;
  }
  const double mean_us = sum / n / 1000.0;
  // ~34 us stages + ~20 us SSD.
  EXPECT_GT(mean_us, 44.0);
  EXPECT_LT(mean_us, 66.0);
}

TEST_F(RequestQueueTest, PagesCompleteInElevatorOrderOnDisk) {
  // Bio-granular completion in sorted order: on a single-head device,
  // later slots of a merged run finish no earlier than earlier ones.
  Hdd hdd;
  RequestQueue disk_queue(BlockLayerConfig{}, &hdd);
  const auto batch = ReadBatch({50, 51, 52, 53, 54, 55, 56, 57});
  std::vector<SimTimeNs> ready(batch.size(), 0);
  disk_queue.SubmitBatch(batch, 0, rng_, ready);
  for (size_t i = 1; i < ready.size(); ++i) {
    EXPECT_GE(ready[i], ready[i - 1]);
  }
}

TEST_F(RequestQueueTest, DemandInMiddleOfRunWaitsForPredecessors) {
  // A demand page sorted behind prefetch pages eats their service time -
  // the elevator reordering cost of the default path. The demand entry is
  // identified by its tag wherever it sits in the batch.
  Hdd hdd;
  RequestQueue disk_queue(BlockLayerConfig{}, &hdd);
  const std::vector<IoRequest> batch = {DemandRead(54), PrefetchRead(50),
                                        PrefetchRead(51), PrefetchRead(52),
                                        PrefetchRead(53)};
  std::vector<SimTimeNs> ready(batch.size(), 0);
  disk_queue.SubmitBatch(batch, 0, rng_, ready);
  // The demand page (slot 54) completes last in the merged run.
  for (size_t i = 1; i < ready.size(); ++i) {
    EXPECT_LE(ready[i], ready[0]);
  }
}

TEST_F(RequestQueueTest, MergedBatchCountsBios) {
  const auto batch = ReadBatch({10, 11, 12, 13});
  std::vector<SimTimeNs> ready(batch.size(), 0);
  queue_.SubmitBatch(batch, 0, rng_, ready);
  EXPECT_EQ(queue_.requests_dispatched(), 1u);
  EXPECT_EQ(queue_.bios_merged(), 3u);
}

TEST_F(RequestQueueTest, WritesGoThroughStagesToo) {
  const SimTimeNs done = queue_.SubmitWrite(EvictionWrite(77), 0, rng_);
  const BlockLayerConfig config;
  EXPECT_GE(done, config.prep_min_ns + config.queue_min_ns +
                      config.dispatch_min_ns + SsdConfig().write_min_ns);
}

TEST_F(RequestQueueTest, EmptyBatchIsNoOp) {
  std::vector<SimTimeNs> ready;
  queue_.SubmitBatch({}, 0, rng_, ready);
  EXPECT_EQ(queue_.requests_dispatched(), 0u);
}

TEST_F(RequestQueueTest, HighVarianceDragsMeanAboveMedian) {
  // The paper's observation about preparation/batching variance.
  std::vector<SimTimeNs> samples;
  SimTimeNs now = 0;
  for (int i = 0; i < 4000; ++i) {
    const IoRequest req = DemandRead(static_cast<SwapSlot>(i) * 997);
    SimTimeNs ready = 0;
    queue_.SubmitBatch({&req, 1}, now, rng_, {&ready, 1});
    samples.push_back(ready - now);
    now = ready + 200000;
  }
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (SimTimeNs s : samples) {
    sum += static_cast<double>(s);
  }
  const double mean = sum / static_cast<double>(samples.size());
  const double median = static_cast<double>(samples[samples.size() / 2]);
  EXPECT_GT(mean, median * 1.05);
}

}  // namespace
}  // namespace leap
