// Property sweeps over the machine configuration matrix: for every
// (medium x path x prefetcher x eviction) combination the paging pipeline
// must preserve a set of structural invariants, regardless of workload.
#include <gtest/gtest.h>

#include <tuple>

#include "src/runtime/app_runner.h"
#include "src/runtime/machine.h"
#include "src/workload/app_models.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

using ConfigTuple = std::tuple<Medium, PathKind, PrefetchKind, EvictionKind>;

std::string TupleName(const ::testing::TestParamInfo<ConfigTuple>& info) {
  const auto [medium, path, prefetcher, eviction] = info.param;
  std::string name;
  name += medium == Medium::kHdd ? "Hdd" : medium == Medium::kSsd ? "Ssd"
                                                                  : "Remote";
  name += path == PathKind::kDefault ? "Default" : "Leap";
  switch (prefetcher) {
    case PrefetchKind::kNone: name += "None"; break;
    case PrefetchKind::kNextNLine: name += "NextN"; break;
    case PrefetchKind::kStride: name += "Stride"; break;
    case PrefetchKind::kReadAhead: name += "ReadAhead"; break;
    case PrefetchKind::kGhb: name += "Ghb"; break;
    case PrefetchKind::kLeap: name += "LeapPf"; break;
  }
  name += eviction == EvictionKind::kLazyLru ? "Lazy" : "Eager";
  return name;
}

class MachineMatrixTest : public ::testing::TestWithParam<ConfigTuple> {
 protected:
  MachineConfig MakeConfig() const {
    const auto [medium, path, prefetcher, eviction] = GetParam();
    MachineConfig config;
    config.total_frames = 4096;
    config.medium = medium;
    config.path = path;
    config.prefetcher = prefetcher;
    config.eviction = eviction;
    config.seed = 1234;
    return config;
  }
};

TEST_P(MachineMatrixTest, AccountingInvariantsHoldUnderMixedWorkload) {
  Machine machine(MakeConfig());
  const Pid pid = machine.CreateProcess(512);
  auto stream = MakePowerGraph(2048, 5);
  Rng rng(5);
  SimTimeNs now = 0;
  for (int i = 0; i < 20000; ++i) {
    const MemOp op = stream->Next(rng);
    now += op.think_ns;
    const AccessResult r = machine.Access(pid, op.vpn, op.write, now);
    now += r.latency;
  }
  const Counters& c = machine.counters();
  // Structural identities of the paging pipeline:
  // every page fault is a minor fault, a cache hit, or a cache miss.
  EXPECT_EQ(c.Get(counter::kPageFaults),
            c.Get(counter::kCacheHits) + c.Get(counter::kCacheMisses) +
                (c.Get(counter::kPageFaults) - c.Get(counter::kCacheHits) -
                 c.Get(counter::kCacheMisses)));
  // Demand reads match cache misses.
  EXPECT_EQ(c.Get(counter::kDemandReads), c.Get(counter::kCacheMisses));
  // Prefetch hits never exceed prefetch issues.
  EXPECT_LE(c.Get(counter::kPrefetchHits), c.Get(counter::kPrefetchIssued));
  // Cache adds = demand reads + prefetch issues... prefetch frame-alloc
  // failures can only lower the entry count, never raise it.
  EXPECT_LE(c.Get(counter::kPrefetchIssued) + c.Get(counter::kDemandReads),
            c.Get(counter::kCacheAdds) + 64);
  // The resident set respects the cgroup (within transient slack).
  EXPECT_LE(machine.resident_pages(pid), 512u + 64u);
  // Frames never leak beyond capacity.
  EXPECT_LE(machine.cache_size() + machine.resident_pages(pid),
            machine.config().total_frames + 64);
}

TEST_P(MachineMatrixTest, DeterministicReplay) {
  auto run_once = [&] {
    Machine machine(MakeConfig());
    const Pid pid = machine.CreateProcess(512);
    auto stream = MakeVoltDb(2048, 9);
    Rng rng(9);
    SimTimeNs now = 0;
    for (int i = 0; i < 8000; ++i) {
      const MemOp op = stream->Next(rng);
      now += op.think_ns;
      now += machine.Access(pid, op.vpn, op.write, now).latency;
    }
    return std::make_pair(now, machine.counters().Get(counter::kCacheHits));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST_P(MachineMatrixTest, EagerModeNeverAccumulatesStaleEntries) {
  const auto [medium, path, prefetcher, eviction] = GetParam();
  if (eviction != EvictionKind::kEagerLeap) {
    GTEST_SKIP() << "lazy mode accumulates by design";
  }
  Machine machine(MakeConfig());
  const Pid pid = machine.CreateProcess(256);
  SequentialStream stream(1024, 500);
  Rng rng(2);
  SimTimeNs now = 0;
  for (int i = 0; i < 10000; ++i) {
    const MemOp op = stream.Next(rng);
    now += op.think_ns;
    now += machine.Access(pid, op.vpn, op.write, now).latency;
    ASSERT_EQ(machine.stale_entries(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, MachineMatrixTest,
    ::testing::Combine(
        ::testing::Values(Medium::kHdd, Medium::kSsd, Medium::kRemote),
        ::testing::Values(PathKind::kDefault, PathKind::kLeap),
        ::testing::Values(PrefetchKind::kNone, PrefetchKind::kNextNLine,
                          PrefetchKind::kStride, PrefetchKind::kReadAhead,
                          PrefetchKind::kGhb, PrefetchKind::kLeap),
        ::testing::Values(EvictionKind::kLazyLru, EvictionKind::kEagerLeap)),
    TupleName);

// --- Leap parameter sweeps ---------------------------------------------------

class LeapParamSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(LeapParamSweepTest, PrefetcherSafeAcrossParameterSpace) {
  const auto [hsize, nsplit, pw_max] = GetParam();
  LeapParams params;
  params.history_size = hsize;
  params.nsplit = nsplit;
  params.max_prefetch_window = pw_max;
  LeapPrefetcher prefetcher(params);
  Rng rng(hsize * 131 + nsplit * 17 + pw_max);
  // Mixed stream: random jumps, runs, strides.
  SwapSlot cursor = 1 << 20;
  for (int i = 0; i < 3000; ++i) {
    switch (rng.NextU64(3)) {
      case 0: cursor += 1; break;
      case 1: cursor += 7; break;
      default: cursor = rng.NextU64(1 << 22); break;
    }
    const PrefetchDecision d = prefetcher.OnMiss(cursor);
    ASSERT_LE(d.window_size, std::max<size_t>(1, pw_max));
    ASSERT_LE(d.pages.size(), d.window_size);
    for (SwapSlot page : d.pages) {
      ASSERT_NE(page, cursor);
    }
    for (size_t h = 0; h < d.pages.size() && h < 2; ++h) {
      prefetcher.OnPrefetchHit(d.pages[h]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamSpace, LeapParamSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 8, 32, 256),
                       ::testing::Values(1, 2, 4, 64),
                       ::testing::Values(1, 8, 64)));

}  // namespace
}  // namespace leap
