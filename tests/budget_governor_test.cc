// BudgetGovernor: AIMD prefetch budgets driven by congestion signals and
// per-tenant outcome feedback.
//
//  - shrink: a wasteful tenant's budget collapses multiplicatively while
//    fabric queue delay (or capacity exhaustion) signals congestion
//  - recovery: additive growth back to the ceiling once congestion clears
//  - isolation: a zipf-storm tenant collapses, a sequential (accurate)
//    tenant's window stays intact through the same congestion epochs
//  - determinism: same-seed cluster runs with the governor enabled make
//    bit-identical budget decisions and counters
#include <vector>

#include <gtest/gtest.h>

#include "src/paging/swap_manager.h"
#include "src/prefetch/budget_governor.h"
#include "src/runtime/cluster.h"
#include "src/runtime/presets.h"
#include "src/workload/cluster_mix.h"

namespace leap {
namespace {

PrefetchBudgetConfig TestConfig() {
  PrefetchBudgetConfig config;
  config.enabled = true;
  config.min_budget = 1;
  config.max_budget = 16;
  config.queue_delay_threshold_ns = 10'000.0;
  config.decrease_factor = 0.5;
  config.increase_step = 1.0;
  config.adjust_period_ns = 1 * kNsPerMs;
  config.accuracy_keep_threshold = 0.5;
  return config;
}

CongestionSignals Congested() {
  CongestionSignals s;
  // Demand-class congestion, well above the 10us threshold. The aggregate
  // EWMA rides along as the fabric would report it.
  s.demand_queue_delay_ewma_ns = 50'000.0;
  s.queue_delay_ewma_ns = 50'000.0;
  return s;
}

CongestionSignals Calm() { return CongestionSignals{}; }

// One AIMD epoch: `issued` prefetches of which `hits` earned hits, then an
// epoch boundary crossing at `*now` += period.
size_t Epoch(BudgetGovernor& gov, Pid pid, SimTimeNs* now,
             const CongestionSignals& signals, uint64_t issued,
             uint64_t hits) {
  gov.OnPrefetchIssued(pid, issued);
  for (uint64_t h = 0; h < hits; ++h) {
    gov.OnPrefetchHit(pid);
  }
  for (uint64_t d = hits; d < issued; ++d) {
    gov.OnPrefetchDropped(pid);
  }
  *now += gov.config().adjust_period_ns;
  return gov.BudgetFor(pid, *now, signals);
}

TEST(BudgetGovernor, StartsAtMaxBudget) {
  BudgetGovernor gov(TestConfig());
  EXPECT_EQ(gov.BudgetFor(1, 0, Calm()), 16u);
  EXPECT_DOUBLE_EQ(gov.budget(1), 16.0);
}

TEST(BudgetGovernor, AimdShrinkUnderInjectedQueueDelay) {
  BudgetGovernor gov(TestConfig());
  SimTimeNs now = 0;
  gov.BudgetFor(1, now, Calm());  // create tenant state

  // Wasteful tenant (no hits) under sustained fabric queue delay:
  // multiplicative halving 16 -> 8 -> 4 -> 2 -> 1.
  std::vector<size_t> budgets;
  for (int epoch = 0; epoch < 5; ++epoch) {
    budgets.push_back(Epoch(gov, 1, &now, Congested(), /*issued=*/16,
                            /*hits=*/0));
  }
  EXPECT_EQ(budgets, (std::vector<size_t>{8, 4, 2, 1, 1}));
  EXPECT_TRUE(gov.congested());
  EXPECT_GE(gov.shrink_events(), 4u);
}

TEST(BudgetGovernor, BackgroundNoiseDoesNotTripCongestion) {
  // A repair/writeback storm inflates the aggregate queue-delay EWMA while
  // the demand/prefetch classes stay calm: the governor must not throttle
  // anyone - background congestion is not data-path congestion.
  BudgetGovernor gov(TestConfig());
  SimTimeNs now = 0;
  gov.BudgetFor(1, now, Calm());
  CongestionSignals s;
  s.queue_delay_ewma_ns = 500'000.0;  // aggregate screams...
  s.demand_queue_delay_ewma_ns = 100.0;    // ...but demand is fine
  s.prefetch_queue_delay_ewma_ns = 200.0;  // ...and so is prefetch
  EXPECT_EQ(Epoch(gov, 1, &now, s, /*issued=*/16, /*hits=*/0), 16u);
  EXPECT_FALSE(gov.congested());
  EXPECT_EQ(gov.shrink_events(), 0u);
  // The same delay on the prefetch class alone does trip it.
  CongestionSignals p;
  p.prefetch_queue_delay_ewma_ns = 50'000.0;
  EXPECT_EQ(Epoch(gov, 1, &now, p, /*issued=*/16, /*hits=*/0), 8u);
  EXPECT_TRUE(gov.congested());
}

TEST(BudgetGovernor, CapacityExhaustionAloneTripsCongestion) {
  BudgetGovernor gov(TestConfig());
  SimTimeNs now = 0;
  gov.BudgetFor(1, now, Calm());
  CongestionSignals s;          // no queue delay...
  s.capacity_exhausted_total = 3;  // ...but the donor pool ran dry
  EXPECT_EQ(Epoch(gov, 1, &now, s, /*issued=*/8, /*hits=*/0), 8u);
  EXPECT_TRUE(gov.congested());
  // The cumulative count was consumed; an unchanged total is calm again.
  EXPECT_EQ(Epoch(gov, 1, &now, s, /*issued=*/8, /*hits=*/0), 9u);
  EXPECT_FALSE(gov.congested());
}

TEST(BudgetGovernor, RecoveryAfterCongestionClears) {
  BudgetGovernor gov(TestConfig());
  SimTimeNs now = 0;
  gov.BudgetFor(1, now, Calm());
  for (int epoch = 0; epoch < 4; ++epoch) {
    Epoch(gov, 1, &now, Congested(), /*issued=*/16, /*hits=*/0);
  }
  ASSERT_EQ(gov.BudgetFor(1, now, Congested()), 1u);

  // Calm epochs: +1 per epoch until back at the ceiling, then parked.
  size_t budget = 0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    budget = Epoch(gov, 1, &now, Calm(), /*issued=*/4, /*hits=*/4);
  }
  EXPECT_EQ(budget, 16u);
  EXPECT_GE(gov.grow_events(), 15u);
}

TEST(BudgetGovernor, PerTenantIsolationStormCollapsesAccurateSurvives) {
  BudgetGovernor gov(TestConfig());
  SimTimeNs now = 0;
  gov.BudgetFor(1, now, Calm());  // zipf-storm tenant: issues, never hits
  gov.BudgetFor(2, now, Calm());  // sequential tenant: every prefetch hits

  for (int epoch = 0; epoch < 6; ++epoch) {
    gov.OnPrefetchIssued(1, 16);  // storm: 0/16 accuracy
    gov.OnPrefetchIssued(2, 8);   // sequential: 8/8 accuracy
    for (int h = 0; h < 8; ++h) {
      gov.OnPrefetchHit(2);
    }
    for (int d = 0; d < 16; ++d) {
      gov.OnPrefetchDropped(1);
    }
    now += gov.config().adjust_period_ns;
    gov.BudgetFor(1, now, Congested());
  }

  EXPECT_EQ(gov.BudgetFor(1, now, Congested()), 1u)
      << "storm tenant should collapse to min_budget";
  EXPECT_EQ(gov.BudgetFor(2, now, Congested()), 16u)
      << "accurate tenant's window must stay intact";
}

// The footprint-share ceiling (SwapManager::SlotsOf) binds only under
// congestion: a tenant holding a sliver of the swapped working set is
// capped near min while the fabric is contended, and back at max_budget
// the moment it calms.
TEST(BudgetGovernor, FootprintShareCeilingBindsOnlyUnderCongestion) {
  SwapManager swap;
  for (Vpn v = 0; v < 10; ++v) {
    swap.SlotFor(/*pid=*/1, v);  // small tenant: 10 slots
  }
  for (Vpn v = 0; v < 990; ++v) {
    swap.SlotFor(/*pid=*/2, v);  // large tenant: 99% of the footprint
  }
  BudgetGovernor gov(TestConfig(), &swap);
  SimTimeNs now = 0;
  gov.BudgetFor(1, now, Calm());
  gov.BudgetFor(2, now, Calm());

  // Calm: both tenants sit at max regardless of footprint.
  EXPECT_EQ(gov.BudgetFor(1, now, Calm()), 16u);
  EXPECT_EQ(gov.BudgetFor(2, now, Calm()), 16u);
  // cap_1 = ceil(16 * (10/1000) * 2) = 1, clamped to min_budget.
  EXPECT_EQ(gov.CapFor(1), 1u);
  EXPECT_EQ(gov.CapFor(2), 16u);

  // Congested epoch: the small tenant's ceiling binds, the large one's
  // does not (its share exceeds 1/n).
  now += gov.config().adjust_period_ns;
  EXPECT_EQ(gov.BudgetFor(1, now, Congested()), 1u);
  EXPECT_EQ(gov.BudgetFor(2, now, Congested()), 16u);

  // Congestion clears: the ceiling lifts immediately.
  now += gov.config().adjust_period_ns;
  EXPECT_EQ(gov.BudgetFor(1, now, Calm()), 16u);
}

TEST(BudgetGovernor, UnknownTenantUsesMaxAndDoesNotCrash) {
  BudgetGovernor gov(TestConfig());
  EXPECT_DOUBLE_EQ(gov.budget(99), 16.0);
  gov.OnPrefetchHit(99);      // feedback for a tenant never seen: ignored
  gov.OnPrefetchDropped(99);
  EXPECT_DOUBLE_EQ(gov.budget(99), 16.0);
}

// Same-seed cluster runs with the governor enabled are bit-identical:
// budgets are a pure function of the op sequence and signal snapshots.
TEST(BudgetGovernor, SameSeedClusterRunsMakeIdenticalBudgetDecisions) {
  auto run = [] {
    ClusterConfig config;
    config.hosts = 2;
    config.nodes = 2;
    config.node_capacity_slabs = 4096;
    config.host = LeapVmmConfig(/*total_frames=*/1 << 12, /*seed=*/42);
    config.host.prefetcher = PrefetchKind::kNextNLine;
    config.host.budget = TestConfig();
    config.host.budget.queue_delay_threshold_ns = 2'000.0;
    config.seed = 91;
    Cluster cluster(config);

    std::vector<std::unique_ptr<AccessStream>> streams;
    std::vector<ClusterAppSpec> specs;
    SimTimeNs warm_end = 0;
    constexpr size_t kFootprint = 1024;
    for (size_t h = 0; h < 2; ++h) {
      const Pid pid = cluster.host(h).CreateProcess(kFootprint / 2);
      warm_end = WarmUp(cluster.host(h), pid, kFootprint, warm_end);
      streams.push_back(MakeClusterMixStream(h, kFootprint));
      RunConfig rc;
      rc.total_accesses = 4000;
      rc.start_time_ns = warm_end + 10 * kNsPerMs;
      rc.seed = 100 + h;
      specs.push_back({h, pid, streams.back().get(), rc});
    }
    cluster.Run(std::move(specs));

    std::vector<double> budgets;
    std::vector<uint64_t> stats;
    for (size_t h = 0; h < 2; ++h) {
      const BudgetGovernor* gov = cluster.host(h).governor();
      EXPECT_NE(gov, nullptr);
      budgets.push_back(gov->budget(1));
      stats.push_back(gov->shrink_events());
      stats.push_back(gov->grow_events());
      stats.push_back(gov->epochs());
    }
    return std::tuple(budgets, stats, cluster.Stats().totals.values());
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_EQ(std::get<1>(first), std::get<1>(second));
  EXPECT_EQ(std::get<2>(first), std::get<2>(second));
  // The runs must have exercised the governor's epoch machinery.
  EXPECT_GT(std::get<1>(first)[2], 0u);
}

// VFS mode shares the page cache across processes, so tenant A's prefetch
// can be consumed by tenant B. The governor's accuracy ledger must credit
// the ISSUING tenant (the cache entry's pid), not the accessor - else the
// issuer reads as 0-accuracy and collapses despite every prefetch hitting.
TEST(BudgetGovernor, VfsCrossTenantHitCreditsIssuingTenant) {
  MachineConfig config =
      DefaultVfsConfig(PrefetchKind::kNextNLine, /*total_frames=*/1 << 12,
                       /*vfs_cache_pages=*/2048, /*seed=*/42);
  config.budget = TestConfig();
  Machine machine(config);
  const Pid a = machine.CreateProcess(0);
  const Pid b = machine.CreateProcess(0);

  // Establish the file size (readahead is bounded by isize), then A's
  // miss on page 0 issues next-8-line prefetches for 1..8, charged to A.
  SimTimeNs now = kNsPerMs;
  now += machine.Access(a, 20, /*write=*/false, now).latency;
  now += machine.Access(a, 0, /*write=*/false, now).latency;
  ASSERT_GT(machine.governor()->epoch_issued(a), 0u);

  // B consumes the prefetched neighbors: hits must accrue to A's ledger.
  for (Vpn vpn = 1; vpn <= 4; ++vpn) {
    now += machine.Access(b, vpn, /*write=*/false, now).latency;
  }
  EXPECT_GE(machine.governor()->epoch_hits(a), 4u);
  EXPECT_EQ(machine.governor()->epoch_hits(b), 0u);
}

// With the governor enabled but budgets never binding (calm fabric, max
// budget above every window), behavior is identical to governor-off: the
// clamp is pure pass-through.
TEST(BudgetGovernor, NonBindingBudgetIsBehaviorNeutral) {
  auto counters = [](bool enabled) {
    MachineConfig config = LeapVmmConfig(/*total_frames=*/1 << 13, 42);
    config.budget.enabled = enabled;
    Machine machine(config);
    const Pid pid = machine.CreateProcess(1024);
    SimTimeNs now = WarmUp(machine, pid, 2048) + kNsPerMs;
    SequentialStream stream(2048, 500);
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
      const MemOp op = stream.Next(rng);
      now += op.think_ns;
      now += machine.Access(pid, op.vpn, op.write, now).latency;
    }
    return machine.counters().values();
  };
  EXPECT_EQ(counters(false), counters(true));
}

}  // namespace
}  // namespace leap
