// Tiered far memory (src/tier/): CXL-like store, tier-aware routing with
// per-slot residency, the background hot/cold migrator, and the
// disabled-path guarantee (tier off => no tier state, identical runs).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/runtime/app_runner.h"
#include "src/runtime/cluster.h"
#include "src/runtime/machine.h"
#include "src/runtime/presets.h"
#include "src/sim/event_queue.h"
#include "src/storage/ssd.h"
#include "src/tier/cxl_store.h"
#include "src/tier/tier_migrator.h"
#include "src/tier/tiered_store.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

TierConfig SmallTierConfig(size_t cxl_pages) {
  TierConfig config;
  config.enabled = true;
  config.cxl_capacity_pages = cxl_pages;
  return config;
}

SimTimeNs ReadOne(BackingStore& store, SwapSlot slot, SimTimeNs now,
                  Rng& rng, IoClass cls = IoClass::kDemandRead) {
  IoRequest req = DemandRead(slot, /*tenant=*/1, now);
  req.cls = cls;
  SimTimeNs ready = 0;
  store.ReadPages(std::span<const IoRequest>(&req, 1), now, rng,
                  std::span<SimTimeNs>(&ready, 1));
  return ready;
}

// --- CxlStore ---------------------------------------------------------------

TEST(CxlStore, SubMicrosecondReadsFasterThanSsd) {
  CxlStore cxl;
  Ssd ssd;
  EXPECT_LT(cxl.MeanReadLatencyNs(), 1000.0);
  EXPECT_LT(cxl.MeanReadLatencyNs(), ssd.MeanReadLatencyNs() / 10.0);
  Rng rng(7);
  const SimTimeNs ready = ReadOne(cxl, 42, 1000, rng);
  EXPECT_GT(ready, 1000);
  EXPECT_LT(ready, 1000 + 5000);  // well under a fabric round trip
}

// --- TieredStore ------------------------------------------------------------

struct TierFixture {
  explicit TierFixture(size_t cxl_pages)
      : store(SmallTierConfig(cxl_pages), &remote, &flash) {
    store.SetCounters(&counters);
  }

  uint64_t Count(CounterId id) const { return counters.Get(id); }

  Ssd remote;  // stand-in for the fabric path (any BackingStore works)
  Ssd flash;
  Counters counters;
  TieredStore store;
  Rng rng{11};
};

TEST(TieredStore, NewSlotsFillCxlThenSpillToRemote) {
  TierFixture fx(/*cxl_pages=*/2);
  fx.store.WritePage(EvictionWrite(10), 0, fx.rng);
  fx.store.WritePage(EvictionWrite(20), 0, fx.rng);
  fx.store.WritePage(EvictionWrite(30), 0, fx.rng);
  EXPECT_EQ(fx.store.TierOf(10), kTierCxl);
  EXPECT_EQ(fx.store.TierOf(20), kTierCxl);
  EXPECT_EQ(fx.store.TierOf(30), kTierRemote);
  EXPECT_EQ(fx.Count(counter::kTierSpills), 1u);
  EXPECT_EQ(fx.store.TierPages(kTierCxl), 2u);
  EXPECT_EQ(fx.store.TierPages(kTierRemote), 1u);
}

TEST(TieredStore, RewriteStaysInPlace) {
  TierFixture fx(/*cxl_pages=*/1);
  fx.store.WritePage(EvictionWrite(10), 0, fx.rng);
  fx.store.WritePage(EvictionWrite(30), 0, fx.rng);  // spills
  fx.store.WritePage(EvictionWrite(30), 0, fx.rng);  // rewrite in place
  fx.store.WritePage(EvictionWrite(10), 0, fx.rng);
  EXPECT_EQ(fx.store.TierOf(10), kTierCxl);
  EXPECT_EQ(fx.store.TierOf(30), kTierRemote);
  EXPECT_EQ(fx.Count(counter::kTierSpills), 1u);  // rewrites never spill
}

TEST(TieredStore, DemandReadsCountFastAndSlowHits) {
  TierFixture fx(/*cxl_pages=*/1);
  fx.store.WritePage(EvictionWrite(10), 0, fx.rng);  // cxl
  fx.store.WritePage(EvictionWrite(30), 0, fx.rng);  // remote
  ReadOne(fx.store, 10, 100, fx.rng);
  ReadOne(fx.store, 30, 100, fx.rng);
  ReadOne(fx.store, 30, 200, fx.rng, IoClass::kPrefetch);  // not a hit stat
  EXPECT_EQ(fx.Count(counter::kTierFastHits), 1u);
  EXPECT_EQ(fx.Count(counter::kTierSlowHits), 1u);
}

TEST(TieredStore, UnknownReadSlotAdoptedOnRemote) {
  TierFixture fx(/*cxl_pages=*/4);
  EXPECT_EQ(fx.store.TierOf(99), kTierCount);
  ReadOne(fx.store, 99, 100, fx.rng);
  EXPECT_EQ(fx.store.TierOf(99), kTierRemote);
}

TEST(TieredStore, MigrateSlotMovesResidencyAndRestartsHeat) {
  TierFixture fx(/*cxl_pages=*/4);
  fx.store.WritePage(EvictionWrite(30), 0, fx.rng);
  // Force it remote by filling CXL first.
  ASSERT_EQ(fx.store.TierOf(30), kTierCxl);
  fx.store.MigrateSlot(30, kTierCxl, kTierRemote, 0, fx.rng);
  ReadOne(fx.store, 30, 100, fx.rng);
  ReadOne(fx.store, 30, 200, fx.rng);
  EXPECT_EQ(fx.store.AccessCount(kTierRemote, 30), 3u);  // insert + 2 reads
  EXPECT_TRUE(fx.store.MigrateSlot(30, kTierRemote, kTierCxl, 300, fx.rng));
  EXPECT_EQ(fx.store.TierOf(30), kTierCxl);
  // Heat is per residency epoch: the promoted page starts over at 1.
  EXPECT_EQ(fx.store.AccessCount(kTierCxl, 30), 1u);
  EXPECT_EQ(fx.store.AccessCount(kTierRemote, 30), 0u);
  EXPECT_EQ(fx.Count(counter::kTierPromotions), 1u);
  EXPECT_EQ(fx.Count(counter::kTierDemotions), 1u);
}

TEST(TieredStore, MigrateSlotRefusesBadMoves) {
  TierFixture fx(/*cxl_pages=*/1);
  fx.store.WritePage(EvictionWrite(10), 0, fx.rng);  // cxl (full now)
  fx.store.WritePage(EvictionWrite(30), 0, fx.rng);  // remote
  EXPECT_FALSE(fx.store.MigrateSlot(99, kTierRemote, kTierCxl, 0, fx.rng));
  EXPECT_FALSE(fx.store.MigrateSlot(30, kTierCxl, kTierRemote, 0, fx.rng));
  EXPECT_FALSE(fx.store.MigrateSlot(30, kTierRemote, kTierCxl, 0, fx.rng));
  EXPECT_EQ(fx.Count(counter::kTierPromotions), 0u);
  EXPECT_EQ(fx.Count(counter::kTierDemotions), 0u);
}

TEST(TieredStore, MigrationRecordsTraceEvents) {
  TierFixture fx(/*cxl_pages=*/4);
  TraceConfig trace_config;
  trace_config.enabled = true;
  TraceRecorder trace(trace_config);
  fx.store.SetTrace(&trace, /*host_id=*/3);
  fx.store.WritePage(EvictionWrite(10), 0, fx.rng);
  fx.store.MigrateSlot(10, kTierCxl, kTierRemote, 50, fx.rng);
  ASSERT_EQ(trace.size(), 1u);
  const TraceEvent& e = trace.At(0);
  EXPECT_EQ(e.kind, TraceEventKind::kTierDemote);
  EXPECT_EQ(e.a, kTierCxl);
  EXPECT_EQ(e.b, kTierRemote);
  EXPECT_EQ(e.host, 3u);
  EXPECT_EQ(e.cls, IoClass::kMigration);
}

// --- TierMigrator -----------------------------------------------------------

TEST(TierMigrator, DemotesColdAndPromotesHot) {
  TierFixture fx(/*cxl_pages=*/8);
  TierConfig config = fx.store.config();
  config.migrate_batch = 8;
  // A real watermark gap at this tiny capacity (the defaults truncate to
  // high == low == 7 pages): demote from 8 down to 4, promote back to < 7.
  config.demote_high_watermark = 0.9;   // 7 pages
  config.demote_low_watermark = 0.6;    // 4 pages
  config.promote_threshold = 3;
  // Fill CXL with never-read pages, then spill two more to remote.
  for (SwapSlot s = 0; s < 10; ++s) {
    fx.store.WritePage(EvictionWrite(s), 0, fx.rng);
  }
  ASSERT_EQ(fx.store.TierOf(8), kTierRemote);
  ASSERT_EQ(fx.store.TierOf(9), kTierRemote);
  // Slot 9 is hot (insert + two reads = count 3, at promote_threshold);
  // slot 8 is warm but below it (count 2) - a recently-touched-but-cool
  // page the promote scan must skip, not stop at.
  ReadOne(fx.store, 9, 100, fx.rng);
  ReadOne(fx.store, 9, 200, fx.rng);
  ReadOne(fx.store, 8, 300, fx.rng);

  EventQueue events;
  TierMigrator migrator(config, &events, &fx.store, /*seed=*/5);
  migrator.Start(1000);
  // The tick plans immediately but trickles the copies across the period,
  // so run one full period to let every planned move land.
  events.RunUntil(1000 + config.migrate_period_ns - 1);

  EXPECT_EQ(migrator.ticks(), 1u);
  // CXL was at capacity (8 > high watermark 7): cold pages demoted down to
  // the low watermark, then the hot remote page promoted into the room.
  EXPECT_EQ(fx.store.TierOf(9), kTierCxl);
  EXPECT_EQ(fx.store.TierOf(8), kTierRemote);
  EXPECT_EQ(fx.store.TierOf(0), kTierRemote);  // coldest CXL page went down
  EXPECT_GE(fx.Count(counter::kTierDemotions), 1u);
  EXPECT_EQ(fx.Count(counter::kTierPromotions), 1u);
  EXPECT_LE(fx.store.TierPages(kTierCxl), 8u);
}

TEST(TierMigrator, ColdFloorSinksFullyDecayedPagesToFlash) {
  TierFixture fx(/*cxl_pages=*/1);
  TierConfig config = fx.store.config();
  config.remote_cold_demote_batch = 4;
  config.decay_every_ticks = 1;  // decay on every tick
  fx.store.WritePage(EvictionWrite(1), 0, fx.rng);   // cxl
  fx.store.WritePage(EvictionWrite(2), 0, fx.rng);   // remote, count 1
  EventQueue events;
  TierMigrator migrator(config, &events, &fx.store, /*seed=*/5);
  migrator.Start(1000);
  // Tick 1 decays count 1 -> 0; the cold floor then sinks it to flash
  // (copies land staggered across the period).
  events.RunUntil(1000 + config.migrate_period_ns - 1);
  EXPECT_EQ(fx.store.TierOf(2), kTierSsd);
  EXPECT_GE(fx.Count(counter::kTierDemotions), 1u);
}

TEST(TierMigrator, ReschedulesEveryPeriod) {
  TierFixture fx(/*cxl_pages=*/4);
  const TierConfig config = fx.store.config();
  EventQueue events;
  TierMigrator migrator(config, &events, &fx.store, /*seed=*/5);
  migrator.Start(0);
  events.RunUntil(3 * config.migrate_period_ns + 1);
  EXPECT_EQ(migrator.ticks(), 4u);  // t=0, T, 2T, 3T
}

// --- Machine / Cluster integration ------------------------------------------

TEST(TieredMachine, DisabledMeansNoTierState) {
  MachineConfig config = LeapVmmConfig(1 << 12, /*seed=*/42);
  ASSERT_FALSE(config.tier.enabled);
  Machine machine(config);
  EXPECT_EQ(machine.tiered_store(), nullptr);
  const Pid pid = machine.CreateProcess(512);
  WarmUp(machine, pid, 1024);
  EXPECT_EQ(machine.counters().Get(counter::kTierFastHits), 0u);
  EXPECT_EQ(machine.counters().Get(counter::kTierSpills), 0u);
}

RunResult RunTieredMachine(bool migrator, uint64_t* promotions = nullptr) {
  MachineConfig config = LeapVmmConfig(1 << 12, /*seed=*/42);
  config.tier.enabled = true;
  config.tier.cxl_capacity_pages = 256;
  config.tier.migrator_enabled = migrator;
  Machine machine(config);
  const Pid pid = machine.CreateProcess(512);
  const SimTimeNs warm_end = WarmUp(machine, pid, 1024);
  ScrambledZipfStream stream(1024, 0.99, /*think_ns=*/0);
  RunConfig run;
  run.total_accesses = 20000;
  run.start_time_ns = warm_end + 10 * kNsPerMs;
  RunResult result = RunApp(machine, pid, stream, run);
  if (promotions != nullptr) {
    *promotions = machine.counters().Get(counter::kTierPromotions);
  }
  return result;
}

TEST(TieredMachine, MigratorPromotesUnderZipfLoad) {
  uint64_t promotions = 0;
  const RunResult result = RunTieredMachine(/*migrator=*/true, &promotions);
  EXPECT_TRUE(result.finished);
  EXPECT_GT(promotions, 0u);
}

TEST(TieredMachine, SameSeedRunsAreIdentical) {
  uint64_t promotions_a = 0;
  uint64_t promotions_b = 0;
  const RunResult a = RunTieredMachine(/*migrator=*/true, &promotions_a);
  const RunResult b = RunTieredMachine(/*migrator=*/true, &promotions_b);
  EXPECT_EQ(a.completion_ns, b.completion_ns);
  EXPECT_EQ(promotions_a, promotions_b);
  EXPECT_EQ(a.miss_latency.Percentile(0.99), b.miss_latency.Percentile(0.99));
}

TEST(TieredCluster, TierOccupancyAndCountersSurface) {
  ClusterConfig config;
  config.hosts = 2;
  config.nodes = 1;
  config.host = LeapVmmConfig(1024, /*seed=*/42);
  config.host.tier.enabled = true;
  config.host.tier.cxl_capacity_pages = 128;
  // Promotion-friendly knobs so the short run migrates: one re-fault
  // qualifies a page and heat never ages out.
  config.host.tier.promote_threshold = 2;
  config.host.tier.decay_every_ticks = 0;
  config.seed = 7;
  Cluster cluster(config);

  std::vector<std::unique_ptr<AccessStream>> streams;
  std::vector<ClusterAppSpec> specs;
  SimTimeNs warm_end = 0;
  std::vector<Pid> pids;
  for (size_t h = 0; h < config.hosts; ++h) {
    const Pid pid = cluster.host(h).CreateProcess(512);
    pids.push_back(pid);
    warm_end = WarmUp(cluster.host(h), pid, 1024, warm_end);
    streams.push_back(
        std::make_unique<ScrambledZipfStream>(1024, 0.99, /*think_ns=*/0));
  }
  for (size_t h = 0; h < config.hosts; ++h) {
    RunConfig run;
    run.total_accesses = 5000;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  cluster.Run(std::move(specs));

  const ClusterStats stats = cluster.Stats();
  ASSERT_EQ(stats.tier_pages.size(), kTierCount);
  EXPECT_GT(stats.tier_pages[kTierCxl], 0u);
  EXPECT_GT(stats.tier_pages[kTierRemote], 0u);
  EXPECT_GT(stats.totals.Get(counter::kTierFastHits) +
                stats.totals.Get(counter::kTierSlowHits),
            0u);
  EXPECT_GT(stats.totals.Get(counter::kTierPromotions), 0u);
}

TEST(TieredCluster, UntieredClusterReportsNoTierPages) {
  ClusterConfig config;
  config.hosts = 1;
  config.nodes = 1;
  config.host = LeapVmmConfig(1024, /*seed=*/42);
  config.seed = 7;
  Cluster cluster(config);
  const Pid pid = cluster.host(0).CreateProcess(512);
  WarmUp(cluster.host(0), pid, 1024);
  const ClusterStats stats = cluster.Stats();
  EXPECT_TRUE(stats.tier_pages.empty());
}

}  // namespace
}  // namespace leap
