// FlatMap: insert/erase/rehash behavior, backward-shift deletion, iteration,
// move-only values, and deterministic iteration order.
#include "src/container/flat_map.h"

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(FlatMap, StartsEmpty) {
  FlatMap<uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_FALSE(map.Erase(42));
}

TEST(FlatMap, InsertFindErase) {
  FlatMap<uint64_t, int> map;
  map[10] = 1;
  map[20] = 2;
  ASSERT_NE(map.Find(10), nullptr);
  EXPECT_EQ(*map.Find(10), 1);
  EXPECT_EQ(*map.Find(20), 2);
  EXPECT_EQ(map.Find(30), nullptr);
  EXPECT_EQ(map.size(), 2u);

  EXPECT_TRUE(map.Erase(10));
  EXPECT_EQ(map.Find(10), nullptr);
  EXPECT_FALSE(map.Erase(10));
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<int, int> map;
  EXPECT_EQ(map[7], 0);
  map[7] += 5;
  EXPECT_EQ(map[7], 5);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, EmplaceReportsExisting) {
  FlatMap<int, int> map;
  auto [first, inserted1] = map.Emplace(1, 100);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*first, 100);
  auto [second, inserted2] = map.Emplace(1, 999);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*second, 100) << "Emplace must not overwrite an existing value";
}

TEST(FlatMap, SurvivesRehashGrowth) {
  FlatMap<uint64_t, uint64_t> map;
  constexpr uint64_t kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) {
    map[i * 7919] = i;  // non-trivial key spread
  }
  EXPECT_EQ(map.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    const uint64_t* v = map.Find(i * 7919);
    ASSERT_NE(v, nullptr) << "lost key " << i * 7919 << " across rehash";
    EXPECT_EQ(*v, i);
  }
}

TEST(FlatMap, EraseKeepsProbeChainsIntact) {
  // Sequential keys stress robin-hood displacement + backward shift: every
  // other key is erased, the survivors must all remain findable.
  FlatMap<uint64_t, uint64_t> map;
  constexpr uint64_t kN = 4096;
  for (uint64_t i = 0; i < kN; ++i) {
    map[i] = i;
  }
  for (uint64_t i = 0; i < kN; i += 2) {
    EXPECT_TRUE(map.Erase(i));
  }
  EXPECT_EQ(map.size(), kN / 2);
  for (uint64_t i = 0; i < kN; ++i) {
    const uint64_t* v = map.Find(i);
    if (i % 2 == 0) {
      EXPECT_EQ(v, nullptr);
    } else {
      ASSERT_NE(v, nullptr) << "backward shift lost key " << i;
      EXPECT_EQ(*v, i);
    }
  }
}

TEST(FlatMap, SlotReuseAfterEraseDoesNotGrow) {
  FlatMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 64; ++i) {
    map[i] = i;
  }
  const size_t capacity = map.capacity();
  // Steady-state churn at constant size: capacity must not change (erased
  // slots are reused; no tombstone accumulation in robin-hood hashing).
  for (uint64_t round = 0; round < 20000; ++round) {
    EXPECT_TRUE(map.Erase(round % 64));
    map[round % 64] = round;
  }
  EXPECT_EQ(map.size(), 64u);
  EXPECT_EQ(map.capacity(), capacity) << "churn at constant size grew table";
}

TEST(FlatMap, IterationVisitsEveryEntryExactlyOnce) {
  FlatMap<int, int> map;
  for (int i = 0; i < 100; ++i) {
    map[i] = i * 2;
  }
  std::set<int> seen;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(value, key * 2);
    EXPECT_TRUE(seen.insert(key).second) << "key visited twice";
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(FlatMap, IterationOrderIsDeterministic) {
  auto build = [] {
    FlatMap<uint64_t, int> map;
    for (uint64_t i = 0; i < 500; ++i) {
      map[i * 31] = static_cast<int>(i);
    }
    for (uint64_t i = 0; i < 500; i += 3) {
      map.Erase(i * 31);
    }
    return map;
  };
  const auto a = build();
  const auto b = build();
  std::vector<uint64_t> keys_a;
  std::vector<uint64_t> keys_b;
  for (const auto& [k, v] : a) {
    keys_a.push_back(k);
  }
  for (const auto& [k, v] : b) {
    keys_b.push_back(k);
  }
  EXPECT_EQ(keys_a, keys_b);
}

TEST(FlatMap, MoveOnlyValues) {
  FlatMap<int, std::unique_ptr<std::string>> map;
  map[1] = std::make_unique<std::string>("one");
  map[2] = std::make_unique<std::string>("two");
  for (int i = 3; i < 200; ++i) {
    map[i] = std::make_unique<std::string>(std::to_string(i));
  }
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(**map.Find(1), "one");
  EXPECT_TRUE(map.Erase(2));
  EXPECT_EQ(map.Find(2), nullptr);
  EXPECT_EQ(**map.Find(100), "100");
}

TEST(FlatMap, ClearKeepsCapacityAndWorks) {
  FlatMap<int, int> map;
  for (int i = 0; i < 1000; ++i) {
    map[i] = i;
  }
  const size_t capacity = map.capacity();
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.Find(5), nullptr);
  map[5] = 55;
  EXPECT_EQ(*map.Find(5), 55);
}

TEST(FlatMap, ReservePreventsRehash) {
  FlatMap<int, int> map;
  map.Reserve(1000);
  const size_t capacity = map.capacity();
  for (int i = 0; i < 1000; ++i) {
    map[i] = i;
  }
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.size(), 1000u);
}

}  // namespace
}  // namespace leap
