// Golden-trace regression pin for the Leap majority-trend detector.
//
// The fixture (tests/data/golden_trace.txt, Trace text format) is a
// checked-in 6000-op stream: 4000 ops of stride-10 over 2048 pages (what
// the detector is built to latch onto) followed by 2000 ops of
// zipf-scrambled accesses (where it should mostly go quiet). The trace is
// replayed straight into the LeapAdapter policy - no Machine, no latency
// model - so every number below is pure integer arithmetic and must match
// EXACTLY on every compiler and sanitizer. A diff here means the detector
// (trend window logic, majority vote, window sizing) changed behaviour;
// update the pins only for an intentional algorithm change.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "src/prefetch/leap_adapter.h"
#include "src/workload/trace.h"

namespace leap {
namespace {

// A prediction is scored a hit when its page is accessed within this many
// subsequent trace positions; afterwards it expires as pollution.
constexpr size_t kHorizon = 256;

struct ReplayScore {
  uint64_t issued = 0;
  uint64_t hits = 0;          // predictions consumed within the horizon
  uint64_t covered = 0;       // accesses that had a live prediction
  uint64_t distance_sum = 0;  // emit->use distance of hits, in accesses
  uint64_t accuracy_pct = 0;
  uint64_t coverage_pct = 0;
  uint64_t mean_distance = 0;
};

ReplayScore ReplayDetector(const Trace& trace) {
  LeapAdapter policy;
  ReplayScore score;
  // Outstanding predictions: page -> trace position that emitted it.
  std::map<SwapSlot, size_t> outstanding;
  const auto& ops = trace.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const SwapSlot slot = ops[i].vpn;  // identity page->slot mapping
    auto it = outstanding.find(slot);
    if (it != outstanding.end()) {
      if (i - it->second <= kHorizon) {
        ++score.hits;
        ++score.covered;
        score.distance_sum += i - it->second;
      }
      outstanding.erase(it);
    }
    const CandidateVec out = policy.OnFault(FaultContext{1, slot});
    for (SwapSlot cand : out) {
      ++score.issued;
      // Re-prediction refreshes the emit position.
      outstanding[cand] = i;
    }
  }
  score.accuracy_pct = score.issued ? 100 * score.hits / score.issued : 0;
  score.coverage_pct = ops.empty() ? 0 : 100 * score.covered / ops.size();
  score.mean_distance = score.hits ? score.distance_sum / score.hits : 0;
  return score;
}

TEST(GoldenTrace, LeapDetectorPinnedScore) {
  auto trace = Trace::LoadFrom(std::string(LEAP_TEST_DATA_DIR) +
                               "/golden_trace.txt");
  ASSERT_TRUE(trace.has_value()) << "fixture missing or unparsable";
  ASSERT_EQ(trace->size(), 6000u) << "fixture changed size";

  const ReplayScore score = ReplayDetector(*trace);

  // Tolerance-free pins (see file comment before touching these). The
  // shape they encode: near-perfect accuracy with coverage bounded by the
  // strided 2/3 of the trace, and hits consumed almost immediately after
  // emission (the detector predicts one access ahead).
  EXPECT_EQ(score.issued, 3980u);
  EXPECT_EQ(score.hits, 3960u);
  EXPECT_EQ(score.covered, 3960u);
  EXPECT_EQ(score.accuracy_pct, 99u);
  EXPECT_EQ(score.coverage_pct, 66u);
  EXPECT_EQ(score.mean_distance, 1u);
}

}  // namespace
}  // namespace leap
