// Placement-policy unit tests: first-fit hotspots, power-of-two-choices
// balances (and beats first-fit on imbalance), striped round-robins with a
// per-host offset, and every policy respects exclusion, failure, and
// capacity.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/cluster/slab_placer.h"

namespace leap {
namespace {

class PlacerFixture : public ::testing::Test {
 protected:
  void Build(size_t count, size_t capacity) {
    owned_.clear();
    nodes_.clear();
    for (uint32_t i = 0; i < count; ++i) {
      owned_.push_back(std::make_unique<RemoteAgent>(i, capacity));
      nodes_.push_back(owned_.back().get());
    }
  }

  // Places `slabs` single-replica slabs for `host`, committing each pick.
  std::vector<size_t> Place(SlabPlacer& placer, size_t slabs,
                            uint32_t host = 0) {
    Rng rng(17);
    for (uint64_t s = 0; s < slabs; ++s) {
      const uint32_t id = placer.Pick(nodes_, {}, host, s, rng);
      EXPECT_NE(id, SlabPlacer::kNoNode) << "slab " << s;
      if (id == SlabPlacer::kNoNode) {
        break;
      }
      EXPECT_TRUE(nodes_[id]->MapSlab());
    }
    std::vector<size_t> loads;
    for (const RemoteAgent* node : nodes_) {
      loads.push_back(node->mapped_slabs());
    }
    return loads;
  }

  static size_t Imbalance(const std::vector<size_t>& loads) {
    const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
    return *hi - *lo;
  }

  std::vector<std::unique_ptr<RemoteAgent>> owned_;
  std::vector<RemoteAgent*> nodes_;
};

TEST_F(PlacerFixture, FirstFitFillsLowNodesFirst) {
  Build(3, 2);
  FirstFitPlacer placer;
  Rng rng(1);
  std::vector<uint32_t> got;
  for (int i = 0; i < 6; ++i) {
    const uint32_t id = placer.Pick(nodes_, {}, 0, i, rng);
    got.push_back(id);
    ASSERT_TRUE(nodes_[id]->MapSlab());
  }
  EXPECT_EQ(got, (std::vector<uint32_t>{0, 0, 1, 1, 2, 2}));
  EXPECT_EQ(placer.Pick(nodes_, {}, 0, 6, rng), SlabPlacer::kNoNode);
}

TEST_F(PlacerFixture, ExcludeAndFailureSkipNodes) {
  Build(3, 8);
  FirstFitPlacer placer;
  Rng rng(1);
  const uint32_t exclude0[] = {0};
  EXPECT_EQ(placer.Pick(nodes_, exclude0, 0, 0, rng), 1u);
  nodes_[1]->Fail();
  EXPECT_EQ(placer.Pick(nodes_, exclude0, 0, 0, rng), 2u);
  nodes_[1]->Recover();
  EXPECT_EQ(placer.Pick(nodes_, exclude0, 0, 0, rng), 1u);
}

TEST_F(PlacerFixture, PowerOfTwoBeatsFirstFitOnImbalance) {
  constexpr size_t kSlabs = 400;
  Build(8, 512);
  FirstFitPlacer first_fit;
  const auto ff_loads = Place(first_fit, kSlabs);

  Build(8, 512);
  PowerOfTwoPlacer po2;
  const auto po2_loads = Place(po2, kSlabs);

  // First-fit hotspots node 0 completely; two-choices stays near the mean
  // of 50 per node.
  EXPECT_EQ(Imbalance(ff_loads), kSlabs);
  EXPECT_LT(Imbalance(po2_loads), kSlabs / 4);
  EXPECT_LT(Imbalance(po2_loads), Imbalance(ff_loads));
}

TEST_F(PlacerFixture, StripedRoundRobinsWithHostOffset) {
  Build(4, 64);
  StripedPlacer placer;
  Rng rng(1);
  for (uint64_t s = 0; s < 8; ++s) {
    EXPECT_EQ(placer.Pick(nodes_, {}, /*host_id=*/0, s, rng), s % 4);
  }
  // A different host starts on a different node: its sequential slabs
  // stripe the same way, offset by the host id.
  EXPECT_EQ(placer.Pick(nodes_, {}, /*host_id=*/1, 0, rng), 1u);
  EXPECT_EQ(placer.Pick(nodes_, {}, /*host_id=*/3, 2, rng), 1u);
}

TEST_F(PlacerFixture, StripedProbesForwardPastFullNodes) {
  Build(3, 1);
  StripedPlacer placer;
  Rng rng(1);
  ASSERT_TRUE(nodes_[0]->MapSlab());  // node 0 full
  EXPECT_EQ(placer.Pick(nodes_, {}, 0, /*slab_id=*/0, rng), 1u);
}

TEST_F(PlacerFixture, ExhaustedPoolReturnsNoNode) {
  Build(2, 1);
  ASSERT_TRUE(nodes_[0]->MapSlab());
  ASSERT_TRUE(nodes_[1]->MapSlab());
  Rng rng(1);
  for (PlacementPolicy policy :
       {PlacementPolicy::kFirstFit, PlacementPolicy::kPowerOfTwo,
        PlacementPolicy::kStriped}) {
    auto placer = MakeSlabPlacer(policy);
    EXPECT_EQ(placer->Pick(nodes_, {}, 0, 0, rng), SlabPlacer::kNoNode)
        << placer->name();
  }
}

TEST(SlabPlacerFactory, NamesMatchPolicies) {
  EXPECT_STREQ(MakeSlabPlacer(PlacementPolicy::kFirstFit)->name(),
               "first-fit");
  EXPECT_STREQ(MakeSlabPlacer(PlacementPolicy::kPowerOfTwo)->name(),
               "power-of-two-choices");
  EXPECT_STREQ(MakeSlabPlacer(PlacementPolicy::kStriped)->name(), "striped");
  EXPECT_STREQ(PlacementPolicyName(PlacementPolicy::kStriped), "striped");
}

}  // namespace
}  // namespace leap
