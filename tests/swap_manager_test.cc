#include "src/paging/swap_manager.h"

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(SwapManager, SlotsAssignedSequentially) {
  SwapManager swap;
  EXPECT_EQ(swap.SlotFor(1, 100), 0u);
  EXPECT_EQ(swap.SlotFor(1, 200), 1u);
  EXPECT_EQ(swap.SlotFor(1, 300), 2u);
}

TEST(SwapManager, PageKeepsItsSlotForLife) {
  SwapManager swap;
  const SwapSlot slot = swap.SlotFor(1, 100);
  swap.SlotFor(1, 200);
  EXPECT_EQ(swap.SlotFor(1, 100), slot);
}

TEST(SwapManager, ProcessesShareTheSwapSpace) {
  // The paper's section 2.3: pages of different processes interleave in
  // one shared swap area.
  SwapManager swap;
  const SwapSlot a = swap.SlotFor(1, 0);
  const SwapSlot b = swap.SlotFor(2, 0);
  const SwapSlot c = swap.SlotFor(1, 1);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
}

TEST(SwapManager, PagesEvictedTogetherGetContiguousSlots) {
  // Temporal locality in evictions becomes spatial locality in slots -
  // the property Leap's swap-offset trend detection relies on.
  SwapManager swap;
  for (Vpn v = 50; v < 60; ++v) {
    swap.SlotFor(7, v);
  }
  for (Vpn v = 50; v < 59; ++v) {
    EXPECT_EQ(*swap.FindSlot(7, v) + 1, *swap.FindSlot(7, v + 1));
  }
}

TEST(SwapManager, FindSlotDoesNotAllocate) {
  SwapManager swap;
  EXPECT_FALSE(swap.FindSlot(1, 42).has_value());
  EXPECT_EQ(swap.allocated_slots(), 0u);
}

TEST(SwapManager, OwnerReverseLookup) {
  SwapManager swap;
  const SwapSlot slot = swap.SlotFor(3, 77);
  const auto owner = swap.OwnerOf(slot);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->pid, 3u);
  EXPECT_EQ(owner->vpn, 77u);
  EXPECT_FALSE(swap.OwnerOf(999).has_value());
}

}  // namespace
}  // namespace leap
