// Integration calibration tests: the simulated systems must reproduce the
// paper's headline latency structure (section 2.2, Figures 1/2/7) in shape.
#include <gtest/gtest.h>

#include "src/runtime/app_runner.h"
#include "src/runtime/presets.h"
#include "src/workload/app_models.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

// Runs `stream` under 50% memory, after the paper's microbenchmark setup:
// a sequential write pass populates the working set first (so swap slots
// align with virtual pages), then the pattern under test is measured.
RunResult RunHalfMemory(const MachineConfig& base, AccessStream& stream,
                        size_t accesses) {
  MachineConfig config = base;
  Machine machine(config);
  const Pid pid = machine.CreateProcess(stream.footprint_pages() / 2);
  const SimTimeNs warm_end =
      WarmUp(machine, pid, stream.footprint_pages());
  RunConfig run;
  run.total_accesses = accesses;
  run.start_time_ns = warm_end + 10 * kNsPerMs;
  return RunApp(machine, pid, stream, run);
}

TEST(Calibration, DefaultVmmStrideMissAveragesNear38us) {
  // Section 2.2: average 4KB remote page access through the default path
  // is ~38.3 us under Stride-10 (every access misses).
  StrideStream stream(16384, 10, 750);
  const RunResult r = RunHalfMemory(
      DefaultVmmConfig(PrefetchKind::kReadAhead, 1 << 16, 17), stream,
      120000);
  const double mean_us = r.miss_latency.Mean() / 1000.0;
  EXPECT_GT(mean_us, 30.0);
  EXPECT_LT(mean_us, 50.0);
}

TEST(Calibration, DiskStrideMissAveragesNear125us) {
  StrideStream stream(16384, 10, 750);
  const RunResult r = RunHalfMemory(
      DiskSwapConfig(Medium::kHdd, PrefetchKind::kReadAhead, 1 << 16, 18),
      stream, 60000);
  const double mean_us = r.miss_latency.Mean() / 1000.0;
  // Section 2.2: ~125.5 us (HDD 91.5 + ~34 data path). Our single-head
  // model adds queueing from readahead pollution and swap-out writebacks,
  // so the band is wider on the high side.
  EXPECT_GT(mean_us, 100.0);
  EXPECT_LT(mean_us, 175.0);
}

TEST(Calibration, DefaultVmmHitFloorNearOneMicrosecond) {
  // Figure 2: disaggregation frameworks have a ~1 us implementation floor.
  SequentialStream stream(16384, 750);
  const RunResult r = RunHalfMemory(
      DefaultVmmConfig(PrefetchKind::kReadAhead, 1 << 16, 19), stream,
      150000);
  const double p25_us = ToUs(r.remote_access_latency.Percentile(0.25));
  EXPECT_GT(p25_us, 0.8);
  EXPECT_LT(p25_us, 1.6);
}

TEST(Calibration, LeapHitCostNearPointThreeMicroseconds) {
  SequentialStream stream(16384, 750);
  const RunResult r =
      RunHalfMemory(LeapVmmConfig(1 << 16, 20), stream, 150000);
  const double p25_us = ToUs(r.remote_access_latency.Percentile(0.25));
  EXPECT_GT(p25_us, 0.15);
  EXPECT_LT(p25_us, 0.5);
}

TEST(HeadlineResult, LeapCrushesDefaultOnStrideMedian) {
  // Figure 7b: Leap improves the D-VMM stride median by orders of
  // magnitude (104x in the paper) because the prefetcher converts misses
  // into 0.27us hits while the default path misses every time.
  StrideStream stride_default(16384, 10, 750);
  StrideStream stride_leap(16384, 10, 750);
  const RunResult d = RunHalfMemory(
      DefaultVmmConfig(PrefetchKind::kReadAhead, 1 << 16, 21),
      stride_default, 120000);
  const RunResult l =
      RunHalfMemory(LeapVmmConfig(1 << 16, 21), stride_leap, 120000);
  const double default_p50 = ToUs(d.remote_access_latency.Percentile(0.5));
  const double leap_p50 = ToUs(l.remote_access_latency.Percentile(0.5));
  EXPECT_GT(default_p50 / leap_p50, 20.0);
}

TEST(HeadlineResult, LeapImprovesSequentialMedianSeveralFold) {
  // Figure 7a: ~4x median improvement (1us floor -> 0.27us hits).
  SequentialStream seq_default(16384, 750);
  SequentialStream seq_leap(16384, 750);
  const RunResult d = RunHalfMemory(
      DefaultVmmConfig(PrefetchKind::kReadAhead, 1 << 16, 22), seq_default,
      150000);
  const RunResult l =
      RunHalfMemory(LeapVmmConfig(1 << 16, 22), seq_leap, 150000);
  const double ratio = ToUs(d.remote_access_latency.Percentile(0.5)) /
                       ToUs(l.remote_access_latency.Percentile(0.5));
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(HeadlineResult, LeapImprovesTailLatencyOnStride) {
  StrideStream stride_default(16384, 10, 750);
  StrideStream stride_leap(16384, 10, 750);
  const RunResult d = RunHalfMemory(
      DefaultVmmConfig(PrefetchKind::kReadAhead, 1 << 16, 23),
      stride_default, 120000);
  const RunResult l =
      RunHalfMemory(LeapVmmConfig(1 << 16, 23), stride_leap, 120000);
  const double ratio = ToUs(d.remote_access_latency.Percentile(0.99)) /
                       ToUs(l.remote_access_latency.Percentile(0.99));
  // Paper: up to 22x at the tail.
  EXPECT_GT(ratio, 3.0);
}

TEST(HeadlineResult, LeapPrefetcherThrottlesOnRandomAccess) {
  // Memcached-like traffic: Leap should avoid useless prefetches
  // (adaptive throttling), so its prefetch-issue volume stays low.
  auto wl_leap = MakeMemcached(16384, 31);
  MachineConfig leap_config = LeapVmmConfig(1 << 16, 24);
  Machine leap_machine(leap_config);
  const Pid lp = leap_machine.CreateProcess(8192);
  RunConfig run;
  run.total_accesses = 150000;
  RunApp(leap_machine, lp, *wl_leap, run);

  auto wl_ra = MakeMemcached(16384, 31);
  MachineConfig ra_config =
      DefaultVmmConfig(PrefetchKind::kReadAhead, 1 << 16, 24);
  Machine ra_machine(ra_config);
  const Pid rp = ra_machine.CreateProcess(8192);
  RunApp(ra_machine, rp, *wl_ra, run);

  const double leap_issue_per_fault = leap_machine.counters().Ratio(
      counter::kPrefetchIssued, counter::kCacheMisses);
  const double ra_issue_per_fault = ra_machine.counters().Ratio(
      counter::kPrefetchIssued, counter::kCacheMisses);
  EXPECT_LT(leap_issue_per_fault, ra_issue_per_fault * 0.8);
}

TEST(HeadlineResult, LeapPrefetcherHelpsEvenOnDisk) {
  // Figure 8b: the prefetcher alone (default data path, HDD backing)
  // shortens completion time.
  auto wl_ra = MakePowerGraph(8192, 33);
  auto wl_leap = MakePowerGraph(8192, 33);
  RunConfig run;
  run.total_accesses = 120000;

  Machine ra(DiskSwapConfig(Medium::kHdd, PrefetchKind::kReadAhead, 1 << 15,
                            25));
  const Pid rp = ra.CreateProcess(4096);
  const RunResult ra_result = RunApp(ra, rp, *wl_ra, run);

  MachineConfig leap_cfg =
      DiskSwapConfig(Medium::kHdd, PrefetchKind::kLeap, 1 << 15, 25);
  Machine lm(leap_cfg);
  const Pid lp = lm.CreateProcess(4096);
  const RunResult leap_result = RunApp(lm, lp, *wl_leap, run);

  EXPECT_LT(leap_result.completion_ns, ra_result.completion_ns);
}

TEST(HeadlineResult, EagerEvictionImprovesTail) {
  // Figure 8a: the eager eviction component shaves the tail beyond the
  // prefetcher alone. A slow kswapd makes the stale-cache population (and
  // therefore the allocation-scan cost difference) clearly visible.
  auto make_machine = [](EvictionKind eviction, uint64_t seed) {
    MachineConfig config = LeapVmmConfig(1 << 15, seed);
    config.eviction = eviction;
    config.kswapd_period_ns = 20 * kNsPerMs;
    return config;
  };
  auto run = [&](EvictionKind eviction) {
    Machine machine(make_machine(eviction, 26));
    auto wl = MakePowerGraph(8192, 35);
    const Pid pid = machine.CreateProcess(4096);
    const SimTimeNs warm_end = WarmUp(machine, pid, 8192);
    RunConfig cfg;
    cfg.total_accesses = 150000;
    cfg.start_time_ns = warm_end + 10 * kNsPerMs;
    const RunResult result = RunApp(machine, pid, *wl, cfg);
    return std::pair<double, double>(
        machine.alloc_hist().Mean(),
        result.remote_access_latency.Mean() / kNsPerUs);
  };
  const auto [lazy_alloc, lazy_mean] = run(EvictionKind::kLazyLru);
  const auto [eager_alloc, eager_mean] = run(EvictionKind::kEagerLeap);
  // Eager eviction keeps allocations cheap...
  EXPECT_LT(eager_alloc, lazy_alloc * 0.85);
  // ...which lowers the average remote access latency (small tolerance for
  // cross-run cache/NIC noise).
  EXPECT_LE(eager_mean, lazy_mean * 1.02);
}

}  // namespace
}  // namespace leap
