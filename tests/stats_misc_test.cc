// TextTable, CDF rendering, and Counters.
#include <gtest/gtest.h>

#include "src/stats/cdf.h"
#include "src/stats/counters.h"
#include "src/stats/table.h"

namespace leap {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, PadsColumnsToWidestCell) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"longvalue", "x"});
  const std::string out = t.Render();
  // Header line must be padded to at least the row width.
  const size_t header_end = out.find('\n');
  const size_t row_start = out.rfind("longvalue");
  ASSERT_NE(header_end, std::string::npos);
  ASSERT_NE(row_start, std::string::npos);
  EXPECT_GE(header_end, std::string("longvalue  x").size());
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3", "4"});
  EXPECT_FALSE(t.Render().empty());
}

TEST(Counters, AddAndGet) {
  Counters c;
  EXPECT_EQ(c.Get(counter::kCacheHits), 0u);
  c.Add(counter::kCacheHits);
  c.Add(counter::kCacheHits, 4);
  EXPECT_EQ(c.Get(counter::kCacheHits), 5u);
}

TEST(Counters, RatioHandlesZeroDenominator) {
  Counters c;
  EXPECT_EQ(c.Ratio(counter::kPrefetchHits, counter::kPageFaults), 0.0);
  c.Add(counter::kPrefetchHits, 3);
  c.Add(counter::kPageFaults, 4);
  EXPECT_DOUBLE_EQ(c.Ratio(counter::kPrefetchHits, counter::kPageFaults),
                   0.75);
}

TEST(Counters, ValuesReportsOnlyTouchedCountersByName) {
  Counters c;
  c.Add(counter::kPageFaults, 7);
  c.Add(counter::kPrefetchUnused, 2);
  const auto values = c.values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values.at("page_faults"), 7u);
  EXPECT_EQ(values.at("prefetch_unused_evicted"), 2u);
}

TEST(Counters, ResetClears) {
  Counters c;
  c.Add(counter::kPageFaults, 10);
  c.Reset();
  EXPECT_EQ(c.Get(counter::kPageFaults), 0u);
}

TEST(CdfRendering, QuantileTableContainsSeries) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Record(i * 100);
  }
  const std::string out =
      RenderLatencyQuantileTable({{"my-series", &h}});
  EXPECT_NE(out.find("my-series"), std::string::npos);
  EXPECT_NE(out.find("p50"), std::string::npos);
  EXPECT_NE(out.find("p99"), std::string::npos);
}

TEST(CdfRendering, CcdfFractionsDecrease) {
  Histogram h;
  for (uint64_t i = 1; i <= 10000; ++i) {
    h.Record(i);  // 1ns..10us uniform
  }
  const std::string out = RenderCcdfTable({{"s", &h}}, {0.001, 1.0, 5.0, 20.0});
  // 0.001us = 1ns: ~100% above; 20us: 0% above.
  EXPECT_NE(out.find("0.00"), std::string::npos);
  EXPECT_NE(out.find("99"), std::string::npos);
}

}  // namespace
}  // namespace leap
