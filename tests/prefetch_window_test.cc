// Algorithm 2 (GetPrefetchWindowSize) behaviors.
#include "src/core/prefetch_window.h"

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(RoundUpPow2, Values) {
  EXPECT_EQ(RoundUpPow2(0), 0u);
  EXPECT_EQ(RoundUpPow2(1), 1u);
  EXPECT_EQ(RoundUpPow2(2), 2u);
  EXPECT_EQ(RoundUpPow2(3), 4u);
  EXPECT_EQ(RoundUpPow2(4), 4u);
  EXPECT_EQ(RoundUpPow2(5), 8u);
  EXPECT_EQ(RoundUpPow2(9), 16u);
}

TEST(PrefetchWindow, StartsSuspendedWithoutTrendOrHits) {
  PrefetchWindow w(8);
  EXPECT_EQ(w.ComputeSize(/*follows_trend=*/false), 0u);
}

TEST(PrefetchWindow, ProbesOnePageWhenFaultFollowsTrend) {
  PrefetchWindow w(8);
  EXPECT_EQ(w.ComputeSize(/*follows_trend=*/true), 1u);
}

TEST(PrefetchWindow, GrowsToPow2OfHitsPlusOne) {
  PrefetchWindow w(8);
  w.OnPrefetchHit();  // Chit = 1
  EXPECT_EQ(w.ComputeSize(false), 2u);  // round_up(1+1) = 2
  w.OnPrefetchHit();
  w.OnPrefetchHit();  // Chit = 2
  EXPECT_EQ(w.ComputeSize(false), 4u);  // round_up(3) = 4
}

TEST(PrefetchWindow, CappedAtMaxWindow) {
  PrefetchWindow w(8);
  for (int i = 0; i < 40; ++i) {
    w.OnPrefetchHit();
  }
  EXPECT_EQ(w.ComputeSize(false), 8u);
}

TEST(PrefetchWindow, ChitResetsAfterEachDecision) {
  PrefetchWindow w(8);
  w.OnPrefetchHit();
  EXPECT_EQ(w.hits_since_last(), 1u);
  w.ComputeSize(false);
  EXPECT_EQ(w.hits_since_last(), 0u);
}

TEST(PrefetchWindow, SmoothShrinkHalvesInsteadOfSuspending) {
  PrefetchWindow w(8);
  for (int i = 0; i < 10; ++i) {
    w.OnPrefetchHit();
  }
  ASSERT_EQ(w.ComputeSize(false), 8u);
  // Drastic drop: zero hits, fault breaks trend. Window halves (8 -> 4),
  // not suspend.
  EXPECT_EQ(w.ComputeSize(false), 4u);
  EXPECT_EQ(w.ComputeSize(false), 2u);
  EXPECT_EQ(w.ComputeSize(false), 1u);
  // From 1, half rounds to 0: suspended.
  EXPECT_EQ(w.ComputeSize(false), 0u);
  EXPECT_EQ(w.ComputeSize(false), 0u);
}

TEST(PrefetchWindow, SuspensionLiftsWhenTrendReturns) {
  PrefetchWindow w(8);
  ASSERT_EQ(w.ComputeSize(false), 0u);
  EXPECT_EQ(w.ComputeSize(true), 1u);
}

TEST(PrefetchWindow, HitsTrumpTrendBreak) {
  PrefetchWindow w(8);
  w.OnPrefetchHit();
  w.OnPrefetchHit();
  w.OnPrefetchHit();
  // Even though the fault breaks the trend, recent hits grow the window.
  EXPECT_EQ(w.ComputeSize(false), 4u);
}

TEST(PrefetchWindow, NeverShrinksBelowHalfPrevious) {
  PrefetchWindow w(32);
  for (int i = 0; i < 64; ++i) {
    w.OnPrefetchHit();
  }
  size_t prev = w.ComputeSize(false);
  EXPECT_EQ(prev, 32u);
  // Starve it and check the halving invariant at every step.
  while (prev > 0) {
    const size_t next = w.ComputeSize(false);
    EXPECT_GE(next, prev / 2);
    EXPECT_LT(next, prev);
    prev = next;
  }
}

TEST(PrefetchWindow, GrowthAfterPartialHitsIsGradual) {
  PrefetchWindow w(8);
  for (int i = 0; i < 10; ++i) {
    w.OnPrefetchHit();
  }
  ASSERT_EQ(w.ComputeSize(false), 8u);
  // One hit between decisions: round_up(2) = 2, but smooth shrink keeps 4.
  w.OnPrefetchHit();
  EXPECT_EQ(w.ComputeSize(false), 4u);
}

TEST(PrefetchWindow, MaxWindowOfOneBehaves) {
  PrefetchWindow w(1);
  w.OnPrefetchHit();
  EXPECT_EQ(w.ComputeSize(false), 1u);
  EXPECT_EQ(w.ComputeSize(true), 1u);
  EXPECT_EQ(w.ComputeSize(false), 0u);
}

TEST(PrefetchWindow, ResetClearsState) {
  PrefetchWindow w(8);
  for (int i = 0; i < 10; ++i) {
    w.OnPrefetchHit();
  }
  w.ComputeSize(false);
  w.Reset();
  EXPECT_EQ(w.last_size(), 0u);
  EXPECT_EQ(w.hits_since_last(), 0u);
  EXPECT_EQ(w.ComputeSize(false), 0u);
}

// Invariant sweep: the window never exceeds max under arbitrary hit/trend
// sequences.
class WindowInvariantTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WindowInvariantTest, NeverExceedsMax) {
  const size_t max = GetParam();
  PrefetchWindow w(max);
  uint64_t state = max * 2654435761u + 17;
  for (int step = 0; step < 2000; ++step) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const int hits = static_cast<int>(state >> 60) & 0xF;
    for (int h = 0; h < hits; ++h) {
      w.OnPrefetchHit();
    }
    const size_t size = w.ComputeSize((state >> 32 & 1) != 0);
    EXPECT_LE(size, std::max(max, w.last_size()));
    EXPECT_LE(size, max);
  }
}

INSTANTIATE_TEST_SUITE_P(MaxSizes, WindowInvariantTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace leap
