// RDMA fabric and remote-memory agents: queueing, placement, replication,
// failover, read-your-writes.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "src/rdma/host_agent.h"
#include "src/rdma/rdma_nic.h"
#include "src/rdma/remote_agent.h"
#include "src/sim/rng.h"

namespace leap {
namespace {

TEST(RdmaNic, SinglePageOpNearBaseLatency) {
  RdmaNic nic;
  Rng rng(1);
  double sum = 0;
  const int n = 5000;
  SimTimeNs now = 0;
  for (int i = 0; i < n; ++i) {
    const SimTimeNs done = nic.SubmitPageOp(i % nic.num_queues(), now, rng);
    sum += static_cast<double>(done - now);
    now = done + 100000;  // long idle: no queueing
  }
  const double mean_us = sum / n / 1000.0;
  // Paper: ~4.3 us average 4KB RDMA.
  EXPECT_GT(mean_us, 3.5);
  EXPECT_LT(mean_us, 5.2);
}

TEST(RdmaNic, SameQueuePipelinesAtWireRate) {
  // Ops on one queue pair overlap (many outstanding reads), but issue at
  // most one wire slot per serialization interval: n ops issued together
  // cannot all complete before n serialization slots have elapsed.
  RdmaNicConfig config;
  RdmaNic nic(config);
  Rng rng(2);
  constexpr int kOps = 64;
  SimTimeNs last_done = 0;
  for (int i = 0; i < kOps; ++i) {
    last_done = std::max(last_done, nic.SubmitPageOp(0, 0, rng));
  }
  EXPECT_GE(last_done, kOps * config.serialization_ns);
  // Pipelining: far faster than kOps serialized full-latency round trips.
  EXPECT_LT(last_done, kOps * config.base_mean_ns / 2);
}

TEST(RdmaNic, DistinctQueuesOverlapButShareTheWire) {
  RdmaNicConfig config;
  config.num_queues = 8;
  RdmaNic nic(config);
  Rng rng(3);
  std::vector<SimTimeNs> done;
  for (size_t q = 0; q < 8; ++q) {
    done.push_back(nic.SubmitPageOp(q, 0, rng));
  }
  // All eight overlap: the last finishes well before 8 serialized ops...
  const SimTimeNs max_done = *std::max_element(done.begin(), done.end());
  EXPECT_LT(max_done, 8 * config.base_mean_ns);
  // ...but wire serialization still spaces them out by >= 585ns each.
  std::sort(done.begin(), done.end());
  EXPECT_GE(max_done, config.base_min_ns + 8 * config.serialization_ns);
}

TEST(RdmaNic, TracksOpsAndBytes) {
  RdmaNic nic;
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    nic.SubmitPageOp(0, 0, rng);
  }
  EXPECT_EQ(nic.ops_issued(), 10u);
  EXPECT_EQ(nic.bytes_transferred(), 10 * kPageSize);
}

// --- RemoteAgent -------------------------------------------------------------

TEST(RemoteAgent, SlabAccounting) {
  RemoteAgent node(0, 2);
  EXPECT_TRUE(node.MapSlab());
  EXPECT_TRUE(node.MapSlab());
  EXPECT_FALSE(node.MapSlab());
  EXPECT_EQ(node.FreeSlabs(), 0u);
  node.UnmapSlab();
  EXPECT_EQ(node.FreeSlabs(), 1u);
}

TEST(RemoteAgent, PageTagStore) {
  RemoteAgent node(0, 4);
  EXPECT_FALSE(node.LoadPage(5).has_value());
  node.StorePage(5, 0xDEADBEEF);
  EXPECT_EQ(node.LoadPage(5), 0xDEADBEEFu);
}

// --- HostAgent ---------------------------------------------------------------

class HostAgentTest : public ::testing::Test {
 protected:
  void Build(size_t nodes, size_t replicas, size_t slab_pages = 64) {
    for (size_t i = 0; i < nodes; ++i) {
      nodes_.push_back(std::make_unique<RemoteAgent>(i, 1024));
    }
    HostAgentConfig config;
    config.slab_pages = slab_pages;
    config.replicas = replicas;
    std::vector<RemoteAgent*> refs;
    for (auto& n : nodes_) {
      refs.push_back(n.get());
    }
    agent_ = std::make_unique<HostAgent>(config, refs, 99);
  }

  std::vector<std::unique_ptr<RemoteAgent>> nodes_;
  std::unique_ptr<HostAgent> agent_;
};

TEST_F(HostAgentTest, SlabMappedOnFirstTouch) {
  Build(2, 1);
  EXPECT_EQ(agent_->mapped_slab_count(), 0u);
  Rng rng(5);
  const IoRequest req = DemandRead(10);
  SimTimeNs ready = 0;
  agent_->ReadPages({&req, 1}, 0, rng, {&ready, 1});
  EXPECT_EQ(agent_->mapped_slab_count(), 1u);
  EXPECT_GT(ready, 0u);
}

TEST_F(HostAgentTest, ReplicationMapsSlabsOnDistinctNodes) {
  Build(3, 2);
  const auto& mapping = agent_->MappingForSlot(0);
  ASSERT_EQ(mapping.nodes.size(), 2u);
  EXPECT_NE(mapping.nodes[0], mapping.nodes[1]);
}

TEST_F(HostAgentTest, PowerOfTwoChoicesBalancesLoad) {
  Build(4, 1, /*slab_pages=*/16);
  Rng rng(6);
  // Touch 200 slabs.
  for (SwapSlot slab = 0; slab < 200; ++slab) {
    const IoRequest req = DemandRead(slab * 16);
    SimTimeNs ready = 0;
    agent_->ReadPages({&req, 1}, 0, rng, {&ready, 1});
  }
  const auto loads = agent_->NodeLoads();
  const size_t min_load = *std::min_element(loads.begin(), loads.end());
  const size_t max_load = *std::max_element(loads.begin(), loads.end());
  // Two-choices keeps the gap small (random placement would routinely
  // exceed this).
  EXPECT_LE(max_load - min_load, 12u);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), 0u), 200u);
}

TEST_F(HostAgentTest, ReadYourWritesThroughSlabRouting) {
  Build(3, 2);
  Rng rng(7);
  agent_->WriteTag(123, 0xABCD, 0, rng);
  EXPECT_EQ(agent_->ReadTag(123), 0xABCDu);
  EXPECT_FALSE(agent_->ReadTag(9999999).has_value());
}

TEST_F(HostAgentTest, FailoverToReplicaAfterPrimaryFailure) {
  Build(3, 2);
  Rng rng(8);
  agent_->WriteTag(50, 0x1111, 0, rng);
  const auto mapping = agent_->MappingForSlot(50);
  // Kill the primary.
  for (auto& node : nodes_) {
    if (node->node_id() == mapping.nodes[0]) {
      node->Fail();
    }
  }
  EXPECT_EQ(agent_->ReadTag(50), 0x1111u);  // served by the replica
}

TEST_F(HostAgentTest, ReplicatedWritesCompleteAfterAllReplicas) {
  Build(2, 2);
  Rng rng(9);
  const SimTimeNs one = agent_->WritePage(EvictionWrite(0), 0, rng);
  // A write to 2 replicas costs at least one op, and the completion is the
  // max over replicas.
  EXPECT_GT(one, 0u);
  EXPECT_EQ(agent_->nic().ops_issued(), 2u);
}

TEST_F(HostAgentTest, MeanReadLatencyReported) {
  Build(1, 1);
  EXPECT_GT(agent_->MeanReadLatencyNs(), 3000.0);
  EXPECT_EQ(agent_->name(), "remote-memory");
}

}  // namespace
}  // namespace leap
