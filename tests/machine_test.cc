// Machine-level paging pipeline: fault lifecycle, cgroup reclaim, cache
// hits/misses, eager vs lazy eviction, prefetch-cache caps, VFS mode.
#include "src/runtime/machine.h"

#include <gtest/gtest.h>

#include "src/runtime/presets.h"

namespace leap {
namespace {

MachineConfig SmallLeapConfig() {
  MachineConfig config = LeapVmmConfig(/*total_frames=*/4096, /*seed=*/11);
  return config;
}

MachineConfig SmallDefaultConfig() {
  return DefaultVmmConfig(PrefetchKind::kReadAhead, 4096, 11);
}

TEST(Machine, FirstTouchIsMinorFault) {
  Machine machine(SmallLeapConfig());
  const Pid pid = machine.CreateProcess(0);
  const AccessResult r = machine.Access(pid, 42, false, 1000);
  EXPECT_EQ(r.type, AccessType::kMinorFault);
  EXPECT_GT(r.latency, 0u);
  EXPECT_TRUE(machine.IsResident(pid, 42));
}

TEST(Machine, SecondTouchIsLocalHit) {
  Machine machine(SmallLeapConfig());
  const Pid pid = machine.CreateProcess(0);
  machine.Access(pid, 42, false, 1000);
  const AccessResult r = machine.Access(pid, 42, false, 2000);
  EXPECT_EQ(r.type, AccessType::kLocalHit);
  EXPECT_EQ(r.latency, machine.config().local_access_ns);
}

TEST(Machine, CgroupLimitForcesEviction) {
  Machine machine(SmallLeapConfig());
  const Pid pid = machine.CreateProcess(/*cgroup_limit_pages=*/16);
  SimTimeNs now = 0;
  for (Vpn v = 0; v < 32; ++v) {
    now += 10000;
    machine.Access(pid, v, true, now);
  }
  EXPECT_LE(machine.resident_pages(pid), 16u);
  EXPECT_GT(machine.counters().Get(counter::kEvictions), 0u);
  // Dirty pages were written back on their way out.
  EXPECT_GT(machine.counters().Get(counter::kWritebacks), 0u);
}

TEST(Machine, EvictedPageFaultsBackAsMajorFault) {
  Machine machine(SmallLeapConfig());
  const Pid pid = machine.CreateProcess(8);
  SimTimeNs now = 0;
  for (Vpn v = 0; v < 16; ++v) {
    now += 100000;
    machine.Access(pid, v, true, now);
  }
  // Page 0 must have been evicted; touching it again is a remote access.
  ASSERT_FALSE(machine.IsResident(pid, 0));
  now += 100000;
  const AccessResult r = machine.Access(pid, 0, false, now);
  EXPECT_TRUE(r.type == AccessType::kMiss || r.type == AccessType::kCacheHit ||
              r.type == AccessType::kCacheWaitHit);
  EXPECT_TRUE(machine.IsResident(pid, 0));
  EXPECT_GT(machine.counters().Get(counter::kDemandReads) +
                machine.counters().Get(counter::kCacheHits),
            0u);
}

TEST(Machine, SequentialFaultsGetPrefetchHits) {
  Machine machine(SmallLeapConfig());
  const Pid pid = machine.CreateProcess(64);
  SimTimeNs now = 0;
  // Populate 512 pages (evicting along the way), then sweep again:
  // the second sweep faults sequentially through swap.
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (Vpn v = 0; v < 512; ++v) {
      now += 20000;
      machine.Access(pid, v, sweep == 0, now);
    }
  }
  EXPECT_GT(machine.counters().Get(counter::kPrefetchHits), 100u);
  const double coverage = machine.counters().Ratio(
      counter::kPrefetchHits, counter::kCacheMisses);
  EXPECT_GT(coverage, 0.3);
}

TEST(Machine, EagerEvictionKeepsCacheEmptyOfConsumedEntries) {
  Machine machine(SmallLeapConfig());
  const Pid pid = machine.CreateProcess(64);
  SimTimeNs now = 0;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (Vpn v = 0; v < 512; ++v) {
      now += 20000;
      machine.Access(pid, v, sweep == 0, now);
    }
  }
  EXPECT_EQ(machine.stale_entries(), 0u);
  EXPECT_GT(machine.counters().Get(counter::kEagerFrees), 0u);
}

TEST(Machine, LazyEvictionAccumulatesStaleEntriesUntilKswapd) {
  MachineConfig config = SmallDefaultConfig();
  // Slow kswapd so staleness is visible.
  config.kswapd_period_ns = 50 * kNsPerMs;
  Machine machine(config);
  const Pid pid = machine.CreateProcess(64);
  SimTimeNs now = 0;
  size_t max_stale = 0;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (Vpn v = 0; v < 512; ++v) {
      now += 20000;
      machine.Access(pid, v, sweep == 0, now);
      max_stale = std::max(max_stale, machine.stale_entries());
    }
  }
  EXPECT_GT(max_stale, 10u);
  // kswapd retires stale entries and records their eviction wait.
  machine.Access(pid, 0, false, now + kNsPerSec);
  EXPECT_GT(machine.eviction_wait_hist().count(), 0u);
}

TEST(Machine, EagerAllocationIsCheaperThanLazy) {
  auto run = [](MachineConfig config) {
    config.kswapd_period_ns = 10 * kNsPerMs;
    Machine machine(config);
    const Pid pid = machine.CreateProcess(64);
    SimTimeNs now = 0;
    for (int sweep = 0; sweep < 4; ++sweep) {
      for (Vpn v = 0; v < 512; ++v) {
        now += 20000;
        machine.Access(pid, v, sweep == 0, now);
      }
    }
    return machine.alloc_hist().Mean();
  };
  const double lazy_mean = run(SmallDefaultConfig());
  const double eager_mean = run(SmallLeapConfig());
  EXPECT_LT(eager_mean, lazy_mean);
}

TEST(Machine, PrefetchCacheLimitEnforced) {
  MachineConfig config = SmallLeapConfig();
  config.prefetch_cache_limit_pages = 8;
  Machine machine(config);
  const Pid pid = machine.CreateProcess(64);
  SimTimeNs now = 0;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (Vpn v = 0; v < 512; ++v) {
      now += 20000;
      machine.Access(pid, v, sweep == 0, now);
      EXPECT_LE(machine.cache_size(), 24u);  // limit + in-flight slack
    }
  }
}

TEST(Machine, GlobalPressureReclaimsViaDirectReclaim) {
  MachineConfig config = SmallLeapConfig();
  config.total_frames = 128;  // tiny DRAM
  Machine machine(config);
  const Pid pid = machine.CreateProcess(0);  // no cgroup limit
  SimTimeNs now = 0;
  for (Vpn v = 0; v < 512; ++v) {
    now += 50000;
    machine.Access(pid, v, true, now);
  }
  // The machine survives and keeps the resident set within DRAM.
  EXPECT_LE(machine.resident_pages(pid), 128u);
  EXPECT_GT(machine.counters().Get(counter::kEvictions), 0u);
}

TEST(Machine, RemoteReadsCountedOnRemoteMedium) {
  Machine machine(SmallLeapConfig());
  const Pid pid = machine.CreateProcess(8);
  SimTimeNs now = 0;
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (Vpn v = 0; v < 64; ++v) {
      now += 50000;
      machine.Access(pid, v, true, now);
    }
  }
  EXPECT_GT(machine.counters().Get(counter::kRemoteReads), 0u);
  EXPECT_GT(machine.counters().Get(counter::kRemoteWrites), 0u);
  ASSERT_NE(machine.host_agent(), nullptr);
  EXPECT_GT(machine.host_agent()->nic().ops_issued(), 0u);
}

TEST(Machine, DiskMachineHasNoHostAgent) {
  MachineConfig config = DiskSwapConfig(Medium::kHdd, PrefetchKind::kReadAhead,
                                        4096, 1);
  Machine machine(config);
  EXPECT_EQ(machine.host_agent(), nullptr);
}

TEST(Machine, TimelinessRecordedOnPrefetchHits) {
  Machine machine(SmallLeapConfig());
  const Pid pid = machine.CreateProcess(64);
  SimTimeNs now = 0;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (Vpn v = 0; v < 512; ++v) {
      now += 20000;
      machine.Access(pid, v, sweep == 0, now);
    }
  }
  EXPECT_GT(machine.timeliness_hist().count(), 0u);
}

// --- VFS mode ----------------------------------------------------------------

TEST(MachineVfs, WriteThenReadHitsCache) {
  MachineConfig config = LeapVfsConfig(4096, 256, 5);
  Machine machine(config);
  const Pid pid = machine.CreateProcess(0);
  const AccessResult w = machine.Access(pid, 10, true, 1000);
  EXPECT_EQ(w.type, AccessType::kMinorFault);  // write-allocate
  const AccessResult r = machine.Access(pid, 10, false, 5000);
  EXPECT_EQ(r.type, AccessType::kCacheHit);
}

TEST(MachineVfs, CacheLimitEvictsAndWritesBackDirtyPages) {
  MachineConfig config = LeapVfsConfig(4096, /*vfs_cache_pages=*/32, 5);
  Machine machine(config);
  const Pid pid = machine.CreateProcess(0);
  SimTimeNs now = 0;
  for (Vpn v = 0; v < 256; ++v) {
    now += 20000;
    machine.Access(pid, v, true, now);
  }
  EXPECT_LE(machine.cache_size(), 33u);
  EXPECT_GT(machine.counters().Get(counter::kWritebacks), 0u);
  // Re-reading evicted offsets misses.
  const AccessResult r = machine.Access(pid, 0, false, now + 100000);
  EXPECT_EQ(r.type, AccessType::kMiss);
}

TEST(MachineVfs, SequentialReadsPrefetchWell) {
  MachineConfig config = LeapVfsConfig(8192, 1024, 5);
  Machine machine(config);
  const Pid pid = machine.CreateProcess(0);
  SimTimeNs now = 0;
  // Write 2048 file pages, then stream them back twice.
  for (Vpn v = 0; v < 2048; ++v) {
    now += 5000;
    machine.Access(pid, v, true, now);
  }
  for (Vpn v = 0; v < 2048; ++v) {
    now += 5000;
    machine.Access(pid, v, false, now);
  }
  EXPECT_GT(machine.counters().Get(counter::kPrefetchHits), 300u);
}

}  // namespace
}  // namespace leap
