#include "src/sim/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedValuesStayInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextU64(17), 17u);
  }
  EXPECT_EQ(rng.NextU64(0), 0u);
  EXPECT_EQ(rng.NextU64(1), 0u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 50000, 0.5, 0.01);
}

TEST(Rng, BoolProbabilityRoughlyHonored) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 50000; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 50000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0;
  double sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  std::set<uint64_t> parent_vals;
  for (int i = 0; i < 100; ++i) {
    parent_vals.insert(parent.NextU64());
  }
  int collisions = 0;
  for (int i = 0; i < 100; ++i) {
    collisions += parent_vals.count(child.NextU64());
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, UniformCoverageAcrossBuckets) {
  Rng rng(23);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.NextU64(10)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);
  }
}

}  // namespace
}  // namespace leap
