// Boyer-Moore majority vote: unit tests plus randomized property checks
// against a brute-force oracle.
#include "src/core/majority.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/rng.h"

namespace leap {
namespace {

std::optional<PageDelta> BruteForceMajority(
    const std::vector<PageDelta>& window) {
  std::map<PageDelta, size_t> counts;
  for (PageDelta d : window) {
    ++counts[d];
  }
  for (const auto& [value, count] : counts) {
    if (count >= window.size() / 2 + 1) {
      return value;
    }
  }
  return std::nullopt;
}

TEST(BoyerMooreMajority, EmptyWindowHasNoMajority) {
  EXPECT_FALSE(BoyerMooreMajority({}).has_value());
}

TEST(BoyerMooreMajority, SingletonIsItsOwnMajority) {
  const std::vector<PageDelta> w = {7};
  EXPECT_EQ(BoyerMooreMajority(w), 7);
}

TEST(BoyerMooreMajority, UnanimousWindow) {
  const std::vector<PageDelta> w = {-3, -3, -3, -3};
  EXPECT_EQ(BoyerMooreMajority(w), -3);
}

TEST(BoyerMooreMajority, ExactHalfIsNotMajority) {
  const std::vector<PageDelta> w = {1, 1, 2, 2};
  EXPECT_FALSE(BoyerMooreMajority(w).has_value());
}

TEST(BoyerMooreMajority, BareMajorityDetected) {
  const std::vector<PageDelta> w = {1, 2, 1, 3, 1};
  EXPECT_EQ(BoyerMooreMajority(w), 1);
}

TEST(BoyerMooreMajority, MajorityAtWindowEnd) {
  const std::vector<PageDelta> w = {5, 9, 2, 2, 2};
  EXPECT_EQ(BoyerMooreMajority(w), 2);
}

TEST(BoyerMooreMajority, NegativeDeltasWork) {
  const std::vector<PageDelta> w = {-10, -10, 4, -10, -10, 6};
  EXPECT_EQ(BoyerMooreMajority(w), -10);
}

TEST(BoyerMooreMajority, CandidateSurvivesPairingButFailsCount) {
  // Boyer-Moore pass 1 ends with candidate 3, but it is not a majority;
  // the verification pass must reject it.
  const std::vector<PageDelta> w = {1, 2, 3, 4, 3};
  EXPECT_FALSE(BoyerMooreMajority(w).has_value());
}

TEST(MajorityOfNewest, UsesOnlyTheNewestWEntries) {
  AccessHistory h(8);
  for (PageDelta d : {9, 9, 9, 9, 2, 2, 2}) {
    h.Push(d);
  }
  // Newest 3 entries are {2, 2, 2}.
  EXPECT_EQ(MajorityOfNewest(h, 3), 2);
  // Across all 7 entries, 9 appears 4 times: majority.
  EXPECT_EQ(MajorityOfNewest(h, 7), 9);
}

TEST(MajorityOfNewest, WindowLargerThanHistoryUsesAvailable) {
  AccessHistory h(16);
  h.Push(4);
  h.Push(4);
  h.Push(5);
  EXPECT_EQ(MajorityOfNewest(h, 100), 4);
}

TEST(MajorityOfNewest, EmptyHistory) {
  AccessHistory h(16);
  EXPECT_FALSE(MajorityOfNewest(h, 8).has_value());
}

// ---------------------------------------------------------------------------
// Property: Boyer-Moore agrees with brute force on random windows.

class MajorityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MajorityPropertyTest, MatchesBruteForceOracle) {
  Rng rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 400; ++trial) {
    const size_t len = 1 + rng.NextU64(33);
    // Small alphabets make majorities likely; large make them rare.
    const int64_t alphabet = 1 + static_cast<int64_t>(rng.NextU64(5));
    std::vector<PageDelta> window(len);
    for (auto& d : window) {
      d = rng.NextInt(-alphabet, alphabet);
    }
    EXPECT_EQ(BoyerMooreMajority(window), BruteForceMajority(window))
        << "trial " << trial << " len " << len;

    // The ring-buffer variant must agree when fed the same data.
    AccessHistory h(len);
    for (PageDelta d : window) {
      h.Push(d);
    }
    // MajorityOfNewest iterates newest-first; majority is order-invariant.
    EXPECT_EQ(MajorityOfNewest(h, len), BruteForceMajority(window));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MajorityPropertyTest,
                         ::testing::Range(0, 8));

// Property: any element occupying floor(w/2)+1 slots is always found.
TEST(BoyerMooreMajority, PlantedMajorityAlwaysFound) {
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t len = 1 + rng.NextU64(40);
    const size_t quota = len / 2 + 1;
    const PageDelta planted = rng.NextInt(-100, 100);
    std::vector<PageDelta> window;
    for (size_t i = 0; i < quota; ++i) {
      window.push_back(planted);
    }
    while (window.size() < len) {
      // Filler distinct from the planted value.
      window.push_back(planted + 1 + rng.NextInt(0, 50));
    }
    // Shuffle.
    for (size_t i = window.size(); i > 1; --i) {
      std::swap(window[i - 1], window[rng.NextU64(i)]);
    }
    ASSERT_EQ(BoyerMooreMajority(window), planted);
  }
}

}  // namespace
}  // namespace leap
