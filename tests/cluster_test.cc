// Cluster subsystem tests: same-seed bit-identical runs, fabric contention
// (p99 remote latency rises with host count at fixed per-link bandwidth),
// placement-policy effects at cluster level, node failure/recovery with
// read-your-writes across re-mapped slabs, donor-pool exhaustion degrading
// gracefully (counted), and host join/leave.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/cluster.h"
#include "src/runtime/presets.h"
#include "src/workload/cluster_mix.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

constexpr size_t kFootprint = 2048;

// Small-slab Leap-stack host template so a few thousand pages exercise
// many slabs and both placement and repair see real work.
ClusterConfig SmallCluster(size_t hosts, size_t nodes) {
  ClusterConfig config;
  config.hosts = hosts;
  config.nodes = nodes;
  config.node_capacity_slabs = 4096;
  config.host = LeapVmmConfig(/*total_frames=*/4096, /*seed=*/42);
  config.host.host_agent.slab_pages = 64;
  config.seed = 42;
  return config;
}

// Warm every host's working set back-to-back on the shared timeline, then
// run one mixed-pattern app per host (zipf / sequential / trace cycling).
struct MixedRun {
  std::vector<RunResult> results;
  std::vector<std::unique_ptr<AccessStream>> streams;
};

MixedRun RunMixed(Cluster& cluster, size_t accesses_per_host) {
  MixedRun out;
  std::vector<ClusterAppSpec> specs;
  SimTimeNs warm_end = 0;
  std::vector<Pid> pids;
  for (size_t h = 0; h < cluster.num_hosts(); ++h) {
    const Pid pid = cluster.host(h).CreateProcess(kFootprint / 2);
    pids.push_back(pid);
    warm_end = WarmUp(cluster.host(h), pid, kFootprint, warm_end);
    out.streams.push_back(MakeClusterMixStream(h, kFootprint));
  }
  for (size_t h = 0; h < cluster.num_hosts(); ++h) {
    RunConfig run;
    run.total_accesses = accesses_per_host;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    run.seed = 100 + h;
    specs.push_back({h, pids[h], out.streams[h].get(), run});
  }
  out.results = cluster.Run(std::move(specs));
  return out;
}

// --- determinism -------------------------------------------------------------

struct ClusterFingerprint {
  std::vector<std::map<std::string, uint64_t>> host_counters;
  std::vector<SimTimeNs> completions;
  std::vector<uint64_t> p99s;
  uint64_t fabric_ops = 0;
  std::vector<uint64_t> node_reads;
  std::vector<size_t> node_slabs;

  bool operator==(const ClusterFingerprint&) const = default;
};

ClusterFingerprint FingerprintOnce(const ClusterConfig& config) {
  Cluster cluster(config);
  const MixedRun run = RunMixed(cluster, 8000);
  ClusterFingerprint fp;
  for (size_t h = 0; h < cluster.num_hosts(); ++h) {
    fp.host_counters.push_back(cluster.host(h).counters().values());
    fp.completions.push_back(run.results[h].completion_ns);
    fp.p99s.push_back(cluster.host_remote_latency(h).Percentile(0.99));
  }
  const ClusterStats stats = cluster.Stats();
  fp.fabric_ops = stats.fabric_ops;
  fp.node_reads = stats.node_reads;
  fp.node_slabs = stats.node_slabs;
  return fp;
}

TEST(Cluster, SameSeedBitIdenticalCounters) {
  const ClusterConfig config = SmallCluster(3, 2);
  const ClusterFingerprint first = FingerprintOnce(config);
  const ClusterFingerprint second = FingerprintOnce(config);
  EXPECT_EQ(first.host_counters, second.host_counters);
  EXPECT_TRUE(first == second) << "non-counter cluster state diverged";
  // Vacuous determinism guard: the run must have touched the fabric.
  EXPECT_GT(first.fabric_ops, 0u);
  for (const auto& counters : first.host_counters) {
    EXPECT_GT(counters.at("remote_reads"), 0u);
  }
}

// --- fabric contention -------------------------------------------------------

// Acceptance criterion: with per-link bandwidth fixed, p99 remote latency
// must rise as hosts are added (4-host/2-node vs 1-host/2-node).
TEST(Cluster, FabricContentionRaisesTailLatencyWithHostCount) {
  auto p99_at_scale = [](size_t hosts) {
    ClusterConfig config = SmallCluster(hosts, 2);
    // A modest fabric makes contention visible at test sizes.
    config.fabric.link_gbps = 25.0;
    Cluster cluster(config);
    MixedRun run = RunMixed(cluster, 6000);
    Histogram merged;
    for (size_t h = 0; h < cluster.num_hosts(); ++h) {
      merged.Merge(cluster.host_remote_latency(h));
    }
    EXPECT_GT(merged.count(), 0u);
    return merged.Percentile(0.99);
  };
  const uint64_t p99_one = p99_at_scale(1);
  const uint64_t p99_four = p99_at_scale(4);
  EXPECT_GT(p99_four, p99_one)
      << "4 hosts on 2 nodes should queue behind each other";
}

// --- placement ---------------------------------------------------------------

// Acceptance criterion: power-of-two-choices beats first-fit on slab
// imbalance in a real cluster run.
TEST(Cluster, PowerOfTwoBeatsFirstFitOnSlabImbalance) {
  auto imbalance_with = [](PlacementPolicy policy) {
    ClusterConfig config = SmallCluster(4, 4);
    config.placement = policy;
    Cluster cluster(config);
    RunMixed(cluster, 2000);
    return cluster.Stats().SlabImbalance();
  };
  const size_t first_fit = imbalance_with(PlacementPolicy::kFirstFit);
  const size_t po2 = imbalance_with(PlacementPolicy::kPowerOfTwo);
  EXPECT_LT(po2, first_fit);
  // First-fit piles every primary on node 0 and every replica on node 1.
  EXPECT_GT(first_fit, 30u);
}

TEST(Cluster, StripedPlacementSpreadsEveryNode) {
  ClusterConfig config = SmallCluster(2, 4);
  config.placement = PlacementPolicy::kStriped;
  Cluster cluster(config);
  RunMixed(cluster, 2000);
  const ClusterStats stats = cluster.Stats();
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_GT(stats.node_slabs[n], 0u) << "node " << n;
  }
}

// --- failure / recovery ------------------------------------------------------

TEST(Cluster, NodeFailureRepairPreservesReadYourWrites) {
  ClusterConfig config = SmallCluster(2, 3);
  config.host.host_agent.slab_pages = 32;
  config.host.host_agent.replicas = 2;
  Cluster cluster(config);
  HostAgent* agent = cluster.host(0).host_agent();
  ASSERT_NE(agent, nullptr);
  Rng rng(7);

  // Generation 1: tags across 8 slabs, before any failure.
  auto tag1 = [](SwapSlot slot) { return slot * 31 + 5; };
  for (SwapSlot slot = 0; slot < 256; ++slot) {
    agent->WriteTag(slot, tag1(slot), /*now=*/0, rng);
  }

  // Fail a node that actually holds data; repair re-maps and re-replicates
  // on the shared clock.
  uint32_t victim = 0;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    if (cluster.node(n).stored_pages() > 0) {
      victim = static_cast<uint32_t>(n);
      break;
    }
  }
  cluster.ScheduleNodeFailure(victim, 1 * kNsPerMs);
  cluster.events().RunUntil(2 * kNsPerMs);
  ASSERT_TRUE(cluster.node(victim).failed());

  const ClusterStats after_fail = cluster.Stats();
  EXPECT_EQ(after_fail.totals.Get(counter::kNodeFailures), 1u);
  EXPECT_GT(after_fail.totals.Get(counter::kSlabRepairs), 0u);
  EXPECT_GT(after_fail.totals.Get(counter::kRepairPageCopies), 0u);

  // Generation 2: overwrite half the slots while the node is down.
  auto tag2 = [](SwapSlot slot) { return slot * 131 + 9; };
  for (SwapSlot slot = 0; slot < 256; slot += 2) {
    agent->WriteTag(slot, tag2(slot), 3 * kNsPerMs, rng);
  }

  // Read-your-writes across the re-mapped slabs, while failed.
  for (SwapSlot slot = 0; slot < 256; ++slot) {
    const auto expected = (slot % 2 == 0) ? tag2(slot) : tag1(slot);
    ASSERT_EQ(agent->ReadTag(slot), expected) << "slot " << slot;
  }

  // Recovery: the node rejoins the pool; reads still see the latest tags.
  cluster.ScheduleNodeRecovery(victim, 4 * kNsPerMs);
  cluster.events().RunUntil(5 * kNsPerMs);
  ASSERT_FALSE(cluster.node(victim).failed());
  for (SwapSlot slot = 0; slot < 256; ++slot) {
    const auto expected = (slot % 2 == 0) ? tag2(slot) : tag1(slot);
    ASSERT_EQ(agent->ReadTag(slot), expected) << "slot " << slot;
  }
  EXPECT_EQ(cluster.Stats().totals.Get(counter::kNodeRecoveries), 1u);
}

TEST(Cluster, FailureDuringRunKeepsHostsFinishing) {
  ClusterConfig config = SmallCluster(2, 3);
  config.host.host_agent.replicas = 2;
  Cluster cluster(config);
  // Fail node 0 shortly into the measured run, recover it later; the apps
  // must still finish (reads fail over / hit repaired replicas).
  std::vector<ClusterAppSpec> specs;
  std::vector<std::unique_ptr<AccessStream>> streams;
  SimTimeNs warm_end = 0;
  std::vector<Pid> pids;
  for (size_t h = 0; h < 2; ++h) {
    const Pid pid = cluster.host(h).CreateProcess(kFootprint / 2);
    pids.push_back(pid);
    warm_end = WarmUp(cluster.host(h), pid, kFootprint, warm_end);
    streams.push_back(std::make_unique<SequentialStream>(kFootprint, 300));
  }
  cluster.ScheduleNodeFailure(0, warm_end + 12 * kNsPerMs);
  cluster.ScheduleNodeRecovery(0, warm_end + 40 * kNsPerMs);
  for (size_t h = 0; h < 2; ++h) {
    RunConfig run;
    run.total_accesses = 10000;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  const auto results = cluster.Run(std::move(specs));
  EXPECT_TRUE(results[0].finished);
  EXPECT_TRUE(results[1].finished);
  // The workloads may finish before the scheduled recovery: advance the
  // shared clock past it so the scenario completes.
  cluster.events().RunUntil(warm_end + 50 * kNsPerMs);
  const ClusterStats stats = cluster.Stats();
  EXPECT_EQ(stats.totals.Get(counter::kNodeFailures), 1u);
  EXPECT_EQ(stats.totals.Get(counter::kNodeRecoveries), 1u);
}

// --- capacity exhaustion -----------------------------------------------------

TEST(Cluster, CapacityExhaustionIsCountedAndDegradesGracefully) {
  ClusterConfig config = SmallCluster(1, 1);
  config.node_capacity_slabs = 2;  // 2 slabs of 64 pages vs 2048-page set
  config.host.host_agent.replicas = 1;
  Cluster cluster(config);
  const MixedRun run = RunMixed(cluster, 6000);
  EXPECT_TRUE(run.results[0].finished);
  const ClusterStats stats = cluster.Stats();
  // Every slab past the first two surfaced as a counted exhaustion event
  // and its I/O degraded to the overflow medium instead of wedging.
  EXPECT_GT(stats.totals.Get(counter::kRemoteCapacityExhausted), 0u);
  EXPECT_GT(stats.totals.Get(counter::kOverflowReads), 0u);
  EXPECT_GT(stats.totals.Get(counter::kOverflowWrites), 0u);
  EXPECT_EQ(cluster.host(0).host_agent()->overflow_slab_count(),
            stats.totals.Get(counter::kRemoteCapacityExhausted));
}

// --- membership --------------------------------------------------------------

TEST(Cluster, HostJoinAndLeaveReturnSlabsToThePool) {
  ClusterConfig config = SmallCluster(1, 2);
  Cluster cluster(config);
  const size_t joined = cluster.AddHost();
  EXPECT_EQ(joined, 1u);
  EXPECT_EQ(cluster.num_hosts(), 2u);

  RunMixed(cluster, 2000);
  const size_t mapped_before = cluster.Stats().node_slabs[0] +
                               cluster.Stats().node_slabs[1];
  EXPECT_GT(cluster.host(1).host_agent()->mapped_slab_count(), 0u);

  cluster.RemoveHost(1);
  EXPECT_FALSE(cluster.HostAlive(1));
  const size_t mapped_after =
      cluster.Stats().node_slabs[0] + cluster.Stats().node_slabs[1];
  EXPECT_LT(mapped_after, mapped_before);
  const ClusterStats stats = cluster.Stats();
  EXPECT_EQ(stats.totals.Get(counter::kHostJoins), 2u);
  EXPECT_EQ(stats.totals.Get(counter::kHostLeaves), 1u);
}

TEST(Cluster, ScheduledHostLeaveStopsItsWorkloadMidRun) {
  ClusterConfig config = SmallCluster(2, 2);
  Cluster cluster(config);
  std::vector<ClusterAppSpec> specs;
  std::vector<std::unique_ptr<AccessStream>> streams;
  SimTimeNs warm_end = 0;
  std::vector<Pid> pids;
  for (size_t h = 0; h < 2; ++h) {
    const Pid pid = cluster.host(h).CreateProcess(kFootprint / 2);
    pids.push_back(pid);
    warm_end = WarmUp(cluster.host(h), pid, kFootprint, warm_end);
    streams.push_back(std::make_unique<SequentialStream>(kFootprint, 300));
  }
  cluster.ScheduleHostLeave(1, warm_end + 12 * kNsPerMs);
  for (size_t h = 0; h < 2; ++h) {
    RunConfig run;
    run.total_accesses = 20000;
    run.start_time_ns = warm_end + 10 * kNsPerMs;
    specs.push_back({h, pids[h], streams[h].get(), run});
  }
  const auto results = cluster.Run(std::move(specs));
  EXPECT_TRUE(results[0].finished);
  EXPECT_FALSE(results[1].finished);
  EXPECT_LT(results[1].accesses, 20000u);
  EXPECT_GT(results[1].accesses, 0u);
}

}  // namespace
}  // namespace leap
