#include "src/sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&](SimTimeNs) { order.push_back(3); });
  q.ScheduleAt(10, [&](SimTimeNs) { order.push_back(1); });
  q.ScheduleAt(20, [&](SimTimeNs) { order.push_back(2); });
  EXPECT_EQ(q.RunUntil(100), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(42, [&order, i](SimTimeNs) { order.push_back(i); });
  }
  q.RunUntil(42);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilIsInclusive) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(50, [&](SimTimeNs) { ++ran; });
  EXPECT_EQ(q.RunUntil(49), 0u);
  EXPECT_EQ(q.RunUntil(50), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CallbackReceivesScheduledTime) {
  EventQueue q;
  SimTimeNs seen = 0;
  q.ScheduleAt(77, [&](SimTimeNs when) { seen = when; });
  q.RunUntil(100);
  EXPECT_EQ(seen, 77u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTimeNs> fired;
  // Self-rescheduling event (like kswapd's periodic wakeup).
  std::function<void(SimTimeNs)> tick = [&](SimTimeNs when) {
    fired.push_back(when);
    if (when < 50) {
      q.ScheduleAt(when + 10, tick);
    }
  };
  q.ScheduleAt(10, tick);
  q.RunUntil(100);
  EXPECT_EQ(fired, (std::vector<SimTimeNs>{10, 20, 30, 40, 50}));
}

TEST(EventQueue, ChildEventDueWithinWindowRunsInSameDrain) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(10, [&](SimTimeNs) {
    q.ScheduleAt(15, [&](SimTimeNs) { ++ran; });
  });
  q.RunUntil(20);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, NextEventTime) {
  EventQueue q;
  EXPECT_EQ(q.NextEventTime(), EventQueue::kNoEvent);
  q.ScheduleAt(99, [](SimTimeNs) {});
  q.ScheduleAt(12, [](SimTimeNs) {});
  EXPECT_EQ(q.NextEventTime(), 12u);
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(5, [&](SimTimeNs) { ++ran; });
  q.Clear();
  EXPECT_EQ(q.RunUntil(100), 0u);
  EXPECT_EQ(ran, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunRecyclesNodesThroughThePool) {
  EventQueue q;
  // Schedule-and-drain in a loop: after the first round the pool supplies
  // every node, so the pool never grows past the peak outstanding count.
  for (int round = 0; round < 100; ++round) {
    q.ScheduleAt(static_cast<SimTimeNs>(round), [](SimTimeNs) {});
    q.ScheduleAt(static_cast<SimTimeNs>(round), [](SimTimeNs) {});
    q.RunUntil(static_cast<SimTimeNs>(round));
  }
  EXPECT_LE(q.pool_capacity(), 2u);
  EXPECT_EQ(q.free_pool_size(), q.pool_capacity());
}

TEST(EventQueue, ClearRecyclesNodes) {
  EventQueue q;
  for (int i = 0; i < 16; ++i) {
    q.ScheduleAt(static_cast<SimTimeNs>(i), [](SimTimeNs) {});
  }
  const size_t pool = q.pool_capacity();
  EXPECT_EQ(pool, 16u);
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.free_pool_size(), pool) << "Clear must return nodes, not leak";
  // Re-scheduling reuses recycled nodes instead of growing the pool.
  for (int i = 0; i < 16; ++i) {
    q.ScheduleAt(static_cast<SimTimeNs>(i), [](SimTimeNs) {});
  }
  EXPECT_EQ(q.pool_capacity(), pool);
  EXPECT_EQ(q.free_pool_size(), 0u);
}

TEST(EventQueue, FifoTiesPreservedAcrossPoolReuse) {
  EventQueue q;
  std::vector<int> order;
  // Populate and drain to seed the free pool in a scrambled order.
  for (int i = 0; i < 8; ++i) {
    q.ScheduleAt(static_cast<SimTimeNs>(i % 3), [](SimTimeNs) {});
  }
  q.RunUntil(10);
  // Same-time events must still run in scheduling order even though their
  // nodes come from the recycled pool.
  for (int i = 0; i < 8; ++i) {
    q.ScheduleAt(42, [&order, i](SimTimeNs) { order.push_back(i); });
  }
  q.RunUntil(42);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, InterleavedScheduleRunKeepsHeapOrder) {
  // Stress the 4-ary heap: pseudo-random times, interleaved partial drains;
  // observed run order must be globally non-decreasing in time.
  EventQueue q;
  std::vector<SimTimeNs> observed;
  uint64_t state = 12345;
  auto next_rand = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % 1000;
  };
  SimTimeNs drained_until = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTimeNs when = drained_until + next_rand();
    q.ScheduleAt(when, [&observed](SimTimeNs now) { observed.push_back(now); });
    if (i % 7 == 0) {
      drained_until += 100;
      q.RunUntil(drained_until);
    }
  }
  q.RunUntil(EventQueue::kNoEvent - 1);
  ASSERT_EQ(observed.size(), 500u);
  for (size_t i = 1; i < observed.size(); ++i) {
    EXPECT_LE(observed[i - 1], observed[i]);
  }
}

}  // namespace
}  // namespace leap
