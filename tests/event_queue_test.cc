#include "src/sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&](SimTimeNs) { order.push_back(3); });
  q.ScheduleAt(10, [&](SimTimeNs) { order.push_back(1); });
  q.ScheduleAt(20, [&](SimTimeNs) { order.push_back(2); });
  EXPECT_EQ(q.RunUntil(100), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(42, [&order, i](SimTimeNs) { order.push_back(i); });
  }
  q.RunUntil(42);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilIsInclusive) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(50, [&](SimTimeNs) { ++ran; });
  EXPECT_EQ(q.RunUntil(49), 0u);
  EXPECT_EQ(q.RunUntil(50), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CallbackReceivesScheduledTime) {
  EventQueue q;
  SimTimeNs seen = 0;
  q.ScheduleAt(77, [&](SimTimeNs when) { seen = when; });
  q.RunUntil(100);
  EXPECT_EQ(seen, 77u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTimeNs> fired;
  // Self-rescheduling event (like kswapd's periodic wakeup).
  std::function<void(SimTimeNs)> tick = [&](SimTimeNs when) {
    fired.push_back(when);
    if (when < 50) {
      q.ScheduleAt(when + 10, tick);
    }
  };
  q.ScheduleAt(10, tick);
  q.RunUntil(100);
  EXPECT_EQ(fired, (std::vector<SimTimeNs>{10, 20, 30, 40, 50}));
}

TEST(EventQueue, ChildEventDueWithinWindowRunsInSameDrain) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(10, [&](SimTimeNs) {
    q.ScheduleAt(15, [&](SimTimeNs) { ++ran; });
  });
  q.RunUntil(20);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, NextEventTime) {
  EventQueue q;
  EXPECT_EQ(q.NextEventTime(), EventQueue::kNoEvent);
  q.ScheduleAt(99, [](SimTimeNs) {});
  q.ScheduleAt(12, [](SimTimeNs) {});
  EXPECT_EQ(q.NextEventTime(), 12u);
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(5, [&](SimTimeNs) { ++ran; });
  q.Clear();
  EXPECT_EQ(q.RunUntil(100), 0u);
  EXPECT_EQ(ran, 0);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace leap
