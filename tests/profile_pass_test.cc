// Offline profile pass: determinism, serialization round-trip, hint
// extraction on synthetic traces, and the empty-profile == NonePrefetcher
// equivalence through a full Machine run.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "src/prefetch/profile_guided.h"
#include "src/prefetch/profile_pass.h"
#include "src/runtime/app_runner.h"
#include "src/runtime/machine.h"
#include "src/runtime/presets.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

// Synthetic trace: `count` consecutive faults striding by `stride` from
// `start`, one record per fault.
void AppendStrided(FaultTrace& trace, Pid pid, SwapSlot start,
                   PageDelta stride, size_t count) {
  SwapSlot slot = start;
  for (size_t i = 0; i < count; ++i) {
    trace.push_back(FaultRecord{pid, slot, SimTimeNs(1000 * i), false});
    slot = static_cast<SwapSlot>(slot + stride);
  }
}

TEST(ProfilePass, ExtractsDominantStridePerRegion) {
  FaultTrace trace;
  // Region 0 (slots 0..255): stride 3. Region 4 (slots 1024..): stride 7.
  AppendStrided(trace, 1, 0, 3, 60);
  AppendStrided(trace, 1, 1024, 7, 30);
  PrefetchProfile profile = BuildProfile(trace);

  ASSERT_EQ(profile.hints.size(), 2u);
  EXPECT_EQ(profile.hints[0].region, 0u);
  EXPECT_EQ(profile.hints[0].stride, 3);
  EXPECT_EQ(profile.hints[1].region, 4u);
  EXPECT_EQ(profile.hints[1].stride, 7);
  for (const ProfileHint& h : profile.hints) {
    EXPECT_GE(h.share_pct, 55u);
    EXPECT_GE(h.depth, 1u);
  }
  EXPECT_NE(profile.FindRegion(0), nullptr);
  EXPECT_NE(profile.FindRegion(4), nullptr);
  EXPECT_EQ(profile.FindRegion(2), nullptr);
}

TEST(ProfilePass, StrideMultiplesExtendTheDominantStride) {
  // A stride-10 loop whose trace skips resident pages shows deltas of 10,
  // 20, 30; all must count toward the stride-10 share.
  FaultTrace trace;
  SwapSlot slot = 0;
  const PageDelta seq[] = {10, 10, 20, 10, 30, 10, 20, 10, 10, 20};
  for (int rep = 0; rep < 4; ++rep) {
    for (PageDelta d : seq) {
      trace.push_back(FaultRecord{1, slot, 0, false});
      slot = static_cast<SwapSlot>(slot + d);
    }
  }
  PrefetchProfile profile = BuildProfile(trace);
  ASSERT_FALSE(profile.empty());
  EXPECT_EQ(profile.hints[0].stride, 10);
  EXPECT_GE(profile.hints[0].share_pct, 90u);
}

TEST(ProfilePass, IrregularRegionsAndThinSamplesYieldNoHint) {
  FaultTrace trace;
  // Scrambled region: no delta clears the share gate.
  const PageDelta scrambled[] = {17, -5, 40, 3, -29, 11, 52, -7,
                                 23, -41, 9, 35, -13, 61, 5, -19};
  SwapSlot slot = 128;
  for (int rep = 0; rep < 4; ++rep) {
    for (PageDelta d : scrambled) {
      trace.push_back(FaultRecord{1, slot, 0, false});
      slot = static_cast<SwapSlot>((slot + d) % 256);
    }
  }
  // Thin region: a perfect stride but below min_samples.
  AppendStrided(trace, 2, 4096, 2, 4);
  PrefetchProfile profile = BuildProfile(trace);
  EXPECT_TRUE(profile.empty());
}

TEST(ProfilePass, PerPidHistoriesDoNotCrossPollinate) {
  // Two tenants interleaved 1:1 in the same region, each striding by 4
  // from different bases. A shared history would see garbage deltas; the
  // per-pid pass must still find stride 4.
  FaultTrace trace;
  SwapSlot a = 0;
  SwapSlot b = 128;
  for (int i = 0; i < 40; ++i) {
    trace.push_back(FaultRecord{1, a, 0, false});
    trace.push_back(FaultRecord{2, b, 0, false});
    a += 4;
    b += 4;
  }
  PrefetchProfile profile = BuildProfile(trace);
  ASSERT_FALSE(profile.empty());
  for (const ProfileHint& h : profile.hints) {
    EXPECT_EQ(h.stride, 4);
  }
}

TEST(ProfilePass, BuildIsDeterministic) {
  FaultTrace trace;
  AppendStrided(trace, 1, 0, 3, 100);
  AppendStrided(trace, 2, 512, -2, 50);
  AppendStrided(trace, 1, 2048, 10, 80);
  const PrefetchProfile first = BuildProfile(trace);
  const PrefetchProfile second = BuildProfile(trace);
  EXPECT_TRUE(first == second);
  ASSERT_FALSE(first.empty());
}

TEST(ProfilePass, SerializeParseRoundTrip) {
  FaultTrace trace;
  AppendStrided(trace, 1, 0, 3, 100);
  AppendStrided(trace, 1, 1024, 7, 60);
  const PrefetchProfile profile = BuildProfile(trace);
  ASSERT_FALSE(profile.empty());

  const std::string text = profile.Serialize();
  const auto parsed = PrefetchProfile::Parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(profile == *parsed);
}

TEST(ProfilePass, ParseRejectsMalformedInput) {
  EXPECT_FALSE(PrefetchProfile::Parse("").has_value());
  EXPECT_FALSE(PrefetchProfile::Parse("not-a-profile\n").has_value());
  EXPECT_FALSE(
      PrefetchProfile::Parse("leap-prefetch-profile v1\n").has_value());
  EXPECT_FALSE(PrefetchProfile::Parse(
                   "leap-prefetch-profile v1\nregion_shift 99\n")
                   .has_value());
  // Zero stride.
  EXPECT_FALSE(PrefetchProfile::Parse(
                   "leap-prefetch-profile v1\nregion_shift 8\n1 0 2 80\n")
                   .has_value());
  // Unsorted regions.
  EXPECT_FALSE(PrefetchProfile::Parse("leap-prefetch-profile v1\n"
                                      "region_shift 8\n5 1 2 80\n3 1 2 80\n")
                   .has_value());
  // Share above 100.
  EXPECT_FALSE(PrefetchProfile::Parse(
                   "leap-prefetch-profile v1\nregion_shift 8\n1 2 2 101\n")
                   .has_value());
  // A valid minimal profile does parse.
  EXPECT_TRUE(PrefetchProfile::Parse(
                  "leap-prefetch-profile v1\nregion_shift 8\n1 2 2 80\n")
                  .has_value());
}

// An empty profile must make the policy a no-op: bit-identical machine
// behaviour to the none prefetcher under the same seed.
TEST(ProfileGuided, EmptyProfileMatchesNonePrefetcher) {
  auto run = [](PrefetchKind kind) {
    MachineConfig config = DefaultVmmConfig(kind, 1 << 14, 42);
    Machine machine(config);
    const Pid pid = machine.CreateProcess(2048);
    const SimTimeNs warm_end = WarmUp(machine, pid, 4096);
    RunConfig rc;
    rc.total_accesses = 20000;
    rc.start_time_ns = warm_end + 10 * kNsPerMs;
    StrideStream stream(4096, 10, 750);
    const RunResult rr = RunApp(machine, pid, stream, rc);
    return std::pair{rr.completion_ns, machine.counters().values()};
  };
  const auto none = run(PrefetchKind::kNone);
  const auto guided = run(PrefetchKind::kProfileGuided);
  EXPECT_EQ(none.first, guided.first);
  EXPECT_EQ(none.second, guided.second);
}

}  // namespace
}  // namespace leap
