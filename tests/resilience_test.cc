// Resilience and load-balancing behaviors of the remote-memory substrate
// (paper section 4.5): replication-based fault tolerance and
// power-of-two-choices placement, exercised through the full machine.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "src/rdma/host_agent.h"
#include "src/rdma/remote_agent.h"
#include "src/runtime/app_runner.h"
#include "src/runtime/presets.h"
#include "src/workload/patterns.h"

namespace leap {
namespace {

TEST(Resilience, WritesSurvivePrimaryFailure) {
  RemoteAgent node_a(0, 256);
  RemoteAgent node_b(1, 256);
  HostAgentConfig config;
  config.replicas = 2;
  config.slab_pages = 64;
  HostAgent agent(config, {&node_a, &node_b}, 11);
  Rng rng(11);

  // Write tags across several slabs.
  for (SwapSlot slot = 0; slot < 512; slot += 7) {
    agent.WriteTag(slot, slot * 31 + 5, 0, rng);
  }
  // Fail either node; every tag must still be readable via its replica.
  node_a.Fail();
  for (SwapSlot slot = 0; slot < 512; slot += 7) {
    ASSERT_EQ(agent.ReadTag(slot), slot * 31 + 5) << "slot " << slot;
  }
  node_a.Recover();
  node_b.Fail();
  for (SwapSlot slot = 0; slot < 512; slot += 7) {
    ASSERT_EQ(agent.ReadTag(slot), slot * 31 + 5) << "slot " << slot;
  }
}

TEST(Resilience, WritesDuringFailureSurviveRecovery) {
  // Standalone agent (no cluster repair): a replica that is down for a
  // write must not resurrect its stale copy after recovery.
  RemoteAgent node_a(0, 256);
  RemoteAgent node_b(1, 256);
  HostAgentConfig config;
  config.replicas = 2;
  config.slab_pages = 64;
  HostAgent agent(config, {&node_a, &node_b}, 11);
  Rng rng(11);

  for (SwapSlot slot = 0; slot < 128; ++slot) {
    agent.WriteTag(slot, slot + 1000, 0, rng);
  }
  // Whichever node is the primary, fail it, overwrite, recover.
  node_a.Fail();
  for (SwapSlot slot = 0; slot < 128; slot += 2) {
    agent.WriteTag(slot, slot + 2000, 0, rng);
  }
  node_a.Recover();
  for (SwapSlot slot = 0; slot < 128; ++slot) {
    const uint64_t expected =
        slot % 2 == 0 ? slot + 2000 : slot + 1000;
    ASSERT_EQ(agent.ReadTag(slot), expected) << "slot " << slot;
  }
}

TEST(Resilience, SingleReplicaLosesDataOnFailure) {
  // Control: with replication disabled, a node failure loses pages -
  // demonstrating that the default replication actually does the work.
  RemoteAgent node_a(0, 256);
  RemoteAgent node_b(1, 256);
  HostAgentConfig config;
  config.replicas = 1;
  config.slab_pages = 64;
  HostAgent agent(config, {&node_a, &node_b}, 13);
  Rng rng(13);
  for (SwapSlot slot = 0; slot < 256; slot += 5) {
    agent.WriteTag(slot, slot + 1, 0, rng);
  }
  node_a.Fail();
  node_b.Fail();
  size_t lost = 0;
  for (SwapSlot slot = 0; slot < 256; slot += 5) {
    if (!agent.ReadTag(slot).has_value()) {
      ++lost;
    }
  }
  EXPECT_GT(lost, 0u);
}

TEST(Resilience, PlacementSpreadsLoadAcrossManyNodes) {
  std::vector<std::unique_ptr<RemoteAgent>> nodes;
  std::vector<RemoteAgent*> refs;
  for (uint32_t i = 0; i < 8; ++i) {
    nodes.push_back(std::make_unique<RemoteAgent>(i, 512));
    refs.push_back(nodes.back().get());
  }
  HostAgentConfig config;
  config.replicas = 2;
  config.slab_pages = 8;
  HostAgent agent(config, refs, 17);
  Rng rng(17);
  for (SwapSlot slab = 0; slab < 400; ++slab) {
    const IoRequest req = DemandRead(slab * 8);
    SimTimeNs ready = 0;
    agent.ReadPages({&req, 1}, 0, rng, {&ready, 1});
  }
  const auto loads = agent.NodeLoads();
  const size_t total = std::accumulate(loads.begin(), loads.end(), 0u);
  EXPECT_EQ(total, 800u);  // 400 slabs x 2 replicas
  const size_t min_load = *std::min_element(loads.begin(), loads.end());
  const size_t max_load = *std::max_element(loads.begin(), loads.end());
  // Two-choices: spread stays tight around the mean of 100.
  EXPECT_LE(max_load - min_load, 30u);
}

TEST(Resilience, MachineKeepsRunningWhenPoolNearlyFull) {
  // Remote pool with barely enough slabs: the machine must keep making
  // progress (fallback placement) instead of wedging.
  MachineConfig config = LeapVmmConfig(2048, 19);
  config.remote_nodes = 2;
  config.node_capacity_slabs = 2;
  config.host_agent.slab_pages = 512;
  config.host_agent.replicas = 2;
  Machine machine(config);
  const Pid pid = machine.CreateProcess(256);
  SequentialStream stream(2048, 500);
  RunConfig run;
  run.total_accesses = 20000;
  const RunResult result = RunApp(machine, pid, stream, run);
  EXPECT_TRUE(result.finished);
  EXPECT_GT(machine.counters().Get(counter::kRemoteReads), 0u);
}

// --- gray-failure mitigation (PR 6) -----------------------------------------

TEST(Resilience, ResilienceConfigValidateRejectsBadKnobs) {
  auto expect_throws = [](auto mutate) {
    ResilienceConfig config;
    config.enabled = true;
    mutate(config);
    EXPECT_THROW(config.Validate(), std::invalid_argument);
  };
  expect_throws([](ResilienceConfig& c) { c.read_deadline_ns = 0; });
  expect_throws([](ResilienceConfig& c) { c.max_read_retries = 0; });
  expect_throws([](ResilienceConfig& c) { c.retry_backoff_ns = 0; });
  expect_throws([](ResilienceConfig& c) { c.backoff_multiplier = 0.5; });
  expect_throws([](ResilienceConfig& c) { c.hedge_p99_factor = 0.0; });
  expect_throws([](ResilienceConfig& c) { c.gray_probe_interval = 0; });
  // The same nonsense values are inert while resilience is disabled.
  ResilienceConfig disabled;
  disabled.read_deadline_ns = 0;
  disabled.max_read_retries = 0;
  disabled.Validate();
  // And the enabled defaults must themselves be valid.
  ResilienceConfig defaults;
  defaults.enabled = true;
  defaults.Validate();
}

TEST(Resilience, TinyDeadlineDrivesRetriesAndCountsThem) {
  RemoteAgent node_a(0, 256);
  RemoteAgent node_b(1, 256);
  HostAgentConfig config;
  config.replicas = 2;
  config.slab_pages = 64;
  HostAgent agent(config, {&node_a, &node_b}, 11);
  ResilienceConfig res;
  res.enabled = true;
  res.read_deadline_ns = 1;  // every read blows this: retries must fire
  res.max_read_retries = 2;
  res.retry_backoff_ns = 1;
  res.hedge_enabled = false;  // isolate the deadline/retry path
  agent.SetResilience(res);
  Counters counters;
  agent.SetCounters(&counters);
  Rng rng(11);
  for (SwapSlot slot = 0; slot < 256; ++slot) {
    const IoRequest req = DemandRead(slot);
    SimTimeNs ready = 0;
    agent.ReadPages({&req, 1}, 0, rng, {&ready, 1});
    EXPECT_GT(ready, 0u);
  }
  EXPECT_GT(counters.Get(counter::kReadDeadlineMisses), 0u);
  EXPECT_GT(counters.Get(counter::kReadRetries), 0u);
  // Each read has at most max_read_retries re-issues.
  EXPECT_LE(counters.Get(counter::kReadRetries), 256u * res.max_read_retries);
}

// Health tracker stub that pins one node gray forever - lets the reroute
// path be tested without standing up a cluster and a real monitor.
class PinnedGrayTracker : public NodeHealthTracker {
 public:
  explicit PinnedGrayTracker(uint32_t gray) : gray_(gray) {}
  void RecordRead(uint32_t, SimTimeNs, SimTimeNs) override {}
  bool IsGray(uint32_t node) const override { return node == gray_; }
  double NodeEwmaNs(uint32_t) const override { return 0.0; }
  SimTimeNs ReadLatencyP99Ns() const override { return 0; }

 private:
  uint32_t gray_;
};

TEST(Resilience, GrayAvoidanceReroutesAndPreservesReadYourWrites) {
  RemoteAgent node_a(0, 256);
  RemoteAgent node_b(1, 256);
  HostAgentConfig config;
  config.replicas = 2;
  config.slab_pages = 64;
  HostAgent agent(config, {&node_a, &node_b}, 11);
  Rng rng(11);
  for (SwapSlot slot = 0; slot < 256; ++slot) {
    agent.WriteTag(slot, slot * 31 + 5, 0, rng);
  }

  ResilienceConfig res;
  res.enabled = true;
  res.hedge_enabled = false;
  agent.SetResilience(res);
  // With replicas on both nodes, pinning node 0 gray forces every read
  // whose serving replica is node 0 onto node 1.
  PinnedGrayTracker tracker(0);
  agent.SetHealthTracker(&tracker);
  Counters counters;
  agent.SetCounters(&counters);

  for (SwapSlot slot = 0; slot < 256; ++slot) {
    const IoRequest req = DemandRead(slot);
    SimTimeNs ready = 0;
    agent.ReadPages({&req, 1}, 0, rng, {&ready, 1});
  }
  EXPECT_GT(counters.Get(counter::kReadsRerouted), 0u);
  // Read-your-writes across the reroute: a gray node is live, so every
  // replica absorbed the writes and the steered reads see current data.
  for (SwapSlot slot = 0; slot < 256; ++slot) {
    ASSERT_EQ(agent.ReadTag(slot), slot * 31 + 5) << "slot " << slot;
  }
}

TEST(Resilience, ConcurrentProcessesShareTheFabricFairly) {
  // Two identical sequential processes: neither should starve (completion
  // times within 2x of each other).
  MachineConfig config = LeapVmmConfig(1 << 14, 23);
  Machine machine(config);
  const Pid a = machine.CreateProcess(1024);
  const Pid b = machine.CreateProcess(1024);
  SequentialStream stream_a(4096, 500);
  SequentialStream stream_b(4096, 500);
  // Interleave warmups so both sets of pages get evicted.
  SimTimeNs t = WarmUp(machine, a, 4096);
  t = WarmUp(machine, b, 4096, t);
  RunConfig run;
  run.total_accesses = 40000;
  run.start_time_ns = t + kNsPerMs;
  std::vector<MultiAppSpec> specs = {{a, &stream_a, run}, {b, &stream_b, run}};
  const auto results = RunAppsConcurrently(machine, std::move(specs));
  ASSERT_TRUE(results[0].finished);
  ASSERT_TRUE(results[1].finished);
  const double ratio = ToSec(results[0].completion_ns) /
                       ToSec(results[1].completion_ns);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

}  // namespace
}  // namespace leap
