// Regression guards for the flat-container / pooled-event-queue hot path:
//
//  1. Determinism: the same MachineConfig (fixed seed) run twice produces
//     bit-identical counters and latency histograms, across both data
//     paths, every prefetcher, and both eviction policies. The flat
//     containers were chosen so iteration order is a pure function of the
//     operation sequence; this test is the tripwire for anything (hash
//     randomization, pointer-keyed ordering, uninitialized reads) that
//     would break reproducibility.
//
//  2. Zero allocation: steady-state Machine::Access performs no heap
//     allocation - local hits and cache hits always, and misses once the
//     scratch buffers and table capacities have warmed up. Verified with a
//     global operator-new hook.
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/app_runner.h"
#include "src/runtime/machine.h"
#include "src/runtime/presets.h"
#include "src/workload/patterns.h"

// --- global allocation hook -------------------------------------------------

namespace {
// Not atomic: the simulator is single-threaded, and gtest does not allocate
// concurrently with the measured region.
size_t g_alloc_count = 0;
}  // namespace

void* operator new(size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace leap {
namespace {

constexpr size_t kFootprint = 4096;
constexpr size_t kFrames = 1 << 14;
constexpr size_t kAccesses = 50000;

struct RunFingerprint {
  SimTimeNs completion = 0;
  std::map<std::string, uint64_t> counters;
  uint64_t remote_count = 0;
  double remote_sum = 0.0;
  uint64_t remote_p50 = 0;
  uint64_t remote_p99 = 0;
  uint64_t miss_count = 0;
  double miss_sum = 0.0;
  uint64_t evict_wait_count = 0;
  double evict_wait_sum = 0.0;
  uint64_t timeliness_count = 0;
  double timeliness_sum = 0.0;
  uint64_t alloc_count = 0;
  double alloc_sum = 0.0;

  bool operator==(const RunFingerprint&) const = default;
};

// One full run: warm-up pass, then `kAccesses` of the given pattern.
RunFingerprint RunOnce(const MachineConfig& config, int pattern) {
  Machine machine(config);
  const Pid pid = machine.CreateProcess(kFootprint / 2);
  const SimTimeNs warm_end = WarmUp(machine, pid, kFootprint);
  RunConfig rc;
  rc.total_accesses = kAccesses;
  rc.start_time_ns = warm_end + 10 * kNsPerMs;
  RunResult rr;
  if (pattern == 0) {
    SequentialStream stream(kFootprint, 750);
    rr = RunApp(machine, pid, stream, rc);
  } else if (pattern == 1) {
    StrideStream stream(kFootprint, 10, 750);
    rr = RunApp(machine, pid, stream, rc);
  } else {
    RandomStream stream(kFootprint, 750);
    rr = RunApp(machine, pid, stream, rc);
  }

  RunFingerprint fp;
  fp.completion = rr.completion_ns;
  fp.counters = machine.counters().values();
  fp.remote_count = rr.remote_access_latency.count();
  fp.remote_sum = rr.remote_access_latency.Sum();
  fp.remote_p50 = rr.remote_access_latency.Percentile(0.5);
  fp.remote_p99 = rr.remote_access_latency.Percentile(0.99);
  fp.miss_count = rr.miss_latency.count();
  fp.miss_sum = rr.miss_latency.Sum();
  fp.evict_wait_count = machine.eviction_wait_hist().count();
  fp.evict_wait_sum = machine.eviction_wait_hist().Sum();
  fp.timeliness_count = machine.timeliness_hist().count();
  fp.timeliness_sum = machine.timeliness_hist().Sum();
  fp.alloc_count = machine.alloc_hist().count();
  fp.alloc_sum = machine.alloc_hist().Sum();
  return fp;
}

void ExpectSameTwice(const MachineConfig& config, int pattern,
                     const char* label) {
  const RunFingerprint first = RunOnce(config, pattern);
  const RunFingerprint second = RunOnce(config, pattern);
  EXPECT_EQ(first.counters, second.counters) << label;
  EXPECT_TRUE(first == second) << label << ": non-counter state diverged";
  // A run that did nothing would be vacuously deterministic.
  EXPECT_GT(first.counters.at("page_faults"), 0u) << label;
}

TEST(Determinism, LeapStackAllPatterns) {
  for (int pattern = 0; pattern < 3; ++pattern) {
    ExpectSameTwice(LeapVmmConfig(kFrames, 42), pattern, "leap-vmm");
  }
}

TEST(Determinism, DefaultPathEveryPrefetcher) {
  // Every registered kind, including the learned ones: trained state must
  // be a pure function of the observed event sequence (no RNG, no wall
  // clock, no iteration-order dependence).
  for (PrefetchKind kind : kAllPrefetchKinds) {
    ExpectSameTwice(DefaultVmmConfig(kind, kFrames, 42), /*pattern=*/1,
                    PrefetchKindName(kind).data());
  }
}

TEST(Determinism, LazyVsEagerEvictionEachDeterministic) {
  MachineConfig lazy = LeapVmmConfig(kFrames, 7);
  lazy.eviction = EvictionKind::kLazyLru;
  ExpectSameTwice(lazy, /*pattern=*/2, "leap-vmm lazy");
  MachineConfig eager = LeapVmmConfig(kFrames, 7);
  eager.eviction = EvictionKind::kEagerLeap;
  ExpectSameTwice(eager, /*pattern=*/2, "leap-vmm eager");
}

TEST(Determinism, VfsModeBothPaths) {
  ExpectSameTwice(LeapVfsConfig(kFrames, kFootprint, 42), /*pattern=*/0,
                  "leap-vfs");
  ExpectSameTwice(
      DefaultVfsConfig(PrefetchKind::kReadAhead, kFrames, kFootprint, 42),
      /*pattern=*/0, "default-vfs");
}

TEST(Determinism, DiskSwapPath) {
  ExpectSameTwice(
      DiskSwapConfig(Medium::kSsd, PrefetchKind::kReadAhead, kFrames, 42),
      /*pattern=*/0, "disk-ssd");
}

// --- zero-allocation steady state -------------------------------------------

TEST(ZeroAlloc, SteadyStateAccessDoesNotAllocate) {
  Machine machine(LeapVmmConfig(kFrames, 42));
  const Pid pid = machine.CreateProcess(kFootprint / 2);
  SimTimeNs now = WarmUp(machine, pid, kFootprint) + 10 * kNsPerMs;

  // Reach steady state: several full sweeps so every container (page
  // tables, swap maps, cache, event pool, block-layer scratch) has grown to
  // its working capacity.
  SequentialStream stream(kFootprint, 750);
  Rng rng(7);
  for (size_t i = 0; i < 4 * kFootprint; ++i) {
    const MemOp op = stream.Next(rng);
    now += op.think_ns;
    now += machine.Access(pid, op.vpn, op.write, now).latency;
  }

  size_t hit_allocs = 0;
  size_t hits = 0;
  size_t miss_allocs = 0;
  size_t misses = 0;
  size_t local_allocs = 0;
  size_t locals = 0;
  for (size_t i = 0; i < 2 * kFootprint; ++i) {
    const MemOp op = stream.Next(rng);
    now += op.think_ns;
    const size_t before = g_alloc_count;
    const AccessResult result = machine.Access(pid, op.vpn, op.write, now);
    const size_t delta = g_alloc_count - before;
    now += result.latency;
    switch (result.type) {
      case AccessType::kLocalHit:
        ++locals;
        local_allocs += delta;
        break;
      case AccessType::kCacheHit:
      case AccessType::kCacheWaitHit:
        ++hits;
        hit_allocs += delta;
        break;
      case AccessType::kMiss:
        ++misses;
        miss_allocs += delta;
        break;
      default:
        break;
    }
  }

  // The workload must actually exercise the paths under test.
  ASSERT_GT(hits, 0u);
  ASSERT_GT(misses, 0u);

  EXPECT_EQ(hit_allocs, 0u) << "cache-hit Access allocated";
  EXPECT_EQ(local_allocs, 0u) << "local-hit Access allocated";
  EXPECT_EQ(miss_allocs, 0u) << "steady-state miss Access allocated";
}

}  // namespace
}  // namespace leap
