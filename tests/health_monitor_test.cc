// HealthMonitor tests: config validation, the healthy -> suspect -> gray
// conviction path (including the gray dwell), hysteresis clearing, the
// min-samples and latency-floor gates, relative scoring (a cluster-wide
// slowdown flags nobody), and the healthy-only p99 feed for hedge delays.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/cluster/health_monitor.h"

namespace leap {
namespace {

HealthMonitorConfig TestConfig() {
  HealthMonitorConfig config;
  config.ewma_alpha = 0.5;  // fast EWMA so tests converge in few samples
  config.min_samples = 4;
  config.suspect_factor = 2.0;
  config.gray_factor = 4.0;
  config.clear_factor = 1.5;
  config.floor_ns = 10 * kNsPerUs;
  config.gray_dwell_ns = 100 * kNsPerUs;
  return config;
}

// Feeds `count` reads of fixed latency to `node`, advancing `now` by
// `step` per sample. Returns the time after the last sample.
SimTimeNs Feed(HealthMonitor& monitor, uint32_t node, SimTimeNs latency,
               size_t count, SimTimeNs now, SimTimeNs step = 10 * kNsPerUs) {
  for (size_t i = 0; i < count; ++i) {
    now += step;
    monitor.RecordRead(node, latency, now);
  }
  return now;
}

TEST(HealthMonitorConfig, ValidateRejectsOutOfRangeValues) {
  auto expect_throws = [](auto mutate) {
    HealthMonitorConfig config = TestConfig();
    mutate(config);
    EXPECT_THROW(config.Validate(), std::invalid_argument);
  };
  expect_throws([](HealthMonitorConfig& c) { c.ewma_alpha = 0.0; });
  expect_throws([](HealthMonitorConfig& c) { c.ewma_alpha = 1.5; });
  expect_throws([](HealthMonitorConfig& c) { c.min_samples = 0; });
  expect_throws([](HealthMonitorConfig& c) { c.suspect_factor = 1.0; });
  expect_throws([](HealthMonitorConfig& c) { c.gray_factor = 1.9; });
  expect_throws([](HealthMonitorConfig& c) { c.clear_factor = 0.0; });
  expect_throws([](HealthMonitorConfig& c) { c.clear_factor = 3.0; });
  TestConfig().Validate();  // the baseline itself must be valid
}

TEST(HealthMonitor, OutlierIsConvictedViaSuspectAndDwell) {
  HealthMonitor monitor(TestConfig(), /*node_count=*/4);
  SimTimeNs now = 0;
  // Healthy peer group at 20us; node 3 reads 10x slow.
  for (uint32_t n = 0; n < 3; ++n) {
    now = Feed(monitor, n, 20 * kNsPerUs, 8, now);
  }
  // First slow samples: enough to cross suspect, not yet dwelled.
  now = Feed(monitor, 3, 200 * kNsPerUs, 6, now);
  EXPECT_EQ(monitor.State(3), NodeHealth::kSuspect);
  EXPECT_FALSE(monitor.IsGray(3));
  const SimTimeNs suspected_at = monitor.LastTransitionAtNs(3);
  // Score keeps holding >= gray_factor; after the dwell elapses the node
  // is convicted.
  now = Feed(monitor, 3, 200 * kNsPerUs, 20, now);
  EXPECT_EQ(monitor.State(3), NodeHealth::kGray);
  EXPECT_TRUE(monitor.IsGray(3));
  const SimTimeNs gray_at = monitor.FirstGrayAtNs(3);
  EXPECT_GE(gray_at - suspected_at, TestConfig().gray_dwell_ns);
  // FirstGrayAtOrAfterNs: answers from the gray-entry history.
  EXPECT_EQ(monitor.FirstGrayAtOrAfterNs(3, 0), gray_at);
  EXPECT_EQ(monitor.FirstGrayAtOrAfterNs(3, gray_at), gray_at);
  EXPECT_EQ(monitor.FirstGrayAtOrAfterNs(3, gray_at + 1), 0u);
  // Healthy peers were never flagged.
  for (uint32_t n = 0; n < 3; ++n) {
    EXPECT_EQ(monitor.State(n), NodeHealth::kHealthy);
  }
}

TEST(HealthMonitor, GrayNodeClearsAfterRecoveryWithHysteresis) {
  HealthMonitor monitor(TestConfig(), /*node_count=*/4);
  SimTimeNs now = 0;
  for (uint32_t n = 0; n < 3; ++n) {
    now = Feed(monitor, n, 20 * kNsPerUs, 8, now);
  }
  now = Feed(monitor, 3, 200 * kNsPerUs, 26, now);
  ASSERT_TRUE(monitor.IsGray(3));
  // Recovery: the node serves at peer speed again; the EWMA converges
  // under clear_factor * median and the mark clears.
  now = Feed(monitor, 3, 20 * kNsPerUs, 30, now);
  EXPECT_EQ(monitor.State(3), NodeHealth::kHealthy);
  // healthy -> suspect -> gray -> healthy: exactly three transitions.
  EXPECT_EQ(monitor.transition_count(), 3u);
  // The gray-entry history still answers detection queries after the
  // clear.
  EXPECT_GT(monitor.FirstGrayAtNs(3), 0u);
}

TEST(HealthMonitor, NoJudgmentBeforeMinSamples) {
  HealthMonitor monitor(TestConfig(), /*node_count=*/3);
  SimTimeNs now = 0;
  for (uint32_t n = 0; n < 2; ++n) {
    now = Feed(monitor, n, 20 * kNsPerUs, 8, now);
  }
  // 3 samples of a blatant outlier: one short of min_samples.
  now = Feed(monitor, 2, 2000 * kNsPerUs, 3, now);
  EXPECT_EQ(monitor.State(2), NodeHealth::kHealthy);
  // The 4th sample makes it judgeable - and instantly suspect.
  Feed(monitor, 2, 2000 * kNsPerUs, 1, now);
  EXPECT_EQ(monitor.State(2), NodeHealth::kSuspect);
}

TEST(HealthMonitor, ClusterWideSlowdownFlagsNobody) {
  HealthMonitor monitor(TestConfig(), /*node_count=*/4);
  SimTimeNs now = 0;
  for (uint32_t n = 0; n < 4; ++n) {
    now = Feed(monitor, n, 20 * kNsPerUs, 8, now);
  }
  // Incast epoch: everyone ramps 20us -> 200us together. Relative scoring
  // keeps every score near 1 - no node is an outlier against a cohort
  // moving with it. (Ramped rather than stepped: samples land one node at
  // a time, and a single 10x step would make the first-sampled node a
  // momentary "outlier" against still-stale peers.)
  for (size_t round = 1; round <= 10; ++round) {
    const SimTimeNs latency = (20 + 18 * round) * kNsPerUs;
    for (uint32_t n = 0; n < 4; ++n) {
      now = Feed(monitor, n, latency, 1, now);
    }
  }
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(monitor.State(n), NodeHealth::kHealthy) << "node " << n;
  }
  EXPECT_EQ(monitor.transition_count(), 0u);
}

TEST(HealthMonitor, SubFloorOutliersAreNoise) {
  HealthMonitor monitor(TestConfig(), /*node_count=*/3);
  SimTimeNs now = 0;
  // A 5x outlier, but at 5us - under the 10us floor. Never flagged.
  for (uint32_t n = 0; n < 2; ++n) {
    now = Feed(monitor, n, kNsPerUs, 8, now);
  }
  Feed(monitor, 2, 5 * kNsPerUs, 12, now);
  EXPECT_EQ(monitor.State(2), NodeHealth::kHealthy);
  EXPECT_EQ(monitor.transition_count(), 0u);
}

TEST(HealthMonitor, P99FeedIsColdThenHealthyOnly) {
  HealthMonitor monitor(TestConfig(), /*node_count=*/3);
  EXPECT_EQ(monitor.ReadLatencyP99Ns(), 0u);  // cold: hedging stays off
  SimTimeNs now = 0;
  for (uint32_t n = 0; n < 2; ++n) {
    now = Feed(monitor, n, 20 * kNsPerUs, 8, now);
  }
  const SimTimeNs healthy_p99 = monitor.ReadLatencyP99Ns();
  EXPECT_GT(healthy_p99, 0u);
  EXPECT_LE(healthy_p99, 25 * kNsPerUs);
  // Node 2 goes outlier-slow. Its first few samples land while it is
  // still formally healthy (nothing to be done about those), but once
  // marked, further samples must stop feeding the p99: the hedge delay
  // tracks the healthy tail, not the failure it hedges against.
  now = Feed(monitor, 2, 400 * kNsPerUs, 10, now);
  ASSERT_NE(monitor.State(2), NodeHealth::kHealthy);
  const SimTimeNs p99_at_mark = monitor.ReadLatencyP99Ns();
  Feed(monitor, 2, 400 * kNsPerUs, 50, now);
  EXPECT_EQ(monitor.ReadLatencyP99Ns(), p99_at_mark);
}

TEST(HealthMonitor, EwmaAndSampleAccessors) {
  HealthMonitor monitor(TestConfig(), /*node_count=*/2);
  EXPECT_DOUBLE_EQ(monitor.NodeEwmaNs(0), 0.0);
  EXPECT_EQ(monitor.SampleCount(0), 0u);
  monitor.RecordRead(0, 40 * kNsPerUs, kNsPerUs);
  EXPECT_DOUBLE_EQ(monitor.NodeEwmaNs(0), 40.0 * kNsPerUs);
  EXPECT_EQ(monitor.SampleCount(0), 1u);
  // Out-of-range node ids are inert, not UB.
  monitor.RecordRead(99, 40 * kNsPerUs, kNsPerUs);
  EXPECT_FALSE(monitor.IsGray(99));
  EXPECT_EQ(monitor.SampleCount(99), 0u);
  EXPECT_EQ(monitor.FirstGrayAtNs(99), 0u);
}

}  // namespace
}  // namespace leap
