// Process isolation: the property that motivates Leap's per-process
// histories (section 4.1) - interleaved streams from different processes
// must not destroy each other's trends.
#include "src/core/process_tracker.h"

#include <gtest/gtest.h>

#include "src/sim/rng.h"

namespace leap {
namespace {

TEST(ProcessPageTracker, CreatesStatePerProcess) {
  ProcessPageTracker tracker{LeapParams{}};
  tracker.OnFault(1, 100);
  tracker.OnFault(2, 5000);
  EXPECT_EQ(tracker.process_count(), 2u);
}

TEST(ProcessPageTracker, RemoveProcessDropsState) {
  ProcessPageTracker tracker{LeapParams{}};
  tracker.OnFault(1, 100);
  tracker.RemoveProcess(1);
  EXPECT_EQ(tracker.process_count(), 0u);
}

// Per-page hit feedback threads through to the owning process instead of
// being aggregated away: the hit slot is recorded per process, alongside
// the window credit.
TEST(ProcessPageTracker, PrefetchHitSlotThreadsThroughPerProcess) {
  ProcessPageTracker tracker{LeapParams{}};
  tracker.OnFault(1, 100);
  tracker.OnFault(2, 9000);
  EXPECT_FALSE(tracker.ForProcess(1).last_hit_slot().has_value());

  tracker.OnPrefetchHit(1, 101);
  tracker.OnPrefetchHit(1, 102);
  tracker.OnPrefetchHit(2, 9001);

  EXPECT_EQ(tracker.ForProcess(1).last_hit_slot(), std::optional<SwapSlot>(102));
  EXPECT_EQ(tracker.ForProcess(1).prefetch_hits(), 2u);
  EXPECT_EQ(tracker.ForProcess(2).last_hit_slot(), std::optional<SwapSlot>(9001));
  EXPECT_EQ(tracker.ForProcess(2).prefetch_hits(), 1u);
  // The window credit rode along with each hit.
  EXPECT_EQ(tracker.ForProcess(1).window().hits_since_last(), 2u);
}

TEST(ProcessPageTracker, InterleavedProcessesKeepTheirOwnTrends) {
  ProcessPageTracker tracker{LeapParams{}};
  PrefetchDecision d1;
  PrefetchDecision d2;
  // Process 1 walks +1 from 0; process 2 walks +10 from 100000;
  // perfectly interleaved in time.
  for (int i = 0; i < 40; ++i) {
    d1 = tracker.OnFault(1, static_cast<SwapSlot>(i));
    for (size_t h = 0; h < d1.pages.size(); ++h) {
      tracker.OnPrefetchHit(1, d1.pages[h]);
    }
    d2 = tracker.OnFault(2, static_cast<SwapSlot>(100000 + 10 * i));
    for (size_t h = 0; h < d2.pages.size(); ++h) {
      tracker.OnPrefetchHit(2, d2.pages[h]);
    }
  }
  ASSERT_TRUE(d1.trend_found);
  EXPECT_EQ(d1.delta_used, 1);
  ASSERT_TRUE(d2.trend_found);
  EXPECT_EQ(d2.delta_used, 10);
}

TEST(ProcessPageTracker, SharedHistoryWouldHaveFailed) {
  // Control experiment: feed the same interleaved stream into ONE
  // process's tracker; the alternating deltas have no majority.
  ProcessPageTracker tracker{LeapParams{}};
  PrefetchDecision d;
  for (int i = 0; i < 40; ++i) {
    d = tracker.OnFault(1, static_cast<SwapSlot>(i));
    d = tracker.OnFault(1, static_cast<SwapSlot>(100000 + 10 * i));
  }
  EXPECT_FALSE(d.trend_found);
}

TEST(ProcessPageTracker, HitAttributionIsPerProcess) {
  ProcessPageTracker tracker{LeapParams{}};
  Rng rng(2024);
  // Process 1 consumes prefetches; process 2 faults randomly and never
  // consumes any.
  for (int i = 0; i < 60; ++i) {
    const auto d1 = tracker.OnFault(1, static_cast<SwapSlot>(i));
    for (size_t h = 0; h < d1.pages.size(); ++h) {
      tracker.OnPrefetchHit(1, d1.pages[h]);
    }
    tracker.OnFault(2, rng.NextU64(1u << 30));
  }
  EXPECT_GT(tracker.ForProcess(1).window().last_size(), 0u);
  EXPECT_EQ(tracker.ForProcess(2).window().last_size(), 0u);
}

}  // namespace
}  // namespace leap
