#include "src/sim/latency_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace leap {
namespace {

TEST(LatencyModel, ConstantAlwaysReturnsValue) {
  Rng rng(1);
  const auto m = LatencyModel::Constant(4300);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.Sample(rng), 4300u);
  }
  EXPECT_DOUBLE_EQ(m.MeanNs(), 4300.0);
}

TEST(LatencyModel, UniformStaysInRange) {
  Rng rng(2);
  const auto m = LatencyModel::Uniform(100, 200);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const SimTimeNs v = m.Sample(rng);
    ASSERT_GE(v, 100u);
    ASSERT_LE(v, 200u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 20000, 150.0, 2.0);
  EXPECT_DOUBLE_EQ(m.MeanNs(), 150.0);
}

TEST(LatencyModel, NormalMeanAndTruncation) {
  Rng rng(3);
  const auto m = LatencyModel::Normal(1000, 300, 200);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const SimTimeNs v = m.Sample(rng);
    ASSERT_GE(v, 200u);
    sum += static_cast<double>(v);
  }
  // Truncation at mean - 2.67 sigma pulls the mean up only slightly.
  EXPECT_NEAR(sum / n, 1000.0, 20.0);
}

TEST(LatencyModel, LogNormalMedianAndSkew) {
  Rng rng(4);
  const auto m = LatencyModel::LogNormal(17200, 0.66, 1000);
  std::vector<SimTimeNs> samples;
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    samples.push_back(m.Sample(rng));
    sum += static_cast<double>(samples.back());
  }
  std::sort(samples.begin(), samples.end());
  const double median = static_cast<double>(samples[n / 2]);
  const double mean = sum / n;
  EXPECT_NEAR(median, 17200.0, 500.0);
  // Mean of lognormal = median * exp(sigma^2/2) ~ 1.243x the median: the
  // "average strays far from the median" effect the paper describes.
  EXPECT_GT(mean, median * 1.15);
  EXPECT_NEAR(mean, m.MeanNs(), m.MeanNs() * 0.05);
}

TEST(LatencyModel, LogNormalTailIsHeavy) {
  Rng rng(5);
  const auto m = LatencyModel::LogNormal(10000, 0.7, 0);
  std::vector<SimTimeNs> samples;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    samples.push_back(m.Sample(rng));
  }
  std::sort(samples.begin(), samples.end());
  const double p50 = static_cast<double>(samples[n / 2]);
  const double p99 = static_cast<double>(samples[n * 99 / 100]);
  // exp(2.326 * 0.7) ~ 5.1x.
  EXPECT_GT(p99 / p50, 4.0);
  EXPECT_LT(p99 / p50, 6.5);
}

TEST(LatencyModel, DefaultConstructedIsZero) {
  Rng rng(6);
  LatencyModel m;
  EXPECT_EQ(m.Sample(rng), 0u);
}

}  // namespace
}  // namespace leap
