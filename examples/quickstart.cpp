// Quickstart: the Leap prefetching core in 60 lines.
//
// Feeds a page-access stream with a trend shift (the paper's Figure 5
// scenario, extended) into a LeapPrefetcher and prints every decision:
// detected majority delta, prefetch window, and the candidate pages.
//
//   $ ./quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/leap.h"

int main() {
  leap::LeapParams params;  // Hsize = 32, Nsplit = 2, PWsize_max = 8
  params.history_size = 8;  // small history so the walkthrough is visible
  leap::LeapPrefetcher prefetcher(params);

  // A descending -3 walk that flips to an ascending +2 walk with two
  // noisy interruptions - short-term irregularity the majority vote rides
  // out.
  const std::vector<leap::SwapSlot> accesses = {
      0x48, 0x45, 0x42, 0x3F, 0x3C, 0x02, 0x04, 0x06,
      0x08, 0x0A, 0x0C, 0x10, 0x39, 0x12, 0x14, 0x16};

  std::printf("%-6s %-8s %-7s %-6s %-12s %s\n", "t", "page", "trend",
              "window", "mode", "prefetched pages");
  for (size_t t = 0; t < accesses.size(); ++t) {
    const leap::PrefetchDecision d = prefetcher.OnMiss(accesses[t]);
    // Pretend every prefetched page gets used, so the window opens up.
    for (size_t i = 0; i < d.pages.size(); ++i) {
      prefetcher.OnPrefetchHit(d.pages[i]);
    }
    std::string pages;
    for (leap::SwapSlot page : d.pages) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "0x%02llX ",
                    static_cast<unsigned long long>(page));
      pages += buf;
    }
    char trend[16] = "-";
    if (d.trend_found) {
      std::snprintf(trend, sizeof(trend), "%+lld",
                    static_cast<long long>(d.delta_used));
    }
    std::printf("t%-5zu 0x%02llX     %-7s %-6zu %-12s %s\n", t,
                static_cast<unsigned long long>(accesses[t]), trend,
                d.window_size,
                d.speculative ? "speculative"
                              : (d.trend_found ? "trend" : "suspended"),
                pages.empty() ? "(demand only)" : pages.c_str());
  }

  std::printf(
      "\nThe -3 trend is picked up by t3, survives the jump at t5, and the\n"
      "+2 trend takes over from t8 - with the t12/t13 noise ignored,\n"
      "exactly like Figure 5 of the paper.\n");
  return 0;
}
