// Remote paging end-to-end: one memory-constrained process paging to
// disaggregated remote memory, comparing the legacy data path against the
// full Leap stack on the same workload.
//
//   $ ./remote_paging [sequential|stride|mixed]
#include <cstdio>
#include <cstring>

#include "src/runtime/app_runner.h"
#include "src/runtime/presets.h"
#include "src/stats/cdf.h"
#include "src/workload/app_models.h"
#include "src/workload/patterns.h"

namespace {

constexpr size_t kFootprintPages = 16 * 1024;  // 64 MB working set
constexpr size_t kFrames = 1 << 16;
constexpr size_t kAccesses = 150'000;

std::unique_ptr<leap::AccessStream> MakeStream(const char* kind) {
  if (std::strcmp(kind, "sequential") == 0) {
    return std::make_unique<leap::SequentialStream>(kFootprintPages, 750);
  }
  if (std::strcmp(kind, "stride") == 0) {
    return std::make_unique<leap::StrideStream>(kFootprintPages, 10, 750);
  }
  return leap::MakePowerGraph(kFootprintPages, 42);
}

leap::RunResult RunOne(const leap::MachineConfig& config, const char* kind) {
  leap::Machine machine(config);
  // cgroup: 50% of the working set stays local, the rest lives remote.
  const leap::Pid pid = machine.CreateProcess(kFootprintPages / 2);
  const leap::SimTimeNs warm = leap::WarmUp(machine, pid, kFootprintPages);
  auto stream = MakeStream(kind);
  leap::RunConfig run;
  run.total_accesses = kAccesses;
  run.start_time_ns = warm + 10 * leap::kNsPerMs;
  leap::RunResult result = leap::RunApp(machine, pid, *stream, run);

  const leap::Counters& c = machine.counters();
  std::printf("  faults=%llu hits=%llu misses=%llu prefetch-hits=%llu "
              "(coverage %.1f%%)\n",
              static_cast<unsigned long long>(
                  c.Get(leap::counter::kPageFaults)),
              static_cast<unsigned long long>(
                  c.Get(leap::counter::kCacheHits)),
              static_cast<unsigned long long>(
                  c.Get(leap::counter::kCacheMisses)),
              static_cast<unsigned long long>(
                  c.Get(leap::counter::kPrefetchHits)),
              100.0 * c.Ratio(leap::counter::kPrefetchHits,
                              leap::counter::kPageFaults));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* kind = argc > 1 ? argv[1] : "mixed";
  std::printf("workload: %s, %zu accesses, 50%% local memory\n\n", kind,
              kAccesses);

  std::printf("[1/2] disaggregated VMM, default kernel data path:\n");
  const leap::RunResult dvmm = RunOne(
      leap::DefaultVmmConfig(leap::PrefetchKind::kReadAhead, kFrames, 7),
      kind);

  std::printf("[2/2] disaggregated VMM + Leap (lean path + majority "
              "prefetcher + eager eviction):\n");
  const leap::RunResult with_leap =
      RunOne(leap::LeapVmmConfig(kFrames, 7), kind);

  std::printf("\nremote 4KB page access latency:\n%s\n",
              leap::RenderLatencyQuantileTable(
                  {{"default path", &dvmm.remote_access_latency},
                   {"Leap", &with_leap.remote_access_latency}})
                  .c_str());
  std::printf("completion: %.2fs -> %.2fs (%.2fx)\n",
              leap::ToSec(dvmm.completion_ns),
              leap::ToSec(with_leap.completion_ns),
              leap::ToSec(dvmm.completion_ns) /
                  leap::ToSec(with_leap.completion_ns));
  return 0;
}
