// Key-value cache server scenario (the paper's Memcached case): a
// latency-sensitive, mostly-random workload where the right behavior for a
// prefetcher is to *stand down*.
//
// Shows (a) Leap's adaptive throttling - near-zero prefetch volume on
// zipf-random traffic, so no RDMA congestion or cache pollution - and
// (b) that the lean data path still cuts the p99 paging latency, which is
// what preserves the server's op throughput at tight memory limits.
//
//   $ ./kv_cache_server
#include <cstdio>

#include "src/runtime/app_runner.h"
#include "src/runtime/presets.h"
#include "src/stats/table.h"
#include "src/workload/app_models.h"

namespace {

constexpr size_t kFootprintPages = 28 * 1024;  // 112 MB of slabs
constexpr size_t kOps = 120'000;

struct Row {
  double kops;
  double p99_us;
  uint64_t prefetches;
  uint64_t unused;
};

Row Serve(const leap::MachineConfig& config, size_t memory_pct) {
  leap::Machine machine(config);
  const leap::Pid pid =
      machine.CreateProcess(kFootprintPages * memory_pct / 100);
  const leap::SimTimeNs warm = leap::WarmUp(machine, pid, kFootprintPages);
  auto traffic = leap::MakeMemcached(kFootprintPages, 1001);
  leap::RunConfig run;
  run.total_accesses = kOps * 2;  // ~2 page touches per op
  run.start_time_ns = warm + 10 * leap::kNsPerMs;
  const leap::RunResult result = leap::RunApp(machine, pid, *traffic, run);
  return Row{result.ops_per_sec / 1000.0,
             leap::ToUs(result.remote_access_latency.Percentile(0.99)),
             machine.counters().Get(leap::counter::kPrefetchIssued),
             machine.counters().Get(leap::counter::kPrefetchUnused)};
}

}  // namespace

int main() {
  std::printf("zipf-random KV traffic (Facebook-ETC-like), %zu ops\n\n",
              kOps);
  leap::TextTable table;
  table.SetHeader({"memory", "path", "kops/s", "p99(us)", "prefetches",
                   "unused"});
  for (size_t pct : {50, 25}) {
    const Row dvmm = Serve(
        leap::DefaultVmmConfig(leap::PrefetchKind::kReadAhead, 1 << 16, 5),
        pct);
    const Row with_leap = Serve(leap::LeapVmmConfig(1 << 16, 5), pct);
    char kops[32];
    char p99[32];
    std::snprintf(kops, sizeof(kops), "%.1f", dvmm.kops);
    std::snprintf(p99, sizeof(p99), "%.1f", dvmm.p99_us);
    table.AddRow({std::to_string(pct) + "%", "default", kops, p99,
                  std::to_string(dvmm.prefetches),
                  std::to_string(dvmm.unused)});
    std::snprintf(kops, sizeof(kops), "%.1f", with_leap.kops);
    std::snprintf(p99, sizeof(p99), "%.1f", with_leap.p99_us);
    table.AddRow({"", "leap", kops, p99,
                  std::to_string(with_leap.prefetches),
                  std::to_string(with_leap.unused)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("On random traffic Leap stands down (tiny prefetch volume)\n"
              "instead of polluting the cache; throughput is preserved by\n"
              "the faster slow path, not by speculation.\n");
  return 0;
}
