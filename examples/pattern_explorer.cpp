// Interactive trend-detection explorer.
//
// Type page numbers (decimal or 0x hex) one per line and watch Leap's
// AccessHistory, majority trend, and prefetch decisions evolve. Useful for
// building intuition about Algorithm 1/2 corner cases.
//
//   $ ./pattern_explorer          # interactive
//   $ echo "1 2 3 4 5 6" | ./pattern_explorer
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "src/core/leap.h"

namespace {

void PrintState(const leap::LeapPrefetcher& prefetcher,
                const leap::PrefetchDecision& decision) {
  const leap::AccessHistory& history = prefetcher.history();
  std::printf("  history (newest first): [");
  for (size_t i = 0; i < history.size(); ++i) {
    std::printf("%s%+lld", i == 0 ? "" : ", ",
                static_cast<long long>(history.FromHead(i)));
  }
  std::printf("]\n");
  if (decision.trend_found) {
    std::printf("  majority trend: %+lld\n",
                static_cast<long long>(decision.delta_used));
  } else {
    std::printf("  majority trend: none%s\n",
                decision.speculative ? " (speculating with last trend)" : "");
  }
  std::printf("  prefetch window: %zu\n", decision.window_size);
  if (decision.pages.empty()) {
    std::printf("  prefetch: (demand page only)\n");
  } else {
    std::printf("  prefetch:");
    for (leap::SwapSlot page : decision.pages) {
      std::printf(" %llu", static_cast<unsigned long long>(page));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  leap::LeapParams params;
  params.history_size = 8;  // small enough to eyeball
  leap::LeapPrefetcher prefetcher(params);

  std::printf("Leap pattern explorer - Hsize=%zu, Nsplit=%zu, PWmax=%zu\n",
              params.history_size, params.nsplit,
              params.max_prefetch_window);
  std::printf("enter page numbers (blank line or EOF to quit); every\n"
              "access is treated as a fault, and prefetched pages are\n"
              "auto-consumed so the window can grow.\n\n");

  std::string token;
  while (std::cin >> token) {
    leap::SwapSlot page = 0;
    try {
      page = std::stoull(token, nullptr, 0);  // accepts 0x.. and decimal
    } catch (...) {
      std::printf("  (could not parse '%s')\n", token.c_str());
      continue;
    }
    const leap::PrefetchDecision d = prefetcher.OnMiss(page);
    for (size_t i = 0; i < d.pages.size(); ++i) {
      prefetcher.OnPrefetchHit(d.pages[i]);
    }
    std::printf("access %llu:\n", static_cast<unsigned long long>(page));
    PrintState(prefetcher, d);
  }
  return 0;
}
