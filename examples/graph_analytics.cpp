// Graph analytics under memory pressure: the paper's motivating scenario.
//
// A PowerGraph-style workload (CSR scans + strided property walks +
// irregular gathers) runs at decreasing local-memory fractions, showing how
// Leap keeps the remote-latency profile flat while the default data path
// degrades - and how the prefetcher adapts its window per phase.
//
//   $ ./graph_analytics
#include <cstdio>

#include "src/runtime/app_runner.h"
#include "src/runtime/presets.h"
#include "src/stats/table.h"
#include "src/workload/app_models.h"

namespace {

constexpr size_t kFootprintPages = 24 * 1024;  // 96 MB graph
constexpr size_t kAccesses = 150'000;

struct Row {
  double completion_s;
  double p50_us;
  double p99_us;
  double coverage_pct;
};

Row RunOne(const leap::MachineConfig& config, size_t memory_pct) {
  leap::Machine machine(config);
  const leap::Pid pid =
      machine.CreateProcess(kFootprintPages * memory_pct / 100);
  const leap::SimTimeNs warm = leap::WarmUp(machine, pid, kFootprintPages);
  auto graph = leap::MakePowerGraph(kFootprintPages, 99);
  leap::RunConfig run;
  run.total_accesses = kAccesses;
  run.start_time_ns = warm + 10 * leap::kNsPerMs;
  const leap::RunResult result = leap::RunApp(machine, pid, *graph, run);
  return Row{
      leap::ToSec(result.completion_ns),
      leap::ToUs(result.remote_access_latency.Percentile(0.5)),
      leap::ToUs(result.remote_access_latency.Percentile(0.99)),
      100.0 * machine.counters().Ratio(leap::counter::kPrefetchHits,
                                       leap::counter::kPageFaults)};
}

}  // namespace

int main() {
  std::printf("PowerGraph-style graph analytics, %zu-page (96 MB) graph\n\n",
              kFootprintPages);
  leap::TextTable table;
  table.SetHeader({"memory", "path", "completion(s)", "p50(us)", "p99(us)",
                   "coverage(%)"});
  for (size_t pct : {75, 50, 25}) {
    const Row dvmm = RunOne(
        leap::DefaultVmmConfig(leap::PrefetchKind::kReadAhead, 1 << 16, 3),
        pct);
    const Row with_leap = RunOne(leap::LeapVmmConfig(1 << 16, 3), pct);
    char buf[4][32];
    std::snprintf(buf[0], sizeof(buf[0]), "%.2f", dvmm.completion_s);
    std::snprintf(buf[1], sizeof(buf[1]), "%.2f", dvmm.p50_us);
    std::snprintf(buf[2], sizeof(buf[2]), "%.2f", dvmm.p99_us);
    std::snprintf(buf[3], sizeof(buf[3]), "%.1f", dvmm.coverage_pct);
    table.AddRow({std::to_string(pct) + "%", "default", buf[0], buf[1],
                  buf[2], buf[3]});
    std::snprintf(buf[0], sizeof(buf[0]), "%.2f", with_leap.completion_s);
    std::snprintf(buf[1], sizeof(buf[1]), "%.2f", with_leap.p50_us);
    std::snprintf(buf[2], sizeof(buf[2]), "%.2f", with_leap.p99_us);
    std::snprintf(buf[3], sizeof(buf[3]), "%.1f", with_leap.coverage_pct);
    table.AddRow({"", "leap", buf[0], buf[1], buf[2], buf[3]});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Leap holds the latency profile nearly flat as memory\n"
              "shrinks; the default path's median degrades toward its full "
              "miss cost.\n");
  return 0;
}
