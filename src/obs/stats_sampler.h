// Periodic time-series sampler: a self-rescheduling tick on the shared
// EventQueue (the same pattern kswapd uses) that snapshots whatever the
// owner's collector callback fills in - per-tenant prefetch budgets,
// per-class queue-delay EWMAs, health-monitor node states, frame-pool
// occupancy, and a windowed demand-latency percentile - into an in-memory
// series dumped as JSONL at end of run.
//
// Gating contract: the sampler only exists when enabled (the Cluster holds
// a null pointer otherwise), it never mutates simulation state (the
// collector must be read-only), and it draws no randomness - so enabling
// it changes no simulation result, and two same-seed runs produce
// byte-identical sample series (pinned by obs_trace_test).
//
// The sampler lives in src/obs below src/runtime, so it cannot see
// Machine or Cluster types: the owner injects a collector closure instead
// of the sampler reaching up the stack.
#ifndef LEAP_SRC_OBS_STATS_SAMPLER_H_
#define LEAP_SRC_OBS_STATS_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/types.h"

namespace leap {

struct StatsSamplerConfig {
  bool enabled = false;
  // Sampling cadence. 200 us resolves a ~1 ms gray-detection window into
  // ~5 points without swamping a smoke run's event count.
  SimTimeNs period_ns = 200 * kNsPerUs;
};

// One sample row. Plain data; the collector fills it, WriteJsonl prints
// it. Vectors are indexed by host / node id respectively.
struct StatsSample {
  SimTimeNs ts = 0;

  // Demand-read latency over the window since the previous sample.
  uint64_t window_demand_ops = 0;
  uint64_t window_demand_p50_ns = 0;
  uint64_t window_demand_p99_ns = 0;

  // Fabric per-class queue-delay EWMAs (cumulative signals).
  double demand_queue_delay_ewma_ns = 0.0;
  double prefetch_queue_delay_ewma_ns = 0.0;

  // Health monitor, indexed by node: state 0=healthy 1=suspect 2=gray.
  std::vector<uint8_t> node_state;
  std::vector<double> node_ewma_ns;

  // Frame pool / page cache occupancy, indexed by host.
  std::vector<size_t> host_free_frames;
  std::vector<size_t> host_cache_pages;

  // Tiered-memory occupancy (pages per tier, summed over hosts) and
  // cumulative migration volume. Empty/zero - and omitted from the JSONL -
  // unless the run has tiering enabled, so untiered time series are
  // byte-identical to pre-tiering builds.
  std::vector<size_t> tier_pages;
  uint64_t tier_promotions = 0;
  uint64_t tier_demotions = 0;

  // Per-tenant AIMD prefetch budgets.
  struct TenantBudget {
    uint32_t host = 0;
    Pid pid = 0;
    double budget = 0.0;
  };
  std::vector<TenantBudget> tenant_budgets;
};

class StatsSampler {
 public:
  // The collector fills one StatsSample at each tick. It must be
  // read-only with respect to simulation state and must not allocate
  // into the sampler (the sample row is fresh each tick).
  using Collector = std::function<void(SimTimeNs now, StatsSample& sample)>;

  StatsSampler(const StatsSamplerConfig& config, EventQueue* events,
               Collector collector);

  // Arms the first tick at `at`; subsequent ticks self-reschedule every
  // period until the event queue stops being drained.
  void Start(SimTimeNs at);

  const StatsSamplerConfig& config() const { return config_; }
  const std::vector<StatsSample>& samples() const { return samples_; }

  // One JSON object per line (JSONL), oldest first.
  void WriteJsonl(std::ostream& out) const;

 private:
  void Tick(SimTimeNs now);

  StatsSamplerConfig config_;
  EventQueue* events_ = nullptr;
  Collector collector_;
  std::vector<StatsSample> samples_;
};

}  // namespace leap

#endif  // LEAP_SRC_OBS_STATS_SAMPLER_H_
