#include "src/obs/trace_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>

namespace leap {
namespace {

// Local copy of the NodeHealth naming: src/obs sits below src/cluster in
// the layering (the fabric and monitor hold TraceRecorder pointers), so
// the exporter cannot include health_monitor.h. The numeric states are
// pinned by the kHealthTransition contract (a/b = 0 healthy, 1 suspect,
// 2 gray).
constexpr const char* kHealthStateNames[] = {"healthy", "suspect", "gray"};

const char* HealthStateName(uint8_t s) {
  return s < 3 ? kHealthStateNames[s] : "unknown";
}

// Local copy of the tier naming, for the same layering reason: the numeric
// tiers are pinned by the kTierPromote/kTierDemote contract (a/b = 0 cxl,
// 1 remote, 2 ssd; see src/tier/tier_config.h).
constexpr const char* kTierNames[] = {"cxl", "remote", "ssd"};

const char* TierTrackName(uint8_t t) {
  return t < 3 ? kTierNames[t] : "unknown";
}

// Track mapping: hosts and nodes become chrome://tracing "processes".
// Host pids start at 1 (pid 0 renders oddly), node pids at 1000 - a donor
// pool never has anywhere near 999 hosts in one trace.
uint64_t HostPid(uint32_t host) { return 1 + host; }
uint64_t NodePid(uint32_t node) { return 1000 + node; }

bool IsHostTrackKind(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kBlockAdmit:
    case TraceEventKind::kPrefetchIssued:
    case TraceEventKind::kPrefetchHit:
    case TraceEventKind::kPrefetchDropped:
    case TraceEventKind::kReadReroute:
    case TraceEventKind::kHedgeIssued:
    case TraceEventKind::kHedgeWin:
    case TraceEventKind::kDeadlineMiss:
    case TraceEventKind::kReadRetry:
    case TraceEventKind::kTierPromote:
    case TraceEventKind::kTierDemote:
      return true;
    default:
      return false;
  }
}

// printf-style into the stream with the inter-record separator handled.
class RecordWriter {
 public:
  explicit RecordWriter(std::ostream& out) : out_(out) {}

  void Emit(const char* fmt, ...) {
    char buf[768];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (!first_) {
      out_ << ",\n";
    }
    first_ = false;
    out_ << "    " << buf;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

double ToTraceUs(SimTimeNs ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

TraceRecorder::TraceRecorder(const TraceConfig& config)
    : enabled_(config.enabled) {
  if (enabled_ && config.capacity > 0) {
    ring_.resize(config.capacity);
  }
}

uint64_t TraceRecorder::CountKind(TraceEventKind kind) const {
  uint64_t n = 0;
  for (size_t i = 0; i < count_; ++i) {
    if (At(i).kind == kind) {
      ++n;
    }
  }
  return n;
}

void TraceRecorder::ExportChromeTrace(std::ostream& out) const {
  out << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
  RecordWriter w(out);

  // Pass 1: discover the tracks and the trace horizon.
  std::set<uint32_t> hosts;
  std::set<uint32_t> nodes;
  SimTimeNs end_ts = 0;
  for (size_t i = 0; i < count_; ++i) {
    const TraceEvent& e = At(i);
    end_ts = std::max(end_ts, e.ts + e.dur_ns);
    if (IsHostTrackKind(e.kind)) {
      hosts.insert(e.host);
    }
    if (e.kind == TraceEventKind::kFabricOp) {
      hosts.insert(e.host);
      nodes.insert(e.node);
    }
    if (!IsHostTrackKind(e.kind) && e.kind != TraceEventKind::kFabricOp) {
      nodes.insert(e.node);
    }
  }
  for (uint32_t h : hosts) {
    w.Emit("{\"ph\": \"M\", \"pid\": %" PRIu64
           ", \"name\": \"process_name\", \"args\": {\"name\": \"host %u\"}}",
           HostPid(h), h);
    w.Emit("{\"ph\": \"M\", \"pid\": %" PRIu64
           ", \"name\": \"process_sort_index\", \"args\": {\"sort_index\": "
           "%u}}",
           HostPid(h), h);
  }
  for (uint32_t n : nodes) {
    w.Emit("{\"ph\": \"M\", \"pid\": %" PRIu64
           ", \"name\": \"process_name\", \"args\": {\"name\": \"node %u\"}}",
           NodePid(n), n);
    w.Emit("{\"ph\": \"M\", \"pid\": %" PRIu64
           ", \"name\": \"process_sort_index\", \"args\": {\"sort_index\": "
           "%u}}",
           NodePid(n), 1000 + n);
  }

  // Pass 2: the events themselves. Async ("b"/"e") spans tolerate overlap
  // on one track, which fabric ops on a busy node always have; the id
  // ties begin to end.
  uint64_t next_id = 1;
  for (size_t i = 0; i < count_; ++i) {
    const TraceEvent& e = At(i);
    const double ts_us = ToTraceUs(e.ts);
    switch (e.kind) {
      case TraceEventKind::kFabricOp: {
        const uint64_t id = next_id++;
        w.Emit("{\"ph\": \"b\", \"cat\": \"fabric\", \"name\": \"%s\", "
               "\"id\": \"0x%" PRIx64 "\", \"pid\": %" PRIu64
               ", \"tid\": 0, \"ts\": %.3f, \"args\": {\"host\": %u, "
               "\"tenant\": %u, \"slot\": %" PRIu64
               ", \"software_ns\": %u, \"queue_ns\": %u, \"wire_ns\": %u, "
               "\"stall_ns\": %u, \"service_ns\": %u}}",
               IoClassName(e.cls), id, NodePid(e.node), ts_us, e.host,
               e.tenant, e.slot, e.stage_software_ns, e.stage_queue_ns,
               e.stage_wire_ns, e.stage_stall_ns, e.stage_service_ns);
        w.Emit("{\"ph\": \"e\", \"cat\": \"fabric\", \"name\": \"%s\", "
               "\"id\": \"0x%" PRIx64 "\", \"pid\": %" PRIu64
               ", \"tid\": 0, \"ts\": %.3f}",
               IoClassName(e.cls), id, NodePid(e.node),
               ToTraceUs(e.ts + e.dur_ns));
        break;
      }
      case TraceEventKind::kBlockAdmit: {
        const uint64_t id = next_id++;
        w.Emit("{\"ph\": \"b\", \"cat\": \"blocklayer\", \"name\": "
               "\"block_admit\", \"id\": \"0x%" PRIx64 "\", \"pid\": %" PRIu64
               ", \"tid\": %u, \"ts\": %.3f, \"args\": {\"slot\": %" PRIu64
               ", \"batch_pages\": %u}}",
               id, HostPid(e.host), e.tenant, ts_us, e.slot, e.a);
        w.Emit("{\"ph\": \"e\", \"cat\": \"blocklayer\", \"name\": "
               "\"block_admit\", \"id\": \"0x%" PRIx64 "\", \"pid\": %" PRIu64
               ", \"tid\": %u, \"ts\": %.3f}",
               id, HostPid(e.host), e.tenant, ToTraceUs(e.ts + e.dur_ns));
        break;
      }
      case TraceEventKind::kHealthTransition:
        w.Emit("{\"ph\": \"i\", \"cat\": \"health\", \"name\": \"%s->%s\", "
               "\"pid\": %" PRIu64
               ", \"tid\": 0, \"ts\": %.3f, \"s\": \"p\"}",
               HealthStateName(e.a), HealthStateName(e.b), NodePid(e.node),
               ts_us);
        break;
      case TraceEventKind::kTierPromote:
      case TraceEventKind::kTierDemote:
        w.Emit("{\"ph\": \"i\", \"cat\": \"tier\", \"name\": \"%s\", "
               "\"pid\": %" PRIu64
               ", \"tid\": 0, \"ts\": %.3f, \"s\": \"t\", \"args\": "
               "{\"slot\": %" PRIu64 ", \"from\": \"%s\", \"to\": \"%s\"}}",
               TraceEventKindName(e.kind), HostPid(e.host), ts_us, e.slot,
               TierTrackName(e.a), TierTrackName(e.b));
        break;
      case TraceEventKind::kNodeFail:
      case TraceEventKind::kNodeRecover:
      case TraceEventKind::kGraySet:
      case TraceEventKind::kGrayClear:
      case TraceEventKind::kDelaySpike:
        w.Emit("{\"ph\": \"i\", \"cat\": \"fault\", \"name\": \"%s\", "
               "\"pid\": %" PRIu64
               ", \"tid\": 0, \"ts\": %.3f, \"s\": \"p\", \"args\": "
               "{\"payload\": %" PRIu64 "}}",
               TraceEventKindName(e.kind), NodePid(e.node), ts_us, e.slot);
        break;
      default:
        // Host-track instants: prefetch lifecycle + mitigation decisions.
        // Tenants map to threads so per-tenant activity reads as lanes.
        w.Emit("{\"ph\": \"i\", \"cat\": \"%s\", \"name\": \"%s\", "
               "\"pid\": %" PRIu64
               ", \"tid\": %u, \"ts\": %.3f, \"s\": \"t\", \"args\": "
               "{\"node\": %u, \"slot\": %" PRIu64 ", \"dur_ns\": %" PRIu64
               "}}",
               IsHostTrackKind(e.kind) &&
                       e.kind != TraceEventKind::kPrefetchIssued &&
                       e.kind != TraceEventKind::kPrefetchHit &&
                       e.kind != TraceEventKind::kPrefetchDropped
                   ? "mitigation"
                   : "prefetch",
               TraceEventKindName(e.kind), HostPid(e.host), e.tenant, ts_us,
               e.node, e.slot, e.dur_ns);
        break;
    }
  }

  // Pass 3: synthesize per-node health-STATE spans from the transition
  // instants, so "this node sat gray from t1 to t2" is a visible band and
  // the gap between fault injection (kGraySet instant) and the gray span's
  // left edge IS the detection window.
  for (uint32_t n : nodes) {
    uint8_t state = 0;  // kHealthy
    SimTimeNs since = 0;
    auto close_span = [&](SimTimeNs at) {
      if (state == 0) {
        return;
      }
      const uint64_t id = next_id++;
      w.Emit("{\"ph\": \"b\", \"cat\": \"health\", \"name\": \"%s\", "
             "\"id\": \"0x%" PRIx64 "\", \"pid\": %" PRIu64
             ", \"tid\": 0, \"ts\": %.3f}",
             HealthStateName(state), id, NodePid(n), ToTraceUs(since));
      w.Emit("{\"ph\": \"e\", \"cat\": \"health\", \"name\": \"%s\", "
             "\"id\": \"0x%" PRIx64 "\", \"pid\": %" PRIu64
             ", \"tid\": 0, \"ts\": %.3f}",
             HealthStateName(state), id, NodePid(n), ToTraceUs(at));
    };
    for (size_t i = 0; i < count_; ++i) {
      const TraceEvent& e = At(i);
      if (e.kind != TraceEventKind::kHealthTransition || e.node != n) {
        continue;
      }
      close_span(e.ts);
      state = e.b;
      since = e.ts;
    }
    close_span(end_ts);
  }

  out << "\n  ]\n}\n";
}

}  // namespace leap
