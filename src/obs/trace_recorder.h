// Flight recorder: a fixed-capacity ring buffer of POD trace events fed by
// the data path, the fabric, the mitigation layer, and the health monitor.
//
// Gating contract (see src/obs/README.md): a layer holds a
// `TraceRecorder* trace_` that is nullptr unless tracing was enabled at
// construction time, so the disabled cost is ONE pointer test per
// instrumented site - no RNG draws, no timestamps, no allocation - and a
// run with `trace.enabled=false` is bit-identical to a build without this
// file. When enabled, `Record` is a branch, a 64-byte copy, and index
// arithmetic into storage pre-allocated at construction; the hot path
// never allocates. When the ring is full the oldest event is overwritten
// and `dropped()` counts what was lost (a flight recorder keeps the most
// recent history, which is the part that explains the anomaly you stopped
// on).
//
// `ExportChromeTrace` serializes the ring in the Chrome trace-event JSON
// format (also readable by Perfetto): load the file in chrome://tracing or
// ui.perfetto.dev. Hosts and memory nodes become processes, tenants become
// threads on their host's track, fabric page ops become async spans on the
// serving node with the per-stage latency decomposition attached as args,
// and health-monitor state is synthesized into suspect/gray spans so a
// gray-failure detection window is visible as a colored band.
#ifndef LEAP_SRC_OBS_TRACE_RECORDER_H_
#define LEAP_SRC_OBS_TRACE_RECORDER_H_

#include <cstdint>
#include <ostream>
#include <type_traits>
#include <vector>

#include "src/sim/io_request.h"
#include "src/sim/types.h"

namespace leap {

// Everything the simulator knows how to put on a timeline. Span kinds carry
// a nonzero dur_ns; the rest are instants.
enum class TraceEventKind : uint8_t {
  kFabricOp = 0,       // span: fabric submit -> completion (stage args)
  kBlockAdmit,         // span: block-layer batch admit -> dispatch ready
  kPrefetchIssued,     // instant, host track
  kPrefetchHit,        // instant, host track (dur_ns = timeliness)
  kPrefetchDropped,    // instant, host track
  kReadReroute,        // instant: demand read steered off a gray primary
  kHedgeIssued,        // instant: speculative duplicate read launched
  kHedgeWin,           // instant: the hedge beat the primary
  kDeadlineMiss,       // instant: read attempt blew its deadline
  kReadRetry,          // instant: read re-issued after a deadline miss
  kHealthTransition,   // instant, node track (a = from state, b = to state)
  kNodeFail,           // instant: injected node crash
  kNodeRecover,        // instant: injected node recovery
  kGraySet,            // instant: injected slowdown applied (payload = x1000)
  kGrayClear,          // instant: injected slowdown restored
  kDelaySpike,         // instant: injected per-op delay spike (payload = ns)
  kTierPromote,        // instant, host track (a = from tier, b = to tier)
  kTierDemote,         // instant, host track (a = from tier, b = to tier)
  kCount,
};

inline constexpr size_t kTraceEventKindCount =
    static_cast<size_t>(TraceEventKind::kCount);

constexpr const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kFabricOp: return "fabric_op";
    case TraceEventKind::kBlockAdmit: return "block_admit";
    case TraceEventKind::kPrefetchIssued: return "prefetch_issued";
    case TraceEventKind::kPrefetchHit: return "prefetch_hit";
    case TraceEventKind::kPrefetchDropped: return "prefetch_dropped";
    case TraceEventKind::kReadReroute: return "read_reroute";
    case TraceEventKind::kHedgeIssued: return "hedge_issued";
    case TraceEventKind::kHedgeWin: return "hedge_win";
    case TraceEventKind::kDeadlineMiss: return "deadline_miss";
    case TraceEventKind::kReadRetry: return "read_retry";
    case TraceEventKind::kHealthTransition: return "health_transition";
    case TraceEventKind::kNodeFail: return "node_fail";
    case TraceEventKind::kNodeRecover: return "node_recover";
    case TraceEventKind::kGraySet: return "gray_set";
    case TraceEventKind::kGrayClear: return "gray_clear";
    case TraceEventKind::kDelaySpike: return "delay_spike";
    case TraceEventKind::kTierPromote: return "tier_promote";
    case TraceEventKind::kTierDemote: return "tier_demote";
    case TraceEventKind::kCount: break;
  }
  return "unknown";
}

// One ring entry. POD by design: recording is a struct copy, and the ring
// is a flat pre-sized vector, so the recorder never touches the allocator
// after construction. Fields are overloaded per kind (documented next to
// the kind above); unused fields stay zero.
struct TraceEvent {
  SimTimeNs ts = 0;          // event (or span start) time, sim ns
  uint64_t slot = 0;         // swap slot, or kind-specific payload
  uint64_t dur_ns = 0;       // span length; 0 for instants
  uint32_t host = 0;         // issuing host / fabric uplink
  uint32_t node = 0;         // serving or affected memory node
  Pid tenant = 0;            // issuing process (0 = kernel work)
  TraceEventKind kind = TraceEventKind::kFabricOp;
  IoClass cls = IoClass::kDemandRead;
  uint8_t a = 0;             // kind-specific (health: from-state)
  uint8_t b = 0;             // kind-specific (health: to-state)
  // Per-stage latency decomposition for kFabricOp, in ns. The five stages
  // sum exactly to dur_ns for ops stamped with enqueue_ts (the telescoping
  // identity Fabric::SubmitPageOp maintains; see src/cluster/fabric.cc).
  uint32_t stage_software_ns = 0;  // fault -> fabric submit (block layer)
  uint32_t stage_queue_ns = 0;     // link-scheduler wait for the wire
  uint32_t stage_wire_ns = 0;      // serialization incl. gray stretch
  uint32_t stage_stall_ns = 0;     // congestion backlog + delay spikes
  uint32_t stage_service_ns = 0;   // remote node service draw
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay POD: Record() is a memcpy-class copy");

struct TraceConfig {
  bool enabled = false;
  // Ring capacity in events (64 B each). 64Ki events ~ 4 MiB covers the
  // whole fabric history of a smoke bench and the tail of a full one.
  size_t capacity = size_t{1} << 16;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceConfig& config);

  bool enabled() const { return enabled_; }

  // Appends one event; overwrites the oldest when full. Never allocates.
  void Record(const TraceEvent& event) {
    if (!enabled_ || ring_.empty()) {
      return;
    }
    ring_[head_] = event;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
  }

  // Events currently held (<= capacity).
  size_t size() const { return count_; }
  size_t capacity() const { return ring_.size(); }
  // Events overwritten because the ring wrapped.
  uint64_t dropped() const { return dropped_; }
  // Total ever recorded (= size() + dropped()).
  uint64_t recorded() const { return dropped_ + count_; }

  // i-th retained event, oldest first (0 <= i < size()).
  const TraceEvent& At(size_t i) const {
    const size_t start = count_ < ring_.size() ? 0 : head_;
    size_t pos = start + i;
    if (pos >= ring_.size()) {
      pos -= ring_.size();
    }
    return ring_[pos];
  }

  uint64_t CountKind(TraceEventKind kind) const;

  // Serializes the ring as Chrome trace-event JSON (chrome://tracing,
  // Perfetto). Cold path; allocates freely.
  void ExportChromeTrace(std::ostream& out) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;    // next write position
  size_t count_ = 0;   // live entries
  uint64_t dropped_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_OBS_TRACE_RECORDER_H_
