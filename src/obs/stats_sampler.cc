#include "src/obs/stats_sampler.h"

#include <cinttypes>
#include <cstdio>

namespace leap {

StatsSampler::StatsSampler(const StatsSamplerConfig& config,
                           EventQueue* events, Collector collector)
    : config_(config), events_(events), collector_(std::move(collector)) {}

void StatsSampler::Start(SimTimeNs at) {
  if (!config_.enabled || events_ == nullptr || !collector_) {
    return;
  }
  events_->ScheduleAt(at, [this](SimTimeNs when) { Tick(when); });
}

void StatsSampler::Tick(SimTimeNs now) {
  StatsSample sample;
  sample.ts = now;
  collector_(now, sample);
  samples_.push_back(std::move(sample));
  events_->ScheduleAt(now + config_.period_ns,
                      [this](SimTimeNs when) { Tick(when); });
}

void StatsSampler::WriteJsonl(std::ostream& out) const {
  char buf[256];
  for (const StatsSample& s : samples_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ts_ns\": %" PRIu64 ", \"window_demand_ops\": %" PRIu64
                  ", \"window_demand_p50_ns\": %" PRIu64
                  ", \"window_demand_p99_ns\": %" PRIu64
                  ", \"demand_qdelay_ewma_ns\": %.1f"
                  ", \"prefetch_qdelay_ewma_ns\": %.1f",
                  s.ts, s.window_demand_ops, s.window_demand_p50_ns,
                  s.window_demand_p99_ns, s.demand_queue_delay_ewma_ns,
                  s.prefetch_queue_delay_ewma_ns);
    out << buf;
    out << ", \"node_state\": [";
    for (size_t i = 0; i < s.node_state.size(); ++i) {
      out << (i ? ", " : "") << static_cast<unsigned>(s.node_state[i]);
    }
    out << "], \"node_ewma_ns\": [";
    for (size_t i = 0; i < s.node_ewma_ns.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%.1f", i ? ", " : "",
                    s.node_ewma_ns[i]);
      out << buf;
    }
    out << "], \"host_free_frames\": [";
    for (size_t i = 0; i < s.host_free_frames.size(); ++i) {
      out << (i ? ", " : "") << s.host_free_frames[i];
    }
    out << "], \"host_cache_pages\": [";
    for (size_t i = 0; i < s.host_cache_pages.size(); ++i) {
      out << (i ? ", " : "") << s.host_cache_pages[i];
    }
    out << "]";
    if (!s.tier_pages.empty()) {
      out << ", \"tier_pages\": [";
      for (size_t i = 0; i < s.tier_pages.size(); ++i) {
        out << (i ? ", " : "") << s.tier_pages[i];
      }
      std::snprintf(buf, sizeof(buf),
                    "], \"tier_promotions\": %" PRIu64
                    ", \"tier_demotions\": %" PRIu64,
                    s.tier_promotions, s.tier_demotions);
      out << buf;
    }
    out << ", \"tenant_budgets\": [";
    for (size_t i = 0; i < s.tenant_budgets.size(); ++i) {
      const StatsSample::TenantBudget& t = s.tenant_budgets[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"host\": %u, \"pid\": %u, \"budget\": %.3f}",
                    i ? ", " : "", t.host, t.pid, t.budget);
      out << buf;
    }
    out << "]}\n";
  }
}

}  // namespace leap
