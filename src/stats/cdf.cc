#include "src/stats/cdf.h"

#include <cstdio>

#include "src/sim/types.h"
#include "src/stats/table.h"

namespace leap {
namespace {

std::string FormatUs(double us) {
  char buf[32];
  if (us >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", us);
  } else if (us >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", us);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", us);
  }
  return buf;
}

}  // namespace

std::string RenderLatencyQuantileTable(const std::vector<QuantileRow>& rows) {
  TextTable table;
  std::vector<std::string> header = {"series", "count", "mean(us)"};
  for (double q : kStandardQuantiles) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "p%g", q * 100.0);
    header.push_back(buf);
  }
  header.push_back("max(us)");
  table.SetHeader(header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.label,
                                      std::to_string(row.hist->count()),
                                      FormatUs(row.hist->Mean() / kNsPerUs)};
    for (double q : kStandardQuantiles) {
      cells.push_back(FormatUs(ToUs(row.hist->Percentile(q))));
    }
    cells.push_back(FormatUs(ToUs(row.hist->Max())));
    table.AddRow(cells);
  }
  return table.Render();
}

std::string RenderCcdfTable(const std::vector<QuantileRow>& rows,
                            const std::vector<double>& thresholds_us) {
  TextTable table;
  std::vector<std::string> header = {"series"};
  for (double t : thresholds_us) {
    // Built with append rather than `"..." + std::string&&`: GCC 12's
    // -Wrestrict false-positives on that operator+ overload at -O3.
    std::string label = ">";
    label += FormatUs(t);
    label += "us(%)";
    header.push_back(std::move(label));
  }
  table.SetHeader(header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.label};
    for (double t : thresholds_us) {
      const double frac = 1.0 - row.hist->FractionAtOrBelow(
                                    static_cast<uint64_t>(t * kNsPerUs));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", frac * 100.0);
      cells.push_back(buf);
    }
    table.AddRow(cells);
  }
  return table.Render();
}

}  // namespace leap
