// Log-bucketed latency histogram (HdrHistogram-style).
//
// Records values in [1 ns, ~18 s] with bounded relative error, answers
// percentile queries, and accumulates count/sum for means. Used for every
// latency series reported by the benchmark harness.
#ifndef LEAP_SRC_STATS_HISTOGRAM_H_
#define LEAP_SRC_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace leap {

class Histogram {
 public:
  // `sub_bucket_bits` sub-buckets per power of two; 6 bits keeps relative
  // error under ~1.6%.
  explicit Histogram(int sub_bucket_bits = 6);

  void Record(uint64_t value);
  void RecordN(uint64_t value, uint64_t count);

  uint64_t count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const;
  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return max_; }

  // Value at quantile q in [0, 1]. Returns the representative (midpoint)
  // value of the bucket containing the q-th sample.
  uint64_t Percentile(double q) const;

  // Fraction of recorded values that are <= value.
  double FractionAtOrBelow(uint64_t value) const;

  void Merge(const Histogram& other);
  void Reset();

 private:
  size_t BucketIndex(uint64_t value) const;
  uint64_t BucketMidpoint(size_t index) const;

  int sub_bucket_bits_;
  uint64_t sub_bucket_count_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_STATS_HISTOGRAM_H_
