// Fixed-width text table renderer used by every figure/table bench binary.
#ifndef LEAP_SRC_STATS_TABLE_H_
#define LEAP_SRC_STATS_TABLE_H_

#include <string>
#include <vector>

namespace leap {

class TextTable {
 public:
  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  // Right-aligns numeric-looking cells, left-aligns text, pads columns.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace leap

#endif  // LEAP_SRC_STATS_TABLE_H_
