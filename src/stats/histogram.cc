#include "src/stats/histogram.h"

#include <algorithm>
#include <bit>

namespace leap {

Histogram::Histogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_bucket_count_(1ULL << sub_bucket_bits) {
  // 64 powers of two, each with sub_bucket_count_ linear sub-buckets.
  buckets_.assign(64 * sub_bucket_count_, 0);
}

size_t Histogram::BucketIndex(uint64_t value) const {
  if (value < sub_bucket_count_) {
    return static_cast<size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - sub_bucket_bits_;
  const uint64_t sub = (value >> shift) - sub_bucket_count_;
  // Power-of-two group `msb` starts after the groups below it; groups below
  // sub_bucket_bits_ collapse into the identity range handled above.
  const size_t group =
      static_cast<size_t>(msb - sub_bucket_bits_ + 1) * sub_bucket_count_;
  return group + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketMidpoint(size_t index) const {
  if (index < sub_bucket_count_) {
    return index;
  }
  const size_t group = index / sub_bucket_count_;
  const uint64_t sub = index % sub_bucket_count_ + sub_bucket_count_;
  const int shift = static_cast<int>(group) - 1;
  const uint64_t lo = sub << shift;
  const uint64_t width = 1ULL << shift;
  return lo + width / 2;
}

void Histogram::Record(uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  const size_t idx = std::min(BucketIndex(value), buckets_.size() - 1);
  buckets_[idx] += count;
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketMidpoint(i), Min(), Max());
    }
  }
  return max_;
}

double Histogram::FractionAtOrBelow(uint64_t value) const {
  if (count_ == 0) {
    return 0.0;
  }
  const size_t cutoff = BucketIndex(value);
  uint64_t seen = 0;
  for (size_t i = 0; i <= cutoff && i < buckets_.size(); ++i) {
    seen += buckets_[i];
  }
  return static_cast<double>(seen) / static_cast<double>(count_);
}

void Histogram::Merge(const Histogram& other) {
  // Merging requires identical geometry.
  if (other.buckets_.size() != buckets_.size()) {
    return;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = ~0ULL;
  max_ = 0;
}

}  // namespace leap
