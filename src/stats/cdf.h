// Quantile summaries and CDF/CCDF table rendering for bench output.
#ifndef LEAP_SRC_STATS_CDF_H_
#define LEAP_SRC_STATS_CDF_H_

#include <string>
#include <vector>

#include "src/stats/histogram.h"

namespace leap {

// The quantiles every latency table in the harness reports.
inline constexpr double kStandardQuantiles[] = {0.01, 0.10, 0.25, 0.50, 0.75,
                                                0.90, 0.95, 0.99, 0.999};

struct QuantileRow {
  std::string label;
  const Histogram* hist;
};

// Renders one row per series: label, count, mean, then kStandardQuantiles,
// all in microseconds. Suitable for direct comparison with the paper's CDF
// figures.
std::string RenderLatencyQuantileTable(const std::vector<QuantileRow>& rows);

// Renders a CCDF (percent of samples above x) at the given microsecond
// thresholds — the presentation used by the paper's Figure 8a.
std::string RenderCcdfTable(const std::vector<QuantileRow>& rows,
                            const std::vector<double>& thresholds_us);

}  // namespace leap

#endif  // LEAP_SRC_STATS_CDF_H_
