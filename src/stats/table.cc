#include "src/stats/table.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

namespace leap {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'x' && c != '%') {
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) {
    cols = std::max(cols, r.size());
  }
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) {
    measure(r);
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& r, bool align_numeric) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string cell = i < r.size() ? r[i] : "";
      const size_t pad = width[i] - cell.size();
      const bool right = align_numeric && LooksNumeric(cell);
      if (i != 0) {
        out << "  ";
      }
      if (right) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_, false);
    size_t total = 0;
    for (size_t i = 0; i < cols; ++i) {
      total += width[i] + (i != 0 ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) {
    emit(r, true);
  }
  return out.str();
}

}  // namespace leap
