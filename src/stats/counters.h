// Named monotonic counters for data-path and prefetcher accounting.
//
// The counter names mirror the quantities the paper's evaluation reports:
// cache adds, cache hits/misses, prefetched-page hits (coverage), etc.
//
// Counters are identified by a dense enum and stored in a flat array: a
// bump on the access path is one indexed add, with no string hashing, no
// map lookup, and no allocation (the old string-keyed std::map allocated a
// node per counter and a std::string per bump for long names). Names only
// materialize in the cold reporting path (Name / values()).
#ifndef LEAP_SRC_STATS_COUNTERS_H_
#define LEAP_SRC_STATS_COUNTERS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace leap {

enum class CounterId : uint8_t {
  kPageFaults,
  kCacheHits,
  kCacheMisses,
  kPrefetchHits,
  kPrefetchWaitHits,
  kCacheAdds,
  kPrefetchIssued,
  kPrefetchUnused,
  kDemandReads,
  kWritebacks,
  kEvictions,
  kEagerFrees,
  kLruScans,
  kRemoteReads,
  kRemoteWrites,
  // Cluster / remote-pool events (PR 2).
  kRemoteCapacityExhausted,  // slab found no free node anywhere: degraded
  kOverflowReads,            // reads served by the overflow medium
  kOverflowWrites,           // writes absorbed by the overflow medium
  kRemoteFailovers,          // reads redirected to a replica (primary down)
  kRemoteReadsLost,          // reads with every replica down (penalty path)
  kRemoteWritesLost,         // writes with every replica down
  kSlabRepairs,              // slabs re-mapped after a node failure
  kRepairPageCopies,         // pages re-replicated during repair
  kNodeFailures,             // memory-node failure events (scenario hook)
  kNodeRecoveries,           // memory-node recovery events
  kHostJoins,                // hosts added to the cluster
  kHostLeaves,               // hosts removed from the cluster
  // Gray-failure mitigation (PR 6).
  kReadRetries,              // demand reads re-issued after a deadline miss
  kReadDeadlineMisses,       // demand reads whose attempt blew its deadline
  kHedgedReads,              // speculative second reads issued (tail hedge)
  kHedgeWins,                // hedges that beat the original read
  kReadsRerouted,            // reads steered off a gray-suspect primary
  kGrayTransitions,          // health-monitor state changes (any direction)
  kGrayFaultEvents,          // injected gray/slowdown fault events
  kDelaySpikeEvents,         // injected packet-delay spike events
  // Tiered far memory (src/tier/).
  kTierPromotions,           // pages migrated up a tier (hot)
  kTierDemotions,            // pages migrated down a tier (cold)
  kTierSpills,               // writes placed below the preferred tier (full)
  kTierFastHits,             // demand reads served by the fastest tier
  kTierSlowHits,             // demand reads served by any lower tier
  // Sharded parallel engine (src/runtime/sharded_cluster.h).
  kCrossShardSent,           // cross-shard page ops pushed into a mailbox
  kCrossShardApplied,        // cross-shard page ops applied at their target
  kCount,
};

inline constexpr size_t kCounterCount = static_cast<size_t>(CounterId::kCount);

// Reporting name of a counter (stable across versions; the evaluation
// scripts and EXPERIMENTS.md key off these strings).
constexpr const char* CounterName(CounterId id) {
  switch (id) {
    case CounterId::kPageFaults: return "page_faults";
    case CounterId::kCacheHits: return "cache_hits";
    case CounterId::kCacheMisses: return "cache_misses";
    case CounterId::kPrefetchHits: return "prefetch_hits";
    case CounterId::kPrefetchWaitHits: return "prefetch_wait_hits";
    case CounterId::kCacheAdds: return "cache_adds";
    case CounterId::kPrefetchIssued: return "prefetch_issued";
    case CounterId::kPrefetchUnused: return "prefetch_unused_evicted";
    case CounterId::kDemandReads: return "demand_reads";
    case CounterId::kWritebacks: return "writebacks";
    case CounterId::kEvictions: return "evictions";
    case CounterId::kEagerFrees: return "eager_frees";
    case CounterId::kLruScans: return "lru_pages_scanned";
    case CounterId::kRemoteReads: return "remote_reads";
    case CounterId::kRemoteWrites: return "remote_writes";
    case CounterId::kRemoteCapacityExhausted:
      return "remote_capacity_exhausted";
    case CounterId::kOverflowReads: return "overflow_reads";
    case CounterId::kOverflowWrites: return "overflow_writes";
    case CounterId::kRemoteFailovers: return "remote_read_failovers";
    case CounterId::kRemoteReadsLost: return "remote_reads_lost";
    case CounterId::kRemoteWritesLost: return "remote_writes_lost";
    case CounterId::kSlabRepairs: return "slab_repairs";
    case CounterId::kRepairPageCopies: return "repair_page_copies";
    case CounterId::kNodeFailures: return "node_failures";
    case CounterId::kNodeRecoveries: return "node_recoveries";
    case CounterId::kHostJoins: return "host_joins";
    case CounterId::kHostLeaves: return "host_leaves";
    case CounterId::kReadRetries: return "remote_read_retries";
    case CounterId::kReadDeadlineMisses: return "read_deadline_misses";
    case CounterId::kHedgedReads: return "hedged_reads";
    case CounterId::kHedgeWins: return "hedge_wins";
    case CounterId::kReadsRerouted: return "reads_rerouted_gray";
    case CounterId::kGrayTransitions: return "gray_suspect_transitions";
    case CounterId::kGrayFaultEvents: return "gray_fault_events";
    case CounterId::kDelaySpikeEvents: return "delay_spike_events";
    case CounterId::kTierPromotions: return "tier_promotions";
    case CounterId::kTierDemotions: return "tier_demotions";
    case CounterId::kTierSpills: return "tier_spills";
    case CounterId::kTierFastHits: return "tier_fast_demand_reads";
    case CounterId::kTierSlowHits: return "tier_slow_demand_reads";
    case CounterId::kCrossShardSent: return "cross_shard_ops_sent";
    case CounterId::kCrossShardApplied: return "cross_shard_ops_applied";
    case CounterId::kCount: break;
  }
  return "unknown";
}

class Counters {
 public:
  void Add(CounterId id, uint64_t delta = 1) {
    values_[static_cast<size_t>(id)] += delta;
  }

  uint64_t Get(CounterId id) const {
    return values_[static_cast<size_t>(id)];
  }

  // Ratio helper; returns 0 when the denominator counter is 0.
  double Ratio(CounterId num, CounterId den) const {
    const uint64_t d = Get(den);
    return d == 0 ? 0.0
                  : static_cast<double>(Get(num)) / static_cast<double>(d);
  }

  // Cold reporting view: name -> value for every counter that has fired.
  std::map<std::string, uint64_t> values() const {
    std::map<std::string, uint64_t> out;
    for (size_t i = 0; i < kCounterCount; ++i) {
      if (values_[i] != 0) {
        out.emplace(CounterName(static_cast<CounterId>(i)), values_[i]);
      }
    }
    return out;
  }

  // Element-wise accumulation of another snapshot. Commutative and
  // associative (plain uint64 adds), which is the contract the future
  // sharded engine's merge-on-barrier stats rely on - pinned by
  // stats_merge_test.
  void Merge(const Counters& other) {
    for (size_t i = 0; i < kCounterCount; ++i) {
      values_[i] += other.values_[i];
    }
  }

  void Reset() { values_.fill(0); }

 private:
  std::array<uint64_t, kCounterCount> values_{};
};

// Canonical counter ids used across the paging pipeline (kept as the
// historical `counter::kFoo` spellings used throughout the codebase).
namespace counter {
inline constexpr CounterId kPageFaults = CounterId::kPageFaults;
inline constexpr CounterId kCacheHits = CounterId::kCacheHits;
inline constexpr CounterId kCacheMisses = CounterId::kCacheMisses;
inline constexpr CounterId kPrefetchHits = CounterId::kPrefetchHits;
inline constexpr CounterId kPrefetchWaitHits = CounterId::kPrefetchWaitHits;
inline constexpr CounterId kCacheAdds = CounterId::kCacheAdds;
inline constexpr CounterId kPrefetchIssued = CounterId::kPrefetchIssued;
inline constexpr CounterId kPrefetchUnused = CounterId::kPrefetchUnused;
inline constexpr CounterId kDemandReads = CounterId::kDemandReads;
inline constexpr CounterId kWritebacks = CounterId::kWritebacks;
inline constexpr CounterId kEvictions = CounterId::kEvictions;
inline constexpr CounterId kEagerFrees = CounterId::kEagerFrees;
inline constexpr CounterId kLruScans = CounterId::kLruScans;
inline constexpr CounterId kRemoteReads = CounterId::kRemoteReads;
inline constexpr CounterId kRemoteWrites = CounterId::kRemoteWrites;
inline constexpr CounterId kRemoteCapacityExhausted =
    CounterId::kRemoteCapacityExhausted;
inline constexpr CounterId kOverflowReads = CounterId::kOverflowReads;
inline constexpr CounterId kOverflowWrites = CounterId::kOverflowWrites;
inline constexpr CounterId kRemoteFailovers = CounterId::kRemoteFailovers;
inline constexpr CounterId kRemoteReadsLost = CounterId::kRemoteReadsLost;
inline constexpr CounterId kRemoteWritesLost = CounterId::kRemoteWritesLost;
inline constexpr CounterId kSlabRepairs = CounterId::kSlabRepairs;
inline constexpr CounterId kRepairPageCopies = CounterId::kRepairPageCopies;
inline constexpr CounterId kNodeFailures = CounterId::kNodeFailures;
inline constexpr CounterId kNodeRecoveries = CounterId::kNodeRecoveries;
inline constexpr CounterId kHostJoins = CounterId::kHostJoins;
inline constexpr CounterId kHostLeaves = CounterId::kHostLeaves;
inline constexpr CounterId kReadRetries = CounterId::kReadRetries;
inline constexpr CounterId kReadDeadlineMisses =
    CounterId::kReadDeadlineMisses;
inline constexpr CounterId kHedgedReads = CounterId::kHedgedReads;
inline constexpr CounterId kHedgeWins = CounterId::kHedgeWins;
inline constexpr CounterId kReadsRerouted = CounterId::kReadsRerouted;
inline constexpr CounterId kGrayTransitions = CounterId::kGrayTransitions;
inline constexpr CounterId kGrayFaultEvents = CounterId::kGrayFaultEvents;
inline constexpr CounterId kDelaySpikeEvents = CounterId::kDelaySpikeEvents;
inline constexpr CounterId kTierPromotions = CounterId::kTierPromotions;
inline constexpr CounterId kTierDemotions = CounterId::kTierDemotions;
inline constexpr CounterId kTierSpills = CounterId::kTierSpills;
inline constexpr CounterId kTierFastHits = CounterId::kTierFastHits;
inline constexpr CounterId kTierSlowHits = CounterId::kTierSlowHits;
inline constexpr CounterId kCrossShardSent = CounterId::kCrossShardSent;
inline constexpr CounterId kCrossShardApplied = CounterId::kCrossShardApplied;
}  // namespace counter

}  // namespace leap

#endif  // LEAP_SRC_STATS_COUNTERS_H_
