// Named monotonic counters for data-path and prefetcher accounting.
//
// The counter names mirror the quantities the paper's evaluation reports:
// cache adds, cache hits/misses, prefetched-page hits (coverage), etc.
//
// Counters are identified by a dense enum and stored in a flat array: a
// bump on the access path is one indexed add, with no string hashing, no
// map lookup, and no allocation (the old string-keyed std::map allocated a
// node per counter and a std::string per bump for long names). Names only
// materialize in the cold reporting path (Name / values()).
#ifndef LEAP_SRC_STATS_COUNTERS_H_
#define LEAP_SRC_STATS_COUNTERS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace leap {

enum class CounterId : uint8_t {
  kPageFaults,
  kCacheHits,
  kCacheMisses,
  kPrefetchHits,
  kPrefetchWaitHits,
  kCacheAdds,
  kPrefetchIssued,
  kPrefetchUnused,
  kDemandReads,
  kWritebacks,
  kEvictions,
  kEagerFrees,
  kLruScans,
  kRemoteReads,
  kRemoteWrites,
  kCount,
};

inline constexpr size_t kCounterCount = static_cast<size_t>(CounterId::kCount);

// Reporting name of a counter (stable across versions; the evaluation
// scripts and EXPERIMENTS.md key off these strings).
constexpr const char* CounterName(CounterId id) {
  switch (id) {
    case CounterId::kPageFaults: return "page_faults";
    case CounterId::kCacheHits: return "cache_hits";
    case CounterId::kCacheMisses: return "cache_misses";
    case CounterId::kPrefetchHits: return "prefetch_hits";
    case CounterId::kPrefetchWaitHits: return "prefetch_wait_hits";
    case CounterId::kCacheAdds: return "cache_adds";
    case CounterId::kPrefetchIssued: return "prefetch_issued";
    case CounterId::kPrefetchUnused: return "prefetch_unused_evicted";
    case CounterId::kDemandReads: return "demand_reads";
    case CounterId::kWritebacks: return "writebacks";
    case CounterId::kEvictions: return "evictions";
    case CounterId::kEagerFrees: return "eager_frees";
    case CounterId::kLruScans: return "lru_pages_scanned";
    case CounterId::kRemoteReads: return "remote_reads";
    case CounterId::kRemoteWrites: return "remote_writes";
    case CounterId::kCount: break;
  }
  return "unknown";
}

class Counters {
 public:
  void Add(CounterId id, uint64_t delta = 1) {
    values_[static_cast<size_t>(id)] += delta;
  }

  uint64_t Get(CounterId id) const {
    return values_[static_cast<size_t>(id)];
  }

  // Ratio helper; returns 0 when the denominator counter is 0.
  double Ratio(CounterId num, CounterId den) const {
    const uint64_t d = Get(den);
    return d == 0 ? 0.0
                  : static_cast<double>(Get(num)) / static_cast<double>(d);
  }

  // Cold reporting view: name -> value for every counter that has fired.
  std::map<std::string, uint64_t> values() const {
    std::map<std::string, uint64_t> out;
    for (size_t i = 0; i < kCounterCount; ++i) {
      if (values_[i] != 0) {
        out.emplace(CounterName(static_cast<CounterId>(i)), values_[i]);
      }
    }
    return out;
  }

  void Reset() { values_.fill(0); }

 private:
  std::array<uint64_t, kCounterCount> values_{};
};

// Canonical counter ids used across the paging pipeline (kept as the
// historical `counter::kFoo` spellings used throughout the codebase).
namespace counter {
inline constexpr CounterId kPageFaults = CounterId::kPageFaults;
inline constexpr CounterId kCacheHits = CounterId::kCacheHits;
inline constexpr CounterId kCacheMisses = CounterId::kCacheMisses;
inline constexpr CounterId kPrefetchHits = CounterId::kPrefetchHits;
inline constexpr CounterId kPrefetchWaitHits = CounterId::kPrefetchWaitHits;
inline constexpr CounterId kCacheAdds = CounterId::kCacheAdds;
inline constexpr CounterId kPrefetchIssued = CounterId::kPrefetchIssued;
inline constexpr CounterId kPrefetchUnused = CounterId::kPrefetchUnused;
inline constexpr CounterId kDemandReads = CounterId::kDemandReads;
inline constexpr CounterId kWritebacks = CounterId::kWritebacks;
inline constexpr CounterId kEvictions = CounterId::kEvictions;
inline constexpr CounterId kEagerFrees = CounterId::kEagerFrees;
inline constexpr CounterId kLruScans = CounterId::kLruScans;
inline constexpr CounterId kRemoteReads = CounterId::kRemoteReads;
inline constexpr CounterId kRemoteWrites = CounterId::kRemoteWrites;
}  // namespace counter

}  // namespace leap

#endif  // LEAP_SRC_STATS_COUNTERS_H_
