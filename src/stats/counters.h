// Named monotonic counters for data-path and prefetcher accounting.
//
// The counter names mirror the quantities the paper's evaluation reports:
// cache adds, cache hits/misses, prefetched-page hits (coverage), etc.
#ifndef LEAP_SRC_STATS_COUNTERS_H_
#define LEAP_SRC_STATS_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

namespace leap {

class Counters {
 public:
  void Add(const std::string& name, uint64_t delta = 1) {
    values_[name] += delta;
  }

  uint64_t Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  // Ratio helper; returns 0 when the denominator counter is 0.
  double Ratio(const std::string& num, const std::string& den) const {
    const uint64_t d = Get(den);
    return d == 0 ? 0.0 : static_cast<double>(Get(num)) / static_cast<double>(d);
  }

  const std::map<std::string, uint64_t>& values() const { return values_; }

  void Reset() { values_.clear(); }

 private:
  std::map<std::string, uint64_t> values_;
};

// Canonical counter names used across the paging pipeline.
namespace counter {
inline constexpr char kPageFaults[] = "page_faults";
inline constexpr char kCacheHits[] = "cache_hits";
inline constexpr char kCacheMisses[] = "cache_misses";
inline constexpr char kPrefetchHits[] = "prefetch_hits";
inline constexpr char kPrefetchWaitHits[] = "prefetch_wait_hits";
inline constexpr char kCacheAdds[] = "cache_adds";
inline constexpr char kPrefetchIssued[] = "prefetch_issued";
inline constexpr char kPrefetchUnused[] = "prefetch_unused_evicted";
inline constexpr char kDemandReads[] = "demand_reads";
inline constexpr char kWritebacks[] = "writebacks";
inline constexpr char kEvictions[] = "evictions";
inline constexpr char kEagerFrees[] = "eager_frees";
inline constexpr char kLruScans[] = "lru_pages_scanned";
inline constexpr char kRemoteReads[] = "remote_reads";
inline constexpr char kRemoteWrites[] = "remote_writes";
}  // namespace counter

}  // namespace leap

#endif  // LEAP_SRC_STATS_COUNTERS_H_
