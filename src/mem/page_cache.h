// Swap cache analog: backing-store offset -> cached frame.
//
// Pages land here on swap-in (demand or prefetch); a fault that finds its
// slot here is a cache hit. Entries carry the I/O completion time so an
// access racing an in-flight prefetch blocks for the residual latency
// instead of re-issuing the read - the kernel's "page locked until read
// completes" behavior.
#ifndef LEAP_SRC_MEM_PAGE_CACHE_H_
#define LEAP_SRC_MEM_PAGE_CACHE_H_

#include <cstddef>
#include <optional>

#include "src/container/flat_map.h"
#include "src/mem/lru_list.h"
#include "src/sim/types.h"

namespace leap {

struct CacheEntry {
  Pfn pfn = kInvalidPfn;
  Pid pid = 0;
  bool prefetched = false;
  // When the backing read finishes; accesses before this wait the residue.
  SimTimeNs ready_at = 0;
  // When the entry was inserted (for eviction-wait accounting, Figure 4).
  SimTimeNs added_at = 0;
  // First-hit time; 0 while unreferenced. Drives timeliness (Figure 10b)
  // and the lazy-eviction waste measurement.
  SimTimeNs first_hit_at = 0;
  // Dirty file page awaiting writeback (VFS mode only).
  bool dirty = false;
};

class PageCache {
 public:
  // Inserts an entry; returns false if the slot is already cached.
  bool Insert(SwapSlot slot, const CacheEntry& entry);

  CacheEntry* Lookup(SwapSlot slot);
  const CacheEntry* Lookup(SwapSlot slot) const;

  // Removes the entry; returns it if present.
  std::optional<CacheEntry> Remove(SwapSlot slot);

  // Marks recency for cache-internal LRU eviction (used when the prefetch
  // cache itself is size-limited, Figure 12).
  void TouchLru(SwapSlot slot) { lru_.Touch(slot); }
  std::optional<SwapSlot> ColdestSlot() const { return lru_.Coldest(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Walks all entries (order unspecified); used by reclaim scans and stats.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [slot, entry] : entries_) {
      fn(slot, entry);
    }
  }

 private:
  FlatMap<SwapSlot, CacheEntry> entries_;
  LruList<SwapSlot> lru_;
};

}  // namespace leap

#endif  // LEAP_SRC_MEM_PAGE_CACHE_H_
