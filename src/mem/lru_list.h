// O(1) LRU list keyed by (pid, vpn), the reclaim order for resident pages.
//
// kswapd (src/paging/kswapd) scans from the cold end, exactly like the
// kernel walking the inactive list. Kept header-only: it is a small
// template used with two key types.
#ifndef LEAP_SRC_MEM_LRU_LIST_H_
#define LEAP_SRC_MEM_LRU_LIST_H_

#include <cstddef>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/sim/types.h"

namespace leap {

template <typename Key, typename Hash = std::hash<Key>>
class LruList {
 public:
  // Inserts or refreshes `key` as most-recently-used.
  void Touch(const Key& key) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      order_.erase(it->second);
    }
    order_.push_front(key);
    index_[key] = order_.begin();
  }

  // Removes `key`; returns true if it was present.
  bool Remove(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  // Least-recently-used key, without removing it.
  std::optional<Key> Coldest() const {
    if (order_.empty()) {
      return std::nullopt;
    }
    return order_.back();
  }

  // Removes and returns the LRU key.
  std::optional<Key> PopColdest() {
    if (order_.empty()) {
      return std::nullopt;
    }
    Key key = order_.back();
    order_.pop_back();
    index_.erase(key);
    return key;
  }

  // The n coldest keys, coldest first (for batch reclaim scans).
  std::vector<Key> ColdestN(size_t n) const {
    std::vector<Key> out;
    out.reserve(std::min(n, order_.size()));
    for (auto it = order_.rbegin(); it != order_.rend() && out.size() < n;
         ++it) {
      out.push_back(*it);
    }
    return out;
  }

  bool Contains(const Key& key) const { return index_.count(key) != 0; }
  size_t size() const { return order_.size(); }
  bool empty() const { return order_.empty(); }

  void Clear() {
    order_.clear();
    index_.clear();
  }

 private:
  std::list<Key> order_;  // front = hottest
  std::unordered_map<Key, typename std::list<Key>::iterator, Hash> index_;
};

// Key for process-owned resident pages.
struct PidVpn {
  Pid pid;
  Vpn vpn;
  bool operator==(const PidVpn&) const = default;
};

struct PidVpnHash {
  size_t operator()(const PidVpn& k) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(k.pid) << 48) ^ k.vpn);
  }
};

}  // namespace leap

#endif  // LEAP_SRC_MEM_LRU_LIST_H_
