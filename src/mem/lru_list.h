// O(1) LRU list keyed by (pid, vpn), the reclaim order for resident pages.
//
// kswapd (src/paging/kswapd) scans from the cold end, exactly like the
// kernel walking the inactive list. Implemented as an intrusive doubly-
// linked list threaded through a slab of pooled nodes (indices, not
// pointers) with a FlatMap key index: a Touch in steady state is two map
// probes and a few slab stores - no per-operation allocation, no pointer-
// chased std::list nodes. Kept header-only: it is a small template used
// with a handful of key types.
#ifndef LEAP_SRC_MEM_LRU_LIST_H_
#define LEAP_SRC_MEM_LRU_LIST_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/container/flat_map.h"
#include "src/sim/types.h"

namespace leap {

template <typename Key, typename Hash = std::hash<Key>>
class LruList {
 public:
  // Inserts or refreshes `key` as most-recently-used. Each Touch bumps the
  // entry's access count (saturating), the hotness signal the tier
  // migrator's promotion scan reads via AccessCount/DecayCounts.
  void Touch(const Key& key) {
    auto [slot, inserted] = index_.Emplace(key);
    if (!inserted) {
      const uint32_t node = *slot;
      if (nodes_[node].count < kCountMax) {
        ++nodes_[node].count;
      }
      Unlink(node);
      LinkFront(node);
      return;
    }
    *slot = NewNode(key);
    LinkFront(*slot);
  }

  // Inserts `key` as most-recently-used only if absent (FIFO position is
  // set once); returns true when inserted.
  bool Insert(const Key& key) {
    auto [slot, inserted] = index_.Emplace(key);
    if (!inserted) {
      return false;
    }
    *slot = NewNode(key);
    LinkFront(*slot);
    return true;
  }

  // Removes `key`; returns true if it was present.
  bool Remove(const Key& key) {
    const uint32_t* node = index_.Find(key);
    if (node == nullptr) {
      return false;
    }
    const uint32_t idx = *node;
    index_.Erase(key);
    Unlink(idx);
    FreeNode(idx);
    return true;
  }

  // Least-recently-used key, without removing it.
  std::optional<Key> Coldest() const {
    if (tail_ == kNil) {
      return std::nullopt;
    }
    return nodes_[tail_].key;
  }

  // Removes and returns the LRU key.
  std::optional<Key> PopColdest() {
    if (tail_ == kNil) {
      return std::nullopt;
    }
    const uint32_t idx = tail_;
    Key key = nodes_[idx].key;
    index_.Erase(key);
    Unlink(idx);
    FreeNode(idx);
    return key;
  }

  // The n hottest keys, hottest first (the tier migrator's promotion
  // scan walks the recency end and filters by AccessCount).
  std::vector<Key> HottestN(size_t n) const {
    std::vector<Key> out;
    out.reserve(n < size_ ? n : size_);
    for (uint32_t idx = head_; idx != kNil && out.size() < n;
         idx = nodes_[idx].next) {
      out.push_back(nodes_[idx].key);
    }
    return out;
  }

  // The n coldest keys, coldest first (for batch reclaim scans).
  std::vector<Key> ColdestN(size_t n) const {
    std::vector<Key> out;
    out.reserve(n < size_ ? n : size_);
    for (uint32_t idx = tail_; idx != kNil && out.size() < n;
         idx = nodes_[idx].prev) {
      out.push_back(nodes_[idx].key);
    }
    return out;
  }

  bool Contains(const Key& key) const { return index_.Contains(key); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Accesses recorded for `key` since insertion (Insert/first Touch = 1;
  // each later Touch adds 1, saturating at kCountMax). 0 when absent.
  uint32_t AccessCount(const Key& key) const {
    const uint32_t* node = index_.Find(key);
    return node == nullptr ? 0 : nodes_[*node].count;
  }

  // Halves every entry's access count (floor division) - the migrator's
  // periodic aging step, the same exponential decay HeMem-style kswapd
  // loops apply so stale heat drains instead of accumulating forever.
  // List order is untouched.
  void DecayCounts() {
    for (uint32_t idx = head_; idx != kNil; idx = nodes_[idx].next) {
      nodes_[idx].count >>= 1;
    }
  }

  // Drops all entries; the node slab is recycled, not deallocated.
  void Clear() {
    for (uint32_t idx = head_; idx != kNil;) {
      const uint32_t next = nodes_[idx].next;
      FreeNode(idx);
      idx = next;
    }
    head_ = kNil;
    tail_ = kNil;
    size_ = 0;
    index_.Clear();
  }

 private:
  static constexpr uint32_t kNil = static_cast<uint32_t>(-1);
  static constexpr uint32_t kCountMax = 0xFFFF;

  struct Node {
    Key key{};
    uint32_t prev = kNil;
    uint32_t next = kNil;
    uint32_t count = 0;  // saturating access count (hot/cold signal)
  };

  uint32_t NewNode(const Key& key) {
    uint32_t idx;
    if (free_.empty()) {
      idx = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(Node{});
    } else {
      idx = free_.back();
      free_.pop_back();
    }
    nodes_[idx].key = key;
    nodes_[idx].count = 1;  // recycled slots must not inherit stale heat
    return idx;
  }

  // Returns a node slot to the free pool; list membership (and size_) is
  // Unlink's business.
  void FreeNode(uint32_t idx) {
    nodes_[idx].key = Key{};
    nodes_[idx].count = 0;
    free_.push_back(idx);
  }

  void LinkFront(uint32_t idx) {
    nodes_[idx].prev = kNil;
    nodes_[idx].next = head_;
    if (head_ != kNil) {
      nodes_[head_].prev = idx;
    }
    head_ = idx;
    if (tail_ == kNil) {
      tail_ = idx;
    }
    ++size_;
  }

  void Unlink(uint32_t idx) {
    const uint32_t prev = nodes_[idx].prev;
    const uint32_t next = nodes_[idx].next;
    if (prev != kNil) {
      nodes_[prev].next = next;
    } else {
      head_ = next;
    }
    if (next != kNil) {
      nodes_[next].prev = prev;
    } else {
      tail_ = prev;
    }
    --size_;
  }

  std::vector<Node> nodes_;      // slab; front of list = hottest
  std::vector<uint32_t> free_;   // recycled node indices
  FlatMap<Key, uint32_t, Hash> index_;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  size_t size_ = 0;
};

// Key for process-owned resident pages.
struct PidVpn {
  Pid pid;
  Vpn vpn;
  bool operator==(const PidVpn&) const = default;
};

struct PidVpnHash {
  size_t operator()(const PidVpn& k) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(k.pid) << 48) ^ k.vpn);
  }
};

}  // namespace leap

#endif  // LEAP_SRC_MEM_LRU_LIST_H_
