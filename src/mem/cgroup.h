// cgroup-style per-process resident-memory limit.
//
// The paper constrains each application to {100, 50, 25}% of its peak
// memory with cgroups; exceeding the limit forces pages out through the
// swap path. This mirrors that: charging above the limit signals the fault
// handler to reclaim from this process before mapping new pages.
#ifndef LEAP_SRC_MEM_CGROUP_H_
#define LEAP_SRC_MEM_CGROUP_H_

#include <cstddef>

namespace leap {

class Cgroup {
 public:
  // `limit_pages` == 0 means unlimited.
  explicit Cgroup(size_t limit_pages = 0) : limit_pages_(limit_pages) {}

  void Charge(size_t pages = 1) { resident_pages_ += pages; }
  void Uncharge(size_t pages = 1) {
    resident_pages_ -= pages > resident_pages_ ? resident_pages_ : pages;
  }

  bool OverLimit() const {
    return limit_pages_ != 0 && resident_pages_ > limit_pages_;
  }
  // Pages that must be reclaimed to get back under the limit.
  size_t ExcessPages() const {
    return OverLimit() ? resident_pages_ - limit_pages_ : 0;
  }

  size_t resident_pages() const { return resident_pages_; }
  size_t limit_pages() const { return limit_pages_; }
  void set_limit_pages(size_t limit) { limit_pages_ = limit; }

 private:
  size_t limit_pages_;
  size_t resident_pages_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_MEM_CGROUP_H_
