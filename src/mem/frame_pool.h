// Fixed-capacity physical frame allocator standing in for local DRAM.
//
// Frames are opaque handles; the simulator tracks only occupancy, not data.
// Capacity bounds the machine's resident set the same way a host's DRAM
// (or a cgroup limit on it) bounds the real system's.
#ifndef LEAP_SRC_MEM_FRAME_POOL_H_
#define LEAP_SRC_MEM_FRAME_POOL_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "src/sim/types.h"

namespace leap {

class FramePool {
 public:
  explicit FramePool(size_t capacity);

  // Allocates a free frame; nullopt when the pool is exhausted (caller must
  // reclaim first).
  std::optional<Pfn> Allocate();

  // Returns a frame to the pool. Double-free is a programming error and is
  // ignored defensively.
  void Free(Pfn pfn);

  size_t capacity() const { return capacity_; }
  size_t free_count() const { return free_list_.size(); }
  size_t used_count() const { return capacity_ - free_list_.size(); }
  bool IsAllocated(Pfn pfn) const;

 private:
  size_t capacity_;
  std::vector<Pfn> free_list_;
  std::vector<bool> allocated_;
};

}  // namespace leap

#endif  // LEAP_SRC_MEM_FRAME_POOL_H_
