#include "src/mem/page_table.h"

namespace leap {

void PageTable::Map(Vpn vpn, Pfn pfn) {
  entries_[vpn] = PageTableEntry{pfn, false};
}

std::optional<PageTableEntry> PageTable::Unmap(Vpn vpn) {
  auto it = entries_.find(vpn);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  PageTableEntry entry = it->second;
  entries_.erase(it);
  return entry;
}

PageTableEntry* PageTable::Find(Vpn vpn) {
  auto it = entries_.find(vpn);
  return it == entries_.end() ? nullptr : &it->second;
}

const PageTableEntry* PageTable::Find(Vpn vpn) const {
  auto it = entries_.find(vpn);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace leap
