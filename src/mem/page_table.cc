#include "src/mem/page_table.h"

namespace leap {

void PageTable::Map(Vpn vpn, Pfn pfn) {
  entries_[vpn] = PageTableEntry{pfn, false};
}

std::optional<PageTableEntry> PageTable::Unmap(Vpn vpn) {
  PageTableEntry* entry = entries_.Find(vpn);
  if (entry == nullptr) {
    return std::nullopt;
  }
  PageTableEntry removed = *entry;
  entries_.Erase(vpn);
  return removed;
}

PageTableEntry* PageTable::Find(Vpn vpn) { return entries_.Find(vpn); }

const PageTableEntry* PageTable::Find(Vpn vpn) const {
  return entries_.Find(vpn);
}

}  // namespace leap
