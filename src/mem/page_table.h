// Per-process virtual page table: vpn -> frame, plus dirty/accessed state.
#ifndef LEAP_SRC_MEM_PAGE_TABLE_H_
#define LEAP_SRC_MEM_PAGE_TABLE_H_

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "src/sim/types.h"

namespace leap {

struct PageTableEntry {
  Pfn pfn = kInvalidPfn;
  bool dirty = false;
};

class PageTable {
 public:
  // Maps vpn to pfn; remapping an already-present vpn overwrites.
  void Map(Vpn vpn, Pfn pfn);

  // Removes the mapping; returns the entry that was present, if any.
  std::optional<PageTableEntry> Unmap(Vpn vpn);

  // Mutable lookup; nullptr when not present.
  PageTableEntry* Find(Vpn vpn);
  const PageTableEntry* Find(Vpn vpn) const;

  bool IsPresent(Vpn vpn) const { return entries_.count(vpn) != 0; }
  size_t resident_pages() const { return entries_.size(); }

 private:
  std::unordered_map<Vpn, PageTableEntry> entries_;
};

}  // namespace leap

#endif  // LEAP_SRC_MEM_PAGE_TABLE_H_
