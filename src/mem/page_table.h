// Per-process virtual page table: vpn -> frame, plus dirty/accessed state.
//
// Backed by a flat robin-hood map: the page-table walk on every simulated
// access is a couple of cache lines, not an unordered_map node chase, and
// steady-state map/unmap cycles never allocate (the table's capacity is
// bounded by the process's peak resident set).
#ifndef LEAP_SRC_MEM_PAGE_TABLE_H_
#define LEAP_SRC_MEM_PAGE_TABLE_H_

#include <cstddef>
#include <optional>

#include "src/container/flat_map.h"
#include "src/sim/types.h"

namespace leap {

struct PageTableEntry {
  Pfn pfn = kInvalidPfn;
  bool dirty = false;
};

class PageTable {
 public:
  // Maps vpn to pfn; remapping an already-present vpn overwrites.
  void Map(Vpn vpn, Pfn pfn);

  // Removes the mapping; returns the entry that was present, if any.
  std::optional<PageTableEntry> Unmap(Vpn vpn);

  // Mutable lookup; nullptr when not present. The pointer is valid only
  // until the next Map/Unmap (flat-map entries move on mutation).
  PageTableEntry* Find(Vpn vpn);
  const PageTableEntry* Find(Vpn vpn) const;

  bool IsPresent(Vpn vpn) const { return entries_.Contains(vpn); }
  size_t resident_pages() const { return entries_.size(); }

 private:
  FlatMap<Vpn, PageTableEntry> entries_;
};

}  // namespace leap

#endif  // LEAP_SRC_MEM_PAGE_TABLE_H_
