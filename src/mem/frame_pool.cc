#include "src/mem/frame_pool.h"

namespace leap {

FramePool::FramePool(size_t capacity)
    : capacity_(capacity), allocated_(capacity, false) {
  free_list_.reserve(capacity);
  // Push in reverse so low PFNs come out first; keeps traces readable.
  for (size_t i = capacity; i > 0; --i) {
    free_list_.push_back(static_cast<Pfn>(i - 1));
  }
}

std::optional<Pfn> FramePool::Allocate() {
  if (free_list_.empty()) {
    return std::nullopt;
  }
  const Pfn pfn = free_list_.back();
  free_list_.pop_back();
  allocated_[pfn] = true;
  return pfn;
}

void FramePool::Free(Pfn pfn) {
  if (pfn >= capacity_ || !allocated_[pfn]) {
    return;
  }
  allocated_[pfn] = false;
  free_list_.push_back(pfn);
}

bool FramePool::IsAllocated(Pfn pfn) const {
  return pfn < capacity_ && allocated_[pfn];
}

}  // namespace leap
