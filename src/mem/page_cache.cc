#include "src/mem/page_cache.h"

namespace leap {

bool PageCache::Insert(SwapSlot slot, const CacheEntry& entry) {
  const auto [it, inserted] = entries_.emplace(slot, entry);
  if (inserted) {
    lru_.Touch(slot);
  }
  return inserted;
}

CacheEntry* PageCache::Lookup(SwapSlot slot) {
  auto it = entries_.find(slot);
  return it == entries_.end() ? nullptr : &it->second;
}

const CacheEntry* PageCache::Lookup(SwapSlot slot) const {
  auto it = entries_.find(slot);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<CacheEntry> PageCache::Remove(SwapSlot slot) {
  auto it = entries_.find(slot);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  CacheEntry entry = it->second;
  entries_.erase(it);
  lru_.Remove(slot);
  return entry;
}

}  // namespace leap
