#include "src/mem/page_cache.h"

namespace leap {

bool PageCache::Insert(SwapSlot slot, const CacheEntry& entry) {
  const auto [value, inserted] = entries_.Emplace(slot, entry);
  if (inserted) {
    lru_.Touch(slot);
  }
  return inserted;
}

CacheEntry* PageCache::Lookup(SwapSlot slot) { return entries_.Find(slot); }

const CacheEntry* PageCache::Lookup(SwapSlot slot) const {
  return entries_.Find(slot);
}

std::optional<CacheEntry> PageCache::Remove(SwapSlot slot) {
  CacheEntry* entry = entries_.Find(slot);
  if (entry == nullptr) {
    return std::nullopt;
  }
  CacheEntry removed = *entry;
  entries_.Erase(slot);
  lru_.Remove(slot);
  return removed;
}

}  // namespace leap
