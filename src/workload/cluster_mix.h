// Canonical mixed workload for cluster runs: hosts cycle through
// zipf-0.99 (skewed key-value traffic), sequential (streaming scan), and
// a trace replay of stride-8 (captured once, replayed bit-identically) -
// so the shared donor pool sees skewed, streaming, and replayed traffic
// at the same time. Tests and the fig13_cluster bench share this single
// definition so the bench's claims stay validated by the tests.
#ifndef LEAP_SRC_WORKLOAD_CLUSTER_MIX_H_
#define LEAP_SRC_WORKLOAD_CLUSTER_MIX_H_

#include <memory>

#include "src/workload/patterns.h"
#include "src/workload/trace.h"

namespace leap {

inline std::unique_ptr<AccessStream> MakeClusterMixStream(
    size_t host, size_t footprint_pages, SimTimeNs think_ns = 300) {
  switch (host % 3) {
    case 0:
      return std::make_unique<ZipfStream>(footprint_pages, 0.99, think_ns);
    case 1:
      return std::make_unique<SequentialStream>(footprint_pages, think_ns);
    default: {
      StrideStream stride(footprint_pages, 8, think_ns);
      Rng rng(5);
      return std::make_unique<TraceReplayStream>(
          Trace::Capture(stride, 4000, rng));
    }
  }
}

}  // namespace leap

#endif  // LEAP_SRC_WORKLOAD_CLUSTER_MIX_H_
