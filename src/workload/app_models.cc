#include "src/workload/app_models.h"

namespace leap {

std::unique_ptr<PhaseMixStream> MakePowerGraph(size_t footprint_pages,
                                               uint64_t seed) {
  PhaseMixConfig config;
  config.name = "PowerGraph";
  config.footprint_pages = footprint_pages;
  config.think_min_ns = 250;
  config.think_max_ns = 700;
  config.accesses_per_op = 0;
  config.zipf_theta = 0.85;  // natural-graph degree skew
  // CSR edge scans: long sequential runs, interrupted by gathers.
  config.phases.push_back(PhaseSpec{PhaseSpec::Kind::kSequential, 0.52, 24,
                                    120, 0, 0, /*irregularity=*/0.08,
                                    /*write_fraction=*/0.10});
  // Vertex-property walks: strides span several pages (CSR offset/property
  // arrays with multi-hundred-byte records), well past a readahead block.
  config.phases.push_back(PhaseSpec{PhaseSpec::Kind::kStride, 0.18, 12, 48,
                                    6, 24, 0.06, 0.05});
  // Scatter/gather over neighbors: irregular.
  config.phases.push_back(
      PhaseSpec{PhaseSpec::Kind::kRandom, 0.30, 6, 28, 0, 0, 0.0, 0.15});
  return std::make_unique<PhaseMixStream>(config, seed);
}

std::unique_ptr<PhaseMixStream> MakeNumPy(size_t footprint_pages,
                                          uint64_t seed) {
  PhaseMixConfig config;
  config.name = "NumPy";
  config.footprint_pages = footprint_pages;
  config.think_min_ns = 120;
  config.think_max_ns = 350;
  config.accesses_per_op = 0;
  // Streaming rows of the left operand: very long sequential runs.
  config.phases.push_back(PhaseSpec{PhaseSpec::Kind::kSequential, 0.68, 64,
                                    320, 0, 0, 0.02, 0.20});
  // Column walks of the right operand: long constant-stride runs, one
  // stride per matrix row (rows span many pages).
  config.phases.push_back(PhaseSpec{PhaseSpec::Kind::kStride, 0.24, 32, 128,
                                    9, 25, 0.02, 0.05});
  // BLAS bookkeeping / result spills.
  config.phases.push_back(
      PhaseSpec{PhaseSpec::Kind::kRandom, 0.08, 4, 12, 0, 0, 0.0, 0.30});
  return std::make_unique<PhaseMixStream>(config, seed);
}

std::unique_ptr<PhaseMixStream> MakeVoltDb(size_t footprint_pages,
                                           uint64_t seed) {
  PhaseMixConfig config;
  config.name = "VoltDB";
  config.footprint_pages = footprint_pages;
  config.think_min_ns = 400;
  config.think_max_ns = 1100;
  // A TPC-C-like transaction touches a handful of index/tuple pages.
  config.accesses_per_op = 12;
  config.zipf_theta = 0.7;  // warehouse/district skew
  // Short random transactions dominate (~69% irregular, section 5.3.3).
  config.phases.push_back(
      PhaseSpec{PhaseSpec::Kind::kRandom, 0.66, 6, 18, 0, 0, 0.0, 0.35});
  // Index-range scans and table scans: short sequential runs.
  config.phases.push_back(PhaseSpec{PhaseSpec::Kind::kSequential, 0.24, 6, 24,
                                    0, 0, 0.10, 0.20});
  // B-tree level walks: small strides.
  config.phases.push_back(
      PhaseSpec{PhaseSpec::Kind::kStride, 0.10, 4, 16, 2, 6, 0.10, 0.10});
  return std::make_unique<PhaseMixStream>(config, seed);
}

std::unique_ptr<PhaseMixStream> MakeMemcached(size_t footprint_pages,
                                              uint64_t seed) {
  PhaseMixConfig config;
  config.name = "Memcached";
  config.footprint_pages = footprint_pages;
  config.think_min_ns = 250;
  config.think_max_ns = 600;
  config.accesses_per_op = 2;  // hash bucket + item page
  config.zipf_theta = 0.99;    // ETC-like key skew
  // Overwhelmingly random (paper: ~96.4% irregular).
  config.phases.push_back(
      PhaseSpec{PhaseSpec::Kind::kRandom, 0.95, 8, 40, 0, 0, 0.0, 0.30});
  // Slab-neighbor touches: rare, short sequential runs.
  config.phases.push_back(PhaseSpec{PhaseSpec::Kind::kSequential, 0.05, 3, 8,
                                    0, 0, 0.15, 0.20});
  return std::make_unique<PhaseMixStream>(config, seed);
}

}  // namespace leap
