// Interleaving of several child access streams - a multi-threaded process.
//
// Section 3.2.2 of the paper analyzes exactly this: perfectly interleaved
// threads with different strides give the majority vote nothing to latch
// onto (no delta reaches floor(w/2)+1), so Leap throttles instead of
// guessing; bursty interleaving (each thread runs a while) leaves
// majorities intact within a window. Both modes are provided.
#ifndef LEAP_SRC_WORKLOAD_INTERLEAVED_H_
#define LEAP_SRC_WORKLOAD_INTERLEAVED_H_

#include <memory>
#include <string>
#include <vector>

#include "src/workload/access_stream.h"

namespace leap {

class InterleavedStream : public AccessStream {
 public:
  enum class Mode {
    kRoundRobin,  // perfectly interleaved: 1 access per thread per turn
    kBursty,      // each thread runs `burst_len` accesses before switching
  };

  InterleavedStream(std::vector<std::unique_ptr<AccessStream>> threads,
                    Mode mode, size_t burst_len = 16);

  MemOp Next(Rng& rng) override;
  size_t footprint_pages() const override { return footprint_; }
  std::string name() const override;

  size_t thread_count() const { return threads_.size(); }

 private:
  std::vector<std::unique_ptr<AccessStream>> threads_;
  Mode mode_;
  size_t burst_len_;
  size_t current_ = 0;
  size_t in_burst_ = 0;
  size_t footprint_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_WORKLOAD_INTERLEAVED_H_
