#include "src/workload/interleaved.h"

#include <algorithm>

namespace leap {

InterleavedStream::InterleavedStream(
    std::vector<std::unique_ptr<AccessStream>> threads, Mode mode,
    size_t burst_len)
    : threads_(std::move(threads)),
      mode_(mode),
      burst_len_(std::max<size_t>(1, burst_len)) {
  for (const auto& thread : threads_) {
    footprint_ = std::max(footprint_, thread->footprint_pages());
  }
}

MemOp InterleavedStream::Next(Rng& rng) {
  if (threads_.empty()) {
    return MemOp{};
  }
  const MemOp op = threads_[current_]->Next(rng);
  switch (mode_) {
    case Mode::kRoundRobin:
      current_ = (current_ + 1) % threads_.size();
      break;
    case Mode::kBursty:
      if (++in_burst_ >= burst_len_) {
        in_burst_ = 0;
        current_ = (current_ + 1) % threads_.size();
      }
      break;
  }
  return op;
}

std::string InterleavedStream::name() const {
  std::string name = mode_ == Mode::kRoundRobin ? "interleaved-rr"
                                                : "interleaved-bursty";
  name += "-";
  name += std::to_string(threads_.size());
  name += "t";
  return name;
}

}  // namespace leap
