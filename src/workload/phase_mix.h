// Phase-based synthetic workload generator.
//
// Applications in the paper exhibit a mixture of sequential runs, strided
// runs, and irregular bursts at page-fault granularity (Figure 3). This
// generator walks between such phases with configurable weights, lengths,
// strides, and per-access irregularity injection, and is the backbone of
// the four application models (src/workload/app_models.h), each calibrated
// against Figure 3's measured pattern fractions.
#ifndef LEAP_SRC_WORKLOAD_PHASE_MIX_H_
#define LEAP_SRC_WORKLOAD_PHASE_MIX_H_

#include <string>
#include <vector>

#include "src/sim/zipf.h"
#include "src/workload/access_stream.h"

namespace leap {

struct PhaseSpec {
  enum class Kind { kSequential, kStride, kRandom };
  Kind kind = Kind::kSequential;
  double weight = 1.0;       // relative probability of entering this phase
  size_t min_len = 8;        // accesses per phase occurrence
  size_t max_len = 64;
  PageDelta min_stride = 2;  // stride range (kStride only)
  PageDelta max_stride = 8;
  // Per-access probability of an out-of-pattern (random) touch inside the
  // phase - the "short-term irregularity" majority voting must tolerate.
  double irregularity = 0.0;
  double write_fraction = 0.0;
};

struct PhaseMixConfig {
  std::string name = "phase-mix";
  size_t footprint_pages = 1 << 16;
  std::vector<PhaseSpec> phases;
  SimTimeNs think_min_ns = 150;
  SimTimeNs think_max_ns = 500;
  // Accesses per application-level operation (op_end cadence); 0 = every
  // access is an op.
  size_t accesses_per_op = 0;
  // Zipf skew for random touches (0 = uniform).
  double zipf_theta = 0.0;
};

class PhaseMixStream : public AccessStream {
 public:
  explicit PhaseMixStream(const PhaseMixConfig& config, uint64_t seed);

  MemOp Next(Rng& rng) override;
  size_t footprint_pages() const override { return config_.footprint_pages; }
  std::string name() const override { return config_.name; }

 private:
  void StartPhase(Rng& rng);
  Vpn RandomPage(Rng& rng);

  PhaseMixConfig config_;
  ZipfSampler zipf_;
  double total_weight_ = 0.0;

  size_t phase_index_ = 0;
  size_t remaining_in_phase_ = 0;
  Vpn cursor_ = 0;
  PageDelta stride_ = 1;
  size_t since_op_end_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_WORKLOAD_PHASE_MIX_H_
