#include "src/workload/phase_mix.h"

#include <algorithm>

namespace leap {

PhaseMixStream::PhaseMixStream(const PhaseMixConfig& config, uint64_t seed)
    : config_(config),
      zipf_(std::max<size_t>(1, config.footprint_pages), config.zipf_theta) {
  if (config_.phases.empty()) {
    config_.phases.push_back(PhaseSpec{});
  }
  for (const PhaseSpec& phase : config_.phases) {
    total_weight_ += phase.weight;
  }
  Rng boot(seed);
  StartPhase(boot);
}

Vpn PhaseMixStream::RandomPage(Rng& rng) {
  if (config_.zipf_theta > 0.0) {
    // Scramble the rank so hot pages spread over the address space instead
    // of clustering at low vpns (which would look sequential).
    const uint64_t rank = zipf_.Sample(rng);
    const uint64_t scrambled =
        rank * 0x9E3779B97F4A7C15ULL % config_.footprint_pages;
    return scrambled;
  }
  return rng.NextU64(config_.footprint_pages);
}

void PhaseMixStream::StartPhase(Rng& rng) {
  double pick = rng.NextDouble() * total_weight_;
  phase_index_ = 0;
  for (size_t i = 0; i < config_.phases.size(); ++i) {
    pick -= config_.phases[i].weight;
    if (pick <= 0.0) {
      phase_index_ = i;
      break;
    }
  }
  const PhaseSpec& phase = config_.phases[phase_index_];
  remaining_in_phase_ = phase.min_len + rng.NextU64(phase.max_len -
                                                    phase.min_len + 1);
  switch (phase.kind) {
    case PhaseSpec::Kind::kSequential:
      stride_ = 1;
      cursor_ = RandomPage(rng);
      break;
    case PhaseSpec::Kind::kStride:
      stride_ = phase.min_stride +
                static_cast<PageDelta>(rng.NextU64(
                    static_cast<uint64_t>(phase.max_stride - phase.min_stride) +
                    1));
      if (rng.NextBool(0.3)) {
        stride_ = -stride_;  // descending walks exist too
      }
      cursor_ = RandomPage(rng);
      break;
    case PhaseSpec::Kind::kRandom:
      stride_ = 0;
      break;
  }
}

MemOp PhaseMixStream::Next(Rng& rng) {
  const PhaseSpec& phase = config_.phases[phase_index_];
  MemOp op;
  op.think_ns = config_.think_min_ns +
                rng.NextU64(config_.think_max_ns - config_.think_min_ns + 1);
  op.write = rng.NextBool(phase.write_fraction);

  const bool irregular =
      phase.kind == PhaseSpec::Kind::kRandom || rng.NextBool(phase.irregularity);
  if (irregular) {
    op.vpn = RandomPage(rng);
  } else {
    const int64_t next = static_cast<int64_t>(cursor_) + stride_;
    const int64_t fp = static_cast<int64_t>(config_.footprint_pages);
    cursor_ = static_cast<Vpn>(((next % fp) + fp) % fp);
    op.vpn = cursor_;
  }

  if (config_.accesses_per_op == 0) {
    op.op_end = true;
  } else {
    ++since_op_end_;
    if (since_op_end_ >= config_.accesses_per_op) {
      since_op_end_ = 0;
      op.op_end = true;
    }
  }

  if (--remaining_in_phase_ == 0) {
    StartPhase(rng);
  }
  return op;
}

}  // namespace leap
