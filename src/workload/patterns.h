// Primitive access patterns: the microbenchmark workloads of the paper's
// sections 2.2 and 5.1 (Sequential and Stride-N) plus uniform random.
#ifndef LEAP_SRC_WORKLOAD_PATTERNS_H_
#define LEAP_SRC_WORKLOAD_PATTERNS_H_

#include <numeric>
#include <string>

#include "src/sim/zipf.h"
#include "src/workload/access_stream.h"

namespace leap {

// Touches pages 0, 1, 2, ... footprint-1, then wraps.
class SequentialStream : public AccessStream {
 public:
  SequentialStream(size_t footprint_pages, SimTimeNs think_ns = 0,
                   bool writes = false)
      : footprint_(footprint_pages), think_ns_(think_ns), writes_(writes) {}

  MemOp Next(Rng&) override {
    MemOp op{next_, writes_, think_ns_, true};
    next_ = (next_ + 1) % footprint_;
    return op;
  }
  size_t footprint_pages() const override { return footprint_; }
  std::string name() const override { return "sequential"; }

 private:
  size_t footprint_;
  SimTimeNs think_ns_;
  bool writes_;
  Vpn next_ = 0;
};

// Touches pages 0, N, 2N, ... wrapping inside the footprint; the paper's
// Stride-10 microbenchmark is StrideStream(footprint, 10).
class StrideStream : public AccessStream {
 public:
  StrideStream(size_t footprint_pages, size_t stride,
               SimTimeNs think_ns = 0)
      : footprint_(footprint_pages),
        stride_(stride == 0 ? 1 : stride),
        think_ns_(think_ns) {}

  MemOp Next(Rng&) override {
    MemOp op{next_, false, think_ns_, true};
    next_ += stride_;
    if (next_ >= footprint_) {
      // Advance to another residue lane so sweeps keep faulting. The lane
      // step is coprime with the stride and as far from +-1 as possible so
      // cluster prefetches for one lane cannot accidentally serve the
      // next - keeping the pattern a pure stride, like the paper's
      // microbenchmark.
      lane_ = (lane_ + LaneStep()) % stride_;
      next_ = lane_;
    }
    return op;
  }
  size_t footprint_pages() const override { return footprint_; }
  std::string name() const override {
    return "stride-" + std::to_string(stride_);
  }

 private:
  size_t LaneStep() const {
    for (size_t step = stride_ / 2; step >= 2; --step) {
      if (std::gcd(step, stride_) == 1) {
        return step;
      }
    }
    return 1;
  }

  size_t footprint_;
  size_t stride_;
  SimTimeNs think_ns_;
  Vpn next_ = 0;
  size_t lane_ = 0;
};

// Zipf-skewed page touches (the "mostly random" production pattern; used
// as one leg of the cluster's mixed workloads).
class ZipfStream : public AccessStream {
 public:
  ZipfStream(size_t footprint_pages, double theta, SimTimeNs think_ns = 0)
      : footprint_(footprint_pages),
        zipf_(footprint_pages, theta),
        think_ns_(think_ns) {}

  MemOp Next(Rng& rng) override {
    return MemOp{zipf_.Sample(rng), false, think_ns_, true};
  }
  size_t footprint_pages() const override { return footprint_; }
  std::string name() const override {
    return "zipf-" + std::to_string(zipf_.theta()).substr(0, 4);
  }

 private:
  size_t footprint_;
  ZipfSampler zipf_;
  SimTimeNs think_ns_;
};

// Zipf-skewed touches with the hot ranks scattered across the address
// space (YCSB's "scrambled zipfian"). ZipfSampler maps rank r directly to
// vpn r, so ZipfStream's hottest pages are the lowest vpns - exactly the
// pages a sequential warm-up evicts first, which correlates placement with
// heat. Scrambling multiplies the rank by a fixed odd constant modulo the
// footprint, a bijection whenever the footprint is coprime with the
// multiplier (any power of two qualifies), so popularity stays zipf but
// heat is uniform over the vpn range.
class ScrambledZipfStream : public AccessStream {
 public:
  ScrambledZipfStream(size_t footprint_pages, double theta,
                      SimTimeNs think_ns = 0)
      : footprint_(footprint_pages),
        zipf_(footprint_pages, theta),
        think_ns_(think_ns) {}

  MemOp Next(Rng& rng) override {
    const uint64_t rank = zipf_.Sample(rng);
    return MemOp{(rank * kScramble) % footprint_, false, think_ns_, true};
  }
  size_t footprint_pages() const override { return footprint_; }
  std::string name() const override {
    return "scrambled-zipf-" + std::to_string(zipf_.theta()).substr(0, 4);
  }

 private:
  // Knuth's multiplicative-hash constant; odd, so coprime with any
  // power-of-two footprint.
  static constexpr uint64_t kScramble = 2654435761ULL;

  size_t footprint_;
  ZipfSampler zipf_;
  SimTimeNs think_ns_;
};

// Uniformly random page touches.
class RandomStream : public AccessStream {
 public:
  explicit RandomStream(size_t footprint_pages, SimTimeNs think_ns = 0)
      : footprint_(footprint_pages), think_ns_(think_ns) {}

  MemOp Next(Rng& rng) override {
    return MemOp{rng.NextU64(footprint_), false, think_ns_, true};
  }
  size_t footprint_pages() const override { return footprint_; }
  std::string name() const override { return "random"; }

 private:
  size_t footprint_;
  SimTimeNs think_ns_;
};

}  // namespace leap

#endif  // LEAP_SRC_WORKLOAD_PATTERNS_H_
