// Trace record/replay: capture any AccessStream to a file and feed it back
// later. This is what makes the reproduction "trace-driven": a workload can
// be generated once and replayed bit-identically across every machine
// configuration under comparison.
//
// Format: one op per line, text: "<vpn> <w|r> <think_ns> <0|1 op_end>".
#ifndef LEAP_SRC_WORKLOAD_TRACE_H_
#define LEAP_SRC_WORKLOAD_TRACE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/workload/access_stream.h"

namespace leap {

// In-memory trace, loadable from / storable to disk.
class Trace {
 public:
  Trace() = default;

  void Append(const MemOp& op) { ops_.push_back(op); }
  const std::vector<MemOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }

  bool SaveTo(const std::string& path) const;
  static std::optional<Trace> LoadFrom(const std::string& path);

  // Records `n` ops from `stream`.
  static Trace Capture(AccessStream& stream, size_t n, Rng& rng);

 private:
  std::vector<MemOp> ops_;
};

// Replays a trace as an AccessStream (wraps around at the end).
class TraceReplayStream : public AccessStream {
 public:
  explicit TraceReplayStream(Trace trace);

  MemOp Next(Rng&) override;
  size_t footprint_pages() const override { return footprint_; }
  std::string name() const override { return "trace-replay"; }

  size_t position() const { return position_; }

 private:
  Trace trace_;
  size_t position_ = 0;
  size_t footprint_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_WORKLOAD_TRACE_H_
