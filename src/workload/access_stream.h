// Workload abstraction: a deterministic stream of page-granularity memory
// operations driving the simulated machine.
#ifndef LEAP_SRC_WORKLOAD_ACCESS_STREAM_H_
#define LEAP_SRC_WORKLOAD_ACCESS_STREAM_H_

#include <string>

#include "src/sim/rng.h"
#include "src/sim/types.h"

namespace leap {

struct MemOp {
  Vpn vpn = 0;
  bool write = false;
  // CPU think time consumed before this access (compute between memory
  // touches); gives each application its compute/memory balance.
  SimTimeNs think_ns = 0;
  // Marks the completion of one application-level operation (transaction,
  // key-value op, ...) for throughput accounting.
  bool op_end = false;
};

class AccessStream {
 public:
  virtual ~AccessStream() = default;

  virtual MemOp Next(Rng& rng) = 0;

  // Distinct pages the stream can touch (its working-set size).
  virtual size_t footprint_pages() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_WORKLOAD_ACCESS_STREAM_H_
