// Synthetic page-access models of the paper's four evaluation applications.
//
// The paper drives PowerGraph (Twitter graph), NumPy (matrix product),
// VoltDB (TPC-C), and Memcached (Facebook ETC-like traffic). We cannot run
// those binaries against a simulated kernel, so each model reproduces the
// *page-fault pattern mix* the paper itself measured for them (Figure 3):
//
//   PowerGraph: sequential-heavy (CSR edge scans) with strided property
//     walks and a solid irregular share from vertex gathers.
//   NumPy: the most sequential of the four - long streaming rows, stride
//     walks for the transposed operand.
//   VoltDB: ~69% irregular remote accesses (short random transactions),
//     the rest short sequential runs (section 5.3.3).
//   Memcached: ~96% irregular (section 2.3), zipf-skewed keys.
//
// Footprints are scaled down (the bands prescribe laptop-scale simulation);
// every consumer takes the footprint as a parameter so experiments can
// sweep it.
#ifndef LEAP_SRC_WORKLOAD_APP_MODELS_H_
#define LEAP_SRC_WORKLOAD_APP_MODELS_H_

#include <memory>

#include "src/workload/phase_mix.h"

namespace leap {

// Default scaled footprints (pages). Paper peaks: PowerGraph 9 GB ...
// NumPy 38.2 GB; we keep their relative order at laptop scale.
inline constexpr size_t kPowerGraphPages = 24 * 1024;  //  96 MB
inline constexpr size_t kNumPyPages = 40 * 1024;       // 160 MB
inline constexpr size_t kVoltDbPages = 20 * 1024;      //  80 MB
inline constexpr size_t kMemcachedPages = 28 * 1024;   // 112 MB

std::unique_ptr<PhaseMixStream> MakePowerGraph(size_t footprint_pages,
                                               uint64_t seed);
std::unique_ptr<PhaseMixStream> MakeNumPy(size_t footprint_pages,
                                          uint64_t seed);
std::unique_ptr<PhaseMixStream> MakeVoltDb(size_t footprint_pages,
                                           uint64_t seed);
std::unique_ptr<PhaseMixStream> MakeMemcached(size_t footprint_pages,
                                              uint64_t seed);

// Convenience: the four apps with default footprints, indexed 0..3.
struct AppSpec {
  const char* name;
  size_t footprint_pages;
  std::unique_ptr<PhaseMixStream> (*make)(size_t, uint64_t);
};
inline constexpr AppSpec kApps[] = {
    {"PowerGraph", kPowerGraphPages, MakePowerGraph},
    {"NumPy", kNumPyPages, MakeNumPy},
    {"VoltDB", kVoltDbPages, MakeVoltDb},
    {"Memcached", kMemcachedPages, MakeMemcached},
};

}  // namespace leap

#endif  // LEAP_SRC_WORKLOAD_APP_MODELS_H_
