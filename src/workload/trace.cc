#include "src/workload/trace.h"

#include <algorithm>
#include <fstream>

namespace leap {

bool Trace::SaveTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  for (const MemOp& op : ops_) {
    out << op.vpn << ' ' << (op.write ? 'w' : 'r') << ' ' << op.think_ns << ' '
        << (op.op_end ? 1 : 0) << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<Trace> Trace::LoadFrom(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  Trace trace;
  uint64_t vpn = 0;
  char rw = 'r';
  uint64_t think = 0;
  int op_end = 0;
  while (in >> vpn >> rw >> think >> op_end) {
    trace.Append(MemOp{vpn, rw == 'w', think, op_end != 0});
  }
  return trace;
}

Trace Trace::Capture(AccessStream& stream, size_t n, Rng& rng) {
  Trace trace;
  for (size_t i = 0; i < n; ++i) {
    trace.Append(stream.Next(rng));
  }
  return trace;
}

TraceReplayStream::TraceReplayStream(Trace trace) : trace_(std::move(trace)) {
  for (const MemOp& op : trace_.ops()) {
    footprint_ = std::max<size_t>(footprint_, op.vpn + 1);
  }
}

MemOp TraceReplayStream::Next(Rng&) {
  if (trace_.size() == 0) {
    return MemOp{};
  }
  const MemOp& op = trace_.ops()[position_];
  position_ = (position_ + 1) % trace_.size();
  return op;
}

}  // namespace leap
