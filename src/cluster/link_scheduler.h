// Pluggable per-link fabric schedulers: who gets the next wire slot.
//
// The fabric assigns every page op its serialization slot at enqueue time
// (the discrete-event simulation returns completion times synchronously,
// so a slot can never be revised once handed out). A LinkScheduler is the
// policy that picks the slot: it sees the op's IoRequest tag and the two
// links the op crosses (source uplink, target downlink) and returns the
// wire start time, advancing per-link horizons as it goes.
//
// Three policies:
//
//  - FifoScheduler: one busy-until horizon per link, strict arrival order.
//    Bit-identical to the pre-scheduler fabric - the parity baseline and
//    the default.
//  - DemandPriorityScheduler: strict priority for IoClass::kDemandRead.
//    Demand reads queue only behind other demand reads (per-class
//    horizon); background classes (prefetch/writeback/eviction/repair)
//    queue behind everything. Preemption happens at enqueue: a demand op
//    claims the next demand slot even when queued background work holds
//    the all-class horizon, and the background backlog is pushed out
//    behind it. Because already-returned completions cannot be revised,
//    the displaced background op keeps its original (now optimistic)
//    completion; the cost lands on background work enqueued later. The
//    paper's section 4 data-path claim - prefetches must never delay
//    demand fetches - is exactly this policy at the link layer.
//  - DrrScheduler: per-tenant deficit round robin, fluid (GPS)
//    approximation. Flows are keyed by (host, tenant); a backlogged flow's
//    ops are paced at serialization * W/w apart, where w is the flow's
//    weight and W the total weight of currently-backlogged flows on the
//    link - so byte shares on a saturated link match the configured
//    weights, while a flow alone on the link is paced at full rate
//    (work-conserving). Ops of distinct flows may overlap inside a round
//    (the enqueue-time-assignment limitation above); the fabric's exact
//    ring-based incast term still charges the aggregate load.
//
// A per-link repair-bandwidth cap rides the same slot-assignment
// mechanism (see Fabric::SubmitPageOp): repair ops on a link are paced at
// least serialization / fraction apart, bounding repair to `fraction` of
// the link rate under any scheduler.
//
// Determinism: schedulers are pure functions of the op sequence and the
// per-link state they maintain - no randomness, no wall clock - so
// same-seed cluster runs make bit-identical scheduling decisions.
#ifndef LEAP_SRC_CLUSTER_LINK_SCHEDULER_H_
#define LEAP_SRC_CLUSTER_LINK_SCHEDULER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/container/flat_map.h"
#include "src/sim/io_request.h"
#include "src/sim/types.h"

namespace leap {

enum class LinkSchedulerKind { kFifo, kDemandPriority, kDrr };

constexpr const char* LinkSchedulerKindName(LinkSchedulerKind kind) {
  switch (kind) {
    case LinkSchedulerKind::kFifo: return "fifo";
    case LinkSchedulerKind::kDemandPriority: return "demand-priority";
    case LinkSchedulerKind::kDrr: return "drr";
  }
  return "unknown";
}

struct LinkSchedulerConfig {
  LinkSchedulerKind kind = LinkSchedulerKind::kFifo;
  // DRR weights, indexed by fabric host id; hosts beyond the vector (and
  // every host when it is empty) weigh default_weight. Weights must be
  // positive; non-positive entries are clamped at construction.
  std::vector<double> host_weights;
  double default_weight = 1.0;
  // Fraction of each link's bandwidth repair traffic may consume
  // (1.0 = uncapped; enforced by Fabric for every scheduler kind).
  double repair_bandwidth_fraction = 1.0;
  // Same cap for tier-migration traffic (IoClass::kMigration): the
  // migrator's background copies are paced so they can never take more
  // than this fraction of any link.
  double migration_bandwidth_fraction = 1.0;
};

// Scheduling state of one link. One struct serves all scheduler kinds
// (each uses the fields it needs); the fabric embeds it in its per-link
// record and hands it to the scheduler by reference.
struct LinkSchedState {
  // All-class wire horizon: when every slot handed out so far has
  // serialized. FIFO's only state; the background horizon under
  // demand-priority.
  SimTimeNs busy_until = 0;
  // Demand-class horizon (DemandPriorityScheduler).
  SimTimeNs demand_until = 0;
  // Earliest time the next repair op may take a slot (repair cap pacing;
  // maintained by Fabric, honored before the scheduler runs).
  SimTimeNs repair_allowed_at = 0;
  // Same pacing horizon for tier-migration ops (migration cap).
  SimTimeNs migration_allowed_at = 0;
  // Per-flow pacing horizons (DrrScheduler), keyed by
  // (host << 32) | tenant. A flow is backlogged while horizon > now.
  FlatMap<uint64_t, SimTimeNs> flow_horizon;
};

class LinkScheduler {
 public:
  virtual ~LinkScheduler() = default;

  // Assigns the op's wire slot: returns wire_start >= now and advances the
  // horizons of `up` and `down`. The fabric calls this once per op, with
  // per-link `now` values that never decrease faster than the simulation's
  // small cross-host reorderings (horizons only ratchet forward).
  virtual SimTimeNs ScheduleOp(LinkSchedState& up, LinkSchedState& down,
                               const IoRequest& req, SimTimeNs now,
                               SimTimeNs serialization_ns) = 0;

  // Stable name (views a string literal; reporting paths must not
  // allocate).
  virtual std::string_view name() const = 0;
};

// Builds the scheduler for `config.kind`. The returned scheduler is
// stateless across links (all mutable state lives in LinkSchedState), so
// one instance serves every link of a fabric.
std::unique_ptr<LinkScheduler> MakeLinkScheduler(
    const LinkSchedulerConfig& config);

}  // namespace leap

#endif  // LEAP_SRC_CLUSTER_LINK_SCHEDULER_H_
