// Pluggable slab placement across the remote-memory donor pool.
//
// HostAgent maps its swap space onto fixed-size slabs and asks a SlabPlacer
// which node each slab (and each replica) should live on. The paper's
// design (section 4.5, following Infiniswap) uses power-of-two-choices;
// the cluster subsystem makes the policy pluggable so placement effects on
// fabric contention and imbalance can be measured:
//
//  - first-fit:    lowest-numbered node with a free slab. Pathological
//                  hotspotting baseline: early nodes absorb everything.
//  - power-of-two: sample two eligible nodes, keep the less loaded. The
//                  classic load-balancing result; near-uniform with two
//                  random probes.
//  - striped:      deterministic round-robin offset by host id, so one
//                  host's consecutive slabs stripe across nodes (sequential
//                  readahead fans out over downlinks) and different hosts
//                  start on different nodes.
//
// Policies never place on failed or full nodes; kNoNode means the pool has
// no eligible capacity and the caller must degrade (overflow to a slower
// medium) - a counted event, not a silent fallback.
#ifndef LEAP_SRC_CLUSTER_SLAB_PLACER_H_
#define LEAP_SRC_CLUSTER_SLAB_PLACER_H_

#include <cstdint>
#include <memory>
#include <span>

#include "src/rdma/remote_agent.h"
#include "src/sim/rng.h"

namespace leap {

enum class PlacementPolicy { kFirstFit, kPowerOfTwo, kStriped };

const char* PlacementPolicyName(PlacementPolicy policy);

class SlabPlacer {
 public:
  static constexpr uint32_t kNoNode = static_cast<uint32_t>(-1);

  virtual ~SlabPlacer() = default;

  // Picks a node id for `host_id`'s slab `slab_id`, skipping ids in
  // `exclude` (replicas already placed), failed nodes, and full nodes.
  // Returns kNoNode when no eligible node has a free slab.
  virtual uint32_t Pick(std::span<RemoteAgent* const> nodes,
                        std::span<const uint32_t> exclude, uint32_t host_id,
                        uint64_t slab_id, Rng& rng) = 0;

  virtual const char* name() const = 0;

 protected:
  static bool Eligible(const RemoteAgent* node,
                       std::span<const uint32_t> exclude);
};

class FirstFitPlacer : public SlabPlacer {
 public:
  uint32_t Pick(std::span<RemoteAgent* const> nodes,
                std::span<const uint32_t> exclude, uint32_t host_id,
                uint64_t slab_id, Rng& rng) override;
  const char* name() const override { return "first-fit"; }
};

class PowerOfTwoPlacer : public SlabPlacer {
 public:
  uint32_t Pick(std::span<RemoteAgent* const> nodes,
                std::span<const uint32_t> exclude, uint32_t host_id,
                uint64_t slab_id, Rng& rng) override;
  const char* name() const override { return "power-of-two-choices"; }
};

class StripedPlacer : public SlabPlacer {
 public:
  uint32_t Pick(std::span<RemoteAgent* const> nodes,
                std::span<const uint32_t> exclude, uint32_t host_id,
                uint64_t slab_id, Rng& rng) override;
  const char* name() const override { return "striped"; }
};

std::unique_ptr<SlabPlacer> MakeSlabPlacer(PlacementPolicy policy);

}  // namespace leap

#endif  // LEAP_SRC_CLUSTER_SLAB_PLACER_H_
