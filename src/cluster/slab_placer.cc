#include "src/cluster/slab_placer.h"

#include <algorithm>
#include <vector>

namespace leap {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFit: return "first-fit";
    case PlacementPolicy::kPowerOfTwo: return "power-of-two-choices";
    case PlacementPolicy::kStriped: return "striped";
  }
  return "unknown";
}

bool SlabPlacer::Eligible(const RemoteAgent* node,
                          std::span<const uint32_t> exclude) {
  if (node == nullptr || node->failed() || node->FreeSlabs() == 0) {
    return false;
  }
  return std::find(exclude.begin(), exclude.end(), node->node_id()) ==
         exclude.end();
}

uint32_t FirstFitPlacer::Pick(std::span<RemoteAgent* const> nodes,
                              std::span<const uint32_t> exclude,
                              uint32_t /*host_id*/, uint64_t /*slab_id*/,
                              Rng& /*rng*/) {
  for (RemoteAgent* node : nodes) {
    if (Eligible(node, exclude)) {
      return node->node_id();
    }
  }
  return kNoNode;
}

uint32_t PowerOfTwoPlacer::Pick(std::span<RemoteAgent* const> nodes,
                                std::span<const uint32_t> exclude,
                                uint32_t /*host_id*/, uint64_t /*slab_id*/,
                                Rng& rng) {
  std::vector<RemoteAgent*> pool;
  for (RemoteAgent* node : nodes) {
    if (Eligible(node, exclude)) {
      pool.push_back(node);
    }
  }
  if (pool.empty()) {
    return kNoNode;
  }
  if (pool.size() == 1) {
    return pool.front()->node_id();
  }
  // Power of two choices: sample two distinct candidates, keep the less
  // loaded one.
  const size_t a = rng.NextU64(pool.size());
  size_t b = rng.NextU64(pool.size() - 1);
  if (b >= a) {
    ++b;
  }
  RemoteAgent* first = pool[a];
  RemoteAgent* second = pool[b];
  return first->mapped_slabs() <= second->mapped_slabs() ? first->node_id()
                                                         : second->node_id();
}

uint32_t StripedPlacer::Pick(std::span<RemoteAgent* const> nodes,
                             std::span<const uint32_t> exclude,
                             uint32_t host_id, uint64_t slab_id,
                             Rng& /*rng*/) {
  if (nodes.empty()) {
    return kNoNode;
  }
  // Host-offset round-robin; probe forward when the natural stripe target
  // has no capacity.
  const size_t start =
      (static_cast<size_t>(host_id) + static_cast<size_t>(slab_id)) %
      nodes.size();
  for (size_t i = 0; i < nodes.size(); ++i) {
    RemoteAgent* node = nodes[(start + i) % nodes.size()];
    if (Eligible(node, exclude)) {
      return node->node_id();
    }
  }
  return kNoNode;
}

std::unique_ptr<SlabPlacer> MakeSlabPlacer(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      return std::make_unique<FirstFitPlacer>();
    case PlacementPolicy::kPowerOfTwo:
      return std::make_unique<PowerOfTwoPlacer>();
    case PlacementPolicy::kStriped:
      return std::make_unique<StripedPlacer>();
  }
  return std::make_unique<PowerOfTwoPlacer>();
}

}  // namespace leap
