#include "src/cluster/fault_injector.h"

#include <stdexcept>
#include <utility>

#include "src/runtime/cluster.h"

namespace leap {

FaultPlan& FaultPlan::Crash(uint32_t node, SimTimeNs at) {
  FaultEvent ev;
  ev.kind = FaultKind::kCrash;
  ev.nodes = {node};
  ev.at = at;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::Recover(uint32_t node, SimTimeNs at) {
  FaultEvent ev;
  ev.kind = FaultKind::kRecover;
  ev.nodes = {node};
  ev.at = at;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::CrashGroup(std::vector<uint32_t> group, SimTimeNs at) {
  if (group.empty()) {
    throw std::invalid_argument("FaultPlan::CrashGroup: empty group");
  }
  FaultEvent ev;
  ev.kind = FaultKind::kCrashGroup;
  ev.nodes = std::move(group);
  ev.at = at;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::Gray(uint32_t node, double stretch, SimTimeNs at,
                           SimTimeNs until) {
  if (stretch <= 0.0) {
    throw std::invalid_argument("FaultPlan::Gray: stretch must be > 0");
  }
  if (until != 0 && until <= at) {
    throw std::invalid_argument("FaultPlan::Gray: until must be > at");
  }
  FaultEvent ev;
  ev.kind = FaultKind::kGray;
  ev.nodes = {node};
  ev.at = at;
  ev.until = until;
  ev.stretch = stretch;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::GrayRamp(uint32_t node, double from_stretch,
                               double to_stretch, SimTimeNs at, SimTimeNs until,
                               size_t steps) {
  if (from_stretch <= 0.0 || to_stretch <= 0.0) {
    throw std::invalid_argument("FaultPlan::GrayRamp: stretches must be > 0");
  }
  if (until <= at) {
    throw std::invalid_argument("FaultPlan::GrayRamp: until must be > at");
  }
  if (steps == 0) {
    throw std::invalid_argument("FaultPlan::GrayRamp: steps must be >= 1");
  }
  // Piecewise-constant expansion: step i holds the linearly-interpolated
  // stretch over its slice of [at, until); a final event clears at
  // `until`. Expansion at build time keeps the runtime vocabulary to five
  // primitive kinds and makes the plan inspectable as plain data.
  const SimTimeNs span = until - at;
  for (size_t i = 0; i < steps; ++i) {
    const double frac =
        steps == 1 ? 0.0
                   : static_cast<double>(i) / static_cast<double>(steps - 1);
    const double stretch = from_stretch + (to_stretch - from_stretch) * frac;
    const SimTimeNs step_at =
        at + static_cast<SimTimeNs>(static_cast<double>(span) *
                                    (static_cast<double>(i) /
                                     static_cast<double>(steps)));
    Gray(node, stretch, step_at, 0);
  }
  Gray(node, 1.0, until, 0);  // stretch 1.0 = restore full speed
  return *this;
}

FaultPlan& FaultPlan::DelaySpike(uint32_t node, SimTimeNs extra_ns,
                                 SimTimeNs at, SimTimeNs until) {
  if (extra_ns == 0) {
    throw std::invalid_argument("FaultPlan::DelaySpike: extra_ns must be > 0");
  }
  if (until != 0 && until <= at) {
    throw std::invalid_argument("FaultPlan::DelaySpike: until must be > at");
  }
  FaultEvent ev;
  ev.kind = FaultKind::kDelaySpike;
  ev.nodes = {node};
  ev.at = at;
  ev.until = until;
  ev.extra_delay_ns = extra_ns;
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::Flap(uint32_t node, size_t cycles, SimTimeNs at,
                           SimTimeNs down_ns, SimTimeNs up_ns) {
  if (cycles == 0) {
    throw std::invalid_argument("FaultPlan::Flap: cycles must be >= 1");
  }
  if (down_ns == 0 || up_ns == 0) {
    throw std::invalid_argument(
        "FaultPlan::Flap: down_ns and up_ns must be > 0");
  }
  SimTimeNs t = at;
  for (size_t i = 0; i < cycles; ++i) {
    Crash(node, t);
    Recover(node, t + down_ns);
    t += down_ns + up_ns;
  }
  return *this;
}

void FaultPlan::Validate(size_t node_count) const {
  for (const FaultEvent& ev : events_) {
    for (const uint32_t node : ev.nodes) {
      if (node >= node_count) {
        throw std::out_of_range("FaultPlan: event targets unknown node");
      }
    }
  }
}

void FaultInjector::Arm(Cluster& cluster, const FaultPlan& plan) {
  plan.Validate(cluster.num_nodes());
  for (const FaultEvent& ev : plan.events()) {
    switch (ev.kind) {
      case FaultKind::kCrash:
        cluster.ScheduleNodeFailure(ev.nodes[0], ev.at);
        break;
      case FaultKind::kRecover:
        cluster.ScheduleNodeRecovery(ev.nodes[0], ev.at);
        break;
      case FaultKind::kCrashGroup:
        cluster.ScheduleCorrelatedFailure(ev.nodes, ev.at);
        break;
      case FaultKind::kGray:
        cluster.ScheduleNodeGray(ev.nodes[0], ev.stretch, ev.at, ev.until);
        break;
      case FaultKind::kDelaySpike:
        cluster.ScheduleNodeDelaySpike(ev.nodes[0], ev.extra_delay_ns, ev.at,
                                       ev.until);
        break;
    }
  }
}

}  // namespace leap
