#include "src/cluster/fabric.h"

#include <algorithm>

namespace leap {

Fabric::Fabric(const FabricConfig& config, size_t num_hosts, size_t num_nodes)
    : config_(config),
      base_(LatencyModel::Normal(config.base_mean_ns, config.base_stddev_ns,
                                 config.base_min_ns)),
      bytes_per_ns_(config.link_gbps / 8.0),
      uplinks_(std::max<size_t>(1, num_hosts)),
      downlinks_(std::max<size_t>(1, num_nodes)) {
  serialization_ns_ = static_cast<SimTimeNs>(
      static_cast<double>(config_.op_bytes) / bytes_per_ns_);
  if (serialization_ns_ == 0) {
    serialization_ns_ = 1;
  }
}

uint32_t Fabric::AddHost() {
  uplinks_.emplace_back();
  return static_cast<uint32_t>(uplinks_.size() - 1);
}

void Fabric::Drain(Link& link, SimTimeNs now) {
  while (link.count > 0) {
    const Pending& front = link.ring[link.head];
    if (front.done > now) {
      break;
    }
    link.inflight_bytes -= front.bytes;
    link.head = (link.head + 1) % link.ring.size();
    --link.count;
  }
}

void Fabric::Push(Link& link, SimTimeNs done, uint32_t bytes) {
  if (link.count == link.ring.size()) {
    // Grow by re-linearizing: steady state reaches a fixed depth (bounded
    // by bandwidth-delay product / op size) and never grows again.
    std::vector<Pending> bigger;
    bigger.reserve(link.ring.empty() ? 16 : link.ring.size() * 2);
    for (size_t i = 0; i < link.count; ++i) {
      bigger.push_back(link.ring[(link.head + i) % link.ring.size()]);
    }
    bigger.resize(bigger.capacity());
    link.ring = std::move(bigger);
    link.head = 0;
  }
  link.ring[(link.head + link.count) % link.ring.size()] =
      Pending{done, bytes};
  ++link.count;
  link.inflight_bytes += bytes;
}

SimTimeNs Fabric::SubmitPageOp(uint32_t host, uint32_t node, SimTimeNs now,
                               Rng& rng) {
  Link& up = uplinks_[host % uplinks_.size()];
  Link& down = downlinks_[node % downlinks_.size()];
  Drain(down, now);

  // The transfer occupies the sender's uplink and the receiver's downlink
  // for one serialization slot; a hot node's downlink is where contending
  // hosts queue behind each other (incast).
  const SimTimeNs wire_start =
      std::max(now, std::max(up.busy_until, down.busy_until));
  const SimTimeNs wire_end = wire_start + serialization_ns_;
  up.busy_until = wire_end;
  down.busy_until = wire_end;

  // Bytes already racing toward this node stretch the latency further:
  // switch buffers drain at link rate, so each in-flight KB past the free
  // allowance costs congestion_ns_per_kb.
  const uint64_t backlog =
      down.inflight_bytes > config_.congestion_free_bytes
          ? down.inflight_bytes - config_.congestion_free_bytes
          : 0;
  const SimTimeNs congestion = static_cast<SimTimeNs>(
      static_cast<double>(backlog) / 1024.0 * config_.congestion_ns_per_kb);

  const SimTimeNs done = wire_end + congestion + base_.Sample(rng);

  // In-flight accounting uses wire_end plus the constant mean base - NOT
  // the sampled latency and NOT the congestion term - so ring entries are
  // strictly non-decreasing (wire_end only grows per link) and the FIFO
  // Drain above is exact. Congested ops therefore leave the in-flight
  // ledger a little early; that under-, never over-counts the backlog, so
  // congestion cannot compound on itself. Only the downlink keeps a ring:
  // incast at the receiver is the congestion signal, while the sender side
  // is fully described by up.busy_until.
  const SimTimeNs done_est = wire_end + config_.base_mean_ns;
  Push(down, done_est, static_cast<uint32_t>(config_.op_bytes));

  ++ops_;
  ++up.ops;
  ++down.ops;
  const SimTimeNs queue_delay = (wire_start - now) + congestion;
  queue_delay_hist_.Record(queue_delay);
  // EWMA with alpha = 1/32: smooth enough to ride out single-op spikes,
  // fast enough that a congestion epoch (hundreds of ops) dominates it.
  queue_delay_ewma_ns_ +=
      (static_cast<double>(queue_delay) - queue_delay_ewma_ns_) / 32.0;
  return done;
}

double Fabric::MeanLatencyNs() const {
  return static_cast<double>(config_.base_mean_ns + serialization_ns_);
}

}  // namespace leap
