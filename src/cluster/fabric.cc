#include "src/cluster/fabric.h"

#include <algorithm>

#include "src/obs/trace_recorder.h"

namespace leap {

Fabric::Fabric(const FabricConfig& config, size_t num_hosts, size_t num_nodes)
    : config_(config),
      base_(LatencyModel::Normal(config.base_mean_ns, config.base_stddev_ns,
                                 config.base_min_ns)),
      bytes_per_ns_(config.link_gbps / 8.0),
      scheduler_(MakeLinkScheduler(config.sched)),
      uplinks_(std::max<size_t>(1, num_hosts)),
      downlinks_(std::max<size_t>(1, num_nodes)) {
  serialization_ns_ = static_cast<SimTimeNs>(
      static_cast<double>(config_.op_bytes) / bytes_per_ns_);
  if (serialization_ns_ == 0) {
    serialization_ns_ = 1;
  }
}

uint32_t Fabric::AddHost() {
  uplinks_.emplace_back();
  return static_cast<uint32_t>(uplinks_.size() - 1);
}

void Fabric::SetNodeSlowdown(uint32_t node, double factor) {
  downlinks_[node % downlinks_.size()].slowdown =
      factor > 0.0 ? factor : 1.0;
}

void Fabric::SetNodeExtraDelayNs(uint32_t node, SimTimeNs extra) {
  downlinks_[node % downlinks_.size()].extra_delay_ns = extra;
}

void Fabric::Drain(Link& link, SimTimeNs now) {
  while (link.count > 0) {
    const Pending& front = link.ring[link.head];
    if (front.done > now) {
      break;
    }
    link.inflight_bytes -= front.bytes;
    link.head = (link.head + 1) % link.ring.size();
    --link.count;
  }
}

void Fabric::Push(Link& link, SimTimeNs done, uint32_t bytes) {
  if (link.count == link.ring.size()) {
    // Grow by re-linearizing: steady state reaches a fixed depth (bounded
    // by bandwidth-delay product / op size) and never grows again.
    std::vector<Pending> bigger;
    bigger.reserve(link.ring.empty() ? 16 : link.ring.size() * 2);
    for (size_t i = 0; i < link.count; ++i) {
      bigger.push_back(link.ring[(link.head + i) % link.ring.size()]);
    }
    bigger.resize(bigger.capacity());
    link.ring = std::move(bigger);
    link.head = 0;
  }
  link.ring[(link.head + link.count) % link.ring.size()] =
      Pending{done, bytes};
  ++link.count;
  link.inflight_bytes += bytes;
}

SimTimeNs Fabric::SubmitPageOp(const IoRequest& req, uint32_t node,
                               SimTimeNs now, Rng& rng) {
  Link& up = uplinks_[req.host % uplinks_.size()];
  Link& down = downlinks_[node % downlinks_.size()];
  Drain(down, now);

  // Wire footprint of this op: the descriptor's payload size plus the
  // configured per-op header overhead. A default page-sized op reproduces
  // config_.op_bytes and the precomputed serialization slot exactly.
  const size_t header =
      config_.op_bytes > kPageSize ? config_.op_bytes - kPageSize : 0;
  const auto wire_bytes = static_cast<uint32_t>(req.bytes + header);
  SimTimeNs slot_ns = serialization_ns_;
  if (req.bytes != kPageSize) {
    slot_ns = static_cast<SimTimeNs>(static_cast<double>(wire_bytes) /
                                     bytes_per_ns_);
    if (slot_ns == 0) {
      slot_ns = 1;
    }
  }

  // Repair cap: repair ops on a link are paced at least one stretched slot
  // apart, bounding repair to `repair_bandwidth_fraction` of the link rate
  // regardless of which scheduler assigns the slots.
  const bool capped_repair = req.cls == IoClass::kRepair &&
                             config_.sched.repair_bandwidth_fraction < 1.0 &&
                             config_.sched.repair_bandwidth_fraction > 0.0;
  // Tier-migration traffic rides the identical pacing mechanism with its
  // own horizon, so the migrator can never take more than
  // `migration_bandwidth_fraction` of any link.
  const bool capped_migration =
      req.cls == IoClass::kMigration &&
      config_.sched.migration_bandwidth_fraction < 1.0 &&
      config_.sched.migration_bandwidth_fraction > 0.0;
  SimTimeNs sched_now = now;
  if (capped_repair) {
    sched_now = std::max(now, std::max(up.sched.repair_allowed_at,
                                       down.sched.repair_allowed_at));
  }
  if (capped_migration) {
    sched_now = std::max(now, std::max(up.sched.migration_allowed_at,
                                       down.sched.migration_allowed_at));
  }

  // The scheduler picks the op's wire slot on the sender's uplink and the
  // receiver's downlink; a hot node's downlink is where contending hosts
  // queue behind each other (incast).
  //
  // A *paced* migration bypasses the scheduler's horizon queueing: a
  // token-bucket-limited class is injected at its paced instant and its
  // packets interleave with the foreground at line rate - it does not
  // reserve a future wire slot. Routing it through the scheduler would,
  // under load, grant it a slot at the pacing horizon (far past the
  // all-class frontier) and ratchet busy_until across wire that is in
  // fact idle - every later background op (evictions included, which
  // reclaim and therefore demand faults wait on) would then stall behind
  // nothing. Instead the op charges exactly one serialization slot of
  // capacity at each link's live frontier, which is its true wire share.
  const SimTimeNs up_busy_before = up.sched.busy_until;
  const SimTimeNs up_demand_before = up.sched.demand_until;
  SimTimeNs wire_start;
  if (capped_migration) {
    wire_start = sched_now;
    up.sched.busy_until = std::max(up.sched.busy_until, now) + slot_ns;
    down.sched.busy_until = std::max(down.sched.busy_until, now) + slot_ns;
  } else {
    wire_start =
        scheduler_->ScheduleOp(up.sched, down.sched, req, sched_now, slot_ns);
  }

  // A gray downlink must not hold the initiating uplink hostage: the
  // schedulers advance the uplink horizon to the granted slot's end, and
  // when that slot was dictated by a stretched downlink's backlog the
  // sender's healthy uplink would inherit the gray node's entire queue -
  // one probe to a gray node would then stall the host's reads to every
  // OTHER node. The sender only spends its own serialization time, so cap
  // the uplink advance at one slot past where the uplink was actually
  // free. Guarded by the exact != 1.0 check: no-fault runs take the
  // schedulers' horizons bit-identically.
  if (down.slowdown != 1.0) {
    up.sched.busy_until =
        std::min(up.sched.busy_until,
                 std::max(up_busy_before, sched_now) + slot_ns);
    up.sched.demand_until =
        std::min(up.sched.demand_until,
                 std::max(up_demand_before, sched_now) + slot_ns);
  }

  // Gray-node stretch: a gray downlink serializes this op slower by the
  // configured factor, and the extra time occupies the downlink (its
  // horizons ratchet to the stretched end, so the node's service rate
  // drops by the factor - exactly the "answers everything, slowly" gray
  // failure). The uplink is untouched: the sender's link is healthy. The
  // exact != 1.0 guard keeps no-fault runs bit-identical.
  SimTimeNs down_extra = 0;
  if (down.slowdown != 1.0) {
    down_extra = static_cast<SimTimeNs>(static_cast<double>(slot_ns) *
                                        (down.slowdown - 1.0));
  }
  const SimTimeNs wire_end = wire_start + slot_ns + down_extra;
  if (down_extra > 0) {
    down.sched.busy_until = std::max(down.sched.busy_until, wire_end);
    if (req.cls == IoClass::kDemandRead) {
      down.sched.demand_until = std::max(down.sched.demand_until, wire_end);
    }
  }
  if (capped_repair) {
    const auto pace = static_cast<SimTimeNs>(
        static_cast<double>(slot_ns) /
        config_.sched.repair_bandwidth_fraction);
    up.sched.repair_allowed_at = wire_start + pace;
    down.sched.repair_allowed_at = wire_start + pace;
  }
  if (capped_migration) {
    const auto pace = static_cast<SimTimeNs>(
        static_cast<double>(slot_ns) /
        config_.sched.migration_bandwidth_fraction);
    up.sched.migration_allowed_at = wire_start + pace;
    down.sched.migration_allowed_at = wire_start + pace;
  }

  // Bytes already racing toward this node stretch the latency further:
  // switch buffers drain at link rate, so each in-flight KB past the free
  // allowance costs congestion_ns_per_kb.
  const uint64_t backlog =
      down.inflight_bytes > config_.congestion_free_bytes
          ? down.inflight_bytes - config_.congestion_free_bytes
          : 0;
  const SimTimeNs congestion = static_cast<SimTimeNs>(
      static_cast<double>(backlog) / 1024.0 * config_.congestion_ns_per_kb);

  // Packet-delay spike: flat lateness on the path to this node (0 in
  // healthy runs, so parity holds). Excluded from the in-flight estimate
  // below like the congestion term - delayed packets are late, not queued.
  const SimTimeNs spike = down.extra_delay_ns;
  const SimTimeNs done = wire_end + congestion + spike + base_.Sample(rng);

  // In-flight accounting uses wire_end plus the constant mean base - NOT
  // the sampled latency and NOT the congestion term - so ring entries are
  // non-decreasing and the FIFO Drain above is exact. Under FIFO the
  // monotonicity is inherent (wire_end only grows per link); the
  // reordering schedulers can grant a slot earlier than one already handed
  // out, so the estimate is clamped to the previous push - the early op
  // then leaves the ledger with its displaced predecessor, a small
  // overcount that errs toward (never away from) congestion. Congested
  // ops still leave the ledger a little early (the congestion term is
  // excluded), which under-counts, so congestion cannot compound on
  // itself. Only the downlink keeps a ring: incast at the receiver is the
  // congestion signal, while the sender side is fully described by the
  // uplink horizons.
  // Paced migrations stay out of the ring: admission control upstream
  // (migration_allowed_at) holds the class to a fraction of line rate, so
  // it cannot build standing switch backlog - its wire share is already
  // charged through busy_until. Pushing it here would charge demand for
  // bytes still sitting in the migrator's host-side queue (the entry is
  // pushed at schedule time, and under load a background op's granted
  // slot is far in the future), and the monotonic clamp would then
  // stretch every later demand entry to that background horizon - pure
  // accounting artifact, not buffer occupancy. An UNcapped migration
  // class (fraction 1.0) can saturate, so it goes through the ledger like
  // any other class.
  if (!capped_migration) {
    const SimTimeNs done_est =
        std::max(wire_end + config_.base_mean_ns, down.last_done_est);
    down.last_done_est = done_est;
    Push(down, done_est, wire_bytes);
  }

  const auto cls = static_cast<size_t>(req.cls);
  ++ops_;
  ++up.ops;
  ++down.ops;
  ++up.classes.ops[cls];
  ++down.classes.ops[cls];
  up.classes.bytes[cls] += wire_bytes;
  down.classes.bytes[cls] += wire_bytes;
  wire_bytes_total_ += wire_bytes;
  // End-to-end sojourn by class: time since the op entered the I/O path
  // (software stages + NIC pacing + this fabric), when the caller stamped
  // it. Zero-stamped ops (unit tests driving the fabric directly) are
  // excluded rather than read as epoch-aged.
  //
  // The five stage terms below telescope: software + queue + wire + stall
  // + service == done - enqueue_ts with no residual, which is what lets
  // StageBreakdown claim it accounts for ALL of the measured end-to-end
  // latency (obs_trace_test pins the identity).
  const SimTimeNs stage_queue = wire_start - now;
  const SimTimeNs stage_wire = wire_end - wire_start;
  const SimTimeNs stage_stall = congestion + spike;
  const SimTimeNs stage_service = done - wire_end - congestion - spike;
  SimTimeNs stage_software = 0;
  if (req.enqueue_ts != 0 && done > req.enqueue_ts) {
    class_sojourn_sum_ns_[cls] +=
        static_cast<double>(done - req.enqueue_ts);
    ++class_sojourn_ops_[cls];
    stage_software = now >= req.enqueue_ts ? now - req.enqueue_ts : 0;
    StageSums& st = stage_sums_[cls];
    st.software_ns += stage_software;
    st.queue_ns += stage_queue;
    st.wire_ns += stage_wire;
    st.stall_ns += stage_stall;
    st.service_ns += stage_service;
    if (req.cls == IoClass::kDemandRead) {
      demand_stage_hists_[0].Record(stage_software);
      demand_stage_hists_[1].Record(stage_queue);
      demand_stage_hists_[2].Record(stage_wire);
      demand_stage_hists_[3].Record(stage_stall);
      demand_stage_hists_[4].Record(stage_service);
      demand_stage_hists_[5].Record(done - req.enqueue_ts);
    }
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kFabricOp;
    e.ts = stage_software > 0 ? req.enqueue_ts : now;
    e.dur_ns = done - e.ts;
    e.slot = req.slot;
    e.host = req.host;
    e.node = node;
    e.tenant = req.tenant;
    e.cls = req.cls;
    e.stage_software_ns = static_cast<uint32_t>(stage_software);
    e.stage_queue_ns = static_cast<uint32_t>(stage_queue);
    e.stage_wire_ns = static_cast<uint32_t>(stage_wire);
    e.stage_stall_ns = static_cast<uint32_t>(stage_stall);
    e.stage_service_ns = static_cast<uint32_t>(stage_service);
    trace_->Record(e);
  }
  // Queue delay includes the spike: congestion control and the health
  // monitor should both see a delayed path as a slow path.
  const SimTimeNs queue_delay = (wire_start - now) + congestion + spike;
  queue_delay_hist_.Record(queue_delay);
  // EWMA with alpha = 1/32: smooth enough to ride out single-op spikes,
  // fast enough that a congestion epoch (hundreds of ops) dominates it.
  // The per-class EWMA advances only on its own class's ops, so a repair
  // storm cannot masquerade as demand-path congestion.
  queue_delay_ewma_ns_ +=
      (static_cast<double>(queue_delay) - queue_delay_ewma_ns_) / 32.0;
  class_queue_delay_ewma_ns_[cls] +=
      (static_cast<double>(queue_delay) - class_queue_delay_ewma_ns_[cls]) /
      32.0;
  class_delay_sum_ns_[cls] += static_cast<double>(queue_delay);
  ++class_delay_ops_[cls];
  return done;
}

double Fabric::MeanLatencyNs() const {
  return static_cast<double>(config_.base_mean_ns + serialization_ns_);
}

StageBreakdown Fabric::Stages() const {
  StageBreakdown out;
  for (size_t c = 0; c < kIoClassCount; ++c) {
    StageBreakdown::Stage& s = out.cls[c];
    s.software_ns = stage_sums_[c].software_ns;
    s.queue_ns = stage_sums_[c].queue_ns;
    s.wire_ns = stage_sums_[c].wire_ns;
    s.stall_ns = stage_sums_[c].stall_ns;
    s.service_ns = stage_sums_[c].service_ns;
    s.ops = class_sojourn_ops_[c];
  }
  out.demand_p99_software_ns = demand_stage_hists_[0].Percentile(0.99);
  out.demand_p99_queue_ns = demand_stage_hists_[1].Percentile(0.99);
  out.demand_p99_wire_ns = demand_stage_hists_[2].Percentile(0.99);
  out.demand_p99_stall_ns = demand_stage_hists_[3].Percentile(0.99);
  out.demand_p99_service_ns = demand_stage_hists_[4].Percentile(0.99);
  out.demand_p99_total_ns = demand_stage_hists_[5].Percentile(0.99);
  return out;
}

}  // namespace leap
