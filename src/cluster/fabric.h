// Shared multi-host fabric: the network connecting N host machines to M
// memory nodes in a disaggregated cluster.
//
// Replaces the fixed LatencyModel constants of single-host runs with a
// latency that depends on what everyone else is doing: each host has an
// uplink and each memory node a downlink of fixed bandwidth, a page op
// serializes on both (so contending hosts queue behind each other on a hot
// node's downlink), and on top of queuing, an incast congestion term grows
// with the bytes already in flight toward the target node - modeling
// switch buffering the way far-memory follow-ups (3PO and friends) argue a
// prefetcher must be evaluated under.
//
// Every op arrives as a tagged IoRequest, and WHICH op gets the next wire
// slot is a pluggable LinkScheduler policy (src/cluster/link_scheduler.h):
// FIFO (default; bit-identical to the pre-scheduler fabric),
// demand-priority (prefetch/background never delays a demand read), or
// per-tenant weighted DRR. A per-link repair-bandwidth cap rides the same
// slot-assignment mechanism. Queue-delay telemetry is kept per IoClass so
// congestion control can key on demand/prefetch delay without repair or
// writeback noise.
//
// Determinism: every quantity is a pure function of the op sequence and
// the caller's Rng stream. The cluster runner interleaves hosts in roughly
// non-decreasing global time; small reorderings (apps with different think
// times) are safe because busy-until times only ratchet forward (max()
// clamps) and in-flight accounting uses the *expected* completion
// (wire end + mean base latency), which is strictly monotone per link - so
// the per-link completion rings drain FIFO and the model never needs an
// ordered structure.
#ifndef LEAP_SRC_CLUSTER_FABRIC_H_
#define LEAP_SRC_CLUSTER_FABRIC_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/link_scheduler.h"
#include "src/rdma/rdma_nic.h"
#include "src/sim/io_request.h"
#include "src/sim/latency_model.h"
#include "src/sim/types.h"
#include "src/stats/histogram.h"

namespace leap {

struct FabricConfig {
  // Per-direction bandwidth of every host uplink and node downlink
  // (the paper's testbed fabric is 56 Gbps InfiniBand).
  double link_gbps = 56.0;
  // One-sided RDMA base latency (setup + propagation + remote NIC), same
  // calibration as RdmaNicConfig so a 1-host cluster matches a single host.
  SimTimeNs base_mean_ns = 3700;
  SimTimeNs base_stddev_ns = 900;
  SimTimeNs base_min_ns = 2500;
  // Wire bytes per page op: 4KB payload plus headers.
  size_t op_bytes = kPageSize + 64;
  // Incast congestion: extra ns per KB in flight toward the target node
  // beyond the pipe's natural depth (~1 BDP of switch buffer is free).
  double congestion_ns_per_kb = 30.0;
  size_t congestion_free_bytes = 32 * 1024;
  // Per-link slot-assignment policy (FIFO default = parity with the
  // pre-scheduler fabric) plus DRR weights and the repair-bandwidth cap.
  LinkSchedulerConfig sched;
};

// Per-link per-class op/byte totals, snapshotted into ClusterStats.
struct LinkClassCounts {
  std::array<uint64_t, kIoClassCount> ops{};
  std::array<uint64_t, kIoClassCount> bytes{};
};

class TraceRecorder;

// Where page-op time goes, decomposed per IoClass - the simulator's answer
// to the paper's fig 2 stall breakdown. Stage sums are integer ns and
// telescope exactly: for every op stamped with enqueue_ts,
//   software + queue + wire + stall + service == completion - enqueue_ts,
// so a class's stage means sum to its MeanSojournNs with no residual
// (pinned by obs_trace_test). Unstamped ops (unit tests driving the
// fabric directly) are excluded, matching the sojourn accounting.
struct StageBreakdown {
  struct Stage {
    uint64_t software_ns = 0;  // fault -> fabric submit (block layer + CPU)
    uint64_t queue_ns = 0;     // waiting for a link wire slot
    uint64_t wire_ns = 0;      // serialization, incl. gray-node stretch
    uint64_t stall_ns = 0;     // incast congestion + injected delay spikes
    uint64_t service_ns = 0;   // remote base latency draw
    uint64_t ops = 0;          // stamped ops the sums cover

    uint64_t TotalNs() const {
      return software_ns + queue_ns + wire_ns + stall_ns + service_ns;
    }
    double MeanNs(uint64_t sum) const {
      return ops == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(ops);
    }
  };
  std::array<Stage, kIoClassCount> cls{};
  // Demand-read tail decomposition (p99 of each stage across stamped
  // demand reads; stage p99s need not sum to the total p99 - the worst
  // queue wait and the worst service draw rarely hit the same op).
  uint64_t demand_p99_software_ns = 0;
  uint64_t demand_p99_queue_ns = 0;
  uint64_t demand_p99_wire_ns = 0;
  uint64_t demand_p99_stall_ns = 0;
  uint64_t demand_p99_service_ns = 0;
  uint64_t demand_p99_total_ns = 0;
};

class Fabric : public PageTransport {
 public:
  Fabric(const FabricConfig& config, size_t num_hosts, size_t num_nodes);

  // PageTransport: one tagged page op from `req.host`'s uplink to `node`'s
  // downlink. Returns the completion time.
  SimTimeNs SubmitPageOp(const IoRequest& req, uint32_t node, SimTimeNs now,
                         Rng& rng) override;

  // Host join: grows the uplink set; returns the new host id.
  uint32_t AddHost();

  // --- fault hooks (driven by the FaultInjector) --------------------------
  // Gray node: the node's downlink serializes every op `factor`x slower
  // (the link itself degraded - a flaky cable, a throttled NIC - not the
  // traffic on it). 1.0 restores full speed. Takes effect on the next op;
  // ops already granted slots keep their completions (the simulation never
  // revises a returned time).
  void SetNodeSlowdown(uint32_t node, double factor);
  double NodeSlowdown(uint32_t node) const {
    return downlinks_[node % downlinks_.size()].slowdown;
  }
  // Transient packet-delay spike: a flat extra latency on every op to this
  // node (reroute through a backup path, a microburst drop+retransmit).
  // Unlike the slowdown it does not consume link capacity - ops are late,
  // not queued. 0 clears it.
  void SetNodeExtraDelayNs(uint32_t node, SimTimeNs extra);
  SimTimeNs NodeExtraDelayNs(uint32_t node) const {
    return downlinks_[node % downlinks_.size()].extra_delay_ns;
  }

  // Flight-recorder hook: when non-null, every page op records one
  // kFabricOp span with its stage decomposition. Null (the default) keeps
  // the hot path at a single pointer test.
  void SetTrace(TraceRecorder* trace) { trace_ = trace; }

  size_t num_hosts() const { return uplinks_.size(); }
  size_t num_nodes() const { return downlinks_.size(); }
  SimTimeNs serialization_ns() const { return serialization_ns_; }
  std::string_view scheduler_name() const { return scheduler_->name(); }
  // Uncontended expectation (base + one serialization), for reporting.
  double MeanLatencyNs() const;

  // --- accounting ---------------------------------------------------------
  uint64_t ops() const { return ops_; }
  // Total wire bytes moved (per-op payload + header; equals
  // ops * op_bytes when every op is a default page op).
  uint64_t bytes() const { return wire_bytes_total_; }
  uint64_t host_ops(uint32_t host) const { return uplinks_[host].ops; }
  uint64_t node_ops(uint32_t node) const { return downlinks_[node].ops; }
  // Per-class breakdown of one link's traffic (wire bytes, headers
  // included).
  uint64_t host_class_ops(uint32_t host, IoClass cls) const {
    return uplinks_[host].classes.ops[static_cast<size_t>(cls)];
  }
  uint64_t node_class_ops(uint32_t node, IoClass cls) const {
    return downlinks_[node].classes.ops[static_cast<size_t>(cls)];
  }
  const LinkClassCounts& host_classes(uint32_t host) const {
    return uplinks_[host].classes;
  }
  const LinkClassCounts& node_classes(uint32_t node) const {
    return downlinks_[node].classes;
  }
  // Time ops spent waiting for a link slot plus congestion stall - the
  // contention signal the cluster bench reports (p99 rises with hosts).
  Histogram& queue_delay_hist() { return queue_delay_hist_; }
  const Histogram& queue_delay_hist() const { return queue_delay_hist_; }
  // Continuously-maintained EWMA of the same quantity (alpha = 1/32),
  // snapshotted into CongestionSignals on every fault: the feedback input
  // for congestion-aware prefetch budgets. The class-blind overload mixes
  // every IoClass (kept for aggregate reporting); the per-class overload
  // is what congestion control keys on.
  double QueueDelayEwmaNs() const override { return queue_delay_ewma_ns_; }
  double QueueDelayEwmaNs(IoClass cls) const override {
    return class_queue_delay_ewma_ns_[static_cast<size_t>(cls)];
  }
  // Whole-run mean queue delay of one class (the EWMA is a point-in-time
  // snapshot; this is the reporting quantity).
  double MeanQueueDelayNs(IoClass cls) const {
    const auto c = static_cast<size_t>(cls);
    return class_delay_ops_[c] == 0
               ? 0.0
               : class_delay_sum_ns_[c] /
                     static_cast<double>(class_delay_ops_[c]);
  }
  // Whole-run mean end-to-end sojourn of one class: IoRequest::enqueue_ts
  // (entry into the I/O path) -> fabric completion, over the ops that
  // carried a stamp.
  double MeanSojournNs(IoClass cls) const {
    const auto c = static_cast<size_t>(cls);
    return class_sojourn_ops_[c] == 0
               ? 0.0
               : class_sojourn_sum_ns_[c] /
                     static_cast<double>(class_sojourn_ops_[c]);
  }
  // Per-stage latency attribution (always maintained; integer adds plus
  // pre-allocated histogram bumps, so keeping it on costs no allocation
  // and changes no simulation result).
  StageBreakdown Stages() const;

  // Raw per-class accumulators, exposed so the sharded engine can merge
  // per-shard fabrics exactly: a merged class mean is sum-of-sums over
  // sum-of-ops, not a mean of means (shards carry different op counts).
  double ClassQueueDelaySumNs(IoClass cls) const {
    return class_delay_sum_ns_[static_cast<size_t>(cls)];
  }
  uint64_t ClassQueueDelayOps(IoClass cls) const {
    return class_delay_ops_[static_cast<size_t>(cls)];
  }
  double ClassSojournSumNs(IoClass cls) const {
    return class_sojourn_sum_ns_[static_cast<size_t>(cls)];
  }
  uint64_t ClassSojournOps(IoClass cls) const {
    return class_sojourn_ops_[static_cast<size_t>(cls)];
  }
  // Demand-read per-stage distributions (0..4 = software/queue/wire/stall/
  // service, 5 = end-to-end total): merged via Histogram::Merge so tail
  // percentiles recompute over the union of shards' stamped demand reads.
  static constexpr size_t kDemandStageHists = 6;
  const Histogram& DemandStageHist(size_t stage) const {
    return demand_stage_hists_[stage];
  }

 private:
  // Expected in-flight completion, kept in a FIFO ring (downlinks only:
  // incast at the receiver drives the congestion term; uplinks are fully
  // described by the scheduler's horizons).
  struct Pending {
    SimTimeNs done;
    uint32_t bytes;
  };
  struct Link {
    LinkSchedState sched;          // slot-assignment horizons
    uint64_t inflight_bytes = 0;   // submitted, not yet (expected) complete
    SimTimeNs last_done_est = 0;   // ring monotonicity clamp (downlinks)
    double slowdown = 1.0;         // gray-node serialization stretch
    SimTimeNs extra_delay_ns = 0;  // packet-delay spike (flat add-on)
    uint64_t ops = 0;
    LinkClassCounts classes;
    std::vector<Pending> ring;     // circular FIFO over `head`/`count`
    size_t head = 0;
    size_t count = 0;
  };

  static void Drain(Link& link, SimTimeNs now);
  static void Push(Link& link, SimTimeNs done, uint32_t bytes);

  FabricConfig config_;
  LatencyModel base_;
  SimTimeNs serialization_ns_;
  double bytes_per_ns_;
  std::unique_ptr<LinkScheduler> scheduler_;
  std::vector<Link> uplinks_;    // one per host
  std::vector<Link> downlinks_;  // one per memory node
  uint64_t ops_ = 0;
  Histogram queue_delay_hist_;
  double queue_delay_ewma_ns_ = 0.0;
  std::array<double, kIoClassCount> class_queue_delay_ewma_ns_{};
  std::array<double, kIoClassCount> class_delay_sum_ns_{};
  std::array<uint64_t, kIoClassCount> class_delay_ops_{};
  std::array<double, kIoClassCount> class_sojourn_sum_ns_{};
  std::array<uint64_t, kIoClassCount> class_sojourn_ops_{};
  uint64_t wire_bytes_total_ = 0;
  // Stage attribution over stamped ops (same coverage as the sojourn
  // sums, so the telescoping identity holds exactly).
  struct StageSums {
    uint64_t software_ns = 0;
    uint64_t queue_ns = 0;
    uint64_t wire_ns = 0;
    uint64_t stall_ns = 0;
    uint64_t service_ns = 0;
  };
  std::array<StageSums, kIoClassCount> stage_sums_{};
  // Demand-read per-stage distributions for the tail report
  // (software/queue/wire/stall/service + end-to-end total).
  std::array<Histogram, 6> demand_stage_hists_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace leap

#endif  // LEAP_SRC_CLUSTER_FABRIC_H_
