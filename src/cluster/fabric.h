// Shared multi-host fabric: the network connecting N host machines to M
// memory nodes in a disaggregated cluster.
//
// Replaces the fixed LatencyModel constants of single-host runs with a
// latency that depends on what everyone else is doing: each host has an
// uplink and each memory node a downlink of fixed bandwidth, a page op
// serializes on both (so contending hosts queue behind each other on a hot
// node's downlink), and on top of queuing, an incast congestion term grows
// with the bytes already in flight toward the target node - modeling
// switch buffering the way far-memory follow-ups (3PO and friends) argue a
// prefetcher must be evaluated under.
//
// Determinism: every quantity is a pure function of the op sequence and
// the caller's Rng stream. The cluster runner interleaves hosts in roughly
// non-decreasing global time; small reorderings (apps with different think
// times) are safe because busy-until times only ratchet forward (max()
// clamps) and in-flight accounting uses the *expected* completion
// (wire end + mean base latency), which is strictly monotone per link - so
// the per-link completion rings drain FIFO and the model never needs an
// ordered structure.
#ifndef LEAP_SRC_CLUSTER_FABRIC_H_
#define LEAP_SRC_CLUSTER_FABRIC_H_

#include <cstdint>
#include <vector>

#include "src/rdma/rdma_nic.h"
#include "src/sim/latency_model.h"
#include "src/sim/types.h"
#include "src/stats/histogram.h"

namespace leap {

struct FabricConfig {
  // Per-direction bandwidth of every host uplink and node downlink
  // (the paper's testbed fabric is 56 Gbps InfiniBand).
  double link_gbps = 56.0;
  // One-sided RDMA base latency (setup + propagation + remote NIC), same
  // calibration as RdmaNicConfig so a 1-host cluster matches a single host.
  SimTimeNs base_mean_ns = 3700;
  SimTimeNs base_stddev_ns = 900;
  SimTimeNs base_min_ns = 2500;
  // Wire bytes per page op: 4KB payload plus headers.
  size_t op_bytes = kPageSize + 64;
  // Incast congestion: extra ns per KB in flight toward the target node
  // beyond the pipe's natural depth (~1 BDP of switch buffer is free).
  double congestion_ns_per_kb = 30.0;
  size_t congestion_free_bytes = 32 * 1024;
};

class Fabric : public PageTransport {
 public:
  Fabric(const FabricConfig& config, size_t num_hosts, size_t num_nodes);

  // PageTransport: one page op from `host`'s uplink to `node`'s downlink.
  // Returns the completion time.
  SimTimeNs SubmitPageOp(uint32_t host, uint32_t node, SimTimeNs now,
                         Rng& rng) override;

  // Host join: grows the uplink set; returns the new host id.
  uint32_t AddHost();

  size_t num_hosts() const { return uplinks_.size(); }
  size_t num_nodes() const { return downlinks_.size(); }
  SimTimeNs serialization_ns() const { return serialization_ns_; }
  // Uncontended expectation (base + one serialization), for reporting.
  double MeanLatencyNs() const;

  // --- accounting ---------------------------------------------------------
  uint64_t ops() const { return ops_; }
  uint64_t bytes() const { return ops_ * config_.op_bytes; }
  uint64_t host_ops(uint32_t host) const { return uplinks_[host].ops; }
  uint64_t node_ops(uint32_t node) const { return downlinks_[node].ops; }
  // Time ops spent waiting for a link slot plus congestion stall - the
  // contention signal the cluster bench reports (p99 rises with hosts).
  Histogram& queue_delay_hist() { return queue_delay_hist_; }
  const Histogram& queue_delay_hist() const { return queue_delay_hist_; }
  // Continuously-maintained EWMA of the same quantity (alpha = 1/32),
  // snapshotted into CongestionSignals on every fault: the feedback input
  // for congestion-aware prefetch budgets.
  double QueueDelayEwmaNs() const override { return queue_delay_ewma_ns_; }

 private:
  // Expected in-flight completion, kept in a FIFO ring (downlinks only:
  // incast at the receiver drives the congestion term; uplinks are fully
  // described by busy_until).
  struct Pending {
    SimTimeNs done;
    uint32_t bytes;
  };
  struct Link {
    SimTimeNs busy_until = 0;      // serialization slot
    uint64_t inflight_bytes = 0;   // submitted, not yet (expected) complete
    uint64_t ops = 0;
    std::vector<Pending> ring;     // circular FIFO over `head`/`count`
    size_t head = 0;
    size_t count = 0;
  };

  static void Drain(Link& link, SimTimeNs now);
  static void Push(Link& link, SimTimeNs done, uint32_t bytes);

  FabricConfig config_;
  LatencyModel base_;
  SimTimeNs serialization_ns_;
  double bytes_per_ns_;
  std::vector<Link> uplinks_;    // one per host
  std::vector<Link> downlinks_;  // one per memory node
  uint64_t ops_ = 0;
  Histogram queue_delay_hist_;
  double queue_delay_ewma_ns_ = 0.0;
};

}  // namespace leap

#endif  // LEAP_SRC_CLUSTER_FABRIC_H_
