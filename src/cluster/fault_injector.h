// Scriptable fault injection: a FaultPlan is a declarative timeline of
// failures; FaultInjector::Arm schedules it onto a cluster's shared
// EventQueue so faults interleave deterministically with foreground work.
//
// Before this existed, every failure scenario was hand-scheduled at its
// call site (a ScheduleNodeFailure here, a ScheduleNodeRecovery there),
// which kept the interesting composite scenarios - a rack loss during a
// gray brownout, a flapping node next to a delay spike - one-off bench
// code. The plan is the reusable vocabulary:
//
//   FaultPlan plan;
//   plan.Gray(/*node=*/1, /*stretch=*/16.0, at, until)   // gray node
//       .CrashGroup({2, 3}, at2)                         // rack loss
//       .Flap(0, /*cycles=*/3, at3, down_ns, up_ns)      // flapping
//       .DelaySpike(1, 200 * kNsPerUs, at4, until4);     // microburst
//   FaultInjector::Arm(cluster, plan);
//
// Fault kinds:
//  - Crash / Recover: fail-stop, the detectable failure. Composes with the
//    cluster's repair machinery (slabs re-replicate off the corpse).
//  - CrashGroup: a correlated failure domain (rack, power bus) - every
//    member fails at the same instant, before any repair runs.
//  - Gray / GrayRamp: the node answers everything, `stretch`x slow (its
//    downlink serializes slower). GrayRamp varies the stretch over time in
//    piecewise-constant steps - a disk going bad, thermal throttling
//    ramping in - so detectors are exercised against a moving target, not
//    a step function.
//  - DelaySpike: transient flat extra latency to one node (reroute,
//    microburst), no capacity loss.
//  - Flap: crash/recover cycles - the failure detector's nightmare
//    tenant - expanded at build time into Crash/Recover pairs.
//
// Builder methods validate eagerly (throw std::invalid_argument at the
// call site, not at simulation time); Validate(node_count) re-checks
// target ids against a concrete cluster before arming.
//
// Determinism: a plan is data. Arming schedules plain events at fixed
// simulation times; same plan + same seed is bit-identical, and an EMPTY
// plan schedules nothing at all - byte-identical output to no plan.
#ifndef LEAP_SRC_CLUSTER_FAULT_INJECTOR_H_
#define LEAP_SRC_CLUSTER_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/sim/types.h"

namespace leap {

class Cluster;

enum class FaultKind : uint8_t {
  kCrash,       // fail-stop one node (triggers slab repair)
  kRecover,     // bring a crashed node back (empty; re-fills by placement)
  kCrashGroup,  // correlated fail-stop of a whole failure domain
  kGray,        // stretch the node's downlink serialization by `stretch`
  kDelaySpike,  // flat extra latency toward the node
};

constexpr const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kCrashGroup: return "crash_group";
    case FaultKind::kGray: return "gray";
    case FaultKind::kDelaySpike: return "delay_spike";
  }
  return "unknown";
}

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  std::vector<uint32_t> nodes;   // targets (1 entry except kCrashGroup)
  SimTimeNs at = 0;              // injection time
  SimTimeNs until = 0;           // gray/spike end (0 = stays in force)
  double stretch = 1.0;          // kGray serialization factor
  SimTimeNs extra_delay_ns = 0;  // kDelaySpike add-on
};

class FaultPlan {
 public:
  // Fail-stop `node` at `at`.
  FaultPlan& Crash(uint32_t node, SimTimeNs at);
  // Recover `node` at `at`.
  FaultPlan& Recover(uint32_t node, SimTimeNs at);
  // Correlated failure: every node of `group` fails at `at` (all drop
  // before any repair runs).
  FaultPlan& CrashGroup(std::vector<uint32_t> group, SimTimeNs at);
  // Gray node: downlink serializes `stretch`x slower during [at, until);
  // until = 0 leaves it gray for the rest of the run.
  FaultPlan& Gray(uint32_t node, double stretch, SimTimeNs at,
                  SimTimeNs until = 0);
  // Time-varying gray: stretch moves linearly from `from_stretch` to
  // `to_stretch` across [at, until) in `steps` piecewise-constant steps,
  // then clears at `until`. Expanded at build time into kGray events.
  FaultPlan& GrayRamp(uint32_t node, double from_stretch, double to_stretch,
                      SimTimeNs at, SimTimeNs until, size_t steps = 8);
  // Flat +extra_ns latency toward `node` during [at, until); until = 0
  // leaves the spike in force.
  FaultPlan& DelaySpike(uint32_t node, SimTimeNs extra_ns, SimTimeNs at,
                        SimTimeNs until = 0);
  // Flapping: `cycles` crash/recover pairs starting at `at` (down for
  // `down_ns`, then up for `up_ns`, repeated). Expanded at build time.
  FaultPlan& Flap(uint32_t node, size_t cycles, SimTimeNs at,
                  SimTimeNs down_ns, SimTimeNs up_ns);

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // Re-checks every target id against a concrete cluster size; throws
  // std::out_of_range on a bad id. (Value errors were already rejected by
  // the builder methods.)
  void Validate(size_t node_count) const;

 private:
  std::vector<FaultEvent> events_;
};

// Schedules every event of `plan` onto `cluster`'s shared EventQueue via
// the cluster's scenario hooks. Call before Cluster::Run; arming an empty
// plan is a no-op.
class FaultInjector {
 public:
  static void Arm(Cluster& cluster, const FaultPlan& plan);
};

}  // namespace leap

#endif  // LEAP_SRC_CLUSTER_FAULT_INJECTOR_H_
