// Per-node read-latency health monitor: the detection half of the gray-
// failure story (the mitigation half lives in HostAgent's resilience path).
//
// A gray node is the failure the crash detector cannot see: it answers
// every request, heartbeats on time, and serves reads 10-100x slow. The
// monitor detects it the only way possible - relatively. Each node carries
// a read-latency EWMA; a node's outlier score is its EWMA divided by the
// median EWMA across nodes, so a cluster-wide slowdown (incast, a hot
// tenant) moves every EWMA together and flags nobody, while a single slow
// node stands out immediately.
//
// State machine per node, driven by the outlier score with hysteresis:
//
//     healthy --(score >= suspect_factor)--> suspect
//     suspect --(score >= gray_factor,
//                held for gray_dwell_ns)---> gray
//     suspect --(score <  clear_factor)----> healthy
//     gray    --(score <  clear_factor)----> healthy
//
// Every conviction passes through suspect and must HOLD an at-or-above-
// gray score for gray_dwell_ns, so one synchronized congestion burst
// cannot mark a node gray; the clear threshold sitting well below the
// suspect threshold means a node hovering at the boundary does not flap
// between states. Transitions are counted (counter::kGrayTransitions) and
// the first time each node turns gray is kept, so benchmarks can report
// the detection window (injection time -> first gray mark).
//
// The monitor implements NodeHealthTracker (declared in rdma/host_agent.h,
// same layering pattern as PageTransport): HostAgents feed it demand-read
// completions and consult IsGray/NodeEwmaNs/ReadLatencyP99Ns for gray
// avoidance, hedge-target ranking, and the p99-based hedge delay.
//
// Determinism: the monitor is pure state driven off the recorded latency
// stream - no clocks, no randomness - so same-seed runs produce identical
// health views and identical mitigation decisions.
#ifndef LEAP_SRC_CLUSTER_HEALTH_MONITOR_H_
#define LEAP_SRC_CLUSTER_HEALTH_MONITOR_H_

#include <cstdint>
#include <vector>

#include "src/obs/trace_recorder.h"
#include "src/rdma/host_agent.h"
#include "src/sim/types.h"
#include "src/stats/counters.h"
#include "src/stats/histogram.h"

namespace leap {

enum class NodeHealth : uint8_t {
  kHealthy = 0,
  kSuspect,  // outlier-slow; watched, not yet avoided
  kGray,     // confirmed outlier; demand reads are steered away
};

constexpr const char* NodeHealthName(NodeHealth h) {
  switch (h) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kSuspect: return "suspect";
    case NodeHealth::kGray: return "gray";
  }
  return "unknown";
}

struct HealthMonitorConfig {
  // EWMA smoothing factor (weight of the newest sample). 1/8 mirrors the
  // TCP RTT estimator: smooth enough to ride out one slow read, fast
  // enough that a genuine 10x slowdown crosses the gray threshold within
  // a few tens of samples.
  double ewma_alpha = 0.125;
  // A node is never judged before this many samples (its EWMA is still
  // mostly initial transient), and the cluster p99 reads 0 until this many
  // total samples accumulated (hedging stays off while cold).
  uint64_t min_samples = 32;
  // Outlier-score thresholds (score = node EWMA / median of node EWMAs).
  double suspect_factor = 2.0;  // healthy -> suspect at or above this
  double gray_factor = 4.0;     // suspect -> gray at or above this
  double clear_factor = 1.5;    // suspect/gray -> healthy below this
  // Latency floor: nodes whose EWMA sits under the floor are never flagged
  // no matter the ratio (a 2x outlier at microsecond scale is noise, not a
  // gray node).
  SimTimeNs floor_ns = 10 * kNsPerUs;
  // Minimum time a node must dwell in suspect before it can be convicted
  // gray. A synchronized burst (hosts unblocking together after a slow
  // read) spikes several EWMAs 4-5x for a few hundred microseconds; the
  // dwell forces the outlier score to HOLD before avoidance kicks in,
  // trading ~1 ms of detection latency for not convicting half the
  // cluster off one burst. 0 restores single-sample conviction.
  SimTimeNs gray_dwell_ns = 1 * kNsPerMs;

  void Validate() const;  // throws std::invalid_argument
};

class HealthMonitor : public NodeHealthTracker {
 public:
  HealthMonitor(const HealthMonitorConfig& config, size_t node_count);

  void SetCounters(Counters* counters) { counters_ = counters; }
  // Flight recorder: every state change records a kHealthTransition
  // instant (a = from state, b = to state). Null disables.
  void SetTrace(TraceRecorder* trace) { trace_ = trace; }

  // NodeHealthTracker --------------------------------------------------------
  void RecordRead(uint32_t node, SimTimeNs latency_ns, SimTimeNs now) override;
  bool IsGray(uint32_t node) const override;
  double NodeEwmaNs(uint32_t node) const override;
  SimTimeNs ReadLatencyP99Ns() const override;

  // Health view --------------------------------------------------------------
  NodeHealth State(uint32_t node) const;
  uint64_t SampleCount(uint32_t node) const;
  // Simulation time the node was FIRST marked gray (0 = never). Subtracting
  // the fault-injection time gives the detection window fig16 reports.
  SimTimeNs FirstGrayAtNs(uint32_t node) const;
  // First time the node entered gray at or after `t` (0 = never did).
  // The detection-window query: a transient false positive BEFORE the
  // fault was injected must not masquerade as instant detection.
  SimTimeNs FirstGrayAtOrAfterNs(uint32_t node, SimTimeNs t) const;
  // Simulation time of the node's most recent state change (0 = never).
  SimTimeNs LastTransitionAtNs(uint32_t node) const;
  uint64_t transition_count() const { return transitions_; }
  size_t node_count() const { return nodes_.size(); }

 private:
  struct NodeState {
    double ewma_ns = 0.0;
    uint64_t samples = 0;
    NodeHealth state = NodeHealth::kHealthy;
    SimTimeNs first_gray_at = 0;
    SimTimeNs last_transition_at = 0;
    // Every gray-entry time, in order. Tiny (bounded by transition count);
    // lets FirstGrayAtOrAfterNs answer "when was the fault detected"
    // without a pre-fault false positive shadowing the real detection.
    std::vector<SimTimeNs> gray_enters;
  };

  // Median of the EWMAs of all nodes with >= min_samples (0 when fewer
  // than two nodes qualify - a one-node "cluster" has no peers to be an
  // outlier against).
  double MedianEwmaNs() const;
  void Transition(NodeState& ns, NodeHealth next, SimTimeNs now);

  HealthMonitorConfig config_;
  std::vector<NodeState> nodes_;
  // Cluster-wide latency of reads against then-healthy nodes; feeds the
  // p99 hedge delay (suspect/gray samples excluded - see RecordRead).
  Histogram read_latency_;
  Counters* counters_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  uint64_t transitions_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_CLUSTER_HEALTH_MONITOR_H_
