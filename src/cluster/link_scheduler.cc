#include "src/cluster/link_scheduler.h"

#include <algorithm>

namespace leap {
namespace {

// Weights below this are clamped up: a zero weight would turn the DRR
// spacing ratio W/w into a division blow-up, and "no service at all" is
// not a share DRR can express.
constexpr double kMinWeight = 1e-3;

class FifoScheduler final : public LinkScheduler {
 public:
  SimTimeNs ScheduleOp(LinkSchedState& up, LinkSchedState& down,
                       const IoRequest& /*req*/, SimTimeNs now,
                       SimTimeNs serialization_ns) override {
    // The transfer occupies the sender's uplink and the receiver's
    // downlink for one serialization slot, in strict arrival order -
    // exactly the pre-scheduler fabric, kept bit-identical as the parity
    // baseline.
    const SimTimeNs start =
        std::max(now, std::max(up.busy_until, down.busy_until));
    const SimTimeNs end = start + serialization_ns;
    up.busy_until = end;
    down.busy_until = end;
    return start;
  }

  std::string_view name() const override { return "fifo"; }
};

class DemandPriorityScheduler final : public LinkScheduler {
 public:
  SimTimeNs ScheduleOp(LinkSchedState& up, LinkSchedState& down,
                       const IoRequest& req, SimTimeNs now,
                       SimTimeNs serialization_ns) override {
    if (req.cls == IoClass::kDemandRead) {
      // Demand queues only behind demand: the per-class horizon ignores
      // every queued background op (preemption-at-enqueue). The claimed
      // slot still consumes wire capacity, so the all-class horizon is
      // pushed out behind it and later background arrivals pay for the
      // displacement.
      const SimTimeNs start =
          std::max(now, std::max(up.demand_until, down.demand_until));
      const SimTimeNs end = start + serialization_ns;
      up.demand_until = end;
      down.demand_until = end;
      up.busy_until = std::max(up.busy_until, start) + serialization_ns;
      down.busy_until = std::max(down.busy_until, start) + serialization_ns;
      return start;
    }
    // Background (prefetch/writeback/eviction/repair): behind everything,
    // demand included.
    const SimTimeNs start =
        std::max(now, std::max(up.busy_until, down.busy_until));
    const SimTimeNs end = start + serialization_ns;
    up.busy_until = end;
    down.busy_until = end;
    return start;
  }

  std::string_view name() const override { return "demand-priority"; }
};

class DrrScheduler final : public LinkScheduler {
 public:
  explicit DrrScheduler(const LinkSchedulerConfig& config)
      : weights_(config.host_weights),
        default_weight_(std::max(config.default_weight, kMinWeight)) {
    for (double& w : weights_) {
      w = std::max(w, kMinWeight);
    }
  }

  SimTimeNs ScheduleOp(LinkSchedState& up, LinkSchedState& down,
                       const IoRequest& req, SimTimeNs now,
                       SimTimeNs serialization_ns) override {
    const uint64_t key =
        (static_cast<uint64_t>(req.host) << 32) | req.tenant;
    const double w = WeightFor(req.host);
    // The op starts once the flow's queued work has drained at its fair
    // rate on both links it crosses.
    const SimTimeNs start = std::max(
        now, std::max(Horizon(up, key), Horizon(down, key)));
    // Fluid fair sharing: with total backlogged weight W on a link, this
    // flow drains at rate w/W of the link, so its next op is one weighted
    // slot later. W is re-read per op, which is how service speeds back up
    // the moment a competing flow goes idle (work conservation).
    Advance(up, key, start, serialization_ns, w, now);
    Advance(down, key, start, serialization_ns, w, now);
    return start;
  }

  std::string_view name() const override { return "drr"; }

 private:
  double WeightFor(uint32_t host) const {
    return host < weights_.size() ? weights_[host] : default_weight_;
  }

  static SimTimeNs Horizon(const LinkSchedState& link, uint64_t key) {
    const SimTimeNs* h = link.flow_horizon.Find(key);
    return h == nullptr ? 0 : *h;
  }

  void Advance(LinkSchedState& link, uint64_t key, SimTimeNs start,
               SimTimeNs serialization_ns, double weight, SimTimeNs now) {
    // One pass over the link's flows: sum the backlogged weight and
    // collect drained flows for pruning (an idle flow's horizon reads as
    // 0 either way, so erasing it is semantics-preserving - it keeps this
    // scan proportional to *live* flows instead of every (host, tenant)
    // pair the link has ever seen across joins/leaves).
    double active_weight = weight;
    InlineVec<uint64_t, kPruneBatch> drained;
    for (const auto& [flow, horizon] : link.flow_horizon) {
      if (flow == key) {
        continue;
      }
      if (horizon > now) {
        active_weight += WeightFor(static_cast<uint32_t>(flow >> 32));
      } else if (drained.size() < kPruneBatch) {
        drained.push_back(flow);
      }
    }
    for (const uint64_t flow : drained) {
      link.flow_horizon.Erase(flow);
    }
    const auto spacing = static_cast<SimTimeNs>(
        static_cast<double>(serialization_ns) * (active_weight / weight));
    link.flow_horizon[key] = start + spacing;
    // All-class horizon kept for introspection (DRR places by flow
    // horizons, not by it).
    link.busy_until = std::max(link.busy_until, start + serialization_ns);
  }

  // Idle flows erased per op, bounding prune work on the hot path.
  static constexpr size_t kPruneBatch = 8;

  std::vector<double> weights_;
  double default_weight_;
};

}  // namespace

std::unique_ptr<LinkScheduler> MakeLinkScheduler(
    const LinkSchedulerConfig& config) {
  switch (config.kind) {
    case LinkSchedulerKind::kFifo:
      return std::make_unique<FifoScheduler>();
    case LinkSchedulerKind::kDemandPriority:
      return std::make_unique<DemandPriorityScheduler>();
    case LinkSchedulerKind::kDrr:
      return std::make_unique<DrrScheduler>(config);
  }
  return std::make_unique<FifoScheduler>();
}

}  // namespace leap
