#include "src/cluster/health_monitor.h"

#include <algorithm>
#include <stdexcept>

namespace leap {

void HealthMonitorConfig::Validate() const {
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0) {
    throw std::invalid_argument("HealthMonitorConfig: ewma_alpha in (0,1]");
  }
  if (min_samples == 0) {
    throw std::invalid_argument("HealthMonitorConfig: min_samples >= 1");
  }
  if (suspect_factor <= 1.0) {
    throw std::invalid_argument("HealthMonitorConfig: suspect_factor > 1");
  }
  if (gray_factor < suspect_factor) {
    throw std::invalid_argument(
        "HealthMonitorConfig: gray_factor >= suspect_factor");
  }
  if (clear_factor <= 0.0 || clear_factor > suspect_factor) {
    // A clear threshold above the suspect threshold would flap: the same
    // score would simultaneously demand suspect and healthy.
    throw std::invalid_argument(
        "HealthMonitorConfig: clear_factor in (0, suspect_factor]");
  }
}

HealthMonitor::HealthMonitor(const HealthMonitorConfig& config,
                             size_t node_count)
    : config_(config), nodes_(node_count) {
  config_.Validate();
}

void HealthMonitor::RecordRead(uint32_t node, SimTimeNs latency_ns,
                               SimTimeNs now) {
  if (node >= nodes_.size()) {
    return;
  }
  NodeState& ns = nodes_[node];
  const double sample = static_cast<double>(latency_ns);
  if (ns.samples == 0) {
    ns.ewma_ns = sample;
  } else {
    ns.ewma_ns += config_.ewma_alpha * (sample - ns.ewma_ns);
  }
  ++ns.samples;
  // The hedge-delay base tracks the HEALTHY tail: samples from a node
  // currently marked suspect/gray are excluded, otherwise the outlier
  // inflates the very p99 that decides when to hedge against it and the
  // hedge delay chases the failure it is meant to cut.
  if (latency_ns > 0 && ns.state == NodeHealth::kHealthy) {
    read_latency_.Record(static_cast<uint64_t>(latency_ns));
  }

  // Re-judge this node only: other nodes' scores change when the median
  // moves, but they will be re-judged on their own next sample, and a
  // stale mark for at most one inter-sample gap is well inside the
  // hysteresis band.
  if (ns.samples < config_.min_samples) {
    return;
  }
  const double median = MedianEwmaNs();
  if (median <= 0.0) {
    return;  // no peer group to be an outlier against
  }
  const double score = ns.ewma_ns / median;
  const bool above_floor = ns.ewma_ns >= static_cast<double>(config_.floor_ns);
  switch (ns.state) {
    case NodeHealth::kHealthy:
      if (above_floor && score >= config_.suspect_factor) {
        // Always via suspect: conviction requires the score to hold for
        // gray_dwell_ns, however damning this one sample looks.
        Transition(ns, NodeHealth::kSuspect, now);
      }
      break;
    case NodeHealth::kSuspect:
      if (above_floor && score >= config_.gray_factor &&
          now - ns.last_transition_at >= config_.gray_dwell_ns) {
        Transition(ns, NodeHealth::kGray, now);
      } else if (!above_floor || score < config_.clear_factor) {
        Transition(ns, NodeHealth::kHealthy, now);
      }
      break;
    case NodeHealth::kGray:
      if (!above_floor || score < config_.clear_factor) {
        Transition(ns, NodeHealth::kHealthy, now);
      }
      break;
  }
}

bool HealthMonitor::IsGray(uint32_t node) const {
  return node < nodes_.size() && nodes_[node].state == NodeHealth::kGray;
}

double HealthMonitor::NodeEwmaNs(uint32_t node) const {
  return node < nodes_.size() ? nodes_[node].ewma_ns : 0.0;
}

SimTimeNs HealthMonitor::ReadLatencyP99Ns() const {
  if (read_latency_.count() < config_.min_samples) {
    return 0;  // cold: hedging stays off until p99 means something
  }
  return static_cast<SimTimeNs>(read_latency_.Percentile(0.99));
}

NodeHealth HealthMonitor::State(uint32_t node) const {
  return node < nodes_.size() ? nodes_[node].state : NodeHealth::kHealthy;
}

uint64_t HealthMonitor::SampleCount(uint32_t node) const {
  return node < nodes_.size() ? nodes_[node].samples : 0;
}

SimTimeNs HealthMonitor::FirstGrayAtNs(uint32_t node) const {
  return node < nodes_.size() ? nodes_[node].first_gray_at : 0;
}

SimTimeNs HealthMonitor::FirstGrayAtOrAfterNs(uint32_t node,
                                              SimTimeNs t) const {
  if (node >= nodes_.size()) {
    return 0;
  }
  for (const SimTimeNs at : nodes_[node].gray_enters) {
    if (at >= t) {
      return at;
    }
  }
  return 0;
}

SimTimeNs HealthMonitor::LastTransitionAtNs(uint32_t node) const {
  return node < nodes_.size() ? nodes_[node].last_transition_at : 0;
}

double HealthMonitor::MedianEwmaNs() const {
  // Node counts are single digits (a cluster has a handful of memory
  // nodes); a copy + nth_element per judged sample is cheaper than
  // maintaining an order statistic incrementally.
  //
  // Gray nodes are excluded from the reference median: a confirmed
  // outlier's enormous EWMA would otherwise drag the median toward
  // itself until its own score fell under the clear threshold - the
  // monitor would clear the very node it just convicted, then re-convict
  // it, flapping forever. (A cluster-wide slowdown still flags nobody:
  // with no gray nodes the median spans everyone and moves with them.)
  // If fewer than two non-gray nodes qualify, fall back to all nodes so
  // a half-gray cluster keeps a peer group at all.
  std::vector<double> ewmas;
  ewmas.reserve(nodes_.size());
  for (const NodeState& ns : nodes_) {
    if (ns.samples >= config_.min_samples && ns.state != NodeHealth::kGray) {
      ewmas.push_back(ns.ewma_ns);
    }
  }
  if (ewmas.size() < 2) {
    ewmas.clear();
    for (const NodeState& ns : nodes_) {
      if (ns.samples >= config_.min_samples) {
        ewmas.push_back(ns.ewma_ns);
      }
    }
  }
  if (ewmas.size() < 2) {
    return 0.0;
  }
  const size_t mid = ewmas.size() / 2;
  std::nth_element(ewmas.begin(), ewmas.begin() + mid, ewmas.end());
  if (ewmas.size() % 2 == 1) {
    return ewmas[mid];
  }
  const double hi = ewmas[mid];
  std::nth_element(ewmas.begin(), ewmas.begin() + (mid - 1),
                   ewmas.begin() + mid);
  return 0.5 * (ewmas[mid - 1] + hi);
}

void HealthMonitor::Transition(NodeState& ns, NodeHealth next, SimTimeNs now) {
  if (ns.state == next) {
    return;
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kHealthTransition;
    e.ts = now;
    e.node = static_cast<uint32_t>(&ns - nodes_.data());
    e.a = static_cast<uint8_t>(ns.state);
    e.b = static_cast<uint8_t>(next);
    trace_->Record(e);
  }
  ns.state = next;
  ns.last_transition_at = now;
  if (next == NodeHealth::kGray) {
    if (ns.first_gray_at == 0) {
      ns.first_gray_at = now;
    }
    ns.gray_enters.push_back(now);
  }
  ++transitions_;
  if (counters_ != nullptr) {
    counters_->Add(counter::kGrayTransitions);
  }
}

}  // namespace leap
