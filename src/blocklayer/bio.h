// Block I/O request descriptor (a simulated `struct bio`).
#ifndef LEAP_SRC_BLOCKLAYER_BIO_H_
#define LEAP_SRC_BLOCKLAYER_BIO_H_

#include <cstddef>

#include "src/sim/types.h"

namespace leap {

struct Bio {
  SwapSlot start = 0;   // first page-granularity sector
  size_t npages = 1;    // contiguous page count
  bool write = false;
  SimTimeNs submitted_at = 0;

  SwapSlot end() const { return start + npages; }

  // True when `other` extends this bio contiguously (front or back merge).
  bool CanMergeWith(const Bio& other) const {
    if (write != other.write) {
      return false;
    }
    return other.start == end() || other.end() == start;
  }
};

}  // namespace leap

#endif  // LEAP_SRC_BLOCKLAYER_BIO_H_
