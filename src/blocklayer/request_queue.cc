#include "src/blocklayer/request_queue.h"

#include <algorithm>
#include <cassert>

namespace leap {
namespace {

// Sorts, dedups, and back-merges `reqs` into device requests, writing into
// caller-provided scratch so steady-state submission never allocates. The
// elevator orders by slot; among duplicates of one slot the
// highest-priority class (lowest IoClass value, i.e. the demand read)
// survives, so a demand fetch can absorb a same-slot prefetch but a
// prefetch can never swallow the demand page's identity.
void MergeAndSortInto(std::span<const IoRequest> reqs, SimTimeNs now,
                      std::vector<IoRequest>* sorted,
                      std::vector<Bio>* requests) {
  sorted->assign(reqs.begin(), reqs.end());
  std::sort(sorted->begin(), sorted->end(),
            [](const IoRequest& a, const IoRequest& b) {
              if (a.slot != b.slot) {
                return a.slot < b.slot;
              }
              return static_cast<uint8_t>(a.cls) <
                     static_cast<uint8_t>(b.cls);
            });
  sorted->erase(std::unique(sorted->begin(), sorted->end(),
                            [](const IoRequest& a, const IoRequest& b) {
                              return a.slot == b.slot;
                            }),
                sorted->end());

  requests->clear();
  for (const IoRequest& req : *sorted) {
    if (!requests->empty() && requests->back().end() == req.slot) {
      ++requests->back().npages;  // back-merge
    } else {
      requests->push_back(Bio{req.slot, 1, /*write=*/false, now});
    }
  }
}

}  // namespace

RequestQueue::RequestQueue(const BlockLayerConfig& config, BackingStore* store)
    : config_(config),
      store_(store),
      prep_(LatencyModel::LogNormal(config.prep_median_ns, config.prep_sigma,
                                    config.prep_min_ns)),
      queue_(LatencyModel::LogNormal(config.queue_median_ns,
                                     config.queue_sigma, config.queue_min_ns)),
      dispatch_(LatencyModel::Normal(config.dispatch_mean_ns,
                                     config.dispatch_stddev_ns,
                                     config.dispatch_min_ns)) {}

std::vector<Bio> RequestQueue::MergeAndSort(std::span<const IoRequest> reqs,
                                            SimTimeNs now) {
  std::vector<IoRequest> sorted;
  std::vector<Bio> requests;
  MergeAndSortInto(reqs, now, &sorted, &requests);
  return requests;
}

SimTimeNs RequestQueue::StageCost(Rng& rng) {
  return prep_.Sample(rng) + queue_.Sample(rng) + dispatch_.Sample(rng);
}

void RequestQueue::SubmitBatch(std::span<const IoRequest> reqs, SimTimeNs now,
                               Rng& rng, std::span<SimTimeNs> ready_at) {
  // ready_at is indexed exactly like reqs; a size mismatch would silently
  // mis-attribute completion times.
  assert(ready_at.size() == reqs.size() &&
         "SubmitBatch: ready_at must parallel reqs");
  if (reqs.empty()) {
    return;
  }
  MergeAndSortInto(reqs, now, &sorted_scratch_, &requests_scratch_);
  bios_merged_ += reqs.size() - requests_scratch_.size();
  requests_dispatched_ += requests_scratch_.size();

  // The batch pays the staging stages once (that is what batching buys),
  // then device requests go out in elevator order.
  const SimTimeNs device_start = now + StageCost(rng);
  if (trace_ != nullptr) {
    // One span per plug batch, keyed by the demand entry (the op a
    // process is blocked on); prefetch-only batches fall back to entry 0.
    size_t di = 0;
    for (size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].cls == IoClass::kDemandRead) {
        di = i;
        break;
      }
    }
    TraceEvent e;
    e.kind = TraceEventKind::kBlockAdmit;
    e.ts = now;
    e.dur_ns = device_start - now;
    e.slot = reqs[di].slot;
    e.host = trace_host_id_;
    e.tenant = reqs[di].tenant;
    e.cls = reqs[di].cls;
    e.a = static_cast<uint8_t>(std::min<size_t>(reqs.size(), 255));
    trace_->Record(e);
  }

  // Issue merged runs to the device in elevator (sorted) order. Completion
  // is bio-granular: a faulting process waits for its own page's bio, but
  // the elevator may service lower-addressed prefetch pages first, so a
  // demand page in the middle of a merged run eats its predecessors'
  // transfer time - the reordering cost of the throughput-first design.
  // Each bio's pages are a contiguous subrange of the sorted scratch, so
  // the run is submitted as a tagged subspan without re-materializing it.
  completion_scratch_.clear();
  size_t run_begin = 0;
  for (const Bio& bio : requests_scratch_) {
    run_ready_scratch_.assign(bio.npages, 0);
    store_->ReadPages({sorted_scratch_.data() + run_begin, bio.npages},
                      device_start, rng, run_ready_scratch_);
    for (size_t i = 0; i < bio.npages; ++i) {
      completion_scratch_.emplace_back(sorted_scratch_[run_begin + i].slot,
                                       run_ready_scratch_[i]);
    }
    run_begin += bio.npages;
  }
  // Batches are tiny (<= 1 + kMaxPrefetchCandidates pages), so a linear
  // scan beats hashing and keeps this allocation-free.
  for (size_t i = 0; i < reqs.size(); ++i) {
    for (const auto& [slot, done_at] : completion_scratch_) {
      if (slot == reqs[i].slot) {
        ready_at[i] = done_at;
        break;
      }
    }
  }
}

SimTimeNs RequestQueue::SubmitWrite(const IoRequest& req, SimTimeNs now,
                                    Rng& rng) {
  ++requests_dispatched_;
  const SimTimeNs device_start = now + StageCost(rng);
  return store_->WritePage(req, device_start, rng);
}

}  // namespace leap
