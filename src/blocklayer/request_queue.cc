#include "src/blocklayer/request_queue.h"

#include <algorithm>
#include <unordered_map>

namespace leap {

RequestQueue::RequestQueue(const BlockLayerConfig& config, BackingStore* store)
    : config_(config),
      store_(store),
      prep_(LatencyModel::LogNormal(config.prep_median_ns, config.prep_sigma,
                                    config.prep_min_ns)),
      queue_(LatencyModel::LogNormal(config.queue_median_ns,
                                     config.queue_sigma, config.queue_min_ns)),
      dispatch_(LatencyModel::Normal(config.dispatch_mean_ns,
                                     config.dispatch_stddev_ns,
                                     config.dispatch_min_ns)) {}

std::vector<Bio> RequestQueue::MergeAndSort(std::span<const SwapSlot> slots,
                                            bool write, SimTimeNs now) {
  std::vector<SwapSlot> sorted(slots.begin(), slots.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<Bio> requests;
  for (SwapSlot slot : sorted) {
    if (!requests.empty() && requests.back().end() == slot) {
      ++requests.back().npages;  // back-merge
    } else {
      requests.push_back(Bio{slot, 1, write, now});
    }
  }
  return requests;
}

SimTimeNs RequestQueue::StageCost(Rng& rng) {
  return prep_.Sample(rng) + queue_.Sample(rng) + dispatch_.Sample(rng);
}

void RequestQueue::SubmitBatch(std::span<const SwapSlot> slots, bool write,
                               SimTimeNs now, Rng& rng,
                               std::span<SimTimeNs> ready_at) {
  if (slots.empty()) {
    return;
  }
  std::vector<Bio> requests = MergeAndSort(slots, write, now);
  bios_merged_ += slots.size() - requests.size();
  requests_dispatched_ += requests.size();

  // The batch pays the staging stages once (that is what batching buys),
  // then device requests go out in elevator order.
  const SimTimeNs device_start = now + StageCost(rng);

  // Issue merged runs to the device in elevator (sorted) order. Completion
  // is bio-granular: a faulting process waits for its own page's bio, but
  // the elevator may service lower-addressed prefetch pages first, so a
  // demand page in the middle of a merged run eats its predecessors'
  // transfer time - the reordering cost of the throughput-first design.
  std::unordered_map<SwapSlot, SimTimeNs> completion;
  completion.reserve(slots.size());
  for (const Bio& bio : requests) {
    std::vector<SwapSlot> run(bio.npages);
    for (size_t i = 0; i < bio.npages; ++i) {
      run[i] = bio.start + i;
    }
    std::vector<SimTimeNs> run_ready(bio.npages);
    store_->ReadPages(run, device_start, rng, run_ready);
    for (size_t i = 0; i < bio.npages; ++i) {
      completion[run[i]] = run_ready[i];
    }
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    ready_at[i] = completion[slots[i]];
  }
}

SimTimeNs RequestQueue::SubmitWrite(SwapSlot slot, SimTimeNs now, Rng& rng) {
  ++requests_dispatched_;
  const SimTimeNs device_start = now + StageCost(rng);
  return store_->WritePage(slot, device_start, rng);
}

}  // namespace leap
