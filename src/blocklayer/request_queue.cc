#include "src/blocklayer/request_queue.h"

#include <algorithm>
#include <cassert>

namespace leap {
namespace {

// Sorts, dedups, and back-merges `slots` into device requests, writing into
// caller-provided scratch so steady-state submission never allocates.
void MergeAndSortInto(std::span<const SwapSlot> slots, bool write,
                      SimTimeNs now, std::vector<SwapSlot>* sorted,
                      std::vector<Bio>* requests) {
  sorted->assign(slots.begin(), slots.end());
  std::sort(sorted->begin(), sorted->end());
  sorted->erase(std::unique(sorted->begin(), sorted->end()), sorted->end());

  requests->clear();
  for (SwapSlot slot : *sorted) {
    if (!requests->empty() && requests->back().end() == slot) {
      ++requests->back().npages;  // back-merge
    } else {
      requests->push_back(Bio{slot, 1, write, now});
    }
  }
}

}  // namespace

RequestQueue::RequestQueue(const BlockLayerConfig& config, BackingStore* store)
    : config_(config),
      store_(store),
      prep_(LatencyModel::LogNormal(config.prep_median_ns, config.prep_sigma,
                                    config.prep_min_ns)),
      queue_(LatencyModel::LogNormal(config.queue_median_ns,
                                     config.queue_sigma, config.queue_min_ns)),
      dispatch_(LatencyModel::Normal(config.dispatch_mean_ns,
                                     config.dispatch_stddev_ns,
                                     config.dispatch_min_ns)) {}

std::vector<Bio> RequestQueue::MergeAndSort(std::span<const SwapSlot> slots,
                                            bool write, SimTimeNs now) {
  std::vector<SwapSlot> sorted;
  std::vector<Bio> requests;
  MergeAndSortInto(slots, write, now, &sorted, &requests);
  return requests;
}

SimTimeNs RequestQueue::StageCost(Rng& rng) {
  return prep_.Sample(rng) + queue_.Sample(rng) + dispatch_.Sample(rng);
}

void RequestQueue::SubmitBatch(std::span<const SwapSlot> slots, bool write,
                               SimTimeNs now, Rng& rng,
                               std::span<SimTimeNs> ready_at) {
  // ready_at is indexed exactly like slots (slots[0] = the demand page);
  // a size mismatch would silently mis-attribute completion times.
  assert(ready_at.size() == slots.size() &&
         "SubmitBatch: ready_at must parallel slots");
  if (slots.empty()) {
    return;
  }
  MergeAndSortInto(slots, write, now, &sorted_scratch_, &requests_scratch_);
  bios_merged_ += slots.size() - requests_scratch_.size();
  requests_dispatched_ += requests_scratch_.size();

  // The batch pays the staging stages once (that is what batching buys),
  // then device requests go out in elevator order.
  const SimTimeNs device_start = now + StageCost(rng);

  // Issue merged runs to the device in elevator (sorted) order. Completion
  // is bio-granular: a faulting process waits for its own page's bio, but
  // the elevator may service lower-addressed prefetch pages first, so a
  // demand page in the middle of a merged run eats its predecessors'
  // transfer time - the reordering cost of the throughput-first design.
  completion_scratch_.clear();
  for (const Bio& bio : requests_scratch_) {
    run_scratch_.resize(bio.npages);
    for (size_t i = 0; i < bio.npages; ++i) {
      run_scratch_[i] = bio.start + i;
    }
    run_ready_scratch_.assign(bio.npages, 0);
    store_->ReadPages(run_scratch_, device_start, rng, run_ready_scratch_);
    for (size_t i = 0; i < bio.npages; ++i) {
      completion_scratch_.emplace_back(run_scratch_[i], run_ready_scratch_[i]);
    }
  }
  // Batches are tiny (<= 1 + kMaxPrefetchCandidates pages), so a linear
  // scan beats hashing and keeps this allocation-free.
  for (size_t i = 0; i < slots.size(); ++i) {
    for (const auto& [slot, done_at] : completion_scratch_) {
      if (slot == slots[i]) {
        ready_at[i] = done_at;
        break;
      }
    }
  }
}

SimTimeNs RequestQueue::SubmitWrite(SwapSlot slot, SimTimeNs now, Rng& rng) {
  ++requests_dispatched_;
  const SimTimeNs device_start = now + StageCost(rng);
  return store_->WritePage(slot, device_start, rng);
}

}  // namespace leap
