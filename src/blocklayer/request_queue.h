// The throughput-optimized block layer: staging, merging, sorting and
// dispatch of bios, with the per-request software overheads the paper
// measures in Figure 1.
//
// This is the component Leap bypasses. Requests pay
//   (a) bio preparation / block-layer entry      (~10.04 us average)
//   (b) request-queue processing: insertion,
//       merging, sorting, staging, dispatch      (~21.88 us average)
//   (c) driver dispatch-queue handoff            (~2.1 us average)
// before the device sees them. (a) and (b) are log-normal: the paper calls
// out that variance in preparation/batching drags the mean far above the
// median. Merging is real: contiguous bios in one plug batch collapse into
// single device requests, which is why the disk numbers survive sequential
// workloads.
#ifndef LEAP_SRC_BLOCKLAYER_REQUEST_QUEUE_H_
#define LEAP_SRC_BLOCKLAYER_REQUEST_QUEUE_H_

#include <span>
#include <utility>
#include <vector>

#include "src/blocklayer/bio.h"
#include "src/obs/trace_recorder.h"
#include "src/sim/io_request.h"
#include "src/sim/latency_model.h"
#include "src/storage/backing_store.h"

namespace leap {

struct BlockLayerConfig {
  // Stage (a): bio allocation, checks, submit_bio path.
  SimTimeNs prep_median_ns = 8100;
  double prep_sigma = 0.62;
  SimTimeNs prep_min_ns = 1500;
  // Stage (b): elevator insertion/merge/sort + plug/staging + batching.
  SimTimeNs queue_median_ns = 17200;
  double queue_sigma = 0.66;
  SimTimeNs queue_min_ns = 3000;
  // Stage (c): dispatch-queue to driver handoff.
  SimTimeNs dispatch_mean_ns = 2100;
  SimTimeNs dispatch_stddev_ns = 350;
  SimTimeNs dispatch_min_ns = 900;
};

class RequestQueue {
 public:
  RequestQueue(const BlockLayerConfig& config, BackingStore* store);

  // Submits one plug batch of tagged read requests: the demand page (the
  // entry tagged IoClass::kDemandRead) plus any readahead pages the fault
  // handler queued with it (tagged kPrefetch). The whole batch goes
  // through the staging stages once (they are batched by design), is
  // sorted and merged, then dispatched in elevator order. `ready_at[i]`
  // receives the completion time of `reqs[i]` - bio-granular, so the
  // demand page (identified by its tag, not by its position) can be
  // delayed behind lower-addressed prefetch pages the elevator chose to
  // service first. Requires ready_at.size() == reqs.size() (asserted).
  void SubmitBatch(std::span<const IoRequest> reqs, SimTimeNs now, Rng& rng,
                   std::span<SimTimeNs> ready_at);

  // Single tagged page write through the same stages (swap-out /
  // writeback path).
  SimTimeNs SubmitWrite(const IoRequest& req, SimTimeNs now, Rng& rng);

  // Builds sorted, merged device requests from a batch of tagged reads.
  // Duplicate slots collapse with the highest-priority class winning
  // (a demand read absorbs a prefetch for the same slot, never the other
  // way around). Exposed for unit tests of the elevator behavior.
  static std::vector<Bio> MergeAndSort(std::span<const IoRequest> reqs,
                                       SimTimeNs now);

  uint64_t requests_dispatched() const { return requests_dispatched_; }
  uint64_t bios_merged() const { return bios_merged_; }

  // Flight recorder: each read batch records one kBlockAdmit span (admit
  // -> device dispatch, the staging time Leap's path bypasses). `host_id`
  // labels the span's track; the block layer itself sits above the NIC
  // and never learns its uplink otherwise.
  void SetTrace(TraceRecorder* trace, uint32_t host_id) {
    trace_ = trace;
    trace_host_id_ = host_id;
  }

 private:
  SimTimeNs StageCost(Rng& rng);

  BlockLayerConfig config_;
  BackingStore* store_;
  LatencyModel prep_;
  LatencyModel queue_;
  LatencyModel dispatch_;
  uint64_t requests_dispatched_ = 0;
  uint64_t bios_merged_ = 0;
  TraceRecorder* trace_ = nullptr;
  uint32_t trace_host_id_ = 0;

  // Per-batch scratch, reused across submissions so the steady-state miss
  // path performs no heap allocation (batch sizes are bounded by the
  // prefetch-candidate cap).
  std::vector<IoRequest> sorted_scratch_;
  std::vector<Bio> requests_scratch_;
  std::vector<SimTimeNs> run_ready_scratch_;
  std::vector<std::pair<SwapSlot, SimTimeNs>> completion_scratch_;
};

}  // namespace leap

#endif  // LEAP_SRC_BLOCKLAYER_REQUEST_QUEUE_H_
