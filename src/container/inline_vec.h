// Fixed-capacity inline vector: vector-like interface, storage embedded in
// the object, no heap allocation ever. Used for prefetch candidate lists
// and I/O batch scratch on the fault path, whose sizes are bounded by
// compile-time caps (see kMaxPrefetchCandidates in src/sim/types.h).
//
// T must be default-constructible and copyable (the intended use is scalar
// slots/timestamps). Overflowing push_back is a programming error: it
// asserts in debug builds and drops the element in release builds, so
// callers must clamp generation loops to capacity (or check full()).
#ifndef LEAP_SRC_CONTAINER_INLINE_VEC_H_
#define LEAP_SRC_CONTAINER_INLINE_VEC_H_

#include <cassert>
#include <cstddef>
#include <type_traits>

namespace leap {

template <typename T, size_t N>
class InlineVec {
 public:
  using value_type = T;

  InlineVec() = default;

  static constexpr size_t capacity() { return N; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == N; }

  void push_back(const T& v) {
    assert(size_ < N && "InlineVec overflow");
    if (size_ < N) {
      items_[size_++] = v;
    }
  }

  void pop_back() {
    assert(size_ > 0);
    if (size_ > 0) {
      --size_;
    }
  }

  void clear() { size_ = 0; }

  // Grows (value-initialized) or shrinks to exactly `n` elements.
  void resize(size_t n) {
    assert(n <= N);
    if (n > N) {
      n = N;
    }
    for (size_t i = size_; i < n; ++i) {
      items_[i] = T{};
    }
    size_ = n;
  }

  T& operator[](size_t i) {
    assert(i < size_);
    return items_[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return items_[i];
  }

  T& back() { return items_[size_ - 1]; }
  const T& back() const { return items_[size_ - 1]; }

  T* data() { return items_; }
  const T* data() const { return items_; }
  T* begin() { return items_; }
  T* end() { return items_ + size_; }
  const T* begin() const { return items_; }
  const T* end() const { return items_ + size_; }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) {
      return false;
    }
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a.items_[i] == b.items_[i])) {
        return false;
      }
    }
    return true;
  }

  // Element-wise comparison against any sized range (e.g. std::vector in
  // test expectations).
  template <typename C>
    requires(!std::is_same_v<C, InlineVec> &&
             requires(const C& c) { c.size(); c.begin(); })
  friend bool operator==(const InlineVec& a, const C& b) {
    if (a.size_ != b.size()) {
      return false;
    }
    auto it = b.begin();
    for (size_t i = 0; i < a.size_; ++i, ++it) {
      if (!(a.items_[i] == *it)) {
        return false;
      }
    }
    return true;
  }

 private:
  T items_[N] = {};
  size_t size_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_CONTAINER_INLINE_VEC_H_
