// Open-addressing robin-hood flat hash map.
//
// The simulator's steady-state access path is dominated by small-key map
// lookups (page tables, the swap cache, swap-slot maps, LRU indexes).
// std::unordered_map pays a pointer chase plus a heap allocation per node;
// this map keeps keys, values, and probe metadata in three flat arrays, so
// a lookup is one mix, one indexed load, and a short linear probe - and
// inserting/erasing in steady state never touches the allocator.
//
// Requirements on the parameters:
//  - Key: default-constructible, movable, equality-comparable.
//  - Value: default-constructible, movable (move-only types like
//    std::unique_ptr are fine).
//  - Hash: stateless callable over Key. The raw hash is finalized with a
//    Fibonacci multiply, so identity hashes (std::hash on integers) are
//    safe even for strided key sets.
//
// Invalidation: pointers returned by Find and iterators stay valid until
// the next mutation (insert, erase, rehash). Robin-hood erase backward-
// shifts trailing entries, so unlike std::unordered_map, erasing one key
// may move *other* entries.
//
// Iteration order is deterministic for a fixed sequence of operations
// (array order), which keeps simulations bit-reproducible across runs.
#ifndef LEAP_SRC_CONTAINER_FLAT_MAP_H_
#define LEAP_SRC_CONTAINER_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace leap {

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatMap {
 public:
  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return meta_.size(); }

  // Pre-sizes the table for `n` entries without rehashing on the way there.
  void Reserve(size_t n) {
    size_t want = kMinCapacity;
    // Smallest power of two with n entries under the max load factor.
    while (want * kMaxLoadDen < n * kMaxLoadNum) {
      want *= 2;
    }
    if (want > meta_.size()) {
      Rehash(want);
    }
  }

  V* Find(const K& key) {
    return const_cast<V*>(std::as_const(*this).Find(key));
  }

  const V* Find(const K& key) const {
    if (size_ == 0) {
      return nullptr;
    }
    size_t pos = HomeIndex(key);
    uint32_t dist = 1;
    // Robin-hood invariant: once resident entries are closer to home than
    // our probe is long, the key cannot be further along.
    while (meta_[pos] >= dist) {
      if (keys_[pos] == key) {
        return &values_[pos];
      }
      pos = (pos + 1) & mask_;
      ++dist;
    }
    return nullptr;
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  // Inserts a default-constructed value if `key` is absent. Returns the
  // value slot and whether an insert happened.
  std::pair<V*, bool> Emplace(const K& key) {
    if (V* existing = Find(key)) {
      return {existing, false};
    }
    EnsureRoom();
    return {InsertFresh(key), true};
  }

  // Inserts `value` if `key` is absent; otherwise leaves the map unchanged.
  std::pair<V*, bool> Emplace(const K& key, V value) {
    auto [slot, inserted] = Emplace(key);
    if (inserted) {
      *slot = std::move(value);
    }
    return {slot, inserted};
  }

  V& operator[](const K& key) { return *Emplace(key).first; }

  // Removes `key`; returns true if it was present.
  bool Erase(const K& key) {
    if (size_ == 0) {
      return false;
    }
    size_t pos = HomeIndex(key);
    uint32_t dist = 1;
    while (meta_[pos] >= dist) {
      if (keys_[pos] == key) {
        EraseAt(pos);
        return true;
      }
      pos = (pos + 1) & mask_;
      ++dist;
    }
    return false;
  }

  // Drops all entries but keeps the table storage (no deallocation).
  void Clear() {
    for (size_t i = 0; i < meta_.size(); ++i) {
      if (meta_[i] != 0) {
        keys_[i] = K{};
        values_[i] = V{};
        meta_[i] = 0;
      }
    }
    size_ = 0;
  }

  // --- iteration (array order; deterministic for a fixed op sequence) -----

  template <bool kConst>
  class Iter {
   public:
    using MapT = std::conditional_t<kConst, const FlatMap, FlatMap>;
    using reference = std::pair<const K&,
                                std::conditional_t<kConst, const V&, V&>>;

    Iter(MapT* map, size_t pos) : map_(map), pos_(pos) { SkipEmpty(); }

    reference operator*() const {
      return {map_->keys_[pos_], map_->values_[pos_]};
    }
    Iter& operator++() {
      ++pos_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const Iter& other) const { return pos_ == other.pos_; }
    bool operator!=(const Iter& other) const { return pos_ != other.pos_; }

   private:
    void SkipEmpty() {
      while (pos_ < map_->meta_.size() && map_->meta_[pos_] == 0) {
        ++pos_;
      }
    }
    MapT* map_;
    size_t pos_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, meta_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, meta_.size()); }

 private:
  static constexpr size_t kMinCapacity = 16;
  // Max load factor 3/4.
  static constexpr size_t kMaxLoadNum = 4;
  static constexpr size_t kMaxLoadDen = 3;

  size_t HomeIndex(const K& key) const {
    // Fibonacci finalizer: spreads identity hashes across the table while
    // staying deterministic.
    const uint64_t h =
        static_cast<uint64_t>(Hash{}(key)) * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(h >> shift_);
  }

  void EnsureRoom() {
    if (meta_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * kMaxLoadNum > meta_.size() * kMaxLoadDen) {
      Rehash(meta_.size() * 2);
    }
  }

  // Robin-hood insert of a key known to be absent, with room guaranteed.
  // Returns the slot where `key`'s value lives.
  V* InsertFresh(const K& key) {
    K carry_key = key;
    V carry_value{};
    uint32_t carry_dist = 1;
    size_t pos = HomeIndex(key);
    V* result = nullptr;
    while (true) {
      if (meta_[pos] == 0) {
        keys_[pos] = std::move(carry_key);
        values_[pos] = std::move(carry_value);
        meta_[pos] = carry_dist;
        if (result == nullptr) {
          result = &values_[pos];
        }
        ++size_;
        return result;
      }
      if (meta_[pos] < carry_dist) {
        // Rich resident: it can afford to move further; take its slot.
        std::swap(keys_[pos], carry_key);
        std::swap(values_[pos], carry_value);
        std::swap(meta_[pos], carry_dist);
        if (result == nullptr) {
          result = &values_[pos];
        }
      }
      pos = (pos + 1) & mask_;
      ++carry_dist;
      assert(carry_dist < meta_.size());
    }
  }

  void EraseAt(size_t pos) {
    // Backward shift: pull the probe chain one slot toward home so no
    // tombstones accumulate and probe lengths stay minimal.
    size_t next = (pos + 1) & mask_;
    while (meta_[next] > 1) {
      keys_[pos] = std::move(keys_[next]);
      values_[pos] = std::move(values_[next]);
      meta_[pos] = meta_[next] - 1;
      pos = next;
      next = (pos + 1) & mask_;
    }
    keys_[pos] = K{};
    values_[pos] = V{};
    meta_[pos] = 0;
    --size_;
  }

  void Rehash(size_t new_capacity) {
    std::vector<K> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    std::vector<uint32_t> old_meta = std::move(meta_);

    keys_.assign(new_capacity, K{});
    values_.clear();
    values_.resize(new_capacity);  // V may be move-only; no fill from a copy
    meta_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    shift_ = 64 - Log2(new_capacity);
    size_ = 0;

    for (size_t i = 0; i < old_meta.size(); ++i) {
      if (old_meta[i] != 0) {
        *InsertFresh(old_keys[i]) = std::move(old_values[i]);
      }
    }
  }

  static int Log2(size_t pow2) {
    int bits = 0;
    while ((size_t{1} << bits) < pow2) {
      ++bits;
    }
    return bits;
  }

  std::vector<K> keys_;
  std::vector<V> values_;
  std::vector<uint32_t> meta_;  // 0 = empty, else probe distance + 1
  size_t mask_ = 0;
  int shift_ = 64;
  size_t size_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_CONTAINER_FLAT_MAP_H_
