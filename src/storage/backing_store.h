// Backing-store interface: where cold pages live (disk or remote memory).
//
// Reads are submitted in already-merged batches (the block layer sorts and
// merges before dispatch; Leap's lean path submits per-page) of tagged
// IoRequest descriptors - each entry carries its slot plus the IoClass /
// tenant metadata the lower transports schedule and account by. Each store
// reports a completion time per page so the caller can distinguish the
// demand page's readiness from trailing prefetch pages.
#ifndef LEAP_SRC_STORAGE_BACKING_STORE_H_
#define LEAP_SRC_STORAGE_BACKING_STORE_H_

#include <span>
#include <string>

#include "src/sim/io_request.h"
#include "src/sim/rng.h"
#include "src/sim/types.h"

namespace leap {

class BackingStore {
 public:
  virtual ~BackingStore() = default;

  // Issues reads for `reqs` starting at `now`; writes each page's
  // completion time into `ready_at` (same indexing as `reqs`). Local
  // devices ignore the tags; the remote path schedules by them.
  virtual void ReadPages(std::span<const IoRequest> reqs, SimTimeNs now,
                         Rng& rng, std::span<SimTimeNs> ready_at) = 0;

  // Issues one page write; returns its completion time.
  virtual SimTimeNs WritePage(const IoRequest& req, SimTimeNs now,
                              Rng& rng) = 0;

  virtual std::string name() const = 0;

  // Mean device latency of a single random 4KB read, for reporting.
  virtual double MeanReadLatencyNs() const = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_STORAGE_BACKING_STORE_H_
