// NAND SSD model: ~20 us average 4KB read (paper Figure 1), several
// independent channels, so modest internal parallelism before queueing.
#ifndef LEAP_SRC_STORAGE_SSD_H_
#define LEAP_SRC_STORAGE_SSD_H_

#include <vector>

#include "src/sim/latency_model.h"
#include "src/storage/backing_store.h"

namespace leap {

struct SsdConfig {
  SimTimeNs read_mean_ns = 20 * kNsPerUs;
  SimTimeNs read_stddev_ns = 5 * kNsPerUs;
  SimTimeNs read_min_ns = 8 * kNsPerUs;
  SimTimeNs write_mean_ns = 60 * kNsPerUs;
  SimTimeNs write_stddev_ns = 15 * kNsPerUs;
  SimTimeNs write_min_ns = 25 * kNsPerUs;
  size_t channels = 4;
};

class Ssd : public BackingStore {
 public:
  explicit Ssd(const SsdConfig& config = SsdConfig());

  void ReadPages(std::span<const IoRequest> reqs, SimTimeNs now, Rng& rng,
                 std::span<SimTimeNs> ready_at) override;
  SimTimeNs WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) override;
  std::string name() const override { return "ssd"; }
  double MeanReadLatencyNs() const override { return read_.MeanNs(); }

 private:
  // Channel selected by slot (static striping, like flash dies).
  size_t ChannelFor(SwapSlot slot) const { return slot % busy_until_.size(); }

  SsdConfig config_;
  LatencyModel read_;
  LatencyModel write_;
  std::vector<SimTimeNs> busy_until_;
};

}  // namespace leap

#endif  // LEAP_SRC_STORAGE_SSD_H_
