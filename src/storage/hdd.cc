#include "src/storage/hdd.h"

#include <algorithm>
#include <cmath>

namespace leap {

Hdd::Hdd(const HddConfig& config)
    : config_(config),
      seek_(LatencyModel::LogNormal(config.seek_median_ns, config.seek_sigma,
                                    config.seek_min_ns)) {}

SimTimeNs Hdd::AccessOne(SwapSlot slot, SimTimeNs start, Rng& rng) {
  SimTimeNs service = config_.transfer_ns;
  if (head_position_ == kInvalidSlot || slot != head_position_ + 1) {
    // Distance-graded positioning cost: short hops stay within the track
    // or cylinder (mostly rotational delay); long hops pay the full
    // amortized seek. Distances are in 4KB pages.
    const uint64_t distance =
        head_position_ == kInvalidSlot
            ? ~0ULL
            : (slot > head_position_ ? slot - head_position_
                                     : head_position_ - slot);
    double scale = 1.0;
    if (distance <= 4) {
      scale = 0.2;  // same track: settle + partial rotation
    } else if (distance <= 64) {
      scale = 0.6;  // nearby track
    } else if (distance <= 1024) {
      scale = 0.85;  // nearby cylinder
    }
    service += static_cast<SimTimeNs>(
        scale * static_cast<double>(seek_.Sample(rng)));
  }
  head_position_ = slot;
  return start + service;
}

void Hdd::ReadPages(std::span<const IoRequest> reqs, SimTimeNs now, Rng& rng,
                    std::span<SimTimeNs> ready_at) {
  SimTimeNs t = std::max(now, busy_until_);
  for (size_t i = 0; i < reqs.size(); ++i) {
    t = AccessOne(reqs[i].slot, t, rng);
    ready_at[i] = t;
  }
  busy_until_ = t;
}

SimTimeNs Hdd::WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) {
  const SimTimeNs start = std::max(now, busy_until_);
  const SimTimeNs done = AccessOne(req.slot, start, rng);
  busy_until_ = done;
  return done;
}

double Hdd::MeanReadLatencyNs() const {
  return seek_.MeanNs() + static_cast<double>(config_.transfer_ns);
}

}  // namespace leap
