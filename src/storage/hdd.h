// Rotational disk model.
//
// Random 4KB reads pay a seek+rotation cost (log-normal, calibrated so the
// average lands near the paper's measured 91.48 us Figure 1 stage value);
// physically sequential follow-on reads pay only the transfer time. A
// single head: requests serialize behind each other (busy chaining).
#ifndef LEAP_SRC_STORAGE_HDD_H_
#define LEAP_SRC_STORAGE_HDD_H_

#include "src/sim/latency_model.h"
#include "src/storage/backing_store.h"

namespace leap {

struct HddConfig {
  // Seek + rotational cost of a random access; median/sigma of log-normal.
  // 56 us median * exp(0.55^2/2) + 26 us transfer ~ 91 us average random
  // 4KB access, the paper's Figure 1 measurement.
  SimTimeNs seek_median_ns = 56 * kNsPerUs;
  double seek_sigma = 0.55;
  SimTimeNs seek_min_ns = 25 * kNsPerUs;
  // Per-4KB transfer once positioned (~150 MB/s streaming).
  SimTimeNs transfer_ns = 26 * kNsPerUs;
};

class Hdd : public BackingStore {
 public:
  explicit Hdd(const HddConfig& config = HddConfig());

  void ReadPages(std::span<const IoRequest> reqs, SimTimeNs now, Rng& rng,
                 std::span<SimTimeNs> ready_at) override;
  SimTimeNs WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) override;
  std::string name() const override { return "hdd"; }
  double MeanReadLatencyNs() const override;

 private:
  SimTimeNs AccessOne(SwapSlot slot, SimTimeNs start, Rng& rng);

  HddConfig config_;
  LatencyModel seek_;
  SimTimeNs busy_until_ = 0;
  SwapSlot head_position_ = kInvalidSlot;
};

}  // namespace leap

#endif  // LEAP_SRC_STORAGE_HDD_H_
