// Multi-host memory-disaggregation cluster: N host machines and M memory
// nodes on one shared clock, connected by a congestion-aware fabric.
//
// This is the composition point the single-host Machine could not express:
// Figure 13 scaled out. Hosts contend for node downlinks (remote latency
// rises with cluster load), a pluggable SlabPlacer spreads slabs across the
// donor pool, and scenario hooks inject node failure/recovery (with slab
// repair and re-replication) and host join/leave mid-run - all on the
// shared EventQueue, so every scenario interleaves deterministically with
// foreground faults and same-seed cluster runs are bit-identical.
#ifndef LEAP_SRC_RUNTIME_CLUSTER_H_
#define LEAP_SRC_RUNTIME_CLUSTER_H_

#include <array>
#include <iosfwd>
#include <memory>
#include <vector>

#include "src/cluster/fabric.h"
#include "src/cluster/health_monitor.h"
#include "src/cluster/slab_placer.h"
#include "src/obs/stats_sampler.h"
#include "src/obs/trace_recorder.h"
#include "src/runtime/app_runner.h"
#include "src/runtime/machine.h"
#include "src/sim/event_queue.h"
#include "src/stats/counters.h"
#include "src/stats/histogram.h"

namespace leap {

struct ClusterConfig {
  size_t hosts = 4;
  size_t nodes = 2;
  size_t node_capacity_slabs = 4096;
  // Per-host template; medium is forced to kRemote and each host gets a
  // distinct derived seed.
  MachineConfig host;
  FabricConfig fabric;
  PlacementPolicy placement = PlacementPolicy::kPowerOfTwo;
  uint64_t seed = 42;
  // Gray-failure resilience (PR 6). `resilience` configures every host's
  // demand-read mitigation (deadline/retry, hedging, gray avoidance);
  // disabled by default, and a disabled config leaves the cluster
  // bit-identical to pre-PR-6 runs. The health monitor is created when
  // either flag asks for it: detection without mitigation
  // (health_monitor_enabled alone) is how a benchmark measures the
  // detection window on an otherwise-unmitigated run, since feeding the
  // monitor is pure observation and perturbs nothing.
  ResilienceConfig resilience;
  HealthMonitorConfig health;
  bool health_monitor_enabled = false;
  // Observability (PR 7). Both default off, and off means OFF: no recorder
  // is allocated, every layer's trace pointer stays null (one predicted
  // branch per would-be event), the sampler schedules nothing, and runs
  // are bit-identical to a build without this subsystem.
  TraceConfig trace;
  StatsSamplerConfig sampler;
};

// One workload bound to a host in the cluster.
struct ClusterAppSpec {
  size_t host = 0;
  Pid pid = 0;
  AccessStream* stream = nullptr;
  RunConfig config;
};

// Cluster-wide accounting snapshot.
struct ClusterStats {
  // Sum of every host's counters plus the cluster's own scenario counters
  // (node failures/recoveries, host joins/leaves).
  Counters totals;
  std::vector<size_t> node_slabs;     // mapped slabs per node
  std::vector<uint64_t> node_reads;   // page reads served per node
  std::vector<uint64_t> node_writes;  // page writes absorbed per node
  uint64_t fabric_ops = 0;
  uint64_t fabric_bytes = 0;
  // Per-link per-IoClass op/byte totals (index with
  // static_cast<size_t>(IoClass)): who is using each uplink/downlink, and
  // for what. This is what makes "the antagonist's prefetches are eating
  // node 1's downlink" a measurable statement.
  std::vector<LinkClassCounts> host_uplink_classes;   // per host
  std::vector<LinkClassCounts> node_downlink_classes;  // per node
  // Fabric queue-delay EWMA per IoClass (repair/writeback congestion no
  // longer pollutes the demand/prefetch signal the governor keys on),
  // plus the whole-run per-class mean (the reporting quantity; the EWMA
  // is a point-in-time snapshot).
  std::array<double, kIoClassCount> class_queue_delay_ewma_ns{};
  std::array<double, kIoClassCount> class_queue_delay_mean_ns{};
  // Mean end-to-end sojourn per class (IoRequest::enqueue_ts -> fabric
  // completion): queue delay says what the link added; this says what the
  // class's ops cost all-in.
  std::array<double, kIoClassCount> class_sojourn_mean_ns{};
  // Health view per node (empty when no health monitor is attached):
  // read-latency EWMA and the monitor's verdict at snapshot time.
  std::vector<double> node_health_ewma_ns;
  std::vector<NodeHealth> node_health_state;
  // Per-stage latency attribution (fabric's telescoped decomposition of
  // every stamped op's sojourn): where demand-read time actually went.
  StageBreakdown stages;

  // Tiered far memory: resident pages per tier (index with kTierCxl /
  // kTierRemote / kTierSsd), summed over hosts. Empty unless at least one
  // host runs a TieredStore; migration volumes live in `totals`
  // (tier_promotions / tier_demotions / tier_spills).
  std::vector<size_t> tier_pages;

  // Placement skew: max - min mapped slabs across nodes.
  size_t SlabImbalance() const;

  // Convenience sums over one class across all downlinks.
  uint64_t ClassOps(IoClass cls) const;
  uint64_t ClassBytes(IoClass cls) const;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  size_t num_hosts() const { return hosts_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  Machine& host(size_t i) { return *hosts_[i]; }
  RemoteAgent& node(size_t i) { return *nodes_[i]; }
  Fabric& fabric() { return *fabric_; }
  EventQueue& events() { return events_; }
  Counters& scenario_counters() { return counters_; }

  // --- membership ---------------------------------------------------------
  // Host join: a new machine wired to the shared clock/pool/fabric.
  size_t AddHost();
  // Host leave: returns its slabs to the pool and stops its workloads.
  void RemoveHost(size_t host);
  bool HostAlive(size_t host) const { return alive_[host]; }

  // --- failure scenarios (run on the shared clock) ------------------------
  // At `at`: the node fails, and every live host re-maps and re-replicates
  // the slabs that lost a replica (repair traffic rides the fabric).
  void ScheduleNodeFailure(uint32_t node, SimTimeNs at);
  void ScheduleNodeRecovery(uint32_t node, SimTimeNs at);
  void ScheduleHostLeave(size_t host, SimTimeNs at);
  // Correlated failure: every node of `group` (one rack / failure domain)
  // fails at the same instant - all fail FIRST, then repair runs, so a
  // slab whose whole replica set sat in the domain finds no survivor to
  // rebuild from (the scenario replica placement must defend against).
  void ScheduleCorrelatedFailure(std::vector<uint32_t> group, SimTimeNs at);
  // Gray node: at `at` the node's downlink serializes `stretch`x slower;
  // restored to full speed at `until` when until > at (0 = stays gray).
  void ScheduleNodeGray(uint32_t node, double stretch, SimTimeNs at,
                        SimTimeNs until = 0);
  // Transient packet-delay spike: flat +extra_ns on every op to the node
  // during [at, until) (until = 0 leaves it in force).
  void ScheduleNodeDelaySpike(uint32_t node, SimTimeNs extra_ns, SimTimeNs at,
                              SimTimeNs until = 0);
  // Nullptr unless ClusterConfig enabled resilience or the monitor.
  const HealthMonitor* health_monitor() const { return health_monitor_.get(); }
  // Nullptr unless ClusterConfig::trace.enabled / sampler.enabled.
  TraceRecorder* trace() { return trace_.get(); }
  const TraceRecorder* trace() const { return trace_.get(); }
  StatsSampler* sampler() { return sampler_.get(); }
  const StatsSampler* sampler() const { return sampler_.get(); }

  // Runs all workloads concurrently across the cluster: accesses interleave
  // in global simulated-time order, contending for DRAM per host and for
  // the shared fabric/node downlinks across hosts.
  std::vector<RunResult> Run(std::vector<ClusterAppSpec> specs);

  // Remote (non-resident) access latency per host, recorded by Run.
  const Histogram& host_remote_latency(size_t host) const {
    return host_remote_hist_[host];
  }

  ClusterStats Stats() const;

  // One-call human-readable dump of Stats(): counter totals, per-node
  // service/health tables, per-link per-class traffic, and the demand
  // stage breakdown. The benches print this instead of five hand-rolled
  // loops each.
  void DumpStats(std::ostream& out) const;

 private:
  // Sampler collector: snapshots governor budgets, fabric EWMAs, health
  // states, per-host memory occupancy, and the windowed demand histogram
  // (reset per tick). Strictly read-only against simulation state.
  void CollectSample(SimTimeNs now, StatsSample& sample);

  ClusterConfig config_;
  EventQueue events_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<SlabPlacer> placer_;
  std::vector<std::unique_ptr<RemoteAgent>> nodes_;
  std::vector<std::unique_ptr<Machine>> hosts_;
  std::vector<bool> alive_;
  std::vector<Histogram> host_remote_hist_;
  std::unique_ptr<HealthMonitor> health_monitor_;  // shared by all hosts
  std::unique_ptr<TraceRecorder> trace_;   // null = tracing off
  std::unique_ptr<StatsSampler> sampler_;  // null = sampling off
  // Demand-miss latency within the current sampler window (reset on tick).
  Histogram demand_window_hist_;
  Counters counters_;  // cluster-level scenario events
  Rng host_seeder_;
};

}  // namespace leap

#endif  // LEAP_SRC_RUNTIME_CLUSTER_H_
