// Calibrated machine configurations for the systems the paper evaluates:
//   - Disk swap (default Linux path to HDD/SSD)
//   - Disaggregated VMM, default path (Infiniswap-like)
//   - Disaggregated VMM + Leap
//   - Disaggregated VFS, default path (Remote-Regions-like)
//   - Disaggregated VFS + Leap
//
// Calibration targets (paper Figure 1 / section 2.2 / Figure 2):
//   default D-VMM miss  ~38.3 us mean, ~1 us hit floor
//   disk miss           ~125.5 us mean
//   Leap miss           ~6.4 us mean, 0.27 us hit
//   D-VFS default       lighter software stack, 0.54 us hit floor
#ifndef LEAP_SRC_RUNTIME_PRESETS_H_
#define LEAP_SRC_RUNTIME_PRESETS_H_

#include "src/runtime/machine.h"

namespace leap {

// Legacy data path to a spinning/solid-state swap device.
MachineConfig DiskSwapConfig(Medium medium, PrefetchKind prefetcher,
                             size_t total_frames, uint64_t seed);

// Infiniswap-style disaggregated VMM over the default kernel path.
MachineConfig DefaultVmmConfig(PrefetchKind prefetcher, size_t total_frames,
                               uint64_t seed);

// Disaggregated VMM with the full Leap stack (lean path + majority
// prefetcher + eager eviction).
MachineConfig LeapVmmConfig(size_t total_frames, uint64_t seed);

// Remote-Regions-style disaggregated VFS over the default path.
MachineConfig DefaultVfsConfig(PrefetchKind prefetcher, size_t total_frames,
                               size_t vfs_cache_pages, uint64_t seed);

// Disaggregated VFS with Leap.
MachineConfig LeapVfsConfig(size_t total_frames, size_t vfs_cache_pages,
                            uint64_t seed);

}  // namespace leap

#endif  // LEAP_SRC_RUNTIME_PRESETS_H_
