#include "src/runtime/shard_plan.h"

#include <algorithm>

namespace leap {

ShardPlan BuildShardPlan(size_t hosts, size_t nodes, size_t shards) {
  ShardPlan plan;
  plan.shards = std::clamp<size_t>(shards, 1, std::max<size_t>(
                                                 1, std::max(hosts, nodes)));
  plan.host_shard.resize(hosts);
  plan.node_shard.resize(nodes);
  plan.shard_hosts.resize(plan.shards);
  plan.shard_nodes.resize(plan.shards);

  // Hosts: contiguous ceil-sized blocks, first (hosts % shards) blocks one
  // larger. Block assignment keeps each shard's host ids dense, so the
  // per-shard interleaving loop touches a contiguous id range.
  if (hosts > 0) {
    const size_t base = hosts / plan.shards;
    const size_t extra = hosts % plan.shards;
    size_t next = 0;
    for (size_t s = 0; s < plan.shards; ++s) {
      const size_t take = base + (s < extra ? 1 : 0);
      for (size_t i = 0; i < take; ++i, ++next) {
        plan.host_shard[next] = static_cast<uint32_t>(s);
        plan.shard_hosts[s].push_back(static_cast<uint32_t>(next));
      }
    }
  }

  // Nodes: round-robin, so donor capacity spreads evenly even when node
  // count is not a multiple of the shard count.
  for (size_t n = 0; n < nodes; ++n) {
    const size_t s = n % plan.shards;
    plan.node_shard[n] = static_cast<uint32_t>(s);
    plan.shard_nodes[s].push_back(static_cast<uint32_t>(n));
  }
  return plan;
}

SimTimeNs FabricLookaheadNs(const FabricConfig& config) {
  // One op's wire time at full speed: bytes * 8 bits / (gbps) ns.
  const double wire_ns =
      config.link_gbps <= 0.0
          ? 0.0
          : static_cast<double>(config.op_bytes) * 8.0 / config.link_gbps;
  const SimTimeNs horizon =
      config.base_min_ns + static_cast<SimTimeNs>(wire_ns);
  // A degenerate zero-latency fabric still needs a nonzero window to make
  // progress; 1ns keeps the protocol well-formed (everything lands next
  // window).
  return horizon > 0 ? horizon : 1;
}

}  // namespace leap
