#include "src/runtime/machine.h"

#include <algorithm>

namespace leap {
namespace {

// Non-owning delegate for MachineConfig::policy_override: the machine
// always owns its policy_ slot, so an injected external policy rides
// behind this forwarder.
class ForwardingPolicy : public PrefetchPolicy {
 public:
  explicit ForwardingPolicy(PrefetchPolicy* target) : target_(target) {}

  CandidateVec OnFault(const FaultContext& ctx) override {
    return target_->OnFault(ctx);
  }
  void OnCacheAccess(Pid pid, SwapSlot slot) override {
    target_->OnCacheAccess(pid, slot);
  }
  void OnPrefetchIssued(Pid pid, SwapSlot slot, SimTimeNs now) override {
    target_->OnPrefetchIssued(pid, slot, now);
  }
  void OnPrefetchComplete(Pid pid, SwapSlot slot,
                          SimTimeNs latency) override {
    target_->OnPrefetchComplete(pid, slot, latency);
  }
  void OnPrefetchHit(Pid pid, SwapSlot slot, SimTimeNs timeliness) override {
    target_->OnPrefetchHit(pid, slot, timeliness);
  }
  void OnPrefetchDropped(Pid pid, SwapSlot slot) override {
    target_->OnPrefetchDropped(pid, slot);
  }
  std::string_view name() const override { return target_->name(); }

 private:
  PrefetchPolicy* target_;
};

std::unique_ptr<PrefetchPolicy> MakePolicy(const MachineConfig& config) {
  if (config.policy_override != nullptr) {
    return std::make_unique<ForwardingPolicy>(config.policy_override);
  }
  return MakePrefetchPolicy(
      config.prefetcher, PolicyParams{config.leap, GhbConfig{},
                                      config.online_delta,
                                      config.profile_guided});
}

}  // namespace

Machine::Machine(const MachineConfig& config)
    : Machine(config, MachineEnv{}) {}

Machine::Machine(const MachineConfig& config, const MachineEnv& env)
    : config_(config),
      rng_(config.seed),
      events_(env.shared_events != nullptr ? env.shared_events
                                           : &owned_events_),
      host_id_(env.host_id),
      trace_(env.trace),
      frames_(config.total_frames) {
  if (config_.medium == Medium::kRemote) {
    std::vector<RemoteAgent*> nodes = env.remote_pool;
    if (nodes.empty()) {
      for (size_t i = 0; i < std::max<size_t>(1, config_.remote_nodes); ++i) {
        remote_nodes_.push_back(std::make_unique<RemoteAgent>(
            static_cast<uint32_t>(i), config_.node_capacity_slabs));
        nodes.push_back(remote_nodes_.back().get());
      }
    }
    host_agent_ = std::make_unique<HostAgent>(config_.host_agent,
                                              std::move(nodes),
                                              rng_.NextU64());
    if (env.fabric != nullptr) {
      host_agent_->BindFabric(env.fabric, env.host_id);
    }
    if (env.placer != nullptr) {
      host_agent_->SetPlacer(env.placer);
    }
    host_agent_->SetCounters(&counters_);
    host_agent_->SetTrace(trace_);
    // Donor-pool exhaustion degrades to the (slower) local SSD instead of
    // silently piling onto a full node; every overflow slab is counted.
    overflow_store_ = std::make_unique<Ssd>(config_.ssd);
    host_agent_->SetOverflowStore(overflow_store_.get());
    store_ = host_agent_.get();
    if (config_.tier.enabled) {
      // Tiered hierarchy: the data path now talks to the TieredStore,
      // which routes each page to cxl / the fabric path / local flash by
      // residency. Everything below (HostAgent mitigation, fabric QoS,
      // slab repair) is unchanged - it is simply one tier now.
      tiered_store_ = std::make_unique<TieredStore>(
          config_.tier, host_agent_.get(), overflow_store_.get());
      tiered_store_->SetCounters(&counters_);
      tiered_store_->SetTrace(trace_, host_id_);
      store_ = tiered_store_.get();
    }
  } else if (config_.medium == Medium::kHdd) {
    local_store_ = std::make_unique<Hdd>(config_.hdd);
    store_ = local_store_.get();
  } else {
    local_store_ = std::make_unique<Ssd>(config_.ssd);
    store_ = local_store_.get();
  }

  if (config_.path == PathKind::kDefault) {
    data_path_ =
        std::make_unique<DefaultDataPath>(config_.default_path, store_);
  } else {
    data_path_ = std::make_unique<LeapDataPath>(config_.leap_path, store_);
  }
  data_path_->SetTrace(trace_, host_id_);
  policy_ = MakePolicy(config_);
  if (config_.budget.enabled) {
    governor_ = std::make_unique<BudgetGovernor>(config_.budget, &swap_);
  }
  kswapd_scratch_.reserve(config_.kswapd_scan_batch);
  ScheduleKswapd(config_.kswapd_period_ns);
  if (tiered_store_ != nullptr && config_.tier.migrator_enabled) {
    tier_migrator_ = std::make_unique<TierMigrator>(
        config_.tier, events_, tiered_store_.get(), rng_.NextU64());
    tier_migrator_->Start(config_.tier.migrate_period_ns);
  }
}

FaultContext Machine::MakeFaultContext(Pid pid, SwapSlot slot,
                                       SimTimeNs now) {
  FaultContext ctx(pid, slot, now);
  ctx.free_frames = frames_.free_count();
  ctx.total_frames = config_.total_frames;
  ctx.inflight_prefetches = unconsumed_prefetched_;
  if (host_agent_ != nullptr) {
    ctx.congestion = host_agent_->congestion_signals();
  }
  if (governor_ != nullptr) {
    ctx.budget_remaining = governor_->BudgetFor(pid, now, ctx.congestion);
  }
  return ctx;
}

CandidateVec Machine::GeneratePrefetches(const FaultContext& ctx) {
  CandidateVec prefetches =
      FilterPrefetchCandidates(policy_->OnFault(ctx), ctx.slot);
  if (prefetches.size() > ctx.budget_remaining) {
    prefetches.resize(ctx.budget_remaining);  // governor's per-tenant clamp
  }
  return prefetches;
}

void Machine::NotifyPrefetchIssued(Pid pid, SwapSlot slot, SimTimeNs ready_at,
                                   SimTimeNs now) {
  counters_.Add(counter::kPrefetchIssued);
  ++unconsumed_prefetched_;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kPrefetchIssued;
    e.ts = now;
    e.dur_ns = ready_at > now ? ready_at - now : 0;
    e.slot = slot;
    e.host = host_id_;
    e.tenant = pid;
    e.cls = IoClass::kPrefetch;
    trace_->Record(e);
  }
  policy_->OnPrefetchIssued(pid, slot, now);
  policy_->OnPrefetchComplete(pid, slot,
                              ready_at > now ? ready_at - now : 0);
  if (governor_ != nullptr) {
    governor_->OnPrefetchIssued(pid, 1);
  }
}

void Machine::NotifyPrefetchHit(Pid pid, SwapSlot slot,
                                const CacheEntry& entry, SimTimeNs now) {
  counters_.Add(counter::kPrefetchHits);
  const SimTimeNs timeliness =
      now > entry.added_at ? now - entry.added_at : 0;
  timeliness_hist_.Record(timeliness);
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kPrefetchHit;
    e.ts = now;
    e.dur_ns = timeliness;
    e.slot = slot;
    e.host = host_id_;
    e.tenant = entry.pid;
    e.cls = IoClass::kPrefetch;
    trace_->Record(e);
  }
  if (unconsumed_prefetched_ > 0) {
    --unconsumed_prefetched_;
  }
  // The policy sees the accessing process (the do_swap_page pid, matching
  // v1); the governor's accuracy ledger credits the tenant that ISSUED the
  // prefetch (entry.pid) - in VFS mode the shared page cache lets another
  // process consume it, and crediting the accessor would read the issuer
  // as 0-accuracy, collapsing exactly the tenant whose prefetches hit.
  // Issued and Dropped are attributed to entry.pid the same way.
  policy_->OnPrefetchHit(pid, slot, timeliness);
  if (governor_ != nullptr) {
    governor_->OnPrefetchHit(entry.pid);
  }
}

void Machine::NotifyPrefetchDropped(SwapSlot slot, const CacheEntry& entry) {
  if (!entry.prefetched || entry.first_hit_at != 0) {
    return;
  }
  if (unconsumed_prefetched_ > 0) {
    --unconsumed_prefetched_;
  }
  if (trace_ != nullptr) {
    // The drop funnel carries no clock; the event is timestamped at the
    // prefetch's insertion (its lifetime start), which is when the wasted
    // bandwidth was spent anyway.
    TraceEvent e;
    e.kind = TraceEventKind::kPrefetchDropped;
    e.ts = entry.added_at;
    e.slot = slot;
    e.host = host_id_;
    e.tenant = entry.pid;
    e.cls = IoClass::kPrefetch;
    trace_->Record(e);
  }
  policy_->OnPrefetchDropped(entry.pid, slot);
  if (governor_ != nullptr) {
    governor_->OnPrefetchDropped(entry.pid);
  }
}

Pid Machine::CreateProcess(size_t cgroup_limit_pages) {
  const Pid pid = next_pid_++;
  auto state = std::make_unique<ProcessState>();
  state->cgroup.set_limit_pages(cgroup_limit_pages);
  processes_[pid] = std::move(state);
  return pid;
}

size_t Machine::resident_pages(Pid pid) const {
  const auto* state = processes_.Find(pid);
  return state == nullptr ? 0 : (*state)->table.resident_pages();
}

bool Machine::IsResident(Pid pid, Vpn vpn) const {
  const auto* state = processes_.Find(pid);
  return state != nullptr && (*state)->table.IsPresent(vpn);
}

void Machine::DrainEvents(SimTimeNs now) {
  if (now > last_event_drain_) {
    events_->RunUntil(now);
    last_event_drain_ = now;
  }
}

void Machine::ScheduleKswapd(SimTimeNs at) {
  events_->ScheduleAt(at, [this](SimTimeNs when) { KswapdTick(when); });
}

void Machine::KswapdTick(SimTimeNs now) {
  // Pass 1: retire consumed-but-lingering cache entries (lazy eviction's
  // background cleanup). Eager mode never accumulates these.
  size_t budget = config_.kswapd_scan_batch;
  if (stale_count_ > 0) {
    std::vector<SwapSlot>& to_free = kswapd_scratch_;
    to_free.clear();
    cache_.ForEach([&](SwapSlot slot, const CacheEntry& entry) {
      if (entry.first_hit_at != 0 && to_free.size() < budget) {
        to_free.push_back(slot);
      }
    });
    for (SwapSlot slot : to_free) {
      const auto entry = cache_.Remove(slot);
      if (entry.has_value()) {
        counters_.Add(counter::kLruScans);
        eviction_wait_hist_.Record(now > entry->first_hit_at
                                       ? now - entry->first_hit_at
                                       : 0);
        --stale_count_;
        counters_.Add(counter::kEvictions);
      }
    }
    budget -= std::min(budget, to_free.size());
  }

  // Pass 2: inactive-list aging - unconsumed prefetched pages that have
  // gone unreferenced for prefetch_ttl_ns have cycled to the inactive tail
  // and are reclaimed as pollution.
  if (config_.prefetch_ttl_ns != 0 && budget > 0) {
    std::vector<SwapSlot>& expired = kswapd_scratch_;
    expired.clear();
    cache_.ForEach([&](SwapSlot slot, const CacheEntry& entry) {
      if (entry.prefetched && entry.first_hit_at == 0 &&
          now > entry.added_at + config_.prefetch_ttl_ns &&
          expired.size() < budget) {
        expired.push_back(slot);
      }
    });
    for (SwapSlot slot : expired) {
      const auto entry = cache_.Remove(slot);
      if (entry.has_value()) {
        prefetch_fifo_.OnConsumed(slot);
        UnchargeCacheEntry(*entry);
        NotifyPrefetchDropped(slot, *entry);
        if (entry->pfn != kInvalidPfn) {
          frames_.Free(entry->pfn);
        }
        counters_.Add(counter::kEvictions);
        counters_.Add(counter::kPrefetchUnused);
      }
    }
    budget -= std::min(budget, expired.size());
  }

  // Pass 3: keep free frames above the low watermark by evicting cold
  // unconsumed cache pages.
  const size_t low = static_cast<size_t>(
      config_.low_watermark * static_cast<double>(config_.total_frames));
  const size_t high = static_cast<size_t>(
      config_.high_watermark * static_cast<double>(config_.total_frames));
  if (frames_.free_count() < low) {
    while (frames_.free_count() < high && budget > 0 &&
           ReclaimOneCacheVictim(now)) {
      --budget;
    }
  }
  ScheduleKswapd(now + config_.kswapd_period_ns);
}

bool Machine::ReclaimOneCacheVictim(SimTimeNs now) {
  SwapSlot victim = kInvalidSlot;
  if (config_.eviction == EvictionKind::kEagerLeap) {
    // Unconsumed prefetched pages leave FIFO (no history to rank them).
    const auto oldest = prefetch_fifo_.PopOldest();
    if (oldest.has_value()) {
      victim = *oldest;
    }
  }
  if (victim == kInvalidSlot) {
    // Lazy policy (or nothing in the FIFO): coldest cache entry overall.
    // Skip consumed entries: they hold no frame.
    for (int tries = 0; tries < 64; ++tries) {
      const auto coldest = cache_.ColdestSlot();
      if (!coldest.has_value()) {
        return false;
      }
      const CacheEntry* entry = cache_.Lookup(*coldest);
      if (entry != nullptr && entry->first_hit_at == 0) {
        victim = *coldest;
        break;
      }
      // Consumed entry at the cold end: retire it (counts as lazy-eviction
      // work) and continue searching.
      const auto removed = cache_.Remove(*coldest);
      if (removed.has_value() && removed->first_hit_at != 0) {
        eviction_wait_hist_.Record(now > removed->first_hit_at
                                       ? now - removed->first_hit_at
                                       : 0);
        --stale_count_;
      }
      counters_.Add(counter::kLruScans);
    }
    if (victim == kInvalidSlot) {
      return false;
    }
  }
  const auto entry = cache_.Remove(victim);
  if (!entry.has_value()) {
    return false;
  }
  prefetch_fifo_.OnConsumed(victim);  // drop any FIFO bookkeeping
  UnchargeCacheEntry(*entry);
  NotifyPrefetchDropped(victim, *entry);
  if (entry->pfn != kInvalidPfn) {
    frames_.Free(entry->pfn);
  }
  counters_.Add(counter::kEvictions);
  if (entry->prefetched && entry->first_hit_at == 0) {
    counters_.Add(counter::kPrefetchUnused);
  }
  return true;
}

SimTimeNs Machine::AllocateFrame(SimTimeNs now, Pfn* pfn) {
  // Allocation cost scales with the stale cache population the scan must
  // wade through - the waste Leap's eager eviction removes.
  const size_t scanned = std::min(stale_count_, config_.alloc_scan_cap);
  SimTimeNs cost = config_.alloc_base_ns +
                   static_cast<SimTimeNs>(scanned) *
                       config_.alloc_scan_per_entry_ns;
  auto allocated = frames_.Allocate();
  if (!allocated.has_value()) {
    // Direct reclaim: free a cache victim, else steal the coldest mapped
    // page from the largest process.
    if (!ReclaimOneCacheVictim(now)) {
      Pid fattest = 0;
      size_t fattest_resident = 0;
      for (const auto& [pid, state] : processes_) {
        if (state->table.resident_pages() > fattest_resident) {
          fattest_resident = state->table.resident_pages();
          fattest = pid;
        }
      }
      if (fattest != 0) {
        cost += EvictColdestOf(fattest, now);
      }
    } else {
      cost += config_.evict_cpu_ns;
    }
    allocated = frames_.Allocate();
    if (!allocated.has_value()) {
      // Pathological: no reclaimable memory. Charge a stall and fail soft.
      *pfn = kInvalidPfn;
      alloc_hist_.Record(cost);
      return cost;
    }
  }
  *pfn = *allocated;
  alloc_hist_.Record(cost);
  return cost;
}

SimTimeNs Machine::EvictColdestOf(Pid pid, SimTimeNs now) {
  ProcessState& proc = Proc(pid);
  const auto victim = proc.lru.PopColdest();
  if (!victim.has_value()) {
    return 0;
  }
  const auto entry = proc.table.Unmap(*victim);
  if (!entry.has_value()) {
    return 0;
  }
  proc.cgroup.Uncharge();
  const SwapSlot slot = swap_.SlotFor(pid, *victim);
  // Drop any cache entry still keyed by this slot (delete_from_swap_cache
  // semantics) so a later fault cannot hit stale state.
  const auto cached = cache_.Remove(slot);
  if (cached.has_value()) {
    prefetch_fifo_.OnConsumed(slot);
    UnchargeCacheEntry(*cached);
    NotifyPrefetchDropped(slot, *cached);
    if (cached->pfn != kInvalidPfn) {
      frames_.Free(cached->pfn);
    }
    if (cached->first_hit_at != 0) {
      --stale_count_;
      eviction_wait_hist_.Record(now > cached->first_hit_at
                                     ? now - cached->first_hit_at
                                     : 0);
    }
  }
  // Swap-out: dirty (or never-backed) pages go to the backing store
  // asynchronously; the device/NIC occupancy is modeled, the CPU moves on.
  if (entry->dirty) {
    data_path_->WritePage(EvictionWrite(slot, pid, now), now, rng_);
    counters_.Add(counter::kWritebacks);
    if (config_.medium == Medium::kRemote) {
      counters_.Add(counter::kRemoteWrites);
    }
  }
  frames_.Free(entry->pfn);
  counters_.Add(counter::kEvictions);
  return config_.evict_cpu_ns;
}

void Machine::OnPageDirtied(Pid pid, Vpn vpn) {
  // swap_free semantics: a re-dirtied page's backing copy is stale; drop
  // any cache state keyed by the old slot and release it so the next
  // eviction allocates a fresh one.
  if (config_.vfs_mode) {
    return;
  }
  const auto slot = swap_.FindSlot(pid, vpn);
  if (!slot.has_value()) {
    return;
  }
  const auto entry = cache_.Remove(*slot);
  if (entry.has_value()) {
    prefetch_fifo_.OnConsumed(*slot);
    UnchargeCacheEntry(*entry);
    NotifyPrefetchDropped(*slot, *entry);
    if (entry->pfn != kInvalidPfn) {
      frames_.Free(entry->pfn);
    }
    if (entry->first_hit_at != 0 && stale_count_ > 0) {
      --stale_count_;
    }
  }
  swap_.ReleaseSlot(pid, vpn);
}

SimTimeNs Machine::MapPage(Pid pid, Vpn vpn, Pfn pfn, bool write,
                           SimTimeNs now) {
  ProcessState& proc = Proc(pid);
  proc.table.Map(vpn, pfn);
  if (PageTableEntry* pte = proc.table.Find(vpn)) {
    pte->dirty = write;
  }
  if (write) {
    OnPageDirtied(pid, vpn);
  }
  proc.lru.Touch(vpn);
  proc.cgroup.Charge();
  SimTimeNs cost = 0;
  while (proc.cgroup.OverLimit()) {
    const SimTimeNs c = EvictColdestOf(pid, now);
    if (c == 0) {
      break;
    }
    cost += c;
  }
  return cost;
}

void Machine::EnforcePrefetchCacheLimit(size_t incoming, SimTimeNs now) {
  if (config_.prefetch_cache_limit_pages == 0) {
    return;
  }
  // Count unconsumed prefetched entries against the cap.
  while (prefetch_fifo_.size() + incoming >
         config_.prefetch_cache_limit_pages) {
    if (!ReclaimOneCacheVictim(now)) {
      break;
    }
  }
}

// Drops candidates that point at the demand page, past the end of the
// backing store, at already-cached slots, at slots whose page is currently
// mapped (the kernel analog finds those in the swap cache and skips the
// read; issuing one here could only ever be dropped on the page's next
// eviction or dirty), or that repeat an earlier candidate in the same
// batch (a duplicate would double-count Issued with only one possible
// Hit/Dropped, and leak its pre-allocated frame when the cache insert
// rejects the second copy).
CandidateVec Machine::FilterPrefetchCandidates(const CandidateVec& candidates,
                                               SwapSlot demand_slot) const {
  // Readahead is bounded by the device: the swap area's high-water mark, or
  // the file size (isize) in VFS mode.
  const SwapSlot max_slot =
      config_.vfs_mode ? vfs_file_pages_ : swap_.high_water();
  CandidateVec batch;
  for (SwapSlot slot : candidates) {
    if (slot == demand_slot || slot >= max_slot) {
      continue;
    }
    if (cache_.Lookup(slot) != nullptr) {
      continue;
    }
    if (!config_.vfs_mode) {
      auto owner = swap_.OwnerOf(slot);
      if (owner.has_value() && IsResident(owner->pid, owner->vpn)) {
        continue;
      }
    }
    // O(n^2) over <= kMaxPrefetchCandidates inline elements: cheaper than
    // any set, and still allocation-free.
    bool duplicate = false;
    for (SwapSlot seen : batch) {
      if (seen == slot) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }
    batch.push_back(slot);
  }
  return batch;
}

void Machine::InsertPrefetchEntries(Pid pid, std::span<const SwapSlot> slots,
                                    std::span<const SimTimeNs> ready_at,
                                    SimTimeNs now) {
  for (size_t i = 0; i < slots.size(); ++i) {
    Pfn pfn = kInvalidPfn;
    AllocateFrame(now, &pfn);  // overlapped with in-flight I/O
    if (pfn == kInvalidPfn) {
      continue;
    }
    CacheEntry entry;
    entry.pfn = pfn;
    entry.pid = pid;
    entry.prefetched = true;
    entry.ready_at = ready_at[i];
    entry.added_at = now;
    if (!cache_.Insert(slots[i], entry)) {
      // Unreachable with deduped+filtered candidates; kept so a rejected
      // insert can never leak the frame or fake an Issued with no
      // possible Hit/Dropped.
      frames_.Free(pfn);
      continue;
    }
    if (config_.eviction == EvictionKind::kEagerLeap) {
      prefetch_fifo_.OnPrefetched(slots[i]);
    }
    NotifyPrefetchIssued(pid, slots[i], ready_at[i], now);
  }
  // memcg semantics: readahead pages are charged to the faulting cgroup,
  // so over-fetching displaces the process's own resident pages - the
  // "cache pollution occupies valuable cache space" cost (section 2.3).
  if (!config_.vfs_mode && processes_.Contains(pid)) {
    ProcessState& proc = Proc(pid);
    proc.cgroup.Charge(slots.size());
    while (proc.cgroup.OverLimit()) {
      if (EvictColdestOf(pid, now) == 0) {
        break;
      }
    }
  }
}

// Removes the memcg charge held by an unconsumed, frame-holding cache
// entry (called when the entry is consumed or reclaimed).
void Machine::UnchargeCacheEntry(const CacheEntry& entry) {
  if (config_.vfs_mode || entry.pfn == kInvalidPfn ||
      entry.first_hit_at != 0) {
    return;
  }
  if (auto* state = processes_.Find(entry.pid)) {
    (*state)->cgroup.Uncharge();
  }
}

SimTimeNs Machine::IssueMiss(Pid pid, SwapSlot demand_slot, SimTimeNs now,
                             SimTimeNs* cpu_cost, Pfn* demand_pfn) {
  const CandidateVec prefetches =
      GeneratePrefetches(MakeFaultContext(pid, demand_slot, now));
  EnforcePrefetchCacheLimit(prefetches.size(), now);

  // Demand frame allocation is synchronous; prefetch frames are grabbed
  // while the demand I/O is in flight (their cost overlaps).
  *demand_pfn = kInvalidPfn;
  *cpu_cost = AllocateFrame(now, demand_pfn);

  // One submission: the demand page plus its readahead pages form a single
  // plug batch on the default path (merged + elevator-ordered together)
  // and a train of asynchronous per-page ops on the Leap path. Each entry
  // carries its IoClass tag - the contract the lower layers key on (the
  // demand page leads the batch only so ready[0] lines up with it here).
  // Batch and completion times live in fixed inline storage: a miss
  // allocates nothing on this path.
  InlineVec<IoRequest, kMaxPrefetchCandidates + 1> batch;
  batch.push_back(DemandRead(demand_slot, pid, now));
  for (SwapSlot slot : prefetches) {
    batch.push_back(PrefetchRead(slot, pid, now));
  }
  InlineVec<SimTimeNs, kMaxPrefetchCandidates + 1> ready;
  ready.resize(batch.size());
  const SimTimeNs demand_ready = data_path_->ReadPages(
      std::span<const IoRequest>(batch.data(), batch.size()), now + *cpu_cost,
      rng_, std::span<SimTimeNs>(ready.data(), ready.size()));

  counters_.Add(counter::kDemandReads);
  counters_.Add(counter::kCacheAdds, batch.size());
  if (config_.medium == Medium::kRemote) {
    counters_.Add(counter::kRemoteReads, batch.size());
  }
  InsertPrefetchEntries(
      pid, std::span<const SwapSlot>(prefetches.data(), prefetches.size()),
      std::span<const SimTimeNs>(ready.data() + 1, ready.size() - 1), now);

  // The demand page becomes a (consumed-on-arrival) cache entry: in lazy
  // mode its carcass lingers for kswapd; in eager mode it is freed at map
  // time, so no entry is created at all.
  if (config_.eviction == EvictionKind::kLazyLru) {
    CacheEntry entry;
    entry.pfn = kInvalidPfn;  // frame goes straight to the process
    entry.pid = pid;
    entry.prefetched = false;
    entry.ready_at = demand_ready;
    entry.added_at = now;
    entry.first_hit_at = demand_ready;
    if (cache_.Insert(demand_slot, entry)) {
      ++stale_count_;
    }
  }

  return demand_ready;
}

void Machine::ConsumeCacheEntry(SwapSlot slot, Pid pid, Vpn vpn, bool write,
                                SimTimeNs now) {
  CacheEntry* entry = cache_.Lookup(slot);
  if (entry == nullptr) {
    return;
  }
  const bool first_hit = entry->first_hit_at == 0;
  // The cache's memcg charge moves with the frame to the mapping process
  // (MapPage re-charges below).
  UnchargeCacheEntry(*entry);
  if (first_hit) {
    entry->first_hit_at = now;
    if (entry->prefetched) {
      NotifyPrefetchHit(pid, slot, *entry, now);
    }
  }
  const Pfn pfn = entry->pfn;
  if (config_.eviction == EvictionKind::kEagerLeap) {
    // Eager: free the cache entry the moment the page table is updated.
    prefetch_fifo_.OnConsumed(slot);
    cache_.Remove(slot);
    counters_.Add(counter::kEagerFrees);
  } else {
    // Lazy: the entry lingers (frame ownership moves to the process).
    entry->pfn = kInvalidPfn;
    if (first_hit) {
      ++stale_count_;
    }
  }
  if (pfn != kInvalidPfn) {
    MapPage(pid, vpn, pfn, write, now);
  }
}

AccessResult Machine::Access(Pid pid, Vpn vpn, bool write, SimTimeNs now) {
  DrainEvents(now);
  if (config_.vfs_mode) {
    return VfsAccess(pid, vpn, write, now);
  }

  ProcessState& proc = Proc(pid);
  if (PageTableEntry* pte = proc.table.Find(vpn)) {
    if (write && !pte->dirty) {
      pte->dirty = true;
      OnPageDirtied(pid, vpn);
    }
    proc.lru.Touch(vpn);
    return {AccessType::kLocalHit, config_.local_access_ns};
  }

  counters_.Add(counter::kPageFaults);

  // First touch: no backing copy exists yet anywhere.
  const auto existing_slot = swap_.FindSlot(pid, vpn);
  if (!existing_slot.has_value()) {
    Pfn pfn = kInvalidPfn;
    SimTimeNs cost = AllocateFrame(now, &pfn);
    cost += config_.minor_fault_ns;
    if (pfn != kInvalidPfn) {
      cost += MapPage(pid, vpn, pfn, write, now);
    }
    return {AccessType::kMinorFault, cost};
  }

  const SwapSlot slot = *existing_slot;
  if (CacheEntry* entry = cache_.Lookup(slot)) {
    cache_.TouchLru(slot);
    if (entry->first_hit_at == 0 || entry->pfn != kInvalidPfn) {
      const SimTimeNs hit_cost = data_path_->CacheHitCost(rng_);
      // The access tracker sees every do_swap_page, hits included.
      policy_->OnCacheAccess(pid, slot);
      if (fault_sink_ != nullptr) {
        fault_sink_->push_back({pid, slot, now, /*hit=*/true});
      }
      if (entry->ready_at > now) {
        // In-flight prefetch: block for the residue.
        const SimTimeNs wait = entry->ready_at - now;
        counters_.Add(counter::kCacheHits);
        counters_.Add(counter::kPrefetchWaitHits);
        ConsumeCacheEntry(slot, pid, vpn, write, now + wait);
        return {AccessType::kCacheWaitHit, wait + hit_cost};
      }
      counters_.Add(counter::kCacheHits);
      ConsumeCacheEntry(slot, pid, vpn, write, now);
      return {AccessType::kCacheHit, hit_cost};
    }
    // Consumed carcass without a frame: the data is gone (the process
    // unmapped it and the carcass was not yet collected). Treat as a miss
    // after dropping the stale entry.
    cache_.Remove(slot);
    --stale_count_;
  }

  counters_.Add(counter::kCacheMisses);
  if (fault_sink_ != nullptr) {
    fault_sink_->push_back({pid, slot, now, /*hit=*/false});
  }
  SimTimeNs cpu_cost = 0;
  Pfn demand_pfn = kInvalidPfn;
  const SimTimeNs demand_ready =
      IssueMiss(pid, slot, now, &cpu_cost, &demand_pfn);
  const SimTimeNs io_latency = demand_ready > now ? demand_ready - now : 0;
  if (demand_pfn != kInvalidPfn) {
    MapPage(pid, vpn, demand_pfn, write, now);
  }
  return {AccessType::kMiss, io_latency};
}

AccessResult Machine::VfsAccess(Pid pid, Vpn vpn, bool write, SimTimeNs now) {
  // File pages: the offset itself is the backing-store slot.
  const SwapSlot slot = vpn;
  vfs_file_pages_ = std::max(vfs_file_pages_, slot + 1);
  counters_.Add(counter::kPageFaults);

  auto evict_if_over_limit = [&] {
    const size_t limit = config_.vfs_cache_limit_pages;
    while (limit != 0 && cache_.size() > limit) {
      const auto coldest = cache_.ColdestSlot();
      if (!coldest.has_value()) {
        break;
      }
      const auto removed = cache_.Remove(*coldest);
      if (removed.has_value()) {
        prefetch_fifo_.OnConsumed(*coldest);
        NotifyPrefetchDropped(*coldest, *removed);
        if (removed->pfn != kInvalidPfn) {
          frames_.Free(removed->pfn);
        }
        if (removed->dirty) {
          data_path_->WritePage(WritebackOp(*coldest, removed->pid, now),
                                now, rng_);
          counters_.Add(counter::kWritebacks);
        }
        counters_.Add(counter::kEvictions);
        if (removed->prefetched && removed->first_hit_at == 0) {
          counters_.Add(counter::kPrefetchUnused);
        }
      }
    }
  };

  if (CacheEntry* entry = cache_.Lookup(slot)) {
    cache_.TouchLru(slot);
    entry->dirty = entry->dirty || write;
    const SimTimeNs hit_cost = data_path_->CacheHitCost(rng_);
    const bool first_hit = entry->first_hit_at == 0;
    if (first_hit) {
      entry->first_hit_at = now;
      if (entry->prefetched) {
        NotifyPrefetchHit(pid, slot, *entry, now);
        if (config_.eviction == EvictionKind::kEagerLeap) {
          prefetch_fifo_.OnConsumed(slot);
        }
      }
    }
    policy_->OnCacheAccess(pid, slot);
    if (fault_sink_ != nullptr) {
      fault_sink_->push_back({pid, slot, now, /*hit=*/true});
    }
    if (entry->ready_at > now) {
      const SimTimeNs wait = entry->ready_at - now;
      counters_.Add(counter::kCacheHits);
      counters_.Add(counter::kPrefetchWaitHits);
      return {AccessType::kCacheWaitHit, wait + hit_cost};
    }
    counters_.Add(counter::kCacheHits);
    return {AccessType::kCacheHit, hit_cost};
  }

  if (write) {
    // Write-allocate: full-page write needs no read.
    Pfn pfn = kInvalidPfn;
    const SimTimeNs cost = AllocateFrame(now, &pfn);
    CacheEntry entry;
    entry.pfn = pfn;
    entry.pid = pid;
    entry.ready_at = now;
    entry.added_at = now;
    entry.first_hit_at = now;
    entry.dirty = true;
    cache_.Insert(slot, entry);
    counters_.Add(counter::kCacheAdds);
    evict_if_over_limit();
    return {AccessType::kMinorFault, cost + data_path_->CacheHitCost(rng_)};
  }

  counters_.Add(counter::kCacheMisses);
  if (fault_sink_ != nullptr) {
    fault_sink_->push_back({pid, slot, now, /*hit=*/false});
  }
  // Demand read + prefetches, each entry tagged with its IoClass (fixed
  // inline storage, as in IssueMiss; the demand entry leads so ready[0]
  // lines up with it below).
  InlineVec<IoRequest, kMaxPrefetchCandidates + 1> batch;
  batch.push_back(DemandRead(slot, pid, now));
  for (SwapSlot p : GeneratePrefetches(MakeFaultContext(pid, slot, now))) {
    batch.push_back(PrefetchRead(p, pid, now));
  }
  Pfn demand_pfn = kInvalidPfn;
  const SimTimeNs cpu = AllocateFrame(now, &demand_pfn);
  InlineVec<SimTimeNs, kMaxPrefetchCandidates + 1> ready;
  ready.resize(batch.size());
  const SimTimeNs demand_ready = data_path_->ReadPages(
      std::span<const IoRequest>(batch.data(), batch.size()), now + cpu, rng_,
      std::span<SimTimeNs>(ready.data(), ready.size()));
  counters_.Add(counter::kDemandReads);
  counters_.Add(counter::kCacheAdds, batch.size());
  if (config_.medium == Medium::kRemote) {
    counters_.Add(counter::kRemoteReads, batch.size());
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    const bool is_demand = batch[i].cls == IoClass::kDemandRead;
    Pfn pfn = demand_pfn;
    if (!is_demand) {
      AllocateFrame(now, &pfn);
    }
    CacheEntry entry;
    entry.pfn = pfn;
    entry.pid = pid;
    entry.prefetched = !is_demand;
    entry.ready_at = ready[i];
    entry.added_at = now;
    if (is_demand) {
      entry.first_hit_at = now;
      cache_.Insert(batch[i].slot, entry);
      continue;
    }
    if (!cache_.Insert(batch[i].slot, entry)) {
      // See InsertPrefetchEntries: a rejected insert must not leak the
      // frame or fake an Issued.
      if (pfn != kInvalidPfn) {
        frames_.Free(pfn);
      }
      continue;
    }
    NotifyPrefetchIssued(pid, batch[i].slot, ready[i], now);
    if (config_.eviction == EvictionKind::kEagerLeap) {
      prefetch_fifo_.OnPrefetched(batch[i].slot);
    }
  }
  evict_if_over_limit();
  const SimTimeNs io_latency = demand_ready > now ? demand_ready - now : 0;
  return {AccessType::kMiss, io_latency};
}

}  // namespace leap
