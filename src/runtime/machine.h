// The simulated host: local DRAM, page tables, swap cache, reclaim, a
// paging (or VFS) data path to a backing medium, and a pluggable prefetch
// policy (optionally clamped by a per-tenant budget governor). This is the
// composition point where Leap's three components
// (process-isolated tracking, majority prefetching, eager eviction) replace
// their legacy counterparts.
#ifndef LEAP_SRC_RUNTIME_MACHINE_H_
#define LEAP_SRC_RUNTIME_MACHINE_H_

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/container/flat_map.h"
#include "src/core/leap.h"
#include "src/mem/cgroup.h"
#include "src/mem/frame_pool.h"
#include "src/mem/lru_list.h"
#include "src/mem/page_cache.h"
#include "src/mem/page_table.h"
#include "src/paging/data_path.h"
#include "src/paging/swap_manager.h"
#include "src/prefetch/budget_governor.h"
#include "src/prefetch/policy_registry.h"
#include "src/prefetch/prefetcher.h"
#include "src/prefetch/profile_pass.h"
#include "src/rdma/host_agent.h"
#include "src/rdma/remote_agent.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/stats/counters.h"
#include "src/stats/histogram.h"
#include "src/storage/hdd.h"
#include "src/storage/ssd.h"
#include "src/tier/tier_config.h"
#include "src/tier/tier_migrator.h"
#include "src/tier/tiered_store.h"

namespace leap {

enum class Medium { kHdd, kSsd, kRemote };
enum class PathKind { kDefault, kLeap };
// PrefetchKind lives in src/prefetch/policy_registry.h (the shared policy
// registry); re-exported here because every MachineConfig names one.
enum class EvictionKind { kLazyLru, kEagerLeap };

struct MachineConfig {
  // Local DRAM, in 4KB frames.
  size_t total_frames = 64 * 1024;
  Medium medium = Medium::kRemote;
  PathKind path = PathKind::kDefault;
  PrefetchKind prefetcher = PrefetchKind::kReadAhead;
  EvictionKind eviction = EvictionKind::kLazyLru;
  LeapParams leap;
  // Knobs for the learned / profile-guided policies (used only when
  // `prefetcher` selects them).
  OnlineDeltaConfig online_delta;
  ProfileGuidedConfig profile_guided;
  // Test seam: when set, the machine drives THIS policy (non-owning;
  // `prefetcher` is ignored). Lets conformance tests interpose an auditing
  // wrapper around a real policy and observe the exact feedback stream the
  // machine delivers.
  PrefetchPolicy* policy_override = nullptr;

  // File-style access (disaggregated VFS): no page tables; every access is
  // a cache lookup; writes are write-allocate + writeback on eviction.
  bool vfs_mode = false;
  // Cache capacity in vfs_mode (0 = bounded only by DRAM).
  size_t vfs_cache_limit_pages = 0;

  // Cap on unconsumed prefetched pages in the cache (Figure 12); 0 = none.
  size_t prefetch_cache_limit_pages = 0;

  // Adaptive per-tenant prefetch budget governor (disabled by default:
  // candidate vectors pass through unclamped, bit-identical to the
  // governor-free machine).
  PrefetchBudgetConfig budget;

  // CPU-side cost constants.
  SimTimeNs local_access_ns = 90;
  SimTimeNs minor_fault_ns = 900;
  SimTimeNs evict_cpu_ns = 650;
  // Page allocation cost: base plus a per-stale-cache-entry scan component,
  // calibrated so lazy eviction averages ~2.1 us and eager ~1.35 us
  // (paper: eager saves ~750 ns, 36%).
  SimTimeNs alloc_base_ns = 400;
  SimTimeNs alloc_scan_per_entry_ns = 22;
  size_t alloc_scan_cap = 56;

  // kswapd: period and per-wakeup scan batch.
  SimTimeNs kswapd_period_ns = 1 * kNsPerMs;
  size_t kswapd_scan_batch = 256;
  double low_watermark = 0.02;   // fraction of total frames
  double high_watermark = 0.05;
  // Inactive-list aging: an unconsumed prefetched page that survives this
  // long without a hit has cycled to the inactive tail and is reclaimed -
  // this is how cache pollution dies in the kernel even without global
  // memory pressure.
  SimTimeNs prefetch_ttl_ns = 50 * kNsPerMs;

  // Backing media.
  HddConfig hdd;
  SsdConfig ssd;
  HostAgentConfig host_agent;
  size_t remote_nodes = 2;
  size_t node_capacity_slabs = 4096;

  // Tiered far memory (src/tier/): CXL-like fast tier + background
  // hot/cold migrator layered over the remote path. Only honored when
  // medium == kRemote; disabled (default) means no tier state exists and
  // the machine is bit-identical to a pre-tiering build.
  TierConfig tier;

  // Data-path cost presets (see runtime/presets.h for the calibrated ones).
  DefaultPathConfig default_path;
  LeapPathConfig leap_path;

  uint64_t seed = 42;
};

class SlabPlacer;

// Cluster wiring injected by the runtime/Cluster driver. All fields are
// optional: a default MachineEnv gives the classic self-contained machine
// (own event queue, own remote nodes, private NIC link).
struct MachineEnv {
  // Shared simulated clock: every machine in a cluster drains the same
  // queue, so background activity (kswapd ticks, failure events) from all
  // hosts interleaves deterministically with every host's faults.
  EventQueue* shared_events = nullptr;
  // Shared donor pool (non-owning). Non-empty replaces the machine's own
  // private remote nodes.
  std::vector<RemoteAgent*> remote_pool;
  // Shared fabric: remote latency becomes a function of cluster traffic.
  PageTransport* fabric = nullptr;
  // Placement policy override (non-owning; default power-of-two-choices).
  SlabPlacer* placer = nullptr;
  // This machine's uplink id on the fabric.
  uint32_t host_id = 0;
  // Cluster-owned flight recorder (non-owning; null = tracing off). The
  // machine forwards it to its host agent and data path and records the
  // prefetch issue/hit/drop lifecycle itself.
  TraceRecorder* trace = nullptr;
};

enum class AccessType {
  kLocalHit,      // page already mapped
  kMinorFault,    // first touch, no backing store involved
  kCacheHit,      // fault served from the page cache
  kCacheWaitHit,  // fault hit an in-flight (prefetched) read
  kMiss,          // fault went to the backing store
};

struct AccessResult {
  AccessType type = AccessType::kLocalHit;
  SimTimeNs latency = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  Machine(const MachineConfig& config, const MachineEnv& env);

  // Registers a process with a cgroup limit (0 = unlimited).
  Pid CreateProcess(size_t cgroup_limit_pages);

  // Performs one memory access at absolute simulated time `now` and
  // returns its type and latency. Callers (the app runners) must invoke
  // accesses in non-decreasing `now` order across the whole machine.
  AccessResult Access(Pid pid, Vpn vpn, bool write, SimTimeNs now);

  // --- Introspection -----------------------------------------------------
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  // Lazy-eviction wait: first hit -> freed (Figure 4).
  Histogram& eviction_wait_hist() { return eviction_wait_hist_; }
  // Prefetch timeliness: inserted -> first hit (Figure 10b).
  Histogram& timeliness_hist() { return timeliness_hist_; }
  // Page allocation cost distribution (eager-eviction effect).
  Histogram& alloc_hist() { return alloc_hist_; }
  const MachineConfig& config() const { return config_; }
  PrefetchPolicy& policy() { return *policy_; }
  // Budget governor (nullptr when config().budget.enabled is false).
  BudgetGovernor* governor() { return governor_.get(); }
  const BudgetGovernor* governor() const { return governor_.get(); }
  HostAgent* host_agent() { return host_agent_.get(); }
  // Tier-aware store (nullptr unless config().tier.enabled on a remote
  // medium); the cluster reads per-tier occupancy through this.
  TieredStore* tiered_store() { return tiered_store_.get(); }
  const TieredStore* tiered_store() const { return tiered_store_.get(); }
  size_t cache_size() const { return cache_.size(); }
  size_t stale_entries() const { return stale_count_; }
  size_t free_frames() const { return frames_.free_count(); }
  size_t resident_pages(Pid pid) const;
  bool IsResident(Pid pid, Vpn vpn) const;
  SwapManager& swap() { return swap_; }
  // Prefetched cache pages not yet hit (what FaultContext reports).
  size_t unconsumed_prefetched() const { return unconsumed_prefetched_; }
  // Fault-trace recording hook for the offline profile pass: when set,
  // every policy-visible paging event (cache miss and remote-path cache
  // hit) is appended to `sink` in access order. Observation-only - no
  // machine behavior changes. Pass nullptr to stop recording.
  void SetFaultTraceSink(FaultTrace* sink) { fault_sink_ = sink; }
  // Per-tenant footprint on the backing medium (remote slabs / swap).
  size_t swapped_pages(Pid pid) const { return swap_.SlotsOf(pid); }
  // This machine's uplink id when cluster-wired (0 standalone).
  uint32_t host_id() const { return host_id_; }

 private:
  struct ProcessState {
    PageTable table;
    Cgroup cgroup;
    LruList<Vpn> lru;  // resident pages, hottest first
  };

  void DrainEvents(SimTimeNs now);
  void ScheduleKswapd(SimTimeNs at);
  void KswapdTick(SimTimeNs now);

  ProcessState& Proc(Pid pid) {
    auto* state = processes_.Find(pid);
    if (state == nullptr) {
      // Defined failure for unknown pids (the pre-flat-map behavior of
      // unordered_map::at); the branch is perfectly predicted on the
      // hot path.
      throw std::out_of_range("leap::Machine: unknown pid");
    }
    return **state;
  }

  // Allocates a frame, reclaiming if necessary; returns the CPU cost and
  // sets `*pfn`. Reclaim preference: unconsumed cache victims, then the
  // coldest mapped page of the largest process.
  SimTimeNs AllocateFrame(SimTimeNs now, Pfn* pfn);

  // Evicts the coldest mapped page of `pid` (cgroup reclaim). Returns CPU
  // cost; no-op (0) when the process has no resident pages.
  SimTimeNs EvictColdestOf(Pid pid, SimTimeNs now);

  // Evicts one unconsumed cache entry per the eviction policy. Returns
  // true when an entry was freed.
  bool ReclaimOneCacheVictim(SimTimeNs now);

  // Removes the cache entry for `slot` and hands its frame to (pid, vpn).
  // Handles eager-vs-lazy lifecycle, prefetch-hit accounting, and window
  // feedback.
  void ConsumeCacheEntry(SwapSlot slot, Pid pid, Vpn vpn, bool write,
                         SimTimeNs now);

  // Snapshot of machine + cluster state for one fault: clock, free-frame
  // pressure, in-flight prefetch count, congestion signals, and the
  // governor's per-tenant budget (advancing its AIMD epoch).
  FaultContext MakeFaultContext(Pid pid, SwapSlot slot, SimTimeNs now);

  // The one candidate pipeline for both the paging and VFS miss paths:
  // policy OnFault, then filtering, then the governor's budget clamp.
  CandidateVec GeneratePrefetches(const FaultContext& ctx);

  // Outcome-feedback fan-out to the policy and the governor.
  // A prefetch read was submitted and its cache entry inserted; `ready_at`
  // is its completion time (Complete fires immediately - the simulation
  // knows the latency at issue).
  void NotifyPrefetchIssued(Pid pid, SwapSlot slot, SimTimeNs ready_at,
                            SimTimeNs now);
  // First hit on a prefetched entry (records timeliness, credits policy
  // window sizing and governor accuracy).
  void NotifyPrefetchHit(Pid pid, SwapSlot slot, const CacheEntry& entry,
                         SimTimeNs now);
  // Funnel for every path that removes a prefetched-never-hit entry, so
  // the policy and governor see each unconsumed prefetch exactly once.
  void NotifyPrefetchDropped(SwapSlot slot, const CacheEntry& entry);

  // Maps (pid, vpn) -> pfn, charging the cgroup and enforcing its limit.
  // Returns the CPU cost of any synchronous cgroup reclaim triggered.
  SimTimeNs MapPage(Pid pid, Vpn vpn, Pfn pfn, bool write, SimTimeNs now);

  // Issues the demand + prefetch reads for a miss; returns demand-ready
  // time, the CPU cost spent on the critical path, and the frame allocated
  // for the demand page. Inserts in-flight cache entries for prefetched
  // pages.
  SimTimeNs IssueMiss(Pid pid, SwapSlot demand_slot, SimTimeNs now,
                      SimTimeNs* cpu_cost, Pfn* demand_pfn);

  // Filters in place and returns by value: CandidateVec is fixed-capacity
  // inline storage, so the whole candidate pipeline is allocation-free.
  CandidateVec FilterPrefetchCandidates(const CandidateVec& candidates,
                                        SwapSlot demand_slot) const;
  void InsertPrefetchEntries(Pid pid, std::span<const SwapSlot> slots,
                             std::span<const SimTimeNs> ready_at,
                             SimTimeNs now);
  void UnchargeCacheEntry(const CacheEntry& entry);

  // swap_free on re-dirty: releases the page's swap slot and drops cache
  // state keyed by it.
  void OnPageDirtied(Pid pid, Vpn vpn);

  // Enforces the prefetch-cache cap before inserting `incoming` pages.
  void EnforcePrefetchCacheLimit(size_t incoming, SimTimeNs now);

  AccessResult VfsAccess(Pid pid, Vpn vpn, bool write, SimTimeNs now);

  MachineConfig config_;
  Rng rng_;
  // Clock: own queue standalone; a cluster injects a shared one so every
  // host's background events interleave on one timeline.
  EventQueue owned_events_;
  EventQueue* events_;
  SimTimeNs last_event_drain_ = 0;
  uint32_t host_id_ = 0;
  TraceRecorder* trace_ = nullptr;  // null unless the cluster enabled it

  FramePool frames_;
  PageCache cache_;
  SwapManager swap_;
  PrefetchFifoLruList prefetch_fifo_;  // eager policy bookkeeping
  size_t stale_count_ = 0;             // consumed entries awaiting kswapd

  std::vector<std::unique_ptr<RemoteAgent>> remote_nodes_;  // owned donors
  std::unique_ptr<HostAgent> host_agent_;
  std::unique_ptr<BackingStore> local_store_;  // hdd/ssd when not remote
  // Degradation target when the donor pool is out of slabs (remote runs).
  std::unique_ptr<BackingStore> overflow_store_;
  // Tiered hierarchy over {cxl, host_agent_, overflow ssd}; null unless
  // config_.tier.enabled (the null pointer IS the off switch).
  std::unique_ptr<TieredStore> tiered_store_;
  std::unique_ptr<TierMigrator> tier_migrator_;
  BackingStore* store_ = nullptr;
  std::unique_ptr<DataPath> data_path_;
  std::unique_ptr<PrefetchPolicy> policy_;
  std::unique_ptr<BudgetGovernor> governor_;  // null when disabled
  // Prefetched cache pages not yet hit (FaultContext::inflight_prefetches).
  size_t unconsumed_prefetched_ = 0;
  // Profile-pass recording sink (null = off; see SetFaultTraceSink).
  FaultTrace* fault_sink_ = nullptr;

  // unique_ptr values keep ProcessState addresses stable across map growth
  // (Proc() references are held across container mutations).
  FlatMap<Pid, std::unique_ptr<ProcessState>> processes_;
  Pid next_pid_ = 1;
  // kswapd scan scratch, reused every tick so background reclaim stays
  // allocation-free (bounded by kswapd_scan_batch).
  std::vector<SwapSlot> kswapd_scratch_;
  // High-water mark of file pages seen in VFS mode (the simulated isize).
  SwapSlot vfs_file_pages_ = 0;

  Counters counters_;
  Histogram eviction_wait_hist_;
  Histogram timeliness_hist_;
  Histogram alloc_hist_;
};

}  // namespace leap

#endif  // LEAP_SRC_RUNTIME_MACHINE_H_
