#include "src/runtime/presets.h"

namespace leap {
namespace {

MachineConfig BaseConfig(size_t total_frames, uint64_t seed) {
  MachineConfig config;
  config.total_frames = total_frames;
  config.seed = seed;
  return config;
}

}  // namespace

MachineConfig DiskSwapConfig(Medium medium, PrefetchKind prefetcher,
                             size_t total_frames, uint64_t seed) {
  MachineConfig config = BaseConfig(total_frames, seed);
  config.medium = medium;
  config.path = PathKind::kDefault;
  config.prefetcher = prefetcher;
  config.eviction = EvictionKind::kLazyLru;
  // Plain swap has no disaggregation-framework overhead on hits.
  config.default_path.hit_cost_ns = 270;
  config.default_path.hit_jitter_ns = 60;
  return config;
}

MachineConfig DefaultVmmConfig(PrefetchKind prefetcher, size_t total_frames,
                               uint64_t seed) {
  MachineConfig config = BaseConfig(total_frames, seed);
  config.medium = Medium::kRemote;
  config.path = PathKind::kDefault;
  config.prefetcher = prefetcher;
  config.eviction = EvictionKind::kLazyLru;
  // Constant implementation overhead keeps even hits near 1 us (Figure 2).
  config.default_path.hit_cost_ns = 1050;
  config.default_path.hit_jitter_ns = 160;
  return config;
}

MachineConfig LeapVmmConfig(size_t total_frames, uint64_t seed) {
  MachineConfig config = BaseConfig(total_frames, seed);
  config.medium = Medium::kRemote;
  config.path = PathKind::kLeap;
  config.prefetcher = PrefetchKind::kLeap;
  config.eviction = EvictionKind::kEagerLeap;
  return config;
}

MachineConfig DefaultVfsConfig(PrefetchKind prefetcher, size_t total_frames,
                               size_t vfs_cache_pages, uint64_t seed) {
  MachineConfig config = BaseConfig(total_frames, seed);
  config.medium = Medium::kRemote;
  config.path = PathKind::kDefault;
  config.prefetcher = prefetcher;
  config.eviction = EvictionKind::kLazyLru;
  config.vfs_mode = true;
  config.vfs_cache_limit_pages = vfs_cache_pages;
  // Remote Regions avoids the block layer but pays VFS-level costs; the
  // observed stack is markedly lighter than the VMM one (Figure 2).
  config.default_path.hit_cost_ns = 540;
  config.default_path.hit_jitter_ns = 110;
  config.default_path.block.prep_median_ns = 1300;
  config.default_path.block.prep_sigma = 0.55;
  config.default_path.block.prep_min_ns = 500;
  config.default_path.block.queue_median_ns = 1100;
  config.default_path.block.queue_sigma = 0.60;
  config.default_path.block.queue_min_ns = 400;
  config.default_path.block.dispatch_mean_ns = 700;
  config.default_path.block.dispatch_stddev_ns = 150;
  config.default_path.block.dispatch_min_ns = 300;
  return config;
}

MachineConfig LeapVfsConfig(size_t total_frames, size_t vfs_cache_pages,
                            uint64_t seed) {
  MachineConfig config = BaseConfig(total_frames, seed);
  config.medium = Medium::kRemote;
  config.path = PathKind::kLeap;
  config.prefetcher = PrefetchKind::kLeap;
  config.eviction = EvictionKind::kEagerLeap;
  config.vfs_mode = true;
  config.vfs_cache_limit_pages = vfs_cache_pages;
  return config;
}

}  // namespace leap
