#include "src/runtime/sharded_cluster.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace leap {

namespace {

// SplitMix64 finalizer: the deterministic mixer behind mirror targeting.
// Thread-timing-free - a pure function of (host, miss tick).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void PinToCpu(size_t index) {
#ifdef __linux__
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    return;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(index % hw, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

}  // namespace

// Everything a worker thread owns exclusively between barriers. Pointers
// into the global tables (nodes_, hosts_) are partitioned by the plan, so
// no simulation object is ever touched by two shards in the same window.
struct ShardedCluster::Shard {
  uint32_t id = 0;
  EventQueue events;
  std::unique_ptr<Fabric> fabric;
  std::unique_ptr<SlabPlacer> placer;
  std::unique_ptr<HealthMonitor> health;  // null unless enabled
  std::vector<uint32_t> hosts;            // global host ids (ascending)
  std::vector<uint32_t> nodes;            // global node ids (ascending)
  std::vector<uint32_t> foreign_nodes;    // mirror targets (other shards)
  Counters counters;  // scenario + cross-shard counters, merged in Stats
  // Receiver-side fabric draws for applied mirror ops. Seeded from a
  // stream disjoint from host seeding so shards>1 never perturbs the host
  // seed sequence; never drawn at shards=1 (no mirrors exist).
  Rng mailbox_rng{0};

  // Per-Run state.
  std::unique_ptr<BoundAppSet> apps;
  std::vector<size_t> app_spec_index;  // shard-local app -> global spec
  std::vector<uint32_t> app_host;      // shard-local app -> global host id
  RunHooks hooks;

  // Cross-shard plumbing. out[r] is this shard's SPSC ring toward shard r
  // (unique_ptr: the ring's atomics make it immovable); pending holds
  // transferred ops awaiting their application window.
  std::vector<std::unique_ptr<SpscMailbox>> out;
  std::vector<CrossShardOp> pending;
  std::vector<uint64_t> host_tick;  // per global host: demand-miss count
  uint64_t next_seq = 0;
  uint64_t sent = 0;
  uint64_t applied = 0;

  // Demand-miss latency within the current sampler window (barrier-reset).
  Histogram demand_window_hist;
  std::thread worker;
};

ShardedCluster::ShardedCluster(const ShardedClusterConfig& config)
    : config_(config), host_seeder_(config.base.seed) {
  if (config_.base.trace.enabled) {
    throw std::invalid_argument(
        "leap::ShardedCluster: trace recording requires the single-queue "
        "Cluster (the flight-recorder ring is not shard-safe)");
  }
  config_.base.resilience.Validate();

  size_t shards = config_.shards;
  if (shards == 0) {
    const size_t hw = std::max(1u, std::thread::hardware_concurrency());
    shards = std::max<size_t>(1, std::min(config_.base.hosts, hw));
  }
  // Plan over the effective node count: like Cluster, a nodeless config
  // still gets one synthetic donor node.
  plan_ = BuildShardPlan(config_.base.hosts,
                         std::max<size_t>(1, config_.base.nodes), shards);
  window_ns_ = config_.window_ns != 0 ? config_.window_ns
                                      : FabricLookaheadNs(config_.base.fabric);

  // Global node table first, in id order - same construction sequence as
  // Cluster, so shards=1 allocates and seeds everything identically.
  for (size_t n = 0; n < std::max<size_t>(1, config_.base.nodes); ++n) {
    nodes_.push_back(std::make_unique<RemoteAgent>(
        static_cast<uint32_t>(n), config_.base.node_capacity_slabs));
  }

  shards_.reserve(plan_.shards);
  for (size_t s = 0; s < plan_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    BuildShard(s);
  }

  // Hosts in GLOBAL id order: each host draws its seed from host_seeder_
  // in the same sequence as Cluster::AddHost, regardless of which shard it
  // lands on.
  for (size_t h = 0; h < config_.base.hosts; ++h) {
    AddHost(*shards_[plan_.host_shard[h]]);
  }
}

ShardedCluster::~ShardedCluster() = default;

void ShardedCluster::BuildShard(size_t s) {
  Shard& shard = *shards_[s];
  shard.id = static_cast<uint32_t>(s);
  shard.hosts = plan_.shard_hosts[s];
  shard.nodes = plan_.shard_nodes[s];
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (plan_.node_shard[n] != static_cast<uint32_t>(s)) {
      shard.foreign_nodes.push_back(static_cast<uint32_t>(n));
    }
  }
  // Fabric sized for the WHOLE cluster (global host/node link indexing);
  // each shard only drives its own partition's links, except mirror ops,
  // which charge the sending host's uplink on the receiver's fabric.
  shard.fabric = std::make_unique<Fabric>(
      config_.base.fabric, std::max<size_t>(1, config_.base.hosts),
      std::max<size_t>(1, config_.base.nodes));
  shard.placer = MakeSlabPlacer(config_.base.placement);
  if (config_.base.resilience.enabled || config_.base.health_monitor_enabled) {
    shard.health =
        std::make_unique<HealthMonitor>(config_.base.health, nodes_.size());
    shard.health->SetCounters(&shard.counters);
  }
  // Stream tag keeps this disjoint from host seeding (host_seeder_ draws
  // exactly one value per host, same as Cluster) and distinct per shard.
  shard.mailbox_rng = Rng(
      Mix64(config_.base.seed ^ (0x6D61696C626F78ULL + shard.id)));
  shard.host_tick.assign(config_.base.hosts, 0);
  shard.out.reserve(plan_.shards);
  for (size_t r = 0; r < plan_.shards; ++r) {
    shard.out.push_back(
        std::make_unique<SpscMailbox>(config_.mailbox_capacity));
  }
}

size_t ShardedCluster::AddHost(Shard& shard) {
  const size_t id = hosts_.size();
  MachineConfig host_config = config_.base.host;
  host_config.medium = Medium::kRemote;
  host_config.seed = host_seeder_.NextU64();

  MachineEnv env;
  env.shared_events = &shard.events;
  env.fabric = shard.fabric.get();
  env.placer = shard.placer.get();
  env.host_id = static_cast<uint32_t>(id);
  env.remote_pool.reserve(shard.nodes.size());
  for (const uint32_t n : shard.nodes) {
    env.remote_pool.push_back(nodes_[n].get());
  }

  hosts_.push_back(std::make_unique<Machine>(host_config, env));
  HostAgent* agent = hosts_.back()->host_agent();
  if (shard.health != nullptr) {
    agent->SetHealthTracker(shard.health.get());
  }
  if (config_.base.resilience.enabled) {
    agent->SetResilience(config_.base.resilience);
  }
  alive_.push_back(1);
  host_remote_hist_.emplace_back();
  shard.counters.Add(counter::kHostJoins);
  return id;
}

void ShardedCluster::RemoveHost(size_t host) {
  if (host >= hosts_.size() || alive_[host] == 0) {
    return;
  }
  alive_[host] = 0;
  hosts_[host]->host_agent()->ReleaseAllSlabs();
  shards_[plan_.host_shard[host]]->counters.Add(counter::kHostLeaves);
}

void ShardedCluster::ScheduleNodeFailure(uint32_t node, SimTimeNs at) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::ShardedCluster: unknown node");
  }
  Shard* shard = shards_[plan_.node_shard[node]].get();
  shard->events.ScheduleAt(at, [this, shard, node](SimTimeNs when) {
    nodes_[node]->Fail();
    shard->counters.Add(counter::kNodeFailures);
    // Only home-shard hosts can hold slabs on this node (placement is
    // shard-local), so repair fan-out stays inside the shard. Mirror
    // replicas on the node are fire-and-forget: they are lost, not
    // repaired (cross-domain DR semantics).
    for (const uint32_t h : shard->hosts) {
      if (alive_[h] != 0) {
        hosts_[h]->host_agent()->RepairSlabsAfterFailure(node, when);
      }
    }
  });
}

void ShardedCluster::ScheduleNodeRecovery(uint32_t node, SimTimeNs at) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::ShardedCluster: unknown node");
  }
  Shard* shard = shards_[plan_.node_shard[node]].get();
  shard->events.ScheduleAt(at, [this, shard, node](SimTimeNs /*when*/) {
    nodes_[node]->Recover();
    shard->counters.Add(counter::kNodeRecoveries);
  });
}

void ShardedCluster::ScheduleNodeGray(uint32_t node, double stretch,
                                      SimTimeNs at, SimTimeNs until) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::ShardedCluster: unknown node");
  }
  if (stretch <= 0.0) {
    throw std::invalid_argument(
        "leap::ShardedCluster: gray stretch must be > 0");
  }
  Shard* shard = shards_[plan_.node_shard[node]].get();
  shard->events.ScheduleAt(at, [shard, node, stretch](SimTimeNs /*when*/) {
    shard->fabric->SetNodeSlowdown(node, stretch);
    if (stretch != 1.0) {
      shard->counters.Add(counter::kGrayFaultEvents);
    }
  });
  if (until > at) {
    shard->events.ScheduleAt(until, [shard, node](SimTimeNs /*when*/) {
      shard->fabric->SetNodeSlowdown(node, 1.0);
    });
  }
}

void ShardedCluster::ScheduleNodeDelaySpike(uint32_t node, SimTimeNs extra_ns,
                                            SimTimeNs at, SimTimeNs until) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::ShardedCluster: unknown node");
  }
  Shard* shard = shards_[plan_.node_shard[node]].get();
  shard->events.ScheduleAt(at, [shard, node, extra_ns](SimTimeNs /*when*/) {
    shard->fabric->SetNodeExtraDelayNs(node, extra_ns);
    shard->counters.Add(counter::kDelaySpikeEvents);
  });
  if (until > at) {
    shard->events.ScheduleAt(until, [shard, node](SimTimeNs /*when*/) {
      shard->fabric->SetNodeExtraDelayNs(node, 0);
    });
  }
}

void ShardedCluster::ScheduleHostLeave(size_t host, SimTimeNs at) {
  if (host >= hosts_.size()) {
    throw std::out_of_range("leap::ShardedCluster: unknown host");
  }
  Shard* shard = shards_[plan_.host_shard[host]].get();
  shard->events.ScheduleAt(
      at, [this, host](SimTimeNs /*when*/) { RemoveHost(host); });
}

void ShardedCluster::SendMirror(Shard& shard, uint32_t host, uint64_t tick,
                                SimTimeNs now) {
  const uint64_t mix = Mix64((static_cast<uint64_t>(host) << 32) ^ tick);
  const uint32_t node =
      shard.foreign_nodes[mix % shard.foreign_nodes.size()];
  CrossShardOp op;
  // One full lookahead out: now >= window_start, so effect_ts >= the end
  // of the current window - the receiver cannot need it before the next
  // barrier has transferred it.
  op.effect_ts = now + window_ns_;
  op.seq = shard.next_seq++;
  // Mirror pages live in a namespace no HostAgent PageKey can collide
  // with (bit 63 set; PageKey is (host << 48) ^ slot with host < 2^15).
  op.page_key =
      (1ULL << 63) | (static_cast<uint64_t>(host) << 32) | (tick & 0xffffffff);
  op.tag = mix;
  op.slot = static_cast<SwapSlot>(tick);
  op.node = node;
  op.host = host;
  op.sender = shard.id;
  op.kind = CrossShardOp::Kind::kMirrorWrite;
  shard.out[plan_.node_shard[node]]->Push(op);
  ++shard.sent;
  shard.counters.Add(counter::kCrossShardSent);
}

void ShardedCluster::ApplyPending(Shard& shard) {
  if (shard.pending.empty()) {
    return;
  }
  // Deterministic application order regardless of which barrier drained
  // which ring first: simulated time, then (sender, seq).
  std::sort(shard.pending.begin(), shard.pending.end(), CrossShardOpBefore);
  size_t n = 0;
  while (n < shard.pending.size() &&
         shard.pending[n].effect_ts < window_end_) {
    ++n;
  }
  if (n == 0) {
    return;
  }
  // Fire this shard's background events due before the window, so a node
  // failure scheduled earlier is visible to the failed() check below.
  if (window_start_ > 0) {
    shard.events.RunUntil(window_start_ - 1);
  }
  for (size_t i = 0; i < n; ++i) {
    const CrossShardOp& op = shard.pending[i];
    RemoteAgent& node = *nodes_[op.node];
    if (!node.failed()) {
      IoRequest req;
      req.slot = op.slot;
      req.tenant = op.tenant;
      req.host = op.host;
      req.cls = IoClass::kWriteback;
      req.bytes = op.bytes;
      req.enqueue_ts = op.effect_ts;
      shard.fabric->SubmitPageOp(req, op.node, op.effect_ts,
                                 shard.mailbox_rng);
      node.StorePage(op.page_key, op.tag);
      node.CountWrite();
    }
    ++shard.applied;
    shard.counters.Add(counter::kCrossShardApplied);
  }
  shard.pending.erase(shard.pending.begin(),
                      shard.pending.begin() + static_cast<ptrdiff_t>(n));
}

void ShardedCluster::OnBarrier() {
  // Serial section: exactly one thread runs this while every other worker
  // waits inside the barrier, so plain reads of shard state are safe.
  ++windows_run_;

  // 1. Transfer: drain every (sender -> receiver) ring into the receiver's
  // pending list. Serially, so overflow flushes and ring drains interleave
  // identically run to run.
  for (const auto& sender : shards_) {
    for (size_t r = 0; r < shards_.size(); ++r) {
      sender->out[r]->DrainTo(shards_[r]->pending);
    }
  }

  // 2. Global minimum of future work: the earliest app step or pending op
  // anywhere. Background events deliberately do not hold the run open -
  // like the single-queue engine, events after the last access never run.
  SimTimeNs global_min = BoundAppSet::kNoStep;
  for (const auto& shard : shards_) {
    global_min = std::min(global_min, shard->apps->NextStepTime());
    for (const CrossShardOp& op : shard->pending) {
      global_min = std::min(global_min, op.effect_ts);
    }
  }
  if (global_min == BoundAppSet::kNoStep) {
    stopped_ = true;
    return;
  }

  // 3. Advance - jumping over idle stretches (apps far in the future, a
  // pending op windows away) in one step instead of spinning empty
  // windows.
  const uint64_t next_index =
      std::max(window_end_ / window_ns_, global_min / window_ns_);
  window_start_ = next_index * window_ns_;
  window_end_ = window_start_ + window_ns_;

  // 4. Barrier-synchronized samples at every period boundary crossed.
  if (config_.base.sampler.enabled) {
    while (next_sample_ts_ < window_start_) {
      TakeSample(next_sample_ts_);
      next_sample_ts_ += config_.base.sampler.period_ns;
    }
  }
}

void ShardedCluster::TakeSample(SimTimeNs ts) {
  StatsSample sample;
  sample.ts = ts;
  sample_scratch_.Reset();
  for (const auto& shard : shards_) {
    sample_scratch_.Merge(shard->demand_window_hist);
    shard->demand_window_hist.Reset();
  }
  sample.window_demand_ops = sample_scratch_.count();
  sample.window_demand_p50_ns = sample_scratch_.Percentile(0.50);
  sample.window_demand_p99_ns = sample_scratch_.Percentile(0.99);
  const bool health = shards_[0]->health != nullptr;
  if (health) {
    sample.node_state.reserve(nodes_.size());
    sample.node_ewma_ns.reserve(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n) {
      const HealthMonitor& monitor =
          *shards_[plan_.node_shard[n]]->health;
      sample.node_state.push_back(
          static_cast<uint8_t>(monitor.State(static_cast<uint32_t>(n))));
      sample.node_ewma_ns.push_back(
          monitor.NodeEwmaNs(static_cast<uint32_t>(n)));
    }
  }
  sample.host_free_frames.reserve(hosts_.size());
  sample.host_cache_pages.reserve(hosts_.size());
  for (const auto& host : hosts_) {
    sample.host_free_frames.push_back(host->free_frames());
    sample.host_cache_pages.push_back(host->cache_size());
  }
  samples_.push_back(std::move(sample));
}

void ShardedCluster::WorkerLoop(Shard& shard) {
  if (config_.pin_threads) {
    PinToCpu(shard.id);
  }
  for (;;) {
    ApplyPending(shard);
    shard.apps->StepUntil(window_end_, shard.hooks);
    barrier_->ArriveAndWait();
    if (stopped_) {
      break;
    }
    // Background catch-up for shards with nothing left to step (donor-only
    // shards, shards whose apps finished): scenario events keep firing so
    // failures/recoveries still land while the cluster runs. Shards with
    // live apps drain their queue through Machine::Access, exactly like
    // the single-queue engine - and the final window never drains here at
    // all, preserving "events after the last access never run".
    if (shard.apps->AllDone() && window_start_ > 0) {
      shard.events.RunUntil(window_start_ - 1);
    }
  }
}

std::vector<RunResult> ShardedCluster::Run(std::vector<ClusterAppSpec> specs) {
  if (ran_) {
    throw std::logic_error("leap::ShardedCluster: Run may be called once");
  }
  ran_ = true;

  // Partition specs by home shard, preserving global order within each
  // shard (BoundAppSet's min-time tie-break is index order, and Cluster
  // feeds specs in caller order - shards=1 must match exactly).
  for (size_t i = 0; i < specs.size(); ++i) {
    const ClusterAppSpec& spec = specs[i];
    if (spec.host >= hosts_.size()) {
      throw std::out_of_range("leap::ShardedCluster: unknown host in spec");
    }
    Shard& shard = *shards_[plan_.host_shard[spec.host]];
    shard.app_spec_index.push_back(i);
    shard.app_host.push_back(static_cast<uint32_t>(spec.host));
  }
  const bool mirrors_on = config_.mirror_every > 0 && plan_.shards > 1;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::vector<BoundAppSpec> bound;
    bound.reserve(shard.app_spec_index.size());
    for (const size_t i : shard.app_spec_index) {
      bound.push_back(
          {hosts_[specs[i].host].get(), specs[i].pid, specs[i].stream,
           specs[i].config});
    }
    shard.apps = std::make_unique<BoundAppSet>(std::move(bound));
    shard.hooks.keep_running = [this, &shard](size_t i) {
      return alive_[shard.app_host[i]] != 0;
    };
    shard.hooks.on_remote_access = [this, &shard, mirrors_on](
                                       size_t i, const AccessResult& access,
                                       SimTimeNs now) {
      const uint32_t h = shard.app_host[i];
      host_remote_hist_[h].Record(access.latency);
      if (access.type != AccessType::kMiss) {
        return;
      }
      if (config_.base.sampler.enabled) {
        shard.demand_window_hist.Record(access.latency);
      }
      if (mirrors_on && !shard.foreign_nodes.empty()) {
        const uint64_t tick = ++shard.host_tick[h];
        if (tick % config_.mirror_every == 0) {
          SendMirror(shard, h, tick, now);
        }
      }
    };
  }

  // Initial window: start at the earliest app step (apps typically begin
  // after a long warm-up; starting at 0 would spin thousands of empty
  // windows).
  SimTimeNs global_min = BoundAppSet::kNoStep;
  for (const auto& shard : shards_) {
    global_min = std::min(global_min, shard->apps->NextStepTime());
  }
  std::vector<RunResult> results(specs.size());
  if (global_min == BoundAppSet::kNoStep) {
    return results;  // no apps anywhere
  }
  window_start_ = (global_min / window_ns_) * window_ns_;
  window_end_ = window_start_ + window_ns_;
  stopped_ = false;
  windows_run_ = 0;
  if (config_.base.sampler.enabled) {
    const SimTimeNs period = config_.base.sampler.period_ns;
    next_sample_ts_ = ((window_start_ + period - 1) / period) * period;
  }
  barrier_ =
      std::make_unique<WindowBarrier>(plan_.shards, [this] { OnBarrier(); });

  if (plan_.shards == 1) {
    // Single shard: run inline. No threads, no pinning - the worker loop
    // plus barrier degenerate to exactly the single-queue engine's loop.
    WorkerLoop(*shards_[0]);
  } else {
    for (const auto& shard : shards_) {
      shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(*s); });
    }
    for (const auto& shard : shards_) {
      shard->worker.join();
    }
  }

  for (const auto& shard : shards_) {
    std::vector<RunResult> shard_results = shard->apps->TakeResults();
    for (size_t j = 0; j < shard_results.size(); ++j) {
      results[shard->app_spec_index[j]] = std::move(shard_results[j]);
    }
  }
  return results;
}

ClusterStats ShardedCluster::Stats() const {
  ClusterStats stats;
  for (const auto& shard : shards_) {
    stats.totals.Merge(shard->counters);
  }
  for (const auto& host : hosts_) {
    stats.totals.Merge(host->counters());
  }
  stats.node_slabs.reserve(nodes_.size());
  stats.node_reads.reserve(nodes_.size());
  stats.node_writes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    stats.node_slabs.push_back(node->mapped_slabs());
    stats.node_reads.push_back(node->reads_served());
    stats.node_writes.push_back(node->writes_served());
  }
  for (const auto& shard : shards_) {
    stats.fabric_ops += shard->fabric->ops();
    stats.fabric_bytes += shard->fabric->bytes();
  }
  // Per-link class counts: each op is charged on exactly one shard's
  // fabric, so summing the same link across every fabric is exact.
  stats.host_uplink_classes.resize(
      std::max<size_t>(1, hosts_.size()));
  stats.node_downlink_classes.resize(nodes_.size());
  for (const auto& shard : shards_) {
    for (size_t h = 0; h < stats.host_uplink_classes.size(); ++h) {
      const LinkClassCounts& link =
          shard->fabric->host_classes(static_cast<uint32_t>(h));
      for (size_t c = 0; c < kIoClassCount; ++c) {
        stats.host_uplink_classes[h].ops[c] += link.ops[c];
        stats.host_uplink_classes[h].bytes[c] += link.bytes[c];
      }
    }
    for (size_t n = 0; n < stats.node_downlink_classes.size(); ++n) {
      const LinkClassCounts& link =
          shard->fabric->node_classes(static_cast<uint32_t>(n));
      for (size_t c = 0; c < kIoClassCount; ++c) {
        stats.node_downlink_classes[n].ops[c] += link.ops[c];
        stats.node_downlink_classes[n].bytes[c] += link.bytes[c];
      }
    }
  }
  for (size_t c = 0; c < kIoClassCount; ++c) {
    const auto cls = static_cast<IoClass>(c);
    double delay_sum = 0.0, sojourn_sum = 0.0;
    uint64_t delay_ops = 0, sojourn_ops = 0;
    double single_ewma = 0.0, weighted_ewma = 0.0;
    size_t ewma_contributors = 0;
    for (const auto& shard : shards_) {
      const Fabric& fabric = *shard->fabric;
      delay_sum += fabric.ClassQueueDelaySumNs(cls);
      sojourn_sum += fabric.ClassSojournSumNs(cls);
      sojourn_ops += fabric.ClassSojournOps(cls);
      const uint64_t ops = fabric.ClassQueueDelayOps(cls);
      delay_ops += ops;
      if (ops > 0) {
        ++ewma_contributors;
        single_ewma = fabric.QueueDelayEwmaNs(cls);
        weighted_ewma +=
            fabric.QueueDelayEwmaNs(cls) * static_cast<double>(ops);
      }
    }
    // One contributing shard: copy its EWMA verbatim (float-exact, and
    // therefore bit-identical to Cluster at shards=1). Several: the
    // ops-weighted mean is the sensible cluster-wide summary.
    stats.class_queue_delay_ewma_ns[c] =
        ewma_contributors == 0
            ? 0.0
            : (ewma_contributors == 1
                   ? single_ewma
                   : weighted_ewma / static_cast<double>(delay_ops));
    stats.class_queue_delay_mean_ns[c] =
        delay_ops == 0 ? 0.0 : delay_sum / static_cast<double>(delay_ops);
    stats.class_sojourn_mean_ns[c] =
        sojourn_ops == 0 ? 0.0 : sojourn_sum / static_cast<double>(sojourn_ops);
  }
  if (shards_[0]->health != nullptr) {
    stats.node_health_ewma_ns.reserve(nodes_.size());
    stats.node_health_state.reserve(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n) {
      // Each node's health lives on its home shard's monitor: only home
      // hosts read from it, so only that monitor ever saw its latencies.
      const HealthMonitor& monitor = *shards_[plan_.node_shard[n]]->health;
      const auto id = static_cast<uint32_t>(n);
      stats.node_health_ewma_ns.push_back(monitor.NodeEwmaNs(id));
      stats.node_health_state.push_back(monitor.State(id));
    }
  }
  // Stage sums add; demand-stage tail percentiles recompute over the
  // merged histograms (a p99 of p99s would be meaningless).
  for (const auto& shard : shards_) {
    const StageBreakdown shard_stages = shard->fabric->Stages();
    for (size_t c = 0; c < kIoClassCount; ++c) {
      StageBreakdown::Stage& dst = stats.stages.cls[c];
      const StageBreakdown::Stage& src = shard_stages.cls[c];
      dst.software_ns += src.software_ns;
      dst.queue_ns += src.queue_ns;
      dst.wire_ns += src.wire_ns;
      dst.stall_ns += src.stall_ns;
      dst.service_ns += src.service_ns;
      dst.ops += src.ops;
    }
  }
  {
    std::array<uint64_t, Fabric::kDemandStageHists> p99{};
    Histogram merged;
    for (size_t i = 0; i < Fabric::kDemandStageHists; ++i) {
      merged.Reset();
      for (const auto& shard : shards_) {
        merged.Merge(shard->fabric->DemandStageHist(i));
      }
      p99[i] = merged.Percentile(0.99);
    }
    stats.stages.demand_p99_software_ns = p99[0];
    stats.stages.demand_p99_queue_ns = p99[1];
    stats.stages.demand_p99_wire_ns = p99[2];
    stats.stages.demand_p99_stall_ns = p99[3];
    stats.stages.demand_p99_service_ns = p99[4];
    stats.stages.demand_p99_total_ns = p99[5];
  }
  for (const auto& host : hosts_) {
    const TieredStore* tiered = host->tiered_store();
    if (tiered == nullptr) {
      continue;
    }
    if (stats.tier_pages.empty()) {
      stats.tier_pages.resize(kTierCount, 0);
    }
    for (size_t t = 0; t < kTierCount; ++t) {
      stats.tier_pages[t] += tiered->TierPages(t);
    }
  }
  return stats;
}

uint64_t ShardedCluster::mailbox_overflows() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& mailbox : shard->out) {
      total += mailbox->overflowed();
    }
  }
  return total;
}

}  // namespace leap
