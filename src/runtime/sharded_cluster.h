// Sharded parallel cluster engine: the single-queue Cluster's semantics,
// partitioned across worker threads.
//
// The cluster is split by a ShardPlan into shards, each owning a block of
// hosts and a slice of donor nodes, with its own EventQueue, Fabric,
// SlabPlacer, HealthMonitor, RNG streams, and worker thread. Each host's
// donor pool is its home shard's node slice, so the entire synchronous
// demand path (fault -> HostAgent -> fabric -> node) stays shard-local and
// byte-for-byte identical to the single-queue engine. Cross-shard traffic
// is asynchronous by construction: every Nth demand miss emits a
// fire-and-forget mirror write (cross-domain replica, DR-style) to a
// foreign node, carried by an SPSC mailbox and applied by the target shard
// at its fabric downlink.
//
// Time advances in conservative lockstep windows of width
// FabricLookaheadNs (the fabric's minimum one-op latency): within a
// window every shard runs free; at the window barrier the last-arriving
// worker drains all mailboxes, decides the next window (advancing over
// idle gaps in one jump), and snapshots barrier-synchronized samples.
// Ops sent in window k carry effect_ts >= end(k), so every op applicable
// in a window crossed the barrier at least one window earlier - receivers
// apply them sorted by (effect_ts, sender, seq), making the applied
// sequence independent of thread scheduling.
//
// Determinism contract (pinned by sharded_cluster_test):
//  - same seed + same shard count => bit-identical ClusterStats,
//  - shards=1 => bit-identical to Cluster (same construction order, same
//    seed draws, same stepping sequence, no mirrors, no extra drains).
#ifndef LEAP_SRC_RUNTIME_SHARDED_CLUSTER_H_
#define LEAP_SRC_RUNTIME_SHARDED_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/obs/stats_sampler.h"
#include "src/runtime/cluster.h"
#include "src/runtime/shard_plan.h"
#include "src/sim/shard_sync.h"

namespace leap {

struct ShardedClusterConfig {
  // Geometry, workload template, fabric, placement, seed, resilience -
  // everything the single-queue engine takes. trace must stay disabled
  // (the flight recorder's ring is not shard-safe; the ctor throws).
  ClusterConfig base;
  // Shard count; 0 = auto (min of host count and hardware threads,
  // at least 1). Clamped to [1, max(hosts, nodes)] by the planner.
  size_t shards = 0;
  // Window width override; 0 = derive FabricLookaheadNs(base.fabric).
  SimTimeNs window_ns = 0;
  // Cross-shard mirror cadence: every Nth demand miss per host sends an
  // async replica write to a foreign-shard node. 0 disables; ignored at
  // shards=1 (there is no foreign shard).
  size_t mirror_every = 0;
  // Pin worker i to CPU (i % hardware threads) on Linux.
  bool pin_threads = false;
  // Per-(sender, receiver) mailbox ring capacity (rounded up to a power
  // of two; overflow spills safely either way).
  size_t mailbox_capacity = 4096;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(const ShardedClusterConfig& config);
  ~ShardedCluster();

  size_t num_hosts() const { return hosts_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_shards() const { return plan_.shards; }
  const ShardPlan& plan() const { return plan_; }
  SimTimeNs window_ns() const { return window_ns_; }
  // Windows executed by the last Run (lockstep rounds, jumps included).
  uint64_t windows_run() const { return windows_run_; }
  Machine& host(size_t i) { return *hosts_[i]; }
  RemoteAgent& node(size_t i) { return *nodes_[i]; }
  bool HostAlive(size_t host) const { return alive_[host] != 0; }

  // --- failure scenarios (schedule before Run; they fire on the target's
  // home-shard queue, so injection stays deterministic) -------------------
  void ScheduleNodeFailure(uint32_t node, SimTimeNs at);
  void ScheduleNodeRecovery(uint32_t node, SimTimeNs at);
  void ScheduleNodeGray(uint32_t node, double stretch, SimTimeNs at,
                        SimTimeNs until = 0);
  void ScheduleNodeDelaySpike(uint32_t node, SimTimeNs extra_ns, SimTimeNs at,
                              SimTimeNs until = 0);
  void ScheduleHostLeave(size_t host, SimTimeNs at);

  // Runs all workloads to completion on the shard worker pool. One Run per
  // instance (like a process lifetime); results come back in spec order.
  std::vector<RunResult> Run(std::vector<ClusterAppSpec> specs);

  // Remote (non-resident) access latency per host, recorded by Run.
  const Histogram& host_remote_latency(size_t host) const {
    return host_remote_hist_[host];
  }

  // Merged cluster-wide snapshot, field-compatible with Cluster::Stats():
  // counters/link counts/stage sums add across shards, per-class means
  // recompute from summed accumulators, demand-stage tail percentiles
  // recompute from merged histograms.
  ClusterStats Stats() const;

  // Barrier-sampled time series (enabled by base.sampler.enabled): one
  // StatsSample per sampler period, snapshotted inside the window barrier
  // where every worker is quiesced.
  const std::vector<StatsSample>& samples() const { return samples_; }

  // Mailbox pressure telemetry: total ops that overflowed a ring into the
  // sender-side spill (delivery unaffected).
  uint64_t mailbox_overflows() const;

 private:
  struct Shard;

  void BuildShard(size_t s);
  size_t AddHost(Shard& shard);
  void RemoveHost(size_t host);
  void WorkerLoop(Shard& shard);
  void OnBarrier();          // completion hook: transfer, advance, sample
  void ApplyPending(Shard& shard);
  void SendMirror(Shard& shard, uint32_t host, uint64_t tick, SimTimeNs now);
  void TakeSample(SimTimeNs ts);

  ShardedClusterConfig config_;
  ShardPlan plan_;
  SimTimeNs window_ns_ = 1;

  // Global object tables, indexed by global id. Each element is touched by
  // exactly one shard's worker during Run (hosts/alive/histograms by the
  // home shard; nodes by home shard plus barrier-serial mirror applies).
  std::vector<std::unique_ptr<RemoteAgent>> nodes_;
  std::vector<std::unique_ptr<Machine>> hosts_;
  std::vector<uint8_t> alive_;  // NOT vector<bool>: per-element writes must
                                // not share bytes across shards
  std::vector<Histogram> host_remote_hist_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Rng host_seeder_;

  // Window protocol state. Written only inside the barrier completion (or
  // before workers start); the barrier's mutex publishes every write to
  // every worker before its next window.
  SimTimeNs window_start_ = 0;
  SimTimeNs window_end_ = 0;
  bool stopped_ = false;
  uint64_t windows_run_ = 0;
  std::unique_ptr<WindowBarrier> barrier_;
  bool ran_ = false;

  // Barrier sampling (base.sampler.enabled).
  SimTimeNs next_sample_ts_ = 0;
  std::vector<StatsSample> samples_;
  Histogram sample_scratch_;
};

}  // namespace leap

#endif  // LEAP_SRC_RUNTIME_SHARDED_CLUSTER_H_
