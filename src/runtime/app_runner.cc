#include "src/runtime/app_runner.h"

#include <algorithm>

namespace leap {

BoundAppSet::BoundAppSet(std::vector<BoundAppSpec> specs) {
  apps_.reserve(specs.size());
  for (const BoundAppSpec& spec : specs) {
    AppState state;
    state.spec = spec;
    state.rng = Rng(spec.config.seed);
    state.local_time = spec.config.start_time_ns;
    state.result.app_name = spec.stream->name();
    apps_.push_back(std::move(state));
  }
}

void BoundAppSet::Finish(AppState& app, bool finished) {
  const SimTimeNs elapsed = app.local_time - app.spec.config.start_time_ns;
  app.done = true;
  app.result.finished = finished;
  app.result.completion_ns = elapsed;
  app.result.accesses = app.accesses;
  app.result.app_ops = app.ops;
  app.result.ops_per_sec =
      elapsed == 0 ? 0.0 : static_cast<double>(app.ops) / ToSec(elapsed);
}

void BoundAppSet::Step(AppState& app, size_t index, const RunHooks& hooks) {
  Machine& machine = *app.spec.machine;
  const MemOp op = app.spec.stream->Next(app.rng);
  app.local_time += op.think_ns;
  const AccessResult access =
      machine.Access(app.spec.pid, op.vpn, op.write, app.local_time);
  app.local_time += access.latency;
  ++app.accesses;
  if (op.op_end) {
    ++app.ops;
  }

  app.result.access_latency.Record(access.latency);
  if (access.type != AccessType::kLocalHit &&
      access.type != AccessType::kMinorFault) {
    app.result.remote_access_latency.Record(access.latency);
    if (access.type == AccessType::kMiss) {
      app.result.miss_latency.Record(access.latency);
    }
    if (hooks.on_remote_access) {
      hooks.on_remote_access(index, access, app.local_time);
    }
  }

  const SimTimeNs elapsed = app.local_time - app.spec.config.start_time_ns;
  const bool capped = app.spec.config.time_cap_ns != 0 &&
                      elapsed > app.spec.config.time_cap_ns;
  if (app.accesses >= app.spec.config.total_accesses || capped) {
    Finish(app, /*finished=*/!capped);
  }
}

void BoundAppSet::StepUntil(SimTimeNs until, const RunHooks& hooks) {
  // Global-time-ordered interleaving: always advance the app whose next
  // access happens earliest. Shared state (NIC queues, devices, frame
  // pools, a cluster's fabric and event queue) then observes a single
  // near-non-decreasing timeline - the contention model and the
  // determinism guarantee at once.
  for (;;) {
    AppState* next = nullptr;
    size_t next_index = 0;
    for (size_t i = 0; i < apps_.size(); ++i) {
      AppState& app = apps_[i];
      if (!app.done &&
          (next == nullptr || app.local_time < next->local_time)) {
        next = &app;
        next_index = i;
      }
    }
    if (next == nullptr || next->local_time >= until) {
      break;
    }
    if (hooks.keep_running && !hooks.keep_running(next_index)) {
      Finish(*next, /*finished=*/false);
      continue;
    }
    Step(*next, next_index, hooks);
  }
}

bool BoundAppSet::AllDone() const {
  for (const AppState& app : apps_) {
    if (!app.done) {
      return false;
    }
  }
  return true;
}

SimTimeNs BoundAppSet::NextStepTime() const {
  SimTimeNs earliest = kNoStep;
  for (const AppState& app : apps_) {
    if (!app.done && app.local_time < earliest) {
      earliest = app.local_time;
    }
  }
  return earliest;
}

std::vector<RunResult> BoundAppSet::TakeResults() {
  std::vector<RunResult> results;
  results.reserve(apps_.size());
  for (AppState& app : apps_) {
    results.push_back(std::move(app.result));
  }
  return results;
}

RunResult RunApp(Machine& machine, Pid pid, AccessStream& stream,
                 const RunConfig& config) {
  std::vector<BoundAppSpec> specs = {{&machine, pid, &stream, config}};
  return RunBoundApps(std::move(specs))[0];
}

SimTimeNs WarmUp(Machine& machine, Pid pid, size_t pages, SimTimeNs start) {
  SimTimeNs now = start;
  for (Vpn v = 0; v < pages; ++v) {
    now += 150;  // allocation/copy think time
    now += machine.Access(pid, v, /*write=*/true, now).latency;
  }
  return now;
}

std::vector<RunResult> RunAppsConcurrently(Machine& machine,
                                           std::vector<MultiAppSpec> specs) {
  std::vector<BoundAppSpec> bound;
  bound.reserve(specs.size());
  for (const MultiAppSpec& spec : specs) {
    bound.push_back({&machine, spec.pid, spec.stream, spec.config});
  }
  return RunBoundApps(std::move(bound));
}

std::vector<RunResult> RunBoundApps(std::vector<BoundAppSpec> specs,
                                    const RunHooks& hooks) {
  BoundAppSet apps(std::move(specs));
  apps.StepUntil(BoundAppSet::kNoStep, hooks);
  return apps.TakeResults();
}

}  // namespace leap
