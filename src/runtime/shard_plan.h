// Shard planning for the parallel cluster engine: how hosts and donor
// nodes partition into shards, and how the conservative lookahead horizon
// derives from the fabric model.
#ifndef LEAP_SRC_RUNTIME_SHARD_PLAN_H_
#define LEAP_SRC_RUNTIME_SHARD_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/cluster/fabric.h"
#include "src/sim/types.h"

namespace leap {

// Static assignment of every host and donor node to a home shard.
// Hosts get contiguous blocks (host h's workload neighbors stay in its
// shard, matching the per-rack intuition); nodes round-robin so every
// shard gets a slice of donor capacity. Shards with hosts but no nodes
// (or vice versa) are legal: a donor-only shard just runs fabric/repair
// events on its own queue.
struct ShardPlan {
  size_t shards = 1;
  std::vector<uint32_t> host_shard;  // host id -> shard
  std::vector<uint32_t> node_shard;  // node id -> shard
  std::vector<std::vector<uint32_t>> shard_hosts;  // shard -> host ids
  std::vector<std::vector<uint32_t>> shard_nodes;  // shard -> node ids
};

// Builds the plan. `shards` is clamped to [1, max(hosts, nodes)] so every
// shard owns at least one host or one node.
ShardPlan BuildShardPlan(size_t hosts, size_t nodes, size_t shards);

// Conservative lookahead horizon: no cross-shard op can take effect
// sooner than the fabric's best case, which is the minimum base latency
// plus one op's wire serialization at full link speed. Windows of this
// width let every shard run ahead freely - anything a peer sends lands at
// least one full window in the future.
SimTimeNs FabricLookaheadNs(const FabricConfig& config);

}  // namespace leap

#endif  // LEAP_SRC_RUNTIME_SHARD_PLAN_H_
