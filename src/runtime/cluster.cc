#include "src/runtime/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace leap {

size_t ClusterStats::SlabImbalance() const {
  if (node_slabs.empty()) {
    return 0;
  }
  const auto [min_it, max_it] =
      std::minmax_element(node_slabs.begin(), node_slabs.end());
  return *max_it - *min_it;
}

uint64_t ClusterStats::ClassOps(IoClass cls) const {
  uint64_t total = 0;
  for (const LinkClassCounts& link : node_downlink_classes) {
    total += link.ops[static_cast<size_t>(cls)];
  }
  return total;
}

uint64_t ClusterStats::ClassBytes(IoClass cls) const {
  uint64_t total = 0;
  for (const LinkClassCounts& link : node_downlink_classes) {
    total += link.bytes[static_cast<size_t>(cls)];
  }
  return total;
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      fabric_(std::make_unique<Fabric>(config.fabric,
                                       std::max<size_t>(1, config.hosts),
                                       std::max<size_t>(1, config.nodes))),
      placer_(MakeSlabPlacer(config.placement)),
      host_seeder_(config.seed) {
  // Reject nonsense resilience knobs before any host exists (no-op when
  // resilience is disabled; SetResilience re-validates per host anyway,
  // but failing here puts the throw at the config site).
  config_.resilience.Validate();
  for (size_t n = 0; n < std::max<size_t>(1, config_.nodes); ++n) {
    nodes_.push_back(std::make_unique<RemoteAgent>(
        static_cast<uint32_t>(n), config_.node_capacity_slabs));
  }
  if (config_.resilience.enabled || config_.health_monitor_enabled) {
    health_monitor_ =
        std::make_unique<HealthMonitor>(config_.health, nodes_.size());
    health_monitor_->SetCounters(&counters_);
  }
  for (size_t h = 0; h < config_.hosts; ++h) {
    AddHost();
  }
}

size_t Cluster::AddHost() {
  const size_t id = hosts_.size();
  while (fabric_->num_hosts() <= id) {
    fabric_->AddHost();
  }
  MachineConfig host_config = config_.host;
  host_config.medium = Medium::kRemote;
  host_config.seed = host_seeder_.NextU64();

  MachineEnv env;
  env.shared_events = &events_;
  env.fabric = fabric_.get();
  env.placer = placer_.get();
  env.host_id = static_cast<uint32_t>(id);
  env.remote_pool.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    env.remote_pool.push_back(node.get());
  }

  hosts_.push_back(std::make_unique<Machine>(host_config, env));
  HostAgent* agent = hosts_.back()->host_agent();
  if (health_monitor_ != nullptr) {
    agent->SetHealthTracker(health_monitor_.get());
  }
  if (config_.resilience.enabled) {
    agent->SetResilience(config_.resilience);
  }
  alive_.push_back(true);
  host_remote_hist_.emplace_back();
  counters_.Add(counter::kHostJoins);
  return id;
}

void Cluster::RemoveHost(size_t host) {
  if (host >= hosts_.size() || !alive_[host]) {
    return;
  }
  alive_[host] = false;
  // Abrupt departure: the host's slabs return to the pool (its remote data
  // is gone, like a lease expiring in Infiniswap).
  hosts_[host]->host_agent()->ReleaseAllSlabs();
  counters_.Add(counter::kHostLeaves);
}

void Cluster::ScheduleNodeFailure(uint32_t node, SimTimeNs at) {
  // Fail fast at schedule time; an unchecked id would blow up later, deep
  // inside some host's event drain.
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::Cluster: unknown node");
  }
  events_.ScheduleAt(at, [this, node](SimTimeNs when) {
    nodes_[node]->Fail();
    counters_.Add(counter::kNodeFailures);
    // Every live host re-maps the slabs that lost a replica and
    // re-replicates from survivors; the repair traffic rides the fabric at
    // `when`, congesting it like a real rebuild storm.
    for (size_t h = 0; h < hosts_.size(); ++h) {
      if (alive_[h]) {
        hosts_[h]->host_agent()->RepairSlabsAfterFailure(node, when);
      }
    }
  });
}

void Cluster::ScheduleNodeRecovery(uint32_t node, SimTimeNs at) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::Cluster: unknown node");
  }
  events_.ScheduleAt(at, [this, node](SimTimeNs /*when*/) {
    nodes_[node]->Recover();
    counters_.Add(counter::kNodeRecoveries);
  });
}

void Cluster::ScheduleCorrelatedFailure(std::vector<uint32_t> group,
                                        SimTimeNs at) {
  for (const uint32_t node : group) {
    if (node >= nodes_.size()) {
      throw std::out_of_range("leap::Cluster: unknown node");
    }
  }
  events_.ScheduleAt(at, [this, group = std::move(group)](SimTimeNs when) {
    // The whole domain drops at once BEFORE any repair runs: repair of a
    // slab replicated entirely inside the domain must see every copy gone
    // (sequential single-node failures would let the first repair re-copy
    // from a node that is about to die).
    for (const uint32_t node : group) {
      nodes_[node]->Fail();
      counters_.Add(counter::kNodeFailures);
    }
    for (const uint32_t node : group) {
      for (size_t h = 0; h < hosts_.size(); ++h) {
        if (alive_[h]) {
          hosts_[h]->host_agent()->RepairSlabsAfterFailure(node, when);
        }
      }
    }
  });
}

void Cluster::ScheduleNodeGray(uint32_t node, double stretch, SimTimeNs at,
                               SimTimeNs until) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::Cluster: unknown node");
  }
  if (stretch <= 0.0) {
    throw std::invalid_argument("leap::Cluster: gray stretch must be > 0");
  }
  events_.ScheduleAt(at, [this, node, stretch](SimTimeNs /*when*/) {
    fabric_->SetNodeSlowdown(node, stretch);
    if (stretch != 1.0) {  // restoring full speed is not a fault event
      counters_.Add(counter::kGrayFaultEvents);
    }
  });
  if (until > at) {
    events_.ScheduleAt(until, [this, node](SimTimeNs /*when*/) {
      fabric_->SetNodeSlowdown(node, 1.0);
    });
  }
}

void Cluster::ScheduleNodeDelaySpike(uint32_t node, SimTimeNs extra_ns,
                                     SimTimeNs at, SimTimeNs until) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::Cluster: unknown node");
  }
  events_.ScheduleAt(at, [this, node, extra_ns](SimTimeNs /*when*/) {
    fabric_->SetNodeExtraDelayNs(node, extra_ns);
    counters_.Add(counter::kDelaySpikeEvents);
  });
  if (until > at) {
    events_.ScheduleAt(until, [this, node](SimTimeNs /*when*/) {
      fabric_->SetNodeExtraDelayNs(node, 0);
    });
  }
}

void Cluster::ScheduleHostLeave(size_t host, SimTimeNs at) {
  if (host >= hosts_.size()) {
    throw std::out_of_range("leap::Cluster: unknown host");
  }
  events_.ScheduleAt(at,
                     [this, host](SimTimeNs /*when*/) { RemoveHost(host); });
}

std::vector<RunResult> Cluster::Run(std::vector<ClusterAppSpec> specs) {
  // Lower onto the shared global-time-ordered loop (app_runner), adding
  // only what is cluster-specific: stopping apps whose host left, and the
  // per-host remote-latency histograms.
  std::vector<BoundAppSpec> bound;
  bound.reserve(specs.size());
  for (const ClusterAppSpec& spec : specs) {
    bound.push_back({hosts_[spec.host].get(), spec.pid, spec.stream,
                     spec.config});
  }
  RunHooks hooks;
  hooks.keep_running = [this, &specs](size_t i) {
    return alive_[specs[i].host];
  };
  hooks.on_remote_access = [this, &specs](size_t i,
                                          const AccessResult& access) {
    host_remote_hist_[specs[i].host].Record(access.latency);
  };
  return RunBoundApps(std::move(bound), hooks);
}

ClusterStats Cluster::Stats() const {
  ClusterStats stats;
  for (size_t i = 0; i < kCounterCount; ++i) {
    const CounterId id = static_cast<CounterId>(i);
    uint64_t total = counters_.Get(id);
    for (const auto& host : hosts_) {
      total += host->counters().Get(id);
    }
    stats.totals.Add(id, total);
  }
  stats.node_slabs.reserve(nodes_.size());
  stats.node_reads.reserve(nodes_.size());
  stats.node_writes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    stats.node_slabs.push_back(node->mapped_slabs());
    stats.node_reads.push_back(node->reads_served());
    stats.node_writes.push_back(node->writes_served());
  }
  stats.fabric_ops = fabric_->ops();
  stats.fabric_bytes = fabric_->bytes();
  stats.host_uplink_classes.reserve(fabric_->num_hosts());
  for (size_t h = 0; h < fabric_->num_hosts(); ++h) {
    stats.host_uplink_classes.push_back(
        fabric_->host_classes(static_cast<uint32_t>(h)));
  }
  stats.node_downlink_classes.reserve(fabric_->num_nodes());
  for (size_t n = 0; n < fabric_->num_nodes(); ++n) {
    stats.node_downlink_classes.push_back(
        fabric_->node_classes(static_cast<uint32_t>(n)));
  }
  for (size_t c = 0; c < kIoClassCount; ++c) {
    stats.class_queue_delay_ewma_ns[c] =
        fabric_->QueueDelayEwmaNs(static_cast<IoClass>(c));
    stats.class_queue_delay_mean_ns[c] =
        fabric_->MeanQueueDelayNs(static_cast<IoClass>(c));
    stats.class_sojourn_mean_ns[c] =
        fabric_->MeanSojournNs(static_cast<IoClass>(c));
  }
  if (health_monitor_ != nullptr) {
    stats.node_health_ewma_ns.reserve(nodes_.size());
    stats.node_health_state.reserve(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n) {
      const auto id = static_cast<uint32_t>(n);
      stats.node_health_ewma_ns.push_back(health_monitor_->NodeEwmaNs(id));
      stats.node_health_state.push_back(health_monitor_->State(id));
    }
  }
  return stats;
}

}  // namespace leap
