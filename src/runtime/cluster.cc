#include "src/runtime/cluster.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/stats/table.h"

namespace leap {

namespace {

// Formatting helpers for DumpStats (cold path; std::string churn is fine).
std::string FmtU64(uint64_t v) { return std::to_string(v); }

std::string FmtNs(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ns);
  return buf;
}

// Fault-injection instants on the recorder's node tracks. `payload` rides
// in TraceEvent::slot (stretch x1000 for gray, extra ns for spikes) so the
// injected magnitude is visible in the trace viewer's args pane.
void RecordFault(TraceRecorder* trace, TraceEventKind kind, SimTimeNs ts,
                 uint32_t node, uint64_t payload = 0) {
  if (trace == nullptr) {
    return;
  }
  TraceEvent e;
  e.kind = kind;
  e.ts = ts;
  e.node = node;
  e.slot = payload;
  trace->Record(e);
}

}  // namespace

size_t ClusterStats::SlabImbalance() const {
  if (node_slabs.empty()) {
    return 0;
  }
  const auto [min_it, max_it] =
      std::minmax_element(node_slabs.begin(), node_slabs.end());
  return *max_it - *min_it;
}

uint64_t ClusterStats::ClassOps(IoClass cls) const {
  uint64_t total = 0;
  for (const LinkClassCounts& link : node_downlink_classes) {
    total += link.ops[static_cast<size_t>(cls)];
  }
  return total;
}

uint64_t ClusterStats::ClassBytes(IoClass cls) const {
  uint64_t total = 0;
  for (const LinkClassCounts& link : node_downlink_classes) {
    total += link.bytes[static_cast<size_t>(cls)];
  }
  return total;
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      fabric_(std::make_unique<Fabric>(config.fabric,
                                       std::max<size_t>(1, config.hosts),
                                       std::max<size_t>(1, config.nodes))),
      placer_(MakeSlabPlacer(config.placement)),
      host_seeder_(config.seed) {
  // Reject nonsense resilience knobs before any host exists (no-op when
  // resilience is disabled; SetResilience re-validates per host anyway,
  // but failing here puts the throw at the config site).
  config_.resilience.Validate();
  for (size_t n = 0; n < std::max<size_t>(1, config_.nodes); ++n) {
    nodes_.push_back(std::make_unique<RemoteAgent>(
        static_cast<uint32_t>(n), config_.node_capacity_slabs));
  }
  if (config_.resilience.enabled || config_.health_monitor_enabled) {
    health_monitor_ =
        std::make_unique<HealthMonitor>(config_.health, nodes_.size());
    health_monitor_->SetCounters(&counters_);
  }
  // Observability wiring must precede AddHost: each MachineEnv carries the
  // recorder pointer at construction. Disabled means no recorder exists at
  // all - the null pointer IS the off switch everywhere downstream.
  if (config_.trace.enabled) {
    trace_ = std::make_unique<TraceRecorder>(config_.trace);
    fabric_->SetTrace(trace_.get());
    if (health_monitor_ != nullptr) {
      health_monitor_->SetTrace(trace_.get());
    }
  }
  if (config_.sampler.enabled) {
    sampler_ = std::make_unique<StatsSampler>(
        config_.sampler, &events_,
        [this](SimTimeNs now, StatsSample& sample) {
          CollectSample(now, sample);
        });
    sampler_->Start(config_.sampler.period_ns);
  }
  for (size_t h = 0; h < config_.hosts; ++h) {
    AddHost();
  }
}

size_t Cluster::AddHost() {
  const size_t id = hosts_.size();
  while (fabric_->num_hosts() <= id) {
    fabric_->AddHost();
  }
  MachineConfig host_config = config_.host;
  host_config.medium = Medium::kRemote;
  host_config.seed = host_seeder_.NextU64();

  MachineEnv env;
  env.shared_events = &events_;
  env.fabric = fabric_.get();
  env.placer = placer_.get();
  env.host_id = static_cast<uint32_t>(id);
  env.trace = trace_.get();
  env.remote_pool.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    env.remote_pool.push_back(node.get());
  }

  hosts_.push_back(std::make_unique<Machine>(host_config, env));
  HostAgent* agent = hosts_.back()->host_agent();
  if (health_monitor_ != nullptr) {
    agent->SetHealthTracker(health_monitor_.get());
  }
  if (config_.resilience.enabled) {
    agent->SetResilience(config_.resilience);
  }
  alive_.push_back(true);
  host_remote_hist_.emplace_back();
  counters_.Add(counter::kHostJoins);
  return id;
}

void Cluster::RemoveHost(size_t host) {
  if (host >= hosts_.size() || !alive_[host]) {
    return;
  }
  alive_[host] = false;
  // Abrupt departure: the host's slabs return to the pool (its remote data
  // is gone, like a lease expiring in Infiniswap).
  hosts_[host]->host_agent()->ReleaseAllSlabs();
  counters_.Add(counter::kHostLeaves);
}

void Cluster::ScheduleNodeFailure(uint32_t node, SimTimeNs at) {
  // Fail fast at schedule time; an unchecked id would blow up later, deep
  // inside some host's event drain.
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::Cluster: unknown node");
  }
  events_.ScheduleAt(at, [this, node](SimTimeNs when) {
    nodes_[node]->Fail();
    counters_.Add(counter::kNodeFailures);
    RecordFault(trace_.get(), TraceEventKind::kNodeFail, when, node);
    // Every live host re-maps the slabs that lost a replica and
    // re-replicates from survivors; the repair traffic rides the fabric at
    // `when`, congesting it like a real rebuild storm.
    for (size_t h = 0; h < hosts_.size(); ++h) {
      if (alive_[h]) {
        hosts_[h]->host_agent()->RepairSlabsAfterFailure(node, when);
      }
    }
  });
}

void Cluster::ScheduleNodeRecovery(uint32_t node, SimTimeNs at) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::Cluster: unknown node");
  }
  events_.ScheduleAt(at, [this, node](SimTimeNs when) {
    nodes_[node]->Recover();
    counters_.Add(counter::kNodeRecoveries);
    RecordFault(trace_.get(), TraceEventKind::kNodeRecover, when, node);
  });
}

void Cluster::ScheduleCorrelatedFailure(std::vector<uint32_t> group,
                                        SimTimeNs at) {
  for (const uint32_t node : group) {
    if (node >= nodes_.size()) {
      throw std::out_of_range("leap::Cluster: unknown node");
    }
  }
  events_.ScheduleAt(at, [this, group = std::move(group)](SimTimeNs when) {
    // The whole domain drops at once BEFORE any repair runs: repair of a
    // slab replicated entirely inside the domain must see every copy gone
    // (sequential single-node failures would let the first repair re-copy
    // from a node that is about to die).
    for (const uint32_t node : group) {
      nodes_[node]->Fail();
      counters_.Add(counter::kNodeFailures);
      RecordFault(trace_.get(), TraceEventKind::kNodeFail, when, node);
    }
    for (const uint32_t node : group) {
      for (size_t h = 0; h < hosts_.size(); ++h) {
        if (alive_[h]) {
          hosts_[h]->host_agent()->RepairSlabsAfterFailure(node, when);
        }
      }
    }
  });
}

void Cluster::ScheduleNodeGray(uint32_t node, double stretch, SimTimeNs at,
                               SimTimeNs until) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::Cluster: unknown node");
  }
  if (stretch <= 0.0) {
    throw std::invalid_argument("leap::Cluster: gray stretch must be > 0");
  }
  events_.ScheduleAt(at, [this, node, stretch](SimTimeNs when) {
    fabric_->SetNodeSlowdown(node, stretch);
    if (stretch != 1.0) {  // restoring full speed is not a fault event
      counters_.Add(counter::kGrayFaultEvents);
      RecordFault(trace_.get(), TraceEventKind::kGraySet, when, node,
                  static_cast<uint64_t>(stretch * 1000.0));
    } else {
      RecordFault(trace_.get(), TraceEventKind::kGrayClear, when, node);
    }
  });
  if (until > at) {
    events_.ScheduleAt(until, [this, node](SimTimeNs when) {
      fabric_->SetNodeSlowdown(node, 1.0);
      RecordFault(trace_.get(), TraceEventKind::kGrayClear, when, node);
    });
  }
}

void Cluster::ScheduleNodeDelaySpike(uint32_t node, SimTimeNs extra_ns,
                                     SimTimeNs at, SimTimeNs until) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("leap::Cluster: unknown node");
  }
  events_.ScheduleAt(at, [this, node, extra_ns](SimTimeNs when) {
    fabric_->SetNodeExtraDelayNs(node, extra_ns);
    counters_.Add(counter::kDelaySpikeEvents);
    RecordFault(trace_.get(), TraceEventKind::kDelaySpike, when, node,
                extra_ns);
  });
  if (until > at) {
    events_.ScheduleAt(until, [this, node](SimTimeNs when) {
      fabric_->SetNodeExtraDelayNs(node, 0);
      RecordFault(trace_.get(), TraceEventKind::kDelaySpike, when, node, 0);
    });
  }
}

void Cluster::ScheduleHostLeave(size_t host, SimTimeNs at) {
  if (host >= hosts_.size()) {
    throw std::out_of_range("leap::Cluster: unknown host");
  }
  events_.ScheduleAt(at,
                     [this, host](SimTimeNs /*when*/) { RemoveHost(host); });
}

std::vector<RunResult> Cluster::Run(std::vector<ClusterAppSpec> specs) {
  // Lower onto the shared global-time-ordered loop (app_runner), adding
  // only what is cluster-specific: stopping apps whose host left, and the
  // per-host remote-latency histograms.
  std::vector<BoundAppSpec> bound;
  bound.reserve(specs.size());
  for (const ClusterAppSpec& spec : specs) {
    bound.push_back({hosts_[spec.host].get(), spec.pid, spec.stream,
                     spec.config});
  }
  RunHooks hooks;
  hooks.keep_running = [this, &specs](size_t i) {
    return alive_[specs[i].host];
  };
  hooks.on_remote_access = [this, &specs](size_t i, const AccessResult& access,
                                          SimTimeNs /*now*/) {
    host_remote_hist_[specs[i].host].Record(access.latency);
    // Windowed demand-miss latency for the sampler's p50/p99 time series
    // (reset every tick). Guarded so a sampler-free run pays nothing.
    if (sampler_ != nullptr && access.type == AccessType::kMiss) {
      demand_window_hist_.Record(access.latency);
    }
  };
  return RunBoundApps(std::move(bound), hooks);
}

ClusterStats Cluster::Stats() const {
  ClusterStats stats;
  stats.totals = counters_;
  for (const auto& host : hosts_) {
    stats.totals.Merge(host->counters());
  }
  stats.node_slabs.reserve(nodes_.size());
  stats.node_reads.reserve(nodes_.size());
  stats.node_writes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    stats.node_slabs.push_back(node->mapped_slabs());
    stats.node_reads.push_back(node->reads_served());
    stats.node_writes.push_back(node->writes_served());
  }
  stats.fabric_ops = fabric_->ops();
  stats.fabric_bytes = fabric_->bytes();
  stats.host_uplink_classes.reserve(fabric_->num_hosts());
  for (size_t h = 0; h < fabric_->num_hosts(); ++h) {
    stats.host_uplink_classes.push_back(
        fabric_->host_classes(static_cast<uint32_t>(h)));
  }
  stats.node_downlink_classes.reserve(fabric_->num_nodes());
  for (size_t n = 0; n < fabric_->num_nodes(); ++n) {
    stats.node_downlink_classes.push_back(
        fabric_->node_classes(static_cast<uint32_t>(n)));
  }
  for (size_t c = 0; c < kIoClassCount; ++c) {
    stats.class_queue_delay_ewma_ns[c] =
        fabric_->QueueDelayEwmaNs(static_cast<IoClass>(c));
    stats.class_queue_delay_mean_ns[c] =
        fabric_->MeanQueueDelayNs(static_cast<IoClass>(c));
    stats.class_sojourn_mean_ns[c] =
        fabric_->MeanSojournNs(static_cast<IoClass>(c));
  }
  if (health_monitor_ != nullptr) {
    stats.node_health_ewma_ns.reserve(nodes_.size());
    stats.node_health_state.reserve(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n) {
      const auto id = static_cast<uint32_t>(n);
      stats.node_health_ewma_ns.push_back(health_monitor_->NodeEwmaNs(id));
      stats.node_health_state.push_back(health_monitor_->State(id));
    }
  }
  stats.stages = fabric_->Stages();
  for (const auto& host : hosts_) {
    const TieredStore* tiered = host->tiered_store();
    if (tiered == nullptr) {
      continue;
    }
    if (stats.tier_pages.empty()) {
      stats.tier_pages.resize(kTierCount, 0);
    }
    for (size_t t = 0; t < kTierCount; ++t) {
      stats.tier_pages[t] += tiered->TierPages(t);
    }
  }
  return stats;
}

void Cluster::CollectSample(SimTimeNs now, StatsSample& sample) {
  (void)now;
  sample.window_demand_ops = demand_window_hist_.count();
  sample.window_demand_p50_ns = demand_window_hist_.Percentile(0.50);
  sample.window_demand_p99_ns = demand_window_hist_.Percentile(0.99);
  demand_window_hist_.Reset();
  sample.demand_queue_delay_ewma_ns =
      fabric_->QueueDelayEwmaNs(IoClass::kDemandRead);
  sample.prefetch_queue_delay_ewma_ns =
      fabric_->QueueDelayEwmaNs(IoClass::kPrefetch);
  if (health_monitor_ != nullptr) {
    sample.node_state.reserve(nodes_.size());
    sample.node_ewma_ns.reserve(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n) {
      const auto id = static_cast<uint32_t>(n);
      sample.node_state.push_back(
          static_cast<uint8_t>(health_monitor_->State(id)));
      sample.node_ewma_ns.push_back(health_monitor_->NodeEwmaNs(id));
    }
  }
  sample.host_free_frames.reserve(hosts_.size());
  sample.host_cache_pages.reserve(hosts_.size());
  std::vector<std::pair<Pid, double>> budgets;
  for (size_t h = 0; h < hosts_.size(); ++h) {
    sample.host_free_frames.push_back(hosts_[h]->free_frames());
    sample.host_cache_pages.push_back(hosts_[h]->cache_size());
    // Tier occupancy + cumulative migration volume (observation-only; the
    // fields stay empty/zero - and unserialized - on untiered runs).
    if (const TieredStore* tiered = hosts_[h]->tiered_store()) {
      if (sample.tier_pages.empty()) {
        sample.tier_pages.resize(kTierCount, 0);
      }
      for (size_t t = 0; t < kTierCount; ++t) {
        sample.tier_pages[t] += tiered->TierPages(t);
      }
      sample.tier_promotions +=
          hosts_[h]->counters().Get(counter::kTierPromotions);
      sample.tier_demotions +=
          hosts_[h]->counters().Get(counter::kTierDemotions);
    }
    const BudgetGovernor* governor = hosts_[h]->governor();
    if (governor != nullptr) {
      budgets.clear();
      // SnapshotBudgets (not BudgetFor): reading must not advance the
      // governor's AIMD epoch, or sampling would perturb the run.
      governor->SnapshotBudgets(budgets);
      for (const auto& [pid, budget] : budgets) {
        sample.tenant_budgets.push_back(
            {static_cast<uint32_t>(h), pid, budget});
      }
    }
  }
}

void Cluster::DumpStats(std::ostream& out) const {
  const ClusterStats stats = Stats();
  out << "cluster: " << hosts_.size() << " hosts, " << nodes_.size()
      << " nodes, seed " << config_.seed << "\n";

  out << "\n-- counters (nonzero totals) --\n";
  TextTable counters;
  counters.SetHeader({"counter", "value"});
  for (const auto& [name, value] : stats.totals.values()) {
    counters.AddRow({name, FmtU64(value)});
  }
  out << counters.Render();

  out << "\n-- nodes --\n";
  TextTable node_table;
  node_table.SetHeader(
      {"node", "slabs", "reads", "writes", "health", "ewma_ns"});
  for (size_t n = 0; n < stats.node_slabs.size(); ++n) {
    const bool health = n < stats.node_health_state.size();
    node_table.AddRow(
        {FmtU64(n), FmtU64(stats.node_slabs[n]), FmtU64(stats.node_reads[n]),
         FmtU64(stats.node_writes[n]),
         health ? NodeHealthName(stats.node_health_state[n]) : "-",
         health ? FmtNs(stats.node_health_ewma_ns[n]) : "-"});
  }
  out << node_table.Render();

  out << "\n-- node downlinks: ops by class --\n";
  TextTable link_table;
  {
    std::vector<std::string> header{"node"};
    for (size_t c = 0; c < kIoClassCount; ++c) {
      header.push_back(IoClassName(static_cast<IoClass>(c)));
    }
    header.push_back("bytes");
    link_table.SetHeader(std::move(header));
  }
  for (size_t n = 0; n < stats.node_downlink_classes.size(); ++n) {
    const LinkClassCounts& link = stats.node_downlink_classes[n];
    std::vector<std::string> row{FmtU64(n)};
    uint64_t bytes = 0;
    for (size_t c = 0; c < kIoClassCount; ++c) {
      row.push_back(FmtU64(link.ops[c]));
      bytes += link.bytes[c];
    }
    row.push_back(FmtU64(bytes));
    link_table.AddRow(std::move(row));
  }
  out << link_table.Render();

  out << "\n-- stage breakdown: mean ns/op by class "
         "(software|queue|wire|stall|service) --\n";
  TextTable stage_table;
  stage_table.SetHeader({"class", "ops", "software", "queue", "wire", "stall",
                         "service", "total"});
  for (size_t c = 0; c < kIoClassCount; ++c) {
    const StageBreakdown::Stage& s = stats.stages.cls[c];
    if (s.ops == 0) {
      continue;
    }
    stage_table.AddRow({IoClassName(static_cast<IoClass>(c)), FmtU64(s.ops),
                        FmtNs(s.MeanNs(s.software_ns)),
                        FmtNs(s.MeanNs(s.queue_ns)), FmtNs(s.MeanNs(s.wire_ns)),
                        FmtNs(s.MeanNs(s.stall_ns)),
                        FmtNs(s.MeanNs(s.service_ns)),
                        FmtNs(s.MeanNs(s.TotalNs()))});
  }
  out << stage_table.Render();

  out << "\n-- demand read p99, per stage (ns) --\n";
  TextTable p99_table;
  p99_table.SetHeader(
      {"software", "queue", "wire", "stall", "service", "end_to_end"});
  p99_table.AddRow({FmtU64(stats.stages.demand_p99_software_ns),
                    FmtU64(stats.stages.demand_p99_queue_ns),
                    FmtU64(stats.stages.demand_p99_wire_ns),
                    FmtU64(stats.stages.demand_p99_stall_ns),
                    FmtU64(stats.stages.demand_p99_service_ns),
                    FmtU64(stats.stages.demand_p99_total_ns)});
  out << p99_table.Render();

  if (!stats.tier_pages.empty()) {
    out << "\n-- tier occupancy (pages, all hosts) --\n";
    TextTable tier_table;
    tier_table.SetHeader({"tier", "pages"});
    for (size_t t = 0; t < stats.tier_pages.size(); ++t) {
      tier_table.AddRow({TierName(t), FmtU64(stats.tier_pages[t])});
    }
    out << tier_table.Render();
  }
  if (trace_ != nullptr) {
    out << "\ntrace: " << trace_->size() << " events buffered, "
        << trace_->dropped() << " dropped\n";
  }
}

}  // namespace leap
