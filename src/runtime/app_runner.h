// Executes workloads on a simulated machine and collects the metrics the
// paper reports: completion time, throughput (TPS/OPS), and the latency
// distribution of remote (non-resident) page accesses.
#ifndef LEAP_SRC_RUNTIME_APP_RUNNER_H_
#define LEAP_SRC_RUNTIME_APP_RUNNER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/runtime/machine.h"
#include "src/stats/histogram.h"
#include "src/workload/access_stream.h"

namespace leap {

struct RunConfig {
  // Total memory accesses to execute.
  size_t total_accesses = 500'000;
  // Abort the run when simulated time exceeds this (0 = no cap). Runs that
  // hit the cap report finished = false - the paper's "never finishes".
  SimTimeNs time_cap_ns = 0;
  // Simulated time at which the app starts (use the time returned by
  // WarmUp so measurement begins after population).
  SimTimeNs start_time_ns = 0;
  uint64_t seed = 7;
};

struct RunResult {
  std::string app_name;
  bool finished = true;
  SimTimeNs completion_ns = 0;
  uint64_t accesses = 0;
  uint64_t app_ops = 0;
  // Application-level operations per simulated second.
  double ops_per_sec = 0.0;
  // Latency of every access that went through the paging/VFS path (cache
  // hits, wait-hits, and misses) - the paper's "4KB remote page access".
  Histogram remote_access_latency;
  // Misses only (the slow-path tail).
  Histogram miss_latency;
  // All accesses, including local hits.
  Histogram access_latency;
};

// Runs one workload to completion on its own timeline starting at the
// machine's current shared resources state.
RunResult RunApp(Machine& machine, Pid pid, AccessStream& stream,
                 const RunConfig& config);

// Sequentially writes `pages` pages once, starting at `start`, and returns
// the finish time. This mirrors the paper's microbenchmark setup: the
// working set is populated in address order first, so swap slots line up
// with virtual pages and the measured pattern (Sequential / Stride-N) is
// seen by the backing store as-is.
SimTimeNs WarmUp(Machine& machine, Pid pid, size_t pages,
                 SimTimeNs start = 0);

// Runs several workloads concurrently on one machine (Figure 13): accesses
// interleave in global simulated-time order, contending for DRAM, the NIC,
// and the device like co-located processes.
struct MultiAppSpec {
  Pid pid;
  AccessStream* stream;
  RunConfig config;
};
std::vector<RunResult> RunAppsConcurrently(Machine& machine,
                                           std::vector<MultiAppSpec> specs);

// --- multi-machine core ------------------------------------------------------

// One workload bound to an explicit machine. RunAppsConcurrently and the
// cluster drivers both lower onto this, so there is exactly one
// global-time-ordered interleaving loop in the tree.
struct BoundAppSpec {
  Machine* machine = nullptr;
  Pid pid = 0;
  AccessStream* stream = nullptr;
  RunConfig config;
};

// Optional per-run hooks for multi-host drivers (cold path; empty
// std::functions cost nothing on the access loop's scale).
struct RunHooks {
  // Checked before each step; returning false stops that app where it
  // stands (reported finished = false with its progress so far).
  std::function<bool(size_t app_index)> keep_running;
  // Fired for every access that went through the paging/VFS path (the
  // same set recorded into RunResult::remote_access_latency). `now` is
  // the app's local time after the access completed.
  std::function<void(size_t app_index, const AccessResult& access,
                     SimTimeNs now)>
      on_remote_access;
};

// A set of bound apps advanced by the global-time-ordered interleaving
// loop, exposed as a resumable stepper so callers can interleave app
// progress with other simulation work. RunBoundApps drives it to
// completion in one call; the sharded engine drives one set per shard in
// bounded time windows. The step sequence is a pure function of the specs
// and the window boundaries partitioning time - stepping to `t` in one
// call or in many produces bit-identical state.
class BoundAppSet {
 public:
  // "No runnable app" sentinel from NextStepTime (all-ones, sorts after
  // every real timestamp).
  static constexpr SimTimeNs kNoStep = ~SimTimeNs{0};

  explicit BoundAppSet(std::vector<BoundAppSpec> specs);

  // Advances apps in global-time order while the earliest live app's local
  // time is < `until`. Pass kNoStep to run everything to completion.
  void StepUntil(SimTimeNs until, const RunHooks& hooks = {});

  bool AllDone() const;
  // Earliest live app's local time (the time its next step begins), or
  // kNoStep when every app has finished.
  SimTimeNs NextStepTime() const;
  size_t size() const { return apps_.size(); }

  // Moves results out; the set is spent afterwards.
  std::vector<RunResult> TakeResults();

 private:
  struct AppState {
    BoundAppSpec spec;
    Rng rng{0};
    SimTimeNs local_time = 0;
    uint64_t accesses = 0;
    uint64_t ops = 0;
    bool done = false;
    RunResult result;
  };

  void Finish(AppState& app, bool finished);
  void Step(AppState& app, size_t index, const RunHooks& hooks);

  std::vector<AppState> apps_;
};

std::vector<RunResult> RunBoundApps(std::vector<BoundAppSpec> specs,
                                    const RunHooks& hooks = {});

}  // namespace leap

#endif  // LEAP_SRC_RUNTIME_APP_RUNNER_H_
