// Executes workloads on a simulated machine and collects the metrics the
// paper reports: completion time, throughput (TPS/OPS), and the latency
// distribution of remote (non-resident) page accesses.
#ifndef LEAP_SRC_RUNTIME_APP_RUNNER_H_
#define LEAP_SRC_RUNTIME_APP_RUNNER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/runtime/machine.h"
#include "src/stats/histogram.h"
#include "src/workload/access_stream.h"

namespace leap {

struct RunConfig {
  // Total memory accesses to execute.
  size_t total_accesses = 500'000;
  // Abort the run when simulated time exceeds this (0 = no cap). Runs that
  // hit the cap report finished = false - the paper's "never finishes".
  SimTimeNs time_cap_ns = 0;
  // Simulated time at which the app starts (use the time returned by
  // WarmUp so measurement begins after population).
  SimTimeNs start_time_ns = 0;
  uint64_t seed = 7;
};

struct RunResult {
  std::string app_name;
  bool finished = true;
  SimTimeNs completion_ns = 0;
  uint64_t accesses = 0;
  uint64_t app_ops = 0;
  // Application-level operations per simulated second.
  double ops_per_sec = 0.0;
  // Latency of every access that went through the paging/VFS path (cache
  // hits, wait-hits, and misses) - the paper's "4KB remote page access".
  Histogram remote_access_latency;
  // Misses only (the slow-path tail).
  Histogram miss_latency;
  // All accesses, including local hits.
  Histogram access_latency;
};

// Runs one workload to completion on its own timeline starting at the
// machine's current shared resources state.
RunResult RunApp(Machine& machine, Pid pid, AccessStream& stream,
                 const RunConfig& config);

// Sequentially writes `pages` pages once, starting at `start`, and returns
// the finish time. This mirrors the paper's microbenchmark setup: the
// working set is populated in address order first, so swap slots line up
// with virtual pages and the measured pattern (Sequential / Stride-N) is
// seen by the backing store as-is.
SimTimeNs WarmUp(Machine& machine, Pid pid, size_t pages,
                 SimTimeNs start = 0);

// Runs several workloads concurrently on one machine (Figure 13): accesses
// interleave in global simulated-time order, contending for DRAM, the NIC,
// and the device like co-located processes.
struct MultiAppSpec {
  Pid pid;
  AccessStream* stream;
  RunConfig config;
};
std::vector<RunResult> RunAppsConcurrently(Machine& machine,
                                           std::vector<MultiAppSpec> specs);

// --- multi-machine core ------------------------------------------------------

// One workload bound to an explicit machine. RunAppsConcurrently and the
// cluster driver both lower onto this, so there is exactly one
// global-time-ordered interleaving loop in the tree.
struct BoundAppSpec {
  Machine* machine = nullptr;
  Pid pid = 0;
  AccessStream* stream = nullptr;
  RunConfig config;
};

// Optional per-run hooks for multi-host drivers (cold path; empty
// std::functions cost nothing on the access loop's scale).
struct RunHooks {
  // Checked before each step; returning false stops that app where it
  // stands (reported finished = false with its progress so far).
  std::function<bool(size_t app_index)> keep_running;
  // Fired for every access that went through the paging/VFS path (the
  // same set recorded into RunResult::remote_access_latency).
  std::function<void(size_t app_index, const AccessResult& access)>
      on_remote_access;
};

std::vector<RunResult> RunBoundApps(std::vector<BoundAppSpec> specs,
                                    const RunHooks& hooks = {});

}  // namespace leap

#endif  // LEAP_SRC_RUNTIME_APP_RUNNER_H_
