// Boyer-Moore majority vote (MJRTY, Boyer & Moore 1991) over access-history
// windows.
//
// A delta is the major trend of a window of size w only if it occupies at
// least floor(w/2) + 1 slots. Boyer-Moore yields a candidate in one pass and
// O(1) space; a second counting pass confirms or rejects it, exactly as
// Algorithm 1 line 8 requires ("if Δmaj != major trend then Δmaj = ∅").
#ifndef LEAP_SRC_CORE_MAJORITY_H_
#define LEAP_SRC_CORE_MAJORITY_H_

#include <optional>
#include <span>

#include "src/core/access_history.h"
#include "src/sim/types.h"

namespace leap {

// Majority element of `window`, or nullopt when no element exceeds half.
std::optional<PageDelta> BoyerMooreMajority(std::span<const PageDelta> window);

// Majority over the `w` newest entries of `history` (head backwards). If
// fewer than `w` entries exist, the available ones are used and the majority
// threshold is computed over that smaller count.
std::optional<PageDelta> MajorityOfNewest(const AccessHistory& history,
                                          size_t w);

}  // namespace leap

#endif  // LEAP_SRC_CORE_MAJORITY_H_
