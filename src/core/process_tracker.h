// Process-isolated page access tracking (paper section 4.1).
//
// The kernel integration hooks do_swap_page() and logs each fault into the
// owning process's AccessHistory; here the machine calls OnFault(pid, slot)
// from its fault handler. Isolation is the point: interleaved fault streams
// from different processes would destroy each other's trends if they shared
// one history (section 2.3).
#ifndef LEAP_SRC_CORE_PROCESS_TRACKER_H_
#define LEAP_SRC_CORE_PROCESS_TRACKER_H_

#include <cstddef>
#include <memory>

#include "src/container/flat_map.h"
#include "src/core/leap_prefetcher.h"
#include "src/core/params.h"
#include "src/sim/types.h"

namespace leap {

class ProcessPageTracker {
 public:
  explicit ProcessPageTracker(const LeapParams& params) : params_(params) {}

  // Logs a cache *miss* for `pid` and returns Leap's prefetch decision.
  // Creates the per-process state on first use.
  PrefetchDecision OnFault(Pid pid, SwapSlot slot) {
    return ForProcess(pid).OnMiss(slot);
  }

  // Logs a remote access that was served from the cache (the tracker sees
  // every do_swap_page, not just misses).
  void OnCacheAccess(Pid pid, SwapSlot slot) {
    ForProcess(pid).RecordAccess(slot);
  }

  // Credits a prefetched-page hit (on `slot`) to the owning process's
  // window sizing and per-page hit state.
  void OnPrefetchHit(Pid pid, SwapSlot slot) {
    ForProcess(pid).OnPrefetchHit(slot);
  }

  LeapPrefetcher& ForProcess(Pid pid) {
    auto [slot, inserted] = trackers_.Emplace(pid);
    if (inserted) {
      *slot = std::make_unique<LeapPrefetcher>(params_);
    }
    return **slot;
  }

  // Drops per-process state (process exit).
  void RemoveProcess(Pid pid) { trackers_.Erase(pid); }

  size_t process_count() const { return trackers_.size(); }
  const LeapParams& params() const { return params_; }

 private:
  LeapParams params_;
  // unique_ptr values: LeapPrefetcher is not default-constructible, and
  // pointer stability across map growth keeps ForProcess references safe.
  FlatMap<Pid, std::unique_ptr<LeapPrefetcher>> trackers_;
};

}  // namespace leap

#endif  // LEAP_SRC_CORE_PROCESS_TRACKER_H_
