// Per-process fixed-size circular queue of page-access deltas.
//
// Mirrors the paper's AccessHistory (section 4.1): instead of absolute page
// addresses, only the difference between two consecutive remote page
// accesses is stored, which both shrinks the footprint and makes trend
// detection a majority query over deltas.
//
// Push and FromHead are the innermost operations of trend detection (called
// tens of times per fault), so they are inline and division-free: the ring
// index wraps with a compare-and-subtract instead of a modulo.
#ifndef LEAP_SRC_CORE_ACCESS_HISTORY_H_
#define LEAP_SRC_CORE_ACCESS_HISTORY_H_

#include <cstddef>
#include <vector>

#include "src/sim/types.h"

namespace leap {

class AccessHistory {
 public:
  explicit AccessHistory(size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity, 0) {}

  // Appends the newest delta, overwriting the oldest once full.
  void Push(PageDelta delta) {
    const size_t next = head_ + 1;
    head_ = next == ring_.size() ? 0 : next;
    ring_[head_] = delta;
    if (size_ < ring_.size()) {
      ++size_;
    }
  }

  // Number of valid entries, at most capacity().
  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  bool empty() const { return size_ == 0; }

  // Entry `i` steps back from the head: FromHead(0) is the newest delta.
  // Precondition: i < size().
  PageDelta FromHead(size_t i) const {
    const size_t h = head_;
    return ring_[h >= i ? h - i : h + ring_.size() - i];
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<PageDelta> ring_;
  size_t head_ = 0;  // index of the most recent entry
  size_t size_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_CORE_ACCESS_HISTORY_H_
