#include "src/core/majority.h"

#include <algorithm>

namespace leap {

std::optional<PageDelta> BoyerMooreMajority(
    std::span<const PageDelta> window) {
  if (window.empty()) {
    return std::nullopt;
  }
  // Pass 1: pairing phase, O(n) time, O(1) space.
  PageDelta candidate = window[0];
  size_t votes = 0;
  for (PageDelta d : window) {
    if (votes == 0) {
      candidate = d;
      votes = 1;
    } else if (d == candidate) {
      ++votes;
    } else {
      --votes;
    }
  }
  // Pass 2: confirm the candidate is a strict majority.
  const size_t needed = window.size() / 2 + 1;
  size_t count = 0;
  for (PageDelta d : window) {
    if (d == candidate) {
      ++count;
    }
  }
  if (count >= needed) {
    return candidate;
  }
  return std::nullopt;
}

std::optional<PageDelta> MajorityOfNewest(const AccessHistory& history,
                                          size_t w) {
  const size_t n = std::min(w, history.size());
  if (n == 0) {
    return std::nullopt;
  }
  // Same two passes as BoyerMooreMajority, reading the ring through
  // FromHead() to avoid materializing the window.
  PageDelta candidate = history.FromHead(0);
  size_t votes = 0;
  for (size_t i = 0; i < n; ++i) {
    const PageDelta d = history.FromHead(i);
    if (votes == 0) {
      candidate = d;
      votes = 1;
    } else if (d == candidate) {
      ++votes;
    } else {
      --votes;
    }
  }
  const size_t needed = n / 2 + 1;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (history.FromHead(i) == candidate) {
      ++count;
    }
  }
  if (count >= needed) {
    return candidate;
  }
  return std::nullopt;
}

}  // namespace leap
