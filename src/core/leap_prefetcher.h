// The Leap prefetcher: DoPrefetch from Algorithm 2, combining trend
// detection (Algorithm 1) with the adaptive prefetch window.
//
// One instance tracks one process; process isolation lives in
// ProcessPageTracker (section 4.1).
#ifndef LEAP_SRC_CORE_LEAP_PREFETCHER_H_
#define LEAP_SRC_CORE_LEAP_PREFETCHER_H_

#include <optional>

#include "src/core/access_history.h"
#include "src/core/params.h"
#include "src/core/prefetch_window.h"
#include "src/core/trend_detector.h"
#include "src/sim/types.h"

namespace leap {

// Outcome of one DoPrefetch invocation.
struct PrefetchDecision {
  // PWsize_t chosen for this fault; 0 means read only the demand page.
  size_t window_size = 0;
  // Pages to prefetch (demand page excluded). May be shorter than
  // window_size when candidates fall off the start of the address space or
  // collapse onto the demand page (delta 0). Fixed-capacity inline
  // storage: producing a decision never heap-allocates.
  CandidateVec pages;
  // Whether FindTrend produced a majority for this fault.
  bool trend_found = false;
  // Whether the candidates were generated speculatively from the previous
  // trend (Algorithm 2 line 25).
  bool speculative = false;
  // The delta used for candidate generation (0 when none was available).
  PageDelta delta_used = 0;
};

class LeapPrefetcher {
 public:
  explicit LeapPrefetcher(const LeapParams& params);

  // Page access tracker hook (log_access_history): called on EVERY remote
  // page access - cache hits and misses alike - so the delta history sees
  // the true access stream, not just the miss-to-miss skeleton.
  void RecordAccess(SwapSlot pt);

  // DoPrefetch: called on cache misses only (it replaces
  // swapin_readahead, which Linux invokes on swap-cache misses). Records
  // the access, then sizes the window and generates candidates. Between
  // two misses the window's Chit accumulates over all prefetched-page
  // hits, which is what lets PWsize grow to (and stay at) PWsize_max on a
  // well-predicted stream.
  PrefetchDecision OnMiss(SwapSlot pt);

  // Called when a page this prefetcher brought in gets its first hit.
  // `slot` identifies the page, so hit feedback stays per-page instead of
  // being aggregated away: the last hit slot (and its distance from the
  // faulting edge) is available to outcome-driven consumers.
  void OnPrefetchHit(SwapSlot slot) {
    window_.OnPrefetchHit();
    last_hit_slot_ = slot;
    ++prefetch_hits_;
  }

  const AccessHistory& history() const { return history_; }
  const PrefetchWindow& window() const { return window_; }
  std::optional<PageDelta> last_trend() const { return last_trend_; }
  // Most recent prefetched page that earned a hit (per-page feedback).
  std::optional<SwapSlot> last_hit_slot() const { return last_hit_slot_; }
  uint64_t prefetch_hits() const { return prefetch_hits_; }

 private:
  AccessHistory history_;
  TrendDetector detector_;
  PrefetchWindow window_;
  std::optional<SwapSlot> last_access_;
  // Delta produced by the most recent RecordAccess.
  std::optional<PageDelta> last_delta_;
  // Most recent non-empty majority delta, used for speculative prefetch
  // when the current window has no majority.
  std::optional<PageDelta> last_trend_;
  // Per-page hit feedback (threaded through from the machine's cache).
  std::optional<SwapSlot> last_hit_slot_;
  uint64_t prefetch_hits_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_CORE_LEAP_PREFETCHER_H_
