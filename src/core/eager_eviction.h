// PrefetchFifoLruList: the bookkeeping behind Leap's eager cache eviction
// (paper section 4.3).
//
// Every prefetched page is appended at the tail. When a prefetched page is
// consumed (first cache hit + page-table update), Leap frees its cache entry
// immediately instead of leaving it for kswapd's LRU scan. If reclaim needs
// to evict prefetched pages that were never consumed, they leave in FIFO
// order - they have no access history to rank them by.
#ifndef LEAP_SRC_CORE_EAGER_EVICTION_H_
#define LEAP_SRC_CORE_EAGER_EVICTION_H_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>

#include "src/sim/types.h"

namespace leap {

class PrefetchFifoLruList {
 public:
  // Appends a newly prefetched page at the tail. Duplicate inserts refresh
  // nothing: FIFO position is set once at prefetch time.
  void OnPrefetched(SwapSlot slot);

  // Removes the page (consumed by a hit, eagerly freed). Returns true when
  // the page was present.
  bool OnConsumed(SwapSlot slot);

  // Pops the oldest unconsumed prefetched page for eviction under memory
  // pressure; nullopt when empty.
  std::optional<SwapSlot> PopOldest();

  bool Contains(SwapSlot slot) const { return index_.count(slot) != 0; }
  size_t size() const { return fifo_.size(); }
  bool empty() const { return fifo_.empty(); }

  void Clear();

 private:
  std::list<SwapSlot> fifo_;  // front = oldest
  std::unordered_map<SwapSlot, std::list<SwapSlot>::iterator> index_;
};

}  // namespace leap

#endif  // LEAP_SRC_CORE_EAGER_EVICTION_H_
