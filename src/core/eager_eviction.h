// PrefetchFifoLruList: the bookkeeping behind Leap's eager cache eviction
// (paper section 4.3).
//
// Every prefetched page is appended at the tail. When a prefetched page is
// consumed (first cache hit + page-table update), Leap frees its cache entry
// immediately instead of leaving it for kswapd's LRU scan. If reclaim needs
// to evict prefetched pages that were never consumed, they leave in FIFO
// order - they have no access history to rank them by.
//
// Thin wrapper over the pooled LruList: Insert pins FIFO position at
// prefetch time (duplicates don't refresh), and the list's cold end is the
// oldest prefetch. All operations are allocation-free in steady state.
#ifndef LEAP_SRC_CORE_EAGER_EVICTION_H_
#define LEAP_SRC_CORE_EAGER_EVICTION_H_

#include <cstddef>
#include <optional>

#include "src/mem/lru_list.h"
#include "src/sim/types.h"

namespace leap {

class PrefetchFifoLruList {
 public:
  // Appends a newly prefetched page at the tail. Duplicate inserts refresh
  // nothing: FIFO position is set once at prefetch time.
  void OnPrefetched(SwapSlot slot) { list_.Insert(slot); }

  // Removes the page (consumed by a hit, eagerly freed). Returns true when
  // the page was present.
  bool OnConsumed(SwapSlot slot) { return list_.Remove(slot); }

  // Pops the oldest unconsumed prefetched page for eviction under memory
  // pressure; nullopt when empty.
  std::optional<SwapSlot> PopOldest() { return list_.PopColdest(); }

  bool Contains(SwapSlot slot) const { return list_.Contains(slot); }
  size_t size() const { return list_.size(); }
  bool empty() const { return list_.empty(); }

  void Clear() { list_.Clear(); }

 private:
  LruList<SwapSlot> list_;  // front = newest prefetch, cold end = oldest
};

}  // namespace leap

#endif  // LEAP_SRC_CORE_EAGER_EVICTION_H_
