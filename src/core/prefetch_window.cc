#include "src/core/prefetch_window.h"

#include <algorithm>

#include "src/sim/types.h"

namespace leap {

size_t RoundUpPow2(size_t v) {
  if (v == 0) {
    return 0;
  }
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

PrefetchWindow::PrefetchWindow(size_t max_window)
    : max_window_(std::clamp<size_t>(max_window, 1, kMaxPrefetchCandidates)) {}

size_t PrefetchWindow::ComputeSize(bool follows_trend) {
  size_t size = 0;
  if (hits_since_last_ == 0) {
    // No prefetched page was consumed since the last decision: either probe
    // a single page along the trend or head toward suspension.
    size = follows_trend ? 1 : 0;
  } else {
    size = RoundUpPow2(static_cast<size_t>(hits_since_last_) + 1);
    size = std::min(size, max_window_);
  }
  // Smooth shrink: never fall below half the previous window in one step.
  if (size < last_size_ / 2) {
    size = last_size_ / 2;
  }
  hits_since_last_ = 0;
  last_size_ = size;
  return size;
}

void PrefetchWindow::Reset() {
  last_size_ = 0;
  hits_since_last_ = 0;
}

}  // namespace leap
