// Algorithm 2, GetPrefetchWindowSize: adaptive prefetch window driven by
// the effectiveness (prefetched-cache hits) observed between consecutive
// prefetch decisions.
//
// - No hits and the fault follows the current trend  -> probe with 1 page.
// - No hits and the fault breaks the trend           -> move toward suspend.
// - Hits since the last decision                     -> grow to the next
//   power of two above Chit + 1, capped at PWsize_max.
// - Any decrease is smoothed: the window never drops below half of its
//   previous value in one step, so momentary irregularities cannot
//   immediately suspend prefetching (paper section 3.2.2).
#ifndef LEAP_SRC_CORE_PREFETCH_WINDOW_H_
#define LEAP_SRC_CORE_PREFETCH_WINDOW_H_

#include <cstddef>
#include <cstdint>

namespace leap {

class PrefetchWindow {
 public:
  explicit PrefetchWindow(size_t max_window);

  // Records one hit on a prefetched cache page (Chit += 1).
  void OnPrefetchHit() { ++hits_since_last_; }

  // Computes PWsize_t for the current fault and rolls the state forward
  // (resets Chit, remembers PWsize_{t-1}).
  size_t ComputeSize(bool follows_trend);

  size_t last_size() const { return last_size_; }
  uint64_t hits_since_last() const { return hits_since_last_; }
  size_t max_window() const { return max_window_; }

  void Reset();

 private:
  size_t max_window_;
  size_t last_size_ = 0;  // PWsize_{t-1}
  uint64_t hits_since_last_ = 0;  // Chit
};

// Smallest power of two >= v (v = 0 maps to 0).
size_t RoundUpPow2(size_t v);

}  // namespace leap

#endif  // LEAP_SRC_CORE_PREFETCH_WINDOW_H_
