#include "src/core/trend_detector.h"

#include <algorithm>

#include "src/core/majority.h"

namespace leap {

std::optional<PageDelta> TrendDetector::FindTrend(
    const AccessHistory& history) const {
  if (history.empty()) {
    return std::nullopt;
  }
  const size_t hsize = history.capacity();
  size_t w = std::max<size_t>(1, hsize / nsplit_);
  for (;;) {
    const auto maj = MajorityOfNewest(history, w);
    if (maj.has_value()) {
      return maj;
    }
    if (w >= hsize || w >= history.size()) {
      return std::nullopt;
    }
    w *= 2;
  }
}

}  // namespace leap
