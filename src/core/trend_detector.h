// Algorithm 1 (FindTrend): majority-based trend detection with doubling
// windows.
//
// Starts from a window of Hsize / Nsplit newest deltas and doubles it until
// a majority delta emerges or the window exceeds the history. Small windows
// adapt fast when the trend is regular; the doubling fallback rides out
// short-term irregularities (at most floor(w/2) - 1 of them in a window of
// size w).
#ifndef LEAP_SRC_CORE_TREND_DETECTOR_H_
#define LEAP_SRC_CORE_TREND_DETECTOR_H_

#include <cstddef>
#include <optional>

#include "src/core/access_history.h"
#include "src/sim/types.h"

namespace leap {

class TrendDetector {
 public:
  explicit TrendDetector(size_t nsplit) : nsplit_(nsplit == 0 ? 1 : nsplit) {}

  // Returns the majority delta of the smallest doubling window that has
  // one, or nullopt when even the full history lacks a majority.
  //
  // Worst case runs Boyer-Moore over windows w, 2w, 4w, ..., Hsize, an
  // O(Hsize) total because the window sizes form a geometric series.
  std::optional<PageDelta> FindTrend(const AccessHistory& history) const;

  size_t nsplit() const { return nsplit_; }

 private:
  size_t nsplit_;
};

}  // namespace leap

#endif  // LEAP_SRC_CORE_TREND_DETECTOR_H_
