#include "src/core/access_history.h"

namespace leap {

AccessHistory::AccessHistory(size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity, 0) {}

void AccessHistory::Push(PageDelta delta) {
  head_ = (head_ + 1) % ring_.size();
  ring_[head_] = delta;
  if (size_ < ring_.size()) {
    ++size_;
  }
}

PageDelta AccessHistory::FromHead(size_t i) const {
  const size_t n = ring_.size();
  return ring_[(head_ + n - i % n) % n];
}

void AccessHistory::Clear() {
  head_ = 0;
  size_ = 0;
}

}  // namespace leap
