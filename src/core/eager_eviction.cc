#include "src/core/eager_eviction.h"

namespace leap {

void PrefetchFifoLruList::OnPrefetched(SwapSlot slot) {
  if (index_.count(slot) != 0) {
    return;
  }
  fifo_.push_back(slot);
  index_[slot] = std::prev(fifo_.end());
}

bool PrefetchFifoLruList::OnConsumed(SwapSlot slot) {
  auto it = index_.find(slot);
  if (it == index_.end()) {
    return false;
  }
  fifo_.erase(it->second);
  index_.erase(it);
  return true;
}

std::optional<SwapSlot> PrefetchFifoLruList::PopOldest() {
  if (fifo_.empty()) {
    return std::nullopt;
  }
  const SwapSlot slot = fifo_.front();
  fifo_.pop_front();
  index_.erase(slot);
  return slot;
}

void PrefetchFifoLruList::Clear() {
  fifo_.clear();
  index_.clear();
}

}  // namespace leap
