// Umbrella header for the Leap prefetching core.
//
// The core is substrate-independent: it consumes a stream of per-process
// remote page offsets and emits prefetch candidates. The simulated kernel
// data path (src/paging, src/runtime) and the benchmark harness build on
// top of it; nothing here depends on them.
#ifndef LEAP_SRC_CORE_LEAP_H_
#define LEAP_SRC_CORE_LEAP_H_

#include "src/core/access_history.h"
#include "src/core/eager_eviction.h"
#include "src/core/leap_prefetcher.h"
#include "src/core/majority.h"
#include "src/core/params.h"
#include "src/core/prefetch_window.h"
#include "src/core/process_tracker.h"
#include "src/core/trend_detector.h"

#endif  // LEAP_SRC_CORE_LEAP_H_
