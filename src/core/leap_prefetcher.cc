#include "src/core/leap_prefetcher.h"

namespace leap {
namespace {

// Generates up to `count` pages at stride `delta` from `pt` into `*pages`
// (a fixed-capacity scratch list owned by the decision), dropping
// candidates that underflow the address space or equal the demand page.
void GenerateCandidates(SwapSlot pt, PageDelta delta, size_t count,
                        CandidateVec* pages) {
  if (delta == 0) {
    return;
  }
  if (count > pages->capacity()) {
    count = pages->capacity();
  }
  int64_t addr = static_cast<int64_t>(pt);
  for (size_t i = 0; i < count; ++i) {
    addr += delta;
    if (addr < 0) {
      break;
    }
    pages->push_back(static_cast<SwapSlot>(addr));
  }
}

}  // namespace

LeapPrefetcher::LeapPrefetcher(const LeapParams& params)
    : history_(params.history_size),
      detector_(params.nsplit),
      window_(params.max_prefetch_window) {}

void LeapPrefetcher::RecordAccess(SwapSlot pt) {
  // Log the access as a delta against the previous remote access
  // (log_access_history in the kernel integration).
  if (last_access_.has_value()) {
    last_delta_ =
        static_cast<PageDelta>(pt) - static_cast<PageDelta>(*last_access_);
    history_.Push(*last_delta_);
  }
  last_access_ = pt;
}

PrefetchDecision LeapPrefetcher::OnMiss(SwapSlot pt) {
  RecordAccess(pt);

  // Detect the trend up front: "Pt follows the current trend" (Algorithm 2
  // line 6) is judged against the freshly detected majority, falling back
  // to the last known trend during majority gaps. Judging only against a
  // previously cached trend would deadlock a cold prefetcher: no window ->
  // no prefetch -> no hits -> no window.
  const auto trend = detector_.FindTrend(history_);
  const bool follows_trend =
      last_delta_.has_value() &&
      ((trend.has_value() && *last_delta_ == *trend) ||
       (!trend.has_value() && last_trend_.has_value() &&
        *last_delta_ == *last_trend_));

  PrefetchDecision decision;
  decision.trend_found = trend.has_value();
  if (trend.has_value()) {
    last_trend_ = trend;
  }
  decision.window_size = window_.ComputeSize(follows_trend);
  if (decision.window_size == 0) {
    // Prefetching suspended: read only Pt.
    return decision;
  }

  if (trend.has_value()) {
    decision.delta_used = *trend;
    GenerateCandidates(pt, *trend, decision.window_size, &decision.pages);
  } else if (last_trend_.has_value()) {
    // No majority right now: speculate around Pt with the latest trend so a
    // short-term irregularity cannot fully stall prefetching.
    decision.speculative = true;
    decision.delta_used = *last_trend_;
    GenerateCandidates(pt, *last_trend_, decision.window_size,
                       &decision.pages);
  }
  return decision;
}

}  // namespace leap
