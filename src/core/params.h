// Tunables for the Leap prefetcher, with the paper's defaults
// (section 5 "Methodology": Hsize = 32, PWsize_max = 8; Algorithm 1 example
// uses Nsplit = 2).
#ifndef LEAP_SRC_CORE_PARAMS_H_
#define LEAP_SRC_CORE_PARAMS_H_

#include <cstddef>

namespace leap {

struct LeapParams {
  // Capacity of the per-process AccessHistory circular queue (Hsize).
  size_t history_size = 32;
  // Initial trend-detection window is history_size / nsplit; the window
  // doubles until a majority is found or it exceeds history_size.
  size_t nsplit = 2;
  // Maximum prefetch window (PWsize_max).
  size_t max_prefetch_window = 8;
};

}  // namespace leap

#endif  // LEAP_SRC_CORE_PARAMS_H_
