#include "src/rdma/remote_agent.h"

namespace leap {

bool RemoteAgent::MapSlab() {
  if (mapped_slabs_ >= capacity_slabs_) {
    return false;
  }
  ++mapped_slabs_;
  return true;
}

void RemoteAgent::UnmapSlab() {
  if (mapped_slabs_ > 0) {
    --mapped_slabs_;
  }
}

std::optional<uint64_t> RemoteAgent::LoadPage(uint64_t page_key) const {
  const uint64_t* tag = pages_.Find(page_key);
  if (tag == nullptr) {
    return std::nullopt;
  }
  return *tag;
}

}  // namespace leap
