#include "src/rdma/remote_agent.h"

namespace leap {

bool RemoteAgent::MapSlab() {
  if (mapped_slabs_ >= capacity_slabs_) {
    return false;
  }
  ++mapped_slabs_;
  return true;
}

void RemoteAgent::UnmapSlab() {
  if (mapped_slabs_ > 0) {
    --mapped_slabs_;
  }
}

std::optional<uint64_t> RemoteAgent::LoadPage(uint64_t page_key) const {
  auto it = pages_.find(page_key);
  if (it == pages_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace leap
