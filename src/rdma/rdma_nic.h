// RDMA NIC model: per-core dispatch queues over a shared 56 Gbps fabric.
//
// Mirrors the paper's remote I/O interface (section 4.4): each CPU core
// owns an RDMA dispatch queue; a 4KB read costs a base one-sided RDMA
// latency (~4.3 us average on their InfiniBand testbed) plus wire
// serialization (4KB at 56 Gbps ~ 585 ns). Contention appears as queueing
// on the per-core queue and on the shared link, which is what Leap's
// adaptive throttling avoids congesting (section 5.3.3).
//
// Two wire models:
//  - standalone (default): the link is private to this host, modeled by
//    link_busy_until_ + a sampled base latency - the single-machine setup.
//  - fabric-bound (cluster runs): BindFabric routes every op through a
//    shared PageTransport whose latency depends on what every other host
//    is doing (per-link bandwidth, queuing, congestion). The per-core
//    dispatch queues still pace issue on this side.
#ifndef LEAP_SRC_RDMA_RDMA_NIC_H_
#define LEAP_SRC_RDMA_RDMA_NIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/sim/io_request.h"
#include "src/sim/latency_model.h"
#include "src/sim/types.h"

namespace leap {

// Transport the NIC dispatches onto when bound to a shared multi-host
// fabric (src/cluster/fabric.h implements it). Kept here so the rdma layer
// does not depend on the cluster layer.
class PageTransport {
 public:
  virtual ~PageTransport() = default;

  // One tagged page op from `req.host`'s uplink to `dst_node`'s downlink;
  // returns the completion time. The IoClass tag is what the transport's
  // link schedulers key on.
  virtual SimTimeNs SubmitPageOp(const IoRequest& req, uint32_t dst_node,
                                 SimTimeNs now, Rng& rng) = 0;

  // Congestion telemetry: EWMA of per-op queue delay (link-slot wait plus
  // incast stall), in ns. Published to prefetch policies through
  // HostAgent::congestion_signals(); transports without queueing report 0.
  // The class-blind overload mixes every IoClass; the per-class overload
  // feeds congestion control (demand/prefetch only, so repair or
  // writeback storms cannot masquerade as data-path congestion).
  virtual double QueueDelayEwmaNs() const { return 0.0; }
  virtual double QueueDelayEwmaNs(IoClass /*cls*/) const { return 0.0; }
};

struct RdmaNicConfig {
  size_t num_queues = 8;  // per-core dispatch queues
  // One-sided 4KB RDMA read/write base latency.
  SimTimeNs base_mean_ns = 3700;
  SimTimeNs base_stddev_ns = 900;
  SimTimeNs base_min_ns = 2500;
  // Wire time per 4KB page at 56 Gbps.
  SimTimeNs serialization_ns = 585;
};

class RdmaNic {
 public:
  explicit RdmaNic(const RdmaNicConfig& config = RdmaNicConfig());

  // Submits one page op on `queue` (callers hash by core/process). Returns
  // completion time. Ops on one queue serialize; the shared link adds
  // serialization delay across all queues.
  SimTimeNs SubmitPageOp(size_t queue, SimTimeNs now, Rng& rng);

  // Node-addressed tagged submission: over the fabric when bound (the NIC
  // stamps req.host with its uplink id), identical to SubmitPageOp
  // otherwise (the private link does not care which node or class).
  SimTimeNs SubmitPageOpTo(uint32_t node, size_t queue, const IoRequest& req,
                           SimTimeNs now, Rng& rng);

  // Cluster wiring: route the wire + base latency through a shared fabric;
  // `host_id` names this host's uplink.
  void BindFabric(PageTransport* fabric, uint32_t host_id);
  bool fabric_bound() const { return fabric_ != nullptr; }

  size_t num_queues() const { return queues_busy_until_.size(); }
  uint64_t ops_issued() const { return ops_issued_; }
  // Total bytes pushed over the fabric so far.
  uint64_t bytes_transferred() const { return ops_issued_ * kPageSize; }

 private:
  RdmaNicConfig config_;
  LatencyModel base_;
  std::vector<SimTimeNs> queues_busy_until_;
  SimTimeNs link_busy_until_ = 0;
  uint64_t ops_issued_ = 0;
  PageTransport* fabric_ = nullptr;
  uint32_t host_id_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_RDMA_RDMA_NIC_H_
