#include "src/rdma/rdma_nic.h"

#include <algorithm>

namespace leap {

RdmaNic::RdmaNic(const RdmaNicConfig& config)
    : config_(config),
      base_(LatencyModel::Normal(config.base_mean_ns, config.base_stddev_ns,
                                 config.base_min_ns)),
      queues_busy_until_(std::max<size_t>(1, config.num_queues), 0) {}

SimTimeNs RdmaNic::SubmitPageOp(size_t queue, SimTimeNs now, Rng& rng) {
  auto& q_busy = queues_busy_until_[queue % queues_busy_until_.size()];
  // The op waits for its dispatch queue's issue slot, then for the wire.
  // One-sided RDMA ops pipeline: a queue pair can have many outstanding
  // reads, so the queue is released once the op is on the wire - only the
  // serialization time gates the issue rate, while each op's completion
  // still pays the full base latency.
  const SimTimeNs q_start = std::max(now, q_busy);
  const SimTimeNs wire_start = std::max(q_start, link_busy_until_);
  link_busy_until_ = wire_start + config_.serialization_ns;
  q_busy = wire_start + config_.serialization_ns;
  const SimTimeNs done =
      wire_start + config_.serialization_ns + base_.Sample(rng);
  ++ops_issued_;
  return done;
}

}  // namespace leap
