#include "src/rdma/rdma_nic.h"

#include <algorithm>

namespace leap {

RdmaNic::RdmaNic(const RdmaNicConfig& config)
    : config_(config),
      base_(LatencyModel::Normal(config.base_mean_ns, config.base_stddev_ns,
                                 config.base_min_ns)),
      queues_busy_until_(std::max<size_t>(1, config.num_queues), 0) {}

void RdmaNic::BindFabric(PageTransport* fabric, uint32_t host_id) {
  fabric_ = fabric;
  host_id_ = host_id;
}

SimTimeNs RdmaNic::SubmitPageOpTo(uint32_t node, size_t queue,
                                  const IoRequest& req, SimTimeNs now,
                                  Rng& rng) {
  if (fabric_ == nullptr) {
    return SubmitPageOp(queue, now, rng);
  }
  // Per-core dispatch still paces issue on this host (a core cannot post
  // faster than the wire drains its queue); the wire itself - uplink
  // serialization, cross-host queuing, congestion, base latency - is the
  // shared fabric's business.
  auto& q_busy = queues_busy_until_[queue % queues_busy_until_.size()];
  const SimTimeNs issue = std::max(now, q_busy);
  q_busy = issue + config_.serialization_ns;
  ++ops_issued_;
  // Stamp the uplink id: layers above the NIC do not know it.
  IoRequest stamped = req;
  stamped.host = host_id_;
  return fabric_->SubmitPageOp(stamped, node, issue, rng);
}

SimTimeNs RdmaNic::SubmitPageOp(size_t queue, SimTimeNs now, Rng& rng) {
  auto& q_busy = queues_busy_until_[queue % queues_busy_until_.size()];
  // The op waits for its dispatch queue's issue slot, then for the wire.
  // One-sided RDMA ops pipeline: a queue pair can have many outstanding
  // reads, so the queue is released once the op is on the wire - only the
  // serialization time gates the issue rate, while each op's completion
  // still pays the full base latency.
  const SimTimeNs q_start = std::max(now, q_busy);
  const SimTimeNs wire_start = std::max(q_start, link_busy_until_);
  link_busy_until_ = wire_start + config_.serialization_ns;
  q_busy = wire_start + config_.serialization_ns;
  const SimTimeNs done =
      wire_start + config_.serialization_ns + base_.Sample(rng);
  ++ops_issued_;
  return done;
}

}  // namespace leap
