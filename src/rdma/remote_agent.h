// Remote-side agent: a machine donating memory slabs to the pool.
//
// Stores page "content tags" (one 64-bit token per page) instead of real
// 4KB payloads so read-your-writes can be asserted in tests without moving
// gigabytes through the simulator.
#ifndef LEAP_SRC_RDMA_REMOTE_AGENT_H_
#define LEAP_SRC_RDMA_REMOTE_AGENT_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/sim/types.h"

namespace leap {

class RemoteAgent {
 public:
  RemoteAgent(uint32_t node_id, size_t capacity_slabs)
      : node_id_(node_id), capacity_slabs_(capacity_slabs) {}

  uint32_t node_id() const { return node_id_; }
  size_t capacity_slabs() const { return capacity_slabs_; }
  size_t mapped_slabs() const { return mapped_slabs_; }
  size_t FreeSlabs() const { return capacity_slabs_ - mapped_slabs_; }

  // Reserves one slab; returns false when the node is full.
  bool MapSlab();
  void UnmapSlab();

  // Page payload tags, keyed by (slab-local) page offset.
  void StorePage(uint64_t page_key, uint64_t content_tag) {
    pages_[page_key] = content_tag;
  }
  std::optional<uint64_t> LoadPage(uint64_t page_key) const;

  // Fault injection for resilience tests.
  void Fail() { failed_ = true; }
  void Recover() { failed_ = false; }
  bool failed() const { return failed_; }

 private:
  uint32_t node_id_;
  size_t capacity_slabs_;
  size_t mapped_slabs_ = 0;
  bool failed_ = false;
  std::unordered_map<uint64_t, uint64_t> pages_;
};

}  // namespace leap

#endif  // LEAP_SRC_RDMA_REMOTE_AGENT_H_
