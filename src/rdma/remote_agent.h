// Remote-side agent: a machine donating memory slabs to the pool.
//
// Stores page "content tags" (one 64-bit token per page) instead of real
// 4KB payloads so read-your-writes can be asserted in tests without moving
// gigabytes through the simulator.
//
// The tag store is a flat robin-hood map (PR 1 allocation discipline):
// steady-state tag churn on the remote side never touches the allocator,
// and iteration order stays a pure function of the op sequence, which keeps
// cluster runs bit-reproducible.
#ifndef LEAP_SRC_RDMA_REMOTE_AGENT_H_
#define LEAP_SRC_RDMA_REMOTE_AGENT_H_

#include <cstdint>
#include <optional>

#include "src/container/flat_map.h"
#include "src/sim/types.h"

namespace leap {

class RemoteAgent {
 public:
  RemoteAgent(uint32_t node_id, size_t capacity_slabs)
      : node_id_(node_id), capacity_slabs_(capacity_slabs) {}

  uint32_t node_id() const { return node_id_; }
  size_t capacity_slabs() const { return capacity_slabs_; }
  size_t mapped_slabs() const { return mapped_slabs_; }
  size_t FreeSlabs() const { return capacity_slabs_ - mapped_slabs_; }

  // Reserves one slab; returns false when the node is full.
  bool MapSlab();
  void UnmapSlab();

  // Page payload tags, keyed by (slab-local) page offset.
  void StorePage(uint64_t page_key, uint64_t content_tag) {
    pages_[page_key] = content_tag;
  }
  std::optional<uint64_t> LoadPage(uint64_t page_key) const;
  void DropPage(uint64_t page_key) { pages_.Erase(page_key); }
  size_t stored_pages() const { return pages_.size(); }

  // Fault injection for resilience tests and cluster failure scenarios.
  void Fail() {
    failed_ = true;
    ++fail_count_;
  }
  void Recover() { failed_ = false; }
  bool failed() const { return failed_; }
  uint64_t fail_count() const { return fail_count_; }

  // Per-node served-op accounting (cluster stats: who is the hot node?).
  void CountRead() { ++reads_served_; }
  void CountWrite() { ++writes_served_; }
  uint64_t reads_served() const { return reads_served_; }
  uint64_t writes_served() const { return writes_served_; }

 private:
  uint32_t node_id_;
  size_t capacity_slabs_;
  size_t mapped_slabs_ = 0;
  bool failed_ = false;
  uint64_t fail_count_ = 0;
  uint64_t reads_served_ = 0;
  uint64_t writes_served_ = 0;
  FlatMap<uint64_t, uint64_t> pages_;
};

}  // namespace leap

#endif  // LEAP_SRC_RDMA_REMOTE_AGENT_H_
