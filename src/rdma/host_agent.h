// Host-side agent: maps the local swap space onto remote memory slabs and
// serves page reads/writes over the RDMA NIC.
//
// Follows the paper's section 4.4/4.5 design: the remote address space is
// split into fixed-size slabs; slabs are placed across remote machines with
// power-of-two-choices to balance load; writes are replicated to `replicas`
// nodes for fault tolerance, reads go to the primary unless it failed.
// Implements BackingStore so the paging data paths treat remote memory
// exactly like a (much faster) swap device.
#ifndef LEAP_SRC_RDMA_HOST_AGENT_H_
#define LEAP_SRC_RDMA_HOST_AGENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/rdma/rdma_nic.h"
#include "src/rdma/remote_agent.h"
#include "src/sim/rng.h"
#include "src/sim/types.h"
#include "src/storage/backing_store.h"

namespace leap {

struct HostAgentConfig {
  size_t slab_pages = 256 * 256 / 4;  // 64 MB slabs (4KB pages)
  size_t replicas = 2;                // primary + 1 backup
  RdmaNicConfig nic;
};

// Placement record for one slab.
struct SlabMapping {
  std::vector<uint32_t> nodes;  // nodes[0] = primary
};

class HostAgent : public BackingStore {
 public:
  // `remote_nodes` is the donor pool; the agent keeps references only.
  HostAgent(const HostAgentConfig& config,
            std::vector<RemoteAgent*> remote_nodes, uint64_t seed);

  // BackingStore:
  void ReadPages(std::span<const SwapSlot> slots, SimTimeNs now, Rng& rng,
                 std::span<SimTimeNs> ready_at) override;
  SimTimeNs WritePage(SwapSlot slot, SimTimeNs now, Rng& rng) override;
  std::string name() const override { return "remote-memory"; }
  double MeanReadLatencyNs() const override;

  // Content-tag plumbing for integration tests (read-your-writes through
  // real slab/node routing).
  void WriteTag(SwapSlot slot, uint64_t tag, SimTimeNs now, Rng& rng);
  std::optional<uint64_t> ReadTag(SwapSlot slot) const;

  // Slab of a slot, mapping it on demand (first touch maps the slab).
  const SlabMapping& MappingForSlot(SwapSlot slot);
  size_t mapped_slab_count() const { return slab_map_.size(); }
  const RdmaNic& nic() const { return nic_; }

  // Per-node mapped-slab counts, for balance assertions.
  std::vector<size_t> NodeLoads() const;

 private:
  // Power-of-two-choices placement avoiding nodes in `exclude`.
  uint32_t PickNode(const std::vector<uint32_t>& exclude);
  void EnsureSlabMapped(SwapSlot slot);
  // Queue selection: hash the slot so one process's sequential pages spread
  // across queues, like per-core submission in the kernel.
  size_t QueueFor(SwapSlot slot) const;
  RemoteAgent* Node(uint32_t id) const;

  HostAgentConfig config_;
  std::vector<RemoteAgent*> nodes_;
  RdmaNic nic_;
  Rng placement_rng_;
  std::vector<SlabMapping> slab_map_;  // indexed by slab id
};

}  // namespace leap

#endif  // LEAP_SRC_RDMA_HOST_AGENT_H_
