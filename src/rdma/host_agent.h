// Host-side agent: maps the local swap space onto remote memory slabs and
// serves page reads/writes over the RDMA NIC.
//
// Follows the paper's section 4.4/4.5 design: the remote address space is
// split into fixed-size slabs; slabs are placed across remote machines by a
// pluggable SlabPlacer (power-of-two-choices by default) to balance load;
// writes are replicated to `replicas` nodes for fault tolerance, reads go
// to the primary unless it failed (counted failover to a live replica).
// Implements BackingStore so the paging data paths treat remote memory
// exactly like a (much faster) swap device.
//
// Cluster wiring (all optional; single-host runs skip every hook):
//  - BindFabric: page ops ride a shared multi-host fabric instead of the
//    private-link NIC model, so latency reflects cluster contention.
//  - SetPlacer / SetCounters: placement policy override and surfacing of
//    remote-side events (capacity exhaustion, failovers, repairs) in the
//    owning machine's counters.
//  - SetOverflowStore: when the donor pool has no free slab anywhere, the
//    slab overflows to this (slower) medium instead of silently landing on
//    a full node - graceful degradation, counted per slab.
//  - RepairSlabsAfterFailure: re-maps every slab that lost a replica to a
//    failed node onto a fresh node and re-replicates its pages from a
//    surviving replica, preserving read-your-writes across the re-mapping.
#ifndef LEAP_SRC_RDMA_HOST_AGENT_H_
#define LEAP_SRC_RDMA_HOST_AGENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/container/flat_map.h"
#include "src/obs/trace_recorder.h"
#include "src/rdma/rdma_nic.h"
#include "src/rdma/remote_agent.h"
#include "src/sim/rng.h"
#include "src/sim/types.h"
#include "src/stats/counters.h"
#include "src/storage/backing_store.h"

namespace leap {

class SlabPlacer;

// Node-health view the agent consults for gray-failure mitigation and
// feeds with read completions. Kept abstract here (like PageTransport in
// rdma_nic.h) so the rdma layer never depends on the cluster layer;
// src/cluster/health_monitor.h implements it.
class NodeHealthTracker {
 public:
  virtual ~NodeHealthTracker() = default;

  // One completed read attempt against `node`: latency from issue to
  // completion. The implementation maintains per-node EWMAs and outlier
  // scores off this stream.
  virtual void RecordRead(uint32_t node, SimTimeNs latency_ns,
                          SimTimeNs now) = 0;

  // True when the node is currently marked gray (answering, but an
  // outlier-slow one); replica selection steers demand reads away.
  virtual bool IsGray(uint32_t node) const = 0;

  // Per-node read-latency EWMA in ns (0 before the first sample). Used to
  // rank replicas ("next-fastest") for hedged reads.
  virtual double NodeEwmaNs(uint32_t node) const = 0;

  // Cluster-wide p99 of recorded read latencies, the base of the hedge
  // delay; 0 until enough samples accumulated to make p99 meaningful.
  virtual SimTimeNs ReadLatencyP99Ns() const = 0;
};

// Gray-failure mitigation knobs for remote demand reads. Disabled by
// default: every parameter below is inert and the read path is
// bit-identical to the unmitigated agent. Before PR 6 the failover retry
// behavior was a fixed, unconfigurable constant baked into ReadPages;
// these knobs replace that latent bug class, and Validate() rejects the
// nonsense values that used to be silently accepted (0 retries, a
// backoff that shrinks, a zero deadline).
struct ResilienceConfig {
  bool enabled = false;

  // --- deadline + retry ---------------------------------------------------
  // A demand read whose attempt would complete later than issue + deadline
  // counts a deadline miss and is re-issued against the next live replica.
  SimTimeNs read_deadline_ns = 100 * kNsPerUs;
  // Maximum re-issues per demand read (>= 1 when enabled).
  size_t max_read_retries = 2;
  // Wait after a deadline miss before the retry goes out; grows by
  // backoff_multiplier per attempt (must be monotone: multiplier >= 1).
  SimTimeNs retry_backoff_ns = 10 * kNsPerUs;
  double backoff_multiplier = 2.0;

  // --- hedged reads -------------------------------------------------------
  // When the first attempt would outlive the hedge delay, race a duplicate
  // (IoClass::kHedge, background on the links) against the next-fastest
  // live replica and take the earlier completion.
  bool hedge_enabled = true;
  // Hedge delay = max(floor, factor * monitor p99), clamped to the read
  // deadline. The p99 base is the classic "defer hedging past the tail
  // knee" rule (Dean & Barroso, The Tail at Scale).
  double hedge_p99_factor = 1.0;
  SimTimeNs hedge_floor_ns = 20 * kNsPerUs;

  // --- gray-node avoidance ------------------------------------------------
  // Steer demand reads off a gray-marked primary onto a live non-gray
  // replica (read-your-writes holds: a gray node is live, so every replica
  // in the set absorbed the writes).
  bool avoid_gray_nodes = true;
  // Every Nth rerouted read also probes the gray primary with a duplicate
  // kHedge op (completion takes the min), so the monitor keeps receiving
  // fresh samples and can clear the node after it recovers.
  size_t gray_probe_interval = 128;

  // Throws std::invalid_argument on out-of-range values; no-op when
  // enabled is false.
  void Validate() const;
};

struct HostAgentConfig {
  size_t slab_pages = 256 * 256 / 4;  // 64 MB slabs (4KB pages)
  size_t replicas = 2;                // primary + 1 backup
  // Latency charged to a read whose every replica is down (timeout +
  // recovery from elsewhere); the op is also counted as lost.
  SimTimeNs failed_read_penalty_ns = 100 * kNsPerUs;
  RdmaNicConfig nic;
};

// Placement record for one slab.
struct SlabMapping {
  std::vector<uint32_t> nodes;  // nodes[0] = primary
  // Donor pool had no eligible capacity: the slab lives on the overflow
  // store (or, lacking one, on a best-effort NIC path).
  bool overflow = false;
};

class HostAgent : public BackingStore {
 public:
  // `remote_nodes` is the donor pool; the agent keeps references only.
  HostAgent(const HostAgentConfig& config,
            std::vector<RemoteAgent*> remote_nodes, uint64_t seed);
  ~HostAgent() override;

  // BackingStore: tagged batches; the IoClass/tenant tags ride through the
  // NIC onto the fabric's link schedulers unchanged.
  void ReadPages(std::span<const IoRequest> reqs, SimTimeNs now, Rng& rng,
                 std::span<SimTimeNs> ready_at) override;
  SimTimeNs WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) override;
  std::string name() const override { return "remote-memory"; }
  double MeanReadLatencyNs() const override;

  // --- cluster wiring -----------------------------------------------------
  void BindFabric(PageTransport* fabric, uint32_t host_id);
  void SetPlacer(SlabPlacer* placer);
  void SetCounters(Counters* counters) { counters_ = counters; }
  void SetOverflowStore(BackingStore* store) { overflow_store_ = store; }
  // Gray-failure mitigation: validates and installs the config (demand
  // reads gain deadline/retry, hedging, and gray avoidance), and attaches
  // the health view those mechanisms consult and feed.
  void SetResilience(const ResilienceConfig& resilience);
  void SetHealthTracker(NodeHealthTracker* health) { health_ = health; }
  // Flight recorder for mitigation decisions (reroute / hedge / deadline
  // miss / retry); null keeps the path untouched.
  void SetTrace(TraceRecorder* trace) { trace_ = trace; }
  const ResilienceConfig& resilience() const { return resilience_; }
  uint32_t host_id() const { return host_id_; }

  // Congestion snapshot for prefetch policies (FaultContext::congestion):
  // the bound fabric's queue-delay EWMAs (0 standalone) plus this agent's
  // cumulative capacity-exhaustion ticks. A few loads; called per fault.
  // The per-class demand/prefetch EWMAs are the ones congestion control
  // keys on - the aggregate EWMA also counts writeback/eviction/repair
  // traffic and is kept for reporting only.
  CongestionSignals congestion_signals() const {
    CongestionSignals signals;
    if (fabric_ != nullptr) {
      signals.queue_delay_ewma_ns = fabric_->QueueDelayEwmaNs();
      signals.demand_queue_delay_ewma_ns =
          fabric_->QueueDelayEwmaNs(IoClass::kDemandRead);
      signals.prefetch_queue_delay_ewma_ns =
          fabric_->QueueDelayEwmaNs(IoClass::kPrefetch);
    }
    signals.capacity_exhausted_total = capacity_exhausted_events_;
    return signals;
  }

  // Re-maps every slab with a replica on `failed_node` and re-replicates
  // its pages from a surviving replica (repair traffic rides the NIC /
  // fabric at `now`). Returns the number of slabs repaired.
  size_t RepairSlabsAfterFailure(uint32_t failed_node, SimTimeNs now);

  // Host leave: returns every mapped slab to the donor pool.
  void ReleaseAllSlabs();

  // Content-tag plumbing for integration tests (read-your-writes through
  // real slab/node routing). The write rides the NIC as a kWriteback op.
  void WriteTag(SwapSlot slot, uint64_t tag, SimTimeNs now, Rng& rng);
  std::optional<uint64_t> ReadTag(SwapSlot slot) const;

  // Slab of a slot, mapping it on demand (first touch maps the slab).
  const SlabMapping& MappingForSlot(SwapSlot slot);
  size_t mapped_slab_count() const { return slab_map_.size(); }
  size_t overflow_slab_count() const { return overflow_slabs_; }
  const RdmaNic& nic() const { return nic_; }

  // Per-node mapped-slab counts, for balance assertions.
  std::vector<size_t> NodeLoads() const;

 private:
  // Tag-store key: slots are host-local, but donor nodes are shared by
  // every host in a cluster, so the key namespaces the slot by host id.
  uint64_t PageKey(SwapSlot slot) const {
    return (static_cast<uint64_t>(host_id_) << 48) ^ slot;
  }
  // Lease teardown: a slab unmapped from `node` leaves no tags behind, so
  // a later re-placement on the same node cannot resurrect stale data.
  void DropSlabTags(RemoteAgent* node, size_t slab) const;
  void EnsureSlabMapped(SwapSlot slot);
  // Queue selection: hash the slot so one process's sequential pages spread
  // across queues, like per-core submission in the kernel.
  size_t QueueFor(SwapSlot slot) const;
  RemoteAgent* Node(uint32_t id) const;
  // First live node of `mapping`; sets `*failover` when it is not the
  // primary. nullptr when every replica is down.
  RemoteAgent* ServingNode(const SlabMapping& mapping, bool* failover) const;
  // First live replica the health monitor does NOT mark gray; nullptr when
  // every live replica is gray (the caller falls back to the gray one).
  RemoteAgent* FirstLiveNonGray(const SlabMapping& mapping) const;
  // Live replica after `exclude` in mapping order (retry round-robin);
  // nullptr when `exclude` is the only live replica.
  RemoteAgent* NextLiveReplicaAfter(const SlabMapping& mapping,
                                    const RemoteAgent* exclude) const;
  // Live replica != `serving` with the lowest health EWMA (hedge target).
  RemoteAgent* NextFastestLiveReplica(const SlabMapping& mapping,
                                      const RemoteAgent* serving) const;
  // Post-first-attempt tail mitigation for one demand read: gray-probe
  // duplicate, p99-delayed hedge, then deadline-paced retries. Returns the
  // earliest completion across all attempts.
  SimTimeNs MitigateDemandRead(const IoRequest& req, const SlabMapping& mapping,
                               RemoteAgent* serving, RemoteAgent* primary,
                               bool rerouted, SimTimeNs first_done,
                               SimTimeNs now, Rng& rng);
  void RecordHealth(uint32_t node, SimTimeNs latency, SimTimeNs now) const {
    if (health_ != nullptr) {
      health_->RecordRead(node, latency, now);
    }
  }
  void Count(CounterId id, uint64_t delta = 1) {
    if (counters_ != nullptr) {
      counters_->Add(id, delta);
    }
  }
  // One mitigation instant onto the flight recorder; `node` is the node
  // the decision targeted, `dur_ns` kind-specific (0 for most).
  void Trace(TraceEventKind kind, const IoRequest& req, SimTimeNs ts,
             uint32_t node, uint64_t dur_ns = 0) const {
    if (trace_ == nullptr) {
      return;
    }
    TraceEvent e;
    e.kind = kind;
    e.ts = ts;
    e.dur_ns = dur_ns;
    e.slot = req.slot;
    e.host = host_id_;
    e.node = node;
    e.tenant = req.tenant;
    e.cls = req.cls;
    trace_->Record(e);
  }

  HostAgentConfig config_;
  std::vector<RemoteAgent*> nodes_;
  RdmaNic nic_;
  Rng placement_rng_;
  std::vector<SlabMapping> slab_map_;  // indexed by slab id
  size_t overflow_slabs_ = 0;

  std::unique_ptr<SlabPlacer> default_placer_;  // power-of-two-choices
  SlabPlacer* placer_;                          // never null
  Counters* counters_ = nullptr;
  PageTransport* fabric_ = nullptr;  // congestion telemetry source
  ResilienceConfig resilience_;      // disabled by default
  NodeHealthTracker* health_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  uint64_t reroute_probe_tick_ = 0;  // paces gray-primary probe duplicates
  uint64_t capacity_exhausted_events_ = 0;
  BackingStore* overflow_store_ = nullptr;
  // Tags for overflow slabs (the overflow store holds payloads in real
  // life; here, tags keyed by slot like the nodes do).
  FlatMap<uint64_t, uint64_t> overflow_tags_;
  uint32_t host_id_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_RDMA_HOST_AGENT_H_
