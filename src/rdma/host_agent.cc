#include "src/rdma/host_agent.h"

#include <algorithm>

namespace leap {

HostAgent::HostAgent(const HostAgentConfig& config,
                     std::vector<RemoteAgent*> remote_nodes, uint64_t seed)
    : config_(config),
      nodes_(std::move(remote_nodes)),
      nic_(config.nic),
      placement_rng_(seed) {}

RemoteAgent* HostAgent::Node(uint32_t id) const {
  for (RemoteAgent* node : nodes_) {
    if (node->node_id() == id) {
      return node;
    }
  }
  return nullptr;
}

uint32_t HostAgent::PickNode(const std::vector<uint32_t>& exclude) {
  auto eligible = [&](const RemoteAgent* node) {
    if (node->FreeSlabs() == 0) {
      return false;
    }
    return std::find(exclude.begin(), exclude.end(), node->node_id()) ==
           exclude.end();
  };
  std::vector<RemoteAgent*> pool;
  for (RemoteAgent* node : nodes_) {
    if (eligible(node)) {
      pool.push_back(node);
    }
  }
  if (pool.empty()) {
    // Full pool: fall back to the least-loaded excluded-ineligible node so
    // the simulation keeps running (real Infiniswap falls back to disk).
    return nodes_.front()->node_id();
  }
  if (pool.size() == 1) {
    return pool.front()->node_id();
  }
  // Power of two choices: sample two distinct candidates, keep the less
  // loaded one.
  const size_t a = placement_rng_.NextU64(pool.size());
  size_t b = placement_rng_.NextU64(pool.size() - 1);
  if (b >= a) {
    ++b;
  }
  RemoteAgent* first = pool[a];
  RemoteAgent* second = pool[b];
  return first->mapped_slabs() <= second->mapped_slabs() ? first->node_id()
                                                         : second->node_id();
}

void HostAgent::EnsureSlabMapped(SwapSlot slot) {
  const size_t slab = slot / config_.slab_pages;
  while (slab_map_.size() <= slab) {
    SlabMapping mapping;
    const size_t replicas = std::min(config_.replicas, nodes_.size());
    for (size_t r = 0; r < std::max<size_t>(1, replicas); ++r) {
      const uint32_t node_id = PickNode(mapping.nodes);
      mapping.nodes.push_back(node_id);
      if (RemoteAgent* node = Node(node_id)) {
        node->MapSlab();
      }
    }
    slab_map_.push_back(std::move(mapping));
  }
}

const SlabMapping& HostAgent::MappingForSlot(SwapSlot slot) {
  EnsureSlabMapped(slot);
  return slab_map_[slot / config_.slab_pages];
}

size_t HostAgent::QueueFor(SwapSlot slot) const {
  // Splitmix-style scramble so contiguous slots land on distinct queues.
  uint64_t z = slot + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return static_cast<size_t>(z % nic_.num_queues());
}

void HostAgent::ReadPages(std::span<const SwapSlot> slots, SimTimeNs now,
                          Rng& rng, std::span<SimTimeNs> ready_at) {
  for (size_t i = 0; i < slots.size(); ++i) {
    EnsureSlabMapped(slots[i]);
    ready_at[i] = nic_.SubmitPageOp(QueueFor(slots[i]), now, rng);
  }
}

SimTimeNs HostAgent::WritePage(SwapSlot slot, SimTimeNs now, Rng& rng) {
  const SlabMapping& mapping = MappingForSlot(slot);
  // Replicated write: issue to every replica, complete when all complete.
  SimTimeNs done = now;
  for (size_t r = 0; r < std::max<size_t>(1, mapping.nodes.size()); ++r) {
    done = std::max(done, nic_.SubmitPageOp(QueueFor(slot + r), now, rng));
  }
  return done;
}

void HostAgent::WriteTag(SwapSlot slot, uint64_t tag, SimTimeNs now,
                         Rng& rng) {
  const SlabMapping& mapping = MappingForSlot(slot);
  for (uint32_t node_id : mapping.nodes) {
    if (RemoteAgent* node = Node(node_id)) {
      node->StorePage(slot, tag);
    }
  }
  WritePage(slot, now, rng);
}

std::optional<uint64_t> HostAgent::ReadTag(SwapSlot slot) const {
  const size_t slab = slot / config_.slab_pages;
  if (slab >= slab_map_.size()) {
    return std::nullopt;
  }
  for (uint32_t node_id : slab_map_[slab].nodes) {
    RemoteAgent* node = Node(node_id);
    if (node != nullptr && !node->failed()) {
      return node->LoadPage(slot);
    }
  }
  return std::nullopt;
}

double HostAgent::MeanReadLatencyNs() const {
  return static_cast<double>(config_.nic.base_mean_ns +
                             config_.nic.serialization_ns);
}

std::vector<size_t> HostAgent::NodeLoads() const {
  std::vector<size_t> loads;
  loads.reserve(nodes_.size());
  for (const RemoteAgent* node : nodes_) {
    loads.push_back(node->mapped_slabs());
  }
  return loads;
}

}  // namespace leap
