#include "src/rdma/host_agent.h"

#include <algorithm>

#include "src/cluster/slab_placer.h"

namespace leap {

HostAgent::HostAgent(const HostAgentConfig& config,
                     std::vector<RemoteAgent*> remote_nodes, uint64_t seed)
    : config_(config),
      nodes_(std::move(remote_nodes)),
      nic_(config.nic),
      placement_rng_(seed),
      default_placer_(std::make_unique<PowerOfTwoPlacer>()),
      placer_(default_placer_.get()) {}

HostAgent::~HostAgent() = default;

void HostAgent::BindFabric(PageTransport* fabric, uint32_t host_id) {
  host_id_ = host_id;
  fabric_ = fabric;
  nic_.BindFabric(fabric, host_id);
}

void HostAgent::SetPlacer(SlabPlacer* placer) {
  placer_ = placer != nullptr ? placer : default_placer_.get();
}

RemoteAgent* HostAgent::Node(uint32_t id) const {
  for (RemoteAgent* node : nodes_) {
    if (node->node_id() == id) {
      return node;
    }
  }
  return nullptr;
}

RemoteAgent* HostAgent::ServingNode(const SlabMapping& mapping,
                                    bool* failover) const {
  for (size_t i = 0; i < mapping.nodes.size(); ++i) {
    RemoteAgent* node = Node(mapping.nodes[i]);
    if (node != nullptr && !node->failed()) {
      *failover = i > 0;
      return node;
    }
  }
  *failover = false;
  return nullptr;
}

void HostAgent::EnsureSlabMapped(SwapSlot slot) {
  const size_t slab = slot / config_.slab_pages;
  while (slab_map_.size() <= slab) {
    SlabMapping mapping;
    const size_t replicas =
        std::max<size_t>(1, std::min(config_.replicas, nodes_.size()));
    for (size_t r = 0; r < replicas; ++r) {
      const uint32_t node_id =
          placer_->Pick(nodes_, mapping.nodes, host_id_, slab_map_.size(),
                        placement_rng_);
      if (node_id == SlabPlacer::kNoNode) {
        break;  // pool out of eligible capacity for further replicas
      }
      RemoteAgent* node = Node(node_id);
      if (node == nullptr || !node->MapSlab()) {
        break;
      }
      mapping.nodes.push_back(node_id);
    }
    if (mapping.nodes.empty()) {
      // Nowhere in the pool to put even the primary: the slab degrades to
      // the overflow medium. A counted event, not a silent fallback.
      mapping.overflow = true;
      ++overflow_slabs_;
      ++capacity_exhausted_events_;
      Count(counter::kRemoteCapacityExhausted);
    }
    slab_map_.push_back(std::move(mapping));
  }
}

const SlabMapping& HostAgent::MappingForSlot(SwapSlot slot) {
  EnsureSlabMapped(slot);
  return slab_map_[slot / config_.slab_pages];
}

size_t HostAgent::QueueFor(SwapSlot slot) const {
  // Splitmix-style scramble so contiguous slots land on distinct queues.
  uint64_t z = slot + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return static_cast<size_t>(z % nic_.num_queues());
}

void HostAgent::ReadPages(std::span<const IoRequest> reqs, SimTimeNs now,
                          Rng& rng, std::span<SimTimeNs> ready_at) {
  for (size_t i = 0; i < reqs.size(); ++i) {
    const SwapSlot slot = reqs[i].slot;
    EnsureSlabMapped(slot);
    const SlabMapping& mapping = slab_map_[slot / config_.slab_pages];
    if (mapping.overflow && overflow_store_ != nullptr) {
      overflow_store_->ReadPages({&reqs[i], 1}, now, rng, {&ready_at[i], 1});
      Count(counter::kOverflowReads);
      continue;
    }
    bool failover = false;
    RemoteAgent* node = ServingNode(mapping, &failover);
    if (node == nullptr && !mapping.nodes.empty()) {
      // Every replica is down: charge a timeout-and-recover penalty so the
      // run keeps making (degraded) progress.
      ready_at[i] = now + config_.failed_read_penalty_ns;
      Count(counter::kRemoteReadsLost);
      continue;
    }
    if (failover) {
      Count(counter::kRemoteFailovers);
    }
    const uint32_t target = node != nullptr ? node->node_id() : 0;
    ready_at[i] =
        nic_.SubmitPageOpTo(target, QueueFor(slot), reqs[i], now, rng);
    if (node != nullptr) {
      node->CountRead();
    }
  }
}

SimTimeNs HostAgent::WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) {
  const SwapSlot slot = req.slot;
  const SlabMapping& mapping = MappingForSlot(slot);
  if (mapping.overflow && overflow_store_ != nullptr) {
    Count(counter::kOverflowWrites);
    return overflow_store_->WritePage(req, now, rng);
  }
  // Replicated write: issue to every live replica, complete when all
  // complete. Replicas that are down miss the write (repair re-syncs them).
  SimTimeNs done = now;
  if (mapping.nodes.empty()) {
    // Best-effort path for agents with no overflow store (standalone use).
    return nic_.SubmitPageOpTo(0, QueueFor(slot), req, now, rng);
  }
  bool any_live = false;
  for (size_t r = 0; r < mapping.nodes.size(); ++r) {
    RemoteAgent* node = Node(mapping.nodes[r]);
    if (node == nullptr || node->failed()) {
      continue;
    }
    any_live = true;
    done = std::max(done,
                    nic_.SubmitPageOpTo(node->node_id(), QueueFor(slot + r),
                                        req, now, rng));
    node->CountWrite();
  }
  if (!any_live) {
    Count(counter::kRemoteWritesLost);
    return now + config_.failed_read_penalty_ns;
  }
  return done;
}

void HostAgent::WriteTag(SwapSlot slot, uint64_t tag, SimTimeNs now,
                         Rng& rng) {
  const SlabMapping& mapping = MappingForSlot(slot);
  if (mapping.overflow) {
    overflow_tags_[slot] = tag;
  } else {
    for (uint32_t node_id : mapping.nodes) {
      RemoteAgent* node = Node(node_id);
      if (node == nullptr) {
        continue;
      }
      if (node->failed()) {
        // The down replica misses the write; drop its stale copy so a
        // later recovery cannot resurrect the old value (ReadTag falls
        // through to a replica that has the page).
        node->DropPage(PageKey(slot));
      } else {
        node->StorePage(PageKey(slot), tag);
      }
    }
  }
  WritePage(WritebackOp(slot, 0, now), now, rng);
}

std::optional<uint64_t> HostAgent::ReadTag(SwapSlot slot) const {
  const size_t slab = slot / config_.slab_pages;
  if (slab >= slab_map_.size()) {
    return std::nullopt;
  }
  const SlabMapping& mapping = slab_map_[slab];
  if (mapping.overflow) {
    const uint64_t* tag = overflow_tags_.Find(slot);
    return tag == nullptr ? std::nullopt : std::optional<uint64_t>(*tag);
  }
  for (uint32_t node_id : mapping.nodes) {
    RemoteAgent* node = Node(node_id);
    if (node == nullptr || node->failed()) {
      continue;
    }
    // Fall through to the next replica when this one lacks the page (it
    // was down for the write and its stale copy was invalidated).
    const auto tag = node->LoadPage(PageKey(slot));
    if (tag.has_value()) {
      return tag;
    }
  }
  return std::nullopt;
}

size_t HostAgent::RepairSlabsAfterFailure(uint32_t failed_node,
                                          SimTimeNs now) {
  RemoteAgent* failed = Node(failed_node);
  size_t repaired = 0;
  for (size_t slab = 0; slab < slab_map_.size(); ++slab) {
    SlabMapping& mapping = slab_map_[slab];
    if (mapping.overflow) {
      continue;
    }
    auto it = std::find(mapping.nodes.begin(), mapping.nodes.end(),
                        failed_node);
    if (it == mapping.nodes.end()) {
      continue;
    }
    mapping.nodes.erase(it);
    if (failed != nullptr) {
      failed->UnmapSlab();
      // The failed node lost its lease on this slab: garbage-collect its
      // copy so being re-picked after recovery cannot serve stale tags.
      DropSlabTags(failed, slab);
    }
    // Surviving replica to re-replicate from (may be none when the slab
    // was single-replica: its pages are lost until rewritten).
    RemoteAgent* source = nullptr;
    for (uint32_t id : mapping.nodes) {
      RemoteAgent* node = Node(id);
      if (node != nullptr && !node->failed()) {
        source = node;
        break;
      }
    }
    const uint32_t replacement = placer_->Pick(
        nodes_, mapping.nodes, host_id_, slab, placement_rng_);
    if (replacement == SlabPlacer::kNoNode) {
      // Degraded: the slab keeps running with fewer replicas.
      ++capacity_exhausted_events_;
      Count(counter::kRemoteCapacityExhausted);
      continue;
    }
    RemoteAgent* target = Node(replacement);
    if (target == nullptr || !target->MapSlab()) {
      continue;
    }
    mapping.nodes.push_back(replacement);
    ++repaired;
    Count(counter::kSlabRepairs);
    if (source != nullptr) {
      // Re-replication traffic rides the same NIC/fabric as foreground
      // I/O, so repair storms congest the cluster like they would in life.
      const SwapSlot base = static_cast<SwapSlot>(slab) * config_.slab_pages;
      for (size_t p = 0; p < config_.slab_pages; ++p) {
        const auto tag = source->LoadPage(PageKey(base + p));
        if (tag.has_value()) {
          target->StorePage(PageKey(base + p), *tag);
          nic_.SubmitPageOpTo(replacement, QueueFor(base + p),
                              RepairCopy(base + p, now), now,
                              placement_rng_);
          Count(counter::kRepairPageCopies);
        }
      }
    }
  }
  return repaired;
}

void HostAgent::DropSlabTags(RemoteAgent* node, size_t slab) const {
  const SwapSlot base = static_cast<SwapSlot>(slab) * config_.slab_pages;
  for (size_t p = 0; p < config_.slab_pages; ++p) {
    node->DropPage(PageKey(base + p));
  }
}

void HostAgent::ReleaseAllSlabs() {
  for (size_t slab = 0; slab < slab_map_.size(); ++slab) {
    SlabMapping& mapping = slab_map_[slab];
    if (mapping.overflow) {
      continue;
    }
    for (uint32_t id : mapping.nodes) {
      if (RemoteAgent* node = Node(id)) {
        node->UnmapSlab();
        DropSlabTags(node, slab);
      }
    }
    mapping.nodes.clear();
  }
  slab_map_.clear();
  overflow_slabs_ = 0;
  overflow_tags_.Clear();
}

double HostAgent::MeanReadLatencyNs() const {
  return static_cast<double>(config_.nic.base_mean_ns +
                             config_.nic.serialization_ns);
}

std::vector<size_t> HostAgent::NodeLoads() const {
  std::vector<size_t> loads;
  loads.reserve(nodes_.size());
  for (const RemoteAgent* node : nodes_) {
    loads.push_back(node->mapped_slabs());
  }
  return loads;
}

}  // namespace leap
