#include "src/rdma/host_agent.h"

#include <algorithm>
#include <stdexcept>

#include "src/cluster/slab_placer.h"

namespace leap {

void ResilienceConfig::Validate() const {
  if (!enabled) {
    return;
  }
  if (read_deadline_ns == 0) {
    throw std::invalid_argument(
        "ResilienceConfig: read_deadline_ns must be > 0");
  }
  if (max_read_retries == 0) {
    throw std::invalid_argument(
        "ResilienceConfig: max_read_retries must be >= 1 when enabled "
        "(disable resilience instead of configuring zero retries)");
  }
  if (retry_backoff_ns == 0) {
    throw std::invalid_argument(
        "ResilienceConfig: retry_backoff_ns must be > 0");
  }
  if (backoff_multiplier < 1.0) {
    throw std::invalid_argument(
        "ResilienceConfig: backoff_multiplier must be >= 1 (backoff must "
        "be monotone non-decreasing across attempts)");
  }
  if (hedge_enabled && hedge_p99_factor <= 0.0) {
    throw std::invalid_argument(
        "ResilienceConfig: hedge_p99_factor must be > 0");
  }
  if (avoid_gray_nodes && gray_probe_interval == 0) {
    throw std::invalid_argument(
        "ResilienceConfig: gray_probe_interval must be >= 1");
  }
}

HostAgent::HostAgent(const HostAgentConfig& config,
                     std::vector<RemoteAgent*> remote_nodes, uint64_t seed)
    : config_(config),
      nodes_(std::move(remote_nodes)),
      nic_(config.nic),
      placement_rng_(seed),
      default_placer_(std::make_unique<PowerOfTwoPlacer>()),
      placer_(default_placer_.get()) {}

HostAgent::~HostAgent() = default;

void HostAgent::BindFabric(PageTransport* fabric, uint32_t host_id) {
  host_id_ = host_id;
  fabric_ = fabric;
  nic_.BindFabric(fabric, host_id);
}

void HostAgent::SetPlacer(SlabPlacer* placer) {
  placer_ = placer != nullptr ? placer : default_placer_.get();
}

void HostAgent::SetResilience(const ResilienceConfig& resilience) {
  resilience.Validate();
  resilience_ = resilience;
}

RemoteAgent* HostAgent::Node(uint32_t id) const {
  for (RemoteAgent* node : nodes_) {
    if (node->node_id() == id) {
      return node;
    }
  }
  return nullptr;
}

RemoteAgent* HostAgent::ServingNode(const SlabMapping& mapping,
                                    bool* failover) const {
  for (size_t i = 0; i < mapping.nodes.size(); ++i) {
    RemoteAgent* node = Node(mapping.nodes[i]);
    if (node != nullptr && !node->failed()) {
      *failover = i > 0;
      return node;
    }
  }
  *failover = false;
  return nullptr;
}

RemoteAgent* HostAgent::FirstLiveNonGray(const SlabMapping& mapping) const {
  if (health_ == nullptr) {
    return nullptr;
  }
  for (uint32_t id : mapping.nodes) {
    RemoteAgent* node = Node(id);
    if (node != nullptr && !node->failed() && !health_->IsGray(id)) {
      return node;
    }
  }
  return nullptr;
}

RemoteAgent* HostAgent::NextLiveReplicaAfter(const SlabMapping& mapping,
                                             const RemoteAgent* exclude) const {
  // Round-robin from just past `exclude` in mapping order, so successive
  // retries of one read spread across the replica set.
  const size_t n = mapping.nodes.size();
  size_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    if (exclude != nullptr && mapping.nodes[i] == exclude->node_id()) {
      start = i + 1;
      break;
    }
  }
  for (size_t k = 0; k < n; ++k) {
    RemoteAgent* node = Node(mapping.nodes[(start + k) % n]);
    if (node != nullptr && !node->failed() && node != exclude) {
      return node;
    }
  }
  return nullptr;
}

RemoteAgent* HostAgent::NextFastestLiveReplica(
    const SlabMapping& mapping, const RemoteAgent* serving) const {
  RemoteAgent* best = nullptr;
  double best_ewma = 0.0;
  for (uint32_t id : mapping.nodes) {
    RemoteAgent* node = Node(id);
    if (node == nullptr || node->failed() || node == serving) {
      continue;
    }
    const double ewma = health_ != nullptr ? health_->NodeEwmaNs(id) : 0.0;
    if (best == nullptr || ewma < best_ewma) {
      best = node;
      best_ewma = ewma;
    }
  }
  return best;
}

void HostAgent::EnsureSlabMapped(SwapSlot slot) {
  const size_t slab = slot / config_.slab_pages;
  while (slab_map_.size() <= slab) {
    SlabMapping mapping;
    const size_t replicas =
        std::max<size_t>(1, std::min(config_.replicas, nodes_.size()));
    for (size_t r = 0; r < replicas; ++r) {
      const uint32_t node_id =
          placer_->Pick(nodes_, mapping.nodes, host_id_, slab_map_.size(),
                        placement_rng_);
      if (node_id == SlabPlacer::kNoNode) {
        break;  // pool out of eligible capacity for further replicas
      }
      RemoteAgent* node = Node(node_id);
      if (node == nullptr || !node->MapSlab()) {
        break;
      }
      mapping.nodes.push_back(node_id);
    }
    if (mapping.nodes.empty()) {
      // Nowhere in the pool to put even the primary: the slab degrades to
      // the overflow medium. A counted event, not a silent fallback.
      mapping.overflow = true;
      ++overflow_slabs_;
      ++capacity_exhausted_events_;
      Count(counter::kRemoteCapacityExhausted);
    }
    slab_map_.push_back(std::move(mapping));
  }
}

const SlabMapping& HostAgent::MappingForSlot(SwapSlot slot) {
  EnsureSlabMapped(slot);
  return slab_map_[slot / config_.slab_pages];
}

size_t HostAgent::QueueFor(SwapSlot slot) const {
  // Splitmix-style scramble so contiguous slots land on distinct queues.
  uint64_t z = slot + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return static_cast<size_t>(z % nic_.num_queues());
}

void HostAgent::ReadPages(std::span<const IoRequest> reqs, SimTimeNs now,
                          Rng& rng, std::span<SimTimeNs> ready_at) {
  for (size_t i = 0; i < reqs.size(); ++i) {
    const SwapSlot slot = reqs[i].slot;
    EnsureSlabMapped(slot);
    const SlabMapping& mapping = slab_map_[slot / config_.slab_pages];
    if (mapping.overflow && overflow_store_ != nullptr) {
      overflow_store_->ReadPages({&reqs[i], 1}, now, rng, {&ready_at[i], 1});
      Count(counter::kOverflowReads);
      continue;
    }
    bool failover = false;
    RemoteAgent* node = ServingNode(mapping, &failover);
    if (node == nullptr && !mapping.nodes.empty()) {
      // Every replica is down: charge a timeout-and-recover penalty so the
      // run keeps making (degraded) progress.
      ready_at[i] = now + config_.failed_read_penalty_ns;
      Count(counter::kRemoteReadsLost);
      continue;
    }
    // Gray avoidance: a node that answers 10-100x late silently poisons
    // the tail without ever tripping the crash-failover path above. When
    // the health monitor marks the would-be serving node gray, steer the
    // read to a live non-gray replica (safe for read-your-writes: a gray
    // node is live, so every replica in the set absorbed the writes).
    RemoteAgent* primary = node;
    bool rerouted = false;
    if (resilience_.enabled && resilience_.avoid_gray_nodes &&
        node != nullptr && health_ != nullptr &&
        health_->IsGray(node->node_id())) {
      RemoteAgent* alt = FirstLiveNonGray(mapping);
      if (alt != nullptr && alt != node) {
        node = alt;
        rerouted = true;
        Count(counter::kReadsRerouted);
        Trace(TraceEventKind::kReadReroute, reqs[i], now, alt->node_id());
      }
    }
    if (failover) {
      Count(counter::kRemoteFailovers);
    }
    const uint32_t target = node != nullptr ? node->node_id() : 0;
    SimTimeNs done =
        nic_.SubmitPageOpTo(target, QueueFor(slot), reqs[i], now, rng);
    if (node != nullptr) {
      node->CountRead();
      if (reqs[i].cls == IoClass::kDemandRead) {
        // Demand completions feed the health monitor's per-node EWMAs
        // (prefetch latency is policy-shaped under QoS schedulers, so it
        // would pollute the outlier signal).
        RecordHealth(target, done - now, now);
        if (resilience_.enabled) {
          done = MitigateDemandRead(reqs[i], mapping, node, primary,
                                    rerouted, done, now, rng);
        }
      }
    }
    ready_at[i] = done;
  }
}

SimTimeNs HostAgent::MitigateDemandRead(const IoRequest& req,
                                        const SlabMapping& mapping,
                                        RemoteAgent* serving,
                                        RemoteAgent* primary, bool rerouted,
                                        SimTimeNs first_done, SimTimeNs now,
                                        Rng& rng) {
  SimTimeNs best = first_done;

  // Gray-primary probe: avoidance starves the monitor of samples from the
  // node it is avoiding, so a recovered node would stay gray forever.
  // Every Nth rerouted read duplicates to the gray primary; its completion
  // feeds the monitor (and can only help the read, since the overall
  // completion takes the min). The probe keeps the DEMAND class: health is
  // judged on demand-lane latency, and a background-class probe would
  // measure the QoS backlog instead, pinning a recovered node gray.
  if (rerouted && primary != nullptr && !primary->failed() &&
      reroute_probe_tick_++ % resilience_.gray_probe_interval == 0) {
    const SimTimeNs probe_done = nic_.SubmitPageOpTo(
        primary->node_id(), QueueFor(req.slot + 1), req, now, rng);
    primary->CountRead();
    RecordHealth(primary->node_id(), probe_done - now, now);
    best = std::min(best, probe_done);
  }

  // Hedged read: when the first attempt outlives the p99-based hedge
  // delay, race a duplicate against the next-fastest live replica and take
  // the earlier completion. The duplicate is IoClass::kHedge - background
  // on the links - so hedging can never displace first-issue demand reads.
  if (resilience_.hedge_enabled && health_ != nullptr) {
    const SimTimeNs p99 = health_->ReadLatencyP99Ns();
    if (p99 > 0) {
      SimTimeNs hedge_delay = std::max(
          resilience_.hedge_floor_ns,
          static_cast<SimTimeNs>(static_cast<double>(p99) *
                                 resilience_.hedge_p99_factor));
      hedge_delay = std::min(hedge_delay, resilience_.read_deadline_ns);
      if (best > now + hedge_delay) {
        RemoteAgent* alt = NextFastestLiveReplica(mapping, serving);
        if (alt != nullptr) {
          Count(counter::kHedgedReads);
          IoRequest hedge = req;
          hedge.cls = IoClass::kHedge;
          const SimTimeNs issue = now + hedge_delay;
          const SimTimeNs hedge_done = nic_.SubmitPageOpTo(
              alt->node_id(), QueueFor(req.slot + 2), hedge, issue, rng);
          alt->CountRead();
          Trace(TraceEventKind::kHedgeIssued, hedge, issue, alt->node_id());
          // Deliberately NOT fed to the health monitor: a hedge rides the
          // background lane, so its completion measures QoS queueing, not
          // node health - recording it would convict healthy nodes of the
          // scheduler's own backlog and cascade reroutes onto nowhere.
          if (hedge_done < best) {
            Count(counter::kHedgeWins);
            Trace(TraceEventKind::kHedgeWin, hedge, hedge_done,
                  alt->node_id(), best - hedge_done);
            best = hedge_done;
          }
        }
      }
    }
  }

  // Deadline + retry-with-backoff: the attempt is declared late one
  // deadline after its issue; the retry goes to the next live replica
  // (round-robin) after a backoff that grows per attempt. The original
  // attempt stays in flight - completion is the min across attempts - so
  // a retry can never make a read slower.
  SimTimeNs issue = now;
  SimTimeNs backoff = resilience_.retry_backoff_ns;
  const RemoteAgent* last = serving;
  for (size_t attempt = 0; attempt < resilience_.max_read_retries &&
                           best > issue + resilience_.read_deadline_ns;
       ++attempt) {
    Count(counter::kReadDeadlineMisses);
    Trace(TraceEventKind::kDeadlineMiss, req,
          issue + resilience_.read_deadline_ns,
          last != nullptr ? last->node_id() : 0);
    RemoteAgent* alt = NextLiveReplicaAfter(mapping, last);
    if (alt == nullptr) {
      break;  // nowhere else to go; the in-flight attempt is the answer
    }
    issue += resilience_.read_deadline_ns + backoff;
    backoff = static_cast<SimTimeNs>(static_cast<double>(backoff) *
                                     resilience_.backoff_multiplier);
    Count(counter::kReadRetries);
    const SimTimeNs retry_done = nic_.SubmitPageOpTo(
        alt->node_id(), QueueFor(req.slot + 3 + attempt), req, issue, rng);
    Trace(TraceEventKind::kReadRetry, req, issue, alt->node_id());
    alt->CountRead();
    RecordHealth(alt->node_id(), retry_done - issue, issue);
    best = std::min(best, retry_done);
    last = alt;
  }
  return best;
}

SimTimeNs HostAgent::WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) {
  const SwapSlot slot = req.slot;
  const SlabMapping& mapping = MappingForSlot(slot);
  if (mapping.overflow && overflow_store_ != nullptr) {
    Count(counter::kOverflowWrites);
    return overflow_store_->WritePage(req, now, rng);
  }
  // Replicated write: issue to every live replica, complete when all
  // complete. Replicas that are down miss the write (repair re-syncs them).
  SimTimeNs done = now;
  if (mapping.nodes.empty()) {
    // Best-effort path for agents with no overflow store (standalone use).
    return nic_.SubmitPageOpTo(0, QueueFor(slot), req, now, rng);
  }
  bool any_live = false;
  for (size_t r = 0; r < mapping.nodes.size(); ++r) {
    RemoteAgent* node = Node(mapping.nodes[r]);
    if (node == nullptr || node->failed()) {
      continue;
    }
    any_live = true;
    done = std::max(done,
                    nic_.SubmitPageOpTo(node->node_id(), QueueFor(slot + r),
                                        req, now, rng));
    node->CountWrite();
  }
  if (!any_live) {
    Count(counter::kRemoteWritesLost);
    return now + config_.failed_read_penalty_ns;
  }
  return done;
}

void HostAgent::WriteTag(SwapSlot slot, uint64_t tag, SimTimeNs now,
                         Rng& rng) {
  const SlabMapping& mapping = MappingForSlot(slot);
  if (mapping.overflow) {
    overflow_tags_[slot] = tag;
  } else {
    for (uint32_t node_id : mapping.nodes) {
      RemoteAgent* node = Node(node_id);
      if (node == nullptr) {
        continue;
      }
      if (node->failed()) {
        // The down replica misses the write; drop its stale copy so a
        // later recovery cannot resurrect the old value (ReadTag falls
        // through to a replica that has the page).
        node->DropPage(PageKey(slot));
      } else {
        node->StorePage(PageKey(slot), tag);
      }
    }
  }
  WritePage(WritebackOp(slot, 0, now), now, rng);
}

std::optional<uint64_t> HostAgent::ReadTag(SwapSlot slot) const {
  const size_t slab = slot / config_.slab_pages;
  if (slab >= slab_map_.size()) {
    return std::nullopt;
  }
  const SlabMapping& mapping = slab_map_[slab];
  if (mapping.overflow) {
    const uint64_t* tag = overflow_tags_.Find(slot);
    return tag == nullptr ? std::nullopt : std::optional<uint64_t>(*tag);
  }
  for (uint32_t node_id : mapping.nodes) {
    RemoteAgent* node = Node(node_id);
    if (node == nullptr || node->failed()) {
      continue;
    }
    // Fall through to the next replica when this one lacks the page (it
    // was down for the write and its stale copy was invalidated).
    const auto tag = node->LoadPage(PageKey(slot));
    if (tag.has_value()) {
      return tag;
    }
  }
  return std::nullopt;
}

size_t HostAgent::RepairSlabsAfterFailure(uint32_t failed_node,
                                          SimTimeNs now) {
  RemoteAgent* failed = Node(failed_node);
  size_t repaired = 0;
  for (size_t slab = 0; slab < slab_map_.size(); ++slab) {
    SlabMapping& mapping = slab_map_[slab];
    if (mapping.overflow) {
      continue;
    }
    auto it = std::find(mapping.nodes.begin(), mapping.nodes.end(),
                        failed_node);
    if (it == mapping.nodes.end()) {
      continue;
    }
    mapping.nodes.erase(it);
    if (failed != nullptr) {
      failed->UnmapSlab();
      // The failed node lost its lease on this slab: garbage-collect its
      // copy so being re-picked after recovery cannot serve stale tags.
      DropSlabTags(failed, slab);
    }
    // Surviving replica to re-replicate from (may be none when the slab
    // was single-replica: its pages are lost until rewritten).
    RemoteAgent* source = nullptr;
    for (uint32_t id : mapping.nodes) {
      RemoteAgent* node = Node(id);
      if (node != nullptr && !node->failed()) {
        source = node;
        break;
      }
    }
    const uint32_t replacement = placer_->Pick(
        nodes_, mapping.nodes, host_id_, slab, placement_rng_);
    if (replacement == SlabPlacer::kNoNode) {
      // Degraded: the slab keeps running with fewer replicas.
      ++capacity_exhausted_events_;
      Count(counter::kRemoteCapacityExhausted);
      continue;
    }
    RemoteAgent* target = Node(replacement);
    if (target == nullptr || !target->MapSlab()) {
      continue;
    }
    mapping.nodes.push_back(replacement);
    ++repaired;
    Count(counter::kSlabRepairs);
    if (source != nullptr) {
      // Re-replication traffic rides the same NIC/fabric as foreground
      // I/O, so repair storms congest the cluster like they would in life.
      const SwapSlot base = static_cast<SwapSlot>(slab) * config_.slab_pages;
      for (size_t p = 0; p < config_.slab_pages; ++p) {
        const auto tag = source->LoadPage(PageKey(base + p));
        if (tag.has_value()) {
          target->StorePage(PageKey(base + p), *tag);
          nic_.SubmitPageOpTo(replacement, QueueFor(base + p),
                              RepairCopy(base + p, now), now,
                              placement_rng_);
          Count(counter::kRepairPageCopies);
        }
      }
    }
  }
  return repaired;
}

void HostAgent::DropSlabTags(RemoteAgent* node, size_t slab) const {
  const SwapSlot base = static_cast<SwapSlot>(slab) * config_.slab_pages;
  for (size_t p = 0; p < config_.slab_pages; ++p) {
    node->DropPage(PageKey(base + p));
  }
}

void HostAgent::ReleaseAllSlabs() {
  for (size_t slab = 0; slab < slab_map_.size(); ++slab) {
    SlabMapping& mapping = slab_map_[slab];
    if (mapping.overflow) {
      continue;
    }
    for (uint32_t id : mapping.nodes) {
      if (RemoteAgent* node = Node(id)) {
        node->UnmapSlab();
        DropSlabTags(node, slab);
      }
    }
    mapping.nodes.clear();
  }
  slab_map_.clear();
  overflow_slabs_ = 0;
  overflow_tags_.Clear();
}

double HostAgent::MeanReadLatencyNs() const {
  return static_cast<double>(config_.nic.base_mean_ns +
                             config_.nic.serialization_ns);
}

std::vector<size_t> HostAgent::NodeLoads() const {
  std::vector<size_t> loads;
  loads.reserve(nodes_.size());
  for (const RemoteAgent* node : nodes_) {
    loads.push_back(node->mapped_slabs());
  }
  return loads;
}

}  // namespace leap
