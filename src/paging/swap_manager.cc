#include "src/paging/swap_manager.h"

namespace leap {

SwapSlot SwapManager::SlotFor(Pid pid, Vpn vpn) {
  const uint64_t key = Key(pid, vpn);
  if (const SwapSlot* existing = forward_.Find(key)) {
    return *existing;
  }
  const SwapSlot slot = next_slot_++;
  forward_[key] = slot;
  reverse_[slot] = PidVpn{pid, vpn};
  ++per_pid_slots_[pid];
  return slot;
}

size_t SwapManager::SlotsOf(Pid pid) const {
  const uint64_t* count = per_pid_slots_.Find(pid);
  return count == nullptr ? 0 : static_cast<size_t>(*count);
}

void SwapManager::ReleaseSlot(Pid pid, Vpn vpn) {
  const uint64_t key = Key(pid, vpn);
  const SwapSlot* slot = forward_.Find(key);
  if (slot == nullptr) {
    return;
  }
  reverse_.Erase(*slot);
  forward_.Erase(key);
  if (uint64_t* count = per_pid_slots_.Find(pid)) {
    if (*count > 0) {
      --*count;
    }
  }
}

std::optional<SwapSlot> SwapManager::FindSlot(Pid pid, Vpn vpn) const {
  const SwapSlot* slot = forward_.Find(Key(pid, vpn));
  if (slot == nullptr) {
    return std::nullopt;
  }
  return *slot;
}

std::optional<PidVpn> SwapManager::OwnerOf(SwapSlot slot) const {
  const PidVpn* owner = reverse_.Find(slot);
  if (owner == nullptr) {
    return std::nullopt;
  }
  return *owner;
}

}  // namespace leap
