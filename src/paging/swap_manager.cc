#include "src/paging/swap_manager.h"

namespace leap {

SwapSlot SwapManager::SlotFor(Pid pid, Vpn vpn) {
  const uint64_t key = Key(pid, vpn);
  auto it = forward_.find(key);
  if (it != forward_.end()) {
    return it->second;
  }
  const SwapSlot slot = next_slot_++;
  forward_[key] = slot;
  reverse_[slot] = PidVpn{pid, vpn};
  return slot;
}

void SwapManager::ReleaseSlot(Pid pid, Vpn vpn) {
  const uint64_t key = Key(pid, vpn);
  auto it = forward_.find(key);
  if (it == forward_.end()) {
    return;
  }
  reverse_.erase(it->second);
  forward_.erase(it);
}

std::optional<SwapSlot> SwapManager::FindSlot(Pid pid, Vpn vpn) const {
  auto it = forward_.find(Key(pid, vpn));
  if (it == forward_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<PidVpn> SwapManager::OwnerOf(SwapSlot slot) const {
  auto it = reverse_.find(slot);
  if (it == reverse_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace leap
