// The two remote-I/O data paths under study.
//
// DefaultDataPath models the legacy kernel path (Figure 1): VFS/swap entry
// overhead, then the block layer's staging/merging/batching, then the
// device. The demand page is released only when its merged batch completes.
//
// LeapDataPath models the paper's lean path (Figure 6): a small fixed entry
// cost, then per-page asynchronous submission straight to the RDMA dispatch
// queues (or device). The demand page completes on its own; prefetched
// pages trail behind without delaying it.
//
// Both paths consume tagged IoRequest batches: the demand page is the
// entry tagged IoClass::kDemandRead (any position), prefetches are tagged
// kPrefetch, and writes carry kWriteback/kEviction - the tag, not a
// positional convention, is the contract, and it travels with the op all
// the way to the transport's link schedulers.
#ifndef LEAP_SRC_PAGING_DATA_PATH_H_
#define LEAP_SRC_PAGING_DATA_PATH_H_

#include <memory>
#include <span>
#include <string>

#include "src/blocklayer/request_queue.h"
#include "src/sim/io_request.h"
#include "src/sim/latency_model.h"
#include "src/storage/backing_store.h"

namespace leap {

class DataPath {
 public:
  virtual ~DataPath() = default;

  // Reads one fault's pages: exactly one entry tagged IoClass::kDemandRead
  // plus any number of kPrefetch entries (asserted). Fills `ready_at`,
  // indexed exactly like `reqs`, and returns the demand-tagged entry's
  // completion time. Implementations must require (and assert)
  // ready_at.size() == reqs.size().
  virtual SimTimeNs ReadPages(std::span<const IoRequest> reqs, SimTimeNs now,
                              Rng& rng, std::span<SimTimeNs> ready_at) = 0;

  // Swap-out / writeback of one page; returns completion time.
  virtual SimTimeNs WritePage(const IoRequest& req, SimTimeNs now,
                              Rng& rng) = 0;

  // Service latency charged to a page-cache hit on this path. The default
  // path's constant software overhead keeps this near 1 us for D-VMM
  // (Figure 2's floor); Leap's optimized path hits in ~0.27 us.
  virtual SimTimeNs CacheHitCost(Rng& rng) = 0;

  virtual std::string name() const = 0;

  // Flight-recorder wiring (no-op by default). The default path forwards
  // it to its block-layer queue so batch staging shows up as spans; the
  // Leap path has no staging stage worth a span (that IS the point) and
  // keeps the no-op.
  virtual void SetTrace(TraceRecorder* trace, uint32_t host_id) {
    (void)trace;
    (void)host_id;
  }
};

// Index of the (single) demand-tagged entry of a fault batch, or
// reqs.size() when there is none. Shared by both paths and asserted on:
// the tag replaced the old "demand page is index 0" convention, and every
// batch must carry it explicitly.
size_t DemandIndex(std::span<const IoRequest> reqs);

struct DefaultPathConfig {
  BlockLayerConfig block;
  // Constant software floor added to every request on this path,
  // including hits (the "around 1 us" implementation overhead the paper
  // measures for disaggregation frameworks). Zero for plain disk swap.
  SimTimeNs hit_cost_ns = 1050;
  SimTimeNs hit_jitter_ns = 150;
};

class DefaultDataPath : public DataPath {
 public:
  DefaultDataPath(const DefaultPathConfig& config, BackingStore* store);

  SimTimeNs ReadPages(std::span<const IoRequest> reqs, SimTimeNs now,
                      Rng& rng, std::span<SimTimeNs> ready_at) override;
  SimTimeNs WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) override;
  SimTimeNs CacheHitCost(Rng& rng) override;
  std::string name() const override { return "default"; }
  void SetTrace(TraceRecorder* trace, uint32_t host_id) override {
    queue_.SetTrace(trace, host_id);
  }

  const RequestQueue& request_queue() const { return queue_; }

 private:
  DefaultPathConfig config_;
  RequestQueue queue_;
};

struct LeapPathConfig {
  // Lean software entry: fault entry + Leap bookkeeping + dispatch.
  SimTimeNs entry_mean_ns = 2100;
  SimTimeNs entry_stddev_ns = 400;
  SimTimeNs entry_min_ns = 800;
  // Optimized cache-hit service cost (Figure 1: 0.27 us).
  SimTimeNs hit_cost_ns = 270;
  SimTimeNs hit_jitter_ns = 60;
};

class LeapDataPath : public DataPath {
 public:
  LeapDataPath(const LeapPathConfig& config, BackingStore* store);

  SimTimeNs ReadPages(std::span<const IoRequest> reqs, SimTimeNs now,
                      Rng& rng, std::span<SimTimeNs> ready_at) override;
  SimTimeNs WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) override;
  SimTimeNs CacheHitCost(Rng& rng) override;
  std::string name() const override { return "leap"; }

 private:
  LeapPathConfig config_;
  BackingStore* store_;
  LatencyModel entry_;
};

}  // namespace leap

#endif  // LEAP_SRC_PAGING_DATA_PATH_H_
