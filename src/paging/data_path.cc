#include "src/paging/data_path.h"

#include <cassert>

namespace leap {

size_t DemandIndex(std::span<const IoRequest> reqs) {
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i].cls == IoClass::kDemandRead) {
      return i;
    }
  }
  return reqs.size();
}

namespace {

// Shared contract check for both paths: the batch parallels ready_at and
// carries exactly one demand-tagged entry (the tag is the contract; the
// old "index 0" convention is gone). Two demand tags would silently
// misattribute the returned completion, so the count is enforced, not
// just presence.
void CheckBatch(std::span<const IoRequest> reqs,
                std::span<SimTimeNs> ready_at) {
#ifndef NDEBUG
  assert(ready_at.size() == reqs.size() &&
         "ReadPages: ready_at must parallel reqs");
  size_t demand_entries = 0;
  for (const IoRequest& req : reqs) {
    if (req.cls == IoClass::kDemandRead) {
      ++demand_entries;
    }
  }
  assert((reqs.empty() || demand_entries == 1) &&
         "ReadPages: batch must carry exactly one kDemandRead entry");
#else
  (void)reqs;
  (void)ready_at;
#endif
}

}  // namespace

DefaultDataPath::DefaultDataPath(const DefaultPathConfig& config,
                                 BackingStore* store)
    : config_(config), queue_(config.block, store) {}

SimTimeNs DefaultDataPath::ReadPages(std::span<const IoRequest> reqs,
                                     SimTimeNs now, Rng& rng,
                                     std::span<SimTimeNs> ready_at) {
  CheckBatch(reqs, ready_at);
  queue_.SubmitBatch(reqs, now, rng, ready_at);
  const size_t demand = DemandIndex(reqs);
  return demand < reqs.size() ? ready_at[demand] : now;
}

SimTimeNs DefaultDataPath::WritePage(const IoRequest& req, SimTimeNs now,
                                     Rng& rng) {
  return queue_.SubmitWrite(req, now, rng);
}

SimTimeNs DefaultDataPath::CacheHitCost(Rng& rng) {
  if (config_.hit_jitter_ns == 0) {
    return config_.hit_cost_ns;
  }
  return config_.hit_cost_ns + rng.NextU64(config_.hit_jitter_ns);
}

LeapDataPath::LeapDataPath(const LeapPathConfig& config, BackingStore* store)
    : config_(config),
      store_(store),
      entry_(LatencyModel::Normal(config.entry_mean_ns, config.entry_stddev_ns,
                                  config.entry_min_ns)) {}

SimTimeNs LeapDataPath::ReadPages(std::span<const IoRequest> reqs,
                                  SimTimeNs now, Rng& rng,
                                  std::span<SimTimeNs> ready_at) {
  CheckBatch(reqs, ready_at);
  if (reqs.empty()) {
    return now;
  }
  // One lean entry for the fault, then per-page asynchronous submission;
  // no sorting, merging, or request-granularity completion.
  const SimTimeNs submit = now + entry_.Sample(rng);
  store_->ReadPages(reqs, submit, rng, ready_at);
  const size_t demand = DemandIndex(reqs);
  return demand < reqs.size() ? ready_at[demand] : now;
}

SimTimeNs LeapDataPath::WritePage(const IoRequest& req, SimTimeNs now,
                                  Rng& rng) {
  const SimTimeNs submit = now + entry_.Sample(rng);
  return store_->WritePage(req, submit, rng);
}

SimTimeNs LeapDataPath::CacheHitCost(Rng& rng) {
  if (config_.hit_jitter_ns == 0) {
    return config_.hit_cost_ns;
  }
  return config_.hit_cost_ns + rng.NextU64(config_.hit_jitter_ns);
}

}  // namespace leap
