#include "src/paging/data_path.h"

#include <cassert>

namespace leap {

DefaultDataPath::DefaultDataPath(const DefaultPathConfig& config,
                                 BackingStore* store)
    : config_(config), queue_(config.block, store) {}

SimTimeNs DefaultDataPath::ReadPages(std::span<const SwapSlot> slots,
                                     SimTimeNs now, Rng& rng,
                                     std::span<SimTimeNs> ready_at) {
  // slots[0] is the demand page by convention (see DataPath::ReadPages).
  assert(ready_at.size() == slots.size() &&
         "ReadPages: ready_at must parallel slots");
  queue_.SubmitBatch(slots, /*write=*/false, now, rng, ready_at);
  return ready_at.empty() ? now : ready_at[0];
}

SimTimeNs DefaultDataPath::WritePage(SwapSlot slot, SimTimeNs now, Rng& rng) {
  return queue_.SubmitWrite(slot, now, rng);
}

SimTimeNs DefaultDataPath::CacheHitCost(Rng& rng) {
  if (config_.hit_jitter_ns == 0) {
    return config_.hit_cost_ns;
  }
  return config_.hit_cost_ns + rng.NextU64(config_.hit_jitter_ns);
}

LeapDataPath::LeapDataPath(const LeapPathConfig& config, BackingStore* store)
    : config_(config),
      store_(store),
      entry_(LatencyModel::Normal(config.entry_mean_ns, config.entry_stddev_ns,
                                  config.entry_min_ns)) {}

SimTimeNs LeapDataPath::ReadPages(std::span<const SwapSlot> slots,
                                  SimTimeNs now, Rng& rng,
                                  std::span<SimTimeNs> ready_at) {
  // slots[0] is the demand page by convention (see DataPath::ReadPages).
  assert(ready_at.size() == slots.size() &&
         "ReadPages: ready_at must parallel slots");
  if (slots.empty()) {
    return now;
  }
  // One lean entry for the fault, then per-page asynchronous submission;
  // no sorting, merging, or request-granularity completion.
  const SimTimeNs submit = now + entry_.Sample(rng);
  store_->ReadPages(slots, submit, rng, ready_at);
  return ready_at[0];
}

SimTimeNs LeapDataPath::WritePage(SwapSlot slot, SimTimeNs now, Rng& rng) {
  const SimTimeNs submit = now + entry_.Sample(rng);
  return store_->WritePage(slot, submit, rng);
}

SimTimeNs LeapDataPath::CacheHitCost(Rng& rng) {
  if (config_.hit_jitter_ns == 0) {
    return config_.hit_cost_ns;
  }
  return config_.hit_cost_ns + rng.NextU64(config_.hit_jitter_ns);
}

}  // namespace leap
