// Swap-slot allocation with Linux's sequential-cluster layout.
//
// Slots are handed out in ascending order within clusters, so pages evicted
// together land on contiguous offsets. Because every process shares one
// swap space, interleaved evictions from different processes interleave
// their slots - the exact property that confuses sequence-based prefetchers
// (paper section 2.3) and that Leap's per-process histories tolerate.
//
// Both directions of the mapping live in flat robin-hood maps: FindSlot is
// on the critical path of every fault, and steady-state slot churn
// (allocate on swap-out, release on re-dirty) must not touch the allocator.
#ifndef LEAP_SRC_PAGING_SWAP_MANAGER_H_
#define LEAP_SRC_PAGING_SWAP_MANAGER_H_

#include <optional>

#include "src/container/flat_map.h"
#include "src/mem/lru_list.h"
#include "src/sim/types.h"

namespace leap {

class SwapManager {
 public:
  explicit SwapManager(size_t cluster_pages = 256)
      : cluster_pages_(cluster_pages == 0 ? 1 : cluster_pages) {}

  // Slot for (pid, vpn), allocating one on first swap-out. A page keeps its
  // slot for life (rewrite in place), like the kernel while a swap entry
  // stays referenced.
  SwapSlot SlotFor(Pid pid, Vpn vpn);

  // Lookup without allocation.
  std::optional<SwapSlot> FindSlot(Pid pid, Vpn vpn) const;

  // Frees the slot association (swap_free semantics): called when a
  // swapped-in page is re-dirtied, so its next eviction allocates a fresh
  // slot. This is what progressively scrambles the swap layout relative to
  // the virtual layout on write-heavy workloads.
  void ReleaseSlot(Pid pid, Vpn vpn);

  // Reverse mapping (used when a cached slot must be re-associated).
  std::optional<PidVpn> OwnerOf(SwapSlot slot) const;

  size_t allocated_slots() const { return forward_.size(); }
  // Per-tenant accounting: live swap slots held by `pid` - the tenant's
  // footprint on the backing medium (remote slabs in disaggregated runs).
  // Surfaced by the cluster stats so per-tenant pressure on the donor pool
  // is visible without walking the maps.
  size_t SlotsOf(Pid pid) const;
  // High-water mark of the swap area: one past the largest slot ever
  // handed out (slots freed by ReleaseSlot still lie below it).
  SwapSlot high_water() const { return next_slot_; }

 private:
  size_t cluster_pages_;
  SwapSlot next_slot_ = 0;
  FlatMap<uint64_t, SwapSlot> forward_;  // key: pid<<48 ^ vpn
  FlatMap<SwapSlot, PidVpn> reverse_;
  FlatMap<Pid, uint64_t> per_pid_slots_;

  static uint64_t Key(Pid pid, Vpn vpn) {
    return (static_cast<uint64_t>(pid) << 48) ^ vpn;
  }
};

}  // namespace leap

#endif  // LEAP_SRC_PAGING_SWAP_MANAGER_H_
