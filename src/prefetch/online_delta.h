// Online-learned prefetcher: a per-region delta-Markov table with
// perceptron-style confidence weights, trained continuously from the v2
// outcome-feedback stream (in the spirit of Hashemi et al., "Learning
// Memory Access Patterns", scaled down to integer table lookups).
//
// Structure: the access stream (misses AND cache hits, like Leap's
// tracker) is reduced per-process to page deltas, which train two tables:
//   stride context  (region, previous delta) -> successor deltas, which
//                   captures striding code (sequential, stride-N, nested
//                   loops with per-region strides);
//   correlation     exact previous address -> successor deltas, a Markov
//                   chain over addresses that captures recurring
//                   transitions with NO arithmetic structure - e.g. the
//                   hot-pair successions of a zipf-skewed key space.
// A third predictor handles streams with no repeatable delta context at
// all: a proximity bandit over small slot offsets from the demand page.
// Swap slots are assigned in eviction order, so nearby slots hold pages
// that were evicted together - under any recency-correlated reuse (e.g. a
// zipf-skewed key space) those neighbours are the likeliest next misses.
// The bandit probes each offset in +-1..+-proximity_max_delta a fixed
// number of times, then keeps emitting only the offsets whose observed
// hit rate clears a floor, ranked by rate - it learns *which* neighbours
// pay instead of blindly fanning out like next-N-line.
// Each table entry holds up to kCandidatesPerEntry successor deltas with a
// saturating occurrence count (the Markov part) and a signed feedback
// weight trained from OnPrefetchHit / OnPrefetchDropped (the perceptron
// part). On a fault the policy chains the best-scoring successor from
// either table while the score clears an emission threshold: a delta that
// recurred bootstraps exploration, a prefetch that hit reinforces it, one
// that dropped gates it off - so sustained emission needs sustained hits,
// trading coverage for accuracy on irregular patterns.
//
// Determinism rules for learned state: integer-only arithmetic, no RNG, no
// wall clock; every update is a pure function of the observed call
// sequence, so same-seed runs are bit-identical (pinned by
// policy_conformance_test).
#ifndef LEAP_SRC_PREFETCH_ONLINE_DELTA_H_
#define LEAP_SRC_PREFETCH_ONLINE_DELTA_H_

#include <cstdint>
#include <vector>

#include "src/container/flat_map.h"
#include "src/prefetch/prefetcher.h"

namespace leap {

struct OnlineDeltaConfig {
  // Pages per region = 1 << region_shift; regions separate e.g. a
  // sequential heap scan from a scrambled hash table in the same process.
  size_t region_shift = 8;
  // Table capacity in context entries (stride + correlation combined);
  // when full, learning of new contexts stops (existing entries keep
  // training).
  size_t max_entries = 32768;
  // Max candidates chained per fault before accuracy scaling.
  uint32_t max_depth = 8;
  // Saturation caps. count is the Markov evidence; weight is the trained
  // confidence delta in [-weight_cap, weight_cap].
  uint32_t count_cap = 15;
  int32_t weight_cap = 16;
  // A successor delta is emitted while count + 2*weight >= emit_threshold.
  // The default (2) means: a transition that recurred is explored once,
  // then lives or dies by its feedback (one drop gates it, one hit locks
  // it in for a while).
  int32_t emit_threshold = 2;
  // Accuracy epoch length, in issued prefetches: each epoch re-tiers the
  // depth scale (100% / 75% / 50%) from the epoch's hit ratio.
  uint32_t accuracy_window = 64;
  // Proximity bandit: offsets +-1..+-proximity_max_delta from the demand
  // slot are each probed `proximity_probe` times; afterwards an offset is
  // emitted only while its observed hit rate stays at or above
  // proximity_min_rate_pct, best-rate first, at most proximity_max_emit
  // per fault. Stats halve when an offset's issue count reaches
  // proximity_stat_cap so the estimate can drift with the workload.
  uint32_t proximity_max_delta = 8;
  uint32_t proximity_probe = 8;
  uint32_t proximity_min_rate_pct = 10;
  uint32_t proximity_max_emit = 4;
  uint32_t proximity_stat_cap = 4096;
  // Stop emitting (keep learning) while the fabric data-path queue delay
  // exceeds this.
  SimTimeNs congestion_backoff_ns = 200'000;
};

class OnlineDeltaPolicy : public PrefetchPolicy {
 public:
  explicit OnlineDeltaPolicy(const OnlineDeltaConfig& config = {});

  CandidateVec OnFault(const FaultContext& ctx) override;
  void OnCacheAccess(Pid pid, SwapSlot slot) override;
  void OnPrefetchIssued(Pid pid, SwapSlot slot, SimTimeNs now) override;
  void OnPrefetchComplete(Pid pid, SwapSlot slot, SimTimeNs latency) override;
  void OnPrefetchHit(Pid pid, SwapSlot slot, SimTimeNs timeliness) override;
  void OnPrefetchDropped(Pid pid, SwapSlot slot) override;
  std::string_view name() const override { return "online-delta"; }

  size_t table_entries() const { return table_.size(); }
  uint32_t depth_scale_pct() const { return depth_scale_pct_; }
  // Issued/hit tallies per proximity arm (+1..+max, then -1..-max).
  std::vector<std::pair<uint32_t, uint32_t>> proximity_stats() const {
    std::vector<std::pair<uint32_t, uint32_t>> out;
    out.reserve(prox_.size());
    for (const DeltaStat& s : prox_) out.emplace_back(s.issued, s.hits);
    return out;
  }

 private:
  static constexpr size_t kCandidatesPerEntry = 4;

  struct Candidate {
    PageDelta delta = 0;
    uint32_t count = 0;  // saturating Markov occurrence count
    int32_t weight = 0;  // trained hit(+)/drop(-) confidence
  };
  struct Entry {
    Candidate cands[kCandidatesPerEntry];
    size_t used = 0;
  };
  // Where a live prefetch came from, so its outcome can train exactly the
  // candidate that predicted it. `proximity` marks bandit emissions (key
  // then holds the offset-stat index, not a table key).
  struct Origin {
    uint64_t key = 0;
    PageDelta delta = 0;
    bool proximity = false;
  };
  // Per-offset bandit arm: issues observed vs issues that hit.
  struct DeltaStat {
    uint32_t issued = 0;
    uint32_t hits = 0;
  };

  // Both tables live in one FlatMap; the key mixers keep their context
  // spaces disjoint (FlatMap finalizes the hash further).
  uint64_t StrideKey(SwapSlot addr, PageDelta prev_delta) const {
    return (addr >> config_.region_shift) * 0x9E3779B97F4A7C15ULL ^
           static_cast<uint64_t>(prev_delta);
  }
  uint64_t CorrKey(SwapSlot addr) const {
    return addr * 0xC2B2AE3D27D4EB4FULL ^ 0x5851F42D4C957F2DULL;
  }
  int32_t Score(const Candidate& c) const {
    return static_cast<int32_t>(c.count) + 2 * c.weight;
  }

  // Folds one observed access into the per-pid history and trains the
  // Markov side of the table. Returns the delta just observed (0 when
  // there was no usable history).
  PageDelta Observe(Pid pid, SwapSlot slot);
  void Train(uint64_t key, PageDelta next_delta);
  void Reward(SwapSlot slot, int32_t delta_weight);
  // The slot offset arm `index` stands for: +1..+max, then -1..-max.
  PageDelta ProximityDelta(size_t index) const {
    return index < config_.proximity_max_delta
               ? static_cast<PageDelta>(index + 1)
               : -static_cast<PageDelta>(index - config_.proximity_max_delta +
                                         1);
  }
  // Appends up to `budget` proximity-bandit candidates to `out`.
  void EmitProximity(const FaultContext& ctx, size_t budget,
                     CandidateVec& out);

  OnlineDeltaConfig config_;
  FlatMap<uint64_t, Entry> table_;
  FlatMap<Pid, SwapSlot> last_addr_;
  FlatMap<Pid, PageDelta> last_delta_;
  struct PendingEmit {
    SwapSlot slot = kInvalidSlot;
    Origin origin;
  };
  // Candidates emitted by the last OnFault, awaiting Issued confirmation
  // (the machine reports issues synchronously after OnFault returns, so
  // this is cleared at the next fault).
  InlineVec<PendingEmit, kMaxPrefetchCandidates> pending_;
  // Issued-and-unresolved prefetches: slot -> predicting candidate.
  FlatMap<SwapSlot, Origin> outstanding_;
  // Proximity bandit arms (2 * proximity_max_delta of them).
  std::vector<DeltaStat> prox_;

  // Accuracy epoch (depth auto-tiering).
  uint32_t epoch_issued_ = 0;
  uint32_t epoch_hits_ = 0;
  uint32_t depth_scale_pct_ = 100;
  // Shift-EWMA of prefetch completion latency, used to classify hit
  // timeliness (just-in-time vs fetched-too-early).
  SimTimeNs latency_ewma_ns_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_ONLINE_DELTA_H_
