// Next-N-Line prefetcher [Mittal survey]: on every fault, aggressively
// fetch the next N sequentially-following pages. Maximum simplicity and
// maximum cache pollution on anything non-sequential.
#ifndef LEAP_SRC_PREFETCH_NEXT_N_LINE_H_
#define LEAP_SRC_PREFETCH_NEXT_N_LINE_H_

#include "src/prefetch/prefetcher.h"

namespace leap {

class NextNLinePrefetcher : public PrefetchPolicy {
 public:
  explicit NextNLinePrefetcher(size_t n = 8)
      : n_(n < kMaxPrefetchCandidates ? n : kMaxPrefetchCandidates) {}

  CandidateVec OnFault(const FaultContext& ctx) override;
  std::string_view name() const override { return "next-n-line"; }

 private:
  size_t n_;
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_NEXT_N_LINE_H_
