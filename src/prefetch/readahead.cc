#include "src/prefetch/readahead.h"

#include <algorithm>

namespace leap {

CandidateVec ReadAheadPrefetcher::OnFault(const FaultContext& ctx) {
  const SwapSlot slot = ctx.slot;
  State& s = states_[ctx.pid];

  if (s.last == kInvalidSlot) {
    s.window = min_window_;
  } else {
    // Sequential streams fault once per window (the pages in between were
    // prefetched), so "sequential" means either literally consecutive
    // faults or a near-forward fault whose previous window was consumed.
    const bool consecutive = slot == s.last + 1;
    const bool consumed_near_forward =
        s.hits_since_issue > 0 && slot > s.last &&
        slot - s.last <= 2 * std::max<size_t>(1, s.window);
    if (consecutive || consumed_near_forward) {
      const size_t grown =
          s.hits_since_issue > 0 ? s.window * 2 : s.window + 2;
      s.window = std::clamp(grown, min_window_, max_window_);
    } else {
      // No pattern assumed; shrink toward the minimum cluster.
      s.window = std::max(min_window_, s.window / 2);
    }
  }
  s.last = slot;
  s.hits_since_issue = 0;

  // Aligned block containing the fault (kernel cluster alignment).
  const SwapSlot base = slot - slot % s.window;
  CandidateVec pages;
  for (size_t i = 0; i < s.window; ++i) {
    const SwapSlot candidate = base + i;
    if (candidate != slot) {
      pages.push_back(candidate);
    }
  }
  return pages;
}

void ReadAheadPrefetcher::OnPrefetchHit(Pid pid, SwapSlot, SimTimeNs) {
  ++states_[pid].hits_since_issue;
}

}  // namespace leap
