#include "src/prefetch/profile_pass.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "src/container/flat_map.h"

namespace leap {

const ProfileHint* PrefetchProfile::FindRegion(uint64_t region) const {
  auto it = std::lower_bound(
      hints.begin(), hints.end(), region,
      [](const ProfileHint& h, uint64_t r) { return h.region < r; });
  if (it == hints.end() || it->region != region) return nullptr;
  return &*it;
}

std::string PrefetchProfile::Serialize() const {
  std::string out;
  out += "leap-prefetch-profile v1\n";
  char line[128];
  std::snprintf(line, sizeof(line), "region_shift %zu\n", region_shift);
  out += line;
  for (const ProfileHint& h : hints) {
    std::snprintf(line, sizeof(line), "%" PRIu64 " %" PRId64 " %u %u\n",
                  h.region, static_cast<int64_t>(h.stride), h.depth,
                  h.share_pct);
    out += line;
  }
  return out;
}

std::optional<PrefetchProfile> PrefetchProfile::Parse(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "leap-prefetch-profile v1") {
    return std::nullopt;
  }
  PrefetchProfile profile;
  size_t shift = 0;
  if (!std::getline(in, line) ||
      std::sscanf(line.c_str(), "region_shift %zu", &shift) != 1 ||
      shift >= 64) {
    return std::nullopt;
  }
  profile.region_shift = shift;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ProfileHint h;
    int64_t stride = 0;
    if (std::sscanf(line.c_str(), "%" SCNu64 " %" SCNd64 " %u %u", &h.region,
                    &stride, &h.depth, &h.share_pct) != 4) {
      return std::nullopt;
    }
    h.stride = stride;
    if (h.stride == 0 || h.depth == 0 || h.share_pct > 100) {
      return std::nullopt;
    }
    if (!profile.hints.empty() && profile.hints.back().region >= h.region) {
      return std::nullopt;  // must be sorted and region-unique
    }
    profile.hints.push_back(h);
  }
  return profile;
}

namespace {

// Whether `delta` continues a stream that strides by `stride`: the exact
// stride, or a small positive multiple of it (a fault stream skips pages
// that happen to be resident, so a stride-10 loop shows up as deltas of
// 10, 20, 30 ... in the trace).
bool MatchesStride(PageDelta delta, PageDelta stride) {
  if (stride == 0) return false;
  if (delta % stride != 0) return false;
  PageDelta units = delta / stride;
  return units >= 1 && units <= 4;
}

// Per-region delta census (pass 1). Counts live in an ordered map so the
// dominant-delta choice (and its smaller-delta tie-break) is independent
// of trace iteration order quirks.
struct RegionCensus {
  std::map<PageDelta, uint64_t> delta_counts;
  uint64_t total_deltas = 0;
};

// Per-region run bookkeeping for its dominant stride (pass 2), measured in
// stride units so resident-page skips extend a run instead of breaking it.
struct RegionRuns {
  PageDelta stride = 0;
  uint64_t current_units = 0;
  uint64_t run_count = 0;
  uint64_t unit_sum = 0;

  void Observe(PageDelta delta) {
    if (MatchesStride(delta, stride)) {
      current_units += static_cast<uint64_t>(delta / stride);
    } else {
      Flush();
    }
  }
  void Flush() {
    if (current_units > 1) {
      ++run_count;
      unit_sum += current_units;
    }
    current_units = 0;
  }
};

}  // namespace

PrefetchProfile BuildProfile(const FaultTrace& trace,
                             const ProfilePassConfig& config) {
  PrefetchProfile profile;
  profile.region_shift = config.region_shift;

  // Pass 1: per-pid deltas, censused by the region the stream was in
  // *before* each move (that is the region whose hint would have fired).
  // Per-pid history keeps interleaved tenants from polluting each other's
  // deltas, mirroring the per-pid state in the online policies.
  FlatMap<Pid, SwapSlot> last_slot;
  // Ordered so hint emission below is naturally sorted by region.
  std::map<uint64_t, RegionCensus> regions;

  for (const FaultRecord& rec : trace) {
    if (rec.slot == kInvalidSlot) continue;
    SwapSlot* prev = last_slot.Find(rec.pid);
    if (prev != nullptr) {
      PageDelta delta = static_cast<PageDelta>(rec.slot - *prev);
      if (delta != 0) {
        RegionCensus& census = regions[*prev >> config.region_shift];
        ++census.delta_counts[delta];
        ++census.total_deltas;
      }
      *prev = rec.slot;
    } else {
      last_slot.Emplace(rec.pid, rec.slot);
    }
  }

  // Dominant stride per region: highest raw count (ties -> smaller delta
  // via map order); its share counts every stride-multiple delta as
  // matching.
  std::map<uint64_t, RegionRuns> runs;
  std::map<uint64_t, uint32_t> shares;
  for (auto& [region, census] : regions) {
    if (census.total_deltas < config.min_samples) continue;
    PageDelta best_delta = 0;
    uint64_t best_count = 0;
    for (const auto& [delta, count] : census.delta_counts) {
      if (count > best_count) {
        best_count = count;
        best_delta = delta;
      }
    }
    uint64_t matching = 0;
    for (const auto& [delta, count] : census.delta_counts) {
      if (MatchesStride(delta, best_delta)) matching += count;
    }
    uint32_t share_pct =
        static_cast<uint32_t>(100 * matching / census.total_deltas);
    if (share_pct < config.min_share_pct) continue;
    runs[region].stride = best_delta;
    shares[region] = share_pct;
  }
  if (runs.empty()) return profile;

  // Pass 2: run lengths (in stride units) for each surviving region's
  // dominant stride - the profiled prefetch distance.
  last_slot = FlatMap<Pid, SwapSlot>();
  for (const FaultRecord& rec : trace) {
    if (rec.slot == kInvalidSlot) continue;
    SwapSlot* prev = last_slot.Find(rec.pid);
    if (prev != nullptr) {
      PageDelta delta = static_cast<PageDelta>(rec.slot - *prev);
      if (delta != 0) {
        auto it = runs.find(*prev >> config.region_shift);
        if (it != runs.end()) it->second.Observe(delta);
      }
      *prev = rec.slot;
    } else {
      last_slot.Emplace(rec.pid, rec.slot);
    }
  }

  for (auto& [region, r] : runs) {
    r.Flush();
    uint64_t mean_units = r.run_count > 0 ? r.unit_sum / r.run_count : 1;
    uint32_t depth = static_cast<uint32_t>(
        std::clamp<uint64_t>(mean_units, 1, config.max_depth));
    profile.hints.push_back(
        ProfileHint{region, r.stride, depth, shares[region]});
  }
  return profile;
}

}  // namespace leap
