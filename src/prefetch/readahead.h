// Linux Read-Ahead model (swapin_readahead / ondemand file readahead).
//
// Behaviour distilled from the paper's section 2.3 and the kernel:
//  - It looks only at the last two faults. Two consecutive-page faults =>
//    optimistic sequential mode: bring an aligned window of pages and keep
//    doubling it up to `max_window` while prefetches keep getting hit.
//  - A non-consecutive fault => pessimism: the window collapses (down to
//    `min_window`), but an aligned cluster around the fault is still read,
//    which is pure pollution under strided access.
//  - Windows are aligned blocks containing the faulting page, matching the
//    kernel's cluster alignment, so the demand page sits inside the block.
#ifndef LEAP_SRC_PREFETCH_READAHEAD_H_
#define LEAP_SRC_PREFETCH_READAHEAD_H_

#include "src/container/flat_map.h"
#include "src/prefetch/prefetcher.h"

namespace leap {

class ReadAheadPrefetcher : public PrefetchPolicy {
 public:
  // Both windows are clamped to the candidate cap, and max >= min, so a
  // generated cluster always fits the fixed-capacity CandidateVec and the
  // window clamp in OnFault has a valid [lo, hi] range.
  ReadAheadPrefetcher(size_t min_window = 2, size_t max_window = 8)
      : min_window_(min_window < kMaxPrefetchCandidates
                        ? min_window
                        : kMaxPrefetchCandidates),
        max_window_(max_window < kMaxPrefetchCandidates
                        ? max_window
                        : kMaxPrefetchCandidates) {
    if (max_window_ < min_window_) {
      max_window_ = min_window_;
    }
  }

  CandidateVec OnFault(const FaultContext& ctx) override;
  void OnPrefetchHit(Pid pid, SwapSlot slot, SimTimeNs timeliness) override;
  std::string_view name() const override { return "read-ahead"; }

 private:
  struct State {
    SwapSlot last = kInvalidSlot;
    size_t window = 0;  // established after the first fault
    uint64_t hits_since_issue = 0;
  };

  size_t min_window_;
  size_t max_window_;
  FlatMap<Pid, State> states_;
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_READAHEAD_H_
