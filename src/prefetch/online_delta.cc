#include "src/prefetch/online_delta.h"

#include <algorithm>

namespace leap {

OnlineDeltaPolicy::OnlineDeltaPolicy(const OnlineDeltaConfig& config)
    : config_(config) {
  config_.max_depth = static_cast<uint32_t>(
      std::min<size_t>(config_.max_depth, kMaxPrefetchCandidates));
  // The selection scratch in EmitProximity covers 64 arms (= +-32).
  config_.proximity_max_delta = std::min<uint32_t>(
      config_.proximity_max_delta, 32);
  table_.Reserve(std::min<size_t>(config_.max_entries, 1024));
  outstanding_.Reserve(256);
  prox_.resize(2 * static_cast<size_t>(config_.proximity_max_delta));
}

void OnlineDeltaPolicy::EmitProximity(const FaultContext& ctx, size_t budget,
                                      CandidateVec& out) {
  budget = std::min<size_t>(budget, config_.proximity_max_emit);
  // Selection per slot: unprobed arms first (smallest index, so +1 before
  // -1 and near before far), then probed arms by hit rate while the rate
  // clears the floor. Integer ranks keep every comparison deterministic.
  bool taken[64] = {};
  for (size_t n = 0; n < budget; ++n) {
    size_t best = prox_.size();
    int64_t best_rank = -1;
    for (size_t i = 0; i < prox_.size() && i < 64; ++i) {
      if (taken[i]) continue;
      const DeltaStat& s = prox_[i];
      int64_t rank;
      if (s.issued < config_.proximity_probe) {
        rank = 1000 + static_cast<int64_t>(prox_.size() - i);  // explore
      } else {
        int64_t rate_pct = 100 * static_cast<int64_t>(s.hits) / s.issued;
        if (rate_pct < config_.proximity_min_rate_pct) continue;
        rank = rate_pct;  // exploit
      }
      if (rank > best_rank) {
        best_rank = rank;
        best = i;
      }
    }
    if (best == prox_.size()) break;
    taken[best] = true;
    PageDelta delta = ProximityDelta(best);
    if (delta < 0 && static_cast<SwapSlot>(-delta) > ctx.slot) continue;
    SwapSlot slot = static_cast<SwapSlot>(ctx.slot + delta);
    if (slot == kInvalidSlot) continue;
    bool dup = false;
    for (SwapSlot s : out) {
      if (s == slot) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    out.push_back(slot);
    pending_.push_back(
        PendingEmit{slot, Origin{best, delta, /*proximity=*/true}});
  }
}

PageDelta OnlineDeltaPolicy::Observe(Pid pid, SwapSlot slot) {
  SwapSlot* prev = last_addr_.Find(pid);
  if (prev == nullptr) {
    last_addr_.Emplace(pid, slot);
    last_delta_.Emplace(pid, PageDelta{0});
    return 0;
  }
  SwapSlot prev_addr = *prev;
  PageDelta delta = static_cast<PageDelta>(slot - prev_addr);
  if (delta == 0) return 0;
  PageDelta& prev_delta = last_delta_[pid];
  if (prev_delta != 0) {
    // The stride context (region of the previous address, previous delta)
    // just produced `delta`.
    Train(StrideKey(prev_addr, prev_delta), delta);
  }
  // The correlation context (exact previous address) produced it too.
  Train(CorrKey(prev_addr), delta);
  *last_addr_.Find(pid) = slot;
  last_delta_[pid] = delta;
  return delta;
}

void OnlineDeltaPolicy::Train(uint64_t key, PageDelta next_delta) {
  Entry* entry = table_.Find(key);
  if (entry == nullptr) {
    if (table_.size() >= config_.max_entries) return;  // table full: freeze
    entry = &table_[key];
  }
  // Existing candidate: bump its count.
  for (size_t i = 0; i < entry->used; ++i) {
    Candidate& c = entry->cands[i];
    if (c.delta == next_delta) {
      if (c.count < config_.count_cap) ++c.count;
      return;
    }
  }
  if (entry->used < kCandidatesPerEntry) {
    entry->cands[entry->used++] = Candidate{next_delta, 1, 0};
    return;
  }
  // Full: replace the lowest-scoring candidate (first one on ties, so the
  // choice is deterministic).
  size_t victim = 0;
  for (size_t i = 1; i < kCandidatesPerEntry; ++i) {
    if (Score(entry->cands[i]) < Score(entry->cands[victim])) victim = i;
  }
  entry->cands[victim] = Candidate{next_delta, 1, 0};
}

CandidateVec OnlineDeltaPolicy::OnFault(const FaultContext& ctx) {
  CandidateVec out;
  pending_.clear();
  if (ctx.slot == kInvalidSlot) return out;
  PageDelta delta = Observe(ctx.pid, ctx.slot);

  if (config_.congestion_backoff_ns > 0 &&
      ctx.congestion.DataQueueDelayNs() >
          static_cast<double>(config_.congestion_backoff_ns)) {
    return out;  // keep learning, stop emitting
  }

  size_t depth = std::max<uint32_t>(
      1, config_.max_depth * depth_scale_pct_ / 100);
  depth = std::min(depth, ctx.budget_remaining);

  // Chain the best-scoring successor from either table while the score
  // clears the emission threshold. Stride wins score ties (it generalizes
  // across a region; correlation is one address's history).
  SwapSlot addr = ctx.slot;
  PageDelta cur_delta = delta;
  for (size_t i = 0; i < depth; ++i) {
    const Candidate* best = nullptr;
    uint64_t best_key = 0;
    for (int source = 0; source < 2; ++source) {
      if (source == 0 && cur_delta == 0) continue;
      const uint64_t key =
          source == 0 ? StrideKey(addr, cur_delta) : CorrKey(addr);
      Entry* entry = table_.Find(key);
      if (entry == nullptr) continue;
      for (size_t j = 0; j < entry->used; ++j) {
        const Candidate& c = entry->cands[j];
        if (best == nullptr || Score(c) > Score(*best)) {
          best = &c;
          best_key = key;
        }
      }
    }
    if (best == nullptr || Score(*best) < config_.emit_threshold) break;
    SwapSlot next = static_cast<SwapSlot>(addr + best->delta);
    if (next == ctx.slot || next == kInvalidSlot) break;
    bool dup = false;
    for (SwapSlot s : out) {
      if (s == next) {
        dup = true;
        break;
      }
    }
    if (dup) break;  // the chain has cycled
    out.push_back(next);
    pending_.push_back(
        PendingEmit{next, Origin{best_key, best->delta, /*proximity=*/false}});
    cur_delta = best->delta;
    addr = next;
  }
  // Whatever depth the delta chains left unused goes to the proximity
  // bandit (on purely irregular streams that is the whole depth).
  if (out.size() < depth) {
    EmitProximity(ctx, depth - out.size(), out);
  }
  return out;
}

void OnlineDeltaPolicy::OnCacheAccess(Pid pid, SwapSlot slot) {
  // Hits feed the same history as misses (Leap hooks do_swap_page, so its
  // tracker sees both; the learned table gets the same visibility).
  Observe(pid, slot);
}

void OnlineDeltaPolicy::OnPrefetchIssued(Pid, SwapSlot slot, SimTimeNs) {
  for (const PendingEmit& p : pending_) {
    if (p.slot == slot) {
      outstanding_[slot] = p.origin;
      if (p.origin.proximity && p.origin.key < prox_.size()) {
        DeltaStat& s = prox_[p.origin.key];
        ++s.issued;
        if (s.issued >= config_.proximity_stat_cap) {
          // Halve both tallies: the rate survives, but new evidence now
          // moves it twice as fast (workload drift).
          s.issued /= 2;
          s.hits /= 2;
        }
      }
      break;
    }
  }
  ++epoch_issued_;
  if (epoch_issued_ >= config_.accuracy_window) {
    uint32_t acc_pct = 100 * epoch_hits_ / epoch_issued_;
    depth_scale_pct_ = acc_pct >= 60 ? 100 : acc_pct >= 30 ? 75 : 50;
    epoch_issued_ = 0;
    epoch_hits_ = 0;
  }
}

void OnlineDeltaPolicy::OnPrefetchComplete(Pid, SwapSlot, SimTimeNs latency) {
  // Shift-EWMA (alpha = 1/8), integer-only.
  latency_ewma_ns_ =
      latency_ewma_ns_ == 0
          ? latency
          : latency_ewma_ns_ - (latency_ewma_ns_ >> 3) + (latency >> 3);
}

void OnlineDeltaPolicy::Reward(SwapSlot slot, int32_t delta_weight) {
  Origin* origin = outstanding_.Find(slot);
  if (origin == nullptr) return;
  if (origin->proximity) {
    // The bandit arm only needs the hit/no-hit outcome; a drop leaves
    // `hits` alone and the arm's rate decays on its own.
    if (delta_weight > 0 && origin->key < prox_.size()) {
      ++prox_[origin->key].hits;
    }
  } else if (Entry* entry = table_.Find(origin->key)) {
    for (size_t i = 0; i < entry->used; ++i) {
      Candidate& c = entry->cands[i];
      if (c.delta == origin->delta) {
        c.weight = std::clamp(c.weight + delta_weight, -config_.weight_cap,
                              config_.weight_cap);
        break;
      }
    }
  }
  outstanding_.Erase(slot);
}

void OnlineDeltaPolicy::OnPrefetchHit(Pid, SwapSlot slot,
                                      SimTimeNs timeliness) {
  ++epoch_hits_;
  // Just-in-time hits (cache residency comparable to the fetch latency)
  // are the 3PO timing sweet spot; very early fetches still hit but risk
  // pollution, so they train half as hard.
  bool just_in_time =
      latency_ewma_ns_ == 0 || timeliness <= 4 * latency_ewma_ns_;
  Reward(slot, just_in_time ? 2 : 1);
}

void OnlineDeltaPolicy::OnPrefetchDropped(Pid, SwapSlot slot) {
  Reward(slot, -1);
}

}  // namespace leap
