// The one place a prefetch policy is registered. Benches, tests, examples,
// and the Machine all construct policies through MakePrefetchPolicy(kind),
// so adding a policy is: implement PrefetchPolicy, add a PrefetchKind
// value here, extend the two switches in policy_registry.cc, and append to
// kAllPrefetchKinds - every consumer (table1 matrix, fig19 scoring,
// conformance + determinism suites) picks it up from the list.
#ifndef LEAP_SRC_PREFETCH_POLICY_REGISTRY_H_
#define LEAP_SRC_PREFETCH_POLICY_REGISTRY_H_

#include <memory>
#include <string_view>

#include "src/core/params.h"
#include "src/prefetch/ghb.h"
#include "src/prefetch/online_delta.h"
#include "src/prefetch/prefetcher.h"
#include "src/prefetch/profile_guided.h"

namespace leap {

enum class PrefetchKind {
  kNone,
  kNextNLine,
  kStride,
  kReadAhead,
  kGhb,
  kLeap,
  kOnlineDelta,
  kProfileGuided,
};

inline constexpr PrefetchKind kAllPrefetchKinds[] = {
    PrefetchKind::kNone,      PrefetchKind::kNextNLine,
    PrefetchKind::kStride,    PrefetchKind::kReadAhead,
    PrefetchKind::kGhb,       PrefetchKind::kLeap,
    PrefetchKind::kOnlineDelta, PrefetchKind::kProfileGuided,
};
inline constexpr size_t kNumPrefetchKinds =
    sizeof(kAllPrefetchKinds) / sizeof(kAllPrefetchKinds[0]);

// Construction knobs for every registered policy, with the same defaults
// the Machine has always used: the window heuristics (next-n-line, stride,
// read-ahead) are sized by leap.max_prefetch_window.
struct PolicyParams {
  LeapParams leap;
  GhbConfig ghb;
  OnlineDeltaConfig online_delta;
  ProfileGuidedConfig profile_guided;
};

// Stable registry name (matches each policy's name()).
std::string_view PrefetchKindName(PrefetchKind kind);

std::unique_ptr<PrefetchPolicy> MakePrefetchPolicy(
    PrefetchKind kind, const PolicyParams& params = {});

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_POLICY_REGISTRY_H_
