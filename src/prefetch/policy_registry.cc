#include "src/prefetch/policy_registry.h"

#include "src/prefetch/leap_adapter.h"
#include "src/prefetch/next_n_line.h"
#include "src/prefetch/readahead.h"
#include "src/prefetch/stride.h"

namespace leap {

std::string_view PrefetchKindName(PrefetchKind kind) {
  switch (kind) {
    case PrefetchKind::kNone:
      return "none";
    case PrefetchKind::kNextNLine:
      return "next-n-line";
    case PrefetchKind::kStride:
      return "stride";
    case PrefetchKind::kReadAhead:
      return "read-ahead";
    case PrefetchKind::kGhb:
      return "ghb";
    case PrefetchKind::kLeap:
      return "leap";
    case PrefetchKind::kOnlineDelta:
      return "online-delta";
    case PrefetchKind::kProfileGuided:
      return "profile-guided";
  }
  return "none";
}

std::unique_ptr<PrefetchPolicy> MakePrefetchPolicy(PrefetchKind kind,
                                                   const PolicyParams& params) {
  switch (kind) {
    case PrefetchKind::kNone:
      return std::make_unique<NoPrefetcher>();
    case PrefetchKind::kNextNLine:
      return std::make_unique<NextNLinePrefetcher>(
          params.leap.max_prefetch_window);
    case PrefetchKind::kStride:
      return std::make_unique<StridePrefetcher>(
          params.leap.max_prefetch_window);
    case PrefetchKind::kReadAhead:
      return std::make_unique<ReadAheadPrefetcher>(
          2, params.leap.max_prefetch_window);
    case PrefetchKind::kGhb:
      return std::make_unique<GhbPrefetcher>(params.ghb);
    case PrefetchKind::kLeap:
      return std::make_unique<LeapAdapter>(params.leap);
    case PrefetchKind::kOnlineDelta:
      return std::make_unique<OnlineDeltaPolicy>(params.online_delta);
    case PrefetchKind::kProfileGuided:
      return std::make_unique<ProfileGuidedPolicy>(params.profile_guided);
  }
  return std::make_unique<NoPrefetcher>();
}

}  // namespace leap
