// Adaptive per-tenant prefetch budget governor (ROADMAP "adaptive
// per-tenant prefetch budgets"; paper section 5.3.3's throttling, closed
// over the cluster's congestion signals instead of per-process accuracy
// alone).
//
// The governor sits between a PrefetchPolicy and the I/O path: every
// fault's candidate vector is clamped to the faulting tenant's current
// budget. Budgets move by AIMD, driven by two inputs the policy interface
// now carries:
//
//  - CongestionSignals (per-class fabric queue-delay EWMAs,
//    remote_capacity_exhausted ticks): when the demand/prefetch classes
//    are congested (CongestionSignals::DataQueueDelayNs - background
//    writeback/repair delay is deliberately excluded so a repair storm
//    cannot trip the governor), tenants whose prefetches are not earning
//    hits take a multiplicative cut; accurate tenants merely stop
//    growing. One tenant's prefetch storm therefore collapses onto itself
//    while a well-predicted sequential tenant keeps its window.
//  - Outcome feedback (OnPrefetchIssued / Hit / Dropped): per-tenant
//    issue/hit/drop counts within the current adjustment epoch decide who
//    is wasteful.
//
// Per-tenant caps follow footprint shares via SwapManager::SlotsOf: while
// congestion holds, a tenant's ceiling scales with its share of the
// swapped working set, so a small tenant cannot monopolize the fabric
// even before AIMD reacts. On a calm fabric the ceiling is max_budget for
// everyone - budgets arbitrate contention, they do not tax smallness.
//
// Determinism: budgets are a pure function of the fault/outcome sequence
// and the signal snapshots - no randomness, no wall-clock - so same-seed
// runs make bit-identical budget decisions.
#ifndef LEAP_SRC_PREFETCH_BUDGET_GOVERNOR_H_
#define LEAP_SRC_PREFETCH_BUDGET_GOVERNOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/container/flat_map.h"
#include "src/prefetch/prefetcher.h"
#include "src/sim/types.h"

namespace leap {

class SwapManager;

struct PrefetchBudgetConfig {
  // Governor off: candidate vectors pass through unclamped and the machine
  // allocates no governor state (the v1-equivalent fast path).
  bool enabled = false;
  // Budget bounds, in prefetch candidates per fault. Budgets start at
  // max_budget and AIMD moves them within [min_budget, cap].
  size_t min_budget = 1;
  size_t max_budget = kMaxPrefetchCandidates;
  // Congestion trips when the demand/prefetch-class fabric queue-delay
  // EWMA (CongestionSignals::DataQueueDelayNs) exceeds this...
  double queue_delay_threshold_ns = 15'000.0;
  // ...or at least this many capacity-exhausted ticks landed in the epoch.
  uint64_t capacity_exhausted_threshold = 1;
  // Multiplicative decrease applied to wasteful tenants under congestion.
  double decrease_factor = 0.5;
  // Additive increase per calm epoch.
  double increase_step = 1.0;
  // AIMD epoch length (budget adjustment cadence).
  SimTimeNs adjust_period_ns = 500 * kNsPerUs;
  // Tenants are "wasteful" within an epoch - and take the multiplicative
  // cut when congestion trips - when their accuracy (hits/issued) falls
  // below this, or their drop ratio (evicted-unconsumed/issued) exceeds
  // 1 - this. Tenants that pass both tests hold their budget (they are
  // spending the fabric well).
  double accuracy_keep_threshold = 0.5;
};

class BudgetGovernor {
 public:
  // `swap` (optional) provides per-tenant footprint shares for ceilings;
  // nullptr means every tenant's ceiling is max_budget.
  explicit BudgetGovernor(const PrefetchBudgetConfig& config,
                          const SwapManager* swap = nullptr);

  // Per-fault candidate cap for `pid`. Rolls the AIMD epoch forward when
  // adjust_period_ns has elapsed. Creates tenant state on first use.
  size_t BudgetFor(Pid pid, SimTimeNs now, const CongestionSignals& signals);

  // Outcome feedback (the machine forwards the same events it reports to
  // the policy).
  void OnPrefetchIssued(Pid pid, size_t pages);
  void OnPrefetchHit(Pid pid);
  void OnPrefetchDropped(Pid pid);

  // --- introspection (tests, benches) -------------------------------------
  // Current fractional AIMD budget (max_budget for unknown tenants).
  double budget(Pid pid) const;
  // Outcome counts accumulated in the current (not yet adjusted) epoch.
  uint64_t epoch_issued(Pid pid) const;
  uint64_t epoch_hits(Pid pid) const;
  uint64_t epoch_dropped(Pid pid) const;
  // Footprint-share ceiling currently applied to `pid`.
  size_t CapFor(Pid pid) const;
  // Read-only enumeration of every known tenant's fractional budget, for
  // time-series samplers. Appends (pid, budget) pairs in the FlatMap's
  // deterministic array order. Unlike BudgetFor this NEVER advances the
  // AIMD epoch - sampling must not perturb governor decisions.
  void SnapshotBudgets(
      std::vector<std::pair<Pid, double>>& out) const {
    for (const auto& [pid, tenant] : tenants_) {
      out.emplace_back(pid, tenant.budget);
    }
  }
  bool congested() const { return congested_; }
  uint64_t shrink_events() const { return shrink_events_; }
  uint64_t grow_events() const { return grow_events_; }
  uint64_t epochs() const { return epochs_; }
  const PrefetchBudgetConfig& config() const { return config_; }

 private:
  struct Tenant {
    double budget = 0.0;
    // Outcome counts within the current epoch.
    uint64_t issued = 0;
    uint64_t hits = 0;
    uint64_t dropped = 0;
  };

  void AdjustEpoch(SimTimeNs now, const CongestionSignals& signals);
  // Tenant state for `pid`, created at max_budget on first sight.
  Tenant* TenantFor(Pid pid);

  // Bounds sanitized at construction (min <= max, both within
  // [1, kMaxPrefetchCandidates]).
  PrefetchBudgetConfig config_;
  const SwapManager* swap_;
  FlatMap<Pid, Tenant> tenants_;
  SimTimeNs last_adjust_ = 0;
  uint64_t last_exhausted_total_ = 0;
  bool congested_ = false;
  uint64_t shrink_events_ = 0;
  uint64_t grow_events_ = 0;
  uint64_t epochs_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_BUDGET_GOVERNOR_H_
