#include "src/prefetch/next_n_line.h"

namespace leap {

CandidateVec NextNLinePrefetcher::OnFault(const FaultContext& ctx) {
  CandidateVec pages;
  for (size_t i = 1; i <= n_; ++i) {
    pages.push_back(ctx.slot + i);
  }
  return pages;
}

}  // namespace leap
