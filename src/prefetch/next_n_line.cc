#include "src/prefetch/next_n_line.h"

namespace leap {

std::vector<SwapSlot> NextNLinePrefetcher::OnFault(Pid, SwapSlot slot) {
  std::vector<SwapSlot> pages;
  pages.reserve(n_);
  for (size_t i = 1; i <= n_; ++i) {
    pages.push_back(slot + i);
  }
  return pages;
}

}  // namespace leap
