#include "src/prefetch/profile_guided.h"

#include <algorithm>

namespace leap {

ProfileGuidedPolicy::ProfileGuidedPolicy(ProfileGuidedConfig config)
    : config_(std::move(config)) {
  scores_.Reserve(config_.profile.hints.size());
}

uint32_t ProfileGuidedPolicy::DistanceFor(const ProfileHint& hint) const {
  uint32_t d = config_.distance == DistanceProvider::kStatic
                   ? config_.static_distance
                   : hint.depth;
  return static_cast<uint32_t>(
      std::min<size_t>(d, kMaxPrefetchCandidates));
}

CandidateVec ProfileGuidedPolicy::OnFault(const FaultContext& ctx) {
  CandidateVec out;
  if (config_.profile.empty() || ctx.slot == kInvalidSlot) return out;
  if (config_.congestion_backoff_ns > 0 &&
      ctx.congestion.DataQueueDelayNs() > config_.congestion_backoff_ns) {
    return out;
  }
  const ProfileHint* hint = config_.profile.FindRegion(RegionOf(ctx.slot));
  if (hint == nullptr) return out;
  RegionScore* score = scores_.Find(hint->region);
  if (score != nullptr && score->suppressed) return out;

  size_t depth = std::min<size_t>(DistanceFor(*hint), ctx.budget_remaining);
  SwapSlot next = ctx.slot;
  for (size_t i = 0; i < depth; ++i) {
    next = static_cast<SwapSlot>(next + hint->stride);
    if (next == ctx.slot || next == kInvalidSlot) break;
    out.push_back(next);
  }
  return out;
}

void ProfileGuidedPolicy::OnPrefetchIssued(Pid, SwapSlot slot, SimTimeNs) {
  ++scores_[RegionOf(slot)].issued;
}

void ProfileGuidedPolicy::OnPrefetchHit(Pid, SwapSlot slot, SimTimeNs) {
  ++scores_[RegionOf(slot)].hits;
}

void ProfileGuidedPolicy::OnPrefetchDropped(Pid, SwapSlot slot) {
  RegionScore& score = scores_[RegionOf(slot)];
  if (score.suppressed || score.issued < config_.min_issued_before_check) {
    return;
  }
  // One-way gate: a region that proves inaccurate in this run stays off.
  if (100 * score.hits < config_.suppress_accuracy_pct * score.issued) {
    score.suppressed = true;
    ++suppressed_regions_;
  }
}

}  // namespace leap
