// Profile-guided ("programmed") prefetcher, after 3PO: all pattern
// detection happens offline in the profile pass; at runtime this policy
// only replays the per-region stride/distance hints it was handed. The
// feedback path is used purely defensively - regions whose hints turn out
// inaccurate in the live run are suppressed, never re-tuned.
#ifndef LEAP_SRC_PREFETCH_PROFILE_GUIDED_H_
#define LEAP_SRC_PREFETCH_PROFILE_GUIDED_H_

#include <cstdint>

#include "src/container/flat_map.h"
#include "src/prefetch/prefetcher.h"
#include "src/prefetch/profile_pass.h"

namespace leap {

// Where the prefetch distance (candidates per fault) comes from.
enum class DistanceProvider : uint8_t {
  kProfile,  // each hint's own profiled depth
  kStatic,   // fixed static_distance for every hinted region
};

struct ProfileGuidedConfig {
  PrefetchProfile profile;
  DistanceProvider distance = DistanceProvider::kProfile;
  // Used when distance == kStatic.
  uint32_t static_distance = 8;
  // Live-run guard: once a region has this many issued prefetches, it is
  // suppressed if fewer than suppress_accuracy_pct of them hit.
  uint32_t min_issued_before_check = 16;
  uint32_t suppress_accuracy_pct = 25;
  // Stop prefetching while the fabric data-path queue delay exceeds this.
  SimTimeNs congestion_backoff_ns = 200'000;
};

class ProfileGuidedPolicy : public PrefetchPolicy {
 public:
  explicit ProfileGuidedPolicy(ProfileGuidedConfig config);

  CandidateVec OnFault(const FaultContext& ctx) override;
  void OnPrefetchIssued(Pid pid, SwapSlot slot, SimTimeNs now) override;
  void OnPrefetchHit(Pid pid, SwapSlot slot, SimTimeNs timeliness) override;
  void OnPrefetchDropped(Pid pid, SwapSlot slot) override;
  std::string_view name() const override { return "profile-guided"; }

  size_t suppressed_regions() const { return suppressed_regions_; }

 private:
  // Live hit/issue accounting per region, keyed by the region of the
  // prefetched slot itself (so no per-slot outstanding map is needed).
  struct RegionScore {
    uint32_t issued = 0;
    uint32_t hits = 0;
    bool suppressed = false;
  };

  uint64_t RegionOf(SwapSlot slot) const {
    return slot >> config_.profile.region_shift;
  }
  uint32_t DistanceFor(const ProfileHint& hint) const;

  ProfileGuidedConfig config_;
  FlatMap<uint64_t, RegionScore> scores_;
  size_t suppressed_regions_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_PROFILE_GUIDED_H_
