// Offline profile pass (3PO-style "programmed prefetching"): scan a
// recorded fault trace once, compute per-region stride/distance hints, and
// hand them to ProfileGuidedPolicy for replay at runtime.
//
// The pass is deliberately offline and deterministic: profile(trace) is a
// pure function, hints round-trip through a text serialization (so a
// profile can be checked in next to the trace that produced it), and the
// runtime policy consuming the hints does no pattern detection of its own.
#ifndef LEAP_SRC_PREFETCH_PROFILE_PASS_H_
#define LEAP_SRC_PREFETCH_PROFILE_PASS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/types.h"

namespace leap {

// One policy-visible paging event, recorded by the Machine's fault-trace
// hook (Machine::SetFaultTraceSink): every cache miss and every cache hit
// on the remote-access path, in access order. This is the profile pass's
// input - the same per-process offset stream the online policies see.
struct FaultRecord {
  Pid pid = 0;
  SwapSlot slot = kInvalidSlot;
  SimTimeNs now = 0;
  // True when the access was served from the page cache (the do_swap_page
  // hits Leap's tracker also sees); false for misses.
  bool hit = false;
};

using FaultTrace = std::vector<FaultRecord>;

// Per-region prefetch hint: within region (slot >> region_shift), accesses
// advance by `stride` pages, and fetching `depth` pages ahead was safe in
// the profiled run.
struct ProfileHint {
  uint64_t region = 0;
  PageDelta stride = 0;
  // Prefetch distance: candidates emitted per fault along the stride.
  uint32_t depth = 1;
  // Share of the region's observed deltas that matched `stride` (0-100);
  // kept for introspection and serialized with the hint.
  uint32_t share_pct = 0;

  bool operator==(const ProfileHint&) const = default;
};

// The offline pass's output: sorted, region-unique hints.
struct PrefetchProfile {
  size_t region_shift = 8;
  std::vector<ProfileHint> hints;  // sorted by region, unique

  bool empty() const { return hints.empty(); }
  // Binary search; nullptr when the region has no hint.
  const ProfileHint* FindRegion(uint64_t region) const;

  // Text round-trip: Parse(Serialize(p)) == p (pinned by
  // profile_pass_test).
  std::string Serialize() const;
  static std::optional<PrefetchProfile> Parse(const std::string& text);

  bool operator==(const PrefetchProfile&) const = default;
};

struct ProfilePassConfig {
  // Pages per region = 1 << region_shift.
  size_t region_shift = 8;
  // Regions with fewer observed deltas than this emit no hint.
  size_t min_samples = 8;
  // The dominant delta must cover at least this share of the region's
  // deltas to become a hint (majority-style gate, like Leap's detector).
  uint32_t min_share_pct = 55;
  // Depth cap; the computed distance (mean dominant-delta run length) is
  // clamped to [1, max_depth].
  uint32_t max_depth = 8;
};

// Pure function of (trace, config): groups per-process access deltas by
// the region they were observed in, finds each region's dominant delta,
// and emits a hint when it clears the share gate. Distance = mean length
// of consecutive dominant-delta runs, clamped to [1, max_depth].
PrefetchProfile BuildProfile(const FaultTrace& trace,
                             const ProfilePassConfig& config = {});

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_PROFILE_PASS_H_
